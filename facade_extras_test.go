package colcache

import (
	"testing"

	"colcache/internal/replacement"
)

func TestEnableL2Facade(t *testing.T) {
	m := MustNew(Config{})
	if err := m.EnableL2(64*1024, 8, 10, false); err != nil {
		t.Fatal(err)
	}
	// Overflow the 2KB L1 with a 16KB loop; the L2 catches the reuse.
	for pass := 0; pass < 3; pass++ {
		for off := uint64(0); off < 16*1024; off += 32 {
			m.Load(off)
		}
	}
	st := m.L2Stats()
	if st.Accesses == 0 || st.Hits == 0 {
		t.Errorf("L2 unused: %+v", st)
	}
}

func TestEnableL2FacadeValidation(t *testing.T) {
	m := MustNew(Config{})
	if err := m.EnableL2(0, 8, 10, false); err == nil {
		t.Error("zero-size L2 accepted")
	}
	if err := m.EnableL2(64*1024, 0, 10, false); err == nil {
		t.Error("zero-way L2 accepted")
	}
	if err := m.EnableL2(1000, 8, 10, false); err == nil {
		t.Error("indivisible L2 size accepted")
	}
}

func TestPrefetcherFacade(t *testing.T) {
	m := MustNew(Config{})
	p, err := m.AttachPrefetcher(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var rec Recorder
	for i := 0; i < 512; i++ {
		rec.Load(uint64(i * 32))
	}
	p.Run(rec.Trace())
	if p.Issued() == 0 {
		t.Error("no prefetches for a stream")
	}
	if p.Accuracy() < 0.9 {
		t.Errorf("accuracy %.2f", p.Accuracy())
	}
	// Confined fills: nothing outside column 3 except demand fills of the
	// stream itself (which use the default tint = all columns). Verify the
	// prefetched next line is in column 3.
	if _, err := m.AttachPrefetcher(2, 9); err == nil {
		t.Error("bad column accepted")
	}
}

func TestPrefetcherDefaultsToAllColumns(t *testing.T) {
	m := MustNew(Config{})
	if _, err := m.AttachPrefetcher(2); err != nil {
		t.Fatal(err)
	}
}

func TestTintStatsAndDescribeFacade(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	m.EnablePerTintStats()
	r := m.Alloc("hot", 256)
	id, err := m.Map(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Load(r.Base)
	m.Load(r.Base)
	st := m.TintStats()[id]
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("tint stats=%+v", st)
	}
	if d := m.Describe(); d == "" {
		t.Error("empty Describe")
	}
}

func TestVerifyIsolation(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	pad := m.Alloc("pad", 512)
	id, err := m.Pin(pad, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The default tint still covers all columns: no guarantee yet.
	if err := m.VerifyIsolation([]int{0}, id); err == nil {
		t.Error("isolation verified despite permissive default tint")
	}
	// Shrink the default tint away from column 0: guarantee holds.
	if err := m.System().Tints().SetMask(0, replacement.Of(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyIsolation([]int{0}, id); err != nil {
		t.Errorf("isolation should hold: %v", err)
	}
	// A new mapping that overlaps column 0 breaks it again.
	other := m.Alloc("other", 64)
	if _, err := m.Map(other, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyIsolation([]int{0}, id); err == nil {
		t.Error("isolation verified despite overlapping mapping")
	}
	// Bad column rejected.
	if err := m.VerifyIsolation([]int{9}); err == nil {
		t.Error("bad column accepted")
	}
}

func TestEnergyFacade(t *testing.T) {
	m := MustNew(Config{})
	m.Load(0)
	if m.EnergyPJ() <= 0 {
		t.Errorf("energy=%d", m.EnergyPJ())
	}
}
