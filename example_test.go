package colcache_test

import (
	"fmt"

	"colcache"
)

// Isolate a hot lookup table from streaming data by giving each its own
// columns.
func ExampleMachine_Map() {
	m := colcache.MustNew(colcache.Config{Columns: 4, ColumnBytes: 512, PageBytes: 64})
	table := m.Alloc("table", 512)
	stream := m.Alloc("stream", 1<<20)

	m.Map(table, 0)        // table owns column 0
	m.Map(stream, 1, 2, 3) // the stream may only replace into columns 1-3

	// Warm the table, then hammer the stream.
	for off := uint64(0); off < table.Size; off += 32 {
		m.Load(table.Base + off)
	}
	for i := 0; i < 4096; i++ {
		m.Load(stream.Base + uint64(i*32))
	}
	// The table is still resident: every access hits.
	m.ResetStats()
	for off := uint64(0); off < table.Size; off += 32 {
		m.Load(table.Base + off)
	}
	fmt.Printf("table misses after streaming: %d\n", m.Stats().Cache.Misses)
	// Output: table misses after streaming: 0
}

// Pin emulates scratchpad memory inside the cache: the pinned region is
// preloaded and can never be replaced, so every access costs exactly the
// hit latency — the real-time guarantee of paper §2.3.
func ExampleMachine_Pin() {
	m := colcache.MustNew(colcache.Config{Columns: 4, ColumnBytes: 512, PageBytes: 64})
	critical := m.Alloc("critical", 512)
	other := m.Alloc("other", 1<<20)

	m.Pin(critical, 0)
	m.Map(other, 1, 2, 3)

	worst := int64(0)
	for i := 0; i < 1000; i++ {
		m.Load(other.Base + uint64(i*32)) // interference
		if c := m.Load(critical.Base + uint64(i*32%512)); c > worst {
			worst = c
		}
	}
	fmt.Printf("worst-case critical latency: %d cycle(s)\n", worst)
	// Output: worst-case critical latency: 1 cycle(s)
}

// Remap repartitions instantly: one tint-table write, no copies, no
// flushes; resident lines are still found in their old column.
func ExampleMachine_Remap() {
	m := colcache.MustNew(colcache.Config{Columns: 4, ColumnBytes: 512, PageBytes: 64})
	buf := m.Alloc("buf", 512)
	id, _ := m.Map(buf, 0)
	m.Load(buf.Base) // fills into column 0

	m.Remap(id, 3) // takes effect on the next replacement decision

	m.ResetStats()
	m.Load(buf.Base) // still found in column 0 — graceful repartitioning
	fmt.Printf("misses after remap: %d\n", m.Stats().Cache.Misses)
	// Output: misses after remap: 0
}

// AutoLayout runs the paper's data layout algorithm over a recorded trace:
// variables are split into column-sized chunks, a conflict graph is built
// from life-time overlaps, and chunks are colored into columns.
func ExampleMachine_AutoLayout() {
	m := colcache.MustNew(colcache.Config{Columns: 4, ColumnBytes: 512, PageBytes: 64})
	hot := m.Alloc("hot", 512)
	stream := m.Alloc("stream", 8192)

	// Record a kernel that re-reads `hot` while scanning `stream`.
	var rec colcache.Recorder
	for pass := 0; pass < 8; pass++ {
		for i := 0; i < 16; i++ {
			rec.Load(hot.Base + uint64(i*32))
			rec.Load(stream.Base + uint64((pass*16+i)*32))
		}
	}

	plan, _ := m.AutoLayout(rec.Trace(), m.Variables())
	fmt.Printf("conflict cost W = %d\n", plan.Cost)
	hotCol := plan.ColumnOf("hot")
	streamShares := false
	for _, c := range plan.Chunks {
		// Never-accessed chunks may land anywhere; only live ones conflict.
		if c.Parent == "stream" && c.Accesses > 0 &&
			c.Placement.String() == "column" && c.Column == hotCol {
			streamShares = true
		}
	}
	fmt.Printf("live stream chunks share hot's column: %v\n", streamShares)
	// Output:
	// conflict cost W = 0
	// live stream chunks share hot's column: false
}
