module colcache

go 1.22
