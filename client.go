package colcache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"colcache/internal/memtrace"
)

// Client is a programmatic caller of a colserved instance. The zero value
// is not usable; construct with NewClient. Methods are safe for concurrent
// use — the load generator (cmd/colload) drives one Client from hundreds
// of goroutines.
type Client struct {
	base string
	http *http.Client
	// PollInterval is the status-poll period of Wait (default 5ms).
	PollInterval time.Duration
}

// NewClient returns a Client for the colserved instance at baseURL
// (e.g. "http://127.0.0.1:8344"). httpClient may be nil for a default with
// a 30s request timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient, PollInterval: 5 * time.Millisecond}
}

// OverloadedError reports a 429 (queue full) or 503 (draining) answer: the
// submission was NOT accepted and may be retried after RetryAfter.
type OverloadedError struct {
	StatusCode int
	RetryAfter time.Duration
	Message    string
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("colserved overloaded (HTTP %d, retry after %s): %s", e.StatusCode, e.RetryAfter, e.Message)
}

// StatusError is any other non-2xx answer.
type StatusError struct {
	StatusCode int
	Message    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("colserved: HTTP %d: %s", e.StatusCode, e.Message)
}

// JobFailedError is returned by the synchronous helpers when the job
// reached a terminal state other than done.
type JobFailedError struct {
	Info JobInfo
}

func (e *JobFailedError) Error() string {
	return fmt.Sprintf("job %s %s: %s", e.Info.ID, e.Info.State, e.Info.Error)
}

func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var apiErr APIError
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr); err == nil && apiErr.Error != "" {
		msg = apiErr.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		retry := time.Duration(apiErr.RetryAfterSeconds) * time.Second
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				retry = time.Duration(secs) * time.Second
			}
		}
		if retry <= 0 {
			retry = time.Second
		}
		return &OverloadedError{StatusCode: resp.StatusCode, RetryAfter: retry, Message: msg}
	}
	return &StatusError{StatusCode: resp.StatusCode, Message: msg}
}

// SubmitSimulate enqueues one simulation and returns its queued JobInfo.
func (c *Client) SubmitSimulate(ctx context.Context, spec SimSpec) (JobInfo, error) {
	return c.submitJSON(ctx, "/v1/simulate", spec)
}

// SubmitSweep enqueues a parameter sweep and returns its queued JobInfo.
func (c *Client) SubmitSweep(ctx context.Context, spec SweepSpec) (JobInfo, error) {
	return c.submitJSON(ctx, "/v1/sweep", spec)
}

func (c *Client) submitJSON(ctx context.Context, path string, spec any) (JobInfo, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobInfo{}, err
	}
	var info JobInfo
	err = c.do(ctx, http.MethodPost, path, "application/json", bytes.NewReader(body), &info)
	return info, err
}

// SubmitTrace enqueues a simulation of an uploaded binary trace: the body
// is the compact CCTRACE1 format, streamed and size-checked by the server,
// with the machine selected by query parameters.
func (c *Client) SubmitTrace(ctx context.Context, label string, m MachineSpec, t Trace) (JobInfo, error) {
	var buf bytes.Buffer
	if err := memtrace.WriteBinary(&buf, t); err != nil {
		return JobInfo{}, err
	}
	q := url.Values{}
	set := func(k string, v int) {
		if v != 0 {
			q.Set(k, strconv.Itoa(v))
		}
	}
	set("line", m.LineBytes)
	set("sets", m.Sets)
	set("ways", m.Ways)
	set("page", m.PageBytes)
	set("penalty", m.MissPenalty)
	if m.Policy != "" {
		q.Set("policy", m.Policy)
	}
	if label != "" {
		q.Set("label", label)
	}
	path := "/v1/simulate"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var info JobInfo
	err := c.do(ctx, http.MethodPost, path, "application/octet-stream", &buf, &info)
	return info, err
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), "", nil, &info)
	return info, err
}

// Jobs lists recent jobs and live queue counts.
func (c *Client) Jobs(ctx context.Context) (JobList, error) {
	var list JobList
	err := c.do(ctx, http.MethodGet, "/v1/jobs", "", nil, &list)
	return list, err
}

// Wait polls a job until it reaches a terminal state (done, failed,
// canceled) and returns its final JobInfo. The error is non-nil only for
// transport or HTTP failures — inspect the returned state for the job's
// own outcome, or use the synchronous helpers.
func (c *Client) Wait(ctx context.Context, id string) (JobInfo, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		switch info.State {
		case StateDone, StateFailed, StateCanceled:
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Simulate submits spec and waits for the result. A server with a warm
// result cache may answer the submission itself with a terminal document
// (Cached true); no polling happens then.
func (c *Client) Simulate(ctx context.Context, spec SimSpec) (SimResult, error) {
	info, err := c.SubmitSimulate(ctx, spec)
	if err != nil {
		return SimResult{}, err
	}
	if info.State == StateDone && info.Result != nil {
		return *info.Result, nil
	}
	return c.waitResult(ctx, info.ID)
}

func (c *Client) waitResult(ctx context.Context, id string) (SimResult, error) {
	info, err := c.Wait(ctx, id)
	if err != nil {
		return SimResult{}, err
	}
	if info.State != StateDone || info.Result == nil {
		return SimResult{}, &JobFailedError{Info: info}
	}
	return *info.Result, nil
}

// StoredResult fetches a finished result from the server's content-
// addressed cache by its digest — the recovery path for a client whose
// job was shed during a drain: the JobInfo's Digest field is the key.
func (c *Client) StoredResult(ctx context.Context, digest string) (StoredResult, error) {
	var sr StoredResult
	err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(digest), "", nil, &sr)
	return sr, err
}

// Sweep submits spec and waits for the batched results.
func (c *Client) Sweep(ctx context.Context, spec SweepSpec) (SweepResult, error) {
	info, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		return SweepResult{}, err
	}
	if info.State == StateDone && info.Sweep != nil {
		return *info.Sweep, nil
	}
	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		return SweepResult{}, err
	}
	if final.State != StateDone || final.Sweep == nil {
		return SweepResult{}, &JobFailedError{Info: final}
	}
	return *final.Sweep, nil
}

// Healthz checks the liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", "", nil, nil)
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
