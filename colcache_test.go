package colcache

import (
	"testing"

	"colcache/internal/workloads/mpeg"
)

func TestNewDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.LineBytes != 32 || cfg.Columns != 4 || cfg.ColumnBytes != 512 {
		t.Errorf("defaults: %+v", cfg)
	}
	if m.CacheBytes() != 2048 {
		t.Errorf("CacheBytes=%d", m.CacheBytes())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LineBytes: 32, ColumnBytes: 100}); err == nil {
		t.Error("column size not multiple of line accepted")
	}
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestAllocIsPageAligned(t *testing.T) {
	m := MustNew(Config{PageBytes: 256})
	a := m.Alloc("a", 100)
	b := m.Alloc("b", 100)
	if a.Base%256 != 0 || b.Base%256 != 0 {
		t.Errorf("not page aligned: %#x %#x", a.Base, b.Base)
	}
	if len(m.Variables()) != 2 {
		t.Errorf("variables=%d", len(m.Variables()))
	}
}

func TestMapIsolatesRegion(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	hot := m.Alloc("hot", 512)
	if _, err := m.Map(hot, 0); err != nil {
		t.Fatal(err)
	}
	// Touch all of hot, then thrash with unmapped data restricted by
	// mapping the thrash region to the other columns.
	thrash := m.Alloc("thrash", 1<<16)
	if _, err := m.Map(thrash, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < hot.Size; off += 32 {
		m.Load(hot.Base + off)
	}
	for off := uint64(0); off < thrash.Size; off += 32 {
		m.Load(thrash.Base + off)
	}
	m.ResetStats()
	for off := uint64(0); off < hot.Size; off += 32 {
		m.Load(hot.Base + off)
	}
	if misses := m.Stats().Cache.Misses; misses != 0 {
		t.Errorf("isolated region missed %d times", misses)
	}
}

func TestMapValidation(t *testing.T) {
	m := MustNew(Config{})
	r := m.Alloc("r", 64)
	if _, err := m.Map(r); err == nil {
		t.Error("empty column list accepted")
	}
	if _, err := m.Map(r, 4); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := m.Map(r, -1); err == nil {
		t.Error("negative column accepted")
	}
}

func TestRemapIsCheapAndEffective(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	r := m.Alloc("r", 64)
	id, err := m.Map(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Load(r.Base)
	if col, ok := m.Resident(r.Base); !ok || col != 0 {
		t.Fatalf("col=%d ok=%v", col, ok)
	}
	if err := m.Remap(id, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Remap(id); err == nil {
		t.Error("empty remap accepted")
	}
	// Graceful repartitioning: the line is still found in its old column.
	m.ResetStats()
	m.Load(r.Base)
	if m.Stats().Cache.Misses != 0 {
		t.Error("resident line lost on remap")
	}
	// After a flush it refills into the new column.
	m.FlushCache()
	m.Load(r.Base)
	if col, _ := m.Resident(r.Base); col != 3 {
		t.Errorf("refill col=%d want 3", col)
	}
}

func TestPinEmulatesScratchpad(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	pad := m.Alloc("pad", 512) // exactly one column
	if _, err := m.Pin(pad, 0); err != nil {
		t.Fatal(err)
	}
	// Everything else avoids column 0.
	rest := m.Alloc("rest", 1<<18) // covers all 50 × 4KB thrash strides
	if _, err := m.Map(rest, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	// Interleave pad accesses with heavy thrashing: pad never misses.
	for i := 0; i < 50; i++ {
		for off := uint64(0); off < pad.Size; off += 32 {
			m.Load(pad.Base + off)
		}
		for off := uint64(0); off < 4096; off += 32 {
			m.Load(rest.Base + uint64(i)*4096 + off)
		}
	}
	// Count pad misses: all pad accesses must have hit.
	misses := m.Stats().Cache.Misses
	thrashMisses := int64(50 * 4096 / 32) // every thrash line is cold
	if misses > thrashMisses {
		t.Errorf("pinned region missed: total misses %d > thrash-only %d", misses, thrashMisses)
	}
}

func TestPinValidation(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	big := m.Alloc("big", 2048)
	if _, err := m.Pin(big, 0); err == nil {
		t.Error("oversize pin accepted")
	}
	r := m.Alloc("r", 64)
	if _, err := m.Pin(r); err == nil {
		t.Error("empty column list accepted")
	}
	// Misaligned base: allocate an odd-size filler first.
	m2 := MustNew(Config{PageBytes: 64})
	m2.Alloc("filler", 64)
	odd := m2.Alloc("odd", 64) // base 64, not column-aligned (512)
	if _, err := m2.Pin(odd, 1); err == nil {
		t.Error("misaligned pin accepted")
	}
}

func TestUnmapRestoresDefault(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	r := m.Alloc("r", 64)
	if _, err := m.Map(r, 2); err != nil {
		t.Fatal(err)
	}
	m.Unmap(r)
	m.Load(r.Base)
	// Default tint permits all columns; with an empty cache LRU picks way 0.
	if col, _ := m.Resident(r.Base); col != 0 {
		t.Errorf("col=%d want 0 under default tint", col)
	}
}

func TestScratchpadPlacement(t *testing.T) {
	m := MustNew(Config{ScratchpadBytes: 1024, PageBytes: 64})
	r := m.Alloc("r", 512)
	if err := m.PlaceInScratchpad(r); err != nil {
		t.Fatal(err)
	}
	if c := m.Load(r.Base); c != 1 {
		t.Errorf("scratchpad load took %d cycles", c)
	}
	if m.Stats().ScratchpadAccesses != 1 {
		t.Error("scratchpad access not counted")
	}
}

func TestRunAndRecorder(t *testing.T) {
	m := MustNew(Config{})
	var rec Recorder
	rec.Think(2)
	rec.Load(0)
	rec.Store(32)
	cycles := m.Run(rec.Trace())
	if cycles <= 0 {
		t.Errorf("cycles=%d", cycles)
	}
	st := m.Stats()
	if st.Instructions != 4 || st.MemAccesses != 2 {
		t.Errorf("stats=%+v", st)
	}
	if m.Step(Access{Addr: 0, Op: Read}) != 1 {
		t.Error("warm hit not 1 cycle")
	}
}

func TestAutoLayoutEndToEnd(t *testing.T) {
	m := MustNew(Config{PageBytes: 64})
	prog := mpeg.Idct(mpeg.Config{})
	plan, err := m.AutoLayout(prog.Trace, prog.Vars)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chunks) == 0 {
		t.Fatal("empty plan")
	}
	// The hot cosine table must have its own column (no streaming chunk
	// shares it while live) — run and verify overall miss rate is modest.
	m.Run(prog.Trace)
	if mr := m.Stats().Cache.MissRate(); mr > 0.05 {
		t.Errorf("miss rate %.3f too high for laid-out idct", mr)
	}
}

func TestAutoLayoutForceScratch(t *testing.T) {
	m := MustNew(Config{ScratchpadBytes: 512, PageBytes: 64})
	prog := mpeg.Dequant(mpeg.Config{})
	plan, err := m.AutoLayout(prog.Trace, prog.Vars, "qmat")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range plan.Chunks {
		if c.Parent == "qmat" && c.Placement.String() == "scratchpad" {
			found = true
		}
	}
	if !found {
		t.Error("forced variable not in scratchpad")
	}
}
