package colcache

// Cross-module integration and metamorphic tests: whole flows through the
// public API and invariants that must hold across the stack.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colcache/internal/memtrace"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
	"colcache/internal/workloads/synth"
)

// TestDeterminism: the whole machine is deterministic — identical traces on
// identically configured machines produce identical cycle counts and stats.
func TestDeterminism(t *testing.T) {
	prog := mpeg.Idct(mpeg.Config{})
	run := func() (int64, Stats) {
		m := MustNew(Config{PageBytes: 64})
		if _, err := m.AutoLayout(prog.Trace, prog.Vars); err != nil {
			t.Fatal(err)
		}
		cycles := m.Run(prog.Trace)
		return cycles, m.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("nondeterministic: %d/%d cycles, %+v vs %+v", c1, c2, s1, s2)
	}
}

// TestCycleAccountingConsistency: the sum of per-access cycles equals the
// machine's total, for random traces and mappings.
func TestCycleAccountingConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := MustNew(Config{PageBytes: 64})
		// A couple of random mappings.
		for i := 0; i < 3; i++ {
			reg := m.Alloc("v", uint64(64+r.Intn(2048)))
			if _, err := m.Map(reg, r.Intn(4)); err != nil {
				return false
			}
		}
		var sum int64
		for i := 0; i < 500; i++ {
			a := Access{Addr: uint64(r.Intn(1 << 14)), Op: Read}
			if r.Intn(3) == 0 {
				a.Op = Write
			}
			a.Think = uint32(r.Intn(5))
			sum += m.Step(a)
		}
		return sum == m.Stats().Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMappingNeverChangesCorrectnessOnlyTiming: for any mapping choice, the
// same accesses happen — only hit/miss timing differs. Total instruction
// and access counts are mapping-invariant.
func TestMappingNeverChangesCorrectnessOnlyTiming(t *testing.T) {
	prog := kernels.MatMul(kernels.MatMulConfig{N: 12})
	configs := [][]int{nil, {0}, {1, 2}, {0, 1, 2, 3}}
	var wantInstr, wantAccesses int64 = -1, -1
	for _, cols := range configs {
		m := MustNew(Config{PageBytes: 64})
		if cols != nil {
			for _, v := range prog.Vars {
				if _, err := m.Map(v, cols...); err != nil {
					t.Fatal(err)
				}
			}
		}
		m.Run(prog.Trace)
		st := m.Stats()
		if wantInstr < 0 {
			wantInstr, wantAccesses = st.Instructions, st.MemAccesses
			continue
		}
		if st.Instructions != wantInstr || st.MemAccesses != wantAccesses {
			t.Errorf("mapping %v changed execution: instr=%d accesses=%d", cols, st.Instructions, st.MemAccesses)
		}
	}
}

// TestExclusiveMappingBoundsResidency: a region mapped to k columns can
// never occupy more than k×(column lines) cache lines.
func TestExclusiveMappingBoundsResidency(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%3
		cols := make([]int, k)
		for i := range cols {
			cols[i] = i
		}
		m := MustNew(Config{PageBytes: 64})
		reg := m.Alloc("big", 1<<16)
		if _, err := m.Map(reg, cols...); err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			m.Load(reg.Base + uint64(r.Intn(1<<16)))
		}
		// Count resident lines belonging to the region.
		resident := 0
		g := m.System().Geometry()
		for _, ln := range g.LinesCovering(reg.Base, reg.Size) {
			if _, ok := m.Resident(ln * uint64(g.LineBytes)); ok {
				resident++
			}
		}
		capacity := k * (m.Config().ColumnBytes / m.Config().LineBytes)
		return resident <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestAutoLayoutNeverWorseThanSingleColumn: the layout algorithm's plan is
// never worse than the degenerate plan that crams everything into one
// column, across a spread of workloads.
func TestAutoLayoutNeverWorseThanSingleColumn(t *testing.T) {
	var progs []struct {
		name  string
		trace Trace
		vars  []Region
	}
	add := func(name string, trace memtrace.Trace, vars []Region) {
		progs = append(progs, struct {
			name  string
			trace Trace
			vars  []Region
		}{name, trace, vars})
	}
	mm := kernels.MatMul(kernels.MatMulConfig{})
	add(mm.Name, mm.Trace, mm.Vars)
	fir := kernels.FIR(kernels.FIRConfig{})
	add(fir.Name, fir.Trace, fir.Vars)
	hist := kernels.Histogram(kernels.HistogramConfig{})
	add(hist.Name, hist.Trace, hist.Vars)
	idct := mpeg.Idct(mpeg.Config{})
	add(idct.Name, idct.Trace, idct.Vars)

	for _, p := range progs {
		laid := MustNew(Config{PageBytes: 64})
		if _, err := laid.AutoLayout(p.trace, p.vars); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		laidCycles := laid.Run(p.trace)

		cramped := MustNew(Config{PageBytes: 64})
		for _, v := range p.vars {
			if _, err := cramped.Map(v, 0); err != nil {
				t.Fatal(err)
			}
		}
		crampedCycles := cramped.Run(p.trace)
		if laidCycles > crampedCycles {
			t.Errorf("%s: layout (%d cycles) worse than single-column cram (%d)",
				p.name, laidCycles, crampedCycles)
		}
	}
}

// TestSchedulerInstructionConservation: the machine's instruction count
// equals the sum of what the jobs executed.
func TestSchedulerInstructionConservation(t *testing.T) {
	// Exercised through the facade-level System to keep it an integration
	// test: two synthetic jobs on one machine.
	m := MustNew(Config{})
	s1 := synth.Stream(0, 8192, 32, 2)
	s2 := synth.Random(1<<20, 1<<14, 500, 3)
	merged := memtrace.Interleave(64, s1.Trace, s2.Trace)
	m.Run(merged)
	want := s1.Trace.Instructions() + s2.Trace.Instructions()
	if got := m.Stats().Instructions; got != want {
		t.Errorf("instructions=%d want %d", got, want)
	}
}

// TestPinnedRegionWorstCaseLatencyBound: after Pin, every access to the
// pinned region costs exactly the hit latency, whatever else runs — the
// real-time guarantee of §2.3, fuzzed.
func TestPinnedRegionWorstCaseLatencyBound(t *testing.T) {
	f := func(seed int64) bool {
		m := MustNew(Config{PageBytes: 64})
		pad := m.Alloc("pad", 1024) // 2 columns
		if _, err := m.Pin(pad, 0, 1); err != nil {
			return false
		}
		other := m.Alloc("other", 1<<18)
		if _, err := m.Map(other, 2, 3); err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			if r.Intn(3) == 0 {
				if c := m.Load(pad.Base + uint64(r.Intn(1024))); c != 1 {
					return false
				}
			} else {
				m.Load(other.Base + uint64(r.Intn(1<<18)))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
