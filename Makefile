# The CI workflow (.github/workflows/ci.yml) invokes these same targets,
# so a green `make ci` locally means a green pipeline.
#
# Target map:
#   build / test / race  - compile and run the suite (plain, then -race)
#   lint                 - go vet + gofmt + staticcheck (skipped if absent)
#   bench                - SMOKE gate: one iteration of every benchmark, so
#                          bench_test.go always compiles and executes; not a
#                          measurement
#   benchcore            - MEASURED core benchmarks: serial and epoch-
#                          parallel stepper cycles/sec at 1/2/4/8 cores +
#                          streaming replay, best-of-3 per row, gated
#                          against the committed BENCH_CORE.json (fail
#                          under (1-CORE_TOLERANCE) x baseline, or if the
#                          parallel stepper loses its structural edge over
#                          the serial one)
#   benchcore-baseline   - re-measure and overwrite BENCH_CORE.json
#   smoke                - trimmed paperbench run with shape checks
#   servebench           - colserved under load (BENCH_PR3.json)
#   cachebench           - durable colserved under a zipfian repeated-spec
#                          load: memoization hit ratio + cached-path
#                          latency (BENCH_PR7.json)
#   recovery             - kill -9 a durable colserved mid-work, restart,
#                          prove no accepted job is lost or duplicated
#   fabric               - distributed colserved gates: ring/coordinator
#                          unit tests under -race, then the chaos test
#                          (3 real workers, SIGKILL one mid-sweep, every
#                          accepted job still finishes; a joining worker
#                          remaps only ~1/N of the keyspace)
#   fabricbench          - coordinator + 3 durable workers under zipfian
#                          colload -fabric; cluster ledger reconciliation
#                          (BENCH_PR8.json)
#   conformance / cover  - differential oracle matrix + coverage gate
#   multicore            - MSI -race sweep, stepper determinism, BENCH_PR5
#   watch                - live-inspection smoke: colserved streams SSE
#                          occupancy frames for a running job, retains
#                          them for time travel, and colwatch replays a
#                          deterministic colsim frame dump
#   ci                   - everything CI runs

GO ?= go

.PHONY: build test race lint bench benchcore benchcore-baseline smoke servebench cachebench recovery fabric fabricbench conformance cover multicore watch ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# staticcheck is pinned in CI (see ci.yml); locally it runs when installed
# and is skipped with a note otherwise, so `make lint` never needs network.
STATICCHECK_VERSION ?= 2025.1.1
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# One iteration of every benchmark: a smoke gate that keeps bench_test.go
# compiling and executing, not a measurement. Measured runs live in
# benchcore.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Measured core benchmarks: the flat-state hot path's regression gate.
# paperbench -corebench runs the stepper at 1/2/4/8 cores plus the
# streaming replay pipeline, keeps the best of CORE_REPS repetitions per
# row (noisy-runner-safe), writes the snapshot to BENCH_CORE.new.json and
# fails if any row drops more than CORE_TOLERANCE below the committed
# BENCH_CORE.json. GOAMD64=v3 is used when the host supports AVX2, matching
# how the committed baseline was produced.
CORE_TOLERANCE ?= 0.25
CORE_REPS      ?= 3
BENCH_GOAMD64  := $(shell grep -qm1 avx2 /proc/cpuinfo 2>/dev/null && echo v3)
benchcore:
	GOAMD64=$(BENCH_GOAMD64) $(GO) build -o /tmp/paperbench-core ./cmd/paperbench
	/tmp/paperbench-core -corebench BENCH_CORE.new.json -corebaseline BENCH_CORE.json \
		-coretolerance $(CORE_TOLERANCE) -corereps $(CORE_REPS)

# Re-measure the committed baseline in place (run on a quiet machine, then
# commit the new BENCH_CORE.json).
benchcore-baseline:
	GOAMD64=$(BENCH_GOAMD64) $(GO) build -o /tmp/paperbench-core ./cmd/paperbench
	/tmp/paperbench-core -corebench BENCH_CORE.json -corereps $(CORE_REPS)

# Trimmed end-to-end run of the paper's full evaluation, including the
# shape checks against the paper's qualitative claims.
smoke:
	$(GO) run ./cmd/paperbench -quick

# Serving benchmark: boot colserved, hammer it with colload, verify the
# metrics ledger closes, and leave the report in BENCH_PR3.json.
SERVE_ADDR    ?= 127.0.0.1:8344
SERVE_CLIENTS ?= 200
SERVE_SECS    ?= 5s
servebench:
	$(GO) build -o /tmp/colserved ./cmd/colserved
	$(GO) build -o /tmp/colload ./cmd/colload
	/tmp/colserved -addr $(SERVE_ADDR) -quiet & \
	pid=$$!; \
	trap 'kill -TERM $$pid 2>/dev/null; wait $$pid' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(SERVE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	/tmp/colload -base http://$(SERVE_ADDR) -c $(SERVE_CLIENTS) -duration $(SERVE_SECS) -out BENCH_PR3.json

# Memoization benchmark: the same loop against a durable server with a
# zipfian repeated-spec mix — the report shows the result-cache hit ratio
# and how much latency the cached path shaves off the simulated one.
CACHE_ADDR    ?= 127.0.0.1:8345
CACHE_CLIENTS ?= 64
CACHE_SECS    ?= 10s
CACHE_MIX     ?= 16
cachebench:
	$(GO) build -o /tmp/colserved ./cmd/colserved
	$(GO) build -o /tmp/colload ./cmd/colload
	rm -rf /tmp/colserved-cachebench
	/tmp/colserved -addr $(CACHE_ADDR) -data-dir /tmp/colserved-cachebench -quiet & \
	pid=$$!; \
	trap 'kill -TERM $$pid 2>/dev/null; wait $$pid' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(CACHE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	/tmp/colload -base http://$(CACHE_ADDR) -c $(CACHE_CLIENTS) -duration $(CACHE_SECS) -spec-mix $(CACHE_MIX) -out BENCH_PR7.json

# Crash-recovery gate: the kill -9 integration test builds the real
# daemon (with -race), SIGKILLs it with queued and in-flight jobs, and
# asserts the restart finishes every accepted job exactly once.
recovery:
	$(GO) test -race -run TestKillDashNineRecovery -v ./cmd/colserved

# Distributed-fabric gates: the consistent-hash ring, registry, and
# coordinator protocol under -race (including in-process steal and
# cached-relay tests), the colload digest-retry and -fabric load tests,
# then the chaos integration test — a real coordinator plus three
# race-built worker daemons, one SIGKILLed while its sweep is
# demonstrably running: every accepted job must still reach done (stolen
# onto ring successors, zero steal failures) and a fourth worker joining
# afterwards may remap only ~1/N of the keyspace.
fabric:
	$(GO) test -race ./internal/fabric ./cmd/colload
	$(GO) test -race -run TestFabricChaos -v ./cmd/colserved

# Fabric benchmark: a coordinator with three durable workers under a
# zipfian colload -fabric run; the report (BENCH_PR8.json) carries the
# per-node job counts and the cross-node ledger reconciliation.
FABRIC_ADDR    ?= 127.0.0.1:8347
FABRIC_CLIENTS ?= 64
FABRIC_SECS    ?= 10s
FABRIC_MIX     ?= 16
fabricbench:
	$(GO) build -o /tmp/colserved ./cmd/colserved
	$(GO) build -o /tmp/colload ./cmd/colload
	rm -rf /tmp/colserved-fabric
	/tmp/colserved -role coordinator -addr $(FABRIC_ADDR) & \
	cpid=$$!; \
	wpids=""; \
	trap 'kill -TERM $$wpids $$cpid 2>/dev/null; wait $$wpids $$cpid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(FABRIC_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	port=8348; \
	for w in w1 w2 w3; do \
		/tmp/colserved -role worker -join http://$(FABRIC_ADDR) -addr 127.0.0.1:$$port \
			-node $$w -data-dir /tmp/colserved-fabric/$$w -quiet & \
		wpids="$$wpids $$!"; \
		port=$$((port + 1)); \
	done; \
	for i in $$(seq 1 100); do \
		n=$$(curl -fsS http://$(FABRIC_ADDR)/fabric/v1/nodes 2>/dev/null \
			| python3 -c "import json,sys; print(sum(1 for w in json.load(sys.stdin)['workers'] if w['alive']))" 2>/dev/null || echo 0); \
		[ "$$n" = 3 ] && break; sleep 0.1; \
	done; \
	/tmp/colload -base http://$(FABRIC_ADDR) -fabric -c $(FABRIC_CLIENTS) -duration $(FABRIC_SECS) -spec-mix $(FABRIC_MIX) -out BENCH_PR8.json

# Differential conformance: the naive reference model in internal/oracle is
# driven in lockstep with the production stack over the committed golden
# traces plus CONFORM_N seeded random trace/config combinations, all under
# the race detector, plus CONFORM_MC seeded multicore machines run through
# both the serial and the epoch-parallel stepper and compared on every
# counter and cache line. A failing run minimizes the case to
# conform-repro.json.
CONFORM_N    ?= 1000
CONFORM_MC   ?= 500
CONFORM_SEED ?= 1
conformance:
	$(GO) test -race ./internal/oracle ./internal/conform ./cmd/conform
	$(GO) build -race -o /tmp/conform ./cmd/conform
	/tmp/conform -n $(CONFORM_N) -mc $(CONFORM_MC) -seed $(CONFORM_SEED) -golden internal/conform/testdata/golden

# Multicore gates: the MSI coherence protocol under -race (including the
# seeded random invariant sweep and the epoch-parallel equivalence tests),
# the stepper's determinism — the interference study must be byte-identical
# at any -jobs value, and the epoch-parallel stepper must print the exact
# serial output at any epoch length — and a throughput snapshot for both
# steppers at 1/2/4/8 cores in BENCH_PR5.json.
multicore:
	$(GO) test -race ./internal/multicore
	$(GO) build -o /tmp/paperbench ./cmd/paperbench
	/tmp/paperbench -experiment multicore -jobs 1 > /tmp/mc-serial.txt
	/tmp/paperbench -experiment multicore -jobs 8 > /tmp/mc-parallel.txt
	cmp /tmp/mc-serial.txt /tmp/mc-parallel.txt
	$(GO) build -o /tmp/colsim ./cmd/colsim
	/tmp/colsim -cores 4 -synth random -n 50000 > /tmp/mc-step-serial.txt
	/tmp/colsim -cores 4 -synth random -n 50000 -parallel -epoch 1 > /tmp/mc-step-k1.txt
	/tmp/colsim -cores 4 -synth random -n 50000 -parallel -epoch 64 > /tmp/mc-step-k64.txt
	cmp /tmp/mc-step-serial.txt /tmp/mc-step-k1.txt
	cmp /tmp/mc-step-k1.txt /tmp/mc-step-k64.txt
	/tmp/paperbench -quick -mcscale BENCH_PR5.json
	test -s BENCH_PR5.json

# Live-inspection smoke. Three legs: colsim dumps a deterministic frame
# sequence — byte-identical between the serial and epoch-parallel
# steppers — that colwatch's scrub mode replays (line-mode keys, so no
# tty needed); a colserved with frame capture on serves SSE frames for a
# job that is still running when the stream attaches, ending with a
# terminal event; and the retained frames stay scrubbable over the
# time-travel endpoint after the job is done.
WATCH_ADDR ?= 127.0.0.1:8353
watch:
	$(GO) build -o /tmp/colserved ./cmd/colserved
	$(GO) build -o /tmp/colsim ./cmd/colsim
	$(GO) build -o /tmp/colwatch ./cmd/colwatch
	/tmp/colsim -cores 2 -synth random -n 100000 -inspect-every 4096 -inspect-out /tmp/watch-frames.jsonl > /dev/null
	test -s /tmp/watch-frames.jsonl
	/tmp/colsim -cores 2 -synth random -n 100000 -parallel -inspect-every 4096 -inspect-out /tmp/watch-frames-par.jsonl > /dev/null
	cmp /tmp/watch-frames.jsonl /tmp/watch-frames-par.jsonl
	printf 'l\nr\nG\nq\n' | /tmp/colwatch -file /tmp/watch-frames.jsonl -replay > /dev/null
	set -e; \
	/tmp/colserved -addr $(WATCH_ADDR) -inspect-every 4096 -quiet & \
	pid=$$!; \
	trap 'kill -TERM $$pid 2>/dev/null; wait $$pid' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(WATCH_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.1; \
	done; \
	id=$$(curl -fsS -X POST http://$(WATCH_ADDR)/v1/simulate \
		-d '{"label":"watch-smoke","machine":{"sets":16,"ways":4},"workload":{"name":"stream","size_bytes":1048576,"passes":12}}' \
		| python3 -c "import json,sys; print(json.load(sys.stdin)['id'])"); \
	curl -fsS -N --max-time 60 http://$(WATCH_ADDR)/v1/jobs/$$id/inspect > /tmp/watch-sse.txt; \
	grep -q "event: frame" /tmp/watch-sse.txt; \
	grep -q '"reason":"done"' /tmp/watch-sse.txt; \
	curl -fsS "http://$(WATCH_ADDR)/v1/jobs/$$id/inspect/frames" \
		| python3 -c "import json,sys; d=json.load(sys.stdin); assert d['count'] > 0 and d['frames'], d"; \
	printf 'r\nq\n' | /tmp/colwatch -server http://$(WATCH_ADDR) -job $$id -replay > /dev/null; \
	echo "watch: SSE frames, time travel, and colwatch replay OK"

# Coverage gate: the column-cache core packages plus the durability layer
# (WAL + result cache) must stay at or above 85% statement coverage.
COVER_PKGS = colcache/internal/cache colcache/internal/replacement colcache/internal/tint colcache/internal/wal colcache/internal/resultcache
cover:
	@$(GO) test -cover $(COVER_PKGS) | awk ' \
		/coverage:/ { \
			pct = 0 + substr($$5, 1, length($$5)-1); \
			printf "%-40s %s\n", $$2, $$5; \
			if (pct < 85.0) { bad = 1 } \
		} \
		END { if (bad) { print "coverage below the 85% gate"; exit 1 } }'

ci: build lint test race bench benchcore smoke servebench cachebench recovery fabric conformance cover multicore watch
