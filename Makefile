# The CI workflow (.github/workflows/ci.yml) invokes these same targets,
# so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race lint bench smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One iteration of every benchmark: a smoke gate that keeps bench_test.go
# compiling and executing, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Trimmed end-to-end run of the paper's full evaluation, including the
# shape checks against the paper's qualitative claims.
smoke:
	$(GO) run ./cmd/paperbench -quick

ci: build lint test race bench smoke
