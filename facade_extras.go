package colcache

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memsys"
	"colcache/internal/prefetch"
	"colcache/internal/replacement"
)

// EnableL2 attaches a unified second-level cache of totalBytes organized as
// ways ways (line size matches the machine). hitCycles is the L2 access
// latency; L1 misses that also miss the L2 pay the machine's MissPenalty.
// If masked is true, the tint-derived column mask restricts L2 replacement
// too, modeling a tint table that carries one bit vector per hierarchy
// level (the paper's tints deliberately hide the number of levels from
// software, §2.2).
func (m *Machine) EnableL2(totalBytes, ways, hitCycles int, masked bool) error {
	if ways < 1 || totalBytes <= 0 {
		return fmt.Errorf("colcache: invalid L2 shape %dB/%d ways", totalBytes, ways)
	}
	lineBytes := m.cfg.LineBytes
	if totalBytes%(lineBytes*ways) != 0 {
		return fmt.Errorf("colcache: L2 size %d not divisible by %d ways of %dB lines",
			totalBytes, ways, lineBytes)
	}
	return m.sys.EnableL2(cache.Config{
		LineBytes: lineBytes,
		NumSets:   totalBytes / (lineBytes * ways),
		NumWays:   ways,
	}, hitCycles, masked)
}

// L2Stats returns the second-level cache's counters (zero value when no L2
// is attached).
func (m *Machine) L2Stats() cache.Stats { return m.sys.L2Stats() }

// Prefetcher is a sequential stream prefetcher whose speculative fills are
// confined to a set of columns — the paper's "separate prefetch buffer
// within the general cache" (§2). Route accesses through it instead of
// Machine.Step to train and trigger it.
type Prefetcher struct {
	engine *prefetch.Engine
}

// AttachPrefetcher builds a prefetcher over the machine that fills only
// into the given columns (none = all columns, the polluting baseline).
// degree is how many lines ahead confirmed streams fetch.
func (m *Machine) AttachPrefetcher(degree int, columns ...int) (*Prefetcher, error) {
	mask := replacement.All(m.cfg.Columns)
	if len(columns) > 0 {
		for _, c := range columns {
			if c < 0 || c >= m.cfg.Columns {
				return nil, fmt.Errorf("colcache: column %d outside [0,%d)", c, m.cfg.Columns)
			}
		}
		mask = replacement.Of(columns...)
	}
	return &Prefetcher{engine: prefetch.New(m.sys, prefetch.Config{Degree: degree, Mask: mask})}, nil
}

// Step executes one access through the prefetcher (training it and issuing
// fills) and returns the demand access's cycles.
func (p *Prefetcher) Step(a Access) int64 { return p.engine.Access(a) }

// Run replays a trace through the prefetcher.
func (p *Prefetcher) Run(t Trace) int64 { return p.engine.Run(t) }

// Issued returns the number of prefetch fills issued so far.
func (p *Prefetcher) Issued() int64 { return p.engine.Issued() }

// Accuracy returns the fraction of issued prefetches that a demand access
// later used.
func (p *Prefetcher) Accuracy() float64 { return p.engine.Accuracy() }

// EnablePerTintStats turns on per-partition hit/miss attribution: every
// cached access is counted against the tint that governed its placement.
func (m *Machine) EnablePerTintStats() { m.sys.EnablePerTintStats() }

// TintStats returns per-tint counters (empty unless EnablePerTintStats was
// called).
func (m *Machine) TintStats() map[Tint]memsys.TintStats { return m.sys.TintStats() }

// Describe renders the machine's software-visible state — tint table,
// per-tint statistics, scratchpad contents, cache occupancy — for
// debugging a mapping.
func (m *Machine) Describe() string { return m.sys.Describe() }

// VerifyIsolation checks whether the given columns are exclusively owned:
// no other tint's bit vector — including the default tint's, which governs
// every unmapped page — may select them for replacement. When it returns
// nil, data resident in those columns can never be evicted by other data,
// so a pinned region's worst-case access latency is the cache hit time (the
// paper's §2.3 real-time guarantee). ownTints lists the tints permitted to
// use the columns (typically the pinned region's tint).
func (m *Machine) VerifyIsolation(columns []int, ownTints ...Tint) error {
	var mask replacement.Mask
	for _, c := range columns {
		if c < 0 || c >= m.cfg.Columns {
			return fmt.Errorf("colcache: column %d outside [0,%d)", c, m.cfg.Columns)
		}
		mask |= replacement.Of(c)
	}
	own := make(map[Tint]bool, len(ownTints))
	for _, t := range ownTints {
		own[t] = true
	}
	table := m.sys.Tints()
	for _, id := range table.Tints() {
		if own[id] {
			continue
		}
		if overlap := table.Mask(id) & mask; overlap != 0 {
			return fmt.Errorf("colcache: tint %q may replace into column(s) %v",
				table.Name(id), overlap.Ways(m.cfg.Columns))
		}
	}
	return nil
}

// EnergyPJ returns the energy the machine has consumed, in picojoules
// (always tracked; see memsys.DefaultEnergy for the per-event model, or
// m.System().SetEnergyModel to change it).
func (m *Machine) EnergyPJ() int64 { return m.sys.EnergyPJ() }
