// Command sweep runs a built-in workload across a sweep of one machine
// parameter and emits CSV, for quick design-space exploration.
//
// Usage:
//
//	sweep -workload idct -sweep ways=1,2,4,8 [-layout]
//	sweep -workload gzip -sweep penalty=5,10,20,40,80
//	sweep -workload matmul -sweep sets=8,16,32,64
//
// Fixed parameters default to a 2KB 4-way cache (32B lines, 20-cycle miss
// penalty, 64B pages) and can be overridden with -ways/-sets/-line/-penalty.
// With -layout the paper's data layout algorithm places the workload's
// variables before each run; otherwise the cache is unmanaged.
//
// Sweep points are independent machines and run on a bounded worker pool
// (-jobs N; 0 = one worker per CPU, 1 = serial). The CSV rows come out in
// sweep order and are byte-identical at any -jobs value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"colcache/internal/cache"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/runner"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
)

type fixed struct {
	ways, sets, line, penalty, page int
	useLayout                       bool
}

func main() {
	workload := flag.String("workload", "", "workload: dequant, plus, idct, gzip, matmul, fir, histogram")
	sweepSpec := flag.String("sweep", "", "parameter sweep, e.g. ways=1,2,4,8 (ways, sets, line, penalty)")
	ways := flag.Int("ways", 4, "cache ways (columns)")
	sets := flag.Int("sets", 16, "cache sets")
	line := flag.Int("line", 32, "line bytes")
	penalty := flag.Int("penalty", 20, "miss penalty cycles")
	page := flag.Int("page", 64, "page bytes")
	useLayout := flag.Bool("layout", false, "apply the data layout algorithm before each run")
	jobs := flag.Int("jobs", 0, "parallel sweep points (0 = one per CPU, 1 = serial)")
	flag.Parse()

	prog, err := buildWorkload(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	param, values, err := parseSweep(*sweepSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}

	f := fixed{ways: *ways, sets: *sets, line: *line, penalty: *penalty, page: *page, useLayout: *useLayout}
	rows, err := sweepRows(prog, f, param, values, *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("param,value,cycles,instructions,cpi,missrate")
	for _, row := range rows {
		fmt.Print(row)
	}
}

// sweepRows runs every sweep point on a bounded worker pool (each point
// builds its own memsys.System; the workload is shared read-only) and
// returns one CSV line per point, in sweep order regardless of jobs.
func sweepRows(prog *workloads.Program, f fixed, param string, values []int, jobs int) ([]string, error) {
	return runner.Map(context.Background(), values,
		func(_ context.Context, v, _ int) (string, error) {
			cfg := f
			switch param {
			case "ways":
				cfg.ways = v
			case "sets":
				cfg.sets = v
			case "line":
				cfg.line = v
			case "penalty":
				cfg.penalty = v
			}
			cycles, st, err := run(prog, cfg)
			if err != nil {
				return "", fmt.Errorf("%s=%d: %w", param, v, err)
			}
			return fmt.Sprintf("%s,%d,%d,%d,%.4f,%.4f\n",
				param, v, cycles, st.Instructions, st.CPI(), st.Cache.MissRate()), nil
		},
		runner.Options{Workers: jobs})
}

func parseSweep(spec string) (string, []int, error) {
	name, list, ok := strings.Cut(spec, "=")
	if !ok {
		return "", nil, fmt.Errorf("want -sweep param=v1,v2,..., got %q", spec)
	}
	name = strings.TrimSpace(name)
	switch name {
	case "ways", "sets", "line", "penalty":
	default:
		return "", nil, fmt.Errorf("unknown sweep parameter %q", name)
	}
	var values []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return "", nil, fmt.Errorf("bad value %q: %v", s, err)
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		return "", nil, fmt.Errorf("no sweep values")
	}
	return name, values, nil
}

func buildWorkload(name string) (*workloads.Program, error) {
	switch name {
	case "dequant":
		return mpeg.Dequant(mpeg.Config{}), nil
	case "plus":
		return mpeg.Plus(mpeg.Config{}), nil
	case "idct":
		return mpeg.Idct(mpeg.Config{}), nil
	case "gzip":
		return gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0), nil
	case "matmul":
		return kernels.MatMul(kernels.MatMulConfig{}), nil
	case "fir":
		return kernels.FIR(kernels.FIRConfig{}), nil
	case "histogram":
		return kernels.Histogram(kernels.HistogramConfig{}), nil
	case "":
		return nil, fmt.Errorf("no -workload given")
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func run(prog *workloads.Program, f fixed) (int64, memsys.Stats, error) {
	timing := memsys.DefaultTiming
	timing.MissPenalty = f.penalty
	timing.Uncached = f.penalty
	g, err := memory.NewGeometry(f.line, f.page)
	if err != nil {
		return 0, memsys.Stats{}, err
	}
	sys, err := memsys.New(memsys.Config{
		Geometry: g,
		Cache:    cache.Config{LineBytes: f.line, NumSets: f.sets, NumWays: f.ways},
		Timing:   timing,
	})
	if err != nil {
		return 0, memsys.Stats{}, err
	}
	if f.useLayout {
		plan, err := layout.Build(layout.Request{
			Trace: prog.Trace,
			Vars:  prog.Vars,
			Machine: layout.Machine{
				Columns:     f.ways,
				ColumnBytes: f.sets * f.line,
			},
		})
		if err != nil {
			return 0, memsys.Stats{}, err
		}
		if _, err := layout.Apply(plan, sys, 0); err != nil {
			return 0, memsys.Stats{}, err
		}
	}
	cycles := sys.Run(prog.Trace)
	return cycles, sys.Stats(), nil
}
