package main

import "testing"

func TestParseSweep(t *testing.T) {
	param, values, err := parseSweep("ways=1,2,4")
	if err != nil || param != "ways" || len(values) != 3 || values[2] != 4 {
		t.Errorf("got %q %v %v", param, values, err)
	}
	for _, bad := range []string{"", "ways", "bogus=1", "ways=a", "ways="} {
		if _, _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q) succeeded", bad)
		}
	}
}

func TestBuildWorkloadAll(t *testing.T) {
	for _, w := range []string{"dequant", "plus", "idct", "gzip", "matmul", "fir", "histogram"} {
		p, err := buildWorkload(w)
		if err != nil || len(p.Trace) == 0 {
			t.Errorf("buildWorkload(%s): %v", w, err)
		}
	}
	if _, err := buildWorkload("zzz"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := buildWorkload(""); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestRunSweepPoint(t *testing.T) {
	prog, _ := buildWorkload("dequant")
	base := fixed{ways: 4, sets: 16, line: 32, penalty: 20, page: 64}
	cycles, st, err := run(prog, base)
	if err != nil || cycles <= 0 || st.Instructions == 0 {
		t.Fatalf("cycles=%d stats=%+v err=%v", cycles, st, err)
	}
	// With layout, the same point must not be slower than massively
	// penalized unmanaged... just check it runs and is sane.
	laidOut := base
	laidOut.useLayout = true
	cycles2, _, err := run(prog, laidOut)
	if err != nil || cycles2 <= 0 {
		t.Fatalf("layout run failed: %v", err)
	}
	// A higher miss penalty must cost more cycles.
	expensive := base
	expensive.penalty = 200
	cycles3, _, err := run(prog, expensive)
	if err != nil || cycles3 <= cycles {
		t.Errorf("penalty sweep not monotone: %d vs %d (err=%v)", cycles3, cycles, err)
	}
	// Bad geometry surfaces as an error.
	broken := base
	broken.line = 33
	if _, _, err := run(prog, broken); err == nil {
		t.Error("bad geometry accepted")
	}
}

// TestSweepRowsParallelDeterminism checks the -jobs guarantee: the CSV
// rows are identical whether the sweep points run serially or on a pool.
func TestSweepRowsParallelDeterminism(t *testing.T) {
	prog, _ := buildWorkload("idct")
	f := fixed{ways: 4, sets: 16, line: 32, penalty: 20, page: 64, useLayout: true}
	values := []int{1, 2, 4, 8}
	serial, err := sweepRows(prog, f, "ways", values, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweepRows(prog, f, "ways", values, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(values) || len(parallel) != len(values) {
		t.Fatalf("row counts %d/%d, want %d", len(serial), len(parallel), len(values))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs:\nserial:   %q\nparallel: %q", i, serial[i], parallel[i])
		}
	}
}

// TestSweepRowsError checks that a failing sweep point aborts the sweep
// with the point identified.
func TestSweepRowsError(t *testing.T) {
	prog, _ := buildWorkload("dequant")
	f := fixed{ways: 4, sets: 16, line: 32, penalty: 20, page: 64}
	// line=33 is invalid geometry, so the second point fails.
	if _, err := sweepRows(prog, f, "line", []int{32, 33}, 2); err == nil {
		t.Error("invalid sweep point did not error")
	}
}
