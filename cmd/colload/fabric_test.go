package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/fabric"
	"colcache/internal/service"
)

// TestDigestRetryRecovery pins the drain-shed recovery path: a server
// that cancels every accepted job retriable-with-digest, but whose
// content-addressed cache holds the finished result. colload must follow
// the digest to GET /v1/results/{digest} instead of erroring out — and
// the run counts as successful work (digest_recovered), not as a loss.
func TestDigestRetryRecovery(t *testing.T) {
	digest := strings.Repeat("ab", 32)
	var accepted atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeOK(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		accepted.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(colcache.JobInfo{
			ID: "j00000001", Kind: "simulate", State: colcache.StateQueued, Digest: digest,
			SubmittedAt: time.Now(),
		})
	})
	mux.HandleFunc("GET /v1/jobs/j00000001", func(w http.ResponseWriter, r *http.Request) {
		// Shed: canceled but retriable, carrying the digest to follow.
		writeOK(w, colcache.JobInfo{
			ID: "j00000001", Kind: "simulate", State: colcache.StateCanceled,
			Retriable: true, Digest: digest, SubmittedAt: time.Now(),
		})
	})
	mux.HandleFunc("GET /v1/results/"+digest, func(w http.ResponseWriter, r *http.Request) {
		writeOK(w, colcache.StoredResult{
			Kind: "simulate", Digest: digest,
			Result: &colcache.SimResult{Label: "stored", Cycles: 42, TraceAccesses: 7},
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// The books close: every accepted job was canceled.
		n := accepted.Load()
		fmt.Fprintf(w, "colserved_jobs_total{kind=\"simulate\",outcome=\"accepted\"} %d\n", n)
		fmt.Fprintf(w, "colserved_jobs_total{kind=\"simulate\",outcome=\"canceled\"} %d\n", n)
		fmt.Fprintf(w, "colserved_jobs_total{kind=\"simulate\",outcome=\"done\"} 0\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-base", ts.URL, "-c", "2", "-duration", "200ms", "-out", out})
	if code != 0 {
		t.Fatalf("colload exited %d; digest recovery should be a success", code)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, blob)
	}
	if rep.DigestRecovered == 0 {
		t.Fatalf("no digest recoveries recorded: %+v", rep)
	}
	if rep.Errors != 0 || rep.Completed != 0 {
		t.Fatalf("unexpected errors/completions: %+v", rep)
	}
	if !rep.LedgerMatches {
		t.Fatalf("ledger mismatch: %+v", rep)
	}
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// TestFabricLoad drives colload -fabric against an in-process
// coordinator with two real workers: the run must complete, and the
// cluster-level ledger reconciliation must replace the /metrics scrape.
func TestFabricLoad(t *testing.T) {
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{PeerTTL: 500 * time.Millisecond})
	cs := httptest.NewServer(coord.Handler())
	defer func() {
		cs.Close()
		coord.Close()
	}()

	var drains []func()
	for _, name := range []string{"w1", "w2"} {
		srv := service.New(service.Config{Workers: 2, QueueDepth: 32})
		ws := httptest.NewServer(srv.Handler())
		agent := fabric.StartAgent(fabric.AgentConfig{
			Coordinator: cs.URL, Name: name, BaseURL: ws.URL,
			Interval: 50 * time.Millisecond, Status: srv.FabricStatus,
		})
		srv.SetFabricGauges(agent.Gauges)
		drains = append(drains, func() {
			agent.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Drain(ctx)
			ws.Close()
		})
	}
	defer func() {
		for _, d := range drains {
			d()
		}
	}()

	// Wait for both workers to join before loading.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(cs.URL + "/fabric/v1/nodes")
		if err == nil {
			var cv fabric.ClusterView
			json.NewDecoder(resp.Body).Decode(&cv)
			resp.Body.Close()
			alive := 0
			for _, w := range cv.Workers {
				if w.Alive {
					alive++
				}
			}
			if alive == 2 {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	out := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-base", cs.URL, "-fabric", "-c", "8", "-duration", "500ms", "-spec-mix", "8", "-out", out})
	if code != 0 {
		t.Fatalf("colload -fabric exited %d", code)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, blob)
	}
	if rep.Completed == 0 {
		t.Fatalf("no completions through the coordinator: %+v", rep)
	}
	if rep.FabricNodes != 2 {
		t.Fatalf("FabricNodes = %d, want 2: %+v", rep.FabricNodes, rep)
	}
	if !rep.LedgerMatches {
		t.Fatalf("fabric ledgers did not reconcile: %+v", rep)
	}
	if rep.FabricStealFailures != 0 {
		t.Fatalf("steal failures on a healthy cluster: %+v", rep)
	}
	if len(rep.FabricNodeLedgers) != 2 {
		t.Fatalf("per-node ledgers missing: %+v", rep.FabricNodeLedgers)
	}
}
