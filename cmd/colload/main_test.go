package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"colcache/internal/service"
)

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	sort.Float64s(vals)
	cases := []struct {
		p    float64
		want float64
	}{{0.5, 3}, {0.9, 5}, {0.99, 5}, {0.2, 1}}
	for _, tc := range cases {
		if got := percentile(vals, tc.p); got != tc.want {
			t.Errorf("p%.0f = %v, want %v", tc.p*100, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestCheckLedger(t *testing.T) {
	rep := report{Accepted: 10, Rejected: 2, Completed: 10}
	ok := map[string]int64{"accepted": 10, "rejected": 2, "done": 10}
	if !checkLedger(ok, rep) {
		t.Fatal("closed ledger rejected")
	}
	open := map[string]int64{"accepted": 10, "rejected": 2, "done": 9}
	if checkLedger(open, rep) {
		t.Fatal("open ledger accepted")
	}
	short := map[string]int64{"accepted": 9, "rejected": 2, "done": 9}
	if checkLedger(short, rep) {
		t.Fatal("server missing accepted jobs but ledger passed")
	}
	drained := map[string]int64{"accepted": 12, "rejected": 2, "done": 10, "canceled": 2}
	if !checkLedger(drained, rep) {
		t.Fatal("ledger with canceled jobs rejected")
	}
}

func TestBadFlags(t *testing.T) {
	if got := run([]string{"-no-such-flag"}); got != 2 {
		t.Fatalf("run = %d, want 2", got)
	}
}

func TestUnreachableServer(t *testing.T) {
	if got := run([]string{"-base", "http://127.0.0.1:1", "-c", "1", "-duration", "100ms"}); got != 1 {
		t.Fatalf("run = %d, want 1", got)
	}
}

// TestLoadAgainstService drives a real in-process service and checks the
// report: completions happened, the ledger closed, and the JSON artifact
// landed.
func TestLoadAgainstService(t *testing.T) {
	srv := service.New(service.Config{Workers: 4, QueueDepth: 16})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
	}()

	out := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-base", ts.URL, "-c", "16", "-duration", "500ms", "-out", out})
	if code != 0 {
		t.Fatalf("colload exited %d", code)
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, blob)
	}
	if rep.Completed == 0 || rep.Accepted != rep.Completed {
		t.Fatalf("report: %+v", rep)
	}
	if !rep.LedgerMatches {
		t.Fatalf("ledger mismatch: %+v", rep)
	}
	if rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Fatalf("bad latency stats: %+v", rep)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
}

// TestZipfMixAgainstDurableService drives the repeated-spec mode against
// a durable server: the zipfian mix must produce measurable cache hits,
// hit-ratio accounting, separate cached-path latency percentiles, and a
// ledger that still closes (cached answers live outside the accepted
// identity).
func TestZipfMixAgainstDurableService(t *testing.T) {
	dur, err := service.OpenDurability(t.TempDir(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Workers: 4, QueueDepth: 32, Durability: dur})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
		dur.Close()
	}()

	out := filepath.Join(t.TempDir(), "bench.json")
	code := run([]string{"-base", ts.URL, "-c", "16", "-duration", "1s", "-spec-mix", "8", "-out", out})
	if code != 0 {
		t.Fatalf("colload exited %d", code)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, blob)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("zipf mix produced no cache hits: %+v", rep)
	}
	if rep.CacheHitRatio <= 0 || rep.CacheHitRatio >= 1 {
		t.Fatalf("hit ratio out of range: %+v", rep)
	}
	if rep.CachedLatencyP50Ms <= 0 {
		t.Fatalf("cached latency not measured: %+v", rep)
	}
	// Eight distinct specs were all computed at least once.
	if rep.Completed < 8 {
		t.Fatalf("mix not fully computed: %+v", rep)
	}
	if !rep.LedgerMatches {
		t.Fatalf("ledger mismatch: %+v", rep)
	}
}
