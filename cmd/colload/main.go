// Command colload drives a colserved instance with concurrent simulate
// requests and reports throughput, latency percentiles, and the
// backpressure behavior it observed.
//
// Usage:
//
//	colload -base http://127.0.0.1:8344 [-c 200] [-duration 5s] [-spec-mix 16] [-out BENCH_PR3.json]
//
// Each of -c workers loops: submit a small simulation, poll it to a
// terminal state, record the end-to-end latency. A 429 answer counts as a
// shed and the worker honors Retry-After before retrying; any other error,
// any failed job, or any accepted job that vanishes is a hard error.
//
// With -spec-mix N each request draws one of N distinct specs from a
// zipfian popularity distribution — the repeated-submission shape that a
// durable server's result cache memoizes. Submissions the server answers
// straight from its cache ("cached": true) are counted and timed
// separately, so the report shows the hit ratio and how much latency
// memoization shaves off.
// After the run colload scrapes /metrics and cross-checks the server's
// ledger against its own counts: accepted must equal done+failed+canceled,
// and the server's done count must cover every completion colload saw.
// Exit status is non-zero on any error or ledger mismatch.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	colcache "colcache"
	"colcache/internal/fabric"
)

type report struct {
	Concurrency  int     `json:"concurrency"`
	SpecMix      int     `json:"spec_mix,omitempty"`
	Duration     float64 `json:"duration_seconds"`
	Submitted    int64   `json:"submitted"`
	Accepted     int64   `json:"accepted"`
	Rejected     int64   `json:"rejected"` // 429 sheds (not errors)
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	Throughput   float64 `json:"jobs_per_second"` // completed + cache hits
	LatencyP50Ms float64 `json:"latency_p50_ms"`  // simulated (non-cached) path
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`
	// Result-cache observations (durable servers only; zero elsewhere).
	CacheHits          int64            `json:"cache_hits,omitempty"`
	CacheHitRatio      float64          `json:"cache_hit_ratio,omitempty"`
	CachedLatencyP50Ms float64          `json:"cached_latency_p50_ms,omitempty"`
	CachedLatencyP90Ms float64          `json:"cached_latency_p90_ms,omitempty"`
	CachedLatencyP99Ms float64          `json:"cached_latency_p99_ms,omitempty"`
	ServerLedger       map[string]int64 `json:"server_ledger,omitempty"`
	LedgerMatches      bool             `json:"ledger_matches"`
	// Digest recoveries: accepted jobs handed back canceled+retriable
	// (a drain or a failed steal) whose results were nonetheless served
	// from the content-addressed cache via GET /v1/results/{digest}.
	DigestRecovered int64 `json:"digest_recovered,omitempty"`
	// Fabric observations (-fabric runs only).
	FabricNodes         int              `json:"fabric_nodes,omitempty"`
	FabricStolen        int64            `json:"fabric_stolen,omitempty"`
	FabricStealFailures int64            `json:"fabric_steal_failures"`
	FabricNodeLedgers   map[string]int64 `json:"fabric_node_jobs,omitempty"` // accepted per alive node
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("colload", flag.ContinueOnError)
	var (
		base     = fs.String("base", "http://127.0.0.1:8344", "colserved base URL")
		conc     = fs.Int("c", 200, "concurrent clients")
		duration = fs.Duration("duration", 5*time.Second, "load duration")
		out      = fs.String("out", "", "write the JSON report here")
		workload = fs.String("workload", "stream", "workload each request simulates")
		size     = fs.Uint64("size", 2048, "workload size_bytes")
		specMix  = fs.Int("spec-mix", 0, "distinct specs drawn zipfian per request (0: one spec)")
		fabricFl = fs.Bool("fabric", false, "base is a fabric coordinator: reconcile per-node ledgers instead of /metrics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specMix < 0 {
		log.Printf("colload: -spec-mix must be >= 0")
		return 2
	}

	client := colcache.NewClient(*base, &http.Client{Timeout: 30 * time.Second})

	// Fail fast if the server isn't there.
	pingCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.Healthz(pingCtx); err != nil {
		log.Printf("colload: %s unreachable: %v", *base, err)
		return 1
	}

	spec := colcache.SimSpec{
		Machine:  colcache.MachineSpec{Sets: 16, Ways: 4},
		Workload: &colcache.WorkloadSpec{Name: *workload, SizeBytes: *size, Passes: 1},
	}
	// The spec mix varies the workload footprint: each rank is a distinct
	// content address, and the zipfian draw makes low ranks hot — exactly
	// the repeated-submission shape the result cache memoizes.
	var specs []colcache.SimSpec
	for i := 0; i < *specMix; i++ {
		s := spec
		w := *s.Workload
		w.SizeBytes = *size + uint64(i)*64
		s.Workload = &w
		specs = append(specs, s)
	}

	var submitted, accepted, rejected, completed, cacheHits, digestRecovered, errCount atomic.Int64
	var mu sync.Mutex
	var latencies []float64       // milliseconds, simulated path
	var cachedLatencies []float64 // milliseconds, answered from the result cache

	deadline := time.Now().Add(*duration)
	runCtx, stopLoad := context.WithDeadline(context.Background(), deadline)
	defer stopLoad()

	var wg sync.WaitGroup
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := spec
			s.Label = fmt.Sprintf("colload-%d", c)
			// Deterministic per-worker zipf: rank 0 is the hottest spec.
			var zipf *rand.Zipf
			if len(specs) > 1 {
				zipf = rand.NewZipf(rand.New(rand.NewSource(int64(c)+1)), 1.3, 1, uint64(len(specs)-1))
			}
			for runCtx.Err() == nil {
				if zipf != nil {
					s = specs[zipf.Uint64()]
					s.Label = fmt.Sprintf("colload-%d", c)
				} else if len(specs) == 1 {
					s = specs[0]
					s.Label = fmt.Sprintf("colload-%d", c)
				}
				start := time.Now()
				submitted.Add(1)
				info, err := client.SubmitSimulate(runCtx, s)
				if err != nil {
					var oe *colcache.OverloadedError
					if errors.As(err, &oe) {
						rejected.Add(1)
						select {
						case <-runCtx.Done():
						case <-time.After(oe.RetryAfter):
						}
						continue
					}
					if runCtx.Err() != nil {
						return
					}
					errCount.Add(1)
					log.Printf("colload: client %d submit: %v", c, err)
					return
				}
				if info.Cached {
					// Served from the result cache: terminal document, no job
					// to poll, and it must carry a usable result.
					if info.State != colcache.StateDone || info.Result == nil {
						errCount.Add(1)
						log.Printf("colload: client %d cached answer without result: %+v", c, info)
						return
					}
					cacheHits.Add(1)
					ms := float64(time.Since(start).Microseconds()) / 1000
					mu.Lock()
					cachedLatencies = append(cachedLatencies, ms)
					mu.Unlock()
					continue
				}
				accepted.Add(1)
				// Poll to terminal even past the load deadline: an accepted
				// job must never be abandoned, that's the contract under test.
				final, err := client.Wait(context.Background(), info.ID)
				if err != nil {
					errCount.Add(1)
					log.Printf("colload: client %d job %s: %v", c, info.ID, err)
					return
				}
				if final.State == colcache.StateCanceled && final.Retriable {
					// Shed by a drain (or a steal no worker could absorb).
					// The terminal document carries the submission's digest:
					// follow it to the content-addressed cache before
					// resubmitting — a finished result may already be stored.
					if final.Digest != "" {
						sr, err := client.StoredResult(context.Background(), final.Digest)
						if err == nil && sr.Result != nil {
							digestRecovered.Add(1)
							continue
						}
					}
					// Nothing stored: the spec is unchanged, resubmit it.
					continue
				}
				if final.State != colcache.StateDone {
					errCount.Add(1)
					log.Printf("colload: client %d job %s ended %s: %s", c, info.ID, final.State, final.Error)
					return
				}
				completed.Add(1)
				ms := float64(time.Since(start).Microseconds()) / 1000
				mu.Lock()
				latencies = append(latencies, ms)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(deadline.Add(-*duration))

	rep := report{
		Concurrency:     *conc,
		SpecMix:         *specMix,
		Duration:        elapsed.Seconds(),
		Submitted:       submitted.Load(),
		Accepted:        accepted.Load(),
		Rejected:        rejected.Load(),
		Completed:       completed.Load(),
		CacheHits:       cacheHits.Load(),
		DigestRecovered: digestRecovered.Load(),
		Errors:          errCount.Load(),
	}
	if rep.Duration > 0 {
		rep.Throughput = float64(rep.Completed+rep.CacheHits+rep.DigestRecovered) / rep.Duration
	}
	if served := rep.Completed + rep.CacheHits; served > 0 {
		rep.CacheHitRatio = float64(rep.CacheHits) / float64(served)
	}
	sort.Float64s(latencies)
	rep.LatencyP50Ms = percentile(latencies, 0.50)
	rep.LatencyP90Ms = percentile(latencies, 0.90)
	rep.LatencyP99Ms = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMaxMs = latencies[n-1]
	}
	sort.Float64s(cachedLatencies)
	rep.CachedLatencyP50Ms = percentile(cachedLatencies, 0.50)
	rep.CachedLatencyP90Ms = percentile(cachedLatencies, 0.90)
	rep.CachedLatencyP99Ms = percentile(cachedLatencies, 0.99)

	// Cross-check the server's ledger against what we observed. Against a
	// fabric coordinator the books live per node in the heartbeat stream,
	// not in one /metrics ledger.
	if *fabricFl {
		if err := checkFabric(*base, &rep); err != nil {
			log.Printf("colload: fabric check: %v", err)
			errCount.Add(1)
			rep.Errors = errCount.Load()
		}
	} else {
		ledger, err := scrapeLedger(client)
		if err != nil {
			log.Printf("colload: metrics scrape: %v", err)
			errCount.Add(1)
			rep.Errors = errCount.Load()
		} else {
			rep.ServerLedger = ledger
			rep.LedgerMatches = checkLedger(ledger, rep)
			if !rep.LedgerMatches {
				log.Printf("colload: ledger mismatch: server %v vs observed accepted=%d rejected=%d completed=%d",
					ledger, rep.Accepted, rep.Rejected, rep.Completed)
			}
		}
	}

	blob, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Printf("colload: write %s: %v", *out, err)
			return 1
		}
	}
	if rep.Errors > 0 || !rep.LedgerMatches || rep.Completed+rep.DigestRecovered == 0 {
		return 1
	}
	return 0
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// checkFabric reconciles the cluster's books through the coordinator:
// every alive worker's heartbeat ledger must balance (accepted equals
// done+failed+canceled), the coordinator must have no pending routed jobs,
// and no steal may have failed. Heartbeats lag by up to one interval and
// terminal states land on the last poll, so imbalance is retried for a
// grace window before it counts as a mismatch.
func checkFabric(base string, rep *report) error {
	httpc := &http.Client{Timeout: 5 * time.Second}
	var lastErr error
	for deadline := time.Now().Add(10 * time.Second); ; {
		var cluster fabric.ClusterView
		resp, err := httpc.Get(base + "/fabric/v1/nodes")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&cluster)
			resp.Body.Close()
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = reconcileCluster(cluster, rep)
			if lastErr == nil {
				rep.LedgerMatches = true
				return nil
			}
		}
		if time.Now().After(deadline) {
			return lastErr
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func reconcileCluster(cluster fabric.ClusterView, rep *report) error {
	rep.FabricStolen = cluster.JobsStolen
	rep.FabricStealFailures = cluster.StealFailures
	rep.FabricNodes = 0
	aggregate := map[string]int64{}
	perNode := map[string]int64{}
	var unbalanced []string
	for _, w := range cluster.Workers {
		if !w.Alive {
			continue
		}
		rep.FabricNodes++
		perNode[w.Name] = w.Ledger["accepted"]
		for k, v := range w.Ledger {
			aggregate[k] += v
		}
		if w.Ledger["accepted"] != w.Ledger["done"]+w.Ledger["failed"]+w.Ledger["canceled"] {
			unbalanced = append(unbalanced, w.Name)
		}
	}
	rep.ServerLedger = aggregate
	rep.FabricNodeLedgers = perNode
	if rep.FabricNodes == 0 {
		return errors.New("no alive workers in the cluster view")
	}
	if len(unbalanced) > 0 {
		return fmt.Errorf("unbalanced node ledgers: %v", unbalanced)
	}
	if cluster.StealFailures > 0 {
		return fmt.Errorf("%d jobs were lost to failed steals", cluster.StealFailures)
	}
	if cluster.PendingJobs > 0 {
		return fmt.Errorf("%d routed jobs still pending at the coordinator", cluster.PendingJobs)
	}
	return nil
}

var ledgerRe = regexp.MustCompile(`(?m)^colserved_jobs_total\{kind="simulate",outcome="(\w+)"\} (\d+)$`)

// scrapeLedger pulls the simulate-job counters out of /metrics.
func scrapeLedger(client *colcache.Client) (map[string]int64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	text, err := client.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	ledger := map[string]int64{}
	for _, m := range ledgerRe.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %v", m[0], err)
		}
		ledger[m[1]] = v
	}
	return ledger, nil
}

// checkLedger verifies the server's books against colload's observations.
// Other clients may be hitting the server, so the server counts must be
// at least ours; the accepted = terminal identity must hold exactly once
// the queue is idle (all our jobs were polled to completion). Cached
// answers sit outside the identity: they were never accepted into the
// queue, they have their own outcome counter.
func checkLedger(ledger map[string]int64, rep report) bool {
	if ledger["accepted"] < rep.Accepted {
		return false
	}
	if ledger["rejected"] < rep.Rejected {
		return false
	}
	if ledger["done"] < rep.Completed {
		return false
	}
	if ledger["cached"] < rep.CacheHits {
		return false
	}
	return ledger["accepted"] == ledger["done"]+ledger["failed"]+ledger["canceled"]
}
