package main

import (
	"encoding/json"
	"testing"

	"colcache/internal/ir"
)

func TestToIRConversion(t *testing.T) {
	in := `[
		{"access": "a"},
		{"access": "b", "write": true},
		{"compute": 5},
		{"loop": {"count": 10, "body": [{"access": "a"}]}},
		{"branch": {"prob": 0.25, "then": [{"access": "a"}], "else": [{"compute": 1}]}}
	]`
	var stmts []stmtJSON
	if err := json.Unmarshal([]byte(in), &stmts); err != nil {
		t.Fatal(err)
	}
	out, err := toIR(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("stmts=%d", len(out))
	}
	if a, ok := out[0].(ir.Access); !ok || a.Array != "a" || a.Write {
		t.Errorf("out[0]=%#v", out[0])
	}
	if a, ok := out[1].(ir.Access); !ok || !a.Write {
		t.Errorf("out[1]=%#v", out[1])
	}
	if c, ok := out[2].(ir.Compute); !ok || c.Instrs != 5 {
		t.Errorf("out[2]=%#v", out[2])
	}
	if l, ok := out[3].(ir.Loop); !ok || l.Count != 10 || len(l.Body) != 1 {
		t.Errorf("out[3]=%#v", out[3])
	}
	if b, ok := out[4].(ir.Branch); !ok || b.Prob != 0.25 || len(b.Then) != 1 || len(b.Else) != 1 {
		t.Errorf("out[4]=%#v", out[4])
	}
}

func TestToIRRejectsAmbiguousStatements(t *testing.T) {
	// Both access and compute set.
	bad := []stmtJSON{{Access: "a", Compute: 3}}
	if _, err := toIR(bad); err == nil {
		t.Error("ambiguous statement accepted")
	}
	// Nothing set.
	if _, err := toIR([]stmtJSON{{}}); err == nil {
		t.Error("empty statement accepted")
	}
	// Nested errors propagate.
	nested := []stmtJSON{{Loop: &loopJSON{Count: 2, Body: []stmtJSON{{}}}}}
	if _, err := toIR(nested); err == nil {
		t.Error("nested empty statement accepted")
	}
	nestedBr := []stmtJSON{{Branch: &branchJSON{Prob: 0.5, Then: []stmtJSON{{}}}}}
	if _, err := toIR(nestedBr); err == nil {
		t.Error("branch with bad arm accepted")
	}
}
