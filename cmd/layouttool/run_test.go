package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProfileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	trace := writeFile(t, dir, "trace.txt", "R 1000\nR 2000\nR 1001\nR 2001\n")
	prog := writeFile(t, dir, "prog.json", `{
		"machine": {"columns": 2, "columnBytes": 512},
		"variables": [
			{"name": "a", "base": 4096, "size": 256},
			{"name": "b", "base": 8192, "size": 256}
		],
		"trace": "`+trace+`"
	}`)
	plan := filepath.Join(dir, "plan.json")
	if err := runProfile(prog, plan); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(plan); err != nil {
		t.Errorf("plan not saved: %v", err)
	}
}

func TestRunProfileErrors(t *testing.T) {
	dir := t.TempDir()
	if err := runProfile(filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Error("missing input accepted")
	}
	bad := writeFile(t, dir, "bad.json", "{not json")
	if err := runProfile(bad, ""); err == nil {
		t.Error("bad JSON accepted")
	}
	noTrace := writeFile(t, dir, "notrace.json", `{
		"machine": {"columns": 2, "columnBytes": 512},
		"variables": [], "trace": "/nonexistent"
	}`)
	if err := runProfile(noTrace, ""); err == nil {
		t.Error("missing trace file accepted")
	}
	badTrace := writeFile(t, dir, "trace.txt", "X nope\n")
	badTraceJSON := writeFile(t, dir, "badtrace.json", `{
		"machine": {"columns": 2, "columnBytes": 512},
		"variables": [], "trace": "`+badTrace+`"
	}`)
	if err := runProfile(badTraceJSON, ""); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestRunStaticEndToEnd(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "static.json", `{
		"machine": {"columns": 2, "columnBytes": 512},
		"arrays": [{"name": "a", "bytes": 256}, {"name": "b", "bytes": 1100}],
		"body": [
			{"loop": {"count": 50, "body": [{"access": "a"}, {"access": "b", "write": true}]}}
		]
	}`)
	if err := runStatic(prog); err != nil {
		t.Fatal(err)
	}
}

func TestRunStaticErrors(t *testing.T) {
	dir := t.TempDir()
	badIR := writeFile(t, dir, "badir.json", `{
		"machine": {"columns": 2, "columnBytes": 512},
		"arrays": [],
		"body": [{"access": "ghost"}]
	}`)
	if err := runStatic(badIR); err == nil {
		t.Error("IR referencing undeclared array accepted")
	}
	ambiguous := writeFile(t, dir, "amb.json", `{
		"machine": {"columns": 2, "columnBytes": 512},
		"arrays": [{"name": "a", "bytes": 64}],
		"body": [{"access": "a", "compute": 5}]
	}`)
	if err := runStatic(ambiguous); err == nil {
		t.Error("ambiguous statement accepted")
	}
}
