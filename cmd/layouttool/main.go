// Command layouttool runs the paper's data layout algorithm over a program
// description and prints the column/scratchpad assignment of every variable.
//
// Two input methods are supported, matching paper §3.1.1:
//
//	layouttool -profile prog.json        # profile method: trace + variables
//	layouttool -static prog.json         # program-analysis method: IR
//
// Profile-method JSON:
//
//	{
//	  "machine":   {"columns": 4, "columnBytes": 512, "scratchpadBytes": 512},
//	  "variables": [{"name": "a", "base": 4096, "size": 256}, ...],
//	  "trace":     "trace.txt",
//	  "forceScratch": ["a"]
//	}
//
// Static-method JSON replaces "variables"/"trace" with an IR:
//
//	{
//	  "machine": {...},
//	  "arrays":  [{"name": "a", "bytes": 256}, ...],
//	  "body":    [{"access": "a"}, {"compute": 5},
//	              {"loop": {"count": 10, "body": [...]}},
//	              {"branch": {"prob": 0.25, "then": [...], "else": [...]}}]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"colcache/internal/ir"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

type machineJSON struct {
	Columns         int    `json:"columns"`
	ColumnBytes     int    `json:"columnBytes"`
	ScratchpadBytes uint64 `json:"scratchpadBytes"`
}

type variableJSON struct {
	Name string `json:"name"`
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

type arrayJSON struct {
	Name  string `json:"name"`
	Bytes uint64 `json:"bytes"`
}

type stmtJSON struct {
	Access  string      `json:"access,omitempty"`
	Write   bool        `json:"write,omitempty"`
	Compute int         `json:"compute,omitempty"`
	Loop    *loopJSON   `json:"loop,omitempty"`
	Branch  *branchJSON `json:"branch,omitempty"`
}

type loopJSON struct {
	Count int        `json:"count"`
	Body  []stmtJSON `json:"body"`
}

type branchJSON struct {
	Prob float64    `json:"prob"`
	Then []stmtJSON `json:"then"`
	Else []stmtJSON `json:"else"`
}

type inputJSON struct {
	Machine      machineJSON    `json:"machine"`
	Variables    []variableJSON `json:"variables"`
	TraceFile    string         `json:"trace"`
	ForceScratch []string       `json:"forceScratch"`
	Arrays       []arrayJSON    `json:"arrays"`
	Body         []stmtJSON     `json:"body"`
}

func toIR(stmts []stmtJSON) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, s := range stmts {
		set := 0
		if s.Access != "" {
			set++
		}
		if s.Compute != 0 {
			set++
		}
		if s.Loop != nil {
			set++
		}
		if s.Branch != nil {
			set++
		}
		if set != 1 {
			return nil, fmt.Errorf("statement must set exactly one of access/compute/loop/branch: %+v", s)
		}
		switch {
		case s.Access != "":
			out = append(out, ir.Access{Array: s.Access, Write: s.Write})
		case s.Compute != 0:
			out = append(out, ir.Compute{Instrs: s.Compute})
		case s.Loop != nil:
			body, err := toIR(s.Loop.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, ir.Loop{Count: s.Loop.Count, Body: body})
		case s.Branch != nil:
			then, err := toIR(s.Branch.Then)
			if err != nil {
				return nil, err
			}
			els, err := toIR(s.Branch.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, ir.Branch{Prob: s.Branch.Prob, Then: then, Else: els})
		}
	}
	return out, nil
}

func main() {
	profilePath := flag.String("profile", "", "JSON program description for the profile method")
	staticPath := flag.String("static", "", "JSON program description for the program-analysis method")
	outPath := flag.String("o", "", "save the computed plan as JSON (profile method only)")
	flag.Parse()

	switch {
	case *profilePath != "" && *staticPath == "":
		if err := runProfile(*profilePath, *outPath); err != nil {
			fmt.Fprintf(os.Stderr, "layouttool: %v\n", err)
			os.Exit(1)
		}
	case *staticPath != "" && *profilePath == "":
		if err := runStatic(*staticPath); err != nil {
			fmt.Fprintf(os.Stderr, "layouttool: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "layouttool: give exactly one of -profile or -static")
		os.Exit(2)
	}
}

func loadInput(path string) (*inputJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in inputJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &in, nil
}

func runProfile(path, outPath string) error {
	in, err := loadInput(path)
	if err != nil {
		return err
	}
	f, err := os.Open(in.TraceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := memtrace.ReadText(f)
	if err != nil {
		return err
	}
	vars := make([]memory.Region, len(in.Variables))
	for i, v := range in.Variables {
		vars[i] = memory.Region{Name: v.Name, Base: v.Base, Size: v.Size}
	}
	plan, err := layout.Build(layout.Request{
		Trace:        trace,
		Vars:         vars,
		ForceScratch: in.ForceScratch,
		Machine: layout.Machine{
			Columns:         in.Machine.Columns,
			ColumnBytes:     in.Machine.ColumnBytes,
			ScratchpadBytes: in.Machine.ScratchpadBytes,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("estimated conflict cost W = %d, scratchpad used %d bytes\n", plan.Cost, plan.ScratchUsed)
	for _, c := range plan.Chunks {
		where := c.Placement.String()
		if c.Placement == layout.InColumn {
			where = fmt.Sprintf("column %d", c.Column)
		}
		fmt.Printf("  %-16s %6dB  %8d accesses  -> %s\n", c.Region.Name, c.Region.Size, c.Accesses, where)
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := layout.SavePlan(f, plan); err != nil {
			return err
		}
		fmt.Printf("plan saved to %s\n", outPath)
	}
	return nil
}

func runStatic(path string) error {
	in, err := loadInput(path)
	if err != nil {
		return err
	}
	body, err := toIR(in.Body)
	if err != nil {
		return err
	}
	prog := &ir.Program{Body: body}
	for _, a := range in.Arrays {
		prog.Arrays = append(prog.Arrays, ir.ArrayDecl{Name: a.Name, Bytes: a.Bytes})
	}
	plan, err := layout.BuildStatic(prog, layout.Machine{
		Columns:         in.Machine.Columns,
		ColumnBytes:     in.Machine.ColumnBytes,
		ScratchpadBytes: in.Machine.ScratchpadBytes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("estimated conflict cost W = %d, scratchpad used %d bytes\n", plan.Cost, plan.ScratchUsed)
	for _, a := range plan.Assignments {
		name := a.Array
		if a.Chunk >= 0 {
			name = fmt.Sprintf("%s#%d", a.Array, a.Chunk)
		}
		where := a.Placement.String()
		if a.Placement == layout.InColumn {
			where = fmt.Sprintf("column %d", a.Column)
		}
		fmt.Printf("  %-16s %6dB  %10.1f est. accesses  -> %s\n", name, a.Bytes, a.EstimatedAccesses, where)
	}
	return nil
}
