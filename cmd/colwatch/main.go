// Command colwatch renders a colserved job's cache-occupancy frames as a
// live ANSI heatmap in the terminal: one grid per cache, ways across,
// two sets per text row, colored by the tint (or, for the shared L2 of a
// multicore job, the core) that owns each resident line.
//
// Usage:
//
//	colwatch -server http://host:8344 -job j00000042          # live SSE
//	colwatch -server http://host:8344 -job j00000042 -replay  # scrub retained frames
//	colwatch -file frames.jsonl [-replay]                     # colsim -inspect-out dump
//
// Live mode follows GET /v1/jobs/{id}/inspect (the server needs
// -inspect-every) and redraws on every frame until the stream's terminal
// event. Replay mode loads the retained frame range — from the server's
// time-travel endpoint or a local JSONL dump — and scrubs it:
//
//	l/→ next frame   h/← previous   g/G first/last
//	r/R next/previous remap boundary   q quit
//
// The scrub keys need a raw terminal (stty); without one colwatch falls
// back to line mode, reading the same commands followed by Enter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	colcache "colcache"
	"colcache/internal/inspect"
)

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:8344", "colserved base URL")
		job    = flag.String("job", "", "job ID to watch")
		replay = flag.Bool("replay", false, "scrub retained frames instead of streaming live")
		file   = flag.String("file", "", "replay a colsim -inspect-out JSONL dump instead of a server job")
		fps    = flag.Int("fps", 30, "playback rate for non-interactive -file runs")
	)
	flag.Parse()

	switch {
	case *file != "":
		frames, err := readJSONL(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "colwatch: %v\n", err)
			os.Exit(1)
		}
		if *replay {
			if err := scrub(frames); err != nil {
				fmt.Fprintf(os.Stderr, "colwatch: %v\n", err)
				os.Exit(1)
			}
			return
		}
		play(frames, *fps)
	case *job == "":
		fmt.Fprintln(os.Stderr, "colwatch: -job (with -server) or -file required")
		os.Exit(1)
	case *replay:
		frames, err := fetchFrames(*server, *job)
		if err != nil {
			fmt.Fprintf(os.Stderr, "colwatch: %v\n", err)
			os.Exit(1)
		}
		if err := scrub(frames); err != nil {
			fmt.Fprintf(os.Stderr, "colwatch: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := live(*server, *job); err != nil {
			fmt.Fprintf(os.Stderr, "colwatch: %v\n", err)
			os.Exit(1)
		}
	}
}

// live follows the job's SSE inspection stream, redrawing per frame.
func live(server, job string) error {
	resp, err := http.Get(strings.TrimRight(server, "/") + "/v1/jobs/" + job + "/inspect")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr colcache.APIError
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErr.Error)
		}
		return fmt.Errorf("HTTP %d from %s", resp.StatusCode, server)
	}
	fmt.Print("\x1b[2J")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event, data := "", ""
	var dropped int64
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "frame":
				var f inspect.Frame
				if err := json.Unmarshal([]byte(data), &f); err != nil {
					return fmt.Errorf("bad frame: %w", err)
				}
				draw(renderFrame(&f, liveCursor(dropped)))
			case "dropped":
				var d struct {
					Dropped int64 `json:"dropped"`
				}
				if json.Unmarshal([]byte(data), &d) == nil {
					dropped = d.Dropped
				}
			case "end":
				var e struct {
					Reason string `json:"reason"`
				}
				_ = json.Unmarshal([]byte(data), &e)
				fmt.Printf("stream ended: %s\n", e.Reason)
				return nil
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return fmt.Errorf("stream closed without a terminal event")
}

func liveCursor(dropped int64) string {
	if dropped > 0 {
		return fmt.Sprintf(" (live, %d dropped)", dropped)
	}
	return " (live)"
}

// draw repaints the screen in place: cursor home, render, clear the tail.
func draw(s string) {
	fmt.Print("\x1b[H" + s + "\x1b[J")
}

// play renders a dump as a fixed-rate animation.
func play(frames []inspect.Frame, fps int) {
	if fps < 1 {
		fps = 1
	}
	fmt.Print("\x1b[2J")
	tick := time.NewTicker(time.Second / time.Duration(fps))
	defer tick.Stop()
	for i := range frames {
		draw(renderFrame(&frames[i], ""))
		if i < len(frames)-1 {
			<-tick.C
		}
	}
}

// scrub is the interactive time-travel mode over a loaded frame slice.
func scrub(frames []inspect.Frame) error {
	if len(frames) == 0 {
		return fmt.Errorf("no frames to replay")
	}
	keys, restore := openKeys()
	defer restore()
	fmt.Print("\x1b[2J")
	i := 0
	for {
		cursor := fmt.Sprintf(" [%d/%d]", i+1, len(frames))
		draw(renderFrame(&frames[i], cursor) +
			"l/→ next  h/← prev  g/G ends  r/R remap  q quit\n")
		switch <-keys {
		case 'q', 0:
			fmt.Println()
			return nil
		case 'l':
			if i < len(frames)-1 {
				i++
			}
		case 'h':
			if i > 0 {
				i--
			}
		case 'g':
			i = 0
		case 'G':
			i = len(frames) - 1
		case 'r':
			i = nextRemap(frames, i, +1)
		case 'R':
			i = nextRemap(frames, i, -1)
		}
	}
}

// nextRemap jumps to the nearest frame in the given direction whose remap
// counter differs from the current frame's — the exact frame a column
// redistribution landed in.
func nextRemap(frames []inspect.Frame, i, dir int) int {
	for k := i + dir; k >= 0 && k < len(frames); k += dir {
		if frames[k].Remaps != frames[i].Remaps {
			if dir < 0 {
				// Walking back: land on the first frame of that remap count.
				for k > 0 && frames[k-1].Remaps == frames[k].Remaps {
					k--
				}
			}
			return k
		}
	}
	return i
}

// openKeys returns a channel of scrub keystrokes. It prefers a raw
// terminal (arrow keys decode to h/l); if stty is unavailable it falls
// back to line mode, where each command is a line.
func openKeys() (<-chan byte, func()) {
	keys := make(chan byte)
	raw := exec.Command("stty", "cbreak", "-echo")
	raw.Stdin = os.Stdin
	rawMode := raw.Run() == nil
	go func() {
		defer close(keys)
		rd := bufio.NewReader(os.Stdin)
		for {
			b, err := rd.ReadByte()
			if err != nil {
				return
			}
			// Decode CSI arrows to their vi equivalents.
			if b == 0x1b {
				if n, _ := rd.ReadByte(); n == '[' {
					switch d, _ := rd.ReadByte(); d {
					case 'C':
						b = 'l'
					case 'D':
						b = 'h'
					default:
						continue
					}
				} else {
					continue
				}
			}
			if b == '\n' || b == '\r' {
				if rawMode {
					continue
				}
				b = 'l' // bare Enter steps forward in line mode
			}
			keys <- b
		}
	}()
	restore := func() {
		if rawMode {
			sane := exec.Command("stty", "sane")
			sane.Stdin = os.Stdin
			_ = sane.Run()
		}
	}
	return keys, restore
}

// fetchFrames loads a job's full retained frame range from the server's
// time-travel endpoint.
func fetchFrames(server, job string) ([]inspect.Frame, error) {
	resp, err := http.Get(strings.TrimRight(server, "/") + "/v1/jobs/" + job + "/inspect/frames")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr colcache.APIError
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErr.Error)
		}
		return nil, fmt.Errorf("HTTP %d from %s", resp.StatusCode, server)
	}
	var doc colcache.InspectFrames
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	frames := make([]inspect.Frame, len(doc.Frames))
	for i, raw := range doc.Frames {
		if err := json.Unmarshal(raw, &frames[i]); err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("job %s has no retained frames (was it run with -inspect-every?)", job)
	}
	return frames, nil
}

// readJSONL loads a colsim -inspect-out dump.
func readJSONL(path string) ([]inspect.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var frames []inspect.Frame
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var fr inspect.Frame
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, len(frames)+1, err)
		}
		frames = append(frames, fr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return frames, nil
}
