package main

import (
	"strings"
	"testing"

	"colcache/internal/inspect"
)

func testFrame(seq, remaps int64) inspect.Frame {
	return inspect.Frame{
		Seq:    seq,
		Done:   seq * 100,
		Cycles: seq * 500,
		Remaps: remaps,
		Masks: []inspect.MaskEntry{
			{Kind: "tint", ID: 0, Name: "default", Mask: 0b1100},
			{Kind: "tint", ID: 1, Name: "hot", Mask: 0b0011},
		},
		Caches: []inspect.CacheFrame{{
			Name: "l1", Sets: 4, Ways: 2,
			Occ:   []byte{1, 2, 0, 1, 2, 2, 0, 0},
			MSI:   []byte{1, 2, 0, 1, 1, 1, 0, 0},
			Valid: 5, Dirty: 1, Shared: 4, Modified: 1,
			Misses: 42, MissDelta: 7,
		}},
		TintMiss: []inspect.TintDelta{{Tint: 1, Name: "hot", Accesses: 100, Misses: 7}},
	}
}

func TestRenderFrameLayout(t *testing.T) {
	f := testFrame(3, 2)
	out := renderFrame(&f, " [4/10]")
	for _, want := range []string{
		"frame 3 [4/10]", "done=300", "cycles=1500", "remaps=2",
		"default", "hot", "l1  4×2", "misses=42 (Δ7)", "hot 7/100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// 4 sets × half-block packing = 2 heatmap rows of 2 glyphs each.
	if n := strings.Count(out, "▀"); n != 4 {
		t.Errorf("heatmap has %d half-blocks, want 4", n)
	}
	// The invalid cell color and both tint colors appear.
	for _, c := range []int{cellColor(0), cellColor(1), cellColor(2)} {
		if !strings.Contains(out, "\x1b[38;5;"+itoa(c)) && !strings.Contains(out, ";48;5;"+itoa(c)+"m") {
			t.Errorf("render missing color %d:\n%q", c, out)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestRenderFinalFrame(t *testing.T) {
	f := testFrame(9, 0)
	f.Final = true
	out := renderFrame(&f, "")
	if !strings.Contains(out, "[final]") {
		t.Errorf("final frame not marked:\n%s", out)
	}
	if strings.Contains(out, "remaps=") {
		t.Errorf("zero remaps should be elided:\n%s", out)
	}
}

func TestMaskBar(t *testing.T) {
	if got := maskBar(0b1011); got != "██·█" {
		t.Errorf("maskBar(0b1011) = %q", got)
	}
	if got := maskBar(0); got != "" {
		t.Errorf("maskBar(0) = %q", got)
	}
}

func TestNextRemapJumpsToBoundary(t *testing.T) {
	frames := make([]inspect.Frame, 10)
	for i := range frames {
		frames[i] = testFrame(int64(i), 0)
	}
	// A remap lands between frames 3 and 4, another between 7 and 8.
	for i := 4; i < 10; i++ {
		frames[i].Remaps = 1
	}
	for i := 8; i < 10; i++ {
		frames[i].Remaps = 2
	}
	if got := nextRemap(frames, 0, +1); got != 4 {
		t.Errorf("forward from 0 = %d, want 4", got)
	}
	if got := nextRemap(frames, 4, +1); got != 8 {
		t.Errorf("forward from 4 = %d, want 8", got)
	}
	if got := nextRemap(frames, 9, +1); got != 9 {
		t.Errorf("forward at tail moved to %d", got)
	}
	// Backward lands on the first frame of the previous remap count.
	if got := nextRemap(frames, 9, -1); got != 4 {
		t.Errorf("backward from 9 = %d, want 4", got)
	}
	if got := nextRemap(frames, 4, -1); got != 0 {
		t.Errorf("backward from 4 = %d, want 0", got)
	}
}
