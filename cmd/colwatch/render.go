package main

import (
	"fmt"
	"strings"

	"colcache/internal/inspect"
)

// tintPalette maps an occupancy tag (tint id + 1, or core id + 1 for the
// shared L2) to a 256-color ANSI index. Tag 0 — an invalid line — renders
// as near-black so holes in the cache read as dark gaps. The palette
// cycles for machines with more tints than entries.
var tintPalette = []int{39, 208, 118, 201, 226, 51, 160, 93, 214, 45, 120, 199}

func cellColor(tag byte) int {
	if tag == 0 {
		return 235
	}
	return tintPalette[(int(tag)-1)%len(tintPalette)]
}

// renderFrame draws one occupancy frame as ANSI half-block heatmaps: one
// grid per cache, columns are ways, two sets share a text row ('▀' paints
// the upper set in the foreground color, the lower in the background).
// Pure in the frame, so replay scrubbing and tests use the same pixels
// the live stream shows.
func renderFrame(f *inspect.Frame, cursor string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame %d%s  done=%d  cycles=%d", f.Seq, cursor, f.Done, f.Cycles)
	if f.Remaps > 0 {
		fmt.Fprintf(&b, "  remaps=%d", f.Remaps)
	}
	if f.Final {
		b.WriteString("  [final]")
	}
	b.WriteByte('\n')
	for _, m := range f.Masks {
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("%s%d", m.Kind, m.ID)
		}
		fmt.Fprintf(&b, "  %s %-12s %s\n", colorSwatch(tagOf(m.Kind, m.ID)), name, maskBar(m.Mask))
	}
	for i := range f.Caches {
		renderCache(&b, &f.Caches[i])
	}
	if len(f.TintMiss) > 0 {
		b.WriteString("interval misses:")
		for _, d := range f.TintMiss {
			name := d.Name
			if name == "" {
				name = fmt.Sprintf("tint%d", d.Tint)
			}
			fmt.Fprintf(&b, "  %s %d/%d", name, d.Misses, d.Accesses)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// tagOf recovers the occupancy tag a mask entry's lines carry: tints tag
// L1 lines, cores tag shared-L2 lines, both offset by one past invalid.
func tagOf(kind string, id int) byte {
	if id >= 254 {
		return 255
	}
	return byte(id + 1)
}

func colorSwatch(tag byte) string {
	return fmt.Sprintf("\x1b[38;5;%dm■\x1b[0m", cellColor(tag))
}

// maskBar renders a replacement mask as 64 column slots, filled where the
// mask permits replacement.
func maskBar(mask uint64) string {
	var b strings.Builder
	for w := 0; w < 64; w++ {
		if mask == 0 {
			break
		}
		if w > 0 && mask>>uint(w) == 0 {
			break
		}
		if mask&(1<<uint(w)) != 0 {
			b.WriteRune('█')
		} else {
			b.WriteRune('·')
		}
	}
	return b.String()
}

func renderCache(b *strings.Builder, cf *inspect.CacheFrame) {
	fmt.Fprintf(b, "%s  %d×%d  valid=%d dirty=%d", cf.Name, cf.Sets, cf.Ways, cf.Valid, cf.Dirty)
	if cf.Shared+cf.Modified > 0 && cf.Shared+cf.Modified != cf.Valid {
		fmt.Fprintf(b, " S=%d M=%d", cf.Shared, cf.Modified)
	}
	fmt.Fprintf(b, "  misses=%d (Δ%d)\n", cf.Misses, cf.MissDelta)
	// Two sets per text row: set 2r in the glyph's upper half (foreground),
	// set 2r+1 in the lower (background). Odd set counts leave the last
	// lower half dark.
	for top := 0; top < cf.Sets; top += 2 {
		for w := 0; w < cf.Ways; w++ {
			fg := cellColor(cf.Occ[top*cf.Ways+w])
			bg := 0
			if top+1 < cf.Sets {
				bg = cellColor(cf.Occ[(top+1)*cf.Ways+w])
			} else {
				bg = 16
			}
			fmt.Fprintf(b, "\x1b[38;5;%d;48;5;%dm▀", fg, bg)
		}
		b.WriteString("\x1b[0m\n")
	}
}
