package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/fabric"
)

// fabricCluster drives real colserved processes: one coordinator and a
// set of workers, each its own OS process with its own data dir.
type fabricCluster struct {
	t       *testing.T
	bin     string
	work    string
	base    string // coordinator base URL
	client  *http.Client
	workers map[string]*exec.Cmd
}

func startFabricCluster(t *testing.T, workerNames ...string) *fabricCluster {
	t.Helper()
	work := t.TempDir()
	fc := &fabricCluster{
		t:       t,
		bin:     buildColserved(t, work),
		work:    work,
		client:  &http.Client{Timeout: 10 * time.Second},
		workers: map[string]*exec.Cmd{},
	}
	coordAddr := freePort(t)
	fc.base = "http://" + coordAddr
	coord := exec.Command(fc.bin, "-role", "coordinator", "-addr", coordAddr, "-peer-ttl", "1s")
	coord.Stdout = os.Stderr
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	t.Cleanup(func() {
		coord.Process.Kill()
		coord.Wait()
	})
	waitHealthy(t, fc.client, fc.base)
	for _, name := range workerNames {
		fc.startWorker(name)
	}
	fc.waitAlive(len(workerNames))
	return fc
}

func (fc *fabricCluster) startWorker(name string) {
	fc.t.Helper()
	addr := freePort(fc.t)
	cmd := exec.Command(fc.bin,
		"-role", "worker", "-join", fc.base, "-addr", addr, "-node", name,
		"-heartbeat", "100ms", "-workers", "2",
		"-data-dir", filepath.Join(fc.work, name), "-quiet")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fc.t.Fatalf("start worker %s: %v", name, err)
	}
	fc.workers[name] = cmd
	fc.t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
}

// kill SIGKILLs a worker: no drain, no goodbye heartbeat.
func (fc *fabricCluster) kill(name string) {
	fc.t.Helper()
	cmd, ok := fc.workers[name]
	if !ok {
		fc.t.Fatalf("unknown worker %s", name)
	}
	if err := cmd.Process.Kill(); err != nil {
		fc.t.Fatalf("SIGKILL %s: %v", name, err)
	}
	cmd.Wait()
}

func (fc *fabricCluster) clusterView() fabric.ClusterView {
	fc.t.Helper()
	resp, err := fc.client.Get(fc.base + "/fabric/v1/nodes")
	if err != nil {
		fc.t.Fatalf("nodes: %v", err)
	}
	defer resp.Body.Close()
	var cv fabric.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		fc.t.Fatalf("nodes decode: %v", err)
	}
	return cv
}

func (fc *fabricCluster) waitAlive(n int) {
	fc.t.Helper()
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		alive := 0
		for _, w := range fc.clusterView().Workers {
			if w.Alive {
				alive++
			}
		}
		if alive == n {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	fc.t.Fatalf("cluster never reached %d alive workers", n)
}

// routeOf asks the coordinator where a key routes right now.
func (fc *fabricCluster) routeOf(key string) string {
	fc.t.Helper()
	resp, err := fc.client.Get(fc.base + "/fabric/v1/route/" + key)
	if err != nil {
		fc.t.Fatalf("route: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fc.t.Fatalf("route %s: HTTP %d", key, resp.StatusCode)
	}
	var rv fabric.RouteView
	if err := json.NewDecoder(resp.Body).Decode(&rv); err != nil {
		fc.t.Fatalf("route decode: %v", err)
	}
	return rv.Node
}

// TestFabricChaos is the no-lost-jobs contract, end to end with real
// processes: three workers take a mix of slow sweeps and quick
// simulations, one worker is SIGKILLed while its sweep is demonstrably
// running, and every accepted job must still reach done — stolen onto
// ring successors, never dropped. Afterwards a fourth worker joins and
// the ring must remap only ~1/N of the keyspace, all of it onto the
// joiner.
func TestFabricChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons; skipped in -short")
	}
	fc := startFabricCluster(t, "w1", "w2", "w3")
	client, base := fc.client, fc.base

	// Baseline routing snapshot for the join-remap assertion at the end.
	const nprobe = 300
	probes := make([]string, nprobe)
	before := make(map[string]string, nprobe)
	for i := range probes {
		probes[i] = fmt.Sprintf("probe-digest-%03d", i)
		before[probes[i]] = fc.routeOf(probes[i])
	}

	// Slow sweeps occupy workers; quick sims ride along. Nothing is
	// polled before the kill, so the coordinator must treat every job on
	// the victim as live and steal it.
	var ids []string
	sweepNodes := map[string]string{} // id -> node
	for i := 0; i < 3; i++ {
		slow := colcache.SweepSpec{
			Label: fmt.Sprintf("chaos-sweep-%d", i),
			Base: colcache.SimSpec{
				Workload: &colcache.WorkloadSpec{Name: "random", SizeBytes: 512 << 10, Passes: 4, Seed: int64(i + 1)},
			},
			Sets: []int{64, 128, 256},
			Ways: []int{2, 4},
		}
		info := submitJSON(t, client, base, "/v1/sweep", slow)
		if info.Node == "" {
			t.Fatalf("sweep %d missing node assignment: %+v", i, info)
		}
		ids = append(ids, info.ID)
		sweepNodes[info.ID] = info.Node
	}
	for i := 0; i < 24; i++ {
		spec := colcache.SimSpec{
			Label:    fmt.Sprintf("chaos-sim-%d", i),
			Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: uint64(4096 + 64*i), Passes: 1},
		}
		ids = append(ids, submitJSON(t, client, base, "/v1/simulate", spec).ID)
	}

	// Pick the victim: the worker running the first sweep. Wait until that
	// sweep is running so the kill lands mid-job.
	victimSweep := ids[0]
	victim := sweepNodes[victimSweep]
	var running bool
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); {
		info, err := jobState(client, base, victimSweep)
		if err == nil && info.State == colcache.StateRunning {
			running = true
			break
		}
		if err == nil && info.State == colcache.StateDone {
			// Too fast to catch mid-flight; the steal path is still
			// exercised because the coordinator never saw it terminal.
			running = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !running {
		t.Fatalf("sweep on %s never started", victim)
	}
	t.Logf("killing %s mid-sweep", victim)
	fc.kill(victim)

	// Every accepted job must finish done under its fabric ID — stolen
	// jobs re-run on a successor and may report recovered.
	for _, id := range ids {
		var final colcache.JobInfo
		var err error
		ok := false
		for deadline := time.Now().Add(120 * time.Second); time.Now().Before(deadline); {
			final, err = jobState(client, base, id)
			if err == nil && (final.State == colcache.StateDone || final.State == colcache.StateFailed || final.State == colcache.StateCanceled) {
				ok = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("job %s never reached a terminal state: %v (last: %+v)", id, err, final)
		}
		if final.State != colcache.StateDone {
			t.Fatalf("job %s ended %s after the kill: %s", id, final.State, final.Error)
		}
		// final.Node == victim is legitimate here: a job that finished on
		// the victim before the kill keeps its terminal document. What
		// must never happen is a lost job — asserted by StealFailures
		// below and by every ID reaching done above.
	}

	cv := fc.clusterView()
	if cv.JobsStolen == 0 {
		t.Fatal("no jobs stolen although the victim owned unpolled work")
	}
	if cv.StealFailures != 0 {
		t.Fatalf("%d steal failures: jobs were lost", cv.StealFailures)
	}
	t.Logf("stole %d jobs off %s, 0 failures", cv.JobsStolen, victim)

	// Survivor ledgers must balance: accepted == done+failed+canceled on
	// every alive node (heartbeats lag, so allow a grace window).
	balanced := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		balanced = true
		for _, w := range fc.clusterView().Workers {
			if !w.Alive {
				continue
			}
			if w.Ledger["accepted"] != w.Ledger["done"]+w.Ledger["failed"]+w.Ledger["canceled"] {
				balanced = false
			}
		}
		if balanced {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !balanced {
		t.Fatalf("survivor ledgers never balanced: %+v", fc.clusterView().Workers)
	}

	// A joining worker must take over ~1/N of the keyspace and nothing
	// may move between the survivors. With 2 survivors the joiner's
	// expected share is 1/3; assert within [5%, 60%] to stay hash-stable.
	fc.startWorker("w4")
	fc.waitAlive(3) // w1..w3 minus victim, plus w4
	moved := 0
	for _, key := range probes {
		after := fc.routeOf(key)
		if after == before[key] {
			continue
		}
		// Keys previously owned by the dead victim legitimately moved to
		// a survivor; every other move must target the joiner.
		if before[key] != victim && after != "w4" {
			t.Fatalf("key %s moved %s -> %s (not to the joiner)", key, before[key], after)
		}
		if before[key] != victim {
			moved++
		}
	}
	if f := float64(moved); f < 0.05*nprobe || f > 0.60*nprobe {
		t.Fatalf("join remapped %d/%d survivor-owned keys, want ~1/3", moved, nprobe)
	}
	t.Logf("join remapped %d/%d keys to the joiner (expected ~%d)", moved, nprobe, nprobe/3)
}
