// Command colserved serves the column-cache simulator over HTTP: a
// long-running daemon with a bounded job queue, explicit backpressure, and
// live Prometheus-text metrics.
//
// Usage:
//
//	colserved [-addr :8344] [-workers N] [-queue N] [-drain 30s]
//
// Endpoints:
//
//	POST /v1/simulate   submit one simulation (JSON SimSpec, or a binary
//	                    CCTRACE1 trace as application/octet-stream with the
//	                    machine in query parameters) → 202 + JobInfo
//	POST /v1/sweep      submit a batched parameter sweep → 202 + JobInfo
//	GET  /v1/jobs/{id}  poll a job; terminal documents carry the result
//	GET  /v1/jobs       recent jobs and live queue counts
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness (503 while draining)
//
// A full queue answers 429 with Retry-After; on SIGTERM/SIGINT the server
// stops accepting work (503), hands queued jobs back as canceled+retriable,
// lets in-flight simulations finish inside the -drain budget, then cancels
// stragglers through the simulation loop's cooperative checkpoints.
//
// With -data-dir the server is durable: every accepted job is committed to
// a write-ahead log before the 202 leaves, finished results are memoized in
// a content-addressed cache (identical resubmissions answer instantly with
// "cached": true), and a restart over the same directory replays the log —
// queued jobs re-enqueue, in-flight simulations resume from their last
// checkpoint, and GET /v1/results/{digest} serves memoized results.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"colcache/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("colserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8344", "listen address")
		workers    = fs.Int("workers", 0, "concurrent jobs (default: NumCPU)")
		queue      = fs.Int("queue", 256, "max queued jobs before 429")
		sweepW     = fs.Int("sweep-workers", 4, "per-sweep inner parallelism cap")
		jobTimeout = fs.Duration("job-timeout", 120*time.Second, "per-job execution budget")
		drain      = fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
		maxTrace   = fs.Int("max-trace", 4<<20, "max accesses per trace (uploaded or generated)")
		maxBody    = fs.Int64("max-body", 32<<20, "max request body bytes")
		maxPoints  = fs.Int("max-sweep-points", 512, "max expanded points per sweep")
		retain     = fs.Int("retain", 16384, "job documents kept for polling")
		checkEvery = fs.Int("check-every", 0, "simulation cancellation stride (default 4096)")
		quiet      = fs.Bool("quiet", false, "suppress request logging")
		dataDir    = fs.String("data-dir", "", "durability root: WAL + result cache (empty: in-memory)")
		walPath    = fs.String("wal", "", "write-ahead log path (default <data-dir>/wal.log)")
		cacheBytes = fs.Int64("result-cache-bytes", 0, "result cache byte budget (default 256 MiB)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var dur *service.Durability
	if *dataDir != "" || *walPath != "" {
		if *dataDir == "" {
			log.Printf("colserved: -wal requires -data-dir (the result cache needs a root)")
			return 2
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Printf("colserved: data dir: %v", err)
			return 1
		}
		var err error
		dur, err = service.OpenDurability(*dataDir, *walPath, *cacheBytes)
		if err != nil {
			log.Printf("colserved: %v", err)
			return 1
		}
		defer dur.Close()
	}

	srv := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		SweepWorkers:   *sweepW,
		JobTimeout:     *jobTimeout,
		MaxBodyBytes:   *maxBody,
		Limits:         service.Limits{MaxTraceAccesses: *maxTrace},
		MaxSweepPoints: *maxPoints,
		RetainJobs:     *retain,
		CheckEvery:     *checkEvery,
		Durability:     dur,
	})

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if dur != nil {
		rec := srv.Recovery()
		logf("colserved: durable in %s (wal replay: %d requeued, %d resumed from checkpoint, %d already finished, %d dropped)",
			*dataDir, rec.Requeued, rec.Resumed, rec.Finished, rec.Dropped)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("colserved: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logf("colserved: listening on %s (workers=%d queue=%d)", ln.Addr(), *workers, *queue)

	select {
	case err := <-errc:
		log.Printf("colserved: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logf("colserved: signal received, draining (budget %s)", *drain)

	// Drain the job queue first so /v1/jobs stays pollable while in-flight
	// work completes, then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if drainErr != nil {
		log.Printf("colserved: drain: %v", drainErr)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("colserved: shutdown: %v", err)
		return 1
	}
	<-errc // Serve has returned
	if drainErr != nil {
		return 1
	}
	logf("colserved: drained cleanly")
	return 0
}
