// Command colserved serves the column-cache simulator over HTTP: a
// long-running daemon with a bounded job queue, explicit backpressure, and
// live Prometheus-text metrics.
//
// Usage:
//
//	colserved [-addr :8344] [-workers N] [-queue N] [-drain 30s]
//	colserved -role coordinator [-addr :8340] [-vnodes 64] [-peer-ttl 2s]
//	colserved -role worker -join http://coord:8340 [-node w1] [-advertise URL]
//
// Endpoints:
//
//	POST /v1/simulate   submit one simulation (JSON SimSpec, or a binary
//	                    CCTRACE1 trace as application/octet-stream with the
//	                    machine in query parameters) → 202 + JobInfo
//	POST /v1/sweep      submit a batched parameter sweep → 202 + JobInfo
//	GET  /v1/jobs/{id}  poll a job; terminal documents carry the result
//	GET  /v1/jobs       recent jobs and live queue counts
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness (503 while draining)
//
// A full queue answers 429 with Retry-After; on SIGTERM/SIGINT the server
// stops accepting work (503), hands queued jobs back as canceled+retriable,
// lets in-flight simulations finish inside the -drain budget, then cancels
// stragglers through the simulation loop's cooperative checkpoints.
//
// With -data-dir the server is durable: every accepted job is committed to
// a write-ahead log before the 202 leaves, finished results are memoized in
// a content-addressed cache (identical resubmissions answer instantly with
// "cached": true), and a restart over the same directory replays the log —
// queued jobs re-enqueue, in-flight simulations resume from their last
// checkpoint, and GET /v1/results/{digest} serves memoized results.
//
// With -role the process joins a job fabric. A coordinator serves the same
// /v1 API but owns no simulator: it routes each submission to the worker
// that owns the spec's digest on a consistent-hash ring, and steals jobs
// back from workers that stop heartbeating. A worker is a standalone
// server that additionally registers with -join's coordinator and renews
// its ring lease every -heartbeat.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"colcache/internal/fabric"
	"colcache/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("colserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8344", "listen address")
		workers    = fs.Int("workers", 0, "concurrent jobs (default: NumCPU)")
		queue      = fs.Int("queue", 256, "max queued jobs before 429")
		sweepW     = fs.Int("sweep-workers", 4, "per-sweep inner parallelism cap")
		jobTimeout = fs.Duration("job-timeout", 120*time.Second, "per-job execution budget")
		drain      = fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
		maxTrace   = fs.Int("max-trace", 4<<20, "max accesses per trace (uploaded or generated)")
		maxBody    = fs.Int64("max-body", 32<<20, "max request body bytes")
		maxPoints  = fs.Int("max-sweep-points", 512, "max expanded points per sweep")
		retain     = fs.Int("retain", 16384, "job documents kept for polling")
		checkEvery = fs.Int("check-every", 0, "simulation cancellation stride (default 4096)")
		quiet      = fs.Bool("quiet", false, "suppress request logging")
		dataDir    = fs.String("data-dir", "", "durability root: WAL + result cache (empty: in-memory)")
		walPath    = fs.String("wal", "", "write-ahead log path (default <data-dir>/wal.log)")
		cacheBytes = fs.Int64("result-cache-bytes", 0, "result cache byte budget (default 256 MiB)")

		inspectEvery = fs.Int("inspect-every", 0, "capture an occupancy frame every N accesses; 0 disables live inspection")
		inspectBytes = fs.Int64("inspect-frames-bytes", 0, "time-travel frame retention byte budget (default 16 MiB when inspection is on)")

		role      = fs.String("role", "standalone", "process role: standalone, coordinator, or worker")
		join      = fs.String("join", "", "coordinator base URL (worker role)")
		node      = fs.String("node", "", "stable ring identity (worker role; default: derived from listen addr)")
		advertise = fs.String("advertise", "", "base URL the coordinator reaches this worker at (default http://127.0.0.1:<port>)")
		heartbeat = fs.Duration("heartbeat", 500*time.Millisecond, "worker heartbeat interval")
		vnodes    = fs.Int("vnodes", fabric.DefaultVNodes, "virtual nodes per worker on the hash ring (coordinator role)")
		peerTTL   = fs.Duration("peer-ttl", 2*time.Second, "heartbeat lease before a worker is declared dead (coordinator role)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	switch *role {
	case "standalone", "worker":
	case "coordinator":
		return runCoordinator(*addr, *vnodes, *peerTTL, *maxBody, *retain, logf)
	default:
		log.Printf("colserved: unknown -role %q (want standalone, coordinator, or worker)", *role)
		return 2
	}
	if *role == "worker" && *join == "" {
		log.Printf("colserved: -role worker requires -join <coordinator URL>")
		return 2
	}

	var dur *service.Durability
	if *dataDir != "" || *walPath != "" {
		if *dataDir == "" {
			log.Printf("colserved: -wal requires -data-dir (the result cache needs a root)")
			return 2
		}
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Printf("colserved: data dir: %v", err)
			return 1
		}
		var err error
		dur, err = service.OpenDurability(*dataDir, *walPath, *cacheBytes)
		if err != nil {
			log.Printf("colserved: %v", err)
			return 1
		}
		defer dur.Close()
	}

	srv := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		SweepWorkers:      *sweepW,
		JobTimeout:        *jobTimeout,
		MaxBodyBytes:      *maxBody,
		Limits:            service.Limits{MaxTraceAccesses: *maxTrace},
		MaxSweepPoints:    *maxPoints,
		RetainJobs:        *retain,
		CheckEvery:        *checkEvery,
		Durability:        dur,
		InspectEvery:      *inspectEvery,
		InspectFrameBytes: *inspectBytes,
	})
	if *inspectEvery > 0 {
		logf("colserved: live inspection on: frame every %d accesses, GET /v1/jobs/{id}/inspect", *inspectEvery)
	}

	if dur != nil {
		rec := srv.Recovery()
		logf("colserved: durable in %s (wal replay: %d requeued, %d resumed from checkpoint, %d already finished, %d dropped)",
			*dataDir, rec.Requeued, rec.Resumed, rec.Finished, rec.Dropped)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("colserved: %v", err)
		return 1
	}

	// Worker role: register with the coordinator before serving traffic so
	// the first routed job never races the first heartbeat.
	var agent *fabric.Agent
	if *role == "worker" {
		name := *node
		if name == "" {
			name = "worker-" + ln.Addr().String()
		}
		base := *advertise
		if base == "" {
			base = advertiseURL(ln.Addr())
		}
		agent = fabric.StartAgent(fabric.AgentConfig{
			Coordinator: strings.TrimRight(*join, "/"),
			Name:        name,
			BaseURL:     base,
			Interval:    *heartbeat,
			Status:      srv.FabricStatus,
			Logf:        logf,
		})
		srv.SetFabricGauges(agent.Gauges)
		defer agent.Stop()
		logf("colserved: worker %s advertising %s to %s", name, base, *join)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logf("colserved: listening on %s (workers=%d queue=%d)", ln.Addr(), *workers, *queue)

	select {
	case err := <-errc:
		log.Printf("colserved: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logf("colserved: signal received, draining (budget %s)", *drain)

	// Stop heartbeating first so the coordinator routes new work elsewhere
	// while this worker drains what it already accepted.
	if agent != nil {
		agent.Stop()
	}

	// Drain the job queue first so /v1/jobs stays pollable while in-flight
	// work completes, then close the listener.
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if drainErr != nil {
		log.Printf("colserved: drain: %v", drainErr)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("colserved: shutdown: %v", err)
		return 1
	}
	<-errc // Serve has returned
	if drainErr != nil {
		return 1
	}
	logf("colserved: drained cleanly")
	return 0
}

// runCoordinator serves the fabric control plane: no simulator, just the
// ring, the failure detector, and the forwarding /v1 API.
func runCoordinator(addr string, vnodes int, peerTTL time.Duration, maxBody int64, retain int, logf func(string, ...any)) int {
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		VNodes:       vnodes,
		PeerTTL:      peerTTL,
		MaxBodyBytes: maxBody,
		RetainJobs:   retain,
		Logf:         logf,
	})
	defer coord.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("colserved: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: coord.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logf("colserved: coordinator listening on %s (vnodes=%d peer-ttl=%s)", ln.Addr(), vnodes, peerTTL)

	select {
	case err := <-errc:
		log.Printf("colserved: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("colserved: shutdown: %v", err)
		return 1
	}
	<-errc
	logf("colserved: coordinator stopped")
	return 0
}

// advertiseURL derives a worker's reachable base URL from its listener:
// a wildcard host becomes 127.0.0.1 (single-host fabrics are the test and
// quickstart topology; multi-host deployments pass -advertise).
func advertiseURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	ip := net.ParseIP(host)
	if host == "" || host == "::" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
