package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	colcache "colcache"
)

// buildColserved compiles the daemon binary once per test run. The race
// detector is on: the recovery path must be clean under concurrent
// submissions and replay.
func buildColserved(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "colserved")
	args := []string{"build"}
	// The race detector needs cgo on some platforms; skip it there rather
	// than fail the build.
	if runtime.GOOS == "linux" {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "colcache/cmd/colserved")
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build colserved: %v\n%s", err, out)
	}
	return bin
}

func waitHealthy(t *testing.T, client *http.Client, base string) {
	t.Helper()
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

func submitJSON(t *testing.T, client *http.Client, base, path string, spec any) colcache.JobInfo {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info colcache.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s: HTTP %d", path, resp.StatusCode)
	}
	return info
}

func jobState(client *http.Client, base, id string) (colcache.JobInfo, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return colcache.JobInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return colcache.JobInfo{}, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var info colcache.JobInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// TestKillDashNineRecovery is the crash-durability contract, end to end:
// a real colserved process with queued and in-flight jobs dies from
// SIGKILL — no drain, no final sync beyond the per-accept commits — and a
// fresh process over the same data dir must finish every accepted job
// exactly once, under its original ID.
func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	work := t.TempDir()
	bin := buildColserved(t, work)
	dataDir := filepath.Join(work, "data")
	addr := freePort(t)
	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}

	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr, "-workers", "1", "-queue", "16",
			"-data-dir", dataDir, "-quiet")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start colserved: %v", err)
		}
		return cmd
	}

	cmd := start()
	waitHealthy(t, client, base)

	// One deliberately long sweep occupies the single worker; three quick
	// simulations pile up behind it. All four are acknowledged, so all
	// four are in the WAL.
	slow := colcache.SweepSpec{
		Label: "slow",
		Base: colcache.SimSpec{
			Workload: &colcache.WorkloadSpec{Name: "random", SizeBytes: 1 << 20, Passes: 8},
		},
		Sets: []int{64, 128, 256, 512},
		Ways: []int{2, 4, 8},
	}
	ids := []string{submitJSON(t, client, base, "/v1/sweep", slow).ID}
	for i := 0; i < 3; i++ {
		spec := colcache.SimSpec{
			Label:    fmt.Sprintf("quick-%d", i),
			Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: uint64(2048 << i), Passes: 1},
		}
		ids = append(ids, submitJSON(t, client, base, "/v1/simulate", spec).ID)
	}

	// Kill once the sweep is demonstrably in flight with the rest queued.
	var inFlight bool
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		info, err := jobState(client, base, ids[0])
		if err == nil && info.State == colcache.StateRunning {
			inFlight = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !inFlight {
		t.Fatal("sweep never started running")
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait()

	// Restart over the same data dir: replay must hand every accepted job
	// back to the queue.
	cmd2 := start()
	defer func() {
		cmd2.Process.Signal(os.Interrupt)
		cmd2.Wait()
	}()
	waitHealthy(t, client, base)

	for _, id := range ids {
		var final colcache.JobInfo
		for deadline := time.Now().Add(90 * time.Second); time.Now().Before(deadline); {
			info, err := jobState(client, base, id)
			if err != nil {
				t.Fatalf("poll %s: %v", id, err)
			}
			final = info
			if info.State == colcache.StateDone || info.State == colcache.StateFailed {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if final.State != colcache.StateDone {
			t.Fatalf("job %s after recovery: %s: %s", id, final.State, final.Error)
		}
		if final.ID != id {
			t.Fatalf("job identity drifted: %s vs %s", final.ID, id)
		}
	}

	// No duplication: the job listing holds each recovered ID exactly
	// once, and the replay counter matches the four accepted jobs.
	resp, err := client.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list colcache.JobList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	seen := map[string]int{}
	for _, j := range list.Jobs {
		seen[j.ID]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Fatalf("job %s appears %d times after recovery", id, seen[id])
		}
	}
	mresp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := buf.String()
	var recovered int
	for _, kind := range []string{"simulate", "sweep", "multicore"} {
		var n int
		fmt.Sscanf(metricValue(metrics, fmt.Sprintf(`colserved_jobs_total{kind=%q,outcome="recovered"}`, kind)), "%d", &n)
		recovered += n
	}
	if recovered != len(ids) {
		t.Fatalf("recovered counter = %d, want %d\n%s", recovered, len(ids), metrics)
	}

	// Memoization survives the whole ordeal: resubmitting a finished spec
	// is answered from the cache without a new job.
	again := submitJSON(t, client, base, "/v1/simulate", colcache.SimSpec{
		Label:    "quick-0-again",
		Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: 2048, Passes: 1},
	})
	if !again.Cached || again.State != colcache.StateDone {
		t.Fatalf("resubmission not served from cache: %+v", again)
	}
}

// metricValue extracts the sample value of a series rendered by the
// hand-rolled exposition writer ("name{labels} value").
func metricValue(metrics, series string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	return "0"
}
