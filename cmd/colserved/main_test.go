package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"syscall"
	"testing"
	"time"

	colcache "colcache"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestBadFlags(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Fatalf("run = %d, want 2", got)
	}
}

// TestServeSubmitAndSigterm boots the daemon, runs one job through it, and
// shuts it down with a real SIGTERM — the full lifecycle a supervisor sees.
func TestServeSubmitAndSigterm(t *testing.T) {
	addr := freePort(t)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-workers", "2", "-queue", "8", "-drain", "10s", "-quiet"})
	}()

	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	var up bool
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				up = true
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !up {
		t.Fatal("server never became healthy")
	}

	spec := colcache.SimSpec{
		Label:    "lifecycle",
		Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: 2048, Passes: 1},
	}
	body, _ := json.Marshal(spec)
	resp, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info colcache.JobInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var final colcache.JobInfo
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		r2, err := client.Get(base + "/v1/jobs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r2.Body).Decode(&final)
		r2.Body.Close()
		if final.State == colcache.StateDone {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != colcache.StateDone || final.Result == nil || final.Result.Cycles <= 0 {
		t.Fatalf("job: %+v", final)
	}

	// Metrics are served and carry the job.
	r3, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r3.Body)
	r3.Body.Close()
	if want := fmt.Sprintf(`colserved_jobs_total{kind="simulate",outcome="done"} %d`, 1); !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("scrape missing %q", want)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}
