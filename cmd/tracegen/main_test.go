package main

import "testing"

func TestBuildWorkloads(t *testing.T) {
	for _, w := range []string{"dequant", "plus", "idct", "gzip", "matmul", "fir", "histogram", "stream", "random"} {
		p, err := build(w, 1, 0)
		if err != nil {
			t.Errorf("build(%s): %v", w, err)
			continue
		}
		if len(p.Trace) == 0 {
			t.Errorf("build(%s): empty trace", w)
		}
	}
}

func TestBuildSizeKnob(t *testing.T) {
	small, _ := build("matmul", 1, 4)
	big, _ := build("matmul", 1, 8)
	if len(small.Trace) >= len(big.Trace) {
		t.Errorf("size knob ignored: %d vs %d", len(small.Trace), len(big.Trace))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 1, 0); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := build("nope", 1, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}
