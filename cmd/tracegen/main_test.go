package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"colcache/internal/memtrace"
)

func TestBuildWorkloads(t *testing.T) {
	for _, w := range []string{"dequant", "plus", "idct", "gzip", "matmul", "fir", "histogram", "stream", "random"} {
		p, err := build(w, 1, 0)
		if err != nil {
			t.Errorf("build(%s): %v", w, err)
			continue
		}
		if len(p.Trace) == 0 {
			t.Errorf("build(%s): empty trace", w)
		}
	}
}

func TestBuildSizeKnob(t *testing.T) {
	small, _ := build("matmul", 1, 4)
	big, _ := build("matmul", 1, 8)
	if len(small.Trace) >= len(big.Trace) {
		t.Errorf("size knob ignored: %d vs %d", len(small.Trace), len(big.Trace))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 1, 0); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := build("nope", 1, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestShardTracesDealRoundRobin(t *testing.T) {
	p, err := build("idct", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	shards := shardTraces(p.Trace, k)
	if len(shards) != k {
		t.Fatalf("got %d shards, want %d", len(shards), k)
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != len(p.Trace) {
		t.Fatalf("shards hold %d accesses, trace has %d", total, len(p.Trace))
	}
	// Re-interleave and compare to the original order.
	pos := make([]int, k)
	for i, want := range p.Trace {
		s := i % k
		if got := shards[s][pos[s]]; got != want {
			t.Fatalf("access %d: shard %d holds %+v, want %+v", i, s, got, want)
		}
		pos[s]++
	}
}

func TestWriteShardsBinaryRoundTrip(t *testing.T) {
	p, err := build("gzip", 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Trace[:9001] // odd length: shards of unequal size
	dir := t.TempDir()
	base := filepath.Join(dir, "trace.bin")
	k := 3
	paths, err := writeShards(base, tr, k, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != k {
		t.Fatalf("wrote %d shard files, want %d", len(paths), k)
	}
	want := shardTraces(tr, k)
	for i, path := range paths {
		if filepath.Base(path) != fmt.Sprintf("trace.%d.bin", i) {
			t.Errorf("shard %d named %s", i, filepath.Base(path))
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := memtrace.ReadBinary(f)
		f.Close()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("shard %d: %d accesses, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("shard %d access %d: %+v != %+v", i, j, got[j], want[i][j])
			}
		}
	}
}
