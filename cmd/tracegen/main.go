// Command tracegen generates memory-reference traces from the built-in
// workloads and writes them in the text or binary trace format, for use
// with colsim or external tools. It can also print the variable map so the
// trace can be fed to layouttool.
//
// Usage:
//
//	tracegen -workload dequant|plus|idct|gzip|matmul|fir|histogram|stream|random
//	         [-o trace.txt] [-binary] [-vars] [-seed N] [-n N] [-shards K]
//
// With -shards K the trace is dealt round-robin into K per-core shard files
// named by inserting the shard index before the output extension
// (trace.0.txt … trace.K-1.txt) — ready to feed colsim -cores K, which
// interleaves its per-core streams by cycle count just as the round-robin
// deal interleaves by position.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"colcache/internal/memtrace"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
	"colcache/internal/workloads/synth"
)

func main() {
	workload := flag.String("workload", "", "workload to trace: dequant, plus, idct, gzip, matmul, fir, histogram, stream, random")
	out := flag.String("o", "", "output file (default stdout)")
	binary := flag.Bool("binary", false, "write the binary trace format")
	printVars := flag.Bool("vars", false, "print the variable map to stderr")
	seed := flag.Int64("seed", 1, "workload input seed")
	n := flag.Int("n", 0, "size knob: blocks, window bytes, samples or accesses (workload default if 0)")
	shards := flag.Int("shards", 0, "deal the trace round-robin into this many per-core shard files (requires -o)")
	flag.Parse()

	prog, err := build(*workload, *seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}

	if *shards > 1 {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "tracegen: -shards needs -o to name the shard files")
			os.Exit(2)
		}
		paths, err := writeShards(*out, prog.Trace, *shards, *binary)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s: %d accesses dealt into %d shards (%s … %s)\n",
			prog.Name, len(prog.Trace), *shards, paths[0], paths[len(paths)-1])
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *binary {
		err = memtrace.WriteBinary(w, prog.Trace)
	} else {
		err = memtrace.WriteText(w, prog.Trace)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *printVars {
		for _, v := range prog.Vars {
			fmt.Fprintf(os.Stderr, "%s base=%#x size=%d\n", v.Name, v.Base, v.Size)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d accesses, %d instructions, %d variables\n",
		prog.Name, len(prog.Trace), prog.Trace.Instructions(), len(prog.Vars))
}

// shardTraces deals tr round-robin into k per-core traces: access i goes to
// shard i%k, preserving each shard's program order.
func shardTraces(tr memtrace.Trace, k int) []memtrace.Trace {
	out := make([]memtrace.Trace, k)
	for i := range out {
		out[i] = make(memtrace.Trace, 0, (len(tr)+k-1)/k)
	}
	for i, a := range tr {
		out[i%k] = append(out[i%k], a)
	}
	return out
}

// shardPath inserts the shard index before the path's extension:
// trace.txt → trace.2.txt, trace → trace.2.
func shardPath(path string, i int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%d%s", path[:len(path)-len(ext)], i, ext)
}

// writeShards deals tr into k shard files and returns their paths.
func writeShards(path string, tr memtrace.Trace, k int, binary bool) ([]string, error) {
	var paths []string
	for i, shard := range shardTraces(tr, k) {
		p := shardPath(path, i)
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		if binary {
			err = memtrace.WriteBinary(f, shard)
		} else {
			err = memtrace.WriteText(f, shard)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

func build(workload string, seed int64, n int) (*workloads.Program, error) {
	switch workload {
	case "dequant":
		return mpeg.Dequant(mpeg.Config{DequantBlocks: n, Seed: seed}), nil
	case "plus":
		return mpeg.Plus(mpeg.Config{PlusBlocks: n, Seed: seed}), nil
	case "idct":
		return mpeg.Idct(mpeg.Config{IdctBlocks: n, Seed: seed}), nil
	case "gzip":
		return gzipsim.Job(gzipsim.Config{WindowBytes: n, Seed: seed}, 0), nil
	case "matmul":
		return kernels.MatMul(kernels.MatMulConfig{N: n, Seed: seed}), nil
	case "fir":
		return kernels.FIR(kernels.FIRConfig{Samples: n, Seed: seed}), nil
	case "histogram":
		return kernels.Histogram(kernels.HistogramConfig{Samples: n, Seed: seed}), nil
	case "stream":
		size := uint64(n)
		if size == 0 {
			size = 64 * 1024
		}
		return synth.Stream(0, size, 4, 1), nil
	case "random":
		count := n
		if count == 0 {
			count = 10000
		}
		return synth.Random(0, 1<<20, count, seed), nil
	case "":
		return nil, fmt.Errorf("no -workload given")
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}
