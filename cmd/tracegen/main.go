// Command tracegen generates memory-reference traces from the built-in
// workloads and writes them in the text or binary trace format, for use
// with colsim or external tools. It can also print the variable map so the
// trace can be fed to layouttool.
//
// Usage:
//
//	tracegen -workload dequant|plus|idct|gzip|matmul|fir|histogram|stream|random
//	         [-o trace.txt] [-binary] [-vars] [-seed N] [-n N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"colcache/internal/memtrace"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
	"colcache/internal/workloads/synth"
)

func main() {
	workload := flag.String("workload", "", "workload to trace: dequant, plus, idct, gzip, matmul, fir, histogram, stream, random")
	out := flag.String("o", "", "output file (default stdout)")
	binary := flag.Bool("binary", false, "write the binary trace format")
	printVars := flag.Bool("vars", false, "print the variable map to stderr")
	seed := flag.Int64("seed", 1, "workload input seed")
	n := flag.Int("n", 0, "size knob: blocks, window bytes, samples or accesses (workload default if 0)")
	flag.Parse()

	prog, err := build(*workload, *seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *binary {
		err = memtrace.WriteBinary(w, prog.Trace)
	} else {
		err = memtrace.WriteText(w, prog.Trace)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *printVars {
		for _, v := range prog.Vars {
			fmt.Fprintf(os.Stderr, "%s base=%#x size=%d\n", v.Name, v.Base, v.Size)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d accesses, %d instructions, %d variables\n",
		prog.Name, len(prog.Trace), prog.Trace.Instructions(), len(prog.Vars))
}

func build(workload string, seed int64, n int) (*workloads.Program, error) {
	switch workload {
	case "dequant":
		return mpeg.Dequant(mpeg.Config{DequantBlocks: n, Seed: seed}), nil
	case "plus":
		return mpeg.Plus(mpeg.Config{PlusBlocks: n, Seed: seed}), nil
	case "idct":
		return mpeg.Idct(mpeg.Config{IdctBlocks: n, Seed: seed}), nil
	case "gzip":
		return gzipsim.Job(gzipsim.Config{WindowBytes: n, Seed: seed}, 0), nil
	case "matmul":
		return kernels.MatMul(kernels.MatMulConfig{N: n, Seed: seed}), nil
	case "fir":
		return kernels.FIR(kernels.FIRConfig{Samples: n, Seed: seed}), nil
	case "histogram":
		return kernels.Histogram(kernels.HistogramConfig{Samples: n, Seed: seed}), nil
	case "stream":
		size := uint64(n)
		if size == 0 {
			size = 64 * 1024
		}
		return synth.Stream(0, size, 4, 1), nil
	case "random":
		count := n
		if count == 0 {
			count = 10000
		}
		return synth.Random(0, 1<<20, count, seed), nil
	case "":
		return nil, fmt.Errorf("no -workload given")
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}
