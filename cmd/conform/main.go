// Command conform runs the differential conformance harness from the
// command line: seeded random property cases, the golden-trace matrix, or a
// single committed repro file. A failing random case is minimized before
// being written out, so what lands in the bug report is a handful of steps,
// not a thousand.
//
// Exit status: 0 all cases agree, 1 a divergence was found, 2 bad usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"colcache/internal/conform"
	"colcache/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 256, "number of seeded random cases")
	mc := fs.Int("mc", 0, "number of seeded multicore serial-vs-epoch-parallel equivalence cases")
	seed := fs.Int64("seed", 1, "first random-case seed (cases use seed..seed+n-1)")
	jobs := fs.Int("jobs", runner.DefaultWorkers(), "cases checked concurrently")
	golden := fs.String("golden", "internal/conform/testdata/golden", "golden trace directory (empty to skip)")
	replay := fs.String("replay", "", "replay one committed repro file instead of sweeping")
	repro := fs.String("repro", "conform-repro.json", "where to write a minimized failing case")
	contentEvery := fs.Int("content-every", conform.DefaultContentCheckEvery, "full-state comparison stride")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "conform: unexpected arguments %v\n", fs.Args())
		return 2
	}
	opts := conform.Options{ContentCheckEvery: *contentEvery}

	if *replay != "" {
		c, err := conform.ReadCase(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "conform: %v\n", err)
			return 2
		}
		if d := conform.Run(c, opts); d != nil {
			fmt.Fprintf(stderr, "%s\n", d.Error())
			return 1
		}
		fmt.Fprintf(stdout, "conform: %s: ok (%d steps)\n", c.Name, len(c.Script))
		return 0
	}

	var cases []conform.Case
	if *golden != "" {
		gs, err := conform.GoldenCases(*golden)
		if err != nil {
			fmt.Fprintf(stderr, "conform: %v\n", err)
			return 2
		}
		cases = append(cases, gs...)
	}
	for i := 0; i < *n; i++ {
		cases = append(cases, conform.NewCase(*seed+int64(i)))
	}

	divs, err := runner.Map(context.Background(), cases,
		func(_ context.Context, c conform.Case, _ int) (*conform.Divergence, error) {
			return conform.Run(c, opts), nil
		},
		runner.Options{Workers: *jobs})
	if err != nil {
		fmt.Fprintf(stderr, "conform: %v\n", err)
		return 1
	}

	failed := 0
	var first *conform.Divergence
	var firstCase conform.Case
	for i, d := range divs {
		if d == nil {
			continue
		}
		failed++
		fmt.Fprintf(stderr, "FAIL %s\n", d.Error())
		if first == nil {
			first, firstCase = d, cases[i]
		}
	}
	if first != nil {
		min, d := conform.Minimize(firstCase, opts)
		if d == nil { // flaky environment, not a deterministic divergence
			min, d = firstCase, first
		}
		if err := conform.WriteCase(*repro, min); err != nil {
			fmt.Fprintf(stderr, "conform: writing repro: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "conform: minimized repro (%d steps) written to %s\n", len(min.Script), *repro)
			fmt.Fprintf(stderr, "conform: replay with: conform -replay %s\n", *repro)
		}
		fmt.Fprintf(stderr, "conform: %d/%d cases diverged\n", failed, len(cases))
		return 1
	}

	// Multicore serial-equivalence sweep: the epoch-parallel stepper against
	// the serial stepper, every counter and cache line compared.
	if *mc > 0 {
		mcs := make([]conform.MCCase, *mc)
		for i := range mcs {
			mcs[i] = conform.NewMCCase(*seed + int64(i))
		}
		mcDivs, err := runner.Map(context.Background(), mcs,
			func(_ context.Context, c conform.MCCase, _ int) (*conform.Divergence, error) {
				return conform.RunMCCase(c), nil
			},
			runner.Options{Workers: *jobs})
		if err != nil {
			fmt.Fprintf(stderr, "conform: %v\n", err)
			return 1
		}
		mcFailed := 0
		for _, d := range mcDivs {
			if d != nil {
				mcFailed++
				fmt.Fprintf(stderr, "FAIL %s\n", d.Error())
			}
		}
		if mcFailed > 0 {
			fmt.Fprintf(stderr, "conform: %d/%d multicore equivalence cases diverged\n", mcFailed, len(mcs))
			return 1
		}
	}

	fmt.Fprintf(stdout, "conform: %d cases agree (%d golden, %d random from seed %d)\n",
		len(cases), len(cases)-*n, *n, *seed)
	if *mc > 0 {
		fmt.Fprintf(stdout, "conform: %d multicore serial-vs-parallel cases agree\n", *mc)
	}
	return 0
}
