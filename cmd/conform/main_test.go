package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"colcache/internal/conform"
)

func TestRunSweepPasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "25", "-jobs", "4", "-golden", ""}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "25 cases agree") {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRunReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "case.json")
	if err := conform.WriteCase(path, conform.NewCase(5)); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRunReplayDivergence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	c := conform.NewCase(5)
	c.Script = append(c.Script, conform.Step{Op: "bogus"})
	if err := conform.WriteCase(path, c); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errb); code != 2 {
		t.Fatalf("stray arg: exit %d, want 2", code)
	}
	if code := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.json")}, &out, &errb); code != 2 {
		t.Fatalf("missing replay file: exit %d, want 2", code)
	}
}

func TestRunGoldenDir(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "5", "-jobs", "2",
		"-golden", filepath.Join("..", "..", "internal", "conform", "testdata", "golden")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}
