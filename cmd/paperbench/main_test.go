package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"colcache/internal/experiments"
)

// TestRunSectionsOrderAndAggregation checks the property the -jobs flag
// relies on: sections execute concurrently into buffers but the assembled
// output is in section order, with the ok flags ANDed.
func TestRunSectionsOrderAndAggregation(t *testing.T) {
	makeSection := func(i int, ok bool) func(io.Writer) (bool, error) {
		return func(w io.Writer) (bool, error) {
			// Earlier sections sleep longer, so completion order is the
			// reverse of section order when run concurrently.
			time.Sleep(time.Duration(5-i) * time.Millisecond)
			fmt.Fprintf(w, "section %d\n", i)
			return ok, nil
		}
	}
	for _, jobs := range []int{1, 4} {
		var buf bytes.Buffer
		ok, err := runSections(&buf, []func(io.Writer) (bool, error){
			makeSection(0, true), makeSection(1, false), makeSection(2, true), makeSection(3, true),
		}, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if ok {
			t.Errorf("jobs=%d: failing section not reflected in aggregate", jobs)
		}
		want := "section 0\nsection 1\nsection 2\nsection 3\n"
		if buf.String() != want {
			t.Errorf("jobs=%d: output out of order:\n%q", jobs, buf.String())
		}
	}
}

// TestRunSectionsError checks that a section error aborts the run.
func TestRunSectionsError(t *testing.T) {
	boom := errors.New("section failed")
	var buf bytes.Buffer
	_, err := runSections(&buf, []func(io.Writer) (bool, error){
		func(w io.Writer) (bool, error) { fmt.Fprintln(w, "fine"); return true, nil },
		func(io.Writer) (bool, error) { return false, boom },
	}, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
}

// TestRunSectionsPanicContained checks that a panicking section surfaces
// as an error rather than crashing the bench.
func TestRunSectionsPanicContained(t *testing.T) {
	var buf bytes.Buffer
	_, err := runSections(&buf, []func(io.Writer) (bool, error){
		func(io.Writer) (bool, error) { panic("experiment exploded") },
	}, 2)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error = %v, want contained panic", err)
	}
}

// TestQuickFig5Config checks that -quick trims the sweep without touching
// the other parameters.
func TestQuickFig5Config(t *testing.T) {
	full := experiments.DefaultFig5Config
	cfg := quickFig5Config(full)
	if len(cfg.Quanta) != 5 || cfg.TargetInstructions != 1<<19 {
		t.Errorf("quick config = %d quanta, %d instructions", len(cfg.Quanta), cfg.TargetInstructions)
	}
	if cfg.Ways != full.Ways || cfg.LineBytes != full.LineBytes {
		t.Error("quick config changed machine parameters")
	}
}
