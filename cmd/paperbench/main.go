// Command paperbench regenerates every table and figure of the paper's
// evaluation section and checks the qualitative claims ("shapes") against
// the data.
//
// Usage:
//
//	paperbench [-experiment fig4|fig5|ablations|comparisons|adaptive|multicore|all] [-quick] [-jobs N] [-mcscale file.json]
//
// -quick trims the Figure 5 quantum sweep for a fast run; the default runs
// the paper's full 1..1M axis.
//
// The experiments are independent simulations, so they fan out across a
// bounded worker pool: the top-level sections run concurrently into
// per-section buffers, and the inner sweeps (the Figure 4 partition grid,
// the Figure 5 quantum grid, the ablations) are parallelized inside
// internal/experiments. Output is assembled in a fixed order, so any -jobs
// value emits byte-identical text; -jobs 1 reproduces a fully serial run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"colcache/internal/experiments"
	"colcache/internal/runner"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/mpeg"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: fig4, fig5, ablations, comparisons, adaptive, multicore, all")
	quick := flag.Bool("quick", false, "trim sweeps for a fast run")
	jsonPath := flag.String("json", "", "write all results as JSON to this file instead of tables")
	jobs := flag.Int("jobs", 0, "parallel workers (0 = one per CPU, 1 = serial)")
	mcscale := flag.String("mcscale", "", "measure serial and epoch-parallel stepper throughput at 1/2/4/8 cores and write JSON to this file")
	corebench := flag.String("corebench", "", "run the core benchmark (serial + epoch-parallel steppers at 1/2/4/8 cores, streaming replay, best-of--corereps) and write JSON to this file")
	corebaseline := flag.String("corebaseline", "", "compare the -corebench run against this committed baseline JSON; exit nonzero on regression")
	coretolerance := flag.Float64("coretolerance", 0.25, "fractional throughput regression tolerated against -corebaseline")
	corereps := flag.Int("corereps", 3, "repetitions per -corebench row; the best run is kept")
	flag.Parse()

	experiments.SetWorkers(*jobs)

	if *mcscale != "" {
		if err := runScaling(*mcscale, *quick); err != nil {
			fail(err)
		}
		return
	}

	if *corebench != "" {
		ok, err := runCoreBench(*corebench, *corebaseline, *coretolerance, *corereps, *quick)
		if err != nil {
			fail(err)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSON(*jsonPath, *quick, *jobs); err != nil {
			fail(err)
		}
		return
	}

	var sections []func(w io.Writer) (bool, error)
	switch *experiment {
	case "fig4":
		sections = append(sections, runFig4)
	case "fig5":
		sections = append(sections, fig5Section(*quick))
	case "ablations":
		sections = append(sections, ablationsSection(*jobs))
	case "comparisons":
		sections = append(sections, comparisonsSection(*jobs))
	case "adaptive":
		sections = append(sections, adaptiveSection(*quick))
	case "multicore":
		sections = append(sections, multicoreSection)
	case "all":
		sections = append(sections,
			runFig4,
			fig5Section(*quick),
			ablationsSection(*jobs),
			comparisonsSection(*jobs),
			adaptiveSection(*quick),
			multicoreSection,
		)
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	ok, err := runSections(os.Stdout, sections, *jobs)
	if err != nil {
		fail(err)
	}
	if !ok {
		os.Exit(1)
	}
}

// runSections fans the sections out across a bounded pool, each writing to
// its own buffer, then emits the buffers in section order so the output is
// identical at any pool width.
func runSections(w io.Writer, sections []func(io.Writer) (bool, error), jobs int) (bool, error) {
	type result struct {
		text []byte
		ok   bool
	}
	results, err := runner.Map(context.Background(), sections,
		func(_ context.Context, section func(io.Writer) (bool, error), _ int) (result, error) {
			var buf bytes.Buffer
			ok, err := section(&buf)
			return result{buf.Bytes(), ok}, err
		},
		runner.Options{Workers: jobs})
	if err != nil {
		return false, err
	}
	allOK := true
	for _, r := range results {
		if _, err := w.Write(r.text); err != nil {
			return false, err
		}
		allOK = allOK && r.ok
	}
	return allOK, nil
}

func report(w io.Writer, problems []string) bool {
	if len(problems) == 0 {
		fmt.Fprintln(w, "shape check: all of the paper's qualitative claims hold")
		return true
	}
	for _, p := range problems {
		fmt.Fprintf(w, "shape check FAILED: %s\n", p)
	}
	return false
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
	os.Exit(1)
}

func runFig4(w io.Writer) (bool, error) {
	fmt.Fprintln(w, "=== Figure 4: scratchpad vs cache partitioning (MPEG routines) ===")
	data, err := experiments.RunFig4(experiments.DefaultFig4Config)
	if err != nil {
		return false, err
	}
	for _, t := range data.Tables() {
		t.Write(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "remap overhead included in the dynamic result: %d cycles\n", data.RemapOverheadCycles)
	return report(w, data.Verify()), nil
}

// quickFig5Config trims the quantum sweep for -quick runs.
func quickFig5Config(cfg experiments.Fig5Config) experiments.Fig5Config {
	cfg.Quanta = []int64{1, 64, 4096, 262144, 1048576}
	cfg.TargetInstructions = 1 << 19
	return cfg
}

func fig5Section(quick bool) func(io.Writer) (bool, error) {
	return func(w io.Writer) (bool, error) {
		fmt.Fprintln(w, "=== Figure 5: multitasking CPI vs context-switch quantum (3× gzip) ===")
		cfg := experiments.DefaultFig5Config
		if quick {
			cfg = quickFig5Config(cfg)
		}
		data, err := experiments.RunFig5(cfg)
		if err != nil {
			return false, err
		}
		data.Table().Write(w)
		fmt.Fprintln(w)
		data.EnergyTable().Write(w)
		fmt.Fprintln(w)
		return report(w, data.Verify()), nil
	}
}

// multicoreSection runs the cross-core interference study. The default
// config is already a sub-second run, so -quick does not trim it: shorter
// co-runs lose the re-touch passes that carry the interference signal.
func multicoreSection(w io.Writer) (bool, error) {
	fmt.Fprintln(w, "=== Multicore: cross-core interference over a shared column L2 ===")
	data, err := experiments.RunMulticore(experiments.DefaultMulticoreConfig)
	if err != nil {
		return false, err
	}
	for _, t := range data.Tables() {
		t.Write(w)
		fmt.Fprintln(w)
	}
	return report(w, data.Verify()), nil
}

// runScaling measures both steppers' simulated-cycles-per-second at growing
// core counts and writes the JSON record CI archives (BENCH_PR5.json):
// serial rows first, then epoch-parallel rows over the identical workload.
func runScaling(path string, quick bool) error {
	per := 400000
	if quick {
		per = 100000
	}
	counts := []int{1, 2, 4, 8}
	rows, err := experiments.RunMulticoreScaling(counts, per)
	if err != nil {
		return err
	}
	prows, err := experiments.RunMulticoreScalingParallel([]int{2, 4, 8}, per, 0)
	if err != nil {
		return err
	}
	rows = append(rows, prows...)
	experiments.ScalingTable(rows).Write(os.Stdout)
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("paperbench: wrote %s (%d bytes)\n", path, len(data)+1)
	return nil
}

// runCoreBench measures the core benchmark (best-of-reps per row), writes
// the snapshot to path, and — when baselinePath is set — gates against the
// committed baseline: any row more than tolerance below it fails the run.
func runCoreBench(path, baselinePath string, tolerance float64, reps int, quick bool) (bool, error) {
	per := 100000
	if quick {
		per = 25000
	}
	cb, err := experiments.RunCoreBench([]int{1, 2, 4, 8}, per, reps)
	if err != nil {
		return false, err
	}
	experiments.CoreBenchTable(cb).Write(os.Stdout)
	data, err := json.MarshalIndent(cb, "", "  ")
	if err != nil {
		return false, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return false, err
	}
	fmt.Printf("paperbench: wrote %s (%d bytes)\n", path, len(data)+1)
	if baselinePath == "" {
		return true, nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, fmt.Errorf("reading baseline: %w", err)
	}
	var baseline experiments.CoreBench
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return false, fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	problems := experiments.CompareCoreBench(cb, &baseline, tolerance)
	for _, p := range problems {
		fmt.Printf("core bench REGRESSION: %s\n", p)
	}
	if len(problems) == 0 {
		fmt.Printf("core bench: within %.0f%% of %s on every row\n", tolerance*100, baselinePath)
	}
	return len(problems) == 0, nil
}

// quickAdaptiveConfig trims the adaptive scenarios for -quick runs.
func quickAdaptiveConfig(cfg experiments.AdaptiveConfig) experiments.AdaptiveConfig {
	cfg.Phases = 4
	cfg.Passes = 24
	cfg.CoRunTarget = 1 << 16
	return cfg
}

func adaptiveSection(quick bool) func(io.Writer) (bool, error) {
	return func(w io.Writer) (bool, error) {
		fmt.Fprintln(w, "=== Adaptive control: online column allocation vs static layouts ===")
		cfg := experiments.DefaultAdaptiveConfig
		if quick {
			cfg = quickAdaptiveConfig(cfg)
		}
		data, err := experiments.RunAdaptive(cfg)
		if err != nil {
			return false, err
		}
		for _, t := range data.Tables() {
			t.Write(w)
			fmt.Fprintln(w)
		}
		return report(w, data.Verify()), nil
	}
}

func ablationsSection(jobs int) func(io.Writer) (bool, error) {
	return func(w io.Writer) (bool, error) {
		fmt.Fprintln(w, "=== Ablations ===")
		units := []func(io.Writer) (bool, error){
			func(w io.Writer) (bool, error) {
				pol, err := experiments.RunPolicyAblation()
				if err != nil {
					return false, err
				}
				experiments.PolicyAblationTable(pol).Write(w)
				ok := true
				for _, r := range pol {
					if r.MappedCPI >= r.SharedCPI {
						fmt.Fprintf(w, "shape check FAILED: policy %s shows no isolation benefit\n", r.Policy)
						ok = false
					}
				}
				fmt.Fprintln(w)
				return ok, nil
			},
			func(w io.Writer) (bool, error) {
				pen, err := experiments.RunMissPenaltyAblation([]int{5, 10, 20, 40, 80})
				if err != nil {
					return false, err
				}
				experiments.MissPenaltyAblationTable(pen).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				tlb, err := experiments.RunTLBAblation([]int{8, 16, 32, 64, 128}, 30)
				if err != nil {
					return false, err
				}
				experiments.TLBAblationTable(tlb).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				mask, err := experiments.RunMaskGranularityAblation()
				if err != nil {
					return false, err
				}
				experiments.MaskGranularityAblationTable(mask).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				en, err := experiments.RunEnergyAblation()
				if err != nil {
					return false, err
				}
				experiments.EnergyAblationTable(en).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				wp, err := experiments.RunWritePolicyAblation()
				if err != nil {
					return false, err
				}
				experiments.WritePolicyAblationTable(wp).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				jcfg := experiments.DefaultJitterConfig
				jit, err := experiments.RunJitter(jcfg)
				if err != nil {
					return false, err
				}
				experiments.JitterTable(jit, jcfg).Write(w)
				fmt.Fprintln(w)
				if jit[1].MaxCPI-jit[1].MinCPI > 0.02 {
					fmt.Fprintln(w, "shape check FAILED: mapped CPI not immune to quantum jitter")
					return false, nil
				}
				return true, nil
			},
		}
		ok, err := runSections(w, units, jobs)
		if err != nil {
			return false, err
		}
		if ok {
			fmt.Fprintln(w, "shape check: ablation expectations hold")
		}
		return ok, nil
	}
}

func comparisonsSection(jobs int) func(io.Writer) (bool, error) {
	return func(w io.Writer) (bool, error) {
		fmt.Fprintln(w, "=== Related-work comparisons (paper §5.1) ===")

		// The units run concurrently, each into its own buffer; the
		// cross-unit shape checks read their captured results after the
		// pool has drained.
		var (
			pc []experiments.PageColorComparison
			gr []experiments.GranularityComparison
		)
		units := []func(io.Writer) (bool, error){
			func(w io.Writer) (bool, error) {
				var err error
				if pc, err = experiments.RunPageColorComparison(); err != nil {
					return false, err
				}
				experiments.PageColorComparisonTable(pc).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				var err error
				if gr, err = experiments.RunGranularityComparison(); err != nil {
					return false, err
				}
				experiments.GranularityComparisonTable(gr).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				pipeRows, pipeDecisions, err := experiments.RunPipelineDynamic(mpeg.DefaultConfig)
				if err != nil {
					return false, err
				}
				experiments.PipelineTable(pipeRows, pipeDecisions).Write(w)
				experiments.PipelineDecisionsTable(pipeDecisions).Write(w)
				fmt.Fprintln(w)
				if pipeRows[2].Cycles >= pipeRows[1].Cycles {
					fmt.Fprintln(w, "shape check FAILED: dynamic layout not better than static on the pipeline")
					return false, nil
				}
				return true, nil
			},
			func(w io.Writer) (bool, error) {
				job := gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0)
				l2, err := experiments.RunL2Comparison(job.Trace)
				if err != nil {
					return false, err
				}
				experiments.L2ComparisonTable(l2).Write(w)
				fmt.Fprintln(w)
				return true, nil
			},
		}
		ok, err := runSections(w, units, jobs)
		if err != nil {
			return false, err
		}
		if pc[0].RemapCost < 100*pc[1].RemapCost {
			fmt.Fprintln(w, "shape check FAILED: page-coloring remap not ≫ column remap")
			ok = false
		}
		if gr[2].TableMisses*5 >= gr[1].TableMisses {
			fmt.Fprintln(w, "shape check FAILED: region tints did not beat process masks")
			ok = false
		}
		if ok {
			fmt.Fprintln(w, "shape check: comparison expectations hold")
		}
		return ok, nil
	}
}

// jsonResults collects every experiment's structured data for -json output.
type jsonResults struct {
	Fig4              *experiments.Fig4Data                 `json:"fig4,omitempty"`
	Fig5              *experiments.Fig5Data                 `json:"fig5,omitempty"`
	Policy            []experiments.PolicyAblation          `json:"policyAblation,omitempty"`
	MissPenalty       []experiments.MissPenaltyAblation     `json:"missPenaltyAblation,omitempty"`
	TLB               []experiments.TLBAblation             `json:"tlbAblation,omitempty"`
	Mask              []experiments.MaskGranularityAblation `json:"maskGranularityAblation,omitempty"`
	WritePolicy       []experiments.WritePolicyAblation     `json:"writePolicyAblation,omitempty"`
	Jitter            []experiments.JitterResult            `json:"jitterAblation,omitempty"`
	PageColor         []experiments.PageColorComparison     `json:"pageColorComparison,omitempty"`
	Granularity       []experiments.GranularityComparison   `json:"granularityComparison,omitempty"`
	L2                []experiments.L2Comparison            `json:"l2Comparison,omitempty"`
	Pipeline          []experiments.PipelineResult          `json:"pipelineDynamic,omitempty"`
	Adaptive          *experiments.AdaptiveData             `json:"adaptive,omitempty"`
	Multicore         *experiments.MulticoreData            `json:"multicore,omitempty"`
	ShapeChecksPassed bool                                  `json:"shapeChecksPassed"`
}

// runJSON regenerates everything and writes one JSON document to path. The
// tasks fan out across the worker pool, each filling its own field of res,
// and the document is marshaled after the pool drains — so the JSON too is
// identical at any -jobs value.
func runJSON(path string, quick bool, jobs int) error {
	res := jsonResults{}
	fig4OK, fig5OK, adaptiveOK, multicoreOK := false, false, false, false
	tasks := []func() error{
		func() (err error) {
			if res.Fig4, err = experiments.RunFig4(experiments.DefaultFig4Config); err == nil {
				fig4OK = len(res.Fig4.Verify()) == 0
			}
			return err
		},
		func() (err error) {
			cfg5 := experiments.DefaultFig5Config
			if quick {
				cfg5 = quickFig5Config(cfg5)
			}
			if res.Fig5, err = experiments.RunFig5(cfg5); err == nil {
				fig5OK = len(res.Fig5.Verify()) == 0
			}
			return err
		},
		func() (err error) { res.Policy, err = experiments.RunPolicyAblation(); return },
		func() (err error) {
			res.MissPenalty, err = experiments.RunMissPenaltyAblation([]int{5, 10, 20, 40, 80})
			return
		},
		func() (err error) { res.TLB, err = experiments.RunTLBAblation([]int{8, 16, 32, 64, 128}, 30); return },
		func() (err error) { res.Mask, err = experiments.RunMaskGranularityAblation(); return },
		func() (err error) { res.WritePolicy, err = experiments.RunWritePolicyAblation(); return },
		func() (err error) { res.Jitter, err = experiments.RunJitter(experiments.DefaultJitterConfig); return },
		func() (err error) { res.PageColor, err = experiments.RunPageColorComparison(); return },
		func() (err error) { res.Granularity, err = experiments.RunGranularityComparison(); return },
		func() (err error) {
			job := gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0)
			res.L2, err = experiments.RunL2Comparison(job.Trace)
			return err
		},
		func() (err error) { res.Pipeline, _, err = experiments.RunPipelineDynamic(mpeg.DefaultConfig); return },
		func() (err error) {
			cfgA := experiments.DefaultAdaptiveConfig
			if quick {
				cfgA = quickAdaptiveConfig(cfgA)
			}
			if res.Adaptive, err = experiments.RunAdaptive(cfgA); err == nil {
				adaptiveOK = len(res.Adaptive.Verify()) == 0
			}
			return err
		},
		func() (err error) {
			if res.Multicore, err = experiments.RunMulticore(experiments.DefaultMulticoreConfig); err == nil {
				multicoreOK = len(res.Multicore.Verify()) == 0
			}
			return err
		},
	}
	if _, err := runner.Map(context.Background(), tasks,
		func(_ context.Context, task func() error, _ int) (struct{}, error) {
			return struct{}{}, task()
		},
		runner.Options{Workers: jobs}); err != nil {
		return err
	}
	res.ShapeChecksPassed = fig4OK && fig5OK && adaptiveOK && multicoreOK

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("paperbench: wrote %s (%d bytes)\n", path, len(data))
	if !res.ShapeChecksPassed {
		return fmt.Errorf("shape checks failed (see %s)", path)
	}
	return nil
}
