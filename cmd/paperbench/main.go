// Command paperbench regenerates every table and figure of the paper's
// evaluation section and checks the qualitative claims ("shapes") against
// the data.
//
// Usage:
//
//	paperbench [-experiment fig4|fig5|ablations|all] [-quick]
//
// -quick trims the Figure 5 quantum sweep for a fast run; the default runs
// the paper's full 1..1M axis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"colcache/internal/experiments"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/mpeg"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run: fig4, fig5, ablations, comparisons, all")
	quick := flag.Bool("quick", false, "trim sweeps for a fast run")
	jsonPath := flag.String("json", "", "write all results as JSON to this file instead of tables")
	flag.Parse()

	if *jsonPath != "" {
		if !runJSON(*jsonPath, *quick) {
			os.Exit(1)
		}
		return
	}

	ok := true
	switch *experiment {
	case "fig4":
		ok = runFig4()
	case "fig5":
		ok = runFig5(*quick)
	case "ablations":
		ok = runAblations()
	case "comparisons":
		ok = runComparisons()
	case "all":
		ok = runFig4()
		ok = runFig5(*quick) && ok
		ok = runAblations() && ok
		ok = runComparisons() && ok
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func report(problems []string) bool {
	if len(problems) == 0 {
		fmt.Println("shape check: all of the paper's qualitative claims hold")
		return true
	}
	for _, p := range problems {
		fmt.Printf("shape check FAILED: %s\n", p)
	}
	return false
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
	os.Exit(1)
}

func runFig4() bool {
	fmt.Println("=== Figure 4: scratchpad vs cache partitioning (MPEG routines) ===")
	data, err := experiments.RunFig4(experiments.DefaultFig4Config)
	if err != nil {
		fail(err)
	}
	for _, t := range data.Tables() {
		t.Write(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("remap overhead included in the dynamic result: %d cycles\n", data.RemapOverheadCycles)
	return report(data.Verify())
}

func runFig5(quick bool) bool {
	fmt.Println("=== Figure 5: multitasking CPI vs context-switch quantum (3× gzip) ===")
	cfg := experiments.DefaultFig5Config
	if quick {
		cfg.Quanta = []int64{1, 64, 4096, 262144, 1048576}
		cfg.TargetInstructions = 1 << 19
	}
	data, err := experiments.RunFig5(cfg)
	if err != nil {
		fail(err)
	}
	data.Table().Write(os.Stdout)
	fmt.Println()
	return report(data.Verify())
}

func runAblations() bool {
	ok := true
	fmt.Println("=== Ablations ===")

	pol, err := experiments.RunPolicyAblation()
	if err != nil {
		fail(err)
	}
	experiments.PolicyAblationTable(pol).Write(os.Stdout)
	for _, r := range pol {
		if r.MappedCPI >= r.SharedCPI {
			fmt.Printf("shape check FAILED: policy %s shows no isolation benefit\n", r.Policy)
			ok = false
		}
	}
	fmt.Println()

	pen, err := experiments.RunMissPenaltyAblation([]int{5, 10, 20, 40, 80})
	if err != nil {
		fail(err)
	}
	experiments.MissPenaltyAblationTable(pen).Write(os.Stdout)
	fmt.Println()

	tlb, err := experiments.RunTLBAblation([]int{8, 16, 32, 64, 128}, 30)
	if err != nil {
		fail(err)
	}
	experiments.TLBAblationTable(tlb).Write(os.Stdout)
	fmt.Println()

	mask, err := experiments.RunMaskGranularityAblation()
	if err != nil {
		fail(err)
	}
	experiments.MaskGranularityAblationTable(mask).Write(os.Stdout)
	fmt.Println()

	en, err := experiments.RunEnergyAblation()
	if err != nil {
		fail(err)
	}
	experiments.EnergyAblationTable(en).Write(os.Stdout)
	fmt.Println()

	wp, err := experiments.RunWritePolicyAblation()
	if err != nil {
		fail(err)
	}
	experiments.WritePolicyAblationTable(wp).Write(os.Stdout)
	fmt.Println()

	jcfg := experiments.DefaultJitterConfig
	jit, err := experiments.RunJitter(jcfg)
	if err != nil {
		fail(err)
	}
	experiments.JitterTable(jit, jcfg).Write(os.Stdout)
	fmt.Println()
	if jit[1].MaxCPI-jit[1].MinCPI > 0.02 {
		fmt.Println("shape check FAILED: mapped CPI not immune to quantum jitter")
		ok = false
	}
	if ok {
		fmt.Println("shape check: ablation expectations hold")
	}
	return ok
}

func runComparisons() bool {
	ok := true
	fmt.Println("=== Related-work comparisons (paper §5.1) ===")

	pc, err := experiments.RunPageColorComparison()
	if err != nil {
		fail(err)
	}
	experiments.PageColorComparisonTable(pc).Write(os.Stdout)
	fmt.Println()

	gr, err := experiments.RunGranularityComparison()
	if err != nil {
		fail(err)
	}
	experiments.GranularityComparisonTable(gr).Write(os.Stdout)
	fmt.Println()

	pipeRows, pipeDecisions, err := experiments.RunPipelineDynamic(mpeg.DefaultConfig)
	if err != nil {
		fail(err)
	}
	experiments.PipelineTable(pipeRows, pipeDecisions).Write(os.Stdout)
	experiments.PipelineDecisionsTable(pipeDecisions).Write(os.Stdout)
	fmt.Println()
	if pipeRows[2].Cycles >= pipeRows[1].Cycles {
		fmt.Println("shape check FAILED: dynamic layout not better than static on the pipeline")
		ok = false
	}

	job := gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0)
	l2, err := experiments.RunL2Comparison(job.Trace)
	if err != nil {
		fail(err)
	}
	experiments.L2ComparisonTable(l2).Write(os.Stdout)
	fmt.Println()

	if pc[0].RemapCost < 100*pc[1].RemapCost {
		fmt.Println("shape check FAILED: page-coloring remap not ≫ column remap")
		ok = false
	}
	if gr[2].TableMisses*5 >= gr[1].TableMisses {
		fmt.Println("shape check FAILED: region tints did not beat process masks")
		ok = false
	}
	if ok {
		fmt.Println("shape check: comparison expectations hold")
	}
	return ok
}

// jsonResults collects every experiment's structured data for -json output.
type jsonResults struct {
	Fig4              *experiments.Fig4Data                 `json:"fig4,omitempty"`
	Fig5              *experiments.Fig5Data                 `json:"fig5,omitempty"`
	Policy            []experiments.PolicyAblation          `json:"policyAblation,omitempty"`
	MissPenalty       []experiments.MissPenaltyAblation     `json:"missPenaltyAblation,omitempty"`
	TLB               []experiments.TLBAblation             `json:"tlbAblation,omitempty"`
	Mask              []experiments.MaskGranularityAblation `json:"maskGranularityAblation,omitempty"`
	WritePolicy       []experiments.WritePolicyAblation     `json:"writePolicyAblation,omitempty"`
	Jitter            []experiments.JitterResult            `json:"jitterAblation,omitempty"`
	PageColor         []experiments.PageColorComparison     `json:"pageColorComparison,omitempty"`
	Granularity       []experiments.GranularityComparison   `json:"granularityComparison,omitempty"`
	L2                []experiments.L2Comparison            `json:"l2Comparison,omitempty"`
	Pipeline          []experiments.PipelineResult          `json:"pipelineDynamic,omitempty"`
	ShapeChecksPassed bool                                  `json:"shapeChecksPassed"`
}

// runJSON regenerates everything and writes one JSON document to path.
func runJSON(path string, quick bool) bool {
	res := jsonResults{ShapeChecksPassed: true}
	fail2 := func(err error) {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	var err error
	if res.Fig4, err = experiments.RunFig4(experiments.DefaultFig4Config); err != nil {
		fail2(err)
	}
	res.ShapeChecksPassed = res.ShapeChecksPassed && len(res.Fig4.Verify()) == 0
	cfg5 := experiments.DefaultFig5Config
	if quick {
		cfg5.Quanta = []int64{1, 64, 4096, 262144, 1048576}
		cfg5.TargetInstructions = 1 << 19
	}
	if res.Fig5, err = experiments.RunFig5(cfg5); err != nil {
		fail2(err)
	}
	res.ShapeChecksPassed = res.ShapeChecksPassed && len(res.Fig5.Verify()) == 0
	if res.Policy, err = experiments.RunPolicyAblation(); err != nil {
		fail2(err)
	}
	if res.MissPenalty, err = experiments.RunMissPenaltyAblation([]int{5, 10, 20, 40, 80}); err != nil {
		fail2(err)
	}
	if res.TLB, err = experiments.RunTLBAblation([]int{8, 16, 32, 64, 128}, 30); err != nil {
		fail2(err)
	}
	if res.Mask, err = experiments.RunMaskGranularityAblation(); err != nil {
		fail2(err)
	}
	if res.WritePolicy, err = experiments.RunWritePolicyAblation(); err != nil {
		fail2(err)
	}
	if res.Jitter, err = experiments.RunJitter(experiments.DefaultJitterConfig); err != nil {
		fail2(err)
	}
	if res.PageColor, err = experiments.RunPageColorComparison(); err != nil {
		fail2(err)
	}
	if res.Granularity, err = experiments.RunGranularityComparison(); err != nil {
		fail2(err)
	}
	job := gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0)
	if res.L2, err = experiments.RunL2Comparison(job.Trace); err != nil {
		fail2(err)
	}
	if res.Pipeline, _, err = experiments.RunPipelineDynamic(mpeg.DefaultConfig); err != nil {
		fail2(err)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail2(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail2(err)
	}
	fmt.Printf("paperbench: wrote %s (%d bytes)\n", path, len(data))
	return res.ShapeChecksPassed
}
