// Command colsim runs a memory-reference trace through a configurable
// column cache and reports hit/miss statistics and cycle counts.
//
// Usage:
//
//	colsim [flags] trace-file [trace-file...]
//	colsim [flags] -synth stream|random|chase
//
// The trace file uses the text format "R|W hex-addr [think]" (use -binary
// for the compact binary format). Column mappings are given as
// -map base:size:col0[,col1...] and may repeat. With several trace files
// each becomes a round-robin job sharing the cache (quantum set by
// -quantum, per-job masks by -jobmask idx:col[,col...]) and per-job CPI is
// reported — a Figure 5-style experiment on user traces.
//
// With -adaptive the online controller (internal/controller) takes over the
// tint table: every tint — one per -map region, plus the default tint — is
// watched by a shadow-tag utility monitor, and at every -epoch accesses the
// columns are redistributed by marginal utility. The per-epoch decision log
// and the remap count are printed after the run.
//
// With -cores N the traces instead run on an N-core machine
// (internal/multicore): each core replays one trace through a private L1
// kept coherent by a snooping MSI bus over a shared, column-partitioned L2
// (-l2sets/-l2ways/-l2hit). One trace per core; a single trace is replicated
// to every core in disjoint 4GB address windows. -l2cols core:col[,col...]
// restricts a core's L2 replacement to the given columns (repeatable).
//
// Example: isolate a stream at 0x1000 (4KB) in column 0 of a 16KB cache:
//
//	colsim -ways 4 -sets 128 -map 1000:1000:0 trace.txt
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"colcache/internal/cache"
	"colcache/internal/controller"
	"colcache/internal/inspect"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/replacement"
	"colcache/internal/sched"
	"colcache/internal/workloads/synth"
)

type mapFlag struct {
	entries []mapEntry
}

type mapEntry struct {
	base    uint64
	size    uint64
	columns []int
}

func (m *mapFlag) String() string { return fmt.Sprintf("%d mappings", len(m.entries)) }

func (m *mapFlag) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want base:size:columns, got %q", v)
	}
	base, err := strconv.ParseUint(parts[0], 16, 64)
	if err != nil {
		return fmt.Errorf("bad base %q: %v", parts[0], err)
	}
	size, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		return fmt.Errorf("bad size %q: %v", parts[1], err)
	}
	var cols []int
	for _, c := range strings.Split(parts[2], ",") {
		n, err := strconv.Atoi(c)
		if err != nil {
			return fmt.Errorf("bad column %q: %v", c, err)
		}
		cols = append(cols, n)
	}
	m.entries = append(m.entries, mapEntry{base: base, size: size, columns: cols})
	return nil
}

func main() {
	var (
		lineBytes = flag.Int("line", 32, "cache line bytes (power of two)")
		sets      = flag.Int("sets", 16, "cache sets (power of two)")
		ways      = flag.Int("ways", 4, "cache ways = columns")
		pageBytes = flag.Int("page", 4096, "page bytes (mapping granularity)")
		policy    = flag.String("policy", "lru", "replacement policy: lru, plru, fifo, random")
		penalty   = flag.Int("penalty", 20, "miss penalty cycles")
		binary    = flag.Bool("binary", false, "trace file is in binary format")
		stream    = flag.Bool("stream", false, "stream a single -binary trace file through the cache in fixed-size chunks instead of loading it into memory first")
		synthKind = flag.String("synth", "", "generate a synthetic workload instead of reading a file: stream, random, chase")
		synthN    = flag.Int("n", 10000, "synthetic workload size (accesses or passes scale)")
		quantum   = flag.Int64("quantum", 1024, "round-robin quantum in instructions (multi-trace mode)")
		describe  = flag.Bool("describe", false, "print the machine's mapping state after the run")
		reuse     = flag.Bool("reuse", false, "print the trace's reuse-distance histogram and LRU hit-rate estimates")
		planPath  = flag.String("plan", "", "apply a saved layout plan (from layouttool -o) before the run")
		adaptive  = flag.Bool("adaptive", false, "let the online controller redistribute columns across tints at epoch boundaries")
		epoch     = flag.Int64("epoch", 4096, "adaptive decision interval in cache accesses; with -parallel, the lookahead window in simulated cycles")
		minGain   = flag.Int64("mingain", 16, "adaptive hysteresis: predicted sampled-hit gain required to remap")
		inspEvery = flag.Int("inspect-every", 0, "dump an occupancy frame every N accesses (needs -inspect-out)")
		inspOut   = flag.String("inspect-out", "", "occupancy frame JSONL destination (- for stdout)")
		cores     = flag.Int("cores", 0, "multicore mode: cores with private L1s over a shared snooped L2 (0 = single-core)")
		parallel  = flag.Bool("parallel", false, "multicore mode: use the epoch-parallel stepper (bit-identical results to serial)")
		l2sets    = flag.Int("l2sets", 64, "multicore mode: shared L2 sets (power of two)")
		l2ways    = flag.Int("l2ways", 8, "multicore mode: shared L2 ways = columns")
		l2hit     = flag.Int("l2hit", 6, "multicore mode: L2 hit cycles")
	)
	var maps mapFlag
	flag.Var(&maps, "map", "map hex-base:hex-size:col[,col...] to columns (repeatable)")
	var jobMasks jobMaskFlag
	flag.Var(&jobMasks, "jobmask", "per-job column mask idx:col[,col...] (repeatable, multi-trace mode)")
	var l2cols jobMaskFlag
	flag.Var(&l2cols, "l2cols", "multicore mode: restrict a core's L2 columns, core:col[,col...] (repeatable)")
	flag.Parse()

	var (
		traces []memtrace.Trace
		tr     memtrace.Trace
		err    error
	)
	if *stream {
		if !*binary || *synthKind != "" || *cores > 0 || *reuse || flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "colsim: -stream wants exactly one -binary trace file (no -synth, -cores or -reuse)")
			os.Exit(1)
		}
	} else {
		traces, err = loadTraces(*synthKind, *synthN, *binary)
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
		tr = traces[0]
	}

	if *inspEvery > 0 {
		if *inspOut == "" {
			fmt.Fprintln(os.Stderr, "colsim: -inspect-every needs -inspect-out (use - for stdout)")
			os.Exit(1)
		}
		if *stream || (*cores == 0 && len(traces) > 1) {
			fmt.Fprintln(os.Stderr, "colsim: inspection wants a single in-memory trace or -cores N")
			os.Exit(1)
		}
	}

	if *cores > 0 {
		if err := runMulticore(traces, *cores, *lineBytes, *sets, *ways, *pageBytes,
			*policy, *penalty, *l2sets, *l2ways, *l2hit, l2cols, *parallel, *epoch,
			*inspEvery, *inspOut); err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *parallel {
		fmt.Fprintln(os.Stderr, "colsim: -parallel needs multicore mode (-cores N)")
		os.Exit(1)
	}

	timing := memsys.DefaultTiming
	timing.MissPenalty = *penalty
	g, err := memory.NewGeometry(*lineBytes, *pageBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
		os.Exit(1)
	}
	sys, err := memsys.New(memsys.Config{
		Geometry: g,
		Cache: cache.Config{
			LineBytes: *lineBytes,
			NumSets:   *sets,
			NumWays:   *ways,
			Policy:    replacement.Kind(*policy),
		},
		Timing: timing,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
		os.Exit(1)
	}
	for _, e := range maps.entries {
		r := memory.Region{Name: fmt.Sprintf("map@%x", e.base), Base: e.base, Size: e.size}
		if _, err := sys.MapRegion(r, replacement.Of(e.columns...)); err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
	}
	if *planPath != "" {
		f, err := os.Open(*planPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
		plan, err := layout.LoadPlan(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
		if _, err := layout.Apply(plan, sys, 0); err != nil {
			fmt.Fprintf(os.Stderr, "colsim: applying plan: %v\n", err)
			os.Exit(1)
		}
	}

	var ctl *controller.Controller
	if *adaptive {
		ctl, err = attachAdaptive(sys, *sets, *lineBytes, *ways, *epoch, *minGain)
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("cache:        %d sets × %d ways × %dB = %dB, policy %s\n",
		*sets, *ways, *lineBytes, *sets**ways**lineBytes, *policy)
	if *stream {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
		done, cycles, err := sys.Replay(context.Background(), memtrace.NewDecoder(f), memsys.ReplayOptions{})
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: streaming %s: %v\n", flag.Arg(0), err)
			os.Exit(1)
		}
		st := sys.Stats()
		fmt.Printf("trace:        %d accesses (streamed)\n", done)
		fmt.Printf("cycles:       %d\n", cycles)
		fmt.Printf("CPI:          %.3f\n", st.CPI())
		fmt.Printf("cache:        %s\n", st.Cache)
		fmt.Printf("TLB hit rate: %.2f%%\n", 100*st.TLB.HitRate())
	} else if len(traces) == 1 {
		var cycles int64
		if *inspEvery > 0 {
			out, closeOut, err := openInspectOut(*inspOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
				os.Exit(1)
			}
			sys.EnablePerTintStats()
			red := inspect.NewSystemReducer(sys)
			enc := json.NewEncoder(out)
			var frame inspect.Frame
			var encErr error
			total := len(tr)
			cycles, err = sys.RunContext(context.Background(), tr, memsys.RunOptions{
				InspectEvery: *inspEvery,
				OnInspect: func(done int, st memsys.Stats) {
					red.Reduce(&frame, int64(done), done == total)
					if err := enc.Encode(&frame); err != nil && encErr == nil {
						encErr = err
					}
				},
			})
			if err == nil {
				err = closeOut()
			}
			if err == nil {
				err = encErr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "colsim: inspect dump: %v\n", err)
				os.Exit(1)
			}
		} else {
			cycles = sys.Run(tr)
		}
		st := sys.Stats()
		fmt.Printf("trace:        %s\n", memtrace.Summarize(tr, g))
		fmt.Printf("cycles:       %d\n", cycles)
		fmt.Printf("CPI:          %.3f\n", st.CPI())
		fmt.Printf("cache:        %s\n", st.Cache)
		fmt.Printf("TLB hit rate: %.2f%%\n", 100*st.TLB.HitRate())
	} else {
		rr, err := sched.NewRoundRobin(sys, *quantum)
		if err != nil {
			fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
			os.Exit(1)
		}
		for i, t := range traces {
			job := &sched.Job{
				Name:               fmt.Sprintf("job%d", i),
				Trace:              t,
				TargetInstructions: t.Instructions(),
			}
			if m, ok := jobMasks.masks[i]; ok {
				job.Mask = m
			}
			if err := rr.Add(job); err != nil {
				fmt.Fprintf(os.Stderr, "colsim: %v\n", err)
				os.Exit(1)
			}
		}
		for _, st := range rr.Run() {
			fmt.Println(st)
		}
	}
	if ctl != nil {
		ctl.FinishEpoch()
		printDecisions(sys, ctl)
	}
	if *describe {
		fmt.Print(sys.Describe())
	}
	if *reuse {
		printReuse(tr, g)
	}
}

// runMulticore executes the -cores path: one trace per core through private
// L1 column caches kept coherent over a shared column-partitioned L2, via
// the serial stepper or (with -parallel) the bit-identical epoch-parallel
// stepper.
func runMulticore(traces []memtrace.Trace, cores, lineBytes, sets, ways, pageBytes int,
	policy string, penalty, l2sets, l2ways, l2hit int, l2cols jobMaskFlag,
	parallel bool, epoch int64, inspEvery int, inspOut string) error {
	replicated := false
	switch {
	case len(traces) == 1 && cores > 1:
		replicated = true
		// Replicate the single trace into disjoint per-core address windows.
		base := traces[0]
		traces = make([]memtrace.Trace, cores)
		for i := range traces {
			tr := make(memtrace.Trace, len(base))
			shift := uint64(i) << 32
			for k, a := range base {
				a.Addr += shift
				tr[k] = a
			}
			traces[i] = tr
		}
	case len(traces) != cores:
		return fmt.Errorf("multicore: %d cores but %d traces", cores, len(traces))
	}
	g, err := memory.NewGeometry(lineBytes, pageBytes)
	if err != nil {
		return err
	}
	timing := memsys.DefaultTiming
	timing.MissPenalty = penalty
	m, err := multicore.New(multicore.Config{
		Geometry: g,
		L1: cache.Config{
			LineBytes: lineBytes,
			NumSets:   sets,
			NumWays:   ways,
			Policy:    replacement.Kind(policy),
		},
		L2: cache.Config{
			LineBytes: lineBytes,
			NumSets:   l2sets,
			NumWays:   l2ways,
			Policy:    replacement.Kind(policy),
		},
		Timing:      timing,
		L2HitCycles: l2hit,
		Traces:      traces,
	})
	if err != nil {
		return err
	}
	for i, mask := range l2cols.masks {
		if i >= m.NumCores() {
			return fmt.Errorf("-l2cols core %d out of range (%d cores)", i, m.NumCores())
		}
		if err := m.SetL2Mask(i, mask); err != nil {
			return err
		}
	}
	var closeOut func() error
	var encErr error
	if inspEvery > 0 {
		out, c, err := openInspectOut(inspOut)
		if err != nil {
			return err
		}
		closeOut = c
		// Replicated single-trace runs put each core in a disjoint 4GB
		// window, so shared-L2 lines are attributable to their owning core;
		// user traces may alias, so their L2 occupancy stays untagged.
		var owner func(memory.Addr) int
		if replicated {
			owner = inspect.WindowOwner(m.NumCores(), 32)
		}
		red := inspect.NewMachineReducer(m, owner)
		enc := json.NewEncoder(out)
		var frame inspect.Frame
		var total int64
		for _, t := range traces {
			total += int64(len(t))
		}
		// An attached inspector forces the epoch-parallel stepper onto its
		// serial fallback, so -parallel dumps are bit-identical to serial.
		m.SetInspector(int64(inspEvery), func(done int64) {
			red.Reduce(&frame, done, done == total)
			if err := enc.Encode(&frame); err != nil && encErr == nil {
				encErr = err
			}
		})
	}
	switch {
	case parallel:
		err = m.RunParallel(epoch)
	case inspEvery > 0:
		// Only the checkpointing stepper fires the inspector; the tight
		// Run loop skips all per-step bookkeeping.
		err = m.RunContext(context.Background(), 0, nil)
	default:
		err = m.Run()
	}
	if err != nil {
		return err
	}
	if closeOut != nil {
		if err := closeOut(); err != nil {
			return fmt.Errorf("inspect dump: %w", err)
		}
		if encErr != nil {
			return fmt.Errorf("inspect dump: %w", encErr)
		}
	}
	st := m.Stats()
	fmt.Printf("machine:      %d cores, L1 %d×%d×%dB private, L2 %d×%d×%dB shared\n",
		m.NumCores(), sets, ways, lineBytes, l2sets, l2ways, lineBytes)
	for i, cs := range st.Cores {
		fmt.Printf("core%d:        instrs=%d cycles=%d CPI=%.3f l1{%s} l2acc=%d l2miss=%d inv=%d int=%d upg=%d mask=%s\n",
			i, cs.Instructions, cs.Cycles, cs.CPI(), cs.L1,
			cs.L2Accesses, cs.L2Misses, cs.InvalidationsRecv, cs.Interventions, cs.Upgrades,
			m.L2Mask(i))
	}
	fmt.Printf("bus:          rd=%d rdx=%d upgr=%d inv=%d int=%d races=%d\n",
		st.Bus.Reads, st.Bus.ReadXs, st.Bus.Upgrades,
		st.Bus.Invalidations, st.Bus.Interventions, st.Bus.WritebackRaces)
	fmt.Printf("L2:           %s\n", st.L2)
	fmt.Printf("makespan:     %d cycles (aggregate CPI %.3f)\n", st.Cycles, st.CPI())
	return nil
}

// openInspectOut opens the occupancy-frame JSONL destination; "-" means
// stdout. The returned close flushes (and closes, for files).
func openInspectOut(path string) (*bufio.Writer, func() error, error) {
	if path == "-" {
		w := bufio.NewWriter(os.Stdout)
		return w, w.Flush, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return w, func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// attachAdaptive puts every tint in the table — the default tint included,
// so unmapped pages keep a share — under the online controller's management
// and hooks the controller to the machine.
func attachAdaptive(sys *memsys.System, sets, lineBytes, ways int, epoch, minGain int64) (*controller.Controller, error) {
	tints := sys.Tints().Tints()
	if len(tints) > ways {
		return nil, fmt.Errorf("adaptive: %d tints but only %d columns", len(tints), ways)
	}
	specs := make([]controller.Spec, len(tints))
	for i, id := range tints {
		specs[i] = controller.Spec{ID: id, Min: 1, Max: ways}
	}
	ctl, err := controller.New(sys.Tints(), sets, lineBytes, specs,
		controller.Config{EpochAccesses: epoch, MinGainHits: minGain})
	if err != nil {
		return nil, err
	}
	sys.SetAccessObserver(ctl)
	return ctl, nil
}

// printDecisions renders the controller's epoch log and remap economy.
func printDecisions(sys *memsys.System, ctl *controller.Controller) {
	fmt.Println("adaptive decisions:")
	for _, d := range ctl.Decisions() {
		fmt.Printf("  %s\n", d)
	}
	fmt.Printf("tint remaps:  %d table writes\n", sys.Tints().Remaps())
}

// printReuse renders the reuse-distance histogram and the LRU hit rates it
// predicts across cache sizes.
func printReuse(tr memtrace.Trace, g memory.Geometry) {
	r := memtrace.ReuseDistances(tr, g)
	fmt.Printf("reuse distances: %d accesses, %d cold\n", r.Accesses, r.ColdMisses)
	for b, n := range r.Histogram {
		if n == 0 {
			continue
		}
		fmt.Printf("  [%6d,%6d) lines: %d\n", 1<<uint(b), 1<<uint(b+1), n)
	}
	for _, lines := range []int{16, 64, 256, 1024, 4096} {
		fmt.Printf("  est. LRU hit rate @ %4d lines (%5dB): %.1f%%\n",
			lines, lines*g.LineBytes, 100*r.HitRateAt(lines))
	}
}

// jobMaskFlag parses repeated "idx:col[,col...]" per-job masks.
type jobMaskFlag struct {
	masks map[int]replacement.Mask
}

func (j *jobMaskFlag) String() string { return fmt.Sprintf("%d job masks", len(j.masks)) }

func (j *jobMaskFlag) Set(v string) error {
	idxStr, colStr, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("want idx:col[,col...], got %q", v)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return fmt.Errorf("bad job index %q", idxStr)
	}
	var cols []int
	for _, c := range strings.Split(colStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return fmt.Errorf("bad column %q: %v", c, err)
		}
		cols = append(cols, n)
	}
	if j.masks == nil {
		j.masks = make(map[int]replacement.Mask)
	}
	j.masks[idx] = replacement.Of(cols...)
	return nil
}

func loadTraces(synthKind string, n int, binary bool) ([]memtrace.Trace, error) {
	switch synthKind {
	case "stream":
		return []memtrace.Trace{synth.Stream(0, uint64(n)*64, 4, 2).Trace}, nil
	case "random":
		return []memtrace.Trace{synth.Random(0, 1<<20, n, 1).Trace}, nil
	case "chase":
		return []memtrace.Trace{synth.PointerChase(0, 1024, 64, n, 1).Trace}, nil
	case "":
	default:
		return nil, fmt.Errorf("unknown synthetic workload %q", synthKind)
	}
	if flag.NArg() < 1 {
		return nil, fmt.Errorf("want at least one trace file (or -synth)")
	}
	var out []memtrace.Trace
	for _, path := range flag.Args() {
		tr, err := readTraceFile(path, binary)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

func readTraceFile(path string, binary bool) (memtrace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if binary {
		return memtrace.ReadBinary(f)
	}
	return memtrace.ReadText(f)
}
