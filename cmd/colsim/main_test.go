package main

import (
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
)

func TestMapFlagParsing(t *testing.T) {
	var m mapFlag
	if err := m.Set("1000:200:0"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("ff00:10:1,2,3"); err != nil {
		t.Fatal(err)
	}
	if len(m.entries) != 2 {
		t.Fatalf("entries=%d", len(m.entries))
	}
	e := m.entries[0]
	if e.base != 0x1000 || e.size != 0x200 || len(e.columns) != 1 || e.columns[0] != 0 {
		t.Errorf("entry 0 = %+v", e)
	}
	e = m.entries[1]
	if e.base != 0xff00 || e.size != 0x10 || len(e.columns) != 3 || e.columns[2] != 3 {
		t.Errorf("entry 1 = %+v", e)
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestMapFlagErrors(t *testing.T) {
	var m mapFlag
	for _, in := range []string{
		"1000:200",     // missing columns
		"zz:200:0",     // bad base
		"1000:zz:0",    // bad size
		"1000:200:x",   // bad column
		"1000:200:0:5", // too many parts
	} {
		if err := m.Set(in); err == nil {
			t.Errorf("Set(%q) succeeded", in)
		}
	}
}

func adaptiveTestSystem(t *testing.T, ways int) *memsys.System {
	t.Helper()
	sys, err := memsys.New(memsys.Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: ways},
		Timing:   memsys.DefaultTiming,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAttachAdaptiveManagesAllTints(t *testing.T) {
	sys := adaptiveTestSystem(t, 4)
	if _, err := sys.MapRegion(memory.Region{Name: "r", Base: 0, Size: 4096}, replacement.Of(0)); err != nil {
		t.Fatal(err)
	}
	ctl, err := attachAdaptive(sys, 16, 32, 4, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Default tint + mapped tint, every column owned by exactly one.
	if got := ctl.Specs(); len(got) != 2 {
		t.Fatalf("managed tints = %d, want 2", len(got))
	}
	total := 0
	for _, a := range ctl.Allocations() {
		total += a
	}
	if total != 4 {
		t.Errorf("initial allocation covers %d of 4 columns", total)
	}
}

func TestAttachAdaptiveTooManyTints(t *testing.T) {
	sys := adaptiveTestSystem(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := sys.MapRegion(memory.Region{Name: "r", Base: memory.Addr(i) << 20, Size: 4096},
			replacement.Of(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 3 tints (default + 2 mapped) onto 2 columns cannot keep everyone's
	// one-column minimum.
	if _, err := attachAdaptive(sys, 16, 32, 2, 1024, 16); err == nil {
		t.Error("over-subscribed adaptive setup accepted")
	}
}

func TestLoadTracesSynthetic(t *testing.T) {
	for _, kind := range []string{"stream", "random", "chase"} {
		traces, err := loadTraces(kind, 100, false)
		if err != nil {
			t.Errorf("loadTraces(%s): %v", kind, err)
			continue
		}
		if len(traces) != 1 || len(traces[0]) == 0 {
			t.Errorf("loadTraces(%s) shape wrong", kind)
		}
	}
	if _, err := loadTraces("bogus", 100, false); err == nil {
		t.Error("bogus synthetic kind accepted")
	}
}

func TestJobMaskFlag(t *testing.T) {
	var j jobMaskFlag
	if err := j.Set("0:0,1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Set("2:3"); err != nil {
		t.Fatal(err)
	}
	if len(j.masks) != 2 || !j.masks[0].Has(1) || !j.masks[2].Has(3) {
		t.Errorf("masks=%v", j.masks)
	}
	if j.String() == "" {
		t.Error("empty String")
	}
	for _, bad := range []string{"nocolon", "x:1", "-1:1", "0:x"} {
		if err := j.Set(bad); err == nil {
			t.Errorf("Set(%q) succeeded", bad)
		}
	}
}
