// Package colcache is the public API of the column-caching library: a
// software-controlled cache for application-specific memory management in
// embedded systems, reproducing Chiou, Jain, Devadas and Rudolph,
// "Application-Specific Memory Management for Embedded Systems Using
// Software-Controlled Caches" (MIT LCS CSG Memo 427 / DAC 2000).
//
// A Machine is a simulated embedded memory system: a set-associative cache
// whose ways ("columns") can be assigned to address regions through tints, a
// TLB that carries the tint of each page, an optional dedicated scratchpad,
// and a cycle-accounting model. Software controls placement three ways:
//
//   - Map a region to a subset of columns, isolating it from other data.
//   - Pin a region: an exclusive, preloaded column mapping that emulates
//     scratchpad memory inside the cache (paper §2.3).
//   - AutoLayout: run the paper's data layout algorithm (§3) over a recorded
//     trace and let it assign every variable to columns or scratchpad.
//
// The sub-packages under internal implement the substrates; everything a
// downstream user needs is re-exported here.
package colcache

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

// Re-exported core types, so callers need only this package.
type (
	// Region is a named contiguous byte range of the simulated address
	// space.
	Region = memory.Region
	// Access is one memory reference of a trace.
	Access = memtrace.Access
	// Trace is a sequence of accesses.
	Trace = memtrace.Trace
	// Recorder accumulates a trace from Load/Store/Think calls.
	Recorder = memtrace.Recorder
	// Timing fixes the machine's cycle costs.
	Timing = memsys.Timing
	// Stats aggregates the machine's counters.
	Stats = memsys.Stats
	// Tint identifies a software-visible grouping of pages.
	Tint = tint.Tint
)

// Operation kinds for Access.Op.
const (
	Read  = memtrace.Read
	Write = memtrace.Write
)

// DefaultTiming models a small embedded core (single-cycle hit, 20-cycle
// memory).
var DefaultTiming = memsys.DefaultTiming

// Config describes a Machine. Zero fields take the documented defaults.
type Config struct {
	// LineBytes is the cache-line size (default 32).
	LineBytes int
	// PageBytes is the mapping granularity (default 4096; embedded
	// configurations with small on-chip memories often use 64–256).
	PageBytes int
	// Columns is the number of cache ways, each one column (default 4).
	Columns int
	// ColumnBytes is the capacity of one column (default 512); the cache
	// holds Columns×ColumnBytes bytes in ColumnBytes/LineBytes sets.
	ColumnBytes int
	// Policy selects victim selection: "lru" (default), "plru", "fifo",
	// "random".
	Policy string
	// ScratchpadBytes adds a dedicated scratchpad SRAM (default 0).
	ScratchpadBytes uint64
	// TLBEntries/TLBWays size the TLB (default 64, fully associative).
	TLBEntries, TLBWays int
	// Timing fixes cycle costs (default DefaultTiming).
	Timing *Timing
}

func (c Config) withDefaults() Config {
	if c.LineBytes == 0 {
		c.LineBytes = 32
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.Columns == 0 {
		c.Columns = 4
	}
	if c.ColumnBytes == 0 {
		c.ColumnBytes = 512
	}
	if c.Policy == "" {
		c.Policy = string(replacement.LRU)
	}
	if c.TLBEntries == 0 {
		c.TLBEntries = vm.DefaultTLBConfig.Entries
		c.TLBWays = vm.DefaultTLBConfig.Ways
	}
	if c.TLBWays == 0 {
		c.TLBWays = c.TLBEntries
	}
	if c.Timing == nil {
		t := DefaultTiming
		c.Timing = &t
	}
	return c
}

// Machine is a simulated embedded processor memory system under software
// control. It is not safe for concurrent use.
type Machine struct {
	cfg   Config
	sys   *memsys.System
	space *memory.Space
}

// New builds a Machine.
func New(cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	if cfg.ColumnBytes%cfg.LineBytes != 0 {
		return nil, fmt.Errorf("colcache: column size %d not a multiple of line size %d",
			cfg.ColumnBytes, cfg.LineBytes)
	}
	sys, err := memsys.New(memsys.Config{
		Geometry: memory.MustGeometry(cfg.LineBytes, cfg.PageBytes),
		Cache: cache.Config{
			LineBytes: cfg.LineBytes,
			NumSets:   cfg.ColumnBytes / cfg.LineBytes,
			NumWays:   cfg.Columns,
			Policy:    replacement.Kind(cfg.Policy),
		},
		TLB:             vm.TLBConfig{Entries: cfg.TLBEntries, Ways: cfg.TLBWays},
		Timing:          *cfg.Timing,
		ScratchpadBytes: cfg.ScratchpadBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, sys: sys, space: memory.NewSpace(0)}, nil
}

// MustNew is New that panics on error, for fixed configurations.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the effective configuration (defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// CacheBytes returns the total cache capacity.
func (m *Machine) CacheBytes() int { return m.cfg.Columns * m.cfg.ColumnBytes }

// Alloc reserves a page-aligned region named name of the given size in the
// machine's address space. Page alignment guarantees the region can be
// tinted independently of its neighbors.
func (m *Machine) Alloc(name string, size uint64) Region {
	return m.space.Alloc(name, size, uint64(m.cfg.PageBytes))
}

// Variables returns every allocated region.
func (m *Machine) Variables() []Region { return m.space.Regions() }

// Map assigns a region to the given columns: the region's pages are tinted,
// and the tint's bit vector permits exactly those columns for replacement.
// The returned Tint can be remapped later with Remap.
func (m *Machine) Map(r Region, columns ...int) (Tint, error) {
	if len(columns) == 0 {
		return 0, fmt.Errorf("colcache: no columns given for %s", r.Name)
	}
	for _, c := range columns {
		if c < 0 || c >= m.cfg.Columns {
			return 0, fmt.Errorf("colcache: column %d outside [0,%d)", c, m.cfg.Columns)
		}
	}
	return m.sys.MapRegion(r, replacement.Of(columns...))
}

// Remap changes the columns a tint maps to. This is the paper's fast
// repartitioning: one table write, no page-table or TLB activity, effective
// on the next replacement decision.
func (m *Machine) Remap(id Tint, columns ...int) error {
	if len(columns) == 0 {
		return fmt.Errorf("colcache: no columns given")
	}
	return m.sys.RemapTint(id, replacement.Of(columns...))
}

// Unmap returns a region's pages to the default tint (all columns).
func (m *Machine) Unmap(r Region) {
	vm.Retint(m.sys.PageTable(), m.sys.TLB(), r.Base, r.Size, tint.Default)
}

// Pin emulates scratchpad memory inside the cache (paper §2.3): the region
// is mapped exclusively to the given columns, whose joint capacity must
// cover it one-to-one, and every line is preloaded. After Pin the region's
// accesses always hit — and, because no other region may replace into those
// columns, keep hitting until it is unpinned. Other regions must be mapped
// away from these columns by the caller (or use AutoLayout).
func (m *Machine) Pin(r Region, columns ...int) (Tint, error) {
	if len(columns) == 0 {
		return 0, fmt.Errorf("colcache: no columns given for %s", r.Name)
	}
	capacity := uint64(len(columns)) * uint64(m.cfg.ColumnBytes)
	if r.Size > capacity {
		return 0, fmt.Errorf("colcache: %s (%d bytes) exceeds the %d bytes of %d column(s)",
			r.Name, r.Size, capacity, len(columns))
	}
	// One-to-one: the region's lines must not conflict within the columns,
	// i.e. no two lines share a set beyond the column count. A contiguous
	// region ≤ capacity starting at a column-aligned base satisfies this.
	if r.Base%uint64(m.cfg.ColumnBytes) != 0 {
		return 0, fmt.Errorf("colcache: pinned region %s must be aligned to the column size %d",
			r.Name, m.cfg.ColumnBytes)
	}
	id, err := m.Map(r, columns...)
	if err != nil {
		return 0, err
	}
	m.sys.Preload(r)
	return id, nil
}

// PlaceInScratchpad places a region in the dedicated scratchpad SRAM, if
// the machine has one.
func (m *Machine) PlaceInScratchpad(r Region) error {
	return m.sys.Scratchpad().Place(r)
}

// Load executes a read of addr and returns the cycles it took.
func (m *Machine) Load(addr uint64) int64 {
	return m.sys.Access(Access{Addr: addr, Op: Read})
}

// Store executes a write of addr and returns the cycles it took.
func (m *Machine) Store(addr uint64) int64 {
	return m.sys.Access(Access{Addr: addr, Op: Write})
}

// Run executes a whole trace and returns the cycles consumed.
func (m *Machine) Run(t Trace) int64 { return m.sys.Run(t) }

// Step executes one access and returns the cycles it took.
func (m *Machine) Step(a Access) int64 { return m.sys.Access(a) }

// Stats snapshots the machine's counters.
func (m *Machine) Stats() Stats { return m.sys.Stats() }

// ResetStats zeroes the counters, keeping cache and TLB contents, so a
// measurement can exclude warmup.
func (m *Machine) ResetStats() { m.sys.ResetStats() }

// FlushCache writes back and invalidates the entire cache.
func (m *Machine) FlushCache() { m.sys.FlushCache() }

// Resident reports whether addr's line is currently cached, and in which
// column.
func (m *Machine) Resident(addr uint64) (column int, ok bool) {
	return m.sys.Cache().Probe(addr)
}

// System exposes the underlying memory system for advanced use (the
// experiment harnesses build on it).
func (m *Machine) System() *memsys.System { return m.sys }

// LayoutPlan is the result of AutoLayout: where each variable (or chunk of
// one) was placed.
type LayoutPlan = layout.Plan

// AutoLayout runs the paper's data layout algorithm over a recorded trace:
// variables larger than a column are split, a conflict graph is built from
// life-time overlaps, and chunks are assigned to columns by exact coloring
// with min-weight-edge merging. forceScratch names variables that must go
// to the dedicated scratchpad (paper §3.1.3). The resulting plan is applied
// to the machine and returned.
func (m *Machine) AutoLayout(t Trace, vars []Region, forceScratch ...string) (*LayoutPlan, error) {
	plan, err := layout.Build(layout.Request{
		Trace:        t,
		Vars:         vars,
		ForceScratch: forceScratch,
		Machine: layout.Machine{
			Columns:         m.cfg.Columns,
			ColumnBytes:     m.cfg.ColumnBytes,
			ScratchpadBytes: m.cfg.ScratchpadBytes,
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := layout.Apply(plan, m.sys, 0); err != nil {
		return nil, err
	}
	return plan, nil
}
