package colcache

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section (run `go test -bench=Fig -benchmem`), the ablations
// DESIGN.md calls out (`-bench=Ablation`), and microbenchmarks of the
// simulator's hot paths (`-bench=Micro`).
//
// Figure benchmarks report the figure's headline numbers as custom metrics
// so `go test -bench` output doubles as the reproduction table.

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/cpu"
	"colcache/internal/experiments"
	"colcache/internal/graph"
	"colcache/internal/layout"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
)

// --- Figure 4: one benchmark per panel --------------------------------------

func benchFig4Routine(b *testing.B, name string) {
	var data *experiments.Fig4Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.RunFig4(experiments.DefaultFig4Config)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range data.Routines {
		if r.Name != name {
			continue
		}
		for k, c := range r.Cycles {
			b.ReportMetric(float64(c), "cycles@"+string(rune('0'+k))+"cols")
		}
	}
	if problems := data.Verify(); len(problems) != 0 {
		b.Fatalf("paper shape violations: %v", problems)
	}
}

// BenchmarkFig4Dequant regenerates Figure 4(a): dequant cycle count vs
// scratchpad/cache partition.
func BenchmarkFig4Dequant(b *testing.B) { benchFig4Routine(b, "dequant") }

// BenchmarkFig4Plus regenerates Figure 4(b).
func BenchmarkFig4Plus(b *testing.B) { benchFig4Routine(b, "plus") }

// BenchmarkFig4Idct regenerates Figure 4(c).
func BenchmarkFig4Idct(b *testing.B) { benchFig4Routine(b, "idct") }

// BenchmarkFig4Total regenerates Figure 4(d): the whole application under
// every static partition versus the dynamically repartitioned column cache.
func BenchmarkFig4Total(b *testing.B) {
	var data *experiments.Fig4Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.RunFig4(experiments.DefaultFig4Config)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := data.Total[0]
	for _, c := range data.Total {
		if c < best {
			best = c
		}
	}
	b.ReportMetric(float64(best), "static-best-cycles")
	b.ReportMetric(float64(data.Column), "column-cycles")
	b.ReportMetric(float64(best)/float64(data.Column), "speedup")
	if problems := data.Verify(); len(problems) != 0 {
		b.Fatalf("paper shape violations: %v", problems)
	}
}

// --- Figure 5 ----------------------------------------------------------------

// fig5BenchConfig trims the quantum axis to its ends and middle so the
// benchmark finishes in seconds; `paperbench -experiment fig5` runs the full
// 11-point axis.
func fig5BenchConfig() experiments.Fig5Config {
	cfg := experiments.DefaultFig5Config
	cfg.Quanta = []int64{1, 4096, 1048576}
	cfg.TargetInstructions = 1 << 19
	return cfg
}

// BenchmarkFig5 regenerates Figure 5: job A's CPI vs context-switch quantum
// for standard and column-mapped caches at 16KB and 128KB.
func BenchmarkFig5(b *testing.B) {
	var data *experiments.Fig5Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.RunFig5(fig5BenchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range data.Curves {
		label := strings.ReplaceAll(c.Label(), " ", "-")
		b.ReportMetric(c.Points[0].CPI, "CPI@q1/"+label)
		b.ReportMetric(c.Points[len(c.Points)-1].CPI, "CPI@q1M/"+label)
	}
	if problems := data.Verify(); len(problems) != 0 {
		b.Fatalf("paper shape violations: %v", problems)
	}
}

// --- Figure 3 (tint economy) -------------------------------------------------

// BenchmarkFig3TintRemap measures the paper's cheap repartitioning: a tint
// remap is a single table write, nanoseconds in the simulator and one cycle
// in the model, versus a page-table rewrite per page for raw vectors.
func BenchmarkFig3TintRemap(b *testing.B) {
	m := MustNew(Config{PageBytes: 64})
	r := m.Alloc("r", 4096)
	id, err := m.Map(r, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Remap(id, i%4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationPolicy: isolation benefit across replacement policies.
func BenchmarkAblationPolicy(b *testing.B) {
	var rows []experiments.PolicyAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunPolicyAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SharedCPI, "sharedCPI/"+string(r.Policy))
		b.ReportMetric(r.MappedCPI, "mappedCPI/"+string(r.Policy))
	}
}

// BenchmarkAblationMissPenalty: partition ordering across memory latencies.
func BenchmarkAblationMissPenalty(b *testing.B) {
	var rows []experiments.MissPenaltyAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunMissPenaltyAblation([]int{5, 20, 80})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		gap := r.Sweep.Cycles[len(r.Sweep.Cycles)-1] - r.Sweep.Cycles[0]
		b.ReportMetric(float64(gap), "cache-vs-scratch-gap@pen"+itoa(r.MissPenalty))
	}
}

// BenchmarkAblationTLB: tint-carrying TLB reach.
func BenchmarkAblationTLB(b *testing.B) {
	var rows []experiments.TLBAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTLBAblation([]int{8, 64}, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CPI, "CPI@tlb"+itoa(r.TLBEntries))
	}
}

// BenchmarkAblationMaskGranularity: single-column vs aggregated partitions.
func BenchmarkAblationMaskGranularity(b *testing.B) {
	var rows []experiments.MaskGranularityAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunMaskGranularityAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range rows {
		b.ReportMetric(float64(r.Cycles), "cycles/shape"+itoa(i))
	}
}

// --- Microbenchmarks of the simulator's hot paths ----------------------------

// BenchmarkMicroCacheAccess: raw column-cache lookup+replacement throughput.
func BenchmarkMicroCacheAccess(b *testing.B) {
	m := MustNew(Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.System().Cache().Read(uint64(i*64)%(1<<20), replacement.All(4))
	}
}

// BenchmarkMicroSystemAccess: full machine path (TLB + tint + cache +
// timing) per access.
func BenchmarkMicroSystemAccess(b *testing.B) {
	m := MustNew(Config{})
	a := Access{Addr: 0, Op: Read}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Addr = uint64(i*64) % (1 << 20)
		m.Step(a)
	}
}

// BenchmarkMicroTraceRun: end-to-end trace replay throughput.
func BenchmarkMicroTraceRun(b *testing.B) {
	prog := mpeg.Idct(mpeg.Config{})
	sys := memsys.MustNew(memsys.Config{
		Geometry: mustGeom(),
		Cache:    defaultCacheCfg(),
		Timing:   memsys.DefaultTiming,
	})
	b.SetBytes(int64(len(prog.Trace)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(prog.Trace)
	}
}

// BenchmarkMicroLayout: the full layout pipeline (profile + graph + exact
// coloring) on the idct kernel.
func BenchmarkMicroLayout(b *testing.B) {
	prog := mpeg.Idct(mpeg.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Build(layout.Request{
			Trace:   prog.Trace,
			Vars:    prog.Vars,
			Machine: layout.Machine{Columns: 4, ColumnBytes: 512},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroExactColoring: exact minimum coloring on a Petersen graph.
func BenchmarkMicroExactColoring(b *testing.B) {
	g := graph.New(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, e := range append(append(outer, inner...), spokes...) {
		g.SetWeight(e[0], e[1], 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, k := g.ExactColor(); k != 3 {
			b.Fatalf("k=%d", k)
		}
	}
}

// BenchmarkMicroGzipTrace: workload generation throughput (the LZ77 matcher
// with recording).
func BenchmarkMicroGzipTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := gzipsim.Job(gzipsim.Config{WindowBytes: 8 * 1024}, 0)
		b.SetBytes(int64(len(p.Trace)))
	}
}

// BenchmarkMicroTraceCodec: binary trace encode+decode throughput.
func BenchmarkMicroTraceCodec(b *testing.B) {
	prog := mpeg.Dequant(mpeg.Config{})
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := memtrace.WriteBinary(&buf, prog.Trace); err != nil {
			b.Fatal(err)
		}
		if _, err := memtrace.ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// --- small local helpers -----------------------------------------------------

func itoa(v int) string { return strconv.Itoa(v) }

func mustGeom() memory.Geometry { return memory.MustGeometry(32, 64) }

func defaultCacheCfg() cache.Config {
	return cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4}
}

// --- Related-work comparison benches ------------------------------------------

// BenchmarkComparisonPageColor: §5.1 page coloring vs column caching.
func BenchmarkComparisonPageColor(b *testing.B) {
	var rows []experiments.PageColorComparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunPageColorComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].RemapCost), "pagecolor-remap-cycles")
	b.ReportMetric(float64(rows[1].RemapCost), "column-remap-cycles")
}

// BenchmarkComparisonGranularity: §5.1 process masks vs region tints.
func BenchmarkComparisonGranularity(b *testing.B) {
	var rows []experiments.GranularityComparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunGranularityComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.TableMisses), "table-misses/"+r.Scheme[:4])
	}
}

// BenchmarkComparisonL2: hierarchy-depth ablation.
func BenchmarkComparisonL2(b *testing.B) {
	job := gzipsim.Job(gzipsim.Config{WindowBytes: 4096}, 0)
	var rows []experiments.L2Comparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunL2Comparison(job.Trace)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range rows {
		b.ReportMetric(r.CPI, "CPI/cfg"+itoa(i))
	}
}

// BenchmarkMicroCore: simulated-CPU instruction throughput (asm sum loop).
func BenchmarkMicroCore(b *testing.B) {
	prog := cpu.MustAssemble(`
		li r1, 0
		li r2, 0x10000
		li r3, 1000
		li r5, 0
	loop:
		ld r4, [r2+0]
		add r1, r1, r4
		addi r2, r2, 8
		addi r3, r3, -1
		bne r3, r5, loop
		halt
	`, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := memsys.MustNew(memsys.Config{
			Geometry: mustGeom(),
			Cache:    defaultCacheCfg(),
			Timing:   memsys.DefaultTiming,
		})
		core := cpu.NewCore(sys, prog)
		if halted, err := core.Run(1 << 20); err != nil || !halted {
			b.Fatalf("halted=%v err=%v", halted, err)
		}
		b.SetBytes(core.Retired())
	}
}

// BenchmarkMicroKernelLayouts: the layout pipeline across the extra kernels.
func BenchmarkMicroKernelLayouts(b *testing.B) {
	progs := []struct {
		name  string
		trace memtrace.Trace
		vars  []memory.Region
	}{}
	for _, p := range []*workloads.Program{
		kernels.MatMul(kernels.MatMulConfig{}),
		kernels.FIR(kernels.FIRConfig{}),
		kernels.Histogram(kernels.HistogramConfig{}),
	} {
		progs = append(progs, struct {
			name  string
			trace memtrace.Trace
			vars  []memory.Region
		}{p.Name, p.Trace, p.Vars})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := layout.Build(layout.Request{
				Trace:   p.trace,
				Vars:    p.vars,
				Machine: layout.Machine{Columns: 4, ColumnBytes: 512},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationWritePolicy: write-back vs write-through on hot
// read-modify-write data.
func BenchmarkAblationWritePolicy(b *testing.B) {
	var rows []experiments.WritePolicyAblation
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunWritePolicyAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), "cycles/"+r.Policy[:2])
	}
}

// BenchmarkAblationJitter: CPI spread under randomized quanta, standard vs
// column-mapped (paper §4.2's interrupt argument).
func BenchmarkAblationJitter(b *testing.B) {
	cfg := experiments.DefaultJitterConfig
	cfg.Seeds = 4
	cfg.TargetInstructions = 1 << 18
	var rows []experiments.JitterResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunJitter(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MaxCPI-r.MinCPI, "CPI-spread/"+r.Label()[:4])
	}
}

// BenchmarkMicroL2: access throughput with a second level attached.
func BenchmarkMicroL2(b *testing.B) {
	m := MustNew(Config{})
	if err := m.EnableL2(64*1024, 8, 10, false); err != nil {
		b.Fatal(err)
	}
	a := Access{Op: Read}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Addr = uint64(i*64) % (1 << 20)
		m.Step(a)
	}
}

// BenchmarkMicroPrefetch: prefetcher-in-the-loop access throughput.
func BenchmarkMicroPrefetch(b *testing.B) {
	m := MustNew(Config{})
	p, err := m.AttachPrefetcher(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	a := Access{Op: Read}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Addr = uint64(i * 32)
		p.Step(a)
	}
}

// BenchmarkPipelineDynamic: the §3.2 dynamic-layout experiment end to end.
func BenchmarkPipelineDynamic(b *testing.B) {
	var rows []experiments.PipelineResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.RunPipelineDynamic(mpeg.DefaultConfig)
		if err != nil {
			b.Fatal(err)
		}
	}
	labels := []string{"unmanaged", "static", "dynamic"}
	for i, r := range rows {
		b.ReportMetric(float64(r.Cycles), "cycles/"+labels[i])
	}
}
