package colcache

import (
	"encoding/json"
	"time"
)

// Wire types of the colserved HTTP API (cmd/colserved, internal/service).
// They live in the public colcache package so programmatic callers — the
// Client in client.go, the examples — and the server share one vocabulary.
//
// The serving model is a job queue: POST /v1/simulate or /v1/sweep submits
// work and returns a JobInfo in state "queued" (HTTP 202); GET /v1/jobs/{id}
// polls it; the terminal JobInfo carries the result. A full queue answers
// 429 with a Retry-After header, and a draining server answers 503 — both
// retriable by resubmitting, never by re-polling a lost job.

// MachineSpec selects the simulated machine. Zero fields take the
// documented defaults, matching the colsim CLI.
type MachineSpec struct {
	LineBytes   int    `json:"line_bytes,omitempty"`   // cache line bytes (default 32)
	Sets        int    `json:"sets,omitempty"`         // cache sets (default 16)
	Ways        int    `json:"ways,omitempty"`         // ways = columns (default 4)
	PageBytes   int    `json:"page_bytes,omitempty"`   // mapping granularity (default 4096)
	Policy      string `json:"policy,omitempty"`       // lru (default), plru, fifo, random
	MissPenalty int    `json:"miss_penalty,omitempty"` // cycles (default 20)
}

// WorkloadSpec names a built-in trace generator and its parameters. Which
// parameters apply depends on the workload; unused ones are ignored. All
// generators are deterministic in their parameters, so a spec is a
// reproducible experiment.
//
// Workloads: stream, strided, random, chase, phaseshift, writesweep,
// matmul, fir, histogram, mpeg-dequant, mpeg-plus, mpeg-idct, gzip.
type WorkloadSpec struct {
	Name string `json:"name"`
	// N scales the workload: accesses for random, hops for chase, matrix
	// dimension for matmul, samples for fir/histogram, blocks for the mpeg
	// kernels.
	N int `json:"n,omitempty"`
	// SizeBytes sizes the touched buffer for stream/strided/random/
	// writesweep/phaseshift (per region) and the gzip window.
	SizeBytes uint64 `json:"size_bytes,omitempty"`
	// Stride is the strided workload's step in bytes.
	Stride uint64 `json:"stride,omitempty"`
	// Passes repeats the sweep-style workloads.
	Passes int `json:"passes,omitempty"`
	// Phases counts phaseshift's working-set alternations.
	Phases int `json:"phases,omitempty"`
	// Taps is fir's filter length; Bins is histogram's table size.
	Taps int `json:"taps,omitempty"`
	Bins int `json:"bins,omitempty"`
	// Seed drives the deterministic generators (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// MapSpec assigns an address region to a set of columns, like colsim -map.
type MapSpec struct {
	Name    string `json:"name,omitempty"`
	Base    uint64 `json:"base"`
	Size    uint64 `json:"size"`
	Columns []int  `json:"columns"`
}

// AdaptiveSpec turns on the online column-allocation controller for the
// run: every tint (the default one included) is watched by a shadow-tag
// utility monitor and columns are redistributed at epoch boundaries.
type AdaptiveSpec struct {
	EpochAccesses int64 `json:"epoch_accesses,omitempty"` // decision interval (default 4096)
	MinGainHits   int64 `json:"min_gain_hits,omitempty"`  // hysteresis (default 16)
	SampleEvery   int   `json:"sample_every,omitempty"`   // monitor set sampling (default every set)
}

// CoreSpec is one core of a multicore simulation: the workload generating
// its private trace and the shared-L2 columns it may replace into (empty
// means every column).
type CoreSpec struct {
	Workload WorkloadSpec `json:"workload"`
	Columns  []int        `json:"columns,omitempty"`
}

// MulticoreSpec turns a simulate job into a multicore co-run: each core
// replays its own workload trace through a private L1 column cache (the
// machine spec's geometry), over a snooping write-invalidate MSI bus into a
// shared column-partitioned L2. By default each core's trace is shifted
// into its own 4 GiB address window so the co-run contends only for
// capacity; SharedAddresses leaves the workloads' native addresses in
// place, so overlapping footprints exercise the coherence protocol.
// Parallel selects the epoch-parallel stepper, which runs each core's
// lookahead on its own goroutine and is bit-identical to the serial
// stepper; Epoch tunes its lookahead window in simulated cycles (0 picks
// the default). The results are the same either way — only wall-clock
// time differs.
type MulticoreSpec struct {
	Cores           []CoreSpec `json:"cores"`
	L2Sets          int        `json:"l2_sets,omitempty"`       // default 64
	L2Ways          int        `json:"l2_ways,omitempty"`       // default 8
	L2HitCycles     int        `json:"l2_hit_cycles,omitempty"` // default 6
	SharedAddresses bool       `json:"shared_addresses,omitempty"`
	Parallel        bool       `json:"parallel,omitempty"`
	Epoch           int64      `json:"epoch,omitempty"` // lookahead cycles per epoch when Parallel
}

// SimSpec is the body of POST /v1/simulate: one machine, one trace source.
// Exactly one of Workload, TraceText, or Multicore must be set (an
// octet-stream upload is the fourth source; see Client.SubmitTrace).
type SimSpec struct {
	Label    string        `json:"label,omitempty"`
	Machine  MachineSpec   `json:"machine"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// TraceText is an inline trace in the text format "R|W hex-addr [think]".
	TraceText string         `json:"trace_text,omitempty"`
	Maps      []MapSpec      `json:"maps,omitempty"`
	Adaptive  *AdaptiveSpec  `json:"adaptive,omitempty"`
	Multicore *MulticoreSpec `json:"multicore,omitempty"`
}

// SweepSpec is the body of POST /v1/sweep: a base spec crossed with
// parameter axes. Empty axes default to the base value, so the point count
// is the product of the non-empty axis lengths.
type SweepSpec struct {
	Label string  `json:"label,omitempty"`
	Base  SimSpec `json:"base"`
	// Axes. Each entry overrides the corresponding base field for the
	// points of that slice.
	Sets          []int          `json:"sets,omitempty"`
	Ways          []int          `json:"ways,omitempty"`
	Policies      []string       `json:"policies,omitempty"`
	MissPenalties []int          `json:"miss_penalties,omitempty"`
	Workloads     []WorkloadSpec `json:"workloads,omitempty"`
	// Workers bounds the sweep's inner fan-out; the server caps it.
	Workers int `json:"workers,omitempty"`
}

// CacheCounters are the cache-level counters of a result.
type CacheCounters struct {
	Accesses   int64   `json:"accesses"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Evictions  int64   `json:"evictions"`
	Writebacks int64   `json:"writebacks"`
	Fills      int64   `json:"fills"`
	MissRate   float64 `json:"miss_rate"`
}

// TintView is one tint's live mapping, for observability.
type TintView struct {
	Name    string `json:"name"`
	Mask    uint64 `json:"mask"`
	Columns []int  `json:"columns"`
}

// AdaptiveResult reports what the online controller did during a run.
type AdaptiveResult struct {
	Epochs    int      `json:"epochs"`
	Remaps    int64    `json:"remaps"`
	Decisions []string `json:"decisions,omitempty"`
}

// BusCounters report coherence traffic on a multicore run's shared bus.
type BusCounters struct {
	Reads          int64 `json:"reads"`  // BusRd
	ReadXs         int64 `json:"readxs"` // BusRdX
	Upgrades       int64 `json:"upgrades"`
	Invalidations  int64 `json:"invalidations"`
	Interventions  int64 `json:"interventions"`
	WritebackRaces int64 `json:"writeback_races"`
}

// CoreResult is one core's share of a multicore result.
type CoreResult struct {
	Workload          string        `json:"workload"`
	Instructions      int64         `json:"instructions"`
	Cycles            int64         `json:"cycles"`
	CPI               float64       `json:"cpi"`
	L1                CacheCounters `json:"l1"`
	L2Accesses        int64         `json:"l2_accesses"`
	L2Misses          int64         `json:"l2_misses"`
	InvalidationsRecv int64         `json:"invalidations_recv"`
	Interventions     int64         `json:"interventions"`
	Upgrades          int64         `json:"upgrades"`
	Columns           []int         `json:"columns,omitempty"` // final shared-L2 mask
}

// MulticoreResult reports a multicore co-run: per-core counters, bus
// traffic, and the shared L2. The enclosing SimResult carries the
// aggregates (makespan cycles, summed instructions, summed L1 counters).
type MulticoreResult struct {
	Cores []CoreResult  `json:"cores"`
	Bus   BusCounters   `json:"bus"`
	L2    CacheCounters `json:"l2"`
}

// SimResult is one finished simulation.
type SimResult struct {
	Label         string           `json:"label,omitempty"`
	Workload      string           `json:"workload,omitempty"`
	TraceAccesses int64            `json:"trace_accesses"`
	Instructions  int64            `json:"instructions"`
	Cycles        int64            `json:"cycles"`
	CPI           float64          `json:"cpi"`
	Cache         CacheCounters    `json:"cache"`
	TLBHitRate    float64          `json:"tlb_hit_rate"`
	Remaps        int64            `json:"remaps"`
	Tints         []TintView       `json:"tints,omitempty"`
	Adaptive      *AdaptiveResult  `json:"adaptive,omitempty"`
	Multicore     *MulticoreResult `json:"multicore,omitempty"`
}

// SweepPoint is one point of a sweep result.
type SweepPoint struct {
	Label   string      `json:"label"`
	Machine MachineSpec `json:"machine"`
	Result  SimResult   `json:"result"`
}

// SweepResult is a finished sweep.
type SweepResult struct {
	Points []SweepPoint `json:"points"`
}

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled; canceled jobs with Retriable set were shed by a draining
// server and can be resubmitted as-is.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobProgress is the live view of a running job, published at simulation
// checkpoints (and refreshed from the thread-safe tint table on read).
type JobProgress struct {
	AccessesDone  int64      `json:"accesses_done"`
	AccessesTotal int64      `json:"accesses_total"`
	Cycles        int64      `json:"cycles"`
	CacheMissRate float64    `json:"cache_miss_rate"`
	PointsDone    int        `json:"points_done,omitempty"`
	PointsTotal   int        `json:"points_total,omitempty"`
	Decisions     int        `json:"decisions,omitempty"`
	Tints         []TintView `json:"tints,omitempty"`
}

// JobInfo is the status document of GET /v1/jobs/{id}. A submission
// answered from the result cache returns a terminal JobInfo immediately
// (HTTP 200, Cached true, no ID — there is no job to poll). Digest is the
// submission's content address: after a drain or crash, a client holding
// it can poll GET /v1/results/{digest} instead of resubmitting the spec
// and trace bytes.
type JobInfo struct {
	ID          string       `json:"id,omitempty"`
	Kind        string       `json:"kind"` // "simulate", "multicore" or "sweep"
	Label       string       `json:"label,omitempty"`
	State       string       `json:"state"`
	Cached      bool         `json:"cached,omitempty"`
	Digest      string       `json:"digest,omitempty"`
	Node        string       `json:"node,omitempty"`      // fabric: worker the job was routed to
	Recovered   bool         `json:"recovered,omitempty"` // fabric: job was re-routed off a dead worker
	Retriable   bool         `json:"retriable,omitempty"`
	Error       string       `json:"error,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	StartedAt   *time.Time   `json:"started_at,omitempty"`
	FinishedAt  *time.Time   `json:"finished_at,omitempty"`
	Progress    *JobProgress `json:"progress,omitempty"`
	Result      *SimResult   `json:"result,omitempty"`
	Sweep       *SweepResult `json:"sweep,omitempty"`
}

// JobList is the document of GET /v1/jobs.
type JobList struct {
	Queued  int       `json:"queued"`
	Running int       `json:"running"`
	Jobs    []JobInfo `json:"jobs"`
}

// StoredResult is the document of GET /v1/results/{digest}: the envelope
// a finished job leaves in the content-addressed result cache. Exactly
// one of Result and Sweep is set, matching Kind.
type StoredResult struct {
	Kind   string       `json:"kind"` // "simulate", "multicore" or "sweep"
	Digest string       `json:"digest,omitempty"`
	Result *SimResult   `json:"result,omitempty"`
	Sweep  *SweepResult `json:"sweep,omitempty"`
}

// APIError is the JSON error body every non-2xx response carries.
type APIError struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// InspectFrames is the document of GET /v1/jobs/{id}/inspect/frames: a
// time-travel slice of a job's retained occupancy frames. Each element of
// Frames is one internal/inspect Frame as originally serialized; First is
// the sequence number of Frames[0]. Frames evicted from the byte-budgeted
// retention window are simply absent — First names where the surviving
// range begins.
type InspectFrames struct {
	Job    string            `json:"job"`
	First  int64             `json:"first"`
	Count  int               `json:"count"`
	Frames []json.RawMessage `json:"frames"`
}
