// Package profile implements the paper's profile-based weight computation
// (paper §3.1.1): run the program on representative data to get a sequence
// of variable accesses, derive each variable's life-time interval
// I(v) = [first, last], and for each pair of variables compute the number of
// potentially conflicting accesses in the interval where both are live —
// w(vi, vj) = MIN(n_i^j, n_j^i), where n_i^j counts vi's accesses during the
// intersection of the two life-times.
package profile

import (
	"fmt"
	"sort"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

// VarProfile is the access profile of one variable (or chunk of one).
type VarProfile struct {
	Region   memory.Region
	Accesses int64
	First    int64 // index in the trace of the first access, -1 if never
	Last     int64 // index of the last access
	times    []int64
}

// Density returns accesses per byte — the greedy scratchpad-packing metric.
func (v *VarProfile) Density() float64 {
	if v.Region.Size == 0 {
		return 0
	}
	return float64(v.Accesses) / float64(v.Region.Size)
}

// Live reports whether the variable is live at trace time t.
func (v *VarProfile) Live(t int64) bool {
	return v.Accesses > 0 && t >= v.First && t <= v.Last
}

// AccessesIn counts the variable's accesses with trace index in [lo, hi].
func (v *VarProfile) AccessesIn(lo, hi int64) int64 {
	if lo > hi {
		return 0
	}
	i := sort.Search(len(v.times), func(i int) bool { return v.times[i] >= lo })
	j := sort.Search(len(v.times), func(i int) bool { return v.times[i] > hi })
	return int64(j - i)
}

// Profile holds the profiles of every variable of a program run.
type Profile struct {
	vars   []*VarProfile
	byName map[string]int
}

// Build profiles trace against the given variable regions. Accesses that
// fall outside every region are ignored (stack, code — not laid out).
// Regions must not overlap.
func Build(trace memtrace.Trace, vars []memory.Region) *Profile {
	sorted := make([]memory.Region, len(vars))
	copy(sorted, vars)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })

	p := &Profile{byName: make(map[string]int, len(vars))}
	for i, r := range sorted {
		p.vars = append(p.vars, &VarProfile{Region: r, First: -1, Last: -1})
		p.byName[r.Name] = i
	}
	for t, a := range trace {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].End() > a.Addr })
		if i >= len(sorted) || !sorted[i].Contains(a.Addr) {
			continue
		}
		vp := p.vars[i]
		if vp.First < 0 {
			vp.First = int64(t)
		}
		vp.Last = int64(t)
		vp.Accesses++
		vp.times = append(vp.times, int64(t))
	}
	return p
}

// Vars returns all profiles, ordered by region base address. The slice is
// a copy, so callers can reorder or truncate it without corrupting the
// profile's index; the *VarProfile entries themselves are shared.
func (p *Profile) Vars() []*VarProfile {
	out := make([]*VarProfile, len(p.vars))
	copy(out, p.vars)
	return out
}

// Get returns the profile of the named variable.
func (p *Profile) Get(name string) (*VarProfile, bool) {
	i, ok := p.byName[name]
	if !ok {
		return nil, false
	}
	return p.vars[i], true
}

// MustGet is Get that panics for unknown names.
func (p *Profile) MustGet(name string) *VarProfile {
	v, ok := p.Get(name)
	if !ok {
		panic(fmt.Sprintf("profile: unknown variable %q", name))
	}
	return v
}

// Weight computes the paper's conflict weight between two variables: the
// minimum of the two access counts within the intersection of their
// life-times, or 0 when the life-times are disjoint or either variable is
// never accessed.
func Weight(a, b *VarProfile) int64 {
	if a.Accesses == 0 || b.Accesses == 0 {
		return 0
	}
	lo := a.First
	if b.First > lo {
		lo = b.First
	}
	hi := a.Last
	if b.Last < hi {
		hi = b.Last
	}
	if lo > hi {
		return 0 // disjoint life-times: safe to share a column
	}
	na := a.AccessesIn(lo, hi)
	nb := b.AccessesIn(lo, hi)
	if na < nb {
		return na
	}
	return nb
}

// WeightByName is Weight addressed by variable names.
func (p *Profile) WeightByName(a, b string) int64 {
	return Weight(p.MustGet(a), p.MustGet(b))
}

// SplitRegions subdivides every region larger than chunkBytes into
// consecutive chunks of at most chunkBytes, named name#0, name#1, …
// (paper §3.1 step 1: a variable larger than a column is split into
// subarrays, each of which fits a column). Regions that already fit are
// passed through unchanged.
func SplitRegions(vars []memory.Region, chunkBytes uint64) []memory.Region {
	if chunkBytes == 0 {
		out := make([]memory.Region, len(vars))
		copy(out, vars)
		return out
	}
	var out []memory.Region
	for _, r := range vars {
		if r.Size <= chunkBytes {
			out = append(out, r)
			continue
		}
		n := 0
		for off := uint64(0); off < r.Size; off += chunkBytes {
			size := chunkBytes
			if off+size > r.Size {
				size = r.Size - off
			}
			out = append(out, memory.Region{
				Name: fmt.Sprintf("%s#%d", r.Name, n),
				Base: r.Base + off,
				Size: size,
			})
			n++
		}
	}
	return out
}

// ParentName returns the original variable name of a chunk name produced by
// SplitRegions ("coef#2" → "coef"); names without a chunk suffix are
// returned unchanged.
func ParentName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '#' {
			return name[:i]
		}
	}
	return name
}

// Merge combines several variable profiles into one pseudo-variable profile
// — the paper's §3.1 aggregation step, where a set of small variables is
// packed into a single column-assigned unit. The merged profile's size is
// the sum of sizes, its access times are the union (kept sorted), and its
// life-time spans the members'. The Region of the result carries the given
// name and a zero base: it is a virtual grouping, not an address range.
func Merge(name string, members []*VarProfile) *VarProfile {
	out := &VarProfile{Region: memory.Region{Name: name}, First: -1, Last: -1}
	for _, m := range members {
		out.Region.Size += m.Region.Size
		if m.Accesses == 0 {
			continue
		}
		out.Accesses += m.Accesses
		if out.First < 0 || m.First < out.First {
			out.First = m.First
		}
		if m.Last > out.Last {
			out.Last = m.Last
		}
		out.times = mergeSorted(out.times, m.times)
	}
	return out
}

// mergeSorted merges two ascending int64 slices.
func mergeSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
