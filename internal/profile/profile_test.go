package profile

import (
	"testing"
	"testing/quick"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

func regions() []memory.Region {
	return []memory.Region{
		{Name: "a", Base: 0, Size: 100},
		{Name: "b", Base: 100, Size: 100},
		{Name: "c", Base: 200, Size: 100},
	}
}

func TestBuildBasics(t *testing.T) {
	tr := memtrace.Trace{
		{Addr: 10},  // a @0
		{Addr: 110}, // b @1
		{Addr: 20},  // a @2
		{Addr: 500}, // outside — ignored
		{Addr: 120}, // b @4
	}
	p := Build(tr, regions())
	a := p.MustGet("a")
	if a.Accesses != 2 || a.First != 0 || a.Last != 2 {
		t.Errorf("a=%+v", a)
	}
	b := p.MustGet("b")
	if b.Accesses != 2 || b.First != 1 || b.Last != 4 {
		t.Errorf("b=%+v", b)
	}
	c := p.MustGet("c")
	if c.Accesses != 0 || c.First != -1 {
		t.Errorf("c=%+v", c)
	}
	if _, ok := p.Get("zzz"); ok {
		t.Error("phantom variable")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(nil, nil).MustGet("missing")
}

func TestAccessesIn(t *testing.T) {
	tr := memtrace.Trace{
		{Addr: 0}, {Addr: 110}, {Addr: 1}, {Addr: 111}, {Addr: 2},
	}
	p := Build(tr, regions())
	a := p.MustGet("a") // accesses at t=0,2,4
	cases := []struct{ lo, hi, want int64 }{
		{0, 4, 3},
		{1, 3, 1},
		{2, 2, 1},
		{3, 3, 0},
		{5, 10, 0},
		{3, 1, 0}, // inverted
	}
	for _, c := range cases {
		if got := a.AccessesIn(c.lo, c.hi); got != c.want {
			t.Errorf("AccessesIn(%d,%d)=%d want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestWeightDisjointLifetimes(t *testing.T) {
	// a live [0,1], b live [2,3]: disjoint, weight 0.
	tr := memtrace.Trace{
		{Addr: 0}, {Addr: 1}, {Addr: 110}, {Addr: 111},
	}
	p := Build(tr, regions())
	if w := p.WeightByName("a", "b"); w != 0 {
		t.Errorf("disjoint weight=%d", w)
	}
}

func TestWeightInterleaved(t *testing.T) {
	// a at t=0,2,4; b at t=1,3. Overlap [max(0,1), min(4,3)] = [1,3].
	// a has 1 access in [1,3] (t=2), b has 2 → weight = 1.
	tr := memtrace.Trace{
		{Addr: 0}, {Addr: 110}, {Addr: 1}, {Addr: 111}, {Addr: 2},
	}
	p := Build(tr, regions())
	if w := p.WeightByName("a", "b"); w != 1 {
		t.Errorf("weight=%d want 1", w)
	}
}

func TestWeightNeverAccessed(t *testing.T) {
	tr := memtrace.Trace{{Addr: 0}}
	p := Build(tr, regions())
	if w := p.WeightByName("a", "c"); w != 0 {
		t.Errorf("weight with dead var=%d", w)
	}
}

func TestWeightSymmetricProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		tr := make(memtrace.Trace, len(addrs))
		for i, a := range addrs {
			tr[i] = memtrace.Access{Addr: uint64(a) % 300}
		}
		p := Build(tr, regions())
		names := []string{"a", "b", "c"}
		for _, x := range names {
			for _, y := range names {
				if x == y {
					continue
				}
				if p.WeightByName(x, y) != p.WeightByName(y, x) {
					return false
				}
				// Weight can never exceed either variable's total accesses.
				if p.WeightByName(x, y) > p.MustGet(x).Accesses {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDensity(t *testing.T) {
	tr := memtrace.Trace{{Addr: 0}, {Addr: 1}, {Addr: 2}, {Addr: 110}}
	p := Build(tr, regions())
	if d := p.MustGet("a").Density(); d != 0.03 {
		t.Errorf("density=%v want 0.03", d)
	}
	zero := &VarProfile{Region: memory.Region{Size: 0}}
	if zero.Density() != 0 {
		t.Error("zero-size density not 0")
	}
}

func TestLive(t *testing.T) {
	tr := memtrace.Trace{{Addr: 110}, {Addr: 0}, {Addr: 111}, {Addr: 1}}
	p := Build(tr, regions())
	a := p.MustGet("a") // live [1,3]
	for tt, want := range map[int64]bool{0: false, 1: true, 3: true, 4: false} {
		if a.Live(tt) != want {
			t.Errorf("Live(%d)=%v", tt, !want)
		}
	}
	if p.MustGet("c").Live(0) {
		t.Error("never-accessed variable is live")
	}
}

func TestSplitRegions(t *testing.T) {
	vars := []memory.Region{
		{Name: "small", Base: 0, Size: 100},
		{Name: "big", Base: 512, Size: 1100},
	}
	out := SplitRegions(vars, 512)
	if len(out) != 4 {
		t.Fatalf("chunks=%d want 4", len(out))
	}
	if out[0].Name != "small" || out[0].Size != 100 {
		t.Errorf("out[0]=%v", out[0])
	}
	wantBig := []struct {
		name string
		base uint64
		size uint64
	}{
		{"big#0", 512, 512},
		{"big#1", 1024, 512},
		{"big#2", 1536, 76},
	}
	for i, w := range wantBig {
		c := out[i+1]
		if c.Name != w.name || c.Base != w.base || c.Size != w.size {
			t.Errorf("chunk %d = %v want %+v", i, c, w)
		}
	}
	// Chunk bytes must exactly tile the parent.
	var total uint64
	for _, c := range out[1:] {
		total += c.Size
	}
	if total != 1100 {
		t.Errorf("chunks cover %d bytes want 1100", total)
	}
}

func TestSplitRegionsZeroChunk(t *testing.T) {
	vars := regions()
	out := SplitRegions(vars, 0)
	if len(out) != 3 {
		t.Errorf("zero chunk size split: %v", out)
	}
}

func TestParentName(t *testing.T) {
	for in, want := range map[string]string{
		"coef#2": "coef", "coef": "coef", "a#b#3": "a#b", "": "",
	} {
		if got := ParentName(in); got != want {
			t.Errorf("ParentName(%q)=%q want %q", in, got, want)
		}
	}
}

func TestChunkProfilesPartitionParent(t *testing.T) {
	// Accesses to a split variable distribute over its chunks and sum to
	// the parent's count.
	parent := []memory.Region{{Name: "v", Base: 0, Size: 1024}}
	var tr memtrace.Trace
	for i := 0; i < 64; i++ {
		tr = append(tr, memtrace.Access{Addr: uint64(i * 16)})
	}
	chunks := SplitRegions(parent, 256)
	p := Build(tr, chunks)
	var total int64
	for _, vp := range p.Vars() {
		if vp.Accesses != 16 {
			t.Errorf("chunk %s accesses=%d want 16", vp.Region.Name, vp.Accesses)
		}
		total += vp.Accesses
	}
	if total != 64 {
		t.Errorf("total=%d", total)
	}
}

func TestMergeProfiles(t *testing.T) {
	tr := memtrace.Trace{
		{Addr: 0},   // a @0
		{Addr: 110}, // b @1
		{Addr: 1},   // a @2
		{Addr: 210}, // c @3
		{Addr: 120}, // b @4
	}
	p := Build(tr, regions())
	merged := Merge("scalars", []*VarProfile{p.MustGet("a"), p.MustGet("c")})
	if merged.Region.Name != "scalars" || merged.Region.Size != 200 {
		t.Errorf("merged region=%v", merged.Region)
	}
	if merged.Accesses != 3 || merged.First != 0 || merged.Last != 3 {
		t.Errorf("merged=%+v", merged)
	}
	// Access times are the sorted union: overlap counting works.
	if got := merged.AccessesIn(1, 3); got != 2 {
		t.Errorf("AccessesIn(1,3)=%d want 2", got)
	}
	// Weight between the merged pseudo-variable and b reflects the union:
	// overlap [1,3] holds 2 merged accesses and 1 of b's → MIN = 1.
	if w := Weight(merged, p.MustGet("b")); w != 1 {
		t.Errorf("weight=%d want 1", w)
	}
}

func TestMergeSkipsDeadMembers(t *testing.T) {
	tr := memtrace.Trace{{Addr: 0}}
	p := Build(tr, regions())
	merged := Merge("m", []*VarProfile{p.MustGet("a"), p.MustGet("c")})
	if merged.Accesses != 1 || merged.First != 0 || merged.Last != 0 {
		t.Errorf("merged=%+v", merged)
	}
	empty := Merge("e", nil)
	if empty.Accesses != 0 || empty.Live(0) {
		t.Errorf("empty merge=%+v", empty)
	}
}

func TestVarsReturnsDetachedCopy(t *testing.T) {
	regions := []memory.Region{
		{Name: "a", Base: 0, Size: 16},
		{Name: "b", Base: 16, Size: 16},
	}
	tr := memtrace.Trace{{Addr: 0}, {Addr: 16}, {Addr: 4}}
	p := Build(tr, regions)
	got := p.Vars()
	if len(got) != 2 {
		t.Fatalf("Vars: %d entries", len(got))
	}
	// Reordering or truncating the caller's slice must not corrupt the
	// profile's name index.
	got[0], got[1] = got[1], got[0]
	got = got[:1]
	_ = got
	va, ok := p.Get("a")
	if !ok || va.Region.Name != "a" || va.Accesses != 2 {
		t.Fatalf("Get(a) after caller mutation: %+v, %v", va, ok)
	}
	if again := p.Vars(); len(again) != 2 || again[0].Region.Name != "a" {
		t.Fatalf("Vars order corrupted: %v", again)
	}
}
