package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs
}

func rec(typ byte, meta, blob string) Record {
	return Record{Type: typ, Meta: []byte(meta), Blob: []byte(blob)}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		rec(1, `{"id":"j1"}`, ""),
		rec(2, `{"id":"j1","done":42}`, ""),
		rec(3, `{"id":"j2"}`, "trace-bytes\x00\x01\x02"),
		rec(4, "", ""),
	}
	for i, r := range want {
		if err := l.Append(r, i%2 == 0); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openT(t, path)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type ||
			!bytes.Equal(got[i].Meta, want[i].Meta) ||
			!bytes.Equal(got[i].Blob, want[i].Blob) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if l2.Stats().Recovered != int64(len(want)) {
		t.Fatalf("Recovered = %d, want %d", l2.Stats().Recovered, len(want))
	}
}

// A torn tail — the final record truncated mid-payload, as a crash during
// an append leaves it — must be dropped and the preceding records kept.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for i := 0; i < 5; i++ {
		if err := l.Append(rec(1, fmt.Sprintf(`{"i":%d}`, i), "payload"), true); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the last record: chop a few bytes off the end of the file.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{3, 9, 17} { // mid-payload, mid-frame, most of the record
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		l2, recs := openT(t, path)
		if len(recs) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, len(recs))
		}
		if l2.Stats().Dropped == 0 {
			t.Fatalf("cut %d: no dropped bytes reported", cut)
		}
		// The torn tail must be gone from disk: appending and reopening
		// yields exactly 5 records again.
		if err := l2.Append(rec(9, `{"fresh":true}`, ""), true); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		l3, recs3 := openT(t, path)
		if len(recs3) != 5 || recs3[4].Type != 9 {
			t.Fatalf("cut %d: after repair+append got %d records (last type %d)", cut, len(recs3), recs3[len(recs3)-1].Type)
		}
		l3.Close()
		// Restore the un-torn 5-record file for the next cut size.
		restore, _ := openT(t, path)
		restore.Compact(recs3[:4])
		restore.Append(rec(1, `{"i":4}`, "payload"), true)
		restore.Close()
		info, err = os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
	}
}

// A flipped bit inside a committed record fails its CRC; the scan must
// stop there and quarantine everything from the bad frame on.
func TestCorruptRecordQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	var offsets []int64
	for i := 0; i < 4; i++ {
		offsets = append(offsets, l.Stats().Bytes)
		if err := l.Append(rec(1, fmt.Sprintf(`{"i":%d}`, i), ""), true); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a byte in record 2's payload.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, offsets[2]+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(recs))
	}
	if l2.Stats().Dropped == 0 {
		t.Fatal("corruption not reported as dropped bytes")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(byte(i), fmt.Sprintf(`{"i":%d}`, i), ""), false); err != nil {
			t.Fatal(err)
		}
	}
	grown := l.Stats().Bytes
	if err := l.Compact([]Record{rec(7, `{"live":true}`, "blob")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if l.Stats().Bytes >= grown {
		t.Fatalf("compaction did not shrink the log: %d -> %d", grown, l.Stats().Bytes)
	}
	// Appends after compaction extend the new file.
	if err := l.Append(rec(8, `{"after":true}`, ""), true); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 2 || recs[0].Type != 7 || recs[1].Type != 8 {
		t.Fatalf("after compact+append: %d records %v", len(recs), recs)
	}
	if string(recs[0].Blob) != "blob" {
		t.Fatalf("blob lost in compaction: %q", recs[0].Blob)
	}
}

// A file that is not a WAL must be refused, not overwritten.
func TestForeignFileRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("precious user data, definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
	b, _ := os.ReadFile(path)
	if !bytes.Contains(b, []byte("precious")) {
		t.Fatal("foreign file was modified")
	}
}

// An empty (zero-byte) file is a fresh log, and a file shorter than the
// header is treated as torn and reinitialized.
func TestShortFiles(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{"empty.log": {}, "torn.log": []byte("COLW")} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs := openT(t, path)
		if len(recs) != 0 {
			t.Fatalf("%s: %d records from junk", name, len(recs))
		}
		if err := l.Append(rec(1, `{}`, ""), true); err != nil {
			t.Fatalf("%s: append: %v", name, err)
		}
		l.Close()
		l2, recs2 := openT(t, path)
		if len(recs2) != 1 {
			t.Fatalf("%s: reopened with %d records, want 1", name, len(recs2))
		}
		l2.Close()
	}
}

// A frame whose length field claims an absurd size is corruption, not an
// allocation request.
func TestHugeLengthFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Append(rec(1, `{"ok":true}`, ""), true); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Close()
	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestSyncAndPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	defer l.Close()
	if l.Path() != path {
		t.Fatalf("Path() = %q, want %q", l.Path(), path)
	}
	if err := l.Append(rec(1, "m", ""), false); err != nil {
		t.Fatal(err)
	}
	before := l.Stats().Syncs
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != before+1 {
		t.Fatalf("Syncs = %d, want %d", got, before+1)
	}
	// The uncommitted-then-synced record survives a reopen.
	l.Close()
	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Meta) != "m" {
		t.Fatalf("after sync+reopen: %v", recs)
	}
}

func TestClosedLogRefusesEverything(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(rec(1, "m", ""), true); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync on closed log succeeded")
	}
	if err := l.Compact(nil); err == nil {
		t.Fatal("Compact on closed log succeeded")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	defer l.Close()
	big := Record{Type: 1, Blob: make([]byte, MaxRecordBytes)}
	if err := l.Append(big, false); err == nil {
		t.Fatal("payload over MaxRecordBytes accepted")
	}
	if got := l.Stats().Records; got != 0 {
		t.Fatalf("rejected record counted: %d", got)
	}
}

func TestOpenUncreatableDir(t *testing.T) {
	// The parent "directory" is a regular file: MkdirAll must fail.
	dir := t.TempDir()
	parent := filepath.Join(dir, "blocker")
	if err := os.WriteFile(parent, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(filepath.Join(parent, "wal.log")); err == nil {
		t.Fatal("Open under a file succeeded")
	}
}

func TestCompactEmptyKeepsValidLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for i := 0; i < 4; i++ {
		if err := l.Append(rec(byte(i+1), fmt.Sprintf("m%d", i), ""), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Bytes; got != int64(len("COLWAL01")) {
		t.Fatalf("compacted-to-empty size = %d", got)
	}
	// Still appendable, and a reopen sees only the post-compact record.
	if err := l.Append(rec(9, "after", ""), true); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || recs[0].Type != 9 {
		t.Fatalf("after compact(nil)+append: %v", recs)
	}
}

func TestOpenDirectoryPath(t *testing.T) {
	if _, _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open on a directory succeeded")
	}
}

func TestBadMetaLengthDropped(t *testing.T) {
	// A frame whose CRC is valid but whose inner meta length overruns the
	// payload: framing is fine, content is nonsense — dropped like any
	// other corruption.
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Append(rec(1, "ok", ""), true); err != nil {
		t.Fatal(err)
	}
	l.Close()

	payload := []byte{7, 0, 0, 0, 99, 'x', 'y'} // claims 99 meta bytes, has 2
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame[:])
	f.Write(payload)
	f.Close()

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Meta) != "ok" {
		t.Fatalf("recs = %v", recs)
	}
	if l2.Stats().Dropped == 0 {
		t.Fatal("bad meta length not counted as dropped bytes")
	}
}
