// Package wal is an append-only, CRC-framed, fsync-on-commit write-ahead
// log. colserved journals its job queue through it: every accepted job is
// durable before the 202 leaves the server, progress checkpoints ride along
// uncommitted, and a restart replays the surviving records to rebuild the
// queue. The package is deliberately generic — records carry an opaque
// type byte, a small metadata payload (JSON by convention), and an
// optional bulk blob (trace bytes) — so it knows nothing about jobs.
//
// On-disk format:
//
//	file   = header record*
//	header = "COLWAL01" (8 bytes)
//	record = beLen(4) beCRC(4) payload
//	payload = type(1) beMetaLen(4) meta blob
//
// beLen counts the payload bytes; beCRC is CRC-32C (Castagnoli) over the
// payload. A record is committed iff it is fully framed and its CRC
// matches. Open scans the file, returns every committed record, and
// truncates the file after the last one — a torn tail (partial write at
// crash) or a corrupted record is dropped, never replayed, and everything
// after the first bad frame is discarded with it (the log has no resync
// marker by design; bytes after a bad frame are unattributable).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

var (
	header = []byte("COLWAL01")
	// castagnoli is the CRC-32C table (hardware-accelerated on amd64).
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrNotWAL reports a file that exists but does not start with the WAL
// header — refusing to append protects whatever the file actually is.
var ErrNotWAL = errors.New("wal: file is not a COLWAL01 log")

// MaxRecordBytes bounds one record's payload; a frame claiming more is
// treated as corruption rather than an allocation request.
const MaxRecordBytes = 256 << 20

// Record is one log entry.
type Record struct {
	Type byte
	Meta []byte // small structured payload, JSON by convention
	Blob []byte // optional bulk payload (e.g. encoded trace bytes)
}

// Stats are the log's lifetime counters since Open.
type Stats struct {
	Records   int64 // records appended this process
	Bytes     int64 // current file size
	Syncs     int64 // fsyncs issued
	Recovered int64 // committed records found by Open
	Dropped   int64 // bytes truncated from a torn/corrupt tail
}

// Log is an open write-ahead log. Append/Sync/Compact are safe for
// concurrent use.
type Log struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	size  int64
	stats Stats
}

// Open opens (or creates) the log at path, replays the committed records,
// truncates any torn or corrupt tail, and returns the log positioned for
// appending.
func Open(path string) (*Log, []Record, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{f: f, path: path}
	recs, good, total, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < total {
		// Torn or corrupt tail: drop it so a later Append never extends a
		// half-record and the next scan sees a clean file.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.stats.Dropped = total - good
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if good == 0 {
		if _, err := f.Write(header); err != nil {
			f.Close()
			return nil, nil, err
		}
		good = int64(len(header))
	}
	l.size = good
	l.stats.Bytes = good
	l.stats.Recovered = int64(len(recs))
	return l, recs, nil
}

// scan reads committed records and returns them with the offset after the
// last good record and the file's total size. A file with a foreign header
// is an error; a short or CRC-failing record ends the scan.
func scan(f *os.File) ([]Record, int64, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	total := info.Size()
	if total == 0 {
		return nil, 0, 0, nil
	}
	hdr := make([]byte, len(header))
	if _, err := io.ReadFull(f, hdr); err != nil {
		// Shorter than the header: treat as a torn header, drop everything.
		return nil, 0, total, nil
	}
	if string(hdr) != string(header) {
		return nil, 0, 0, ErrNotWAL
	}
	var recs []Record
	good := int64(len(header))
	var frame [8]byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			return recs, good, total, nil // clean EOF or torn length/CRC
		}
		n := binary.BigEndian.Uint32(frame[0:4])
		crc := binary.BigEndian.Uint32(frame[4:8])
		if n < 5 || n > MaxRecordBytes {
			return recs, good, total, nil // corrupt frame
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, good, total, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, good, total, nil // bit rot / torn write
		}
		metaLen := binary.BigEndian.Uint32(payload[1:5])
		if int(metaLen) > len(payload)-5 {
			return recs, good, total, nil
		}
		recs = append(recs, Record{
			Type: payload[0],
			Meta: payload[5 : 5+metaLen],
			Blob: payload[5+metaLen:],
		})
		good += 8 + int64(n)
	}
}

func encode(r Record) []byte {
	n := 5 + len(r.Meta) + len(r.Blob)
	buf := make([]byte, 8+n)
	binary.BigEndian.PutUint32(buf[0:4], uint32(n))
	payload := buf[8:]
	payload[0] = r.Type
	binary.BigEndian.PutUint32(payload[1:5], uint32(len(r.Meta)))
	copy(payload[5:], r.Meta)
	copy(payload[5+len(r.Meta):], r.Blob)
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf
}

// Append writes one record. With commit set the record (and everything
// before it) is fsynced before Append returns — the durability point an
// accepted job's 202 rides on. Without it the record is buffered by the
// OS like any write; a crash may drop it, which is fine for progress
// checkpoints (they only save recovery work).
func (l *Log) Append(r Record, commit bool) error {
	if 5+len(r.Meta)+len(r.Blob) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(r.Meta)+len(r.Blob))
	}
	buf := encode(r)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(len(buf))
	l.stats.Records++
	l.stats.Bytes = l.size
	if commit {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.stats.Syncs++
	}
	return nil
}

// Sync flushes everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.stats.Syncs++
	return nil
}

// Compact atomically replaces the log's contents with keep: the records
// are written to a temporary file, fsynced, and renamed over the log.
// colserved runs this after boot recovery so the log holds only live jobs.
func (l *Log) Compact(keep []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	size := int64(len(header))
	if _, err := tmp.Write(header); err != nil {
		tmp.Close()
		return err
	}
	for _, r := range keep {
		buf := encode(r)
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			return err
		}
		size += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return err
	}
	// Reopen so future appends extend the compacted file, and fsync the
	// directory so the rename itself survives a crash.
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	l.f = f
	l.size = size
	l.stats.Bytes = size
	l.stats.Syncs++
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
