package cache

import (
	"colcache/internal/memory"
	"colcache/internal/replacement"
)

// DataCache couples a column cache with a byte-addressable backing memory so
// simulations can verify functional correctness (read-your-writes) and not
// just timing: whatever sequence of masks, evictions, remaps and flushes
// occurs, a read must observe the most recent write to that address.
//
// The data path mirrors the hardware: fills copy the line from backing
// memory, dirty evictions and flushes copy it back. With write-back caching
// a freshly written value lives only in the cache until its line is evicted.
type DataCache struct {
	cache   *Cache
	backing map[uint64][]byte // line number -> line bytes
	lines   map[uint64][]byte // resident line number -> cached bytes
	g       memory.Geometry
}

// NewDataCache builds a data-carrying cache over cfg. The page size of the
// geometry is irrelevant here and fixed at one line.
func NewDataCache(cfg Config) (*DataCache, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &DataCache{
		cache:   c,
		backing: make(map[uint64][]byte),
		lines:   make(map[uint64][]byte),
		g:       memory.MustGeometry(cfg.LineBytes, cfg.LineBytes),
	}, nil
}

// Cache exposes the underlying timing cache (for stats).
func (d *DataCache) Cache() *Cache { return d.cache }

func (d *DataCache) backingLine(ln uint64) []byte {
	b, ok := d.backing[ln]
	if !ok {
		b = make([]byte, d.cache.cfg.LineBytes)
		d.backing[ln] = b
	}
	return b
}

// lineNumberOfTag reconstructs a line number from (set, tag).
func (d *DataCache) lineNumberOfTag(set int, tag uint64) uint64 {
	return tag<<memory.Log2(d.cache.cfg.NumSets) | uint64(set)
}

func (d *DataCache) handle(addr memory.Addr, res Result, isWrite bool) {
	ln := d.g.LineNumber(addr)
	set, _ := d.cache.setIndex(addr)
	if res.Evicted {
		evictedLn := d.lineNumberOfTag(set, res.EvictedTag)
		if res.Writeback {
			copy(d.backingLine(evictedLn), d.lines[evictedLn])
		}
		delete(d.lines, evictedLn)
	}
	if res.Filled {
		buf := make([]byte, d.cache.cfg.LineBytes)
		copy(buf, d.backingLine(ln))
		d.lines[ln] = buf
	}
}

// StoreByte stores v at addr under mask.
func (d *DataCache) StoreByte(addr memory.Addr, v byte, mask replacement.Mask) Result {
	res := d.cache.Write(addr, mask)
	d.handle(addr, res, true)
	ln := d.g.LineNumber(addr)
	off := d.g.LineOffset(addr)
	if d.cache.cfg.Write == WriteThroughNoAllocate {
		d.backingLine(ln)[off] = v
		if buf, ok := d.lines[ln]; ok {
			buf[off] = v
		}
		return res
	}
	d.lines[ln][off] = v
	return res
}

// LoadByte loads the byte at addr under mask.
func (d *DataCache) LoadByte(addr memory.Addr, mask replacement.Mask) (byte, Result) {
	res := d.cache.Read(addr, mask)
	d.handle(addr, res, false)
	ln := d.g.LineNumber(addr)
	off := d.g.LineOffset(addr)
	if buf, ok := d.lines[ln]; ok {
		return buf[off], res
	}
	// Write-through misses do not allocate; serve from backing memory.
	return d.backingLine(ln)[off], res
}

// Flush writes back all dirty lines and invalidates the cache, preserving
// backing memory contents.
func (d *DataCache) Flush() {
	for s := 0; s < d.cache.cfg.NumSets; s++ {
		for w := 0; w < d.cache.numWays; w++ {
			i := s*d.cache.numWays + w
			if d.cache.valid[i] && d.cache.dirty[i] {
				ln := d.lineNumberOfTag(s, d.cache.tags[i])
				copy(d.backingLine(ln), d.lines[ln])
			}
		}
	}
	d.lines = make(map[uint64][]byte)
	d.cache.FlushAll()
}
