// Package cache implements the column cache: a set-associative cache whose
// replacement unit can be restricted, per access, to a bit vector of
// permissible columns. A column is one way of the n-way cache (paper §2).
//
// Lookup behaves exactly like a standard set-associative cache — every way of
// the selected set is searched associatively regardless of the mask — so a
// hit never pays a penalty and repartitioning is graceful: a line resident in
// a column its page is no longer mapped to is still found, and only migrates
// when it is eventually replaced and refetched (paper §2.1).
//
// DataCache in this package couples the cache with a backing memory so
// simulations can verify read-your-writes integrity end to end.
package cache

import (
	"fmt"

	"colcache/internal/memory"
	"colcache/internal/replacement"
)

// WritePolicy selects how stores interact with lower levels.
type WritePolicy uint8

const (
	// WriteBackAllocate: stores allocate on miss and dirty the line;
	// evicting a dirty line costs a writeback. The default.
	WriteBackAllocate WritePolicy = iota
	// WriteThroughNoAllocate: stores propagate to memory immediately and do
	// not allocate on miss.
	WriteThroughNoAllocate
)

func (w WritePolicy) String() string {
	switch w {
	case WriteBackAllocate:
		return "write-back/allocate"
	case WriteThroughNoAllocate:
		return "write-through/no-allocate"
	default:
		return "unknown"
	}
}

// Config describes a column cache.
type Config struct {
	LineBytes int              // bytes per line (power of two)
	NumSets   int              // sets (power of two)
	NumWays   int              // ways == columns (1..64)
	Policy    replacement.Kind // victim-selection policy; default LRU
	Write     WritePolicy      // store handling; default write-back
}

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.LineBytes * c.NumSets * c.NumWays }

// ColumnBytes returns the capacity of a single column.
func (c Config) ColumnBytes() int { return c.LineBytes * c.NumSets }

func (c Config) validate() error {
	if !memory.IsPow2(c.LineBytes) {
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineBytes)
	}
	if !memory.IsPow2(c.NumSets) {
		return fmt.Errorf("cache: set count %d is not a power of two", c.NumSets)
	}
	if c.NumWays < 1 || c.NumWays > 64 {
		return fmt.Errorf("cache: way count %d outside [1,64]", c.NumWays)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	aux   uint8 // caller-defined per-line state (e.g. coherence); zeroed with the line
}

// Stats counts cache events.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64 // valid lines displaced
	Writebacks int64 // dirty lines written back on eviction or flush
	Fills      int64 // lines brought in from memory
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

func (s Stats) String() string {
	return fmt.Sprintf("acc=%d hit=%d miss=%d (%.2f%%) evict=%d wb=%d",
		s.Accesses, s.Hits, s.Misses, 100*s.MissRate(), s.Evictions, s.Writebacks)
}

// Result reports what one access did.
type Result struct {
	Hit        bool
	Way        int  // way hit or filled; -1 for write-through miss (no allocate)
	Filled     bool // a new line was brought in
	Evicted    bool // a valid line was displaced to make room
	Writeback  bool // the displaced line was dirty
	EvictedTag uint64
}

// Cache is a column cache. It is not safe for concurrent use; the simulated
// machine is single-ported.
type Cache struct {
	cfg    Config
	sets   [][]line
	policy replacement.Policy
	stats  Stats

	lineShift uint
	setMask   uint64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = replacement.LRU
	}
	pol, err := replacement.New(cfg.Policy, cfg.NumSets, cfg.NumWays)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:       cfg,
		policy:    pol,
		lineShift: memory.Log2(cfg.LineBytes),
		setMask:   uint64(cfg.NumSets) - 1,
	}
	c.sets = make([][]line, cfg.NumSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.NumWays)
	}
	return c, nil
}

// NewWithPolicy builds a cache from cfg but with the given replacement
// policy instead of constructing one from cfg.Policy. This is the seam the
// conformance harness uses to inject deliberately buggy victim selection
// (mutation checks that prove the differential oracle catches divergence),
// and it lets experiments plug in policies the registry doesn't know.
func NewWithPolicy(cfg Config, pol replacement.Policy) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	c := &Cache{
		cfg:       cfg,
		policy:    pol,
		lineShift: memory.Log2(cfg.LineBytes),
		setMask:   uint64(cfg.NumSets) - 1,
	}
	c.sets = make([][]line, cfg.NumSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.NumWays)
	}
	return c, nil
}

// MustNew is New that panics on error, for tests and fixed configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters accumulated so far.
func (c *Cache) Stats() Stats {
	// Returned by value: the snapshot is a detached copy, never a live
	// pointer into the cache, so holding one across later accesses (or
	// publishing one to a metrics scraper) is safe.
	return c.stats
}

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex returns (set, tag) for addr.
func (c *Cache) setIndex(addr memory.Addr) (int, uint64) {
	lineNum := addr >> c.lineShift
	return int(lineNum & c.setMask), lineNum >> memory.Log2(c.cfg.NumSets)
}

// Probe reports whether addr is resident and in which way, without touching
// replacement state or statistics.
func (c *Cache) Probe(addr memory.Addr) (way int, hit bool) {
	set, tag := c.setIndex(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return w, true
		}
	}
	return -1, false
}

// Read performs a load of addr with the given permissible-column mask.
func (c *Cache) Read(addr memory.Addr, mask replacement.Mask) Result {
	return c.access(addr, false, mask)
}

// Write performs a store of addr with the given permissible-column mask.
func (c *Cache) Write(addr memory.Addr, mask replacement.Mask) Result {
	return c.access(addr, true, mask)
}

func (c *Cache) access(addr memory.Addr, isWrite bool, mask replacement.Mask) Result {
	c.stats.Accesses++
	set, tag := c.setIndex(addr)
	ways := c.sets[set]

	// Associative lookup across ALL ways — the mask restricts replacement
	// only, never lookup.
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			c.stats.Hits++
			c.policy.Touch(set, w)
			if isWrite && c.cfg.Write == WriteBackAllocate {
				ways[w].dirty = true
			}
			return Result{Hit: true, Way: w}
		}
	}

	// Miss.
	c.stats.Misses++
	if isWrite && c.cfg.Write == WriteThroughNoAllocate {
		return Result{Hit: false, Way: -1}
	}

	w := c.policy.Victim(set, mask, func(way int) bool { return ways[way].valid })
	res := Result{Hit: false, Way: w, Filled: true}
	if ways[w].valid {
		res.Evicted = true
		res.EvictedTag = ways[w].tag
		c.stats.Evictions++
		if ways[w].dirty {
			res.Writeback = true
			c.stats.Writebacks++
		}
	}
	ways[w] = line{tag: tag, valid: true, dirty: isWrite && c.cfg.Write == WriteBackAllocate}
	c.stats.Fills++
	c.policy.Touch(set, w)
	return res
}

// Fill installs addr's line under mask without counting a demand access —
// the fill path a prefetcher uses. If the line is already resident nothing
// happens. Evictions and writebacks it causes are counted as usual, and the
// result reports them.
func (c *Cache) Fill(addr memory.Addr, mask replacement.Mask) Result {
	set, tag := c.setIndex(addr)
	ways := c.sets[set]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			return Result{Hit: true, Way: w}
		}
	}
	w := c.policy.Victim(set, mask, func(way int) bool { return ways[way].valid })
	res := Result{Hit: false, Way: w, Filled: true}
	if ways[w].valid {
		res.Evicted = true
		res.EvictedTag = ways[w].tag
		c.stats.Evictions++
		if ways[w].dirty {
			res.Writeback = true
			c.stats.Writebacks++
		}
	}
	ways[w] = line{tag: tag, valid: true}
	c.stats.Fills++
	c.policy.Touch(set, w)
	return res
}

// Invalidate drops the line containing addr if resident, without writeback.
// It reports whether a line was dropped.
func (c *Cache) Invalidate(addr memory.Addr) bool {
	set, tag := c.setIndex(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			c.sets[set][w] = line{}
			c.policy.Invalidate(set, w)
			return true
		}
	}
	return false
}

// FlushAll invalidates every line, counting writebacks for dirty ones, and
// resets replacement state.
func (c *Cache) FlushAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				c.stats.Writebacks++
			}
			c.sets[s][w] = line{}
		}
	}
	c.policy.Reset()
}

// ResidentLines returns the number of valid lines currently cached.
func (c *Cache) ResidentLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// ResidentInColumns returns the number of valid lines whose way is inside
// mask; used by tests to verify partition isolation.
func (c *Cache) ResidentInColumns(mask replacement.Mask) int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && mask.Has(w) {
				n++
			}
		}
	}
	return n
}

// LineState is a detached copy of one line's metadata, for external
// inspection of cache contents. Live cache inspection is what makes
// eviction behavior verifiable from outside (cf. arXiv:2007.12271); the
// conformance harness compares these against the reference model line by
// line.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Aux   uint8
}

// LineAt returns a copy of the line metadata at (set, way). It performs no
// replacement-state or statistics updates, so inspecting the cache never
// perturbs the simulation.
func (c *Cache) LineAt(set, way int) LineState {
	l := c.sets[set][way]
	return LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, Aux: l.aux}
}

// AuxAt returns the auxiliary per-line state at (set, way). The cache never
// interprets aux; it belongs to the layer above (a coherence controller
// stores MSI line states here). Aux is zeroed whenever the line is refilled,
// invalidated, or flushed, so stale protocol state cannot survive the line
// it described.
func (c *Cache) AuxAt(set, way int) uint8 { return c.sets[set][way].aux }

// SetAux stores auxiliary per-line state at (set, way).
func (c *Cache) SetAux(set, way int, v uint8) { c.sets[set][way].aux = v }

// SetLineDirty overrides the dirty bit at (set, way). A coherence controller
// needs this seam for the M→S downgrade: after an intervention writes the
// modified data back, the local copy stays resident but is clean — a state
// the normal access path can never produce.
func (c *Cache) SetLineDirty(set, way int, dirty bool) {
	c.sets[set][way].dirty = dirty
}

// SetTagOf returns the (set, tag) pair indexing addr, and AddrOfTag inverts
// it; together they let an external controller walk snapshots and translate
// line coordinates back to addresses without duplicating index math.
func (c *Cache) SetTagOf(addr memory.Addr) (set int, tag uint64) {
	return c.setIndex(addr)
}

// AddrOfTag reconstructs the base address of the line with the given tag in
// the given set.
func (c *Cache) AddrOfTag(set int, tag uint64) memory.Addr {
	return memory.Addr(tag)<<memory.Log2(c.cfg.NumSets)<<c.lineShift |
		memory.Addr(set)<<c.lineShift
}

// SnapshotSets returns a detached copy of every line's metadata, indexed
// [set][way]. The copy shares nothing with the live cache, so it can be
// held across later accesses or published to another goroutine.
func (c *Cache) SnapshotSets() [][]LineState {
	out := make([][]LineState, len(c.sets))
	for s := range c.sets {
		out[s] = make([]LineState, len(c.sets[s]))
		for w := range c.sets[s] {
			out[s][w] = c.LineAt(s, w)
		}
	}
	return out
}

// WayOf returns the way where addr currently resides, or -1. Alias for
// Probe for readability at call sites that only need the way.
func (c *Cache) WayOf(addr memory.Addr) int {
	w, ok := c.Probe(addr)
	if !ok {
		return -1
	}
	return w
}
