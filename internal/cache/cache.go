// Package cache implements the column cache: a set-associative cache whose
// replacement unit can be restricted, per access, to a bit vector of
// permissible columns. A column is one way of the n-way cache (paper §2).
//
// Lookup behaves exactly like a standard set-associative cache — every way of
// the selected set is searched associatively regardless of the mask — so a
// hit never pays a penalty and repartitioning is graceful: a line resident in
// a column its page is no longer mapped to is still found, and only migrates
// when it is eventually replaced and refetched (paper §2.1).
//
// # Flat state and way memoization
//
// The cache stores its line metadata (tags, valid/dirty bits, auxiliary
// state) and its replacement recency state as flat contiguous slices indexed
// by set*ways+way, not as per-line structs behind a policy interface. The
// four built-in replacement policies are implemented inline over those
// slices, dispatched by a small enum — the per-access path performs no
// interface calls and no allocation. A policy injected through NewWithPolicy
// still runs through the replacement.Policy interface (the conformance
// harness's mutation seam); only the built-in kinds take the flat path, and
// both paths are bit-identical in behavior.
//
// Each set additionally keeps a memoized MRU way hint (after Ishihara &
// Fallah's way-memoization): the way of the set's last hit or fill. An
// access first probes the hinted way and skips the associative search when
// the tag matches. The hint is validated on every use — it is consulted only
// together with the live valid bit and tag, so a hint left stale by an
// eviction, an Invalidate, a mask narrowing or an external state downgrade
// can never produce a false hit; at worst it costs one extra compare before
// the full search runs. That validation is the memoization invariant the
// regression tests pin down.
//
// DataCache in this package couples the cache with a backing memory so
// simulations can verify read-your-writes integrity end to end.
package cache

import (
	"fmt"
	"math/bits"

	"colcache/internal/memory"
	"colcache/internal/replacement"
)

// WritePolicy selects how stores interact with lower levels.
type WritePolicy uint8

const (
	// WriteBackAllocate: stores allocate on miss and dirty the line;
	// evicting a dirty line costs a writeback. The default.
	WriteBackAllocate WritePolicy = iota
	// WriteThroughNoAllocate: stores propagate to memory immediately and do
	// not allocate on miss.
	WriteThroughNoAllocate
)

func (w WritePolicy) String() string {
	switch w {
	case WriteBackAllocate:
		return "write-back/allocate"
	case WriteThroughNoAllocate:
		return "write-through/no-allocate"
	default:
		return "unknown"
	}
}

// Config describes a column cache.
type Config struct {
	LineBytes int              // bytes per line (power of two)
	NumSets   int              // sets (power of two)
	NumWays   int              // ways == columns (1..64)
	Policy    replacement.Kind // victim-selection policy; default LRU
	Write     WritePolicy      // store handling; default write-back
}

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.LineBytes * c.NumSets * c.NumWays }

// ColumnBytes returns the capacity of a single column.
func (c Config) ColumnBytes() int { return c.LineBytes * c.NumSets }

func (c Config) validate() error {
	if !memory.IsPow2(c.LineBytes) {
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineBytes)
	}
	if !memory.IsPow2(c.NumSets) {
		return fmt.Errorf("cache: set count %d is not a power of two", c.NumSets)
	}
	if c.NumWays < 1 || c.NumWays > 64 {
		return fmt.Errorf("cache: way count %d outside [1,64]", c.NumWays)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64 // valid lines displaced
	Writebacks int64 // dirty lines written back on eviction or flush
	Fills      int64 // lines brought in from memory
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

func (s Stats) String() string {
	return fmt.Sprintf("acc=%d hit=%d miss=%d (%.2f%%) evict=%d wb=%d",
		s.Accesses, s.Hits, s.Misses, 100*s.MissRate(), s.Evictions, s.Writebacks)
}

// Result reports what one access did.
type Result struct {
	Hit        bool
	Way        int  // way hit or filled; -1 for write-through miss (no allocate)
	Filled     bool // a new line was brought in
	Evicted    bool // a valid line was displaced to make room
	Writeback  bool // the displaced line was dirty
	EvictedTag uint64
}

// kindCode is the flat-path dispatch tag for the built-in policies.
type kindCode uint8

const (
	kindLRU kindCode = iota
	kindPLRU
	kindFIFO
	kindRandom
	kindCustom // replacement.Policy injected via NewWithPolicy
)

// randomSeed matches the deterministic seed replacement.New gives the
// built-in random policy, so the flat path reproduces its victim stream.
const randomSeed = 1

// Cache is a column cache. It is not safe for concurrent use; the simulated
// machine is single-ported.
//
// All per-line and per-set state lives in flat slices indexed by
// set*NumWays+way (lines) or set (recency clocks, PLRU bits, way hints), so
// the access path walks contiguous memory.
type Cache struct {
	cfg   Config
	stats Stats

	numWays   int
	lineShift uint
	setShift  uint // Log2(NumSets)
	setMask   uint64

	// Line metadata, indexed set*NumWays+way.
	tags  []uint64
	valid []bool
	dirty []bool
	aux   []uint8 // caller-defined per-line state (e.g. coherence); zeroed with the line

	// hint[set] is the way of the set's last hit or fill — the memoized MRU
	// way probed before the associative search. Always a legal way index;
	// validated against the live valid bit and tag on every use.
	hint []int32

	// Flat replacement state. Which slices are live depends on kind:
	// LRU uses stamp+clock, FIFO uses stamp+clock+present, PLRU uses plru,
	// Random uses rngState.
	kind     kindCode
	stamp    []uint64 // [set*ways+way] LRU last-touch / FIFO fill time
	clock    []uint64 // [set] per-set logical clock
	plru     []uint64 // [set] tree-PLRU direction bits; bit n = node n points right
	present  []bool   // [set*ways+way] FIFO: way currently queued
	rngState uint64   // xorshift64* state for random replacement

	custom replacement.Policy // non-nil only for kindCustom
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = replacement.LRU
	}
	c := newFlat(cfg)
	switch cfg.Policy {
	case replacement.LRU:
		c.kind = kindLRU
		c.stamp = make([]uint64, cfg.NumSets*cfg.NumWays)
		c.clock = make([]uint64, cfg.NumSets)
	case replacement.TreePLRU:
		// NumWays is already constrained to [1,64]; the tree additionally
		// needs a power-of-two way count, like replacement.NewTreePLRU.
		if cfg.NumWays&(cfg.NumWays-1) != 0 {
			return nil, fmt.Errorf("cache: tree PLRU requires a power-of-two way count, got %d", cfg.NumWays)
		}
		c.kind = kindPLRU
		c.plru = make([]uint64, cfg.NumSets)
	case replacement.FIFO:
		c.kind = kindFIFO
		c.stamp = make([]uint64, cfg.NumSets*cfg.NumWays)
		c.clock = make([]uint64, cfg.NumSets)
		c.present = make([]bool, cfg.NumSets*cfg.NumWays)
	case replacement.Random:
		c.kind = kindRandom
		c.rngState = randomSeed
	default:
		return nil, fmt.Errorf("replacement: unknown policy kind %q", cfg.Policy)
	}
	return c, nil
}

// NewWithPolicy builds a cache from cfg but with the given replacement
// policy instead of constructing one from cfg.Policy. This is the seam the
// conformance harness uses to inject deliberately buggy victim selection
// (mutation checks that prove the differential oracle catches divergence),
// and it lets experiments plug in policies the registry doesn't know.
// Injected policies run through the interface, not the flat fast path.
func NewWithPolicy(cfg Config, pol replacement.Policy) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	c := newFlat(cfg)
	c.kind = kindCustom
	c.custom = pol
	return c, nil
}

// newFlat allocates the line-metadata slices shared by every policy kind.
func newFlat(cfg Config) *Cache {
	n := cfg.NumSets * cfg.NumWays
	return &Cache{
		cfg:       cfg,
		numWays:   cfg.NumWays,
		lineShift: memory.Log2(cfg.LineBytes),
		setShift:  memory.Log2(cfg.NumSets),
		setMask:   uint64(cfg.NumSets) - 1,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		aux:       make([]uint8, n),
		hint:      make([]int32, cfg.NumSets),
	}
}

// MustNew is New that panics on error, for tests and fixed configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters accumulated so far.
func (c *Cache) Stats() Stats {
	// Returned by value: the snapshot is a detached copy, never a live
	// pointer into the cache, so holding one across later accesses (or
	// publishing one to a metrics scraper) is safe. Hits is derived — every
	// access is a hit or a miss, so the hot paths only maintain Accesses and
	// Misses and the subtraction happens here, off the per-access path.
	st := c.stats
	st.Hits = st.Accesses - st.Misses
	return st
}

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setIndex returns (set, tag) for addr.
func (c *Cache) setIndex(addr memory.Addr) (int, uint64) {
	lineNum := addr >> c.lineShift
	return int(lineNum & c.setMask), lineNum >> c.setShift
}

// Probe reports whether addr is resident and in which way, without touching
// replacement state or statistics.
func (c *Cache) Probe(addr memory.Addr) (way int, hit bool) {
	set, tag := c.setIndex(addr)
	base := set * c.numWays
	if w := base + int(c.hint[set]); c.valid[w] && c.tags[w] == tag {
		return w - base, true
	}
	for w := 0; w < c.numWays; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return w, true
		}
	}
	return -1, false
}

// Read performs a load of addr with the given permissible-column mask.
func (c *Cache) Read(addr memory.Addr, mask replacement.Mask) Result {
	return c.access(addr, false, mask)
}

// Write performs a store of addr with the given permissible-column mask.
func (c *Cache) Write(addr memory.Addr, mask replacement.Mask) Result {
	return c.access(addr, true, mask)
}

// HitFast attempts the way-memoized hit path alone: if the set's MRU hint
// resolves addr, it performs the full hit bookkeeping (access and hit
// counters, recency touch, dirty bit for write-back writes) and returns the
// hit way and its auxiliary byte. Otherwise it moves nothing — no counters,
// no recency — and the caller must complete the access with Read or Write,
// which repeat the hint probe and handle the associative search and miss
// paths. Splitting the access this way lets a hot caller defer work a hit
// never needs — computing the replacement column mask, line-address math —
// until the hint has actually missed.
func (c *Cache) HitFast(addr memory.Addr, isWrite bool) (way int, aux uint8, ok bool) {
	set, tag := c.setIndex(addr)
	base := set * c.numWays
	i := base + int(c.hint[set])
	// The explicit uint(i) guards are for the compiler: they prove i in
	// bounds for tags and valid so the per-index checks vanish from the
	// hot path (they never fire — hint[set] < numWays by invariant).
	tags, valid := c.tags, c.valid
	if uint(i) >= uint(len(tags)) || uint(i) >= uint(len(valid)) || !valid[i] || tags[i] != tag {
		return 0, 0, false
	}
	c.stats.Accesses++
	if c.kind == kindLRU {
		n := c.clock[set] + 1
		c.clock[set] = n
		c.stamp[i] = n
	} else {
		c.touch(set, i-base)
	}
	if isWrite && c.cfg.Write == WriteBackAllocate {
		c.dirty[i] = true
	}
	return i - base, c.aux[i], true
}

func (c *Cache) access(addr memory.Addr, isWrite bool, mask replacement.Mask) Result {
	c.stats.Accesses++
	set, tag := c.setIndex(addr)
	base := set * c.numWays

	// Way memoization: probe the set's MRU way before the associative
	// search. Validated against the live valid bit and tag, so a stale hint
	// degrades to the search below — it can never fabricate a hit.
	if i := base + int(c.hint[set]); c.valid[i] && c.tags[i] == tag {
		c.touch(set, i-base)
		if isWrite && c.cfg.Write == WriteBackAllocate {
			c.dirty[i] = true
		}
		return Result{Hit: true, Way: i - base}
	}

	// Associative lookup across ALL ways — the mask restricts replacement
	// only, never lookup.
	for w := 0; w < c.numWays; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.hint[set] = int32(w)
			c.touch(set, w)
			if isWrite && c.cfg.Write == WriteBackAllocate {
				c.dirty[base+w] = true
			}
			return Result{Hit: true, Way: w}
		}
	}

	// Miss.
	c.stats.Misses++
	if isWrite && c.cfg.Write == WriteThroughNoAllocate {
		return Result{Hit: false, Way: -1}
	}
	return c.fill(set, tag, mask, isWrite && c.cfg.Write == WriteBackAllocate)
}

// fill victimizes a way of set under mask and installs tag, dirty as given.
// Shared by the demand-miss and prefetch-install paths.
func (c *Cache) fill(set int, tag uint64, mask replacement.Mask, dirty bool) Result {
	base := set * c.numWays
	w := c.victim(set, mask)
	i := base + w
	res := Result{Hit: false, Way: w, Filled: true}
	if c.valid[i] {
		res.Evicted = true
		res.EvictedTag = c.tags[i]
		c.stats.Evictions++
		if c.dirty[i] {
			res.Writeback = true
			c.stats.Writebacks++
		}
	}
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = dirty
	c.aux[i] = 0
	c.hint[set] = int32(w)
	c.stats.Fills++
	c.touch(set, w)
	return res
}

// Fill installs addr's line under mask without counting a demand access —
// the fill path a prefetcher uses. If the line is already resident nothing
// happens. Evictions and writebacks it causes are counted as usual, and the
// result reports them.
func (c *Cache) Fill(addr memory.Addr, mask replacement.Mask) Result {
	set, tag := c.setIndex(addr)
	base := set * c.numWays
	for w := 0; w < c.numWays; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return Result{Hit: true, Way: w}
		}
	}
	return c.fill(set, tag, mask, false)
}

// Invalidate drops the line containing addr if resident, without writeback.
// It reports whether a line was dropped.
func (c *Cache) Invalidate(addr memory.Addr) bool {
	set, tag := c.setIndex(addr)
	base := set * c.numWays
	for w := 0; w < c.numWays; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.clearLine(i)
			if int(c.hint[set]) == w {
				c.hint[set] = 0
			}
			c.invalidateRep(set, w)
			return true
		}
	}
	return false
}

// FlushAll invalidates every line, counting writebacks for dirty ones, and
// resets replacement state and way hints.
func (c *Cache) FlushAll() {
	for i := range c.valid {
		if c.valid[i] && c.dirty[i] {
			c.stats.Writebacks++
		}
		c.clearLine(i)
	}
	for s := range c.hint {
		c.hint[s] = 0
	}
	c.resetRep()
}

// clearLine zeroes one line's metadata.
func (c *Cache) clearLine(i int) {
	c.tags[i] = 0
	c.valid[i] = false
	c.dirty[i] = false
	c.aux[i] = 0
}

// touch updates recency state for an access (hit or fill) of (set, way).
func (c *Cache) touch(set, way int) {
	switch c.kind {
	case kindLRU:
		c.clock[set]++
		c.stamp[set*c.numWays+way] = c.clock[set]
	case kindPLRU:
		if c.numWays == 1 {
			return
		}
		word := c.plru[set]
		node, lo, hi := 0, 0, c.numWays
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if way < mid {
				// Accessed left: point the bit right (away from the access).
				word |= 1 << uint(node)
				node, hi = 2*node+1, mid
			} else {
				word &^= 1 << uint(node)
				node, lo = 2*node+2, mid
			}
		}
		c.plru[set] = word
	case kindFIFO:
		// Only the first touch after an invalidate (i.e. the fill) advances
		// the queue position; hits leave FIFO order alone.
		i := set*c.numWays + way
		if c.present[i] {
			return
		}
		c.clock[set]++
		c.stamp[i] = c.clock[set]
		c.present[i] = true
	case kindRandom:
		// Random keeps no recency state.
	case kindCustom:
		c.custom.Touch(set, way)
	}
}

// victim selects the way of set to replace, restricted to ways allowed by
// mask. Invalid permitted ways are preferred, lowest index first; otherwise
// the policy picks among the permitted valid ways. An empty or out-of-range
// mask widens to all ways — the replacement unit must make progress even on
// a malformed bit vector.
func (c *Cache) victim(set int, mask replacement.Mask) int {
	if c.kind == kindCustom {
		base := set * c.numWays
		return c.custom.Victim(set, mask, func(way int) bool { return c.valid[base+way] })
	}
	all := replacement.All(c.numWays)
	mask &= all
	if mask == 0 {
		mask = all
	}
	base := set * c.numWays
	for w := 0; w < c.numWays; w++ {
		if mask.Has(w) && !c.valid[base+w] {
			return w
		}
	}
	switch c.kind {
	case kindLRU:
		best, bestStamp := -1, ^uint64(0)
		for w := 0; w < c.numWays; w++ {
			if !mask.Has(w) {
				continue
			}
			if s := c.stamp[base+w]; s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return best
	case kindPLRU:
		word := c.plru[set]
		node, lo, hi := 0, 0, c.numWays
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			goRight := word&(1<<uint(node)) != 0
			// Force the turn if the preferred subtree holds no permitted way.
			if goRight && mask&rangeMask(mid, hi) == 0 {
				goRight = false
			} else if !goRight && mask&rangeMask(lo, mid) == 0 {
				goRight = true
			}
			if goRight {
				node, lo = 2*node+2, mid
			} else {
				node, hi = 2*node+1, mid
			}
		}
		return lo
	case kindFIFO:
		best, bestT := -1, ^uint64(0)
		for w := 0; w < c.numWays; w++ {
			if !mask.Has(w) {
				continue
			}
			if t := c.stamp[base+w]; t < bestT {
				best, bestT = w, t
			}
		}
		if best >= 0 {
			c.present[base+best] = false
		}
		return best
	default: // kindRandom
		// Uniform choice over the permitted ways in ascending order, drawn
		// from the same xorshift64* stream replacement.NewRandom uses.
		m := uint64(mask)
		n := bits.OnesCount64(m)
		r := int(c.rngNext() % uint64(n))
		for ; r > 0; r-- {
			m &= m - 1
		}
		return bits.TrailingZeros64(m)
	}
}

// rangeMask returns the mask permitting ways [lo, hi), without the loop
// replacement.Range pays.
func rangeMask(lo, hi int) replacement.Mask {
	return replacement.All(hi) &^ replacement.All(lo)
}

// rngNext advances the xorshift64* stream (identical to the replacement
// package's random policy).
func (c *Cache) rngNext() uint64 {
	x := c.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// invalidateRep notes that (set, way) no longer holds a line.
func (c *Cache) invalidateRep(set, way int) {
	switch c.kind {
	case kindLRU:
		c.stamp[set*c.numWays+way] = 0
	case kindFIFO:
		i := set*c.numWays + way
		c.present[i] = false
		c.stamp[i] = 0
	case kindCustom:
		c.custom.Invalidate(set, way)
	}
}

// resetRep clears all replacement state, as after a whole-cache flush.
func (c *Cache) resetRep() {
	switch c.kind {
	case kindLRU:
		clearU64(c.stamp)
		clearU64(c.clock)
	case kindPLRU:
		clearU64(c.plru)
	case kindFIFO:
		clearU64(c.stamp)
		clearU64(c.clock)
		for i := range c.present {
			c.present[i] = false
		}
	case kindRandom:
		c.rngState = randomSeed
	case kindCustom:
		c.custom.Reset()
	}
}

func clearU64(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

// ResidentLines returns the number of valid lines currently cached.
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.valid {
		if c.valid[i] {
			n++
		}
	}
	return n
}

// ResidentInColumns returns the number of valid lines whose way is inside
// mask; used by tests to verify partition isolation.
func (c *Cache) ResidentInColumns(mask replacement.Mask) int {
	n := 0
	for s := 0; s < c.cfg.NumSets; s++ {
		for w := 0; w < c.numWays; w++ {
			if c.valid[s*c.numWays+w] && mask.Has(w) {
				n++
			}
		}
	}
	return n
}

// LineState is a detached copy of one line's metadata, for external
// inspection of cache contents. Live cache inspection is what makes
// eviction behavior verifiable from outside (cf. arXiv:2007.12271); the
// conformance harness compares these against the reference model line by
// line.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Aux   uint8
}

// LineAt returns a copy of the line metadata at (set, way). It performs no
// replacement-state or statistics updates, so inspecting the cache never
// perturbs the simulation.
func (c *Cache) LineAt(set, way int) LineState {
	i := set*c.numWays + way
	return LineState{Tag: c.tags[i], Valid: c.valid[i], Dirty: c.dirty[i], Aux: c.aux[i]}
}

// AuxAt returns the auxiliary per-line state at (set, way). The cache never
// interprets aux; it belongs to the layer above (a coherence controller
// stores MSI line states here). Aux is zeroed whenever the line is refilled,
// invalidated, or flushed, so stale protocol state cannot survive the line
// it described.
func (c *Cache) AuxAt(set, way int) uint8 { return c.aux[set*c.numWays+way] }

// SetAux stores auxiliary per-line state at (set, way).
func (c *Cache) SetAux(set, way int, v uint8) { c.aux[set*c.numWays+way] = v }

// SetLineDirty overrides the dirty bit at (set, way). A coherence controller
// needs this seam for the M→S downgrade: after an intervention writes the
// modified data back, the local copy stays resident but is clean — a state
// the normal access path can never produce.
func (c *Cache) SetLineDirty(set, way int, dirty bool) {
	c.dirty[set*c.numWays+way] = dirty
}

// HintedWay returns the set's memoized MRU way — the way the next access of
// the set probes first. Exposed for the way-memoization regression tests and
// for inspection tooling; reading it never perturbs the cache.
func (c *Cache) HintedWay(set int) int { return int(c.hint[set]) }

// SetTagOf returns the (set, tag) pair indexing addr, and AddrOfTag inverts
// it; together they let an external controller walk snapshots and translate
// line coordinates back to addresses without duplicating index math.
func (c *Cache) SetTagOf(addr memory.Addr) (set int, tag uint64) {
	return c.setIndex(addr)
}

// AddrOfTag reconstructs the base address of the line with the given tag in
// the given set.
func (c *Cache) AddrOfTag(set int, tag uint64) memory.Addr {
	return memory.Addr(tag)<<c.setShift<<c.lineShift |
		memory.Addr(set)<<c.lineShift
}

// SnapshotSets returns a detached copy of every line's metadata, indexed
// [set][way]. The copy shares nothing with the live cache, so it can be
// held across later accesses or published to another goroutine.
func (c *Cache) SnapshotSets() [][]LineState {
	out := make([][]LineState, c.cfg.NumSets)
	for s := range out {
		out[s] = make([]LineState, c.numWays)
		for w := range out[s] {
			out[s][w] = c.LineAt(s, w)
		}
	}
	return out
}

// SnapshotSetsInto is SnapshotSets writing into dst, reallocating only when
// dst is not shaped for this cache, so repeated captures of the same cache
// (the inspect ring, the conformance harness's per-step content comparison)
// reuse their buffers and are allocation-free at steady state. The filled
// rows share nothing with the live cache.
func (c *Cache) SnapshotSetsInto(dst [][]LineState) [][]LineState {
	if len(dst) != c.cfg.NumSets {
		dst = make([][]LineState, c.cfg.NumSets)
	}
	for s := range dst {
		if len(dst[s]) != c.numWays {
			dst[s] = make([]LineState, c.numWays)
		}
		base := s * c.numWays
		for w := range dst[s] {
			i := base + w
			dst[s][w] = LineState{Tag: c.tags[i], Valid: c.valid[i], Dirty: c.dirty[i], Aux: c.aux[i]}
		}
	}
	return dst
}

// WayOf returns the way where addr currently resides, or -1. Alias for
// Probe for readability at call sites that only need the way.
func (c *Cache) WayOf(addr memory.Addr) int {
	w, ok := c.Probe(addr)
	if !ok {
		return -1
	}
	return w
}
