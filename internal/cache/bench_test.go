package cache

import (
	"testing"

	"colcache/internal/memory"
	"colcache/internal/replacement"
)

// Access-path benchmarks for the flat-state core. The address stream is a
// fixed xorshift sequence over a footprint ~4x the cache, so every policy
// sees the same mix of hits, misses and evictions; allocs/op must be zero —
// the flat state is allocated once in New and never grows.

func benchAddrs(n int) []memory.Addr {
	addrs := make([]memory.Addr, n)
	x := uint64(0x2545F4914F6CDD1D)
	for i := range addrs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addrs[i] = memory.Addr(x % (1 << 13)) // 8KB footprint vs 2KB cache
	}
	return addrs
}

func benchCache(b *testing.B, kind replacement.Kind, write WritePolicy) *Cache {
	b.Helper()
	c, err := New(Config{LineBytes: 32, NumSets: 16, NumWays: 4, Policy: kind, Write: write})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAccess measures the full Read/Write path (associative lookup,
// replacement, writeback bookkeeping) for every built-in policy.
func BenchmarkAccess(b *testing.B) {
	for _, kind := range []replacement.Kind{replacement.LRU, replacement.TreePLRU, replacement.FIFO, replacement.Random} {
		b.Run(string(kind), func(b *testing.B) {
			c := benchCache(b, kind, WriteBackAllocate)
			addrs := benchAddrs(4096)
			mask := replacement.All(4)
			b.ReportAllocs()
			n := 0
			for b.Loop() {
				a := addrs[n&4095]
				n++
				if n&7 == 0 {
					c.Write(a, mask)
				} else {
					c.Read(a, mask)
				}
			}
		})
	}
}

// BenchmarkHitFast measures the way-memoized fast path on a stream that
// always hits the hinted way — the steady state the multicore stepper
// rides. The fallback benchmark repeats the same stream through the full
// Read path for the cost of the associative search the hint skips.
func BenchmarkHitFast(b *testing.B) {
	c := benchCache(b, replacement.LRU, WriteBackAllocate)
	mask := replacement.All(4)
	c.Read(0x1000, mask) // fill and hint the line
	b.ReportAllocs()
	for b.Loop() {
		if _, _, ok := c.HitFast(0x1000, false); !ok {
			b.Fatal("hint missed on a resident line")
		}
	}
}

func BenchmarkHitFull(b *testing.B) {
	c := benchCache(b, replacement.LRU, WriteBackAllocate)
	mask := replacement.All(4)
	c.Read(0x1000, mask)
	b.ReportAllocs()
	for b.Loop() {
		if res := c.Read(0x1000, mask); !res.Hit {
			b.Fatal("miss on a resident line")
		}
	}
}
