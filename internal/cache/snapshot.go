package cache

// Snapshot is a detached copy of a Cache's complete mutable state: line
// metadata, way hints, replacement recency and the statistics counters. The
// epoch-parallel multicore stepper snapshots every cache at each epoch
// boundary so a conflicting epoch can be rolled back and replayed serially;
// because the state is flat structure-of-arrays, a snapshot is a handful of
// contiguous copies, not a pointer-chasing walk. The zero value is ready to
// be filled by Cache.Snapshot.
type Snapshot struct {
	stats    Stats
	tags     []uint64
	valid    []bool
	dirty    []bool
	aux      []uint8
	hint     []int32
	stamp    []uint64
	clock    []uint64
	plru     []uint64
	present  []bool
	rngState uint64
}

// cloneInto copies src into dst, reallocating only when the sizes differ, so
// repeated snapshots of the same cache reuse their buffers.
func cloneInto[T any](dst, src []T) []T {
	if src == nil {
		return nil
	}
	if len(dst) != len(src) {
		dst = make([]T, len(src))
	}
	copy(dst, src)
	return dst
}

// Snapshottable reports whether the cache's full state can be captured by
// Snapshot. Only caches running an injected replacement.Policy (NewWithPolicy,
// the conformance mutation seam) are not: the interface gives no way to copy
// the policy's internal state.
func (c *Cache) Snapshottable() bool { return c.kind != kindCustom }

// Snapshot copies the cache's complete mutable state into dst, allocating a
// new Snapshot (or new buffers) only when dst is nil or shaped for a
// different cache. It panics for a custom-policy cache — check Snapshottable
// first. The returned snapshot shares nothing with the live cache.
func (c *Cache) Snapshot(dst *Snapshot) *Snapshot {
	if c.kind == kindCustom {
		panic("cache: Snapshot of a cache with an injected replacement policy")
	}
	if dst == nil {
		dst = &Snapshot{}
	}
	dst.stats = c.stats
	dst.tags = cloneInto(dst.tags, c.tags)
	dst.valid = cloneInto(dst.valid, c.valid)
	dst.dirty = cloneInto(dst.dirty, c.dirty)
	dst.aux = cloneInto(dst.aux, c.aux)
	dst.hint = cloneInto(dst.hint, c.hint)
	dst.stamp = cloneInto(dst.stamp, c.stamp)
	dst.clock = cloneInto(dst.clock, c.clock)
	dst.plru = cloneInto(dst.plru, c.plru)
	dst.present = cloneInto(dst.present, c.present)
	dst.rngState = c.rngState
	return dst
}

// Restore copies a snapshot taken from this cache (same configuration) back
// over the live state, byte for byte. Restoring a snapshot from a cache of a
// different shape panics via the length checks below.
func (c *Cache) Restore(s *Snapshot) {
	if len(s.tags) != len(c.tags) {
		panic("cache: Restore with a snapshot of a different shape")
	}
	c.stats = s.stats
	copy(c.tags, s.tags)
	copy(c.valid, s.valid)
	copy(c.dirty, s.dirty)
	copy(c.aux, s.aux)
	copy(c.hint, s.hint)
	copy(c.stamp, s.stamp)
	copy(c.clock, s.clock)
	copy(c.plru, s.plru)
	copy(c.present, s.present)
	c.rngState = s.rngState
}
