package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colcache/internal/replacement"
)

func TestDataCacheReadYourWrites(t *testing.T) {
	d, err := NewDataCache(Config{LineBytes: 16, NumSets: 4, NumWays: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := replacement.All(2)
	d.StoreByte(100, 42, all)
	if v, _ := d.LoadByte(100, all); v != 42 {
		t.Errorf("read back %d want 42", v)
	}
	// Unwritten bytes read as zero.
	if v, _ := d.LoadByte(101, all); v != 0 {
		t.Errorf("unwritten byte=%d want 0", v)
	}
}

func TestDataCacheSurvivesEviction(t *testing.T) {
	d, _ := NewDataCache(Config{LineBytes: 16, NumSets: 2, NumWays: 1})
	all := replacement.All(1)
	d.StoreByte(0, 7, all)
	// Evict line 0 by filling conflicting lines (set stride = 32 bytes).
	d.LoadByte(32, all)
	d.LoadByte(64, all)
	if v, _ := d.LoadByte(0, all); v != 7 {
		t.Errorf("value lost across eviction: %d", v)
	}
}

func TestDataCacheFlush(t *testing.T) {
	d, _ := NewDataCache(Config{LineBytes: 16, NumSets: 2, NumWays: 2})
	all := replacement.All(2)
	d.StoreByte(5, 9, all)
	d.Flush()
	if d.Cache().ResidentLines() != 0 {
		t.Error("flush left residents")
	}
	if v, res := d.LoadByte(5, all); v != 9 || res.Hit {
		t.Errorf("after flush: v=%d hit=%v", v, res.Hit)
	}
}

func TestDataCacheWriteThrough(t *testing.T) {
	d, _ := NewDataCache(Config{LineBytes: 16, NumSets: 2, NumWays: 1, Write: WriteThroughNoAllocate})
	all := replacement.All(1)
	// Miss-write goes straight to backing memory.
	d.StoreByte(3, 5, all)
	if d.Cache().ResidentLines() != 0 {
		t.Error("WT miss allocated")
	}
	if v, _ := d.LoadByte(3, all); v != 5 {
		t.Errorf("WT value=%d", v)
	}
	// Write hit must update the cached copy too.
	d.StoreByte(3, 6, all)
	if v, res := d.LoadByte(3, all); v != 6 || !res.Hit {
		t.Errorf("WT hit path: v=%d hit=%v", v, res.Hit)
	}
}

// Property: a DataCache behaves exactly like a flat byte array, for random
// mixes of reads, writes, masks, flushes. This exercises fills, dirty
// evictions, writebacks and mask-driven placement end to end.
func TestDataCacheMatchesFlatMemoryProperty(t *testing.T) {
	f := func(seed int64, wt bool) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{LineBytes: 8, NumSets: 4, NumWays: 4}
		if wt {
			cfg.Write = WriteThroughNoAllocate
		}
		d, err := NewDataCache(cfg)
		if err != nil {
			return false
		}
		shadow := make(map[uint64]byte)
		for i := 0; i < 3000; i++ {
			addr := uint64(r.Intn(512))
			mask := replacement.Mask(r.Intn(16)) // includes 0 (falls back to all)
			switch r.Intn(10) {
			case 0:
				d.Flush()
			case 1, 2, 3:
				v := byte(r.Intn(256))
				d.StoreByte(addr, v, mask)
				shadow[addr] = v
			default:
				got, _ := d.LoadByte(addr, mask)
				if got != shadow[addr] {
					return false
				}
			}
		}
		// Final flush then verify everything from backing memory.
		d.Flush()
		for addr, want := range shadow {
			if got, _ := d.LoadByte(addr, replacement.All(4)); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
