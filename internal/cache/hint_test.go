package cache

import (
	"testing"

	"colcache/internal/memory"
	"colcache/internal/replacement"
)

// Regression tests for the way-memoization invalidation edges: the MRU way
// hint must never fabricate a hit after the hinted line is invalidated,
// evicted, or the tint mask narrows. The hint is self-validating — HitFast
// consults it only together with the live valid bit and tag — so each edge
// is pinned by driving the edge and then probing through HitFast directly.

func hintCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{LineBytes: 32, NumSets: 4, NumWays: 2, Policy: replacement.LRU, Write: WriteBackAllocate})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// addrFor builds an address landing in the given set with the given tag for
// the 32B×4-set geometry above.
func addrFor(set, tag int) memory.Addr {
	return memory.Addr(tag)<<7 | memory.Addr(set)<<5
}

func TestHintAfterInvalidate(t *testing.T) {
	c := hintCache(t)
	mask := replacement.All(2)
	a := addrFor(1, 3)
	c.Read(a, mask)
	set, _ := c.SetTagOf(a)
	w, _, ok := c.HitFast(a, false)
	if !ok {
		t.Fatal("freshly filled line not hinted")
	}
	if got := c.HintedWay(set); got != w {
		t.Fatalf("hint %d, hit way %d", got, w)
	}

	if !c.Invalidate(a) {
		t.Fatal("Invalidate missed a resident line")
	}
	if _, _, ok := c.HitFast(a, false); ok {
		t.Fatal("HitFast fabricated a hit on an invalidated line")
	}
	// The full path must agree: a read after invalidation is a miss.
	if res := c.Read(a, mask); res.Hit {
		t.Fatal("Read hit an invalidated line")
	}
}

func TestHintAfterEvictionOfHintedLine(t *testing.T) {
	c := hintCache(t)
	mask := replacement.All(2)
	set := 2
	a0, a1, a2 := addrFor(set, 1), addrFor(set, 2), addrFor(set, 3)

	c.Read(a0, mask)
	c.Read(a1, mask)
	c.Read(a0, mask) // a0 MRU and hinted; a1 is the LRU victim
	if _, _, ok := c.HitFast(a0, false); !ok {
		t.Fatal("MRU line not reachable through the hint")
	}

	// The fill of a2 evicts a1 and repoints the hint at a2's way.
	if res := c.Read(a2, mask); res.Hit || !res.Evicted {
		t.Fatalf("expected evicting miss, got %+v", res)
	}
	if _, _, ok := c.HitFast(a2, false); !ok {
		t.Fatal("freshly filled line not hinted after eviction")
	}
	if _, _, ok := c.HitFast(a1, false); ok {
		t.Fatal("HitFast fabricated a hit on the evicted line")
	}
	if res := c.Read(a1, mask); res.Hit {
		t.Fatal("Read hit the evicted line")
	}
}

// Narrowing the replacement mask must not disturb hint correctness in
// either direction: the column mask governs replacement only, so a line
// resident outside the narrowed mask stays readable — through the hint too
// — while new fills confine themselves to the mask's columns.
func TestHintAfterMaskNarrowing(t *testing.T) {
	c := hintCache(t)
	set := 0
	a0, a1 := addrFor(set, 5), addrFor(set, 6)

	// Fill a0 into way 1 only, then narrow future replacement to way 0.
	c.Read(a0, replacement.Of(1))
	w0, _, ok := c.HitFast(a0, false)
	if !ok || w0 != 1 {
		t.Fatalf("a0 in way %d (hit=%v), want way 1", w0, ok)
	}
	narrow := replacement.Of(0)

	// Resident outside the narrow mask: still a hint hit.
	if _, _, ok := c.HitFast(a0, false); !ok {
		t.Fatal("mask narrowing broke the hint for a resident line")
	}
	if res := c.Read(a0, narrow); !res.Hit {
		t.Fatal("mask narrowing evicted a resident line from lookup")
	}

	// A new fill under the narrow mask must land in way 0 and repoint the
	// hint there, leaving a0's way intact.
	if res := c.Read(a1, narrow); res.Hit || res.Way != 0 {
		t.Fatalf("fill under mask {0} landed at %+v, want way 0", res)
	}
	if got := c.HintedWay(set); got != 0 {
		t.Fatalf("hint %d after masked fill, want 0", got)
	}
	// a0 is no longer the hinted way, so HitFast declines — and must leave
	// the fallback to find it still resident in way 1.
	if _, _, ok := c.HitFast(a0, false); ok {
		t.Fatal("hint hit for a non-hinted way")
	}
	if w, ok := c.Probe(a0); !ok || w != 1 {
		t.Fatalf("masked fill displaced the unmasked resident line (way %d, ok=%v)", w, ok)
	}
}

// A write through the hint must set the dirty bit exactly like the full
// path, and the aux byte returned must be the line's live value — the seam
// the multicore MSI controller trusts.
func TestHintWriteAndAux(t *testing.T) {
	c := hintCache(t)
	mask := replacement.All(2)
	a := addrFor(3, 9)
	c.Read(a, mask)
	set, _ := c.SetTagOf(a)
	w, aux, ok := c.HitFast(a, true)
	if !ok {
		t.Fatal("hint missed a resident line")
	}
	if aux != 0 {
		t.Fatalf("fresh line aux %d, want 0", aux)
	}
	if !c.LineAt(set, w).Dirty {
		t.Fatal("write through the hint left the line clean")
	}
	c.SetAux(set, w, 2)
	if _, aux, _ := c.HitFast(a, false); aux != 2 {
		t.Fatalf("HitFast aux %d, want the live aux 2", aux)
	}
}

// HitFast must leave stats untouched when the hint misses: the caller falls
// back to Read/Write, which does its own accounting, and double-counting
// would diverge from the oracle.
func TestHintMissMutatesNothing(t *testing.T) {
	c := hintCache(t)
	mask := replacement.All(2)
	a0, a1 := addrFor(1, 1), addrFor(1, 2)
	c.Read(a0, mask)
	c.Read(a1, mask) // hint now points at a1's way
	before := c.Stats()
	if _, _, ok := c.HitFast(a0, false); ok {
		t.Fatal("hint hit for the non-MRU line")
	}
	if got := c.Stats(); got != before {
		t.Fatalf("failed HitFast changed stats: %+v -> %+v", before, got)
	}
	if res := c.Read(a0, mask); !res.Hit {
		t.Fatal("fallback Read missed a resident line")
	}
}
