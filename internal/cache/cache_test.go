package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colcache/internal/memory"
	"colcache/internal/replacement"
)

func cfg4way() Config {
	return Config{LineBytes: 32, NumSets: 16, NumWays: 4}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LineBytes: 31, NumSets: 16, NumWays: 4},
		{LineBytes: 32, NumSets: 15, NumWays: 4},
		{LineBytes: 32, NumSets: 16, NumWays: 0},
		{LineBytes: 32, NumSets: 16, NumWays: 65},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := New(Config{LineBytes: 32, NumSets: 16, NumWays: 4, Policy: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
	c := cfg4way()
	if c.SizeBytes() != 2048 {
		t.Errorf("SizeBytes=%d want 2048", c.SizeBytes())
	}
	if c.ColumnBytes() != 512 {
		t.Errorf("ColumnBytes=%d want 512", c.ColumnBytes())
	}
}

func TestHitMissBasics(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	if r := c.Read(0x100, all); r.Hit {
		t.Error("cold read hit")
	}
	if r := c.Read(0x100, all); !r.Hit {
		t.Error("second read missed")
	}
	// Same line, different offset: hit.
	if r := c.Read(0x11f, all); !r.Hit {
		t.Error("same-line read missed")
	}
	// Next line: miss.
	if r := c.Read(0x120, all); r.Hit {
		t.Error("next-line read hit")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 || s.Fills != 2 {
		t.Errorf("stats=%+v", s)
	}
	if s.HitRate() != 0.5 || s.MissRate() != 0.5 {
		t.Errorf("rates=%v,%v", s.HitRate(), s.MissRate())
	}
}

func TestConflictEvictionLRU(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	// 5 distinct lines mapping to set 0: line numbers 0,16,32,48,64.
	setStride := uint64(32 * 16)
	for i := uint64(0); i < 5; i++ {
		c.Read(i*setStride, all)
	}
	// Line 0 was LRU, must be gone; line 16*32 resident.
	if _, hit := c.Probe(0); hit {
		t.Error("LRU line survived 5th fill")
	}
	if _, hit := c.Probe(setStride); !hit {
		t.Error("second line evicted instead of LRU")
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions=%d want 1", got)
	}
}

func TestColumnIsolation(t *testing.T) {
	// Two streams with disjoint masks must never evict each other.
	c := MustNew(cfg4way())
	maskA := replacement.Of(0, 1)
	maskB := replacement.Of(2, 3)
	setStride := uint64(32 * 16)

	// Stream A warms two lines per set into columns 0-1.
	c.Read(0, maskA)
	c.Read(setStride, maskA)
	// Stream B thrashes set 0 with many lines, masked to columns 2-3.
	for i := uint64(2); i < 50; i++ {
		c.Read(i*setStride+0x100000, maskB)
	}
	// A's lines must still be resident.
	if _, hit := c.Probe(0); !hit {
		t.Error("column-isolated line 0 evicted by other partition")
	}
	if _, hit := c.Probe(setStride); !hit {
		t.Error("column-isolated line 1 evicted by other partition")
	}
	// And all of B's residency is inside its columns.
	if n := c.ResidentInColumns(maskB); n > 2*16 {
		t.Errorf("partition B holds %d lines, exceeds its capacity", n)
	}
}

func TestGracefulRepartitioning(t *testing.T) {
	// Paper §2.1: after remapping, a line resident in its old column is
	// still found by associative search, at full hit speed.
	c := MustNew(cfg4way())
	c.Read(0x40, replacement.Of(0)) // fill into column 0
	if w, hit := c.Probe(0x40); !hit || w != 0 {
		t.Fatalf("fill went to way %d, hit=%v", w, hit)
	}
	// Now the page is remapped to column 3 — lookup must still hit in col 0.
	if r := c.Read(0x40, replacement.Of(3)); !r.Hit || r.Way != 0 {
		t.Errorf("remapped lookup: %+v", r)
	}
	// After invalidation, the refetch lands in the new column.
	c.Invalidate(0x40)
	if r := c.Read(0x40, replacement.Of(3)); r.Hit || r.Way != 3 {
		t.Errorf("refetch after invalidate: %+v", r)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	setStride := uint64(32 * 16)
	c.Write(0, all) // dirty line
	for i := uint64(1); i <= 4; i++ {
		c.Read(i*setStride, all) // force eviction of dirty line
	}
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks=%d want 1", s.Writebacks)
	}
}

func TestWriteHitDirties(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	c.Read(0, all)
	c.Write(0, all) // write hit dirties
	c.FlushAll()
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("flush writebacks=%d want 1", got)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	cfg := cfg4way()
	cfg.Write = WriteThroughNoAllocate
	c := MustNew(cfg)
	all := replacement.All(4)
	if r := c.Write(0, all); r.Hit || r.Way != -1 || r.Filled {
		t.Errorf("WT miss allocated: %+v", r)
	}
	if c.ResidentLines() != 0 {
		t.Error("WT miss left a resident line")
	}
	// Write hit does not dirty under write-through.
	c.Read(0x1000, all)
	c.Write(0x1000, all)
	c.FlushAll()
	if got := c.Stats().Writebacks; got != 0 {
		t.Errorf("WT produced %d writebacks", got)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	c.Read(0, all)
	c.Read(0x1000, all)
	if !c.Invalidate(0) {
		t.Error("Invalidate missed resident line")
	}
	if c.Invalidate(0) {
		t.Error("Invalidate hit absent line")
	}
	if c.ResidentLines() != 1 {
		t.Errorf("resident=%d want 1", c.ResidentLines())
	}
	c.FlushAll()
	if c.ResidentLines() != 0 {
		t.Error("FlushAll left residents")
	}
}

func TestWayOf(t *testing.T) {
	c := MustNew(cfg4way())
	if c.WayOf(0) != -1 {
		t.Error("WayOf on empty cache")
	}
	c.Read(0, replacement.Of(2))
	if c.WayOf(0) != 2 {
		t.Errorf("WayOf=%d want 2", c.WayOf(0))
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	setStride := uint64(32 * 16)
	c.Read(0, all)
	c.Read(setStride, all)
	before := c.Stats()
	c.Probe(0)
	c.Probe(setStride)
	if c.Stats() != before {
		t.Error("Probe changed stats")
	}
	// Probing the LRU line must not rescue it from eviction.
	for i := uint64(2); i <= 4; i++ {
		c.Read(i*setStride, all)
	}
	if _, hit := c.Probe(0); hit {
		t.Error("probe refreshed LRU state")
	}
}

// Property: with the all-columns mask, a column cache is exactly a standard
// set-associative cache (same hits/misses for any access sequence) — the
// masked cache run against a reference model simulated with explicit LRU
// lists.
func TestFullMaskEquivalenceProperty(t *testing.T) {
	type refSet struct{ lines []uint64 } // front = MRU
	f := func(seq []uint16) bool {
		const numSets, numWays, lineBytes = 4, 4, 16
		c := MustNew(Config{LineBytes: lineBytes, NumSets: numSets, NumWays: numWays})
		ref := make([]refSet, numSets)
		all := replacement.All(numWays)
		for _, v := range seq {
			addr := uint64(v) * 8
			ln := addr / lineBytes
			set := int(ln % numSets)
			// Reference LRU.
			refHit := false
			for i, l := range ref[set].lines {
				if l == ln {
					refHit = true
					copy(ref[set].lines[1:i+1], ref[set].lines[:i])
					ref[set].lines[0] = ln
					break
				}
			}
			if !refHit {
				if len(ref[set].lines) < numWays {
					ref[set].lines = append([]uint64{ln}, ref[set].lines...)
				} else {
					copy(ref[set].lines[1:], ref[set].lines[:numWays-1])
					ref[set].lines[0] = ln
				}
			}
			if got := c.Read(addr, all); got.Hit != refHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: partition isolation — accesses restricted to disjoint masks
// never evict each other's lines, for random interleavings.
func TestPartitionIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := MustNew(Config{LineBytes: 16, NumSets: 8, NumWays: 4})
		maskA, maskB := replacement.Of(0), replacement.Of(1, 2, 3)
		residentA := make(map[uint64]bool)
		for i := 0; i < 2000; i++ {
			if r.Intn(4) == 0 {
				// Partition A touches one of 8 hot lines (fits its column).
				addr := uint64(r.Intn(8)) * 16
				c.Read(addr, maskA)
				residentA[addr/16] = true
			} else {
				c.Read(uint64(r.Intn(1<<14))+1<<20, maskB)
			}
		}
		for ln := range residentA {
			if _, hit := c.Probe(ln * 16); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsStringNonEmpty(t *testing.T) {
	c := MustNew(cfg4way())
	c.Read(0, replacement.All(4))
	if c.Stats().String() == "" {
		t.Error("empty stats string")
	}
	if (WriteBackAllocate).String() == (WriteThroughNoAllocate).String() {
		t.Error("write policy strings collide")
	}
	if WritePolicy(9).String() != "unknown" {
		t.Error("unknown write policy string")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := MustNew(cfg4way())
	c.Read(0, replacement.All(4))
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if r := c.Read(0, replacement.All(4)); !r.Hit {
		t.Error("contents lost on ResetStats")
	}
}

func TestGeometryInterop(t *testing.T) {
	// The cache's internal line indexing must agree with memory.Geometry.
	g := memory.MustGeometry(32, 4096)
	c := MustNew(cfg4way())
	addr := uint64(0xabcd)
	c.Read(addr, replacement.All(4))
	if _, hit := c.Probe(g.LineBase(addr)); !hit {
		t.Error("line base not resident after access inside line")
	}
}

func TestFillInstallsWithoutDemandStats(t *testing.T) {
	c := MustNew(cfg4way())
	res := c.Fill(0x100, replacement.Of(2))
	if res.Hit || !res.Filled || res.Way != 2 {
		t.Errorf("fill result=%+v", res)
	}
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 || s.Fills != 1 {
		t.Errorf("stats=%+v", s)
	}
	// Refill of a resident line is a no-op hit.
	res = c.Fill(0x100, replacement.Of(3))
	if !res.Hit || res.Filled {
		t.Errorf("refill result=%+v", res)
	}
	if c.Stats().Fills != 1 {
		t.Error("refill counted")
	}
}

func TestFillEvictsAndWritesBack(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	setStride := uint64(32 * 16)
	c.Write(0, all) // dirty line in set 0, some way
	w := c.WayOf(0)
	// Fill three more lines of set 0 into the other ways, then one more
	// into the dirty line's way specifically.
	c.Fill(setStride, replacement.Of((w+1)%4))
	c.Fill(2*setStride, replacement.Of((w+2)%4))
	res := c.Fill(3*setStride, replacement.Of(w))
	if !res.Evicted || !res.Writeback {
		t.Errorf("fill over dirty line: %+v", res)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks=%d", c.Stats().Writebacks)
	}
}

func TestConfigAccessor(t *testing.T) {
	c := MustNew(cfg4way())
	if got := c.Config(); got.NumWays != 4 || got.Policy != replacement.LRU {
		t.Errorf("Config=%+v", got)
	}
}

func TestRatesOnEmptyStats(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Error("empty rates nonzero")
	}
}

func TestLineAtAndSnapshotSets(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	c.Read(0, all)   // set 0
	c.Write(32, all) // set 1, dirty under write-back
	before := c.Stats()

	l := c.LineAt(1, 0)
	if !l.Valid || !l.Dirty {
		t.Fatalf("LineAt(1,0) = %+v, want a valid dirty line", l)
	}
	if c.LineAt(0, 1).Valid {
		t.Fatal("LineAt(0,1) claims a line that was never filled")
	}
	if c.Stats() != before {
		t.Fatal("inspection perturbed statistics")
	}

	snap := c.SnapshotSets()
	if len(snap) != cfg4way().NumSets || len(snap[0]) != cfg4way().NumWays {
		t.Fatalf("snapshot shape %dx%d", len(snap), len(snap[0]))
	}
	if !snap[1][0].Valid || !snap[1][0].Dirty {
		t.Fatalf("snapshot[1][0] = %+v", snap[1][0])
	}
	// The snapshot is detached: later cache activity must not show through,
	// and mutating it must not reach the cache.
	tag := snap[0][0].Tag
	snap[0][0].Tag = ^uint64(0)
	c.Read(64, all)
	if got := c.LineAt(0, 0).Tag; got != tag {
		t.Fatalf("snapshot mutation reached the cache: tag %#x", got)
	}
	if snap[2][0].Valid {
		t.Fatal("snapshot picked up an access made after it was taken")
	}
}

func TestSnapshotSetsInto(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	c.Read(0, all)
	c.Write(32, all)

	// Matches the allocating variant exactly.
	want := c.SnapshotSets()
	var buf [][]LineState
	buf = c.SnapshotSetsInto(buf)
	if len(buf) != len(want) {
		t.Fatalf("shape: got %d sets, want %d", len(buf), len(want))
	}
	for s := range want {
		for w := range want[s] {
			if buf[s][w] != want[s][w] {
				t.Fatalf("set %d way %d: got %+v, want %+v", s, w, buf[s][w], want[s][w])
			}
		}
	}

	// Detached: later cache activity does not show through.
	c.Read(64, all)
	if buf[2][0].Valid {
		t.Fatal("snapshot picked up an access made after it was taken")
	}

	// Refilling a warm buffer reflects the new state and reuses the rows.
	row0 := &buf[0][0]
	buf = c.SnapshotSetsInto(buf)
	if !buf[2][0].Valid {
		t.Fatal("refill missed the line cached after the first capture")
	}
	if row0 != &buf[0][0] {
		t.Fatal("refill reallocated rows for an identically shaped cache")
	}

	// The whole point: steady-state capture must not allocate.
	if n := testing.AllocsPerRun(100, func() { buf = c.SnapshotSetsInto(buf) }); n != 0 {
		t.Fatalf("SnapshotSetsInto allocated %.1f times per call on a warm buffer", n)
	}
}

func TestNewWithPolicy(t *testing.T) {
	if _, err := NewWithPolicy(cfg4way(), nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := cfg4way()
	bad.NumSets = 3 // not a power of two
	if _, err := NewWithPolicy(bad, replacement.NewLRU(3, 4)); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	// A cache built through the seam behaves identically to New with the
	// same policy kind.
	pol := replacement.NewLRU(cfg4way().NumSets, cfg4way().NumWays)
	a, err := NewWithPolicy(cfg4way(), pol)
	if err != nil {
		t.Fatal(err)
	}
	b := MustNew(cfg4way())
	all := replacement.All(4)
	for i := uint64(0); i < 200; i++ {
		addr := memory.Addr((i * 2654435761) % 4096)
		ra := a.Read(addr, all)
		rb := b.Read(addr, all)
		if ra != rb {
			t.Fatalf("access %d: NewWithPolicy cache %+v, New cache %+v", i, ra, rb)
		}
	}
}

// TestFlatPoliciesMatchReference drives every built-in policy kind through
// the flat fast path and through the replacement-package reference injected
// via NewWithPolicy, with the same randomized stream of reads, writes,
// column-restricted masks, invalidates, and whole-cache flushes. Any
// divergence in per-access results or final line state is a flat-path bug.
func TestFlatPoliciesMatchReference(t *testing.T) {
	cfg := cfg4way()
	mk := map[replacement.Kind]func() replacement.Policy{
		replacement.LRU:      func() replacement.Policy { return replacement.NewLRU(cfg.NumSets, cfg.NumWays) },
		replacement.TreePLRU: func() replacement.Policy { return replacement.NewTreePLRU(cfg.NumSets, cfg.NumWays) },
		replacement.FIFO:     func() replacement.Policy { return replacement.NewFIFO(cfg.NumSets, cfg.NumWays) },
		replacement.Random:   func() replacement.Policy { return replacement.NewRandom(cfg.NumSets, cfg.NumWays, randomSeed) },
	}
	masks := []replacement.Mask{
		replacement.All(cfg.NumWays),
		replacement.Mask(0b0011),
		replacement.Mask(0b1100),
		replacement.Mask(0b0110),
		0, // malformed: must widen to all ways
	}
	for kind, ref := range mk {
		t.Run(string(kind), func(t *testing.T) {
			c := cfg
			c.Policy = kind
			flat := MustNew(c)
			oracle, err := NewWithPolicy(cfg, ref())
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 4000; i++ {
				addr := memory.Addr(rng.Intn(256) * int(cfg.LineBytes))
				mask := masks[rng.Intn(len(masks))]
				var rf, ro Result
				switch rng.Intn(8) {
				case 0:
					rf.Hit = flat.Invalidate(addr)
					ro.Hit = oracle.Invalidate(addr)
				case 1:
					flat.FlushAll()
					oracle.FlushAll()
				case 2, 3:
					rf = flat.Write(addr, mask)
					ro = oracle.Write(addr, mask)
				default:
					rf = flat.Read(addr, mask)
					ro = oracle.Read(addr, mask)
				}
				if rf != ro {
					t.Fatalf("%s step %d addr %#x mask %04b: flat %+v, reference %+v",
						kind, i, addr, mask, rf, ro)
				}
			}
			if flat.Stats() != oracle.Stats() {
				t.Fatalf("%s stats diverged: flat %+v, reference %+v", kind, flat.Stats(), oracle.Stats())
			}
			fs, os := flat.SnapshotSets(), oracle.SnapshotSets()
			for s := range fs {
				for w := range fs[s] {
					if fs[s][w] != os[s][w] {
						t.Fatalf("%s line (%d,%d): flat %+v, reference %+v", kind, s, w, fs[s][w], os[s][w])
					}
				}
			}
		})
	}
}

// TestPLRUGeometry covers the tree-PLRU constructor constraints and the
// degenerate single-way tree (touch must be a no-op, victim is way 0).
func TestPLRUGeometry(t *testing.T) {
	bad := Config{LineBytes: 32, NumSets: 8, NumWays: 3, Policy: replacement.TreePLRU}
	if _, err := New(bad); err == nil {
		t.Fatal("tree PLRU accepted 3 ways")
	}
	one := MustNew(Config{LineBytes: 32, NumSets: 8, NumWays: 1, Policy: replacement.TreePLRU})
	all := replacement.All(1)
	one.Read(0, all)
	one.Read(0, all) // hit: exercises the single-way touch early-return
	if r := one.Read(0x100, all); !r.Evicted || r.Way != 0 {
		t.Fatalf("single-way eviction: %+v", r)
	}
}

// TestLineAccessors covers the per-line seams a coherence controller uses:
// aux state, dirty override, and the set/tag <-> address index math.
func TestLineAccessors(t *testing.T) {
	c := MustNew(cfg4way())
	all := replacement.All(4)
	addr := memory.Addr(0x7e0)
	r := c.Read(addr, all)
	set, tag := c.SetTagOf(addr)
	if got := c.AddrOfTag(set, tag); got != addr&^memory.Addr(c.Config().LineBytes-1) {
		t.Fatalf("AddrOfTag(%d, %#x) = %#x, want line base of %#x", set, tag, got, addr)
	}
	if c.AuxAt(set, r.Way) != 0 {
		t.Fatal("fresh line has nonzero aux")
	}
	c.SetAux(set, r.Way, 7)
	if c.AuxAt(set, r.Way) != 7 {
		t.Fatal("aux did not stick")
	}
	c.SetLineDirty(set, r.Way, true)
	if st := c.LineAt(set, r.Way); !st.Dirty || st.Aux != 7 {
		t.Fatalf("line state %+v after overrides", st)
	}
	c.SetLineDirty(set, r.Way, false)
	if c.LineAt(set, r.Way).Dirty {
		t.Fatal("dirty override did not clear")
	}
	// Invalidate zeroes aux with the line.
	if !c.Invalidate(addr) {
		t.Fatal("resident line not invalidated")
	}
	if c.AuxAt(set, r.Way) != 0 {
		t.Fatal("aux survived invalidate")
	}
}
