// Package replacement implements cache replacement policies that honor
// column restrictions. This is the paper's "modified replacement unit": on a
// miss the unit receives a bit vector of permissible columns (ways) from the
// TLB and must choose its victim from within that set (paper §2.1, Fig. 2).
//
// Every policy implements the same two-step protocol: Touch on each access to
// update recency state, Victim on a miss to pick the way to replace. Victim
// is always given the permissible-column mask; a policy must never return a
// way outside the mask.
package replacement

import "fmt"

// Mask is a bit vector over the ways of a set: bit w set means way w is a
// permissible replacement target. The all-ones mask reproduces a standard
// set-associative cache.
type Mask uint64

// All returns the mask permitting every one of n ways.
func All(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Of returns the mask permitting exactly the listed ways.
func Of(ways ...int) Mask {
	var m Mask
	for _, w := range ways {
		m |= 1 << uint(w)
	}
	return m
}

// Range returns the mask permitting ways [lo, hi).
func Range(lo, hi int) Mask {
	var m Mask
	for w := lo; w < hi; w++ {
		m |= 1 << uint(w)
	}
	return m
}

// Has reports whether way w is permitted.
func (m Mask) Has(w int) bool { return m&(1<<uint(w)) != 0 }

// Count returns the number of permitted ways.
func (m Mask) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Ways returns the permitted way indexes in ascending order, considering
// only the first n ways.
func (m Mask) Ways(n int) []int {
	var out []int
	for w := 0; w < n; w++ {
		if m.Has(w) {
			out = append(out, w)
		}
	}
	return out
}

func (m Mask) String() string { return fmt.Sprintf("%b", uint64(m)) }

// Policy is the per-cache replacement state machine. Implementations keep
// independent state per set.
type Policy interface {
	// Touch notes that way in set was just accessed (hit or fill).
	Touch(set, way int)
	// Victim selects the way to replace in set, restricted to ways allowed
	// by mask. valid reports whether a way currently holds a valid line;
	// policies must prefer an invalid permitted way when one exists.
	Victim(set int, mask Mask, valid func(way int) bool) int
	// Invalidate notes that way in set no longer holds a line.
	Invalidate(set, way int)
	// Reset clears all state, as after a whole-cache flush.
	Reset()
	// Name identifies the policy for reports.
	Name() string
}

// Kind names a built-in policy for configuration.
type Kind string

const (
	LRU      Kind = "lru"
	TreePLRU Kind = "plru"
	FIFO     Kind = "fifo"
	Random   Kind = "random"
)

// New constructs a policy of the given kind for a cache with numSets sets of
// numWays ways. Random policies are seeded deterministically so simulations
// are reproducible.
func New(kind Kind, numSets, numWays int) (Policy, error) {
	switch kind {
	case LRU:
		return NewLRU(numSets, numWays), nil
	case TreePLRU:
		return NewTreePLRU(numSets, numWays), nil
	case FIFO:
		return NewFIFO(numSets, numWays), nil
	case Random:
		return NewRandom(numSets, numWays, 1), nil
	default:
		return nil, fmt.Errorf("replacement: unknown policy kind %q", kind)
	}
}

// invalidPermitted returns the lowest permitted invalid way, or -1.
func invalidPermitted(numWays int, mask Mask, valid func(int) bool) int {
	for w := 0; w < numWays; w++ {
		if mask.Has(w) && !valid(w) {
			return w
		}
	}
	return -1
}

// normalize widens an empty or out-of-range mask to all ways. An all-zero
// bit vector never arrives from a well-formed tint table, but the replacement
// unit must still make progress if it does: we fall back to the whole set.
func normalize(mask Mask, numWays int) Mask {
	mask &= All(numWays)
	if mask == 0 {
		return All(numWays)
	}
	return mask
}
