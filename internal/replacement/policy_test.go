package replacement

import (
	"testing"
	"testing/quick"
)

func TestMaskHelpers(t *testing.T) {
	if All(4) != 0b1111 {
		t.Errorf("All(4)=%b", All(4))
	}
	if All(64) != ^Mask(0) {
		t.Errorf("All(64)=%x", All(64))
	}
	if All(70) != ^Mask(0) {
		t.Errorf("All(70)=%x", All(70))
	}
	if Of(0, 2) != 0b101 {
		t.Errorf("Of(0,2)=%b", Of(0, 2))
	}
	if Range(1, 3) != 0b110 {
		t.Errorf("Range(1,3)=%b", Range(1, 3))
	}
	if Range(2, 2) != 0 {
		t.Errorf("Range(2,2)=%b", Range(2, 2))
	}
	m := Of(1, 3)
	if !m.Has(1) || m.Has(0) || m.Count() != 2 {
		t.Errorf("mask ops wrong for %b", m)
	}
	ws := m.Ways(4)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 3 {
		t.Errorf("Ways=%v", ws)
	}
}

func TestNewKinds(t *testing.T) {
	for _, k := range []Kind{LRU, TreePLRU, FIFO, Random} {
		p, err := New(k, 4, 4)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if p.Name() != string(k) {
			t.Errorf("Name=%s want %s", p.Name(), k)
		}
	}
	if _, err := New("bogus", 4, 4); err == nil {
		t.Error("New(bogus) succeeded")
	}
}

// allValid returns a valid func reporting every way occupied.
func allValid(int) bool { return true }

func TestLRUVictimOrder(t *testing.T) {
	p := NewLRU(1, 4)
	// Fill in order 0,1,2,3 then touch 0 again: LRU order is 1,2,3,0.
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	p.Touch(0, 0)
	if v := p.Victim(0, All(4), allValid); v != 1 {
		t.Errorf("victim=%d want 1", v)
	}
	p.Touch(0, 1)
	if v := p.Victim(0, All(4), allValid); v != 2 {
		t.Errorf("victim=%d want 2", v)
	}
}

func TestLRUMaskRestriction(t *testing.T) {
	p := NewLRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	// Way 0 is globally LRU, but mask excludes it.
	if v := p.Victim(0, Of(2, 3), allValid); v != 2 {
		t.Errorf("victim=%d want 2 (LRU within mask)", v)
	}
}

func TestLRUPrefersInvalid(t *testing.T) {
	p := NewLRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	valid := func(w int) bool { return w != 2 }
	if v := p.Victim(0, All(4), valid); v != 2 {
		t.Errorf("victim=%d want invalid way 2", v)
	}
	// But an invalid way outside the mask must not be chosen.
	if v := p.Victim(0, Of(1, 3), valid); v != 1 {
		t.Errorf("victim=%d want 1", v)
	}
}

func TestLRUInvalidateResetsRecency(t *testing.T) {
	p := NewLRU(1, 2)
	p.Touch(0, 0)
	p.Touch(0, 1)
	p.Invalidate(0, 1)
	if v := p.Victim(0, All(2), allValid); v != 1 {
		t.Errorf("victim=%d want 1 (stamp reset)", v)
	}
}

func TestEmptyMaskFallsBackToAllWays(t *testing.T) {
	for _, k := range []Kind{LRU, TreePLRU, FIFO, Random} {
		p, _ := New(k, 2, 4)
		p.Touch(0, 0)
		v := p.Victim(0, 0, allValid)
		if v < 0 || v >= 4 {
			t.Errorf("%s: victim=%d outside set", k, v)
		}
	}
}

func TestTreePLRUBasic(t *testing.T) {
	p := NewTreePLRU(1, 4)
	// Touch 0,1,2,3 in order; PLRU bits now point at way 0's side last
	// touched... verify the victim is a permitted way and changes as we
	// touch.
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	v := p.Victim(0, All(4), allValid)
	if v < 0 || v > 3 {
		t.Fatalf("victim=%d", v)
	}
	// After touching every way, the most recent (3) must not be the victim.
	if v == 3 {
		t.Errorf("PLRU chose most recently used way")
	}
}

func TestTreePLRUMaskForcesSubtree(t *testing.T) {
	p := NewTreePLRU(1, 4)
	p.Touch(0, 2)
	p.Touch(0, 3)
	// Mask allows only right-half ways {2,3} even though the tree prefers
	// the left half (untouched).
	v := p.Victim(0, Of(2, 3), allValid)
	if v != 2 && v != 3 {
		t.Errorf("victim=%d escaped mask", v)
	}
	// And the reverse.
	v = p.Victim(0, Of(0, 1), allValid)
	if v != 0 && v != 1 {
		t.Errorf("victim=%d escaped mask", v)
	}
}

func TestTreePLRUPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 3 ways")
		}
	}()
	NewTreePLRU(1, 3)
}

func TestFIFOIgnoresHits(t *testing.T) {
	p := NewFIFO(1, 3)
	valid := map[int]bool{}
	validFn := func(w int) bool { return valid[w] }
	// Fill 0,1,2.
	for w := 0; w < 3; w++ {
		p.Touch(0, w)
		valid[w] = true
	}
	// Re-touch way 0 repeatedly (hits) — FIFO must still evict way 0 first.
	p.Touch(0, 0)
	p.Touch(0, 0)
	if v := p.Victim(0, All(3), validFn); v != 0 {
		t.Errorf("victim=%d want 0", v)
	}
	// Refill way 0; next victim is way 1.
	valid[0] = false
	p.Touch(0, 0)
	valid[0] = true
	if v := p.Victim(0, All(3), validFn); v != 1 {
		t.Errorf("victim=%d want 1", v)
	}
}

func TestRandomDeterministicAndMasked(t *testing.T) {
	p1 := NewRandom(1, 8, 42)
	p2 := NewRandom(1, 8, 42)
	for i := 0; i < 100; i++ {
		v1 := p1.Victim(0, Of(1, 3, 5), allValid)
		v2 := p2.Victim(0, Of(1, 3, 5), allValid)
		if v1 != v2 {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, v1, v2)
		}
		if v1 != 1 && v1 != 3 && v1 != 5 {
			t.Fatalf("victim %d outside mask", v1)
		}
	}
}

// Property: every policy always returns a victim inside the (normalized)
// mask, for arbitrary touch histories.
func TestVictimAlwaysInMaskProperty(t *testing.T) {
	const numWays = 8
	for _, kind := range []Kind{LRU, TreePLRU, FIFO, Random} {
		kind := kind
		f := func(touches []uint8, rawMask uint16) bool {
			p, err := New(kind, 4, numWays)
			if err != nil {
				return false
			}
			for _, tc := range touches {
				p.Touch(int(tc)%4, int(tc/4)%numWays)
			}
			mask := Mask(rawMask)
			eff := normalize(mask, numWays)
			for set := 0; set < 4; set++ {
				v := p.Victim(set, mask, allValid)
				if v < 0 || v >= numWays || !eff.Has(v) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// Property: with some ways invalid, policies prefer an invalid permitted way.
func TestVictimPrefersInvalidProperty(t *testing.T) {
	const numWays = 4
	for _, kind := range []Kind{LRU, TreePLRU, FIFO, Random} {
		kind := kind
		f := func(validBits uint8, rawMask uint8) bool {
			p, _ := New(kind, 1, numWays)
			for w := 0; w < numWays; w++ {
				p.Touch(0, w)
			}
			valid := func(w int) bool { return validBits&(1<<uint(w)) != 0 }
			mask := normalize(Mask(rawMask), numWays)
			v := p.Victim(0, mask, valid)
			if !mask.Has(v) {
				return false
			}
			// If any permitted way is invalid, the victim must be invalid.
			anyInvalid := false
			for w := 0; w < numWays; w++ {
				if mask.Has(w) && !valid(w) {
					anyInvalid = true
				}
			}
			if anyInvalid && valid(v) {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestStampsForTest(t *testing.T) {
	p := NewLRU(1, 4)
	p.Touch(0, 3)
	p.Touch(0, 1)
	order := StampsForTest(p, 0, 4)
	// Never-touched ways 0,2 first (stamp 0), then 3, then 1.
	if order[2] != 3 || order[3] != 1 {
		t.Errorf("order=%v", order)
	}
	if StampsForTest(NewFIFO(1, 4), 0, 4) != nil {
		t.Error("StampsForTest on non-LRU returned data")
	}
}

func TestResetClearsAllPolicies(t *testing.T) {
	for _, kind := range []Kind{LRU, TreePLRU, FIFO, Random} {
		p, _ := New(kind, 2, 4)
		for w := 0; w < 4; w++ {
			p.Touch(0, w)
		}
		p.Reset()
		// After reset, victim selection behaves as on a fresh policy: with
		// all ways valid, the choice matches a brand-new instance.
		fresh, _ := New(kind, 2, 4)
		got := p.Victim(0, All(4), allValid)
		want := fresh.Victim(0, All(4), allValid)
		if got != want {
			t.Errorf("%s: post-reset victim %d != fresh victim %d", kind, got, want)
		}
	}
}

func TestInvalidateNoOpsAreSafe(t *testing.T) {
	// PLRU and Random keep no per-line state; Invalidate must be a safe
	// no-op. FIFO must clear the slot's presence.
	for _, kind := range []Kind{TreePLRU, Random, FIFO} {
		p, _ := New(kind, 1, 4)
		p.Touch(0, 2)
		p.Invalidate(0, 2)
		v := p.Victim(0, All(4), func(w int) bool { return w != 2 })
		if v != 2 {
			t.Errorf("%s: invalid way not preferred after Invalidate: %d", kind, v)
		}
	}
}

func TestFIFORefillAfterVictim(t *testing.T) {
	p := NewFIFO(1, 2)
	valid := map[int]bool{}
	validFn := func(w int) bool { return valid[w] }
	p.Touch(0, 0)
	valid[0] = true
	p.Touch(0, 1)
	valid[1] = true
	// Victim pops way 0 from the queue; refilling it re-queues it last.
	if v := p.Victim(0, All(2), validFn); v != 0 {
		t.Fatalf("victim=%d", v)
	}
	valid[0] = false
	p.Touch(0, 0)
	valid[0] = true
	if v := p.Victim(0, All(2), validFn); v != 1 {
		t.Errorf("victim=%d want 1 (way 0 just refilled)", v)
	}
}

func TestMaskString(t *testing.T) {
	if Of(0, 2).String() != "101" {
		t.Errorf("String=%s", Of(0, 2).String())
	}
}

func TestRandomZeroSeed(t *testing.T) {
	p := NewRandom(1, 4, 0)
	v := p.Victim(0, All(4), allValid)
	if v < 0 || v > 3 {
		t.Errorf("victim=%d", v)
	}
}
