package replacement

// treePLRU implements tree-based pseudo-LRU, the policy most hardware
// actually ships. Each set keeps numWays-1 direction bits arranged as a
// binary tree; Touch flips the bits along the access path away from the way,
// Victim follows the bits toward the pseudo-LRU leaf. Masked victims walk
// the tree but force turns toward subtrees that still contain permitted
// ways, which is exactly how a masked hardware PLRU behaves.
//
// numWays must be a power of two for the tree shape to be well formed; New
// validates this.
type treePLRU struct {
	numWays int
	bits    [][]bool // [set][node]; node 0 is the root
}

// NewTreePLRU returns a tree pseudo-LRU policy. numWays must be a power of
// two; anything else panics rather than silently degrading, because a
// malformed tree would skew experiments.
func NewTreePLRU(numSets, numWays int) Policy {
	if numWays&(numWays-1) != 0 || numWays == 0 {
		panic("replacement: tree PLRU requires a power-of-two way count")
	}
	p := &treePLRU{numWays: numWays}
	p.bits = make([][]bool, numSets)
	for i := range p.bits {
		p.bits[i] = make([]bool, numWays-1)
	}
	return p
}

func (p *treePLRU) Touch(set, way int) {
	if p.numWays == 1 {
		return
	}
	node, lo, hi := 0, 0, p.numWays
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			// Accessed left: point the bit right (away from the access).
			p.bits[set][node] = true
			node, hi = 2*node+1, mid
		} else {
			p.bits[set][node] = false
			node, lo = 2*node+2, mid
		}
	}
}

// subtreeMask returns the portion of mask covering ways [lo, hi).
func subtreeMask(mask Mask, lo, hi int) Mask {
	return mask & (Range(lo, hi))
}

func (p *treePLRU) Victim(set int, mask Mask, valid func(int) bool) int {
	mask = normalize(mask, p.numWays)
	if w := invalidPermitted(p.numWays, mask, valid); w >= 0 {
		return w
	}
	node, lo, hi := 0, 0, p.numWays
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		goRight := p.bits[set][node]
		// Force the turn if the preferred subtree holds no permitted way.
		if goRight && subtreeMask(mask, mid, hi) == 0 {
			goRight = false
		} else if !goRight && subtreeMask(mask, lo, mid) == 0 {
			goRight = true
		}
		if goRight {
			node, lo = 2*node+2, mid
		} else {
			node, hi = 2*node+1, mid
		}
	}
	return lo
}

func (p *treePLRU) Invalidate(set, way int) {}

func (p *treePLRU) Reset() {
	for i := range p.bits {
		for j := range p.bits[i] {
			p.bits[i][j] = false
		}
	}
}

func (p *treePLRU) Name() string { return string(TreePLRU) }

// fifo replaces ways in fill order. Each set keeps the fill time per way;
// hits do not update it.
type fifo struct {
	numWays int
	filled  [][]uint64
	clock   []uint64
	present [][]bool
}

// NewFIFO returns a first-in-first-out policy.
func NewFIFO(numSets, numWays int) Policy {
	p := &fifo{numWays: numWays}
	p.filled = make([][]uint64, numSets)
	p.present = make([][]bool, numSets)
	for i := range p.filled {
		p.filled[i] = make([]uint64, numWays)
		p.present[i] = make([]bool, numWays)
	}
	p.clock = make([]uint64, numSets)
	return p
}

func (p *fifo) Touch(set, way int) {
	// Only the first touch after an invalidate (i.e. the fill) advances the
	// queue position; hits leave FIFO order alone.
	if p.present[set][way] {
		return
	}
	p.clock[set]++
	p.filled[set][way] = p.clock[set]
	p.present[set][way] = true
}

func (p *fifo) Victim(set int, mask Mask, valid func(int) bool) int {
	mask = normalize(mask, p.numWays)
	if w := invalidPermitted(p.numWays, mask, valid); w >= 0 {
		return w
	}
	best, bestT := -1, ^uint64(0)
	for w := 0; w < p.numWays; w++ {
		if !mask.Has(w) {
			continue
		}
		if t := p.filled[set][w]; t < bestT {
			best, bestT = w, t
		}
	}
	if best >= 0 {
		p.present[set][best] = false
	}
	return best
}

func (p *fifo) Invalidate(set, way int) { p.present[set][way] = false; p.filled[set][way] = 0 }

func (p *fifo) Reset() {
	for i := range p.filled {
		for w := range p.filled[i] {
			p.filled[i][w] = 0
			p.present[i][w] = false
		}
		p.clock[i] = 0
	}
}

func (p *fifo) Name() string { return string(FIFO) }

// random picks a uniformly random permitted way using a small deterministic
// xorshift generator, so runs are reproducible for a given seed.
type random struct {
	numWays int
	seed    uint64
	state   uint64
}

// NewRandom returns a seeded random-replacement policy.
func NewRandom(numSets, numWays int, seed uint64) Policy {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &random{numWays: numWays, seed: seed, state: seed}
}

func (p *random) next() uint64 {
	// xorshift64*
	x := p.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.state = x
	return x * 0x2545f4914f6cdd1d
}

func (p *random) Touch(set, way int) {}

func (p *random) Victim(set int, mask Mask, valid func(int) bool) int {
	mask = normalize(mask, p.numWays)
	if w := invalidPermitted(p.numWays, mask, valid); w >= 0 {
		return w
	}
	ways := mask.Ways(p.numWays)
	return ways[int(p.next()%uint64(len(ways)))]
}

func (p *random) Invalidate(set, way int) {}
func (p *random) Reset()                  { p.state = p.seed }
func (p *random) Name() string            { return string(Random) }
