package replacement

import "testing"

// Table-driven partition behavior across every policy: single-column masks,
// disjoint partitions, and masks narrowed while lines are resident. These
// schedules double as fixtures for the naive reference model in
// internal/oracle — the conformance harness replays equivalent scripts and
// must see identical victims.

// partAllValid treats every way as holding a valid line, forcing a real
// replacement decision.
func partAllValid(int) bool { return true }

// policies returns one fresh instance of each policy for a 4-set, 4-way
// cache.
func policies() []struct {
	name string
	pol  Policy
} {
	return []struct {
		name string
		pol  Policy
	}{
		{"lru", NewLRU(4, 4)},
		{"plru", NewTreePLRU(4, 4)},
		{"fifo", NewFIFO(4, 4)},
		{"random", NewRandom(4, 4, 1)},
	}
}

// touchAll fills a set in way order, as a cold cache would.
func touchAll(p Policy, set, ways int) {
	for w := 0; w < ways; w++ {
		p.Touch(set, w)
	}
}

func TestSingleColumnMask(t *testing.T) {
	// With exactly one permitted column there is no decision to make: every
	// policy must return that way, whatever its recency state says.
	for _, tc := range policies() {
		t.Run(tc.name, func(t *testing.T) {
			touchAll(tc.pol, 0, 4)
			for want := 0; want < 4; want++ {
				for round := 0; round < 3; round++ {
					if got := tc.pol.Victim(0, Of(want), partAllValid); got != want {
						t.Fatalf("mask %b: victim %d, want %d", uint64(Of(want)), got, want)
					}
					tc.pol.Touch(0, want)
				}
			}
		})
	}
}

func TestDisjointPartitions(t *testing.T) {
	// Two tints split the set {0,1} / {2,3}: victims under one partition
	// must never land in the other, no matter how the schedule interleaves.
	left, right := Of(0, 1), Of(2, 3)
	for _, tc := range policies() {
		t.Run(tc.name, func(t *testing.T) {
			touchAll(tc.pol, 1, 4)
			for i := 0; i < 64; i++ {
				mask := left
				if i%2 == 1 {
					mask = right
				}
				got := tc.pol.Victim(1, mask, partAllValid)
				if !mask.Has(got) {
					t.Fatalf("round %d: victim %d outside partition %b", i, got, uint64(mask))
				}
				tc.pol.Touch(1, got)
			}
		})
	}
}

func TestMaskNarrowingWhileResident(t *testing.T) {
	// A tint's mask shrinks from {0,1,2,3} to {3} while its lines are
	// resident (the paper's instant-repartition case). Policy state built
	// under the wide mask must not leak victims outside the narrowed one.
	for _, tc := range policies() {
		t.Run(tc.name, func(t *testing.T) {
			touchAll(tc.pol, 2, 4)
			// Build recency pressure that, unmasked, would pick way 0.
			tc.pol.Touch(2, 3)
			tc.pol.Touch(2, 2)
			tc.pol.Touch(2, 1)
			narrow := Of(3)
			if got := tc.pol.Victim(2, narrow, partAllValid); got != 3 {
				t.Fatalf("narrowed mask: victim %d, want 3", got)
			}
		})
	}
}

func TestExactVictimsUnderPartition(t *testing.T) {
	// Deterministic policies must pick the exact way their discipline
	// names inside the partition, not merely any permitted way.
	t.Run("lru", func(t *testing.T) {
		p := NewLRU(4, 4)
		touchAll(p, 0, 4) // recency 0 < 1 < 2 < 3
		if got := p.Victim(0, Of(2, 3), partAllValid); got != 2 {
			t.Fatalf("LRU victim %d, want least-recent permitted way 2", got)
		}
		p.Touch(0, 2)
		if got := p.Victim(0, Of(2, 3), partAllValid); got != 3 {
			t.Fatalf("after touching 2: LRU victim %d, want 3", got)
		}
	})
	t.Run("fifo", func(t *testing.T) {
		p := NewFIFO(4, 4)
		touchAll(p, 0, 4) // fill order 0,1,2,3
		// Hits must not advance the queue.
		p.Touch(0, 1)
		p.Touch(0, 1)
		if got := p.Victim(0, Of(1, 2), partAllValid); got != 1 {
			t.Fatalf("FIFO victim %d, want first-filled permitted way 1", got)
		}
	})
	t.Run("plru", func(t *testing.T) {
		p := NewTreePLRU(4, 4)
		touchAll(p, 0, 4) // all pointers aim at way 0
		if got := p.Victim(0, All(4), partAllValid); got != 0 {
			t.Fatalf("PLRU unmasked victim %d, want 0", got)
		}
		// Forcing the walk into the right subtree lands on way 2.
		if got := p.Victim(0, Of(2, 3), partAllValid); got != 2 {
			t.Fatalf("PLRU forced-turn victim %d, want 2", got)
		}
	})
}

func TestInvalidPermittedWayWins(t *testing.T) {
	// Every policy must prefer the lowest permitted invalid way over
	// evicting a valid line, even when its own state points elsewhere.
	validExcept := func(invalid int) func(int) bool {
		return func(w int) bool { return w != invalid }
	}
	for _, tc := range policies() {
		t.Run(tc.name, func(t *testing.T) {
			touchAll(tc.pol, 3, 4)
			if got := tc.pol.Victim(3, Of(1, 3), validExcept(3)); got != 3 {
				t.Fatalf("victim %d, want invalid permitted way 3", got)
			}
			// An invalid way outside the mask must not be chosen.
			got := tc.pol.Victim(3, Of(1), validExcept(3))
			if got != 1 {
				t.Fatalf("victim %d, want 1 (invalid way 3 is outside the mask)", got)
			}
		})
	}
}
