package replacement

// lru implements true least-recently-used replacement. Each set keeps a
// recency stamp per way; Victim picks the permitted way with the oldest
// stamp. Stamps are monotone per set, so ties can only involve never-touched
// ways, which are resolved by lowest index.
type lru struct {
	numWays int
	stamp   [][]uint64 // [set][way] last-touch time, 0 = never
	clock   []uint64   // [set] per-set logical clock
}

// NewLRU returns a true-LRU policy for numSets × numWays.
func NewLRU(numSets, numWays int) Policy {
	p := &lru{numWays: numWays}
	p.stamp = make([][]uint64, numSets)
	for i := range p.stamp {
		p.stamp[i] = make([]uint64, numWays)
	}
	p.clock = make([]uint64, numSets)
	return p
}

func (p *lru) Touch(set, way int) {
	p.clock[set]++
	p.stamp[set][way] = p.clock[set]
}

func (p *lru) Victim(set int, mask Mask, valid func(int) bool) int {
	mask = normalize(mask, p.numWays)
	if w := invalidPermitted(p.numWays, mask, valid); w >= 0 {
		return w
	}
	best, bestStamp := -1, ^uint64(0)
	for w := 0; w < p.numWays; w++ {
		if !mask.Has(w) {
			continue
		}
		if s := p.stamp[set][w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

func (p *lru) Invalidate(set, way int) { p.stamp[set][way] = 0 }

func (p *lru) Reset() {
	for i := range p.stamp {
		for w := range p.stamp[i] {
			p.stamp[i][w] = 0
		}
		p.clock[i] = 0
	}
}

func (p *lru) Name() string { return string(LRU) }

// StampsForTest exposes the recency order of a set for white-box tests:
// it returns the ways of the set ordered least- to most-recently used.
func StampsForTest(p Policy, set, numWays int) []int {
	l, ok := p.(*lru)
	if !ok {
		return nil
	}
	order := make([]int, numWays)
	for i := range order {
		order[i] = i
	}
	// insertion sort by stamp; numWays is tiny
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && l.stamp[set][order[j]] < l.stamp[set][order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
