package layout

import (
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
)

// twoPhaseWorkload builds two procedures whose per-phase conflict graphs
// are 2-colorable but whose union is a triangle: phase 1 interleaves S with
// A and then A with B (S–A and A–B conflict; S and B have disjoint
// lifetimes within the phase), phase 2 interleaves S with B. A static
// whole-program layout into 2 columns must co-locate one conflicting pair;
// per-phase layouts are conflict-free, so remapping pays (paper §3.2).
func twoPhaseWorkload() []Phase {
	s := memory.Region{Name: "S", Base: 0, Size: 512}
	a := memory.Region{Name: "A", Base: 8192, Size: 512}
	b := memory.Region{Name: "B", Base: 16384, Size: 512}

	interleave := func(x, y memory.Region, n int) memtrace.Trace {
		var tr memtrace.Trace
		for i := 0; i < n; i++ {
			off := uint64(i % 16 * 32)
			tr = append(tr,
				memtrace.Access{Addr: x.Base + off},
				memtrace.Access{Addr: y.Base + off},
			)
		}
		return tr
	}
	p1 := append(interleave(s, a, 200), interleave(a, b, 200)...)
	return []Phase{
		{Name: "p1", Trace: p1, Vars: []memory.Region{s, a, b}},
		{Name: "p2", Trace: interleave(s, b, 200), Vars: []memory.Region{s, b}},
	}
}

func TestBuildDynamicValidation(t *testing.T) {
	if _, err := BuildDynamic(nil, Machine{Columns: 2, ColumnBytes: 512}, 0); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := BuildDynamic(twoPhaseWorkload(), Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 512}, 0); err == nil {
		t.Error("scratchpad machine accepted for dynamic layout")
	}
}

func TestBuildDynamicDisjointPhasesNeedNoRemap(t *testing.T) {
	// Disjoint variable sets: the paper says no re-assignment is needed —
	// the static whole-program layout covers every phase optimally.
	a := memory.Region{Name: "a", Base: 0, Size: 256}
	b := memory.Region{Name: "b", Base: 8192, Size: 256}
	c := memory.Region{Name: "c", Base: 16384, Size: 256}
	d := memory.Region{Name: "d", Base: 24576, Size: 256}
	mk := func(x, y memory.Region, n int) memtrace.Trace {
		var tr memtrace.Trace
		for i := 0; i < n; i++ {
			off := uint64(i % 8 * 32)
			tr = append(tr, memtrace.Access{Addr: x.Base + off}, memtrace.Access{Addr: y.Base + off})
		}
		return tr
	}
	phases := []Phase{
		{Name: "p1", Trace: mk(a, b, 100), Vars: []memory.Region{a, b}},
		{Name: "p2", Trace: mk(c, d, 100), Vars: []memory.Region{c, d}},
	}
	dp, err := BuildDynamic(phases, Machine{Columns: 4, ColumnBytes: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dp.Decisions {
		if d.Remap {
			t.Errorf("phase %s wants a remap: keep=%d phase=%d", d.Phase, d.KeepCost, d.PhaseCost)
		}
		if d.KeepCost != d.PhaseCost {
			t.Errorf("phase %s: static layout suboptimal for disjoint phases: %d vs %d",
				d.Phase, d.KeepCost, d.PhaseCost)
		}
	}
}

func TestBuildDynamicSharedVariableRemaps(t *testing.T) {
	// Two columns only: the union conflict graph is a triangle, so the
	// whole-program layout co-locates a conflicting pair in some phase and
	// that phase gains from remapping.
	dp, err := BuildDynamic(twoPhaseWorkload(), Machine{Columns: 2, ColumnBytes: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dp.Decisions {
		if d.PhaseCost != 0 {
			t.Errorf("phase %s not conflict-free alone: cost=%d", d.Phase, d.PhaseCost)
		}
	}
	remaps := 0
	for _, d := range dp.Decisions {
		if d.Remap {
			remaps++
			if d.KeepCost <= d.PhaseCost {
				t.Errorf("phase %s remaps without gain: keep=%d phase=%d", d.Phase, d.KeepCost, d.PhaseCost)
			}
		}
	}
	if remaps == 0 {
		t.Errorf("no phase remaps: %+v", dp.Decisions)
	}
}

func TestBuildDynamicThreshold(t *testing.T) {
	// A huge threshold suppresses every remap.
	dp, err := BuildDynamic(twoPhaseWorkload(), Machine{Columns: 2, ColumnBytes: 512}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dp.Decisions {
		if d.Remap {
			t.Errorf("phase %s remaps despite the threshold", d.Phase)
		}
	}
}

func newDynSys() *memsys.System {
	return memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 64),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 2},
		Timing:   memsys.DefaultTiming,
	})
}

func TestExecuteDynamicEndToEnd(t *testing.T) {
	phases := twoPhaseWorkload()
	m := Machine{Columns: 2, ColumnBytes: 512}
	dp, err := BuildDynamic(phases, m, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Dynamic execution.
	sys := newDynSys()
	results, err := ExecuteDynamic(sys, phases, dp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results=%+v", results)
	}
	var dynTotal int64
	for _, r := range results {
		dynTotal += r.Cycles
	}

	// Static execution: the whole-program layout only.
	sys2 := newDynSys()
	if _, err := Apply(dp.Global, sys2, 0); err != nil {
		t.Fatal(err)
	}
	var staticTotal int64
	for _, ph := range phases {
		staticTotal += sys2.Run(ph.Trace)
	}

	if dynTotal >= staticTotal {
		t.Errorf("dynamic layout (%d cycles) not better than static (%d)", dynTotal, staticTotal)
	}
	// The remap bookkeeping must be tiny relative to the win.
	var remapWrites int64
	for _, r := range results {
		remapWrites += r.RemapWrites
	}
	if remapWrites*10 > staticTotal-dynTotal {
		t.Errorf("remap overhead %d not small vs win %d", remapWrites, staticTotal-dynTotal)
	}
}

func TestExecuteDynamicValidation(t *testing.T) {
	phases := twoPhaseWorkload()
	sys := newDynSys()
	if _, err := ExecuteDynamic(sys, phases, nil); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := ExecuteDynamic(sys, phases, &DynamicPlan{}); err == nil {
		t.Error("mismatched decisions accepted")
	}
}
