package layout

import (
	"testing"

	"colcache/internal/ir"
)

// hotColdProgram: a hot coefficient table read in a tight loop, a streamed
// input, and a rarely-touched error buffer.
func hotColdProgram() *ir.Program {
	return &ir.Program{
		Arrays: []ir.ArrayDecl{
			{Name: "coeff", Bytes: 256},
			{Name: "input", Bytes: 2048},
			{Name: "errbuf", Bytes: 128},
		},
		Body: []ir.Stmt{
			ir.Loop{Count: 64, Body: []ir.Stmt{
				ir.Loop{Count: 8, Body: []ir.Stmt{
					ir.Access{Array: "input"},
					ir.Access{Array: "coeff"},
					ir.Compute{Instrs: 2},
				}},
				ir.Branch{Prob: 0.1, Then: []ir.Stmt{
					ir.Access{Array: "errbuf", Write: true},
				}},
			}},
		},
	}
}

func TestBuildStaticBasics(t *testing.T) {
	plan, err := BuildStatic(hotColdProgram(), Machine{Columns: 4, ColumnBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	// input (2048B) splits into 4 chunks; coeff and errbuf stay whole.
	var chunks, whole int
	for _, a := range plan.Assignments {
		if a.Chunk >= 0 {
			chunks++
		} else {
			whole++
		}
	}
	if chunks != 4 || whole != 2 {
		t.Errorf("chunks=%d whole=%d: %+v", chunks, whole, plan.Assignments)
	}
	// Everything placed in columns (no scratchpad configured).
	for _, a := range plan.Assignments {
		if a.Placement != InColumn {
			t.Errorf("%s#%d placed %s", a.Array, a.Chunk, a.Placement)
		}
		if a.Column < 0 || a.Column >= 4 {
			t.Errorf("column %d out of range", a.Column)
		}
	}
	// coeff is the hottest array: estimated accesses must dominate.
	if col := plan.ColumnOf("coeff", -1); col < 0 {
		t.Error("coeff not assigned")
	}
	if plan.ColumnOf("missing", -1) != -1 {
		t.Error("phantom lookup succeeded")
	}
}

func TestBuildStaticScratchpadPacking(t *testing.T) {
	plan, err := BuildStatic(hotColdProgram(), Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	// The densest array (coeff: 512 accesses / 256B) takes the scratchpad.
	found := false
	for _, a := range plan.Assignments {
		if a.Array == "coeff" {
			if a.Placement != InScratchpad {
				t.Errorf("coeff placed %s", a.Placement)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("coeff missing from plan")
	}
	if plan.ScratchUsed != 256 {
		t.Errorf("scratch used=%d", plan.ScratchUsed)
	}
}

func TestBuildStaticNoCache(t *testing.T) {
	plan, err := BuildStatic(hotColdProgram(), Machine{Columns: 0, ScratchpadBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plan.Assignments {
		if a.Placement == InColumn {
			t.Errorf("%s in a column with no cache", a.Array)
		}
	}
	// Something must be uncached (total footprint 2432 > 512 pad).
	var uncached int
	for _, a := range plan.Assignments {
		if a.Placement == Uncached {
			uncached++
		}
	}
	if uncached == 0 {
		t.Error("nothing uncached despite overflowing the pad")
	}
}

func TestBuildStaticValidation(t *testing.T) {
	if _, err := BuildStatic(hotColdProgram(), Machine{Columns: -1}); err == nil {
		t.Error("negative machine accepted")
	}
	bad := &ir.Program{Body: []ir.Stmt{ir.Access{Array: "ghost"}}}
	if _, err := BuildStatic(bad, Machine{Columns: 2, ColumnBytes: 512}); err == nil {
		t.Error("invalid IR accepted")
	}
}

func TestBuildStaticSeparatesConflicting(t *testing.T) {
	// Two hot arrays accessed in the same loop must land in different
	// columns when two are available.
	p := &ir.Program{
		Arrays: []ir.ArrayDecl{{Name: "x", Bytes: 256}, {Name: "y", Bytes: 256}},
		Body: []ir.Stmt{
			ir.Loop{Count: 100, Body: []ir.Stmt{
				ir.Access{Array: "x"},
				ir.Access{Array: "y"},
			}},
		},
	}
	plan, err := BuildStatic(p, Machine{Columns: 2, ColumnBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ColumnOf("x", -1) == plan.ColumnOf("y", -1) {
		t.Errorf("conflicting arrays share a column: %+v", plan.Assignments)
	}
	if plan.Cost != 0 {
		t.Errorf("cost=%d want 0", plan.Cost)
	}
}
