package layout

import (
	"fmt"

	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/profile"
)

// Dynamic data layout (paper §3.2): run the static algorithm on individual
// procedures rather than the whole program, and remap variables to columns
// between procedures when — and only when — doing so has a significant
// benefit. If procedures have disjoint variable sets there is no need to
// re-assign, since everything can be statically mapped once; when they
// share variables whose access patterns change from procedure to procedure,
// a remap before the procedure is worthwhile.

// Phase is one procedure (or sub-procedure) of an application.
type Phase struct {
	Name  string
	Trace memtrace.Trace
	Vars  []memory.Region
}

// Decision is the plan for one phase: its phase-optimal layout and whether
// entering the phase should remap, given the estimated benefit over keeping
// whatever mapping is installed when the phase starts.
type Decision struct {
	Phase string
	Plan  *Plan
	// KeepCost is the phase's estimated conflict cost under the mapping in
	// effect when the phase starts (the whole-program static mapping,
	// updated by earlier remaps); PhaseCost is the cost under the
	// phase-optimal mapping. Remap is set when KeepCost-PhaseCost exceeds
	// the threshold.
	KeepCost  int64
	PhaseCost int64
	Remap     bool
}

// DynamicPlan is the full §3.2 schedule: a whole-program static mapping
// installed at load time, plus a per-phase remap decision.
type DynamicPlan struct {
	Global    *Plan
	Decisions []Decision
}

// BuildDynamic plans per-procedure layouts. threshold is the minimum
// estimated conflict-count reduction that justifies a remap (0 remaps on
// any improvement). The machine must not have a dedicated scratchpad:
// dynamic repartitioning is a column-cache feature — scratchpad contents
// cannot move between phases without copies.
func BuildDynamic(phases []Phase, m Machine, threshold int64) (*DynamicPlan, error) {
	if m.ScratchpadBytes != 0 {
		return nil, fmt.Errorf("layout: dynamic layout requires a pure column cache (no dedicated scratchpad)")
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("layout: no phases")
	}

	// Whole-program static assignment: concatenated trace over the union of
	// variables. This is the load-time mapping.
	var allTrace memtrace.Trace
	seen := make(map[string]bool)
	var allVars []memory.Region
	for _, ph := range phases {
		allTrace = append(allTrace, ph.Trace...)
		for _, v := range ph.Vars {
			if !seen[v.Name] {
				seen[v.Name] = true
				allVars = append(allVars, v)
			}
		}
	}
	global, err := Build(Request{Trace: allTrace, Vars: allVars, Machine: m})
	if err != nil {
		return nil, err
	}
	current := make(map[string]int)
	for _, c := range global.Chunks {
		if c.Placement == InColumn {
			current[c.Region.Name] = c.Column
		}
	}

	dp := &DynamicPlan{Global: global}
	for _, ph := range phases {
		plan, err := Build(Request{Trace: ph.Trace, Vars: ph.Vars, Machine: m})
		if err != nil {
			return nil, fmt.Errorf("layout: phase %s: %w", ph.Name, err)
		}
		keepCost := phaseCostUnder(ph, m, current)
		d := Decision{
			Phase:     ph.Name,
			Plan:      plan,
			KeepCost:  keepCost,
			PhaseCost: plan.Cost,
			Remap:     keepCost-plan.Cost > threshold,
		}
		if d.Remap {
			for _, c := range plan.Chunks {
				if c.Placement == InColumn {
					current[c.Region.Name] = c.Column
				}
			}
		}
		dp.Decisions = append(dp.Decisions, d)
	}
	return dp, nil
}

// phaseCostUnder evaluates the phase's conflict cost when its chunks keep
// the given column assignment.
func phaseCostUnder(ph Phase, m Machine, col map[string]int) int64 {
	chunks := profile.SplitRegions(ph.Vars, uint64(m.ColumnBytes))
	prof := profile.Build(ph.Trace, chunks)
	vars := prof.Vars()
	var cost int64
	for i := 0; i < len(vars); i++ {
		ci, iOK := col[vars[i].Region.Name]
		if !iOK {
			continue
		}
		for j := i + 1; j < len(vars); j++ {
			cj, jOK := col[vars[j].Region.Name]
			if jOK && ci == cj {
				cost += profile.Weight(vars[i], vars[j])
			}
		}
	}
	return cost
}

// DynamicResult reports one executed phase.
type DynamicResult struct {
	Phase       string
	Cycles      int64
	Remapped    bool
	RemapWrites int64 // page-table + tint-table writes the remap cost
}

// ExecuteDynamic installs the plan's whole-program mapping, then runs the
// phases in order, remapping before each phase whose decision says so. It
// returns per-phase cycle counts; every remap's bookkeeping (page-table and
// tint-table writes) is charged to the machine at one cycle per write — the
// paper's "minor overheads".
func ExecuteDynamic(sys *memsys.System, phases []Phase, dp *DynamicPlan) ([]DynamicResult, error) {
	if dp == nil || len(phases) != len(dp.Decisions) {
		return nil, fmt.Errorf("layout: plan does not match %d phases", len(phases))
	}
	apply := func(p *Plan) (int64, error) {
		before := sys.PageTable().Writes() + sys.Tints().Remaps()
		if _, err := Apply(p, sys, 0); err != nil {
			return 0, err
		}
		writes := sys.PageTable().Writes() + sys.Tints().Remaps() - before
		sys.AddCycles(writes)
		return writes, nil
	}
	if _, err := apply(dp.Global); err != nil {
		return nil, fmt.Errorf("layout: installing static mapping: %w", err)
	}
	var out []DynamicResult
	for i, ph := range phases {
		res := DynamicResult{Phase: ph.Name}
		if dp.Decisions[i].Remap {
			writes, err := apply(dp.Decisions[i].Plan)
			if err != nil {
				return nil, fmt.Errorf("layout: remapping for %s: %w", ph.Name, err)
			}
			res.Remapped = true
			res.RemapWrites = writes
		}
		res.Cycles = sys.Run(ph.Trace) + res.RemapWrites
		out = append(out, res)
	}
	return out, nil
}
