package layout

import (
	"fmt"
	"sort"

	"colcache/internal/graph"
	"colcache/internal/ir"
)

// StaticAssignment places one array (or chunk of one) using the compile-time
// program-analysis method: no run, no addresses — just the IR estimates.
type StaticAssignment struct {
	Array     string
	Chunk     int // chunk index within the array; -1 when the array was not split
	Bytes     uint64
	Placement Placement
	Column    int // valid when Placement == InColumn
	// EstimatedAccesses is the analysis's expected access count for this
	// chunk.
	EstimatedAccesses float64
}

// StaticPlan is the result of BuildStatic.
type StaticPlan struct {
	Assignments []StaticAssignment
	Cost        int64
	ScratchUsed uint64
}

// ColumnOf returns the column assigned to the named array's chunk (-1 for a
// whole array), or -1 if it is not in a column.
func (p *StaticPlan) ColumnOf(array string, chunk int) int {
	for _, a := range p.Assignments {
		if a.Array == array && a.Chunk == chunk && a.Placement == InColumn {
			return a.Column
		}
	}
	return -1
}

// chunkEst is one vertex of the static conflict graph.
type chunkEst struct {
	array string
	chunk int
	bytes uint64
	est   *ir.ArrayEstimate
}

// BuildStatic runs the layout algorithm from static IR analysis instead of a
// profile (the paper's "program analysis method", §3.1.1): array access
// counts and life-times are estimated from loop iteration counts and branch
// probabilities, arrays larger than a column are split into chunks whose
// estimated accesses are apportioned uniformly, and the same
// coloring-with-merging assignment runs on the estimated weights.
func BuildStatic(p *ir.Program, m Machine) (*StaticPlan, error) {
	if m.Columns < 0 || m.ColumnBytes < 0 {
		return nil, fmt.Errorf("layout: negative machine dimensions")
	}
	est, err := ir.Analyze(p)
	if err != nil {
		return nil, err
	}

	chunkBytes := uint64(m.ColumnBytes)
	if m.Columns == 0 {
		chunkBytes = m.ScratchpadBytes
	}
	var chunks []chunkEst
	for _, decl := range p.Arrays {
		a := est.Arrays[decl.Name]
		if chunkBytes == 0 || decl.Bytes <= chunkBytes {
			chunks = append(chunks, chunkEst{array: decl.Name, chunk: -1, bytes: decl.Bytes, est: a})
			continue
		}
		n := int((decl.Bytes + chunkBytes - 1) / chunkBytes)
		remaining := decl.Bytes
		for i := 0; i < n; i++ {
			size := chunkBytes
			if remaining < size {
				size = remaining
			}
			remaining -= size
			// Apportion accesses by bytes; life-time is inherited whole
			// (conservative: chunks of a streamed array overlap less in
			// reality, which the profile method captures and this one
			// approximates away — exactly the paper's accuracy trade-off).
			chunks = append(chunks, chunkEst{
				array: decl.Name,
				chunk: i,
				bytes: size,
				est: &ir.ArrayEstimate{
					Name:     fmt.Sprintf("%s#%d", decl.Name, i),
					Bytes:    size,
					Accesses: a.Accesses * float64(size) / float64(decl.Bytes),
					First:    a.First,
					Last:     a.Last,
				},
			})
		}
	}

	plan := &StaticPlan{}
	free := m.ScratchpadBytes

	// Greedy scratchpad packing by estimated access density.
	order := make([]int, len(chunks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		cx, cy := chunks[order[x]], chunks[order[y]]
		dx, dy := 0.0, 0.0
		if cx.bytes > 0 {
			dx = cx.est.Accesses / float64(cx.bytes)
		}
		if cy.bytes > 0 {
			dy = cy.est.Accesses / float64(cy.bytes)
		}
		return dx > dy
	})
	inScratch := make([]bool, len(chunks))
	for _, i := range order {
		c := chunks[i]
		if c.est.Accesses == 0 || c.bytes > free {
			continue
		}
		free -= c.bytes
		inScratch[i] = true
	}
	plan.ScratchUsed = m.ScratchpadBytes - free

	var cacheable []int
	for i, c := range chunks {
		switch {
		case inScratch[i]:
			plan.Assignments = append(plan.Assignments, StaticAssignment{
				Array: c.array, Chunk: c.chunk, Bytes: c.bytes,
				Placement: InScratchpad, EstimatedAccesses: c.est.Accesses,
			})
		case m.Columns == 0:
			plan.Assignments = append(plan.Assignments, StaticAssignment{
				Array: c.array, Chunk: c.chunk, Bytes: c.bytes,
				Placement: Uncached, EstimatedAccesses: c.est.Accesses,
			})
		default:
			cacheable = append(cacheable, i)
		}
	}
	if len(cacheable) > 0 {
		g := graph.New(len(cacheable))
		for x := 0; x < len(cacheable); x++ {
			for y := x + 1; y < len(cacheable); y++ {
				w := ir.Weight(chunks[cacheable[x]].est, chunks[cacheable[y]].est)
				if err := g.SetWeight(x, y, w); err != nil {
					return nil, err
				}
			}
		}
		assign, cost, err := g.ColorInto(m.Columns)
		if err != nil {
			return nil, err
		}
		plan.Cost = cost
		for x, i := range cacheable {
			c := chunks[i]
			plan.Assignments = append(plan.Assignments, StaticAssignment{
				Array: c.array, Chunk: c.chunk, Bytes: c.bytes,
				Placement: InColumn, Column: assign[x], EstimatedAccesses: c.est.Accesses,
			})
		}
	}
	return plan, nil
}
