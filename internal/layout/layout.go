// Package layout implements the paper's data layout algorithm (paper §3):
// assign program variables to the columns of a column cache — or to
// dedicated scratchpad, or to uncached memory when no cache exists — so that
// conflicting variables land in different columns.
//
// The pipeline follows the paper's steps:
//
//  1. Variables larger than a column are split into column-sized chunks;
//     (aggregation of small scalars happens naturally: allocators emit them
//     as one region).
//  2. A complete weighted conflict graph is built over the chunks, with
//     w(vi,vj) = MIN(n_i^j, n_j^i) computed from a profile of a
//     representative run (or from static IR estimates).
//  3. Chunks are assigned to columns by exact minimum coloring with the
//     min-weight-edge merge heuristic (package graph).
//
// Variables may be forced to scratchpad for predictability (§3.1.3); the
// remaining scratchpad capacity is packed greedily by access density, which
// is what makes the Figure 4 partitions behave as in the paper.
package layout

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"colcache/internal/graph"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/profile"
	"colcache/internal/replacement"
	"colcache/internal/tint"
)

// Machine describes the on-chip memory the layout targets.
type Machine struct {
	Columns         int    // cache columns available to the layout (k in the paper)
	ColumnBytes     int    // capacity of one column (S in the paper)
	ScratchpadBytes uint64 // dedicated scratchpad capacity, 0 for none
}

// Request is the layout input.
type Request struct {
	Trace memtrace.Trace  // representative run (profile method)
	Vars  []memory.Region // program variables
	// ForceScratch names variables that must live in scratchpad for
	// predictability (paper §3.1.3). Planning fails if they do not fit.
	ForceScratch []string
	// AggregateSmallerThan, when positive, groups cacheable chunks smaller
	// than this many bytes into a single pseudo-variable that is assigned
	// one column as a unit — the paper's §3.1 aggregation of small
	// variables ("a set of variables can be aggregated into a single
	// variable which is assigned to a column"). Aggregation also shrinks
	// the conflict graph.
	AggregateSmallerThan uint64
	Machine              Machine
}

// Placement says where one chunk ended up.
type Placement int

const (
	InScratchpad Placement = iota
	InColumn
	Uncached
)

func (p Placement) String() string {
	switch p {
	case InScratchpad:
		return "scratchpad"
	case InColumn:
		return "column"
	case Uncached:
		return "uncached"
	default:
		return "unknown"
	}
}

// Chunk is one placed unit: a whole variable or a column-sized piece of one.
type Chunk struct {
	Region    memory.Region
	Parent    string // original variable name
	Placement Placement
	Column    int // valid when Placement == InColumn
	Accesses  int64
}

// Plan is the layout result.
type Plan struct {
	Chunks []Chunk
	// Cost is the coloring objective W: total weight of chunk pairs sharing
	// a column (estimated conflicts).
	Cost int64
	// ScratchUsed is the bytes of scratchpad consumed.
	ScratchUsed uint64
}

// ByPlacement returns the chunks with the given placement.
func (p *Plan) ByPlacement(pl Placement) []Chunk {
	var out []Chunk
	for _, c := range p.Chunks {
		if c.Placement == pl {
			out = append(out, c)
		}
	}
	return out
}

// ColumnOf returns the column of the named chunk, or -1.
func (p *Plan) ColumnOf(name string) int {
	for _, c := range p.Chunks {
		if c.Region.Name == name && c.Placement == InColumn {
			return c.Column
		}
	}
	return -1
}

// Build runs the layout algorithm.
func Build(req Request) (*Plan, error) {
	m := req.Machine
	if m.Columns < 0 || m.ColumnBytes < 0 {
		return nil, fmt.Errorf("layout: negative machine dimensions")
	}
	chunkSize := uint64(m.ColumnBytes)
	if m.Columns == 0 {
		// No cache: chunking is only needed to pack scratchpad, so chunk at
		// scratchpad granularity if there is one.
		chunkSize = m.ScratchpadBytes
	}
	chunks := profile.SplitRegions(req.Vars, chunkSize)
	prof := profile.Build(req.Trace, chunks)

	forced := make(map[string]bool, len(req.ForceScratch))
	for _, name := range req.ForceScratch {
		found := false
		for _, v := range req.Vars {
			if v.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("layout: forced variable %q not among program variables", name)
		}
		forced[name] = true
	}

	plan := &Plan{}
	free := m.ScratchpadBytes

	// Pass 1: forced-to-scratchpad variables, by declaration order.
	inScratch := make(map[string]bool)
	for _, c := range chunks {
		if !forced[profile.ParentName(c.Name)] {
			continue
		}
		if c.Size > free {
			return nil, fmt.Errorf("layout: forced variable %s does not fit in scratchpad (%d bytes free)",
				c.Name, free)
		}
		free -= c.Size
		inScratch[c.Name] = true
	}

	// Pass 2: greedy packing of the remaining scratchpad by access density.
	order := make([]*profile.VarProfile, 0, len(chunks))
	for _, c := range chunks {
		order = append(order, prof.MustGet(c.Name))
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Density() > order[j].Density() })
	for _, vp := range order {
		name := vp.Region.Name
		if inScratch[name] || vp.Region.Size > free || vp.Accesses == 0 {
			continue
		}
		free -= vp.Region.Size
		inScratch[name] = true
	}
	plan.ScratchUsed = m.ScratchpadBytes - free

	// Pass 3: remaining chunks go to columns via graph coloring, or are
	// uncached when the partition has no cache. Small chunks may first be
	// aggregated into one pseudo-variable (paper §3.1 step 1).
	var cacheable []*profile.VarProfile
	var small []*profile.VarProfile
	for _, c := range chunks {
		vp := prof.MustGet(c.Name)
		if inScratch[c.Name] {
			plan.Chunks = append(plan.Chunks, Chunk{
				Region: c, Parent: profile.ParentName(c.Name),
				Placement: InScratchpad, Accesses: vp.Accesses,
			})
			continue
		}
		if m.Columns == 0 {
			plan.Chunks = append(plan.Chunks, Chunk{
				Region: c, Parent: profile.ParentName(c.Name),
				Placement: Uncached, Accesses: vp.Accesses,
			})
			continue
		}
		if req.AggregateSmallerThan > 0 && c.Size < req.AggregateSmallerThan {
			small = append(small, vp)
			continue
		}
		cacheable = append(cacheable, vp)
	}
	var members []*profile.VarProfile
	if len(small) >= 2 {
		members = small
		cacheable = append(cacheable, profile.Merge("(aggregated)", small))
	} else {
		cacheable = append(cacheable, small...)
	}
	if len(cacheable) > 0 {
		g := graph.New(len(cacheable))
		for i := 0; i < len(cacheable); i++ {
			for j := i + 1; j < len(cacheable); j++ {
				if err := g.SetWeight(i, j, profile.Weight(cacheable[i], cacheable[j])); err != nil {
					return nil, err
				}
			}
		}
		assign, cost, err := g.ColorInto(m.Columns)
		if err != nil {
			return nil, err
		}
		plan.Cost = cost
		for i, vp := range cacheable {
			if vp.Region.Name == "(aggregated)" && members != nil {
				for _, mvp := range members {
					plan.Chunks = append(plan.Chunks, Chunk{
						Region: mvp.Region, Parent: profile.ParentName(mvp.Region.Name),
						Placement: InColumn, Column: assign[i], Accesses: mvp.Accesses,
					})
				}
				continue
			}
			plan.Chunks = append(plan.Chunks, Chunk{
				Region: vp.Region, Parent: profile.ParentName(vp.Region.Name),
				Placement: InColumn, Column: assign[i], Accesses: vp.Accesses,
			})
		}
	}
	return plan, nil
}

// Apply programs a machine with the plan: scratchpad chunks are placed in
// the dedicated scratchpad, column chunks are tinted to their column, and
// uncached chunks are marked uncached in the page table. columnOffset shifts
// column indices, for machines whose low columns are reserved.
//
// Chunk regions must be page-aligned on sys's geometry, or chunks sharing a
// page would fight over its tint; Apply rejects misaligned plans.
func Apply(plan *Plan, sys *memsys.System, columnOffset int) ([]tint.Tint, error) {
	g := sys.Geometry()
	for _, c := range plan.Chunks {
		if c.Region.Base%uint64(g.PageBytes) != 0 && c.Placement != InScratchpad {
			return nil, fmt.Errorf("layout: chunk %s at %#x not page-aligned (page %d)",
				c.Region.Name, c.Region.Base, g.PageBytes)
		}
	}
	var tints []tint.Tint
	for _, c := range plan.Chunks {
		switch c.Placement {
		case InScratchpad:
			if err := sys.Scratchpad().Place(c.Region); err != nil {
				return nil, err
			}
		case InColumn:
			id, err := sys.MapRegion(c.Region, replacement.Of(c.Column+columnOffset))
			if err != nil {
				return nil, err
			}
			tints = append(tints, id)
		case Uncached:
			sys.PageTable().SetUncachedRange(c.Region.Base, c.Region.Size, true)
		}
	}
	return tints, nil
}

// String renders the plan as one line per chunk, for tool output and logs.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "layout plan: %d chunks, cost W=%d, scratchpad %dB\n",
		len(p.Chunks), p.Cost, p.ScratchUsed)
	for _, c := range p.Chunks {
		where := c.Placement.String()
		if c.Placement == InColumn {
			where = fmt.Sprintf("column %d", c.Column)
		}
		fmt.Fprintf(&b, "  %-16s %6dB %8d accesses -> %s\n",
			c.Region.Name, c.Region.Size, c.Accesses, where)
	}
	return b.String()
}

// WorstCaseCycles computes a guaranteed upper bound on the cycles a trace
// can take under this plan — the analyzable predictability the paper's §2.3
// motivates. Accesses to scratchpad chunks are guaranteed single-cycle.
// If assumeExclusiveColumns is true, chunks that are alone in their column
// and fit it one-to-one are treated as guaranteed hits after a charged
// preload (the column-as-scratchpad emulation; the caller must have made
// the columns exclusive, e.g. by shrinking the default tint — see
// colcache.VerifyIsolation). Everything else is assumed to miss on every
// access. The bound is sound for any replacement policy and any
// interleaving with other isolated work.
func WorstCaseCycles(plan *Plan, t memtrace.Trace, timing memsys.Timing, g memory.Geometry, assumeExclusiveColumns bool) int64 {
	// Classify chunks.
	type class int
	const (
		classMiss class = iota
		classScratch
		classPinned
	)
	perColumn := make(map[int][]Chunk)
	for _, c := range plan.Chunks {
		if c.Placement == InColumn {
			perColumn[c.Column] = append(perColumn[c.Column], c)
		}
	}
	classify := func(c Chunk) class {
		switch c.Placement {
		case InScratchpad:
			return classScratch
		case InColumn:
			if assumeExclusiveColumns && len(perColumn[c.Column]) == 1 {
				return classPinned
			}
		}
		return classMiss
	}
	// Interval list sorted by base for address classification.
	type span struct {
		base, end uint64
		cl        class
	}
	var spans []span
	for _, c := range plan.Chunks {
		spans = append(spans, span{c.Region.Base, c.Region.End(), classify(c)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	find := func(addr uint64) class {
		i := sort.Search(len(spans), func(i int) bool { return spans[i].end > addr })
		if i < len(spans) && addr >= spans[i].base {
			return spans[i].cl
		}
		return classMiss
	}

	var wcet int64
	// Preload cost for pinned columns: one miss per line.
	if assumeExclusiveColumns {
		for _, cs := range perColumn {
			if len(cs) != 1 {
				continue
			}
			lines := int64(len(g.LinesCovering(cs[0].Region.Base, cs[0].Region.Size)))
			wcet += lines * int64(timing.CacheHit+timing.MissPenalty)
		}
	}
	for _, a := range t {
		wcet += int64(a.Think) * int64(timing.NonMemInstr)
		switch find(a.Addr) {
		case classScratch:
			wcet += int64(timing.ScratchpadHit)
		case classPinned:
			wcet += int64(timing.CacheHit)
		default:
			// Worst case: miss with a dirty writeback.
			wcet += int64(timing.CacheHit + timing.MissPenalty + timing.Writeback)
		}
	}
	return wcet
}

// SavePlan writes the plan as JSON to w; LoadPlan reads it back. Plans are
// plain data (chunk regions, placements, columns), so a layout computed
// offline by layouttool can be applied by any tool via Apply.
func SavePlan(w io.Writer, p *Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadPlan reads a plan written by SavePlan and validates its placements.
func LoadPlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("layout: decoding plan: %w", err)
	}
	for _, c := range p.Chunks {
		switch c.Placement {
		case InScratchpad, InColumn, Uncached:
		default:
			return nil, fmt.Errorf("layout: chunk %s has invalid placement %d", c.Region.Name, c.Placement)
		}
		if c.Placement == InColumn && c.Column < 0 {
			return nil, fmt.Errorf("layout: chunk %s has negative column", c.Region.Name)
		}
	}
	return &p, nil
}
