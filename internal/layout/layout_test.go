package layout

import (
	"bytes"
	"strings"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/workloads/mpeg"
)

// interleavedTrace builds a trace where two variables conflict heavily and a
// third runs in a disjoint phase.
func interleavedTrace(a, b, c memory.Region) memtrace.Trace {
	var tr memtrace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr,
			memtrace.Access{Addr: a.Base + uint64(i%int(a.Size))},
			memtrace.Access{Addr: b.Base + uint64(i%int(b.Size))},
		)
	}
	for i := 0; i < 100; i++ {
		tr = append(tr, memtrace.Access{Addr: c.Base + uint64(i%int(c.Size))})
	}
	return tr
}

func threeVars() (a, b, c memory.Region, vars []memory.Region) {
	a = memory.Region{Name: "a", Base: 0, Size: 256}
	b = memory.Region{Name: "b", Base: 4096, Size: 256}
	c = memory.Region{Name: "c", Base: 8192, Size: 256}
	return a, b, c, []memory.Region{a, b, c}
}

func TestBuildSeparatesConflictingVars(t *testing.T) {
	a, b, c, vars := threeVars()
	plan, err := Build(Request{
		Trace:   interleavedTrace(a, b, c),
		Vars:    vars,
		Machine: Machine{Columns: 2, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := plan.ColumnOf("a"), plan.ColumnOf("b")
	if ca < 0 || cb < 0 {
		t.Fatalf("a or b not in a column: %+v", plan.Chunks)
	}
	if ca == cb {
		t.Errorf("conflicting variables share column %d", ca)
	}
	if plan.Cost != 0 {
		t.Errorf("cost=%d want 0 (2 columns suffice: c is disjoint)", plan.Cost)
	}
}

func TestBuildScratchpadPacksByDensity(t *testing.T) {
	a, b, c, vars := threeVars()
	// a and b each have 100 accesses over 256B, c has 100 too — equal
	// density; with 256 bytes of scratchpad exactly one fits.
	plan, err := Build(Request{
		Trace:   interleavedTrace(a, b, c),
		Vars:    vars,
		Machine: Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.ByPlacement(InScratchpad)); got != 1 {
		t.Errorf("scratchpad chunks=%d want 1", got)
	}
	if plan.ScratchUsed != 256 {
		t.Errorf("scratch used=%d", plan.ScratchUsed)
	}
}

func TestBuildForceScratch(t *testing.T) {
	a, b, c, vars := threeVars()
	plan, err := Build(Request{
		Trace:        interleavedTrace(a, b, c),
		Vars:         vars,
		ForceScratch: []string{"c"},
		Machine:      Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.ByPlacement(InScratchpad)
	if len(sp) != 1 || sp[0].Parent != "c" {
		t.Errorf("scratchpad=%v", sp)
	}
}

func TestBuildForceScratchErrors(t *testing.T) {
	a, b, c, vars := threeVars()
	tr := interleavedTrace(a, b, c)
	if _, err := Build(Request{
		Trace: tr, Vars: vars,
		ForceScratch: []string{"nope"},
		Machine:      Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 1024},
	}); err == nil {
		t.Error("unknown forced variable accepted")
	}
	if _, err := Build(Request{
		Trace: tr, Vars: vars,
		ForceScratch: []string{"c"},
		Machine:      Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 100},
	}); err == nil {
		t.Error("unfittable forced variable accepted")
	}
}

func TestBuildNoCacheMarksUncached(t *testing.T) {
	a, b, c, vars := threeVars()
	plan, err := Build(Request{
		Trace:   interleavedTrace(a, b, c),
		Vars:    vars,
		Machine: Machine{Columns: 0, ColumnBytes: 0, ScratchpadBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.ByPlacement(Uncached)); got != 1 {
		t.Errorf("uncached=%d want 1 (two fit the 512B pad)", got)
	}
	if got := len(plan.ByPlacement(InColumn)); got != 0 {
		t.Errorf("column chunks with no cache: %d", got)
	}
}

func TestBuildSplitsLargeVariables(t *testing.T) {
	big := memory.Region{Name: "big", Base: 0, Size: 1200}
	var tr memtrace.Trace
	for i := 0; i < 300; i++ {
		tr = append(tr, memtrace.Access{Addr: uint64(i * 4)})
	}
	plan, err := Build(Request{
		Trace:   tr,
		Vars:    []memory.Region{big},
		Machine: Machine{Columns: 4, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chunks) != 3 {
		t.Fatalf("chunks=%d want 3", len(plan.Chunks))
	}
	for _, c := range plan.Chunks {
		if c.Parent != "big" {
			t.Errorf("chunk parent=%q", c.Parent)
		}
		if c.Region.Size > 512 {
			t.Errorf("chunk %s too big: %d", c.Region.Name, c.Region.Size)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Request{Machine: Machine{Columns: -1}}); err == nil {
		t.Error("negative columns accepted")
	}
}

func TestPlacementString(t *testing.T) {
	if InScratchpad.String() == "" || InColumn.String() == "" ||
		Uncached.String() == "" || Placement(99).String() != "unknown" {
		t.Error("placement strings broken")
	}
}

func sys2KB() *memsys.System {
	return memsys.MustNew(memsys.Config{
		Geometry:        memory.MustGeometry(32, 64),
		Cache:           cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:          memsys.DefaultTiming,
		ScratchpadBytes: 4096,
	})
}

func TestApplyProgramsTheMachine(t *testing.T) {
	a, b, c, vars := threeVars()
	tr := interleavedTrace(a, b, c)
	plan, err := Build(Request{
		Trace: tr, Vars: vars,
		Machine: Machine{Columns: 4, ColumnBytes: 512, ScratchpadBytes: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := sys2KB()
	if _, err := Apply(plan, sys, 0); err != nil {
		t.Fatal(err)
	}
	// Scratch chunk answered by the scratchpad.
	sp := plan.ByPlacement(InScratchpad)
	if len(sp) == 1 {
		if !sys.Scratchpad().Contains(sp[0].Region.Base) {
			t.Error("scratch chunk not in scratchpad")
		}
	}
	// Column chunks: run the trace and check lines land inside the
	// assigned columns only.
	sys.Run(tr)
	for _, ch := range plan.ByPlacement(InColumn) {
		for _, ln := range sys.Geometry().LinesCovering(ch.Region.Base, ch.Region.Size) {
			w := sys.Cache().WayOf(ln * 32)
			if w >= 0 && w != ch.Column {
				t.Errorf("chunk %s line %#x in way %d want %d", ch.Region.Name, ln*32, w, ch.Column)
			}
		}
	}
}

func TestApplyColumnOffset(t *testing.T) {
	a := memory.Region{Name: "a", Base: 0, Size: 64}
	tr := memtrace.Trace{{Addr: 0}, {Addr: 32}}
	plan, err := Build(Request{
		Trace: tr, Vars: []memory.Region{a},
		Machine: Machine{Columns: 1, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := sys2KB()
	if _, err := Apply(plan, sys, 2); err != nil {
		t.Fatal(err)
	}
	sys.Run(tr)
	if w := sys.Cache().WayOf(0); w != 2 {
		t.Errorf("way=%d want 2 (offset applied)", w)
	}
}

func TestApplyRejectsMisaligned(t *testing.T) {
	a := memory.Region{Name: "a", Base: 33, Size: 64} // not page-aligned (64B pages)
	tr := memtrace.Trace{{Addr: 40}}
	plan, err := Build(Request{
		Trace: tr, Vars: []memory.Region{a},
		Machine: Machine{Columns: 1, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(plan, sys2KB(), 0); err == nil {
		t.Error("misaligned chunk accepted")
	}
}

// TestLayoutIdctKeepsTablesResident is the paper's headline behaviour: for
// idct, the layout isolates the hot cosine table from the streaming blocks,
// so the table stays resident while blocks stream through other columns.
func TestLayoutIdctKeepsTablesResident(t *testing.T) {
	prog := mpeg.Idct(mpeg.Config{})
	plan, err := Build(Request{
		Trace:   prog.Trace,
		Vars:    prog.Vars,
		Machine: Machine{Columns: 4, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	cosCol := plan.ColumnOf("cos")
	if cosCol < 0 {
		t.Fatal("cos not assigned a column")
	}
	// No streaming block chunk may share the cosine table's column while
	// both are live — verify via plan cost attribution: cos's column holds
	// no chunk of "blocks" with overlapping lifetime. Simpler and stronger:
	// run it and verify cos never misses after its first touches.
	sys := memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 64),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
	if _, err := Apply(plan, sys, 0); err != nil {
		t.Fatal(err)
	}
	cosR := prog.MustVar("cos")
	sys.Preload(cosR)
	sys.ResetStats()
	sys.Run(prog.Trace)
	// Count misses on the cos region: replay-probe each access.
	misses := 0
	for _, a := range prog.Trace {
		if cosR.Contains(a.Addr) {
			if _, hit := sys.Cache().Probe(a.Addr); !hit {
				misses++
			}
		}
	}
	if misses != 0 {
		t.Errorf("cosine table lost residency %d times", misses)
	}
}

func TestAggregationGroupsSmallVariables(t *testing.T) {
	// Four tiny scalars + one big array: aggregation packs the scalars into
	// one column as a unit.
	var vars []memory.Region
	var tr memtrace.Trace
	for i := 0; i < 4; i++ {
		r := memory.Region{Name: string(rune('a' + i)), Base: uint64(i) * 4096, Size: 64}
		vars = append(vars, r)
	}
	big := memory.Region{Name: "big", Base: 1 << 20, Size: 512}
	vars = append(vars, big)
	for i := 0; i < 100; i++ {
		for _, r := range vars {
			tr = append(tr, memtrace.Access{Addr: r.Base + uint64(i)%r.Size})
		}
	}
	plan, err := Build(Request{
		Trace:                tr,
		Vars:                 vars,
		AggregateSmallerThan: 128,
		Machine:              Machine{Columns: 4, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	// All four scalars share one column; big is elsewhere.
	cols := map[int]bool{}
	for _, c := range plan.Chunks {
		if c.Region.Size == 64 {
			cols[c.Column] = true
		}
	}
	if len(cols) != 1 {
		t.Errorf("scalars spread over %d columns: %+v", len(cols), plan.Chunks)
	}
	for _, c := range plan.Chunks {
		if c.Parent == "big" && cols[c.Column] {
			t.Errorf("big shares the scalars' column despite conflicts")
		}
	}
	if len(plan.Chunks) != 5 {
		t.Errorf("chunks=%d want 5 (each member placed)", len(plan.Chunks))
	}
}

func TestAggregationSingleSmallFallsThrough(t *testing.T) {
	a := memory.Region{Name: "a", Base: 0, Size: 64}
	tr := memtrace.Trace{{Addr: 0}, {Addr: 32}}
	plan, err := Build(Request{
		Trace: tr, Vars: []memory.Region{a},
		AggregateSmallerThan: 128,
		Machine:              Machine{Columns: 2, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chunks) != 1 || plan.Chunks[0].Region.Name != "a" {
		t.Errorf("chunks=%+v", plan.Chunks)
	}
}

func TestPlanString(t *testing.T) {
	a, b, c, vars := threeVars()
	plan, err := Build(Request{
		Trace:   interleavedTrace(a, b, c),
		Vars:    vars,
		Machine: Machine{Columns: 2, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"cost W=", "a", "column"} {
		if !containsStr(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWorstCaseCyclesBoundsMeasured(t *testing.T) {
	prog := mpeg.Idct(mpeg.Config{})
	plan, err := Build(Request{
		Trace:   prog.Trace,
		Vars:    prog.Vars,
		Machine: Machine{Columns: 4, ColumnBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 64),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
	if _, err := Apply(plan, sys, 0); err != nil {
		t.Fatal(err)
	}
	measured := sys.Run(prog.Trace)
	bound := WorstCaseCycles(plan, prog.Trace, memsys.DefaultTiming, sys.Geometry(), false)
	if measured > bound {
		t.Errorf("measured %d exceeds WCET bound %d", measured, bound)
	}
	// With exclusivity assumed, the bound tightens but must stay sound.
	tight := WorstCaseCycles(plan, prog.Trace, memsys.DefaultTiming, sys.Geometry(), true)
	if measured > tight {
		t.Errorf("measured %d exceeds exclusive WCET bound %d", measured, tight)
	}
	if tight > bound {
		t.Errorf("exclusive bound %d looser than plain %d", tight, bound)
	}
}

func TestWorstCaseCyclesScratchExact(t *testing.T) {
	// A program entirely in scratchpad has an exact, tight bound.
	a := memory.Region{Name: "a", Base: 0, Size: 256}
	var tr memtrace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, memtrace.Access{Addr: uint64(i % 8 * 32), Think: 1})
	}
	plan, err := Build(Request{
		Trace: tr, Vars: []memory.Region{a},
		Machine: Machine{Columns: 0, ScratchpadBytes: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := memsys.MustNew(memsys.Config{
		Geometry:        memory.MustGeometry(32, 64),
		Cache:           cache.Config{LineBytes: 32, NumSets: 16, NumWays: 1},
		Timing:          memsys.DefaultTiming,
		ScratchpadBytes: 512,
	})
	if _, err := Apply(plan, sys, 0); err != nil {
		t.Fatal(err)
	}
	measured := sys.Run(tr)
	bound := WorstCaseCycles(plan, tr, memsys.DefaultTiming, sys.Geometry(), false)
	if measured != bound {
		t.Errorf("scratchpad-only bound %d not exact (measured %d)", bound, measured)
	}
}

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	a, b, c, vars := threeVars()
	plan, err := Build(Request{
		Trace:   interleavedTrace(a, b, c),
		Vars:    vars,
		Machine: Machine{Columns: 2, ColumnBytes: 512, ScratchpadBytes: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Chunks) != len(plan.Chunks) || got.Cost != plan.Cost || got.ScratchUsed != plan.ScratchUsed {
		t.Errorf("round trip changed plan: %+v vs %+v", got, plan)
	}
	for i := range plan.Chunks {
		if got.Chunks[i] != plan.Chunks[i] {
			t.Errorf("chunk %d changed: %+v vs %+v", i, got.Chunks[i], plan.Chunks[i])
		}
	}
	// A loaded plan applies like the original.
	sys := sys2KB()
	if _, err := Apply(got, sys, 0); err != nil {
		t.Errorf("loaded plan failed to apply: %v", err)
	}
}

func TestLoadPlanValidation(t *testing.T) {
	if _, err := LoadPlan(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := LoadPlan(strings.NewReader(`{"Chunks":[{"Placement":9}]}`)); err == nil {
		t.Error("invalid placement accepted")
	}
	if _, err := LoadPlan(strings.NewReader(`{"Chunks":[{"Placement":1,"Column":-2}]}`)); err == nil {
		t.Error("negative column accepted")
	}
}
