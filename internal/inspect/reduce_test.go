package inspect

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/replacement"
	"colcache/internal/workloads/synth"
)

func testSystem(t *testing.T) (*memsys.System, memtrace.Trace) {
	t.Helper()
	sys, err := memsys.New(memsys.Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableL2(cache.Config{LineBytes: 32, NumSets: 64, NumWays: 8}, 6, false); err != nil {
		t.Fatal(err)
	}
	sys.EnablePerTintStats()
	// The upper half of the streamed buffer is tinted: its tail is what the
	// final sweep leaves resident, so end-of-run frames still show the tint.
	if _, err := sys.MapRegion(memory.Region{Name: "hot", Base: 8 << 10, Size: 8 << 10}, replacement.Mask(0b0011)); err != nil {
		t.Fatal(err)
	}
	return sys, synth.Stream(0, 16<<10, 4, 2).Trace
}

// runFrames executes the trace with inspection at the given stride and
// returns the marshaled frame sequence.
func runFrames(t *testing.T, every int) [][]byte {
	t.Helper()
	sys, trace := testSystem(t)
	red := NewSystemReducer(sys)
	var frames [][]byte
	var f Frame
	_, err := sys.RunContext(context.Background(), trace, memsys.RunOptions{
		InspectEvery: every,
		OnInspect: func(done int, st memsys.Stats) {
			red.Reduce(&f, int64(done), done == len(trace))
			b, err := json.Marshal(&f)
			if err != nil {
				t.Errorf("marshal: %v", err)
			}
			frames = append(frames, b)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

func TestSystemReducerFrames(t *testing.T) {
	frames := runFrames(t, 1024)
	if len(frames) < 4 {
		t.Fatalf("got %d frames, want several", len(frames))
	}
	var first, last Frame
	if err := json.Unmarshal(frames[0], &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(frames[len(frames)-1], &last); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 0 || first.Done != 1024 {
		t.Fatalf("first frame seq=%d done=%d, want 0/1024", first.Seq, first.Done)
	}
	if !last.Final {
		t.Fatal("last frame not marked final")
	}
	if len(last.Caches) != 2 || last.Caches[0].Name != "l1" || last.Caches[1].Name != "l2" {
		t.Fatalf("cache frames = %+v, want [l1 l2]", last.Caches)
	}
	l1 := last.Caches[0]
	if l1.Sets != 16 || l1.Ways != 4 || len(l1.Occ) != 64 || len(l1.MSI) != 64 {
		t.Fatalf("l1 shape %dx%d occ=%d, want 16x4/64", l1.Sets, l1.Ways, len(l1.Occ))
	}
	// A streamed 16K buffer saturates a 2K L1: every line valid, and the
	// sweep's pages carry the "hot" tint (id 1 → tag 2) in the masked
	// columns plus the rest of the buffer under the default tint (tag 1).
	if l1.Valid != 64 {
		t.Fatalf("l1 valid = %d, want 64 (saturated)", l1.Valid)
	}
	sawHot := false
	for _, tag := range l1.Occ {
		if tag == 0 {
			t.Fatal("valid count says saturated but an occ cell is 0")
		}
		if tag == 2 {
			sawHot = true
		}
	}
	if !sawHot {
		t.Fatal("no line tagged with the hot tint")
	}
	if l1.Valid != l1.Shared+l1.Modified {
		t.Fatalf("valid %d != shared %d + modified %d", l1.Valid, l1.Shared, l1.Modified)
	}
	// Masks: default + hot, in id order.
	if len(last.Masks) != 2 || last.Masks[0].ID != 0 || last.Masks[1].ID != 1 ||
		last.Masks[1].Mask != 0b0011 || last.Masks[0].Kind != "tint" {
		t.Fatalf("masks = %+v", last.Masks)
	}
	// Per-tint deltas: summed across frames they must equal the totals.
	var accSum, missSum int64
	for _, raw := range frames {
		var fr Frame
		if err := json.Unmarshal(raw, &fr); err != nil {
			t.Fatal(err)
		}
		for _, d := range fr.TintMiss {
			accSum += d.Accesses
			missSum += d.Misses
		}
		if fr.Caches[0].Misses < fr.Caches[0].MissDelta {
			t.Fatalf("cumulative misses %d < delta %d", fr.Caches[0].Misses, fr.Caches[0].MissDelta)
		}
	}
	if accSum == 0 || missSum == 0 {
		t.Fatal("per-tint deltas never accumulated")
	}
	if missSum != last.Caches[0].Misses {
		t.Fatalf("tint miss deltas sum to %d, L1 total is %d", missSum, last.Caches[0].Misses)
	}
}

// The frame sequence must be a pure function of (config, trace, stride):
// two identical runs produce byte-identical JSON.
func TestSystemReducerDeterministic(t *testing.T) {
	a := runFrames(t, 512)
	b := runFrames(t, 512)
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// Steady-state capture must not allocate: reducers reuse their buffers and
// the frame reuses its slices.
func TestSystemReducerAllocFree(t *testing.T) {
	sys, trace := testSystem(t)
	sys.Run(trace)
	red := NewSystemReducer(sys)
	var f Frame
	red.Reduce(&f, 1, false) // warm-up sizes every buffer
	red.Reduce(&f, 2, false)
	allocs := testing.AllocsPerRun(100, func() {
		red.Reduce(&f, 3, false)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reduce allocates %.1f objects/op, want 0", allocs)
	}
}

func testMachine(t *testing.T) *multicore.Machine {
	t.Helper()
	t0 := synth.Stream(0, 4<<10, 4, 2).Trace
	t1 := synth.Stream(0, 4<<10, 4, 2).Trace
	shifted := make(memtrace.Trace, len(t1))
	for i, a := range t1 {
		a.Addr |= 1 << 32
		shifted[i] = a
	}
	m, err := multicore.New(multicore.Config{
		Geometry:    memory.MustGeometry(32, 1024),
		L1:          cache.Config{LineBytes: 32, NumSets: 8, NumWays: 2},
		L2:          cache.Config{LineBytes: 32, NumSets: 32, NumWays: 4},
		Timing:      memsys.DefaultTiming,
		L2HitCycles: 4,
		Traces:      []memtrace.Trace{t0, shifted},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineReducerFrames(t *testing.T) {
	m := testMachine(t)
	red := NewMachineReducer(m, WindowOwner(m.NumCores(), 32))
	var frames []Frame
	var f Frame
	m.SetInspector(512, func(done int64) {
		red.Reduce(&f, done, false)
		b, err := json.Marshal(&f)
		if err != nil {
			t.Fatal(err)
		}
		var cp Frame
		if err := json.Unmarshal(b, &cp); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, cp)
	})
	if err := m.RunContext(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want several", len(frames))
	}
	last := frames[len(frames)-1]
	if len(last.Caches) != 3 || last.Caches[0].Name != "core0" ||
		last.Caches[1].Name != "core1" || last.Caches[2].Name != "l2" {
		t.Fatalf("cache frames = %+v, want [core0 core1 l2]", last.Caches)
	}
	if len(last.Masks) != 2 || last.Masks[0].Kind != "core" || last.Masks[1].ID != 1 {
		t.Fatalf("masks = %+v", last.Masks)
	}
	// The shared L2 holds lines from both cores' disjoint windows: owner
	// tags 1 (core 0) and 2 (core 1) must both appear.
	var saw [3]bool
	for _, tag := range last.Caches[2].Occ {
		if int(tag) < len(saw) {
			saw[tag] = true
		}
	}
	if !saw[1] || !saw[2] {
		t.Fatalf("L2 occupancy missing a core's lines: tags1=%v tags2=%v", saw[1], saw[2])
	}
	// Per-core L2 deltas ride TintMiss; summed they match the core totals.
	var acc int64
	for _, fr := range frames {
		for _, d := range fr.TintMiss {
			acc += d.Accesses
		}
	}
	want := m.CoreStatsAt(0).L2Accesses + m.CoreStatsAt(1).L2Accesses
	if acc != want {
		t.Fatalf("TintMiss access deltas sum to %d, cores total %d", acc, want)
	}
	if last.Cycles <= 0 || last.Done <= 0 {
		t.Fatalf("last frame cycles=%d done=%d", last.Cycles, last.Done)
	}
}

func TestMachineReducerAllocFree(t *testing.T) {
	m := testMachine(t)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	red := NewMachineReducer(m, WindowOwner(m.NumCores(), 32))
	var f Frame
	red.Reduce(&f, 1, false)
	red.Reduce(&f, 2, false)
	allocs := testing.AllocsPerRun(100, func() {
		red.Reduce(&f, 3, false)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reduce allocates %.1f objects/op, want 0", allocs)
	}
}
