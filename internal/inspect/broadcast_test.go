package inspect

import (
	"sync"
	"testing"
)

func drain(s *Subscriber) [][]byte {
	var out [][]byte
	for b := range s.C {
		out = append(out, b)
	}
	return out
}

func TestBroadcastDeliversInOrder(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(16)
	b.Publish([]byte("f0"))
	b.Publish([]byte("f1"))
	b.Finish("done")
	got := drain(s)
	if len(got) != 2 || string(got[0]) != "f0" || string(got[1]) != "f1" {
		t.Fatalf("delivered %q, want [f0 f1]", got)
	}
	if s.Reason() != "done" {
		t.Fatalf("reason = %q, want done", s.Reason())
	}
	if s.Dropped() != 0 || b.Dropped() != 0 {
		t.Fatalf("dropped %d/%d, want 0/0", s.Dropped(), b.Dropped())
	}
}

// A slow client (full buffer) loses frames without ever blocking Publish;
// the drop is counted per subscriber and in total, and a fast client on
// the same broadcaster misses nothing.
func TestBroadcastSlowClientDrops(t *testing.T) {
	b := NewBroadcaster()
	slow := b.Subscribe(2)
	fast := b.Subscribe(16)
	for i := 0; i < 10; i++ {
		b.Publish([]byte{byte('0' + i)})
	}
	b.Finish("done")
	if got := drain(slow); len(got) != 2 {
		t.Fatalf("slow client got %d frames, want 2 (its buffer depth)", len(got))
	}
	if got := drain(fast); len(got) != 10 {
		t.Fatalf("fast client got %d frames, want all 10", len(got))
	}
	if slow.Dropped() != 8 {
		t.Fatalf("slow dropped = %d, want 8", slow.Dropped())
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast dropped = %d, want 0", fast.Dropped())
	}
	if b.Dropped() != 8 {
		t.Fatalf("total dropped = %d, want 8", b.Dropped())
	}
}

func TestBroadcastFinishSemantics(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(4)
	b.Finish("canceled")
	b.Finish("done") // idempotent: first reason wins
	if _, ok := <-s.C; ok {
		t.Fatal("channel still open after Finish")
	}
	if s.Reason() != "canceled" {
		t.Fatalf("reason = %q, want canceled (first Finish wins)", s.Reason())
	}
	if done, reason := b.Done(); !done || reason != "canceled" {
		t.Fatalf("Done = %v %q, want true canceled", done, reason)
	}
	// Late subscriber: closed channel plus the reason, no hang.
	late := b.Subscribe(4)
	if _, ok := <-late.C; ok {
		t.Fatal("late subscriber's channel open on a finished broadcaster")
	}
	if late.Reason() != "canceled" {
		t.Fatalf("late reason = %q, want canceled", late.Reason())
	}
	b.Publish([]byte("x")) // no-op, must not panic
}

func TestBroadcastUnsubscribe(t *testing.T) {
	b := NewBroadcaster()
	s := b.Subscribe(4)
	b.Unsubscribe(s)
	if _, ok := <-s.C; ok {
		t.Fatal("channel open after Unsubscribe")
	}
	if s.Reason() != "" {
		t.Fatalf("unsubscribed reason = %q, want empty", s.Reason())
	}
	b.Unsubscribe(s) // idempotent
	b.Publish([]byte("x"))
	b.Finish("done")
}

// Publishers, subscribers and finishers racing (run under -race).
func TestBroadcastConcurrent(t *testing.T) {
	b := NewBroadcaster()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := b.Subscribe(1)
			drain(s)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			b.Publish([]byte("f"))
		}
		b.Finish("done")
	}()
	wg.Wait()
}
