package inspect

import (
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/multicore"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

// SystemReducer reduces a single-core memsys.System to occupancy frames.
// It is not safe for concurrent use; drive it from the simulation goroutine
// (the stepper's OnInspect hook), which is also the only place the machine
// state it reads is quiescent.
type SystemReducer struct {
	sys *memsys.System

	l1buf [][]cache.LineState
	l2buf [][]cache.LineState

	prevL1Miss int64
	prevL2Miss int64

	// Cumulative per-tint counters from the previous frame; swapped with
	// curTint each Reduce so neither map is rebuilt.
	prevTint map[tint.Tint]memsys.TintStats
	curTint  map[tint.Tint]memsys.TintStats

	seq int64
}

// NewSystemReducer returns a reducer over sys. Call
// sys.EnablePerTintStats() before running if frames should carry per-tint
// miss deltas; without it TintMiss stays empty.
func NewSystemReducer(sys *memsys.System) *SystemReducer {
	return &SystemReducer{sys: sys}
}

// Reduce fills f with the system's current state. done is the number of
// trace accesses executed (the stepper's inspection-hook argument); final
// marks the run's last frame. Steady-state calls allocate nothing: line
// buffers, tint maps and f's own slices are all reused.
func (r *SystemReducer) Reduce(f *Frame, done int64, final bool) {
	f.Reset()
	f.Seq = r.seq
	r.seq++
	f.Done = done
	f.Final = final

	st := r.sys.Stats()
	f.Cycles = st.Cycles

	tints := r.sys.Tints()
	f.Remaps = tints.Remaps()

	pt := r.sys.PageTable()

	// L1.
	l1 := r.sys.Cache()
	r.l1buf = l1.SnapshotSetsInto(r.l1buf)
	cf := cacheAt(f, 0, "l1", len(r.l1buf), len(r.l1buf[0]))
	reduceTinted(cf, l1, pt, r.l1buf)
	cf.Misses = st.Cache.Misses
	cf.MissDelta = cf.Misses - r.prevL1Miss
	r.prevL1Miss = cf.Misses

	// L2, when attached.
	if l2 := r.sys.L2Cache(); l2 != nil {
		r.l2buf = l2.SnapshotSetsInto(r.l2buf)
		cf2 := cacheAt(f, 1, "l2", len(r.l2buf), len(r.l2buf[0]))
		reduceTinted(cf2, l2, pt, r.l2buf)
		l2st := r.sys.L2Stats()
		cf2.Misses = l2st.Misses
		cf2.MissDelta = cf2.Misses - r.prevL2Miss
		r.prevL2Miss = cf2.Misses
	}

	// Active column masks, in fixed tint-id order.
	for id := 0; id < tints.Count(); id++ {
		f.Masks = append(f.Masks, MaskEntry{
			Kind: "tint",
			ID:   id,
			Name: tints.Name(tint.Tint(id)),
			Mask: uint64(tints.Mask(tint.Tint(id))),
		})
	}

	// Per-tint miss deltas since the previous frame, when attribution is on.
	r.curTint = r.sys.CumulativeTintStats(r.curTint)
	if len(r.curTint) > 0 {
		for id := 0; id < tints.Count(); id++ {
			cur, ok := r.curTint[tint.Tint(id)]
			if !ok {
				continue
			}
			prev := r.prevTint[tint.Tint(id)]
			f.TintMiss = append(f.TintMiss, TintDelta{
				Tint:     id,
				Name:     tints.Name(tint.Tint(id)),
				Accesses: cur.Accesses - prev.Accesses,
				Misses:   cur.Misses - prev.Misses,
			})
		}
	}
	r.prevTint, r.curTint = r.curTint, r.prevTint
}

// reduceTinted fills cf's cell grids from captured lines, tagging each valid
// line by the tint of its page (a side-effect-free page-table read) and
// deriving the cell state from the dirty bit.
func reduceTinted(cf *CacheFrame, c *cache.Cache, pt *vm.PageTable, lines [][]cache.LineState) {
	for set, row := range lines {
		base := set * cf.Ways
		for way, ls := range row {
			i := base + way
			if !ls.Valid {
				cf.Occ[i] = 0
				cf.MSI[i] = CellInvalid
				continue
			}
			cf.Occ[i] = tagByte(int(pt.TintOf(c.AddrOfTag(set, ls.Tag))))
			cf.Valid++
			if ls.Dirty {
				cf.Dirty++
				cf.Modified++
				cf.MSI[i] = CellModified
			} else {
				cf.Shared++
				cf.MSI[i] = CellShared
			}
		}
	}
}

// MachineReducer reduces a multicore.Machine — per-core coherent L1s plus
// the shared column-partitioned L2 — to occupancy frames. Drive it from the
// machine's inspection hook; attaching one forces the serial stepper, so
// the machine is always quiescent when Reduce runs.
type MachineReducer struct {
	m *multicore.Machine

	// owner maps a line address to the core whose trace window it belongs
	// to; nil when cores share an address space and ownership is undefined.
	owner func(memory.Addr) int

	l1bufs [][][]cache.LineState
	l2buf  [][]cache.LineState

	prevL1Miss []int64
	prevL2Miss int64
	prevL2Acc  []int64 // per-core shared-L2 demand probes
	prevL2Mis  []int64 // per-core shared-L2 demand misses

	coreNames []string // "core0".. precomputed: no fmt on the capture path
	tintNames []string // the cores' L2 tint debug names

	seq int64
}

// NewMachineReducer returns a reducer over m. owner, when non-nil, maps a
// line address to the core that owns it, used to tag shared-L2 lines; pass
// WindowOwner(n) for the standard disjoint per-core trace windows, or nil
// when cores share addresses (L2 cells then carry an anonymous tag).
func NewMachineReducer(m *multicore.Machine, owner func(memory.Addr) int) *MachineReducer {
	n := m.NumCores()
	r := &MachineReducer{
		m:          m,
		owner:      owner,
		l1bufs:     make([][][]cache.LineState, n),
		prevL1Miss: make([]int64, n),
		prevL2Acc:  make([]int64, n),
		prevL2Mis:  make([]int64, n),
		coreNames:  make([]string, n),
		tintNames:  make([]string, n),
	}
	for i := 0; i < n; i++ {
		r.coreNames[i] = fmt.Sprintf("core%d", i)
		r.tintNames[i] = m.L2Tints().Name(m.L2Tint(i))
	}
	return r
}

// WindowOwner returns an owner function for machines whose per-core traces
// live in disjoint address windows of 2^windowShift bytes (the service
// builds multicore jobs with core i's trace shifted by i<<32).
func WindowOwner(numCores int, windowShift uint) func(memory.Addr) int {
	return func(a memory.Addr) int {
		c := int(a >> windowShift)
		if c < 0 || c >= numCores {
			return -1
		}
		return c
	}
}

// Reduce fills f with the machine's current state. done is the global
// access count (the inspection-hook argument); final marks the run's last
// frame. Allocation-free at steady state.
func (r *MachineReducer) Reduce(f *Frame, done int64, final bool) {
	f.Reset()
	f.Seq = r.seq
	r.seq++
	f.Done = done
	f.Final = final
	f.Remaps = int64(r.m.RemapsFired())

	n := r.m.NumCores()

	// Per-core private L1s, tagged by page tint, MSI state from the aux byte.
	var maxCycles int64
	for i := 0; i < n; i++ {
		cs := r.m.CoreStatsAt(i)
		if cs.Cycles > maxCycles {
			maxCycles = cs.Cycles
		}
		l1 := r.m.L1(i)
		r.l1bufs[i] = l1.SnapshotSetsInto(r.l1bufs[i])
		lines := r.l1bufs[i]
		cf := cacheAt(f, i, r.coreNames[i], len(lines), len(lines[0]))
		pt := r.m.PageTable(i)
		for set, row := range lines {
			base := set * cf.Ways
			for way, ls := range row {
				k := base + way
				if !ls.Valid {
					cf.Occ[k] = 0
					cf.MSI[k] = CellInvalid
					continue
				}
				cf.Occ[k] = tagByte(int(pt.TintOf(l1.AddrOfTag(set, ls.Tag))))
				cf.Valid++
				cf.MSI[k] = ls.Aux
				if ls.Aux == CellModified {
					cf.Modified++
				} else {
					cf.Shared++
				}
				if ls.Dirty {
					cf.Dirty++
				}
			}
		}
		cf.Misses = cs.L1.Misses
		cf.MissDelta = cf.Misses - r.prevL1Miss[i]
		r.prevL1Miss[i] = cf.Misses

		// Per-core shared-L2 activity rides TintMiss: one row per core,
		// named by the core's L2 tint.
		f.TintMiss = append(f.TintMiss, TintDelta{
			Tint:     i,
			Name:     r.tintNames[i],
			Accesses: cs.L2Accesses - r.prevL2Acc[i],
			Misses:   cs.L2Misses - r.prevL2Mis[i],
		})
		r.prevL2Acc[i] = cs.L2Accesses
		r.prevL2Mis[i] = cs.L2Misses
	}
	f.Cycles = maxCycles

	// Shared L2, tagged by owning core when derivable.
	l2 := r.m.L2()
	r.l2buf = l2.SnapshotSetsInto(r.l2buf)
	cf := cacheAt(f, n, "l2", len(r.l2buf), len(r.l2buf[0]))
	for set, row := range r.l2buf {
		base := set * cf.Ways
		for way, ls := range row {
			k := base + way
			if !ls.Valid {
				cf.Occ[k] = 0
				cf.MSI[k] = CellInvalid
				continue
			}
			tag := byte(1)
			if r.owner != nil {
				if c := r.owner(l2.AddrOfTag(set, ls.Tag)); c >= 0 {
					tag = tagByte(c)
				}
			}
			cf.Occ[k] = tag
			cf.Valid++
			if ls.Dirty {
				cf.Dirty++
				cf.Modified++
				cf.MSI[k] = CellModified
			} else {
				cf.Shared++
				cf.MSI[k] = CellShared
			}
		}
	}
	cf.Misses = l2.Stats().Misses
	cf.MissDelta = cf.Misses - r.prevL2Miss
	r.prevL2Miss = cf.Misses

	// Per-core shared-L2 column masks.
	for i := 0; i < n; i++ {
		f.Masks = append(f.Masks, MaskEntry{
			Kind: "core",
			ID:   i,
			Name: r.tintNames[i],
			Mask: uint64(r.m.L2Mask(i)),
		})
	}
}
