package inspect

import "sync"

// Ring is a fixed-capacity frame buffer: Capture hands the oldest slot to a
// fill callback for in-place reuse, so a steady-state capture loop recycles
// the same cap(frames) Frame values (and their cell buffers) forever —
// no per-frame allocation, oldest frames silently overwritten.
//
// Captures are expected from one goroutine (the simulation loop); readers
// (Do, Last) may run concurrently from HTTP handlers. The fill callback
// runs under the ring lock, so readers never observe a half-filled frame.
type Ring struct {
	mu    sync.Mutex
	slots []Frame
	next  int   // slot index the next Capture fills
	count int   // filled slots, ≤ len(slots)
	seq   int64 // frames captured since construction
}

// NewRing returns a ring holding the most recent capacity frames.
// capacity must be positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{slots: make([]Frame, capacity)}
}

// Capture hands the oldest slot to fill for in-place reuse and returns a
// pointer to the filled frame. The pointer is only safe to read until the
// ring wraps back around to its slot; copy (or marshal) promptly.
func (r *Ring) Capture(fill func(f *Frame)) *Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := &r.slots[r.next]
	fill(f)
	r.next = (r.next + 1) % len(r.slots)
	if r.count < len(r.slots) {
		r.count++
	}
	r.seq++
	return f
}

// Len returns how many frames are currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Captured returns how many frames have ever been captured.
func (r *Ring) Captured() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Do calls visit for each buffered frame, oldest first, under the ring
// lock. visit must not retain the pointer past its return.
func (r *Ring) Do(visit func(f *Frame)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.next - r.count
	if start < 0 {
		start += len(r.slots)
	}
	for i := 0; i < r.count; i++ {
		visit(&r.slots[(start+i)%len(r.slots)])
	}
}

// Last calls visit with the most recently captured frame, or returns false
// if nothing has been captured yet.
func (r *Ring) Last(visit func(f *Frame)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return false
	}
	last := r.next - 1
	if last < 0 {
		last += len(r.slots)
	}
	visit(&r.slots[last])
	return true
}
