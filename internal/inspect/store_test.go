package inspect

import (
	"bytes"
	"fmt"
	"testing"
)

func frameBytes(n int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, n)
}

func TestStoreRejectsInvertedRange(t *testing.T) {
	s := NewStore(1 << 20)
	s.Append("j", 0, frameBytes(10, 'a'))
	if _, _, ok := s.Frames("j", 5, 2); ok {
		t.Fatal("Frames(from=5, to=2) reported ok, want invalid range")
	}
	// to < 0 means "through the newest", not an inverted range.
	if fs, first, ok := s.Frames("j", 0, -1); !ok || len(fs) != 1 || first != 0 {
		t.Fatalf("Frames(0, -1) = %d frames first=%d ok=%v, want 1/0/true", len(fs), first, ok)
	}
}

func TestStoreEvictsOldestFirstAcrossJobs(t *testing.T) {
	s := NewStore(100)
	// Three 40-byte frames fill 120 > 100: appending the third must evict
	// the globally oldest (jobA seq 0), not the newest or a same-job frame.
	s.Append("a", 0, frameBytes(40, 'x'))
	s.Append("b", 0, frameBytes(40, 'y'))
	s.Append("a", 1, frameBytes(40, 'z'))
	if _, frames, bytes := s.Stats(); frames != 2 || bytes != 80 {
		t.Fatalf("after eviction: %d frames %d bytes, want 2 frames 80 bytes", frames, bytes)
	}
	fs, first, ok := s.Frames("a", 0, -1)
	if !ok || len(fs) != 1 || first != 1 {
		t.Fatalf("job a retained %d frames first=%d, want only seq 1", len(fs), first)
	}
	fs, first, ok = s.Frames("b", 0, -1)
	if !ok || len(fs) != 1 || first != 0 {
		t.Fatalf("job b retained %d frames first=%d, want seq 0 intact", len(fs), first)
	}
}

// Frames of a job evicted mid-scrub: a range query spanning evicted frames
// returns only what is retained, starting at the first surviving seq.
func TestStoreEvictionMidScrub(t *testing.T) {
	s := NewStore(1 << 20)
	for i := int64(0); i < 10; i++ {
		s.Append("j", i, []byte(fmt.Sprintf("frame-%d", i)))
	}
	fs, first, ok := s.Frames("j", 2, 5)
	if !ok || len(fs) != 4 || first != 2 {
		t.Fatalf("pre-eviction scrub: %d frames first=%d, want 4 from 2", len(fs), first)
	}
	// Shrink by appending a large frame that forces eviction of seqs 0..4.
	small := NewStore(60)
	for i := int64(0); i < 10; i++ {
		small.Append("j", i, []byte("0123456789")) // 10 bytes each, 6 fit
	}
	fs, first, ok = small.Frames("j", 2, 8)
	if !ok {
		t.Fatal("range reported invalid")
	}
	if first != 4 || len(fs) != 5 {
		t.Fatalf("mid-scrub after eviction: %d frames first=%d, want 5 from 4", len(fs), first)
	}
	// Fully evicted prefix + query below it: empty result, still ok.
	fs, _, ok = small.Frames("j", 0, 3)
	if !ok || len(fs) != 0 {
		t.Fatalf("query into evicted prefix: %d frames ok=%v, want 0/true", len(fs), ok)
	}
}

func TestStoreDropJobAndLazyOrder(t *testing.T) {
	s := NewStore(100)
	s.Append("a", 0, frameBytes(30, 'a'))
	s.Append("b", 0, frameBytes(30, 'b'))
	s.DropJob("a")
	if jobs, frames, bytes := s.Stats(); jobs != 1 || frames != 1 || bytes != 30 {
		t.Fatalf("after DropJob: jobs=%d frames=%d bytes=%d, want 1/1/30", jobs, frames, bytes)
	}
	if fs, _, ok := s.Frames("a", 0, -1); !ok || fs != nil {
		t.Fatalf("dropped job still has %d frames", len(fs))
	}
	// The dropped job's stale order entries must be skipped, and budget
	// pressure must still evict b's frame when needed.
	s.Append("c", 0, frameBytes(60, 'c'))
	s.Append("c", 1, frameBytes(30, 'd')) // 30+60+30 > 100 → evict b then maybe c0
	if fs, _, ok := s.Frames("b", 0, -1); !ok || len(fs) != 0 {
		t.Fatalf("job b survived eviction with %d frames", len(fs))
	}
}

func TestStoreDisabledAndOversized(t *testing.T) {
	if NewStore(0).Append("j", 0, frameBytes(1, 'x')) {
		t.Fatal("zero-budget store retained a frame")
	}
	s := NewStore(50)
	if s.Append("j", 0, frameBytes(51, 'x')) {
		t.Fatal("store retained a frame larger than its whole budget")
	}
	var nilStore *Store
	if nilStore.Append("j", 0, frameBytes(1, 'x')) {
		t.Fatal("nil store retained a frame")
	}
	nilStore.DropJob("j")
	if _, _, ok := nilStore.Frames("j", 0, -1); !ok {
		t.Fatal("nil store rejected a valid range")
	}
}

// A job resubmitted after eviction restarts its history cleanly.
func TestStoreOutOfOrderAppendRestartsJob(t *testing.T) {
	s := NewStore(1 << 20)
	s.Append("j", 0, frameBytes(10, 'a'))
	s.Append("j", 1, frameBytes(10, 'b'))
	s.Append("j", 0, frameBytes(10, 'c')) // restart from 0
	fs, first, ok := s.Frames("j", 0, -1)
	if !ok || len(fs) != 1 || first != 0 || fs[0][0] != 'c' {
		t.Fatalf("restart: %d frames first=%d, want the single new seq-0 frame", len(fs), first)
	}
	if _, _, bytes := s.Stats(); bytes != 10 {
		t.Fatalf("restart leaked budget: %d bytes used, want 10", bytes)
	}
}
