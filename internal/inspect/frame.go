// Package inspect reduces live machine state to compact occupancy frames
// and buffers them for streaming and time-travel.
//
// The paper's whole argument is that software-controlled column caches make
// cache contents an application-visible resource; this package is the layer
// that actually makes them visible. A reducer samples the machine at the
// stepper's inspection hook (every K accesses — exact positions, so the
// frame sequence is a pure function of config × trace × stride), captures
// cache contents through the buffer-reusing SnapshotSetsInto, and reduces
// them to a Frame: per-set × per-column occupancy tagged by tint,
// valid/dirty/MSI breakdowns, per-tint miss deltas since the previous
// frame, and the active column masks. Frames land in a fixed-capacity Ring
// (recent history, oldest-first overwrite), fan out to SSE subscribers
// through a Broadcaster (slow clients drop frames, never block the
// simulation), and are retained serialized in a byte-budgeted Store so a
// finished job can be scrubbed backward to the exact frame where a remap
// changed the masks.
//
// Capture is allocation-free at steady state: reducers reuse their line
// buffers, frames reuse their cell slices, and the ring reuses its slots —
// the <5% stepper-throughput budget (benchcore's inspect-on row) depends on
// it.
package inspect

// Cell state codes in CacheFrame.MSI. For a coherent multicore L1 these are
// the MSI protocol states from the line's aux byte; for a single-core cache
// and the shared L2 they degrade to invalid / valid-clean / valid-dirty,
// which renders identically.
const (
	CellInvalid  byte = 0
	CellShared   byte = 1 // valid, clean
	CellModified byte = 2 // valid, dirty
)

// Frame is one reduced snapshot of a machine's cache occupancy. The JSON
// encoding is the wire format everywhere: SSE events, the time-travel
// endpoint, colsim's offline JSONL dump and colwatch all speak it.
type Frame struct {
	// Seq numbers frames from 0 in capture order.
	Seq int64 `json:"seq"`
	// Done is the number of trace accesses executed when the frame was
	// captured (summed over cores on a multicore machine).
	Done int64 `json:"done"`
	// Cycles is the machine's cycle count (the makespan — max over cores —
	// on a multicore machine).
	Cycles int64 `json:"cycles"`
	// Final marks the last frame of a finished run.
	Final bool `json:"final,omitempty"`
	// Remaps counts column-mask rewrites applied so far: adaptive-controller
	// decisions on a single-core machine, fired schedule events on a
	// multicore one. A frame where this increments is a frame where the
	// masks changed — the scrub target.
	Remaps int64 `json:"remaps,omitempty"`
	// Caches holds one entry per cache: "l1" (+ "l2") on a single-core
	// machine, "core0".."coreN-1" + "l2" on a multicore one.
	Caches []CacheFrame `json:"caches"`
	// Masks is the active column-mask table: per-tint on a single-core
	// machine, per-core (shared L2) on a multicore one.
	Masks []MaskEntry `json:"masks"`
	// TintMiss carries per-tint access/miss deltas since the previous
	// frame. Empty when per-tint attribution is off.
	TintMiss []TintDelta `json:"tint_miss,omitempty"`
}

// CacheFrame is one cache's occupancy grid.
type CacheFrame struct {
	Name string `json:"name"`
	Sets int    `json:"sets"`
	Ways int    `json:"ways"`
	// Occ tags every (set, way) cell, row-major by set: 0 for an invalid
	// line, otherwise 1 + the owning tint (private L1s, single-core caches)
	// or 1 + the owning core (the shared L2, when owners are derivable from
	// the per-core address windows; plain 1 otherwise). JSON encodes this
	// as base64 — 64 cells cost ~88 bytes, not 64 array elements.
	Occ []byte `json:"occ"`
	// MSI holds the per-cell state code (CellInvalid/CellShared/
	// CellModified), same layout as Occ.
	MSI []byte `json:"msi"`
	// Aggregate line-state breakdown.
	Valid    int `json:"valid"`
	Dirty    int `json:"dirty"`
	Shared   int `json:"shared"`
	Modified int `json:"modified"`
	// Misses is the cache's cumulative demand-miss counter; MissDelta is
	// the change since the previous frame.
	Misses    int64 `json:"misses"`
	MissDelta int64 `json:"miss_delta"`
}

// MaskEntry is one row of the active column-mask table.
type MaskEntry struct {
	// Kind is "tint" (a tint-table row) or "core" (a core's shared-L2 mask).
	Kind string `json:"kind"`
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
	Mask uint64 `json:"mask"`
}

// TintDelta is one tint's activity since the previous frame.
type TintDelta struct {
	Tint     int    `json:"tint"`
	Name     string `json:"name,omitempty"`
	Accesses int64  `json:"accesses"`
	Misses   int64  `json:"misses"`
}

// Reset clears a frame for reuse, keeping every allocated buffer.
func (f *Frame) Reset() {
	f.Seq, f.Done, f.Cycles, f.Remaps = 0, 0, 0, 0
	f.Final = false
	f.Caches = f.Caches[:0]
	f.Masks = f.Masks[:0]
	f.TintMiss = f.TintMiss[:0]
}

// cacheAt returns frame slot idx among f.Caches, growing the slice only
// past its high-water mark and resizing the cell buffers only on a shape
// change, so steady-state reuse allocates nothing.
func cacheAt(f *Frame, idx int, name string, sets, ways int) *CacheFrame {
	for len(f.Caches) <= idx {
		if cap(f.Caches) > len(f.Caches) {
			f.Caches = f.Caches[:len(f.Caches)+1]
		} else {
			f.Caches = append(f.Caches, CacheFrame{})
		}
	}
	cf := &f.Caches[idx]
	cf.Name = name
	cf.Sets, cf.Ways = sets, ways
	n := sets * ways
	if cap(cf.Occ) < n {
		cf.Occ = make([]byte, n)
		cf.MSI = make([]byte, n)
	}
	cf.Occ = cf.Occ[:n]
	cf.MSI = cf.MSI[:n]
	cf.Valid, cf.Dirty, cf.Shared, cf.Modified = 0, 0, 0, 0
	cf.Misses, cf.MissDelta = 0, 0
	return cf
}

// tagByte clamps a tint/core id into the 1..255 cell-tag range.
func tagByte(id int) byte {
	if id >= 254 {
		return 255
	}
	return byte(id + 1)
}
