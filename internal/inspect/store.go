package inspect

import "sync"

// Store retains serialized frames of finished (and running) jobs for
// time-travel scrubbing, under a global byte budget. Frames are appended
// per job in sequence order and evicted oldest-first globally — the frame
// that has been sitting in the store longest goes first, regardless of
// which job owns it — so one chatty job ages out another's history the
// same way it would age out its own.
//
// A Store holds marshaled JSON, not Frame values: the bytes are written
// verbatim to the time-travel endpoint and to SSE replay, so retaining the
// serialized form avoids re-encoding and makes the budget arithmetic exact.
type Store struct {
	mu     sync.Mutex
	budget int64
	used   int64
	jobs   map[string]*jobFrames
	order  []ref // global FIFO of retained frames, oldest first
}

type jobFrames struct {
	frames [][]byte // frames[i] has sequence number base+i; nil when evicted
	base   int64    // sequence number of frames[0]
}

type ref struct {
	job string
	seq int64
}

// NewStore returns a store that retains at most budget bytes of serialized
// frames. budget <= 0 disables retention entirely (Append is a no-op).
func NewStore(budget int64) *Store {
	return &Store{budget: budget, jobs: make(map[string]*jobFrames)}
}

// Append retains frame data (seq must increase by one per job). The slice
// is retained as-is; the caller must not modify it afterwards. A frame
// larger than the whole budget is not retained. Returns whether the frame
// was retained.
func (s *Store) Append(jobID string, seq int64, data []byte) bool {
	if s == nil || s.budget <= 0 {
		return false
	}
	sz := int64(len(data))
	if sz > s.budget {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.used+sz > s.budget && len(s.order) > 0 {
		s.evictOldestLocked()
	}
	jf := s.jobs[jobID]
	if jf == nil {
		jf = &jobFrames{base: seq}
		s.jobs[jobID] = jf
	}
	if got := jf.base + int64(len(jf.frames)); seq != got {
		// Out-of-order append (job restarted after eviction): restart the
		// job's history at seq rather than leaving a hole.
		s.dropJobLocked(jobID)
		jf = &jobFrames{base: seq}
		s.jobs[jobID] = jf
	}
	jf.frames = append(jf.frames, data)
	s.used += sz
	s.order = append(s.order, ref{job: jobID, seq: seq})
	return true
}

// evictOldestLocked drops the globally oldest retained frame.
func (s *Store) evictOldestLocked() {
	r := s.order[0]
	s.order = s.order[1:]
	jf := s.jobs[r.job]
	if jf == nil {
		return // job already dropped wholesale
	}
	i := r.seq - jf.base
	if i < 0 || i >= int64(len(jf.frames)) || jf.frames[i] == nil {
		return
	}
	s.used -= int64(len(jf.frames[i]))
	jf.frames[i] = nil
	// Frames evict in append order, so trimming nil prefixes keeps the
	// slice from accumulating dead head entries.
	for len(jf.frames) > 0 && jf.frames[0] == nil {
		jf.frames = jf.frames[1:]
		jf.base++
	}
	if len(jf.frames) == 0 {
		delete(s.jobs, r.job)
	}
}

// Frames returns the retained frames of jobID with from <= seq <= to,
// oldest first, plus the sequence number of the first returned frame. A
// negative to means "through the newest retained frame". ok is false when
// from > to (an invalid range). An in-range but evicted frame is simply
// absent from the result: the returned slice starts at the first retained
// seq >= from.
func (s *Store) Frames(jobID string, from, to int64) (frames [][]byte, first int64, ok bool) {
	if to >= 0 && from > to {
		return nil, 0, false
	}
	if s == nil {
		return nil, 0, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	jf := s.jobs[jobID]
	if jf == nil {
		return nil, 0, true
	}
	lo := from - jf.base
	if lo < 0 {
		lo = 0
	}
	hi := int64(len(jf.frames))
	if to >= 0 && to-jf.base+1 < hi {
		hi = to - jf.base + 1
	}
	for i := lo; i < hi; i++ {
		if jf.frames[i] == nil {
			continue
		}
		if frames == nil {
			first = jf.base + i
		}
		frames = append(frames, jf.frames[i])
	}
	return frames, first, true
}

// DropJob forgets every retained frame of jobID (the job was evicted from
// the job store). Its order entries are left behind and skipped lazily by
// evictOldestLocked.
func (s *Store) DropJob(jobID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropJobLocked(jobID)
}

func (s *Store) dropJobLocked(jobID string) {
	jf := s.jobs[jobID]
	if jf == nil {
		return
	}
	for _, b := range jf.frames {
		s.used -= int64(len(b))
	}
	delete(s.jobs, jobID)
}

// Stats reports the store's current footprint.
func (s *Store) Stats() (jobs int, frames int, bytes int64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, jf := range s.jobs {
		for _, b := range jf.frames {
			if b != nil {
				frames++
			}
		}
	}
	return len(s.jobs), frames, s.used
}
