package inspect

import (
	"sync"
	"sync/atomic"
)

// Broadcaster fans serialized frames out to SSE subscribers without ever
// blocking the publisher (the simulation goroutine). Each subscriber gets
// a buffered channel; when a slow client's buffer is full the frame is
// dropped for that subscriber and its dropped counter incremented — the
// client later learns how many frames it missed, and the simulation never
// waits on anyone's socket.
type Broadcaster struct {
	mu      sync.Mutex
	subs    map[*Subscriber]struct{}
	done    bool
	reason  string
	dropped atomic.Int64 // total frames dropped across all subscribers
}

// Subscriber is one attached stream consumer.
type Subscriber struct {
	// C delivers serialized frames; it is closed when the subscriber is
	// removed or the broadcaster finishes. After the close, Reason reports
	// why (empty for an Unsubscribe).
	C       chan []byte
	b       *Broadcaster
	dropped atomic.Int64
	reason  atomic.Pointer[string]
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[*Subscriber]struct{})}
}

// Subscribe attaches a consumer with a buffer of depth frames. On a
// finished broadcaster the returned subscriber's channel is already closed
// and Reason reports the finish reason — late clients observe a clean
// terminal event instead of hanging.
func (b *Broadcaster) Subscribe(depth int) *Subscriber {
	if depth <= 0 {
		depth = 8
	}
	s := &Subscriber{C: make(chan []byte, depth), b: b}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		r := b.reason
		s.reason.Store(&r)
		close(s.C)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Unsubscribe detaches s and closes its channel. Safe to call after the
// broadcaster finished (a no-op then).
func (b *Broadcaster) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; !ok {
		return
	}
	delete(b.subs, s)
	close(s.C)
}

// Publish offers data to every subscriber, never blocking: a subscriber
// whose buffer is full misses this frame and has its dropped counter
// incremented. The slice is shared with subscribers; the caller must not
// modify it afterwards.
func (b *Broadcaster) Publish(data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	for s := range b.subs {
		select {
		case s.C <- data:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
}

// Finish closes every subscriber's channel and marks the broadcaster done
// with the given reason ("done", "failed", "canceled"...). Subsequent
// Publish calls are no-ops; subsequent Subscribes observe the reason
// immediately. Idempotent — the first reason wins.
func (b *Broadcaster) Finish(reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.done = true
	b.reason = reason
	for s := range b.subs {
		r := reason
		s.reason.Store(&r)
		close(s.C)
		delete(b.subs, s)
	}
}

// Done reports whether Finish was called, and with what reason.
func (b *Broadcaster) Done() (bool, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done, b.reason
}

// Dropped returns the total frames dropped across all subscribers.
func (b *Broadcaster) Dropped() int64 { return b.dropped.Load() }

// Dropped returns how many frames this subscriber missed.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Reason returns the broadcaster's finish reason as observed by this
// subscriber ("" until its channel closes, or for a plain unsubscribe).
func (s *Subscriber) Reason() string {
	if p := s.reason.Load(); p != nil {
		return *p
	}
	return ""
}
