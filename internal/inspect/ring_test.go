package inspect

import (
	"sync"
	"testing"
)

func captureSeq(r *Ring, seq int64) {
	r.Capture(func(f *Frame) {
		f.Reset()
		f.Seq = seq
	})
}

func ringSeqs(r *Ring) []int64 {
	var out []int64
	r.Do(func(f *Frame) { out = append(out, f.Seq) })
	return out
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := int64(0); i < 10; i++ {
		captureSeq(r, i)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Captured(); got != 10 {
		t.Fatalf("Captured = %d, want 10", got)
	}
	want := []int64{6, 7, 8, 9}
	got := ringSeqs(r)
	if len(got) != len(want) {
		t.Fatalf("Do visited %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Do order = %v, want %v", got, want)
		}
	}
	ok := r.Last(func(f *Frame) {
		if f.Seq != 9 {
			t.Errorf("Last seq = %d, want 9", f.Seq)
		}
	})
	if !ok {
		t.Fatal("Last on a filled ring returned false")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	if r.Last(func(*Frame) {}) {
		t.Fatal("Last on an empty ring returned true")
	}
	captureSeq(r, 0)
	captureSeq(r, 1)
	if got := ringSeqs(r); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("partial ring order = %v, want [0 1]", got)
	}
}

// Slot reuse: after the ring wraps, Capture must hand back the same Frame
// values so a steady-state capture loop allocates nothing.
func TestRingReusesSlots(t *testing.T) {
	r := NewRing(2)
	first := r.Capture(func(f *Frame) { f.Reset() })
	r.Capture(func(f *Frame) { f.Reset() })
	third := r.Capture(func(f *Frame) { f.Reset() })
	if first != third {
		t.Fatal("third capture did not reuse the first slot")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Capture(func(f *Frame) { f.Reset() })
	})
	if allocs != 0 {
		t.Fatalf("steady-state Capture allocates %.1f objects/op, want 0", allocs)
	}
}

// Readers racing the capture loop must be safe (run under -race).
func TestRingConcurrentReaders(t *testing.T) {
	r := NewRing(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Do(func(f *Frame) { _ = f.Seq })
				r.Last(func(f *Frame) { _ = f.Seq })
				r.Len()
			}
		}
	}()
	for i := int64(0); i < 5000; i++ {
		captureSeq(r, i)
	}
	close(stop)
	wg.Wait()
}
