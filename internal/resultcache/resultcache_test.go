package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string, max int64) *Cache {
	t.Helper()
	c, err := Open(dir, max)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func put(t *testing.T, c *Cache, blob string, pinned bool) string {
	t.Helper()
	d := Digest([]byte(blob))
	if err := c.Put(d, []byte(blob), pinned); err != nil {
		t.Fatalf("Put(%q): %v", blob, err)
	}
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	d := put(t, c, `{"result":42}`, false)
	b, ok := c.Get(d)
	if !ok || string(b) != `{"result":42}` {
		t.Fatalf("Get = %q, %v", b, ok)
	}
	if _, ok := c.Get(Digest([]byte("absent"))); ok {
		t.Fatal("hit on absent digest")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

func TestPutRejectsMalformedKey(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	if err := c.Put("short-key", []byte("b"), false); err == nil {
		t.Fatal("Put accepted a key that is not a hex sha256")
	}
}

// The key is the digest of the *inputs*, independent of the blob content:
// a lookup under the input digest returns the stored result blob.
func TestInputKeyedLookup(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	key := Digest([]byte("spec-json"), []byte("trace-bytes"))
	if err := c.Put(key, []byte(`{"cycles":123}`), false); err != nil {
		t.Fatal(err)
	}
	b, ok := c.Get(key)
	if !ok || string(b) != `{"cycles":123}` {
		t.Fatalf("Get = %q, %v", b, ok)
	}
}

// The index must survive a restart: a fresh Open over the same directory
// serves previously stored blobs.
func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, 1<<20)
	d1 := put(t, c, "blob-one", false)
	d2 := put(t, c, "blob-two", true)

	c2 := openT(t, dir, 1<<20)
	for _, d := range []string{d1, d2} {
		if b, ok := c2.Get(d); !ok || len(b) == 0 {
			t.Fatalf("reopened store missed %s", d)
		}
	}
	if st := c2.Stats(); st.Entries != 2 {
		t.Fatalf("reopened entries = %d, want 2", st.Entries)
	}
}

// A corrupted blob must be quarantined — renamed aside, never served,
// absent after reopen.
func TestCorruptBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, 1<<20)
	d := put(t, c, "pristine result bytes", false)

	path := filepath.Join(dir, d[:2], d)
	if err := os.WriteFile(path, []byte("tampered result bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(d); ok {
		t.Fatal("served a blob that fails its digest check")
	}
	st := c.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt blob not set aside: %v", err)
	}
	// A reopen must not re-index the quarantined file.
	c2 := openT(t, dir, 1<<20)
	if c2.Contains(d) {
		t.Fatal("reopen re-indexed a quarantined blob")
	}
	// The slot is usable again: a fresh Put of the true content works.
	put(t, c, "pristine result bytes", false)
	if b, ok := c.Get(d); !ok || string(b) != "pristine result bytes" {
		t.Fatalf("re-Put after quarantine: %q, %v", b, ok)
	}
}

// Eviction order is cold, then hot LRU; pinned never.
func TestPriorityEviction(t *testing.T) {
	c := openT(t, t.TempDir(), 400)                                                    // three 132-byte entries fit, a fourth does not
	blob := func(tag string) string { return tag + strings.Repeat("x", 100-len(tag)) } // 100 bytes + 32B header each
	pinned := put(t, c, blob("pinned"), true)
	hot := put(t, c, blob("hot"), false)
	cold := put(t, c, blob("cold"), false)
	if _, ok := c.Get(hot); !ok { // promote to Hot
		t.Fatal("hot entry missing")
	}

	// A fourth entry busts the 300-byte budget: the cold entry must go.
	d4 := put(t, c, blob("newcomer"), false)
	if c.Contains(cold) {
		t.Fatal("cold entry survived eviction")
	}
	for _, d := range []string{pinned, hot, d4} {
		if !c.Contains(d) {
			t.Fatalf("wrong victim: %s evicted", d)
		}
	}

	// Another entry: now the hot one (LRU among non-pinned, since the
	// newcomer is cold... cold goes first).
	d5 := put(t, c, blob("another"), false)
	if c.Contains(d4) {
		t.Fatal("cold newcomer survived while present") // d4 was Cold, evicted before hot
	}
	if !c.Contains(hot) || !c.Contains(pinned) || !c.Contains(d5) {
		t.Fatal("wrong victim on second eviction")
	}

	// Exhaust everything unpinned: pinned must survive even over budget.
	put(t, c, blob("third"), true)
	put(t, c, blob("fourth"), true)
	if !c.Contains(pinned) {
		t.Fatal("pinned entry evicted")
	}
	if st := c.Stats(); st.Evictions < 2 {
		t.Fatalf("Evictions = %d, want >= 2", st.Evictions)
	}
}

func TestUnpinDemotesToHot(t *testing.T) {
	c := openT(t, t.TempDir(), 270) // two 132-byte entries fit
	blob := func(tag string) string { return tag + strings.Repeat("y", 100-len(tag)) }
	p := put(t, c, blob("was-pinned"), true)
	cold := put(t, c, blob("cold"), false)
	c.Pin(p, false)
	// Over budget: the cold entry goes before the formerly pinned one.
	put(t, c, blob("pusher"), false)
	if c.Contains(cold) {
		t.Fatal("cold survived")
	}
	if !c.Contains(p) {
		t.Fatal("unpinned entry evicted before colder entries")
	}
}

func TestBytesGauge(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	var want int64
	for i := 0; i < 5; i++ {
		s := fmt.Sprintf("blob-%d-%s", i, strings.Repeat("z", i*10))
		put(t, c, s, false)
		want += int64(len(s)) + 32 // payload + checksum header
	}
	if st := c.Stats(); st.Bytes != want || st.Entries != 5 || st.Puts != 5 {
		t.Fatalf("stats = %+v, want bytes %d entries 5", st, want)
	}
}

func TestDuplicatePutIsNoop(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	d := put(t, c, "immutable", false)
	if err := c.Put(d, []byte("immutable"), false); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("duplicate Put accounted: %+v", st)
	}
	// A duplicate Put with pinned set upgrades the entry in place: give
	// the store a budget only big enough for one of the two entries and
	// verify the re-pinned one survives.
	small := openT(t, t.TempDir(), 150)
	dA := put(t, small, strings.Repeat("a", 100), false)
	if err := small.Put(dA, []byte(strings.Repeat("a", 100)), true); err != nil {
		t.Fatal(err)
	}
	put(t, small, strings.Repeat("b", 100), false) // over budget: someone must go
	if !small.Contains(dA) {
		t.Fatal("upgraded pin was evicted")
	}
}

func TestPinUnknownDigestIsNoop(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	c.Pin(strings.Repeat("ab", 32), true) // must not panic or index anything
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("Pin invented an entry: %+v", st)
	}
}

func TestGetMalformedKey(t *testing.T) {
	c := openT(t, t.TempDir(), 1<<20)
	if _, ok := c.Get("short"); ok {
		t.Fatal("malformed key hit")
	}
}

func TestOpenSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, 1<<20)
	d := put(t, c, "real", false)

	// Stray top-level file, a shard with a mis-filed blob, a quarantined
	// blob, and a shard-named file (not a dir): all stay out of the index.
	os.WriteFile(filepath.Join(dir, "README"), []byte("not a blob"), 0o644)
	os.MkdirAll(filepath.Join(dir, "ff"), 0o755)
	os.WriteFile(filepath.Join(dir, "ff", "misfiled"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "ff", strings.Repeat("a", 64)+".corrupt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "zz"), []byte("file, not shard dir"), 0o644)

	c2 := openT(t, dir, 1<<20)
	st := c2.Stats()
	if st.Entries != 1 || !c2.Contains(d) {
		t.Fatalf("foreign files leaked into the index: %+v", st)
	}
}

func TestPutShardBlockedByFile(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, 1<<20)
	blob := []byte("blocked")
	d := Digest(blob)
	// The shard directory path exists as a regular file: MkdirAll fails
	// and Put must surface it instead of silently dropping the blob.
	if err := os.WriteFile(filepath.Join(dir, d[:2]), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(d, blob, false); err == nil {
		t.Fatal("Put into a blocked shard succeeded")
	}
	if c.Contains(d) {
		t.Fatal("failed Put left an index entry")
	}
}
