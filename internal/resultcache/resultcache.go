// Package resultcache is a content-addressed store for immutable result
// blobs: the service-layer analogue of the paper's software-controlled
// cache. Simulation results are keyed by the SHA-256 digest of what
// produced them (canonicalized spec + trace bytes), held as files on disk
// under an in-memory index, and bounded by a byte budget with explicit,
// priority-driven eviction — pinned entries never leave, recently-hit
// entries outlive cold ones, exactly the "software decides what the cache
// keeps" discipline the tint/column mechanism applies one layer down
// (and Nunez et al.'s priority hints apply to GC'd software caches).
//
// The key is the digest of the *inputs* that produced a blob, so lookups
// happen before the expensive computation runs; the blob itself is
// protected by an embedded SHA-256 written ahead of the payload on disk.
// A mismatch on read (bit rot, partial write, tampering) quarantines the
// file to <digest>.corrupt and reports a miss — the store never serves
// bytes it cannot prove are the ones stored.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Class is an entry's eviction priority, lowest evicted first.
type Class int

const (
	// Cold entries have not been hit since the store opened.
	Cold Class = iota
	// Hot entries have been hit at least once since open.
	Hot
	// Pinned entries are never evicted.
	Pinned
)

// Counters are the store's lifetime counters since Open; Bytes/Entries
// are live gauges.
type Counters struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	Quarantined int64
	Puts        int64
	Bytes       int64
	Entries     int64
}

type entry struct {
	size    int64
	class   Class
	lastUse int64 // monotonic use sequence, for LRU within a class
}

// Cache is the content-addressed store. Safe for concurrent use.
type Cache struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	index    map[string]*entry
	useSeq   int64
	bytes    int64
	counters Counters
}

// Digest returns the hex SHA-256 of the given byte slices, the store's
// key format.
func Digest(parts ...[]byte) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// keyLen is the length of a hex SHA-256 key.
const keyLen = sha256.Size * 2

// Open opens (or creates) a store rooted at dir with the given byte
// budget (0 means 256 MiB), scanning existing blobs into the index. All
// recovered entries start Cold; pins do not survive a restart (the
// service re-pins what it cares about).
func Open(dir string, maxBytes int64) (*Cache, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, index: make(map[string]*entry)}
	subs, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if len(name) != keyLen || name[:2] != sub.Name() {
				continue // quarantined (.corrupt) or foreign files stay out of the index
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			c.index[name] = &entry{size: info.Size()}
			c.bytes += info.Size()
		}
	}
	c.counters.Bytes = c.bytes
	c.counters.Entries = int64(len(c.index))
	return c, nil
}

func (c *Cache) blobPath(digest string) string {
	return filepath.Join(c.dir, digest[:2], digest)
}

// Get returns the blob stored under digest, verifying the SHA-256 the
// file carries ahead of the payload. A corrupt blob is quarantined and
// reported as a miss.
func (c *Cache) Get(digest string) ([]byte, bool) {
	if len(digest) != keyLen {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.index[digest]
	if !ok {
		c.counters.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Unlock()

	raw, err := os.ReadFile(c.blobPath(digest))
	if err != nil || len(raw) < sha256.Size || sha256.Sum256(raw[sha256.Size:]) != [sha256.Size]byte(raw[:sha256.Size]) {
		c.quarantine(digest, e)
		return nil, false
	}
	b := raw[sha256.Size:]

	c.mu.Lock()
	// The entry may have been evicted or quarantined while we read; only
	// promote it if it is still the one we looked up.
	if cur, ok := c.index[digest]; ok && cur == e {
		c.useSeq++
		e.lastUse = c.useSeq
		if e.class == Cold {
			e.class = Hot
		}
	}
	c.counters.Hits++
	c.mu.Unlock()
	return b, true
}

// quarantine pulls a failed entry out of the index and renames its file
// to <digest>.corrupt so operators can inspect it and no later Open
// re-indexes it.
func (c *Cache) quarantine(digest string, e *entry) {
	c.mu.Lock()
	if cur, ok := c.index[digest]; ok && cur == e {
		delete(c.index, digest)
		c.bytes -= e.size
		c.counters.Bytes = c.bytes
		c.counters.Entries = int64(len(c.index))
	}
	c.counters.Misses++
	c.counters.Quarantined++
	c.mu.Unlock()
	path := c.blobPath(digest)
	os.Rename(path, path+".corrupt")
}

// Put stores blob under digest — the hex SHA-256 of whatever inputs
// produced it (use Digest). The file carries the payload's own SHA-256
// ahead of the payload, so integrity is checkable without re-deriving
// the inputs. Blobs land via a temp file + rename so a crashed Put
// leaves no half-written entry, and an existing entry is never
// overwritten — the key addresses immutable content.
func (c *Cache) Put(digest string, blob []byte, pinned bool) error {
	if len(digest) != keyLen {
		return fmt.Errorf("resultcache: key %q is not a hex sha256", digest)
	}
	c.mu.Lock()
	if e, ok := c.index[digest]; ok {
		if pinned {
			e.class = Pinned
		}
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	dir := filepath.Join(c.dir, digest[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		return err
	}
	sum := sha256.Sum256(blob)
	if _, err := tmp.Write(append(sum[:], blob...)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.blobPath(digest)); err != nil {
		os.Remove(tmp.Name())
		return err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[digest]; ok {
		return nil // racing Put of the same content; identical by definition
	}
	class := Cold
	if pinned {
		class = Pinned
	}
	size := int64(len(blob)) + sha256.Size // on-disk size, checksum header included
	c.useSeq++
	c.index[digest] = &entry{size: size, class: class, lastUse: c.useSeq}
	c.bytes += size
	c.counters.Puts++
	c.evictLocked()
	c.counters.Bytes = c.bytes
	c.counters.Entries = int64(len(c.index))
	return nil
}

// Pin marks (or unmarks) an entry as unevictable. Unpinning demotes to
// Hot so a long-lived pin does not immediately become the next victim.
func (c *Cache) Pin(digest string, pinned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.index[digest]
	if !ok {
		return
	}
	if pinned {
		e.class = Pinned
	} else if e.class == Pinned {
		e.class = Hot
	}
}

// evictLocked removes victims until the store fits its budget: Cold
// entries first (LRU within the class), then Hot, never Pinned. A store
// full of pins may exceed its budget — explicit priority outranks the
// byte bound, which is the point of software-controlled caching.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxBytes {
		victim := ""
		var ve *entry
		for d, e := range c.index {
			if e.class == Pinned {
				continue
			}
			if ve == nil || e.class < ve.class || (e.class == ve.class && e.lastUse < ve.lastUse) {
				victim, ve = d, e
			}
		}
		if ve == nil {
			return // everything pinned
		}
		delete(c.index, victim)
		c.bytes -= ve.size
		c.counters.Evictions++
		os.Remove(c.blobPath(victim))
	}
}

// Contains reports whether digest is indexed, without touching recency.
func (c *Cache) Contains(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[digest]
	return ok
}

// Stats snapshots the counters.
func (c *Cache) Stats() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}
