// Package memtrace defines the memory-reference trace format that drives the
// simulator. A trace is the sequence of loads and stores a program issues;
// each access also carries the number of non-memory instructions executed
// since the previous access ("think" time), so a trace fully determines the
// instruction count and therefore CPI.
package memtrace

import (
	"colcache/internal/memory"
)

// Op is the kind of memory operation.
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return "?"
	}
}

// Access is one memory reference. Think counts the non-memory instructions
// executed immediately before this access; the access itself counts as one
// instruction.
type Access struct {
	Addr  memory.Addr
	Op    Op
	Think uint32
}

// Trace is an ordered sequence of accesses.
type Trace []Access

// Instructions returns the total dynamic instruction count of the trace:
// every access is one instruction plus its preceding think instructions.
func (t Trace) Instructions() int64 {
	var n int64
	for _, a := range t {
		n += int64(a.Think) + 1
	}
	return n
}

// Reads returns the number of load accesses.
func (t Trace) Reads() int64 {
	var n int64
	for _, a := range t {
		if a.Op == Read {
			n++
		}
	}
	return n
}

// Writes returns the number of store accesses.
func (t Trace) Writes() int64 { return int64(len(t)) - t.Reads() }

// Footprint returns the number of distinct cache lines touched under g.
func (t Trace) Footprint(g memory.Geometry) int {
	lines := make(map[uint64]struct{})
	for _, a := range t {
		lines[g.LineNumber(a.Addr)] = struct{}{}
	}
	return len(lines)
}

// Slice returns the sub-trace [from, to). Bounds are clamped.
func (t Trace) Slice(from, to int) Trace {
	if from < 0 {
		from = 0
	}
	if to > len(t) {
		to = len(t)
	}
	if from >= to {
		return nil
	}
	return t[from:to]
}

// Concat appends the given traces into one.
func Concat(traces ...Trace) Trace {
	var total int
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	return out
}

// Recorder accumulates a trace. Workload kernels call Load/Store/Think as
// they execute; the zero value is ready to use.
type Recorder struct {
	trace Trace
	think uint32
}

// Think accrues n non-memory instructions before the next access.
func (r *Recorder) Think(n int) {
	if n < 0 {
		return
	}
	r.think += uint32(n)
}

// Load records a read of addr.
func (r *Recorder) Load(addr memory.Addr) { r.record(addr, Read) }

// Store records a write of addr.
func (r *Recorder) Store(addr memory.Addr) { r.record(addr, Write) }

func (r *Recorder) record(addr memory.Addr, op Op) {
	r.trace = append(r.trace, Access{Addr: addr, Op: op, Think: r.think})
	r.think = 0
}

// LoadRegion records a read of region r at byte offset off.
func (r *Recorder) LoadRegion(reg memory.Region, off uint64) { r.Load(reg.Base + off) }

// StoreRegion records a write of region r at byte offset off.
func (r *Recorder) StoreRegion(reg memory.Region, off uint64) { r.Store(reg.Base + off) }

// Trace returns the recorded trace. The recorder may continue to be used;
// further records append to the same backing store, so callers that need a
// stable snapshot should copy.
func (r *Recorder) Trace() Trace { return r.trace }

// Len returns the number of accesses recorded so far.
func (r *Recorder) Len() int { return len(r.trace) }

// Reset discards everything recorded so far.
func (r *Recorder) Reset() {
	r.trace = nil
	r.think = 0
}
