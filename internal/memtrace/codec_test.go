package memtrace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomTrace(r *rand.Rand, n int) Trace {
	tr := make(Trace, n)
	for i := range tr {
		op := Read
		if r.Intn(2) == 1 {
			op = Write
		}
		tr[i] = Access{Addr: r.Uint64(), Op: op, Think: uint32(r.Intn(1000))}
	}
	return tr
}

func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := randomTrace(r, 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("len=%d want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], tr[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := make(Trace, len(addrs))
		for i, a := range addrs {
			op := Read
			if r.Intn(2) == 1 {
				op = Write
			}
			tr[i] = Access{Addr: a, Op: op, Think: uint32(r.Intn(1 << 20))}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadTextComments(t *testing.T) {
	in := "# header\n\nR 100 5\n  w ff\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("len=%d", len(tr))
	}
	if tr[0].Addr != 0x100 || tr[0].Think != 5 || tr[0].Op != Read {
		t.Errorf("tr[0]=%+v", tr[0])
	}
	if tr[1].Addr != 0xff || tr[1].Op != Write {
		t.Errorf("tr[1]=%+v", tr[1])
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, in := range []string{
		"X 100\n",
		"R zz\n",
		"R\n",
		"R 1 2 3 4\n",
		"R 1 bad\n",
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q) succeeded", in)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("BADMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid magic, truncated record.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{{Addr: 1}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Error("truncated record accepted")
	}
	// Corrupt op byte.
	b[len(b)-1] = 99
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("invalid op byte accepted")
	}
}

func TestEmptyTraceCodecs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty binary round trip: %v %v", got, err)
	}
	buf.Reset()
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadText(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty text round trip: %v %v", got, err)
	}
}
