package memtrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming access to the binary trace format, for readers that must not
// trust the sender: a service decoding an uploaded trace needs a record
// cap enforced while reading (not after buffering the whole body) and
// must treat every malformed input as an error, never a panic.

// ErrTraceTooLarge is returned (wrapped) when a decode exceeds its record
// limit.
var ErrTraceTooLarge = errors.New("memtrace: trace exceeds record limit")

// Decoder reads binary-format accesses one record at a time.
type Decoder struct {
	br      *bufio.Reader
	started bool
	count   int64
	err     error
}

// NewDecoder returns a Decoder reading the binary format from r. The magic
// header is consumed and checked on the first Next call.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// Next returns the next access. It returns io.EOF at a clean end of
// stream; any other error (bad magic, truncated record, invalid op byte)
// is terminal and repeated by later calls.
func (d *Decoder) Next() (Access, error) {
	if d.err != nil {
		return Access{}, d.err
	}
	if !d.started {
		d.started = true
		magic := make([]byte, len(binaryMagic))
		if _, err := io.ReadFull(d.br, magic); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				d.err = fmt.Errorf("memtrace: reading magic: %w", io.ErrUnexpectedEOF)
			} else {
				d.err = fmt.Errorf("memtrace: reading magic: %w", err)
			}
			return Access{}, d.err
		}
		if string(magic) != binaryMagic {
			d.err = fmt.Errorf("memtrace: bad magic %q", magic)
			return Access{}, d.err
		}
	}
	var rec [13]byte
	_, err := io.ReadFull(d.br, rec[:])
	if err == io.EOF {
		d.err = io.EOF
		return Access{}, io.EOF
	}
	if err != nil {
		d.err = fmt.Errorf("memtrace: truncated record %d: %w", d.count, err)
		return Access{}, d.err
	}
	op := Op(rec[12])
	if op != Read && op != Write {
		d.err = fmt.Errorf("memtrace: record %d: invalid op byte %d", d.count, rec[12])
		return Access{}, d.err
	}
	d.count++
	return Access{
		Addr:  binary.LittleEndian.Uint64(rec[0:8]),
		Think: binary.LittleEndian.Uint32(rec[8:12]),
		Op:    op,
	}, nil
}

// Decoded reports how many records Next has successfully returned.
func (d *Decoder) Decoded() int64 { return d.count }

// ReadBinaryLimit decodes a binary trace of at most maxAccesses records,
// streaming: the limit is enforced as records arrive, so an oversized or
// adversarial body never materializes past the cap. maxAccesses <= 0 means
// no limit (equivalent to ReadBinary). A trace with more records fails
// with an error wrapping ErrTraceTooLarge.
func ReadBinaryLimit(r io.Reader, maxAccesses int) (Trace, error) {
	d := NewDecoder(r)
	var t Trace
	for {
		a, err := d.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if maxAccesses > 0 && len(t) >= maxAccesses {
			return nil, fmt.Errorf("%w (limit %d)", ErrTraceTooLarge, maxAccesses)
		}
		t = append(t, a)
	}
}
