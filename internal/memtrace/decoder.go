package memtrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming access to the binary trace format, for readers that must not
// trust the sender: a service decoding an uploaded trace needs a record
// cap enforced while reading (not after buffering the whole body) and
// must treat every malformed input as an error, never a panic.

// ErrTraceTooLarge is returned (wrapped) when a decode exceeds its record
// limit.
var ErrTraceTooLarge = errors.New("memtrace: trace exceeds record limit")

// Decoder reads binary-format accesses one record at a time.
type Decoder struct {
	br      *bufio.Reader
	started bool
	count   int64
	err     error
	// rec is the scratch buffer every record is read into. As a field it
	// is allocated once with the Decoder; as a local it would escape
	// through the io.ReadFull interface call and cost one heap allocation
	// per record decoded.
	rec [13]byte
}

// NewDecoder returns a Decoder reading the binary format from r. The magic
// header is consumed and checked on the first Next call.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// Next returns the next access. It returns io.EOF at a clean end of
// stream; any other error (bad magic, truncated record, invalid op byte)
// is terminal and repeated by later calls.
func (d *Decoder) Next() (Access, error) {
	if d.err != nil {
		return Access{}, d.err
	}
	if !d.started {
		d.started = true
		magic := d.rec[:len(binaryMagic)]
		if _, err := io.ReadFull(d.br, magic); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				d.err = fmt.Errorf("memtrace: reading magic: %w", io.ErrUnexpectedEOF)
			} else {
				d.err = fmt.Errorf("memtrace: reading magic: %w", err)
			}
			return Access{}, d.err
		}
		if string(magic) != binaryMagic {
			d.err = fmt.Errorf("memtrace: bad magic %q", magic)
			return Access{}, d.err
		}
	}
	_, err := io.ReadFull(d.br, d.rec[:])
	if err == io.EOF {
		d.err = io.EOF
		return Access{}, io.EOF
	}
	if err != nil {
		d.err = fmt.Errorf("memtrace: truncated record %d: %w", d.count, err)
		return Access{}, d.err
	}
	op := Op(d.rec[12])
	if op != Read && op != Write {
		d.err = fmt.Errorf("memtrace: record %d: invalid op byte %d", d.count, d.rec[12])
		return Access{}, d.err
	}
	d.count++
	return Access{
		Addr:  binary.LittleEndian.Uint64(d.rec[0:8]),
		Think: binary.LittleEndian.Uint32(d.rec[8:12]),
		Op:    op,
	}, nil
}

// DecodeBatch fills dst with decoded accesses and returns how many it
// wrote. It returns a short count with a nil error only when the stream
// ended mid-batch; (0, io.EOF) signals a clean end of stream, and any other
// error is terminal as for Next. The caller owns dst and reuses it across
// calls, so a replay loop decodes with zero allocations per record —
// feeding a simulator chunk-wise instead of paying a call (and its error
// checks) per access.
func (d *Decoder) DecodeBatch(dst []Access) (int, error) {
	for i := range dst {
		a, err := d.Next()
		if err == io.EOF {
			if i > 0 {
				return i, nil
			}
			return 0, io.EOF
		}
		if err != nil {
			return i, err
		}
		dst[i] = a
	}
	return len(dst), nil
}

// Decoded reports how many records Next has successfully returned.
func (d *Decoder) Decoded() int64 { return d.count }

// ReadBinaryLimit decodes a binary trace of at most maxAccesses records,
// streaming: the limit is enforced as records arrive, so an oversized or
// adversarial body never materializes past the cap. maxAccesses <= 0 means
// no limit (equivalent to ReadBinary). A trace with more records fails
// with an error wrapping ErrTraceTooLarge.
func ReadBinaryLimit(r io.Reader, maxAccesses int) (Trace, error) {
	d := NewDecoder(r)
	var t Trace
	var chunk [4096]Access
	for {
		// Decode through a fixed stack chunk and append chunk-wise: the
		// limit check runs once per chunk boundary instead of once per
		// record, and the trace still never grows past limit+chunk.
		n, err := d.DecodeBatch(chunk[:])
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if maxAccesses > 0 && len(t)+n > maxAccesses {
			return nil, fmt.Errorf("%w (limit %d)", ErrTraceTooLarge, maxAccesses)
		}
		t = append(t, chunk[:n]...)
	}
}
