package memtrace

import (
	"fmt"
	"sort"

	"colcache/internal/memory"
)

// Stats summarizes a trace.
type Stats struct {
	Accesses     int64
	Reads        int64
	Writes       int64
	Instructions int64
	UniqueLines  int
	UniquePages  int
	MinAddr      memory.Addr
	MaxAddr      memory.Addr
}

// Summarize computes Stats for t under geometry g.
func Summarize(t Trace, g memory.Geometry) Stats {
	s := Stats{Accesses: int64(len(t))}
	if len(t) == 0 {
		return s
	}
	lines := make(map[uint64]struct{})
	pages := make(map[uint64]struct{})
	s.MinAddr = t[0].Addr
	for _, a := range t {
		if a.Op == Read {
			s.Reads++
		} else {
			s.Writes++
		}
		s.Instructions += int64(a.Think) + 1
		lines[g.LineNumber(a.Addr)] = struct{}{}
		pages[g.PageNumber(a.Addr)] = struct{}{}
		if a.Addr < s.MinAddr {
			s.MinAddr = a.Addr
		}
		if a.Addr > s.MaxAddr {
			s.MaxAddr = a.Addr
		}
	}
	s.UniqueLines = len(lines)
	s.UniquePages = len(pages)
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d (R=%d W=%d) instrs=%d lines=%d pages=%d range=[0x%x,0x%x]",
		s.Accesses, s.Reads, s.Writes, s.Instructions, s.UniqueLines, s.UniquePages, s.MinAddr, s.MaxAddr)
}

// RegionCounts tallies accesses per named region. Accesses that fall outside
// every region are counted under the empty name.
func RegionCounts(t Trace, regions []memory.Region) map[string]int64 {
	// Sort a copy by base for binary search.
	sorted := make([]memory.Region, len(regions))
	copy(sorted, regions)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	counts := make(map[string]int64)
	for _, a := range t {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].End() > a.Addr })
		if i < len(sorted) && sorted[i].Contains(a.Addr) {
			counts[sorted[i].Name]++
		} else {
			counts[""]++
		}
	}
	return counts
}

// FilterRegion returns the sub-trace of accesses that fall inside r,
// preserving order. Think time of dropped accesses is folded into the next
// kept access so instruction counts stay faithful.
func FilterRegion(t Trace, r memory.Region) Trace {
	var out Trace
	var pending uint32
	for _, a := range t {
		if r.Contains(a.Addr) {
			a.Think += pending
			pending = 0
			out = append(out, a)
		} else {
			pending += a.Think + 1
		}
	}
	return out
}

// Rebase returns a copy of t with delta added to every address. Used to give
// each job in a multitasking mix a disjoint address space.
func Rebase(t Trace, delta uint64) Trace {
	out := make(Trace, len(t))
	for i, a := range t {
		a.Addr += delta
		out[i] = a
	}
	return out
}

// Interleave merges traces round-robin in chunks of quantum instructions,
// modeling what a shared memory system observes under multiprogramming.
// Each trace is consumed once (no cyclic replay); when one runs out the
// rest continue. Quantum must be at least 1.
func Interleave(quantum int64, traces ...Trace) Trace {
	if quantum < 1 || len(traces) == 0 {
		return nil
	}
	pos := make([]int, len(traces))
	var total int
	for _, t := range traces {
		total += len(t)
	}
	out := make(Trace, 0, total)
	for {
		advanced := false
		for i, t := range traces {
			var ran int64
			for pos[i] < len(t) && ran < quantum {
				a := t[pos[i]]
				out = append(out, a)
				ran += int64(a.Think) + 1
				pos[i]++
				advanced = true
			}
		}
		if !advanced {
			return out
		}
	}
}

// ReuseDistance summarizes the temporal locality of a trace: for each
// access, the number of distinct cache lines touched since the previous
// access to the same line (∞ for first touches). A cache of associativity ×
// sets ≥ d lines captures, under LRU, every reuse at distance < d, so the
// histogram predicts miss rates across cache sizes.
type ReuseDistance struct {
	// Histogram[b] counts reuses with distance in [2^b, 2^(b+1)); bucket 0
	// holds distances 0 and 1.
	Histogram []int64
	// ColdMisses counts first touches (infinite distance).
	ColdMisses int64
	// Accesses is the trace length.
	Accesses int64
}

// HitRateAt estimates the LRU hit rate of a fully-associative cache holding
// `lines` lines: the fraction of accesses whose reuse distance is below it.
func (r ReuseDistance) HitRateAt(lines int) float64 {
	if r.Accesses == 0 {
		return 0
	}
	var hits int64
	for b, n := range r.Histogram {
		// Bucket b spans [2^b, 2^(b+1)); count it if fully below `lines`.
		if (int64(1) << uint(b+1)) <= int64(lines) {
			hits += n
		}
	}
	return float64(hits) / float64(r.Accesses)
}

// ReuseDistances computes the line-granular reuse-distance histogram of t
// under geometry g, using the classic stack algorithm (exact, O(N·D) worst
// case with a move-to-front list; traces here are small enough).
func ReuseDistances(t Trace, g memory.Geometry) ReuseDistance {
	r := ReuseDistance{Accesses: int64(len(t))}
	// Move-to-front stack of line numbers; depth of a line = #distinct
	// lines above it.
	var stack []uint64
	pos := make(map[uint64]int) // line -> index in stack (approximate; fixed on access)
	bucketOf := func(d int) int {
		b := 0
		for d >= 2 {
			d >>= 1
			b++
		}
		return b
	}
	for _, a := range t {
		ln := g.LineNumber(a.Addr)
		idx, seen := pos[ln]
		if !seen || idx >= len(stack) || stack[idx] != ln {
			// Either cold, or the cached index is stale — search.
			found := -1
			for i, l := range stack {
				if l == ln {
					found = i
					break
				}
			}
			idx, seen = found, found >= 0
		}
		if !seen {
			r.ColdMisses++
			stack = append([]uint64{ln}, stack...)
		} else {
			d := idx
			b := bucketOf(d)
			for len(r.Histogram) <= b {
				r.Histogram = append(r.Histogram, 0)
			}
			r.Histogram[b]++
			copy(stack[1:idx+1], stack[:idx])
			stack[0] = ln
		}
		// Cached positions go stale as the stack shifts; refresh the moved
		// line's entry (others are validated on use).
		pos[ln] = 0
	}
	return r
}
