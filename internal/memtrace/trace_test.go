package memtrace

import (
	"testing"

	"colcache/internal/memory"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Think(3)
	r.Load(0x100)
	r.Store(0x200)
	r.Think(-5) // ignored
	r.Think(2)
	r.Load(0x100)

	tr := r.Trace()
	if len(tr) != 3 {
		t.Fatalf("len=%d want 3", len(tr))
	}
	want := Trace{
		{Addr: 0x100, Op: Read, Think: 3},
		{Addr: 0x200, Op: Write, Think: 0},
		{Addr: 0x100, Op: Read, Think: 2},
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Errorf("access %d = %+v want %+v", i, tr[i], want[i])
		}
	}
	if got := tr.Instructions(); got != 8 { // 3 accesses + 5 think
		t.Errorf("Instructions=%d want 8", got)
	}
	if tr.Reads() != 2 || tr.Writes() != 1 {
		t.Errorf("Reads=%d Writes=%d", tr.Reads(), tr.Writes())
	}
}

func TestRecorderRegionHelpers(t *testing.T) {
	var r Recorder
	reg := memory.Region{Name: "v", Base: 0x1000, Size: 64}
	r.LoadRegion(reg, 4)
	r.StoreRegion(reg, 8)
	tr := r.Trace()
	if tr[0].Addr != 0x1004 || tr[1].Addr != 0x1008 {
		t.Errorf("addrs=%x,%x", tr[0].Addr, tr[1].Addr)
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Think(5)
	r.Load(1)
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	r.Load(2)
	if tr := r.Trace(); tr[0].Think != 0 {
		t.Errorf("think survived Reset: %d", tr[0].Think)
	}
}

func TestFootprint(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	tr := Trace{
		{Addr: 0}, {Addr: 31}, // same line
		{Addr: 32}, // next line
		{Addr: 1000},
	}
	if got := tr.Footprint(g); got != 3 {
		t.Errorf("Footprint=%d want 3", got)
	}
}

func TestSliceClamps(t *testing.T) {
	tr := Trace{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	if got := tr.Slice(-5, 2); len(got) != 2 {
		t.Errorf("Slice(-5,2) len=%d", len(got))
	}
	if got := tr.Slice(1, 99); len(got) != 2 {
		t.Errorf("Slice(1,99) len=%d", len(got))
	}
	if got := tr.Slice(2, 1); got != nil {
		t.Errorf("Slice(2,1)=%v", got)
	}
}

func TestConcat(t *testing.T) {
	a := Trace{{Addr: 1}}
	b := Trace{{Addr: 2}, {Addr: 3}}
	c := Concat(a, b, nil)
	if len(c) != 3 || c[2].Addr != 3 {
		t.Errorf("Concat=%v", c)
	}
}

func TestStatsSummarize(t *testing.T) {
	g := memory.MustGeometry(32, 256)
	tr := Trace{
		{Addr: 0, Op: Read, Think: 2},
		{Addr: 300, Op: Write},
		{Addr: 10, Op: Read},
	}
	s := Summarize(tr, g)
	if s.Accesses != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.Instructions != 5 {
		t.Errorf("Instructions=%d want 5", s.Instructions)
	}
	if s.UniqueLines != 2 || s.UniquePages != 2 {
		t.Errorf("lines=%d pages=%d", s.UniqueLines, s.UniquePages)
	}
	if s.MinAddr != 0 || s.MaxAddr != 300 {
		t.Errorf("range=[%d,%d]", s.MinAddr, s.MaxAddr)
	}
	empty := Summarize(nil, g)
	if empty.Accesses != 0 {
		t.Errorf("empty stats: %+v", empty)
	}
}

func TestRegionCounts(t *testing.T) {
	regions := []memory.Region{
		{Name: "a", Base: 0, Size: 100},
		{Name: "b", Base: 200, Size: 100},
	}
	tr := Trace{{Addr: 5}, {Addr: 50}, {Addr: 250}, {Addr: 150}}
	got := RegionCounts(tr, regions)
	if got["a"] != 2 || got["b"] != 1 || got[""] != 1 {
		t.Errorf("counts=%v", got)
	}
}

func TestFilterRegionPreservesInstructionCount(t *testing.T) {
	r := memory.Region{Name: "r", Base: 100, Size: 100}
	tr := Trace{
		{Addr: 0, Think: 5},
		{Addr: 110, Think: 1},
		{Addr: 50, Think: 2},
		{Addr: 120, Think: 0},
	}
	f := FilterRegion(tr, r)
	if len(f) != 2 {
		t.Fatalf("len=%d want 2", len(f))
	}
	// Dropped access 0 contributes 5+1=6 folded into first kept access.
	if f[0].Think != 7 {
		t.Errorf("f[0].Think=%d want 7", f[0].Think)
	}
	// Dropped access at addr 50 contributes 2+1=3 folded into next.
	if f[1].Think != 3 {
		t.Errorf("f[1].Think=%d want 3", f[1].Think)
	}
	if f.Instructions() != tr.Instructions() {
		t.Errorf("instructions not preserved: %d vs %d", f.Instructions(), tr.Instructions())
	}
}

func TestRebase(t *testing.T) {
	tr := Trace{{Addr: 1}, {Addr: 2}}
	out := Rebase(tr, 0x1000)
	if out[0].Addr != 0x1001 || out[1].Addr != 0x1002 {
		t.Errorf("Rebase=%v", out)
	}
	if tr[0].Addr != 1 {
		t.Error("Rebase mutated its input")
	}
}

func TestInterleave(t *testing.T) {
	a := Trace{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	b := Trace{{Addr: 101}, {Addr: 102}}
	got := Interleave(1, a, b)
	want := []uint64{1, 101, 2, 102, 3}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Addr != w {
			t.Errorf("got[%d]=%d want %d", i, got[i].Addr, w)
		}
	}
}

func TestInterleaveQuantumRespectsThink(t *testing.T) {
	// Each access of a is 5 instructions; quantum 5 → one access per turn.
	a := Trace{{Addr: 1, Think: 4}, {Addr: 2, Think: 4}}
	b := Trace{{Addr: 101}, {Addr: 102}}
	got := Interleave(5, a, b)
	// a[0] (5 instructions fills its turn), then all of b (2 instructions,
	// under quantum), then a[1].
	wantAddrs := []uint64{1, 101, 102, 2}
	if len(got) != len(wantAddrs) {
		t.Fatalf("len=%d want %d: %v", len(got), len(wantAddrs), got)
	}
	for i, w := range wantAddrs {
		if got[i].Addr != w {
			t.Errorf("got[%d]=%d want %d", i, got[i].Addr, w)
		}
	}
}

func TestInterleaveEdgeCases(t *testing.T) {
	if got := Interleave(0, Trace{{Addr: 1}}); got != nil {
		t.Error("quantum 0 produced output")
	}
	if got := Interleave(1); got != nil {
		t.Error("no traces produced output")
	}
	a := Trace{{Addr: 1}}
	if got := Interleave(10, a, nil, Trace{}); len(got) != 1 {
		t.Errorf("empty traces mishandled: %v", got)
	}
	// All accesses preserved.
	big := Interleave(3, Trace{{Addr: 1}, {Addr: 2}}, Trace{{Addr: 3}})
	if int64(len(big)) != 3 {
		t.Errorf("lost accesses: %d", len(big))
	}
}

func TestReuseDistances(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	// Lines A B A B: both reuses at distance 1 (one distinct line between).
	tr := Trace{{Addr: 0}, {Addr: 32}, {Addr: 0}, {Addr: 32}}
	r := ReuseDistances(tr, g)
	if r.ColdMisses != 2 || r.Accesses != 4 {
		t.Errorf("cold=%d accesses=%d", r.ColdMisses, r.Accesses)
	}
	if len(r.Histogram) == 0 || r.Histogram[0] != 2 {
		t.Errorf("histogram=%v", r.Histogram)
	}
	// A fully-associative cache of 2 lines captures both reuses.
	if hr := r.HitRateAt(2); hr != 0.5 {
		t.Errorf("HitRateAt(2)=%v want 0.5", hr)
	}
}

func TestReuseDistancesStreaming(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	var tr Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, Access{Addr: uint64(i * 32)})
	}
	r := ReuseDistances(tr, g)
	if r.ColdMisses != 100 {
		t.Errorf("stream cold=%d want 100", r.ColdMisses)
	}
	if r.HitRateAt(1<<20) != 0 {
		t.Error("stream has hits?")
	}
}

func TestReuseDistancesLoop(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	var tr Trace
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 8; i++ {
			tr = append(tr, Access{Addr: uint64(i * 32)})
		}
	}
	r := ReuseDistances(tr, g)
	if r.ColdMisses != 8 {
		t.Errorf("cold=%d want 8", r.ColdMisses)
	}
	// All 24 reuses at distance 7 (< 8 lines): an 8-line cache catches all.
	if hr := r.HitRateAt(16); hr != 24.0/32.0 {
		t.Errorf("HitRateAt(16)=%v want 0.75", hr)
	}
	// A 4-line cache catches none (distance 7 ≥ 4).
	if hr := r.HitRateAt(4); hr != 0 {
		t.Errorf("HitRateAt(4)=%v want 0", hr)
	}
}

func TestReuseDistanceEmpty(t *testing.T) {
	g := memory.MustGeometry(32, 4096)
	r := ReuseDistances(nil, g)
	if r.HitRateAt(100) != 0 || r.Accesses != 0 {
		t.Errorf("empty=%+v", r)
	}
}
