package memtrace

import (
	"bytes"
	"testing"
)

// FuzzReadText: arbitrary input must never panic, and anything that parses
// must round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("R 100 5\nW ff\n")
	f.Add("# comment\n\nr 0\n")
	f.Add("R zz\n")
	f.Add("W 1 2 3 4\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadText(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("WriteText failed on parsed trace: %v", err)
		}
		tr2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(tr2) != len(tr) {
			t.Fatalf("round trip changed length: %d vs %d", len(tr), len(tr2))
		}
		for i := range tr {
			if tr[i] != tr2[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, tr[i], tr2[i])
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic; valid parses must
// re-encode to the identical byte stream.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	WriteBinary(&seed, Trace{{Addr: 1, Op: Read, Think: 2}, {Addr: 99, Op: Write}})
	f.Add(seed.Bytes())
	f.Add([]byte("CCTRACE1"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), in) {
			t.Fatalf("binary round trip not identical")
		}
	})
}
