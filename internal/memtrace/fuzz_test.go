package memtrace

import (
	"bytes"
	"testing"
)

// FuzzReadText: arbitrary input must never panic, and anything that parses
// must round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("R 100 5\nW ff\n")
	f.Add("# comment\n\nr 0\n")
	f.Add("R zz\n")
	f.Add("W 1 2 3 4\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadText(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("WriteText failed on parsed trace: %v", err)
		}
		tr2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(tr2) != len(tr) {
			t.Fatalf("round trip changed length: %d vs %d", len(tr), len(tr2))
		}
		for i := range tr {
			if tr[i] != tr2[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, tr[i], tr2[i])
			}
		}
	})
}

// FuzzDecoder: the streaming decoder must never panic on arbitrary bytes
// and must agree with the batch ReadBinary on every input — same records on
// success, an error on exactly the inputs ReadBinary rejects. This is the
// decode path a service runs on uploaded request bodies, so "malformed
// input errors, never panics" is a hard requirement.
func FuzzDecoder(f *testing.F) {
	var seed bytes.Buffer
	WriteBinary(&seed, Trace{{Addr: 7, Op: Write, Think: 1}, {Addr: 0xdeadbeef, Op: Read}})
	f.Add(seed.Bytes())
	f.Add([]byte("CCTRACE1"))
	f.Add([]byte("CCTRACE1\x00\x01"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, in []byte) {
		batch, batchErr := ReadBinary(bytes.NewReader(in))

		d := NewDecoder(bytes.NewReader(in))
		var stream Trace
		var streamErr error
		for {
			a, err := d.Next()
			if err != nil {
				if err.Error() != "EOF" {
					streamErr = err
				}
				break
			}
			stream = append(stream, a)
		}

		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("decoder disagreement: batch err %v, stream err %v", batchErr, streamErr)
		}
		if batchErr != nil {
			return
		}
		if len(stream) != len(batch) {
			t.Fatalf("stream decoded %d records, batch %d", len(stream), len(batch))
		}
		for i := range batch {
			if stream[i] != batch[i] {
				t.Fatalf("record %d: stream %+v, batch %+v", i, stream[i], batch[i])
			}
		}
		if _, err := ReadBinaryLimit(bytes.NewReader(in), len(batch)); err != nil {
			t.Fatalf("ReadBinaryLimit at exact size failed: %v", err)
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic; valid parses must
// re-encode to the identical byte stream.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	WriteBinary(&seed, Trace{{Addr: 1, Op: Read, Think: 2}, {Addr: 99, Op: Write}})
	f.Add(seed.Bytes())
	f.Add([]byte("CCTRACE1"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), in) {
			t.Fatalf("binary round trip not identical")
		}
	})
}
