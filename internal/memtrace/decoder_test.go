package memtrace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func sampleTrace(n int) Trace {
	t := make(Trace, n)
	for i := range t {
		op := Read
		if i%3 == 0 {
			op = Write
		}
		t[i] = Access{Addr: uint64(i) * 64, Think: uint32(i % 7), Op: op}
	}
	return t
}

func TestDecoderMatchesReadBinary(t *testing.T) {
	tr := sampleTrace(100)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	var got Trace
	for {
		a, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", d.Decoded(), err)
		}
		got = append(got, a)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if d.Decoded() != int64(len(want)) {
		t.Fatalf("Decoded() = %d, want %d", d.Decoded(), len(want))
	}
}

func TestDecoderErrors(t *testing.T) {
	var valid bytes.Buffer
	WriteBinary(&valid, sampleTrace(3))
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short magic", []byte("CCT")},
		{"bad magic", []byte("NOTATRACEXXXXXXXXXXXXXXXX")},
		{"truncated record", valid.Bytes()[:len(valid.Bytes())-5]},
		{"bad op", append(append([]byte{}, valid.Bytes()...), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 99)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(bytes.NewReader(tc.in))
			var err error
			for err == nil {
				_, err = d.Next()
			}
			if err == io.EOF {
				t.Fatalf("decoder accepted malformed input %q", tc.in)
			}
			// The error must be sticky.
			if _, err2 := d.Next(); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("error not sticky: %v then %v", err, err2)
			}
		})
	}
}

func TestReadBinaryLimit(t *testing.T) {
	tr := sampleTrace(50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}

	got, err := ReadBinaryLimit(bytes.NewReader(buf.Bytes()), 50)
	if err != nil || len(got) != 50 {
		t.Fatalf("at-limit decode: %d records, err %v", len(got), err)
	}
	got, err = ReadBinaryLimit(bytes.NewReader(buf.Bytes()), 0)
	if err != nil || len(got) != 50 {
		t.Fatalf("unlimited decode: %d records, err %v", len(got), err)
	}
	if _, err = ReadBinaryLimit(bytes.NewReader(buf.Bytes()), 49); !errors.Is(err, ErrTraceTooLarge) {
		t.Fatalf("over-limit decode err = %v, want ErrTraceTooLarge", err)
	}
	if !strings.Contains(err.Error(), "49") {
		t.Fatalf("limit missing from error: %v", err)
	}
}
