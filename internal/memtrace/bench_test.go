package memtrace

import (
	"bytes"
	"io"
	"testing"
)

// benchTraceBytes encodes an n-record trace once for the decode benchmarks.
func benchTraceBytes(b *testing.B, n int) []byte {
	b.Helper()
	t := make(Trace, n)
	for i := range t {
		op := Read
		if i%7 == 0 {
			op = Write
		}
		t[i] = Access{Addr: uint64(i) * 32, Op: op, Think: uint32(i % 3)}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, t); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkDecodeNext replays the stream one Next call per record — the
// per-record baseline the batched path is measured against.
func BenchmarkDecodeNext(b *testing.B) {
	data := benchTraceBytes(b, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for b.Loop() {
		d := NewDecoder(bytes.NewReader(data))
		for {
			if _, err := d.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDecodeBatch replays the stream through a reused 1024-record
// buffer. The per-iteration allocations must stay flat as the trace grows:
// the batch buffer is reused across chunks, so the loop allocates only the
// decoder itself.
func BenchmarkDecodeBatch(b *testing.B) {
	data := benchTraceBytes(b, 4096)
	batch := make([]Access, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for b.Loop() {
		d := NewDecoder(bytes.NewReader(data))
		for {
			if _, err := d.DecodeBatch(batch); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
