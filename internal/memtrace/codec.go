package memtrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Text format: one access per line, "R|W <hex-addr> [think]". Lines starting
// with '#' and blank lines are ignored. Think defaults to 0.
//
// Binary format: a 8-byte magic header followed by records of
// {addr uint64, think uint32, op uint8} in little-endian order.

const binaryMagic = "CCTRACE1"

// WriteText writes t in the human-readable text format.
func WriteText(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, a := range t {
		var err error
		if a.Think != 0 {
			_, err = fmt.Fprintf(bw, "%s %x %d\n", a.Op, a.Addr, a.Think)
		} else {
			_, err = fmt.Fprintf(bw, "%s %x\n", a.Op, a.Addr)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("memtrace: line %d: want 'OP ADDR [THINK]', got %q", lineNo, line)
		}
		var op Op
		switch fields[0] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("memtrace: line %d: unknown op %q", lineNo, fields[0])
		}
		var addr uint64
		if _, err := fmt.Sscanf(fields[1], "%x", &addr); err != nil {
			return nil, fmt.Errorf("memtrace: line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		var think uint32
		if len(fields) == 3 {
			var v uint64
			if _, err := fmt.Sscanf(fields[2], "%d", &v); err != nil {
				return nil, fmt.Errorf("memtrace: line %d: bad think count %q: %v", lineNo, fields[2], err)
			}
			think = uint32(v)
		}
		t = append(t, Access{Addr: addr, Op: op, Think: think})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteBinary writes t in the compact binary format.
func WriteBinary(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var rec [13]byte
	for _, a := range t {
		binary.LittleEndian.PutUint64(rec[0:8], a.Addr)
		binary.LittleEndian.PutUint32(rec[8:12], a.Think)
		rec[12] = byte(a.Op)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format produced by WriteBinary.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("memtrace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("memtrace: bad magic %q", magic)
	}
	var t Trace
	var rec [13]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("memtrace: truncated record: %w", err)
		}
		op := Op(rec[12])
		if op != Read && op != Write {
			return nil, fmt.Errorf("memtrace: invalid op byte %d", rec[12])
		}
		t = append(t, Access{
			Addr:  binary.LittleEndian.Uint64(rec[0:8]),
			Think: binary.LittleEndian.Uint32(rec[8:12]),
			Op:    op,
		})
	}
}
