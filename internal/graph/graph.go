// Package graph implements the weighted conflict graph and the coloring
// machinery of the paper's data layout algorithm (paper §3.1.2):
//
//   - an exact minimum graph coloring (branch-and-bound over DSATUR, in the
//     spirit of Coudert's "Exact Coloring of Real-Life Graphs is Easy"),
//   - the merge heuristic: while the graph needs more colors than there are
//     columns, contract the minimum-weight edge and recolor; merged vertices
//     share a column.
//
// Vertices are identified by index; callers keep their own name mapping.
package graph

import "fmt"

// Graph is a complete weighted undirected graph; a zero weight means the
// edge is deleted (the paper deletes zero-weight edges before coloring).
type Graph struct {
	n int
	w [][]int64
}

// New returns an n-vertex graph with all weights zero.
func New(n int) *Graph {
	g := &Graph{n: n, w: make([][]int64, n)}
	for i := range g.w {
		g.w[i] = make([]int64, n)
	}
	return g
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// SetWeight sets the symmetric weight of edge (i, j). Self-edges and
// negative weights are rejected.
func (g *Graph) SetWeight(i, j int, w int64) error {
	if i == j {
		return fmt.Errorf("graph: self edge (%d,%d)", i, j)
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %d", w)
	}
	g.w[i][j] = w
	g.w[j][i] = w
	return nil
}

// Weight returns the weight of edge (i, j).
func (g *Graph) Weight(i, j int) int64 { return g.w[i][j] }

// Edges returns the number of non-zero-weight edges.
func (g *Graph) Edges() int {
	n := 0
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if g.w[i][j] > 0 {
				n++
			}
		}
	}
	return n
}

// Cost returns the paper's objective W for a column assignment: the sum of
// the weights of edges whose endpoints share a column.
func (g *Graph) Cost(assign []int) int64 {
	var total int64
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			if assign[i] == assign[j] {
				total += g.w[i][j]
			}
		}
	}
	return total
}

// adjacency returns the boolean adjacency induced by non-zero weights.
func (g *Graph) adjacency() [][]bool {
	adj := make([][]bool, g.n)
	for i := range adj {
		adj[i] = make([]bool, g.n)
		for j := 0; j < g.n; j++ {
			adj[i][j] = i != j && g.w[i][j] > 0
		}
	}
	return adj
}

// exactBudget bounds the branch-and-bound search. Real layout graphs are
// small and color quickly (Coudert's observation); the budget is a backstop
// against pathological inputs, after which the best coloring found so far —
// at worst the greedy DSATUR bound — is returned.
const exactBudget = 2_000_000

// ExactColor finds a minimum proper coloring of the non-zero-weight edges.
// It returns the color classes (assign[v] in [0,k)) and the number of colors
// k. The empty graph colors with 0 colors.
func (g *Graph) ExactColor() (assign []int, k int) {
	return exactColor(g.adjacency())
}

func exactColor(adj [][]bool) ([]int, int) {
	n := len(adj)
	if n == 0 {
		return nil, 0
	}
	// Greedy DSATUR gives the initial upper bound and a valid coloring.
	best := dsaturGreedy(adj)
	bestK := maxColor(best) + 1

	// Branch and bound: assign vertices in DSATUR order, trying colors
	// 0..min(maxUsed+1, bestK-1).
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	budget := exactBudget
	var search func(colored, usedK int) bool
	search = func(colored, usedK int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if usedK >= bestK {
			return false
		}
		if colored == n {
			best = append([]int(nil), assign...)
			bestK = usedK
			return true
		}
		v := pickDSATUR(adj, assign)
		limit := usedK + 1
		if limit > bestK-1 {
			limit = bestK - 1
		}
		for c := 0; c < limit; c++ {
			ok := true
			for u := 0; u < n; u++ {
				if adj[v][u] && assign[u] == c {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[v] = c
			nextK := usedK
			if c == usedK {
				nextK++
			}
			search(colored+1, nextK)
			assign[v] = -1
		}
		return false
	}
	search(0, 0)
	return best, bestK
}

// pickDSATUR selects the uncolored vertex with the highest saturation
// (distinct neighbor colors), breaking ties by degree.
func pickDSATUR(adj [][]bool, assign []int) int {
	n := len(adj)
	bestV, bestSat, bestDeg := -1, -1, -1
	for v := 0; v < n; v++ {
		if assign[v] >= 0 {
			continue
		}
		seen := make(map[int]struct{})
		deg := 0
		for u := 0; u < n; u++ {
			if !adj[v][u] {
				continue
			}
			deg++
			if assign[u] >= 0 {
				seen[assign[u]] = struct{}{}
			}
		}
		if len(seen) > bestSat || (len(seen) == bestSat && deg > bestDeg) {
			bestV, bestSat, bestDeg = v, len(seen), deg
		}
	}
	return bestV
}

// dsaturGreedy colors greedily in DSATUR order.
func dsaturGreedy(adj [][]bool) []int {
	n := len(adj)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for colored := 0; colored < n; colored++ {
		v := pickDSATUR(adj, assign)
		used := make(map[int]bool)
		for u := 0; u < n; u++ {
			if adj[v][u] && assign[u] >= 0 {
				used[assign[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		assign[v] = c
	}
	return assign
}

func maxColor(assign []int) int {
	m := -1
	for _, c := range assign {
		if c > m {
			m = c
		}
	}
	return m
}

// ColorInto implements the paper's column-assignment heuristic: exact-color
// the graph; if it needs more than k colors, repeatedly merge the vertices
// joined by the minimum-weight (non-zero) edge and recolor, until at most k
// colors suffice. Merged vertices are assigned the same column. It returns
// the per-vertex column assignment (values in [0, k)) and the total cost W
// of co-resident pairs.
//
// k must be at least 1. With k == 1 everything shares the one column.
func (g *Graph) ColorInto(k int) ([]int, int64, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("graph: cannot color into %d columns", k)
	}
	n := g.n
	if n == 0 {
		return nil, 0, nil
	}

	// group[v] identifies the merged super-vertex v belongs to.
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	// Merged weights between groups, starting as a copy.
	w := make([][]int64, n)
	for i := range w {
		w[i] = append([]int64(nil), g.w[i]...)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	for {
		// Build the compacted graph of alive groups.
		var ids []int
		for i := 0; i < n; i++ {
			if alive[i] {
				ids = append(ids, i)
			}
		}
		adj := make([][]bool, len(ids))
		for a := range ids {
			adj[a] = make([]bool, len(ids))
			for b := range ids {
				adj[a][b] = a != b && w[ids[a]][ids[b]] > 0
			}
		}
		colors, need := exactColor(adj)
		if need <= k || len(ids) <= k {
			// Assign columns: group color, padded for the degenerate case
			// where fewer groups than colors... colors fit in k by merge.
			assign := make([]int, n)
			colorOf := make(map[int]int, len(ids))
			for a, id := range ids {
				c := 0
				if colors != nil {
					c = colors[a]
				}
				if c >= k { // only possible when len(ids) <= k but need > k
					c = a % k
				}
				colorOf[id] = c
			}
			for v := 0; v < n; v++ {
				assign[v] = colorOf[find(group, v)]
			}
			return assign, g.Cost(assign), nil
		}

		// Merge the minimum-weight non-zero edge among alive groups.
		mi, mj, mw := -1, -1, int64(-1)
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				ew := w[ids[a]][ids[b]]
				if ew > 0 && (mw < 0 || ew < mw) {
					mi, mj, mw = ids[a], ids[b], ew
				}
			}
		}
		if mi < 0 {
			// No edges left but still "need > k": cannot happen (an edgeless
			// graph 1-colors), but guard against an infinite loop.
			return nil, 0, fmt.Errorf("graph: coloring failed to converge")
		}
		// Fold mj into mi.
		for x := 0; x < n; x++ {
			if !alive[x] || x == mi || x == mj {
				continue
			}
			w[mi][x] += w[mj][x]
			w[x][mi] = w[mi][x]
		}
		alive[mj] = false
		for v := 0; v < n; v++ {
			if group[v] == mj {
				group[v] = mi
			}
		}
	}
}

// find resolves a vertex's group with path-free lookup (groups are flat:
// merging rewrites members eagerly).
func find(group []int, v int) int { return group[v] }
