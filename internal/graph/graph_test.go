package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetWeightValidation(t *testing.T) {
	g := New(3)
	if err := g.SetWeight(0, 0, 1); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.SetWeight(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.SetWeight(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if g.Weight(1, 0) != 5 {
		t.Error("weight not symmetric")
	}
	if g.Edges() != 1 {
		t.Errorf("edges=%d", g.Edges())
	}
}

func TestCost(t *testing.T) {
	g := New(3)
	g.SetWeight(0, 1, 5)
	g.SetWeight(1, 2, 7)
	g.SetWeight(0, 2, 11)
	if c := g.Cost([]int{0, 0, 1}); c != 5 {
		t.Errorf("cost=%d want 5", c)
	}
	if c := g.Cost([]int{0, 1, 2}); c != 0 {
		t.Errorf("cost=%d want 0", c)
	}
	if c := g.Cost([]int{0, 0, 0}); c != 23 {
		t.Errorf("cost=%d want 23", c)
	}
}

func TestExactColorKnownGraphs(t *testing.T) {
	// Empty graph: 0 colors needed... per-vertex coloring of edgeless graph
	// is 1 color (all same).
	g := New(4)
	if _, k := g.ExactColor(); k != 1 {
		t.Errorf("edgeless graph: k=%d want 1", k)
	}

	// Triangle: 3 colors.
	g = New(3)
	g.SetWeight(0, 1, 1)
	g.SetWeight(1, 2, 1)
	g.SetWeight(0, 2, 1)
	if _, k := g.ExactColor(); k != 3 {
		t.Errorf("triangle: k=%d want 3", k)
	}

	// C5 (odd cycle): 3 colors.
	g = New(5)
	for i := 0; i < 5; i++ {
		g.SetWeight(i, (i+1)%5, 1)
	}
	if _, k := g.ExactColor(); k != 3 {
		t.Errorf("C5: k=%d want 3", k)
	}

	// Bipartite K3,3: 2 colors.
	g = New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			g.SetWeight(i, j, 1)
		}
	}
	if _, k := g.ExactColor(); k != 2 {
		t.Errorf("K3,3: k=%d want 2", k)
	}

	// Petersen graph: chromatic number 3 (greedy alone often says 4).
	g = New(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, e := range append(append(outer, inner...), spokes...) {
		g.SetWeight(e[0], e[1], 1)
	}
	if _, k := g.ExactColor(); k != 3 {
		t.Errorf("Petersen: k=%d want 3", k)
	}

	// K6: 6 colors.
	g = New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.SetWeight(i, j, 1)
		}
	}
	if _, k := g.ExactColor(); k != 6 {
		t.Errorf("K6: k=%d want 6", k)
	}
}

func TestExactColorProper(t *testing.T) {
	g := New(8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if r.Intn(2) == 0 {
				g.SetWeight(i, j, int64(1+r.Intn(10)))
			}
		}
	}
	assign, k := g.ExactColor()
	for i := 0; i < 8; i++ {
		if assign[i] < 0 || assign[i] >= k {
			t.Fatalf("color %d outside [0,%d)", assign[i], k)
		}
		for j := i + 1; j < 8; j++ {
			if g.Weight(i, j) > 0 && assign[i] == assign[j] {
				t.Fatalf("improper: %d and %d share color %d", i, j, assign[i])
			}
		}
	}
}

func TestColorIntoEnoughColumns(t *testing.T) {
	// Triangle into 3 columns: zero cost, all different.
	g := New(3)
	g.SetWeight(0, 1, 5)
	g.SetWeight(1, 2, 3)
	g.SetWeight(0, 2, 4)
	assign, cost, err := g.ColorInto(3)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("cost=%d want 0", cost)
	}
	if assign[0] == assign[1] || assign[1] == assign[2] || assign[0] == assign[2] {
		t.Errorf("assign=%v", assign)
	}
}

func TestColorIntoMergesMinWeightEdge(t *testing.T) {
	// Triangle with weights 1 (0-1), 10 (1-2), 10 (0-2) into 2 columns:
	// the heuristic merges the min-weight edge (0,1) so cost is 1.
	g := New(3)
	g.SetWeight(0, 1, 1)
	g.SetWeight(1, 2, 10)
	g.SetWeight(0, 2, 10)
	assign, cost, err := g.ColorInto(2)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1 {
		t.Errorf("cost=%d want 1 (merge cheapest edge)", cost)
	}
	if assign[0] != assign[1] || assign[2] == assign[0] {
		t.Errorf("assign=%v", assign)
	}
}

func TestColorIntoOneColumn(t *testing.T) {
	g := New(4)
	g.SetWeight(0, 1, 2)
	g.SetWeight(2, 3, 3)
	assign, cost, err := g.ColorInto(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range assign {
		if c != 0 {
			t.Errorf("assign=%v", assign)
		}
	}
	if cost != 5 {
		t.Errorf("cost=%d want 5", cost)
	}
}

func TestColorIntoValidation(t *testing.T) {
	if _, _, err := New(2).ColorInto(0); err == nil {
		t.Error("k=0 accepted")
	}
	if assign, cost, err := New(0).ColorInto(2); err != nil || assign != nil || cost != 0 {
		t.Errorf("empty graph: %v %v %v", assign, cost, err)
	}
}

func TestColorIntoDisjointLifetimeClusters(t *testing.T) {
	// Two cliques of 3 with no edges between them, 3 columns: both cliques
	// can use the same 3 columns, cost 0 — the paper's disjoint-lifetime
	// sharing in action.
	g := New(6)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			g.SetWeight(i, j, 4)
			g.SetWeight(i+3, j+3, 4)
		}
	}
	_, cost, err := g.ColorInto(3)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("cost=%d want 0", cost)
	}
}

// Property: ColorInto always produces an assignment within [0,k) and a cost
// that matches Cost(assign); and with k >= chromatic number the cost is 0.
func TestColorIntoProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(9)
		k := 1 + int(kRaw)%4
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) > 0 {
					g.SetWeight(i, j, int64(1+r.Intn(100)))
				}
			}
		}
		assign, cost, err := g.ColorInto(k)
		if err != nil || len(assign) != n {
			return false
		}
		for _, c := range assign {
			if c < 0 || c >= k {
				return false
			}
		}
		if cost != g.Cost(assign) {
			return false
		}
		_, chrom := g.ExactColor()
		if k >= chrom && cost != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the heuristic's cost is never better than the true optimum found
// by brute force, and never worse than putting everything in one column.
func TestColorIntoCostBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5) // brute force over k^n, keep small
		k := 1 + r.Intn(3)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.SetWeight(i, j, int64(r.Intn(50)))
			}
		}
		_, cost, err := g.ColorInto(k)
		if err != nil {
			return false
		}
		// Brute-force optimum.
		best := int64(1 << 62)
		assign := make([]int, n)
		var rec func(int)
		rec = func(v int) {
			if v == n {
				if c := g.Cost(assign); c < best {
					best = c
				}
				return
			}
			for c := 0; c < k; c++ {
				assign[v] = c
				rec(v + 1)
			}
		}
		rec(0)
		allOne := make([]int, n)
		return cost >= best && cost <= g.Cost(allOne)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ColorInto's merge bookkeeping conserves weight — the cost of
// any assignment equals the sum of intra-column pair weights computed
// directly from the original graph, so merging can never lose or invent
// conflict weight.
func TestMergeConservesWeightProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(7)
		g := New(n)
		var total int64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w := int64(r.Intn(20))
				g.SetWeight(i, j, w)
				total += w
			}
		}
		// Cost of the all-in-one-column assignment must equal the total
		// edge weight regardless of how ColorInto merged internally.
		assign, cost, err := g.ColorInto(1)
		if err != nil {
			return false
		}
		for _, c := range assign {
			if c != 0 {
				return false
			}
		}
		return cost == total && cost == g.Cost(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
