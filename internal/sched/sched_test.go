package sched

import (
	"strings"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
)

func newSys() *memsys.System {
	return memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 64, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
}

// loopTrace touches `lines` distinct lines sequentially, with the given
// think time per access.
func loopTrace(base uint64, lines int, think uint32) memtrace.Trace {
	tr := make(memtrace.Trace, lines)
	for i := range tr {
		tr[i] = memtrace.Access{Addr: base + uint64(i*32), Op: memtrace.Read, Think: think}
	}
	return tr
}

func TestSchedulerValidation(t *testing.T) {
	sys := newSys()
	if _, err := NewRoundRobin(sys, 0); err == nil {
		t.Error("quantum 0 accepted")
	}
	rr, err := NewRoundRobin(sys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.Add(&Job{Name: "empty", TargetInstructions: 10}); err == nil {
		t.Error("empty trace accepted")
	}
	if err := rr.Add(&Job{Name: "zero", Trace: loopTrace(0, 1, 0), TargetInstructions: 0}); err == nil {
		t.Error("zero target accepted")
	}
}

func TestSingleJobRunsToTarget(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 100)
	j := &Job{Name: "a", Trace: loopTrace(0, 10, 1), TargetInstructions: 55}
	rr.Add(j)
	stats := rr.Run()
	if len(stats) != 1 {
		t.Fatalf("stats len=%d", len(stats))
	}
	// Each access is 2 instructions (1 think + 1); target 55 → runs 28
	// accesses = 56 instructions (atomic overshoot).
	if stats[0].Instructions != 56 {
		t.Errorf("instructions=%d want 56", stats[0].Instructions)
	}
	if !j.Done() {
		t.Error("job not done")
	}
	if stats[0].Accesses != 28 {
		t.Errorf("accesses=%d", stats[0].Accesses)
	}
}

func TestCyclicReplay(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 1000)
	// 4-line trace replayed to 100 instructions: addresses repeat, so after
	// 4 cold misses everything hits.
	j := &Job{Name: "a", Trace: loopTrace(0, 4, 0), TargetInstructions: 100}
	rr.Add(j)
	stats := rr.Run()
	if stats[0].Misses != 4 {
		t.Errorf("misses=%d want 4 (cold only)", stats[0].Misses)
	}
}

func TestRoundRobinInterleavesFairly(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 10)
	a := &Job{Name: "a", Trace: loopTrace(0, 8, 0), TargetInstructions: 100}
	b := &Job{Name: "b", Trace: loopTrace(1<<20, 8, 0), TargetInstructions: 100}
	rr.Add(a)
	rr.Add(b)
	stats := rr.Run()
	if stats[0].Quanta != stats[1].Quanta {
		t.Errorf("quanta %d vs %d", stats[0].Quanta, stats[1].Quanta)
	}
	if stats[0].Instructions < 100 || stats[1].Instructions < 100 {
		t.Errorf("targets not reached: %d %d", stats[0].Instructions, stats[1].Instructions)
	}
}

func TestUnequalTargets(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 10)
	a := &Job{Name: "a", Trace: loopTrace(0, 8, 0), TargetInstructions: 20}
	b := &Job{Name: "b", Trace: loopTrace(1<<20, 8, 0), TargetInstructions: 200}
	rr.Add(a)
	rr.Add(b)
	stats := rr.Run()
	if stats[0].Instructions < 20 || stats[0].Instructions > 30 {
		t.Errorf("a ran %d instructions", stats[0].Instructions)
	}
	if stats[1].Instructions < 200 {
		t.Errorf("b ran %d instructions", stats[1].Instructions)
	}
}

// TestQuantumSensitivity reproduces the core Figure 5 mechanism in
// miniature: with a shared cache and a competing thrasher, a small quantum
// hurts job A's CPI; with column mapping it does not.
func TestQuantumSensitivity(t *testing.T) {
	run := func(quantum int64, mapped bool) float64 {
		sys := newSys()
		if mapped {
			// Job A's working set → columns 0-1; thrasher → columns 2-3.
			aRegion := memory.Region{Name: "A", Base: 0, Size: 4096}
			bRegion := memory.Region{Name: "B", Base: 1 << 20, Size: 1 << 20}
			if _, err := sys.MapRegion(aRegion, replacement.Of(0, 1)); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.MapRegion(bRegion, replacement.Of(2, 3)); err != nil {
				t.Fatal(err)
			}
		}
		rr, _ := NewRoundRobin(sys, quantum)
		// Job A: loops over 4KB (fits half the 8KB cache).
		a := &Job{Name: "A", Trace: loopTrace(0, 128, 2), TargetInstructions: 60000}
		// Thrasher: streams over 256KB.
		b := &Job{Name: "B", Trace: loopTrace(1<<20, 8192, 0), TargetInstructions: 60000}
		rr.Add(a)
		rr.Add(b)
		return rr.Run()[0].CPI()
	}

	smallShared := run(200, false)
	bigShared := run(50000, false)
	smallMapped := run(200, true)
	bigMapped := run(50000, true)

	if smallShared <= bigShared {
		t.Errorf("shared cache: small-quantum CPI %.3f not worse than big-quantum %.3f",
			smallShared, bigShared)
	}
	if smallMapped >= smallShared {
		t.Errorf("mapping did not help at small quantum: %.3f vs %.3f",
			smallMapped, smallShared)
	}
	// Mapped CPI must be nearly quantum-insensitive.
	varMapped := smallMapped - bigMapped
	if varMapped < 0 {
		varMapped = -varMapped
	}
	if varMapped > 0.15 {
		t.Errorf("mapped CPI varies %.3f across quanta", varMapped)
	}
}

func TestContextSwitchCost(t *testing.T) {
	cfg := memsys.Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 64, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	}
	cfg.Timing.ContextSwitch = 50
	sys := memsys.MustNew(cfg)
	rr, _ := NewRoundRobin(sys, 10)
	j := &Job{Name: "a", Trace: loopTrace(0, 4, 0), TargetInstructions: 20}
	rr.Add(j)
	stats := rr.Run()
	// 2 quanta × 50 cycles of switch overhead charged to the job.
	if stats[0].Quanta != 2 {
		t.Fatalf("quanta=%d", stats[0].Quanta)
	}
	wantMin := int64(2 * 50)
	if stats[0].Cycles < wantMin {
		t.Errorf("cycles=%d, switch cost missing", stats[0].Cycles)
	}
}

func TestFlushTLBOnSwitch(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 5)
	rr.FlushTLBOnSwitch = true
	a := &Job{Name: "a", Trace: loopTrace(0, 4, 0), TargetInstructions: 40}
	rr.Add(a)
	rr.Run()
	if sys.TLB().Stats().Flushes == 0 {
		t.Error("TLB never flushed")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Name: "x", Instructions: 10, Cycles: 25, Accesses: 5, Misses: 1}
	if s.String() == "" || s.CPI() != 2.5 || s.MissRate() != 0.2 {
		t.Errorf("stats: %v CPI=%v MR=%v", s, s.CPI(), s.MissRate())
	}
	var zero Stats
	if zero.CPI() != 0 || zero.MissRate() != 0 {
		t.Error("zero stats rates")
	}
}

// TestProcessMaskVsRegionTints contrasts the Sun patent scheme
// (per-process masks) with column caching's per-region tints (paper §5.1).
// Job A mixes a hot table with its own streaming data. A process mask can
// keep *other* jobs out of A's columns, but inside them the stream still
// evicts the table; per-region tints separate the two.
func TestProcessMaskVsRegionTints(t *testing.T) {
	table := memory.Region{Name: "table", Base: 0, Size: 2048} // fits 1 column (64 sets × 32B)
	stream := memory.Region{Name: "stream", Base: 1 << 20, Size: 1 << 22}

	buildJobA := func() memtrace.Trace {
		var rec memtrace.Recorder
		pos := uint64(0)
		for round := 0; round < 32; round++ {
			for j := 0; j < 256; j++ {
				rec.Load(stream.Base + pos)
				pos += 32
			}
			for off := uint64(0); off < table.Size; off += 32 {
				rec.Load(table.Base + off)
			}
		}
		return rec.Trace()
	}
	thrash := loopTrace(1<<30, 8192, 0)

	countTableMisses := func(regionTints bool) int64 {
		sys := newSys()
		jobA := &Job{Name: "A", Trace: buildJobA(), TargetInstructions: 40000}
		if regionTints {
			// Column caching: A's table gets column 0, A's stream column 1.
			if _, err := sys.MapRegion(table, replacement.Of(0)); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.MapRegion(stream, replacement.Of(1)); err != nil {
				t.Fatal(err)
			}
		} else {
			// Sun scheme: all of job A confined to columns 0-1, no finer.
			jobA.Mask = replacement.Of(0, 1)
		}
		jobB := &Job{Name: "B", Trace: thrash, TargetInstructions: 40000, Mask: replacement.Of(2, 3)}
		rr, _ := NewRoundRobin(sys, 512)
		rr.Add(jobA)
		rr.Add(jobB)

		// Run, counting job A's table misses: a table hit costs 1 cycle.
		// Re-run manually for the counting pass on a fresh system would
		// duplicate the scheduler; instead use A's total misses minus the
		// stream's compulsory ones (every stream line is fresh).
		stats := rr.Run()
		streamAccesses := int64(0)
		for _, a := range jobA.Trace {
			if stream.Contains(a.Addr) {
				streamAccesses++
			}
		}
		// jobA.executed covers ~40000 instructions of its (cyclic) trace;
		// scale stream compulsory misses by the executed fraction.
		frac := float64(stats[0].Accesses) / float64(len(jobA.Trace))
		streamCold := int64(frac * float64(streamAccesses))
		return stats[0].Misses - streamCold
	}

	sunMisses := countTableMisses(false)
	tintMisses := countTableMisses(true)
	if tintMisses >= sunMisses {
		t.Errorf("region tints (%d table misses) not better than process mask (%d)",
			tintMisses, sunMisses)
	}
	// With region tints the table must essentially never miss after warmup.
	if tintMisses > 70 { // 64 cold + slack
		t.Errorf("region tints left %d table misses", tintMisses)
	}
}

func TestJitteredQuantumDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int64 {
		sys := newSys()
		rr, _ := NewRoundRobin(sys, 100)
		rr.JitterFrac = 0.5
		rr.JitterSeed = seed
		a := &Job{Name: "a", Trace: loopTrace(0, 16, 0), TargetInstructions: 2000}
		b := &Job{Name: "b", Trace: loopTrace(1<<20, 16, 0), TargetInstructions: 2000}
		rr.Add(a)
		rr.Add(b)
		stats := rr.Run()
		return []int64{stats[0].Quanta, stats[0].Cycles, stats[1].Quanta}
	}
	r1 := run(7)
	r2 := run(7)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("same seed diverged: %v vs %v", r1, r2)
		}
	}
	r3 := run(8)
	same := true
	for i := range r1 {
		if r1[i] != r3[i] {
			same = false
		}
	}
	if same {
		t.Error("different jitter seeds produced identical schedules")
	}
}

func TestJitterZeroFracIsExact(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 10)
	if q := rr.effectiveQuantum(); q != 10 {
		t.Errorf("quantum=%d want 10", q)
	}
	rr.JitterFrac = 0.5
	for i := 0; i < 100; i++ {
		q := rr.effectiveQuantum()
		if q < 5 || q > 15 {
			t.Fatalf("jittered quantum %d outside [5,15]", q)
		}
	}
}

func TestASIDsBeatTLBFlushOnSwitch(t *testing.T) {
	run := func(flush, asids bool) int64 {
		cfg := memsys.Config{
			Geometry: memory.MustGeometry(32, 4096),
			Cache:    cache.Config{LineBytes: 32, NumSets: 64, NumWays: 4},
			Timing:   memsys.DefaultTiming,
		}
		cfg.Timing.TLBMiss = 30
		sys := memsys.MustNew(cfg)
		rr, _ := NewRoundRobin(sys, 64)
		rr.FlushTLBOnSwitch = flush
		rr.UseASIDs = asids
		// Each job loops over a few pages: TLB-resident unless flushed.
		a := &Job{Name: "a", Trace: loopTrace(0, 16, 0), TargetInstructions: 20000}
		b := &Job{Name: "b", Trace: loopTrace(1<<20, 16, 0), TargetInstructions: 20000}
		rr.Add(a)
		rr.Add(b)
		stats := rr.Run()
		return stats[0].Cycles + stats[1].Cycles
	}
	flushCycles := run(true, false)
	asidCycles := run(false, true)
	if asidCycles >= flushCycles {
		t.Errorf("ASIDs (%d cycles) not cheaper than flushing (%d)", asidCycles, flushCycles)
	}
}

// Per-job energy attribution: each scenario's expected picojoules are
// derived by hand from memsys.DefaultEnergy (TLB=50, walk=1000, cache=500,
// memory=10000) and the job's hit/miss/page profile.
func TestPerJobEnergy(t *testing.T) {
	cases := []struct {
		name   string
		trace  memtrace.Trace
		target int64
		wantPJ int64
	}{
		{
			// 4 lines in one page, looped twice: 1 page walk, 4 cold
			// misses, 4 hits.
			name:   "resident loop",
			trace:  loopTrace(0, 4, 0),
			target: 8,
			wantPJ: 8*50 + 1*1000 + 8*500 + 4*10000,
		},
		{
			// 512 lines (16KB) streamed through the 8KB cache: every
			// access misses, 4 page walks.
			name:   "streaming",
			trace:  loopTrace(0, 512, 0),
			target: 512,
			wantPJ: 512*50 + 4*1000 + 512*500 + 512*10000,
		},
		{
			// Think instructions execute no memory accesses: energy must
			// match the 4-access profile, not the instruction count.
			name:   "think time",
			trace:  loopTrace(0, 4, 9),
			target: 40,
			wantPJ: 4*50 + 1*1000 + 4*500 + 4*10000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSys()
			rr, err := NewRoundRobin(sys, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := rr.Add(&Job{Name: tc.name, Trace: tc.trace, TargetInstructions: tc.target}); err != nil {
				t.Fatal(err)
			}
			st := rr.Run()[0]
			if st.EnergyPJ != tc.wantPJ {
				t.Errorf("EnergyPJ = %d, want %d", st.EnergyPJ, tc.wantPJ)
			}
			if st.EnergyPJ != sys.EnergyPJ() {
				t.Errorf("job energy %d != system energy %d", st.EnergyPJ, sys.EnergyPJ())
			}
			wantEPI := float64(tc.wantPJ) / float64(st.Instructions)
			if got := st.EPI(); got != wantEPI {
				t.Errorf("EPI = %v, want %v", got, wantEPI)
			}
		})
	}
}

// With two jobs sharing the machine, the per-job energies must partition the
// system total exactly, and the thrashing job must pay a higher EPI.
func TestEnergyAttributionAcrossJobs(t *testing.T) {
	sys := newSys()
	rr, _ := NewRoundRobin(sys, 128)
	resident := &Job{Name: "resident", Trace: loopTrace(0, 4, 0), TargetInstructions: 4000}
	thrash := &Job{Name: "thrash", Trace: loopTrace(1<<20, 1024, 0), TargetInstructions: 4000}
	rr.Add(resident)
	rr.Add(thrash)
	stats := rr.Run()
	if sum := stats[0].EnergyPJ + stats[1].EnergyPJ; sum != sys.EnergyPJ() {
		t.Errorf("per-job energies %d don't partition the system total %d", sum, sys.EnergyPJ())
	}
	if stats[0].EPI() >= stats[1].EPI() {
		t.Errorf("resident job EPI %.1f not below thrashing job EPI %.1f", stats[0].EPI(), stats[1].EPI())
	}
	if s := stats[1].String(); !strings.Contains(s, "EPI=") {
		t.Errorf("String omits EPI: %s", s)
	}
}
