// Package sched implements the multitasking substrate of the paper's
// Figure 5 experiment: several jobs share one processor and one cache under
// round-robin scheduling with a configurable time quantum. Each job replays
// its memory-reference trace cyclically until it has executed a target
// number of instructions; per-job cycle and instruction counts give the
// per-job CPI the paper plots.
package sched

import (
	"fmt"

	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
)

// Job is one runnable task.
type Job struct {
	Name string
	// Trace is replayed cyclically.
	Trace memtrace.Trace
	// TargetInstructions is how many instructions the job must execute
	// before it completes.
	TargetInstructions int64
	// Mask, when non-zero, applies to every access of this job in place of
	// the tint-derived mask — process-granularity partitioning, the Sun
	// patent scheme the paper contrasts with (§5.1). It cannot distinguish
	// the job's own data structures from each other; per-region tints can.
	Mask replacement.Mask

	pos      int
	executed int64
	cycles   int64
	misses   int64
	accesses int64
	energyPJ int64
}

// Done reports whether the job has reached its target.
func (j *Job) Done() bool { return j.executed >= j.TargetInstructions }

// Stats summarizes one job's run.
type Stats struct {
	Name         string
	Instructions int64
	Cycles       int64
	Accesses     int64
	Misses       int64
	Quanta       int64 // times the job was scheduled
	// EnergyPJ is the memory-system energy the job's own accesses consumed
	// (memsys.Energy model), so multitasking experiments can plot energy
	// per job next to CPI per job.
	EnergyPJ int64
}

// CPI returns the job's clocks per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// MissRate returns the job's cache misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// EPI returns the job's memory-system energy per instruction, in picojoules.
func (s Stats) EPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.EnergyPJ) / float64(s.Instructions)
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: instrs=%d cycles=%d CPI=%.3f missrate=%.3f EPI=%.1fpJ quanta=%d",
		s.Name, s.Instructions, s.Cycles, s.CPI(), s.MissRate(), s.EPI(), s.Quanta)
}

// RoundRobin schedules jobs on a shared machine.
type RoundRobin struct {
	Sys *memsys.System
	// Quantum is the time slice in instructions. Each scheduled job runs
	// until its executed instructions for this quantum reach Quantum (the
	// final access may overshoot, as a real instruction is atomic).
	Quantum int64
	// FlushTLBOnSwitch models a TLB without address-space tags.
	FlushTLBOnSwitch bool
	// UseASIDs tags TLB entries with the running job's index instead of
	// flushing on switch — the hardware alternative to FlushTLBOnSwitch.
	UseASIDs bool
	// JitterFrac, when positive, perturbs every quantum uniformly within
	// ±JitterFrac of Quantum — modeling the paper's observation that "due
	// to interrupts and exceptions the effective time quantum can vary
	// significantly" (§4.2). Deterministic per JitterSeed.
	JitterFrac float64
	JitterSeed uint64

	jitterState uint64
	jobs        []*Job
	quanta      []int64
}

// effectiveQuantum returns this dispatch's quantum, jittered if configured.
func (rr *RoundRobin) effectiveQuantum() int64 {
	if rr.JitterFrac <= 0 {
		return rr.Quantum
	}
	if rr.jitterState == 0 {
		rr.jitterState = rr.JitterSeed
		if rr.jitterState == 0 {
			rr.jitterState = 0x9e3779b97f4a7c15
		}
	}
	// xorshift64*
	x := rr.jitterState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	rr.jitterState = x
	u := float64(x*0x2545f4914f6cdd1d>>11) / float64(1<<53) // [0,1)
	q := float64(rr.Quantum) * (1 + rr.JitterFrac*(2*u-1))
	if q < 1 {
		q = 1
	}
	return int64(q)
}

// NewRoundRobin returns a scheduler over sys with the given quantum.
func NewRoundRobin(sys *memsys.System, quantum int64) (*RoundRobin, error) {
	if quantum < 1 {
		return nil, fmt.Errorf("sched: quantum %d < 1", quantum)
	}
	return &RoundRobin{Sys: sys, Quantum: quantum}, nil
}

// Add registers a job. Jobs run in registration order each round.
func (rr *RoundRobin) Add(j *Job) error {
	if len(j.Trace) == 0 {
		return fmt.Errorf("sched: job %s has an empty trace", j.Name)
	}
	if j.TargetInstructions < 1 {
		return fmt.Errorf("sched: job %s has target %d < 1", j.Name, j.TargetInstructions)
	}
	rr.jobs = append(rr.jobs, j)
	rr.quanta = append(rr.quanta, 0)
	return nil
}

// runQuantum executes one quantum of job j and returns whether it ran.
func (rr *RoundRobin) runQuantum(idx int) bool {
	j := rr.jobs[idx]
	if j.Done() {
		return false
	}
	rr.quanta[idx]++
	if cs := rr.Sys.Timing().ContextSwitch; cs > 0 {
		rr.Sys.AddCycles(int64(cs))
		j.cycles += int64(cs)
	}
	if rr.FlushTLBOnSwitch {
		rr.Sys.TLB().FlushAll()
	}
	if rr.UseASIDs {
		rr.Sys.TLB().SetASID(uint16(idx))
	}
	quantum := rr.effectiveQuantum()
	var ran int64
	for ran < quantum && !j.Done() {
		a := j.Trace[j.pos]
		j.pos++
		if j.pos == len(j.Trace) {
			j.pos = 0
		}
		before := rr.Sys.Stats().Cache.Misses
		energyBefore := rr.Sys.EnergyPJ()
		var cyc int64
		if j.Mask != 0 {
			cyc = rr.Sys.AccessMasked(a, j.Mask)
		} else {
			cyc = rr.Sys.Access(a)
		}
		instr := int64(a.Think) + 1
		ran += instr
		j.executed += instr
		j.cycles += cyc
		j.accesses++
		j.misses += rr.Sys.Stats().Cache.Misses - before
		j.energyPJ += rr.Sys.EnergyPJ() - energyBefore
	}
	return true
}

// Run schedules all jobs round-robin until every job completes, then
// returns per-job statistics in registration order.
func (rr *RoundRobin) Run() []Stats {
	for {
		anyRan := false
		for i := range rr.jobs {
			if rr.runQuantum(i) {
				anyRan = true
			}
		}
		if !anyRan {
			break
		}
	}
	out := make([]Stats, len(rr.jobs))
	for i, j := range rr.jobs {
		out[i] = Stats{
			Name:         j.Name,
			Instructions: j.executed,
			Cycles:       j.cycles,
			Accesses:     j.accesses,
			Misses:       j.misses,
			Quanta:       rr.quanta[i],
			EnergyPJ:     j.energyPJ,
		}
	}
	return out
}
