package memsys

import (
	"context"
	"errors"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   DefaultTiming,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func strideTrace(n int) memtrace.Trace {
	tr := make(memtrace.Trace, n)
	for i := range tr {
		tr[i] = memtrace.Access{Addr: uint64(i) * 32, Op: memtrace.Read}
	}
	return tr
}

// RunContext with an inert context must behave exactly like Run.
func TestRunContextMatchesRun(t *testing.T) {
	tr := strideTrace(10000)
	want := testSystem(t).Run(tr)

	sys := testSystem(t)
	got, err := sys.RunContext(context.Background(), tr, RunOptions{})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if got != want {
		t.Fatalf("RunContext cycles = %d, Run cycles = %d", got, want)
	}
	if sys.Stats().MemAccesses != int64(len(tr)) {
		t.Fatalf("MemAccesses = %d, want %d", sys.Stats().MemAccesses, len(tr))
	}
}

// Cancellation must stop the run at the next checkpoint, not at the end.
func TestRunContextCancellation(t *testing.T) {
	tr := strideTrace(100000)
	sys := testSystem(t)
	ctx, cancel := context.WithCancel(context.Background())

	const every = 512
	var checkpoints int
	_, err := sys.RunContext(ctx, tr, RunOptions{
		CheckEvery: every,
		OnCheckpoint: func(done int, _ Stats) {
			checkpoints++
			if done >= 4*every {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := sys.Stats().MemAccesses
	if done >= int64(len(tr)) {
		t.Fatal("cancellation did not stop the run")
	}
	// One checkpoint stride of slack: the cancel lands between polls.
	if done > 5*every {
		t.Fatalf("run continued %d accesses past cancellation (stride %d)", done, every)
	}
	if checkpoints == 0 {
		t.Fatal("no checkpoints fired")
	}
}

// Checkpoint snapshots must be detached copies: mutating the machine after
// a snapshot is taken must not change the snapshot. This is the guarantee
// metrics scraping mid-simulation rides on.
func TestCheckpointSnapshotsAreCopies(t *testing.T) {
	tr := strideTrace(8192)
	sys := testSystem(t)
	var snaps []Stats
	var dones []int
	_, err := sys.RunContext(context.Background(), tr, RunOptions{
		CheckEvery: 1024,
		OnCheckpoint: func(done int, st Stats) {
			snaps = append(snaps, st)
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("want multiple checkpoints, got %d", len(snaps))
	}
	for i, st := range snaps {
		if st.MemAccesses != int64(dones[i]) {
			t.Fatalf("checkpoint %d: snapshot has %d accesses, expected %d — snapshot aliased live state",
				i, st.MemAccesses, dones[i])
		}
	}
}

// System.Stats itself must return an independent copy.
func TestStatsSnapshotIndependent(t *testing.T) {
	sys := testSystem(t)
	sys.Run(strideTrace(100))
	snap := sys.Stats()
	before := snap.MemAccesses
	sys.Run(strideTrace(100))
	if snap.MemAccesses != before {
		t.Fatal("Stats snapshot changed after later accesses")
	}
	if sys.Stats().MemAccesses != 2*before {
		t.Fatalf("live stats = %d accesses, want %d", sys.Stats().MemAccesses, 2*before)
	}
}
