package memsys

import (
	"strings"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

func l2Config() cache.Config {
	return cache.Config{LineBytes: 32, NumSets: 256, NumWays: 8} // 64KB
}

func sysWithL2(t *testing.T, masked bool) *System {
	t.Helper()
	cfg := smallConfig()
	cfg.Timing.MissPenalty = 100 // DRAM
	s := MustNew(cfg)
	if err := s.EnableL2(l2Config(), 10, masked); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEnableL2Validation(t *testing.T) {
	s := MustNew(smallConfig())
	bad := l2Config()
	bad.LineBytes = 64
	if err := s.EnableL2(bad, 10, false); err == nil {
		t.Error("mismatched L2 line size accepted")
	}
	bad = l2Config()
	bad.NumWays = 0
	if err := s.EnableL2(bad, 10, false); err == nil {
		t.Error("invalid L2 config accepted")
	}
	if s.HasL2() {
		t.Error("failed EnableL2 left an L2 attached")
	}
}

func TestL2TimingTiers(t *testing.T) {
	s := sysWithL2(t, false)
	// Cold: L1 miss (1) + L2 probe miss (10) + DRAM (100) = 111.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 111 {
		t.Errorf("cold access cost %d want 111", c)
	}
	// L1 hit: 1 cycle.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 1 {
		t.Errorf("L1 hit cost %d want 1", c)
	}
	// Evict the line from L1 (tiny 2KB L1, set stride 512B) but not from
	// the 64KB L2, then re-access: L1 miss + L2 hit = 11.
	setStride := uint64(32 * 16)
	for i := uint64(1); i <= 4; i++ {
		s.Access(memtrace.Access{Addr: i * setStride, Op: memtrace.Read})
	}
	if _, hit := s.Cache().Probe(0); hit {
		t.Fatal("line still in L1; conflict setup wrong")
	}
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 11 {
		t.Errorf("L2 hit cost %d want 11", c)
	}
}

func TestL2ReceivesL1Writebacks(t *testing.T) {
	s := sysWithL2(t, false)
	setStride := uint64(32 * 16)
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Write}) // dirty in L1 (and filled in L2)
	// Push the dirty line out of L1.
	for i := uint64(1); i <= 4; i++ {
		s.Access(memtrace.Access{Addr: i * setStride, Op: memtrace.Read})
	}
	// The L2 must now hold line 0 dirty: flushing the L2 writes it back.
	before := s.L2Stats().Writebacks
	s.l2.cache.FlushAll()
	if got := s.L2Stats().Writebacks - before; got != 1 {
		t.Errorf("L2 flush wrote back %d lines want 1 (the L1 victim)", got)
	}
}

func TestL2StatsAndNoL2Zero(t *testing.T) {
	s := MustNew(smallConfig())
	if s.HasL2() {
		t.Error("fresh system has L2")
	}
	if st := s.L2Stats(); st.Accesses != 0 {
		t.Errorf("no-L2 stats: %+v", st)
	}
	s2 := sysWithL2(t, false)
	s2.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if st := s2.L2Stats(); st.Accesses != 1 || st.Misses != 1 {
		t.Errorf("L2 stats: %+v", st)
	}
	// L1 hits never reach the L2.
	s2.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if st := s2.L2Stats(); st.Accesses != 1 {
		t.Errorf("L1 hit reached the L2: %+v", st)
	}
}

func TestL2MaskedMode(t *testing.T) {
	// With masked L2, a region mapped to column 0 is confined to way 0 at
	// both levels.
	cfg := smallConfig()
	s := MustNew(cfg)
	l2cfg := cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4}
	if err := s.EnableL2(l2cfg, 10, true); err != nil {
		t.Fatal(err)
	}
	r := memory.Region{Name: "r", Base: 0, Size: 256}
	if _, err := s.MapRegion(r, 1 /* column 0 */); err != nil {
		t.Fatal(err)
	}
	// Fill enough conflicting lines through the mapped region's pages: all
	// must land in way 0 of the L2 too.
	for i := uint64(0); i < 4; i++ {
		s.Access(memtrace.Access{Addr: i * 32, Op: memtrace.Read})
	}
	if n := s.l2.cache.ResidentInColumns(1); n != 4 {
		t.Errorf("masked L2 holds %d lines in column 0, want 4", n)
	}
	if n := s.l2.cache.ResidentLines(); n != 4 {
		t.Errorf("masked L2 leaked lines to other columns: %d total", n)
	}
}

func TestL2ReducesTraceCycles(t *testing.T) {
	// A working set that overflows L1 but fits L2 must run much faster with
	// the L2 attached.
	tr := make(memtrace.Trace, 0, 4096)
	for pass := 0; pass < 4; pass++ {
		for off := uint64(0); off < 16*1024; off += 32 { // 16KB loop
			tr = append(tr, memtrace.Access{Addr: off, Op: memtrace.Read})
		}
	}
	cfg := smallConfig()
	cfg.Timing.MissPenalty = 100
	noL2 := MustNew(cfg)
	cyclesNo := noL2.Run(tr)

	withL2 := MustNew(cfg)
	if err := withL2.EnableL2(l2Config(), 10, false); err != nil {
		t.Fatal(err)
	}
	cyclesWith := withL2.Run(tr)
	if cyclesWith*2 > cyclesNo {
		t.Errorf("L2 did not help: %d vs %d cycles", cyclesWith, cyclesNo)
	}
}

func TestEvictedAddrReconstruction(t *testing.T) {
	s := sysWithL2(t, false)
	setStride := uint64(32 * 16)
	addr := uint64(7 * 32) // set 7
	s.Access(memtrace.Access{Addr: addr, Op: memtrace.Write})
	// Evict it with 4 conflicting fills; the L2 should then hit on a
	// re-read of the original address (the writeback installed it).
	for i := uint64(1); i <= 4; i++ {
		s.Access(memtrace.Access{Addr: addr + i*setStride, Op: memtrace.Read})
	}
	before := s.L2Stats().Hits
	s.Access(memtrace.Access{Addr: addr, Op: memtrace.Read})
	if s.L2Stats().Hits != before+1 {
		t.Error("writeback address reconstruction failed: L2 missed the victim")
	}
}

// Stats must surface the L2 counters when an L2 is attached — both in the
// struct and in the rendered String — and stay silent about them otherwise.
func TestStatsReportL2(t *testing.T) {
	plain := MustNew(smallConfig())
	plain.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	st := plain.Stats()
	if st.HasL2 || st.L2.Accesses != 0 {
		t.Errorf("no-L2 machine reports L2 stats: %+v", st.L2)
	}
	if strings.Contains(st.String(), "l2{") {
		t.Errorf("no-L2 String mentions an L2: %s", st)
	}

	s := sysWithL2(t, false)
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	st = s.Stats()
	if !st.HasL2 {
		t.Fatal("L2 machine reports HasL2=false")
	}
	if st.L2 != s.L2Stats() {
		t.Errorf("Stats.L2 %+v != L2Stats() %+v", st.L2, s.L2Stats())
	}
	if st.L2.Accesses != 1 || st.L2.Misses != 1 {
		t.Errorf("L2 counters: %+v", st.L2)
	}
	rendered := st.String()
	if !strings.Contains(rendered, "l2{acc=1 hit=0 miss=1") {
		t.Errorf("String omits the L2 counters: %s", rendered)
	}
}
