package memsys

import (
	"fmt"
	"sort"
	"strings"

	"colcache/internal/tint"
)

// Per-tint statistics: when enabled, the machine attributes every cached
// access to the tint that governed it, giving the per-partition hit-rate
// observability a software-managed cache needs ("is my mapping actually
// working?").

// TintStats counts one tint's activity.
type TintStats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses/accesses, or 0.
func (s TintStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// tintEntry pairs the resettable interval counters with a cumulative set
// that survives ResetTintStats. Two independent consumers sample per-tint
// activity at their own cadences — the adaptive controller resets at its
// epochs, the inspect reducer diffs between frames — and neither may
// disturb the other's interval arithmetic.
type tintEntry struct {
	cur TintStats // since the last ResetTintStats
	cum TintStats // since EnablePerTintStats, monotonic
}

// EnablePerTintStats turns on per-tint attribution (off by default: it
// costs a map update per access).
func (s *System) EnablePerTintStats() {
	if s.tintStats == nil {
		s.tintStats = make(map[tint.Tint]*tintEntry)
	}
}

// TintStats returns a snapshot of per-tint counters accumulated since the
// last ResetTintStats, keyed by tint. Empty unless EnablePerTintStats was
// called.
func (s *System) TintStats() map[tint.Tint]TintStats {
	out := make(map[tint.Tint]TintStats, len(s.tintStats))
	for id, e := range s.tintStats {
		out[id] = e.cur
	}
	return out
}

// ResetTintStats returns the per-tint counters accumulated since the last
// reset and clears them, so callers sampling at interval boundaries (the
// adaptive controller's epochs, a monitoring loop) read per-interval deltas
// instead of differencing cumulative counters. Attribution stays enabled;
// like TintStats, the snapshot is empty unless EnablePerTintStats was
// called.
func (s *System) ResetTintStats() map[tint.Tint]TintStats {
	out := make(map[tint.Tint]TintStats, len(s.tintStats))
	for id, e := range s.tintStats {
		out[id] = e.cur
		e.cur = TintStats{}
	}
	return out
}

// CumulativeTintStats reads each tint's counters since EnablePerTintStats,
// unaffected by ResetTintStats. The inspect reducer diffs consecutive reads
// to compute per-frame miss deltas without racing the adaptive controller
// for the interval counters. dst is reused when non-nil (cleared first), so
// steady-state sampling allocates only when a new tint first appears.
func (s *System) CumulativeTintStats(dst map[tint.Tint]TintStats) map[tint.Tint]TintStats {
	if dst == nil {
		dst = make(map[tint.Tint]TintStats, len(s.tintStats))
	} else {
		clear(dst)
	}
	for id, e := range s.tintStats {
		dst[id] = e.cum
	}
	return dst
}

func (s *System) noteTintAccess(id tint.Tint, miss bool) {
	if s.tintStats == nil {
		return
	}
	e := s.tintStats[id]
	if e == nil {
		e = &tintEntry{}
		s.tintStats[id] = e
	}
	e.cur.Accesses++
	e.cum.Accesses++
	if miss {
		e.cur.Misses++
		e.cum.Misses++
	}
}

// Describe renders the machine's current software-visible state: the tint
// table, per-tint statistics (if enabled), scratchpad contents and cache
// occupancy — the "what did I program this machine to do" debugging view.
func (s *System) Describe() string {
	var b strings.Builder
	cfg := s.cache.Config()
	fmt.Fprintf(&b, "cache: %d sets × %d columns × %dB = %dB, policy %s\n",
		cfg.NumSets, cfg.NumWays, cfg.LineBytes, cfg.SizeBytes(), cfg.Policy)
	fmt.Fprintf(&b, "pages: %dB, %d tinted page-table entries\n", s.g.PageBytes, s.pt.EntryCount())
	b.WriteString("tints:\n")
	stats := s.TintStats()
	for _, id := range s.tints.Tints() {
		fmt.Fprintf(&b, "  %-12s -> columns %0*b", s.tints.Name(id), cfg.NumWays, uint64(s.tints.Mask(id)))
		if st, ok := stats[id]; ok && st.Accesses > 0 {
			fmt.Fprintf(&b, "  (%d accesses, %.1f%% miss)", st.Accesses, 100*st.MissRate())
		}
		b.WriteString("\n")
	}
	if s.scratch.Capacity() > 0 {
		fmt.Fprintf(&b, "scratchpad: %d/%d bytes used\n", s.scratch.Used(), s.scratch.Capacity())
		for _, r := range s.scratch.Regions() {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	if s.l2 != nil {
		l2cfg := s.l2.cache.Config()
		fmt.Fprintf(&b, "L2: %dB, %d-way, masked=%v\n", l2cfg.SizeBytes(), l2cfg.NumWays, s.l2.masked)
	}
	fmt.Fprintf(&b, "resident lines: %d/%d\n", s.cache.ResidentLines(), cfg.NumSets*cfg.NumWays)
	return b.String()
}

// sortedTints returns tint ids in ascending order (helper for tests).
func sortedTints(m map[tint.Tint]TintStats) []tint.Tint {
	out := make([]tint.Tint, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
