package memsys

import (
	"context"
	"fmt"

	"colcache/internal/memtrace"
)

// Checkpoint is the serializable progress marker of a RunContext run: how
// many accesses have executed and the cycles they consumed. Because the
// machine is deterministic in (config, trace), this pair is a complete
// resume token — RunContextFrom rebuilds the exact machine state by
// fast-forwarding the trace prefix, so nothing else needs to be
// serialized. colserved journals these to its write-ahead log at
// checkpoint cadence and resumes in-flight jobs from the last one after a
// crash.
type Checkpoint struct {
	Done   int64 `json:"done"`   // accesses executed
	Cycles int64 `json:"cycles"` // cycles consumed by them
}

// RunContextFrom is RunContext starting after a checkpoint: the first
// cp.Done accesses are replayed without context polls or checkpoint
// callbacks — the fast-forward that reconstructs machine state (counters,
// cache contents, recency, TLB) exactly as the interrupted run built it —
// then execution continues with the usual cooperative cadence.
// OnCheckpoint's done argument counts absolute trace position, so a
// resumed job's progress continues where the old one stopped. The
// returned cycle count covers the whole trace, prefix included, and is
// identical to what an uninterrupted RunContext would have returned; the
// prefix cycles are cross-checked against cp.Cycles so a checkpoint that
// does not belong to this (config, trace) pair fails loudly instead of
// silently producing a wrong result.
func (s *System) RunContextFrom(ctx context.Context, t memtrace.Trace, cp Checkpoint, opts RunOptions) (int64, error) {
	if cp.Done <= 0 {
		return s.RunContext(ctx, t, opts)
	}
	if cp.Done > int64(len(t)) {
		return 0, fmt.Errorf("memsys: checkpoint at %d past trace end %d", cp.Done, len(t))
	}
	every := opts.CheckEvery
	if every <= 0 {
		every = DefaultCheckEvery
	}
	var total int64
	for _, a := range t[:cp.Done] {
		total += s.Access(a)
	}
	if total != cp.Cycles {
		return total, fmt.Errorf("memsys: fast-forward to %d produced %d cycles, checkpoint recorded %d (checkpoint from a different spec or trace?)",
			cp.Done, total, cp.Cycles)
	}
	// Inspection resumes on the same absolute stride grid the interrupted
	// run used, so a resumed job's frame sequence continues where the old
	// one stopped instead of phase-shifting by the checkpoint position.
	inspect := 0
	nextInspect := 0
	if opts.OnInspect != nil && opts.InspectEvery > 0 {
		inspect = opts.InspectEvery
		nextInspect = (int(cp.Done)/inspect + 1) * inspect
	}
	for i := int(cp.Done); i < len(t); i++ {
		total += s.Access(t[i])
		if i+1 == nextInspect {
			opts.OnInspect(i+1, s.Stats())
			nextInspect += inspect
		}
		if (i+1)%every == 0 {
			if opts.OnCheckpoint != nil {
				opts.OnCheckpoint(i+1, s.Stats())
			}
			if err := ctx.Err(); err != nil {
				return total, err
			}
		}
	}
	if inspect > 0 && nextInspect != len(t)+inspect {
		opts.OnInspect(len(t), s.Stats())
	}
	if opts.OnCheckpoint != nil {
		opts.OnCheckpoint(len(t), s.Stats())
	}
	return total, ctx.Err()
}
