package memsys

import "colcache/internal/memtrace"

// Energy accounting. The paper's related work (§5.2) is full of
// memory-energy studies because on-chip memory dominates embedded power
// budgets, and the classic result (Panda et al., Banakar et al.) is that a
// scratchpad access costs a fraction of a cache access — no tag array, no
// associative compare — while a main-memory access costs an order of
// magnitude more. Tracking energy alongside cycles lets the Figure 4
// partition sweep report both currencies.

// Energy fixes per-event costs in picojoules.
type Energy struct {
	CacheAccess      int64 // tag+data array access (per L1 probe)
	ScratchpadAccess int64 // dedicated SRAM access
	TLBAccess        int64 // TLB lookup (every cached/uncached access)
	PageWalk         int64 // page-table walk on TLB miss
	MemoryAccess     int64 // main-memory line transfer
	L2Access         int64 // second-level probe
}

// DefaultEnergy models a small embedded SRAM hierarchy, in picojoules:
// scratchpad ≈ 40% of a 4-way cache probe, main memory ≈ 20× the cache.
var DefaultEnergy = Energy{
	CacheAccess:      500,
	ScratchpadAccess: 200,
	TLBAccess:        50,
	PageWalk:         1000,
	MemoryAccess:     10000,
	L2Access:         2000,
}

// EnergyPJ returns the total energy consumed so far, in picojoules.
// Tracking is always on (it is two integer adds per access) using
// DefaultEnergy unless SetEnergyModel was called.
func (s *System) EnergyPJ() int64 { return s.energyPJ }

// SetEnergyModel replaces the per-event costs. Accumulated energy is kept.
func (s *System) SetEnergyModel(e Energy) { s.energy = e }

// noteEnergy charges the energy of one access given its outcome.
func (s *System) noteEnergy(scratch, uncached, tlbMiss, l1Miss, l2Probed, l2Miss bool) {
	e := &s.energy
	if scratch {
		s.energyPJ += e.ScratchpadAccess
		return
	}
	s.energyPJ += e.TLBAccess
	if tlbMiss {
		s.energyPJ += e.PageWalk
	}
	if uncached {
		s.energyPJ += e.MemoryAccess
		return
	}
	s.energyPJ += e.CacheAccess
	if l1Miss {
		if l2Probed {
			s.energyPJ += e.L2Access
			if l2Miss {
				s.energyPJ += e.MemoryAccess
			}
		} else {
			s.energyPJ += e.MemoryAccess
		}
	}
}

// EnergyOfTrace is a convenience: run t on a fresh clone of nothing — the
// caller's system — and report the energy delta.
func (s *System) EnergyOfTrace(t memtrace.Trace) int64 {
	before := s.energyPJ
	s.Run(t)
	return s.energyPJ - before
}
