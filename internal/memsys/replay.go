package memsys

import (
	"context"
	"fmt"
	"io"

	"colcache/internal/memtrace"
)

// Chunked trace replay: a memtrace.Decoder feeds the system batch-wise, so
// an arbitrarily long trace streams through a fixed-size buffer instead of
// materializing in memory first, and the replay loop pays the decoder's
// per-call error handling once per chunk rather than once per access.

// ReplayOptions parameterize Replay.
type ReplayOptions struct {
	// BatchSize is the number of accesses decoded per chunk; zero or
	// negative means DefaultCheckEvery. The chunk buffer is allocated once
	// per Replay call, so the replay loop itself allocates nothing.
	BatchSize int
	// MaxAccesses, when positive, caps the number of records replayed; a
	// longer stream fails with an error wrapping memtrace.ErrTraceTooLarge.
	// The cap is enforced as chunks arrive, like memtrace.ReadBinaryLimit,
	// so an adversarial stream never occupies more than one chunk.
	MaxAccesses int64
	// OnCheckpoint, when non-nil, receives the number of accesses replayed
	// so far and a detached Stats snapshot after every chunk and once more
	// at end of stream. Same contract as RunOptions.OnCheckpoint.
	OnCheckpoint func(done int64, st Stats)
}

// Replay streams the decoder's remaining records through the system and
// returns the accesses replayed and the cycles consumed. The context is
// polled at every chunk boundary; on cancellation the accesses and cycles
// consumed so far are returned with ctx.Err(). A decode error (bad magic,
// truncated record, invalid op) is returned as-is after the records that
// preceded it have been replayed.
func (s *System) Replay(ctx context.Context, d *memtrace.Decoder, opts ReplayOptions) (int64, int64, error) {
	size := opts.BatchSize
	if size <= 0 {
		size = DefaultCheckEvery
	}
	chunk := make([]memtrace.Access, size)
	var done, cycles int64
	checkpoint := func() {
		if opts.OnCheckpoint != nil {
			opts.OnCheckpoint(done, s.Stats())
		}
	}
	for {
		n, err := d.DecodeBatch(chunk)
		if err == io.EOF {
			checkpoint()
			return done, cycles, nil
		}
		if err != nil {
			return done, cycles, err
		}
		if opts.MaxAccesses > 0 && done+int64(n) > opts.MaxAccesses {
			return done, cycles, fmt.Errorf("%w (limit %d)", memtrace.ErrTraceTooLarge, opts.MaxAccesses)
		}
		for _, a := range chunk[:n] {
			cycles += s.Access(a)
		}
		done += int64(n)
		checkpoint()
		if err := ctx.Err(); err != nil {
			return done, cycles, err
		}
	}
}
