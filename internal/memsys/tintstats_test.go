package memsys

import (
	"strings"
	"testing"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/tint"
)

func TestPerTintStatsDisabledByDefault(t *testing.T) {
	s := MustNew(smallConfig())
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if got := s.TintStats(); len(got) != 0 {
		t.Errorf("stats collected while disabled: %v", got)
	}
}

func TestPerTintStatsAttribution(t *testing.T) {
	s := MustNew(smallConfig())
	s.EnablePerTintStats()
	r := memory.Region{Name: "r", Base: 0, Size: 256}
	id, err := s.MapRegion(r, replacement.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	// 2 accesses to the mapped region (1 miss + 1 hit), 1 elsewhere.
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	s.Access(memtrace.Access{Addr: 1 << 20, Op: memtrace.Read})

	stats := s.TintStats()
	got, ok := stats[id]
	if !ok {
		t.Fatalf("no stats for tint %d: %v", id, stats)
	}
	if got.Accesses != 2 || got.Misses != 1 {
		t.Errorf("tint stats=%+v want 2/1", got)
	}
	if got.MissRate() != 0.5 {
		t.Errorf("miss rate=%v", got.MissRate())
	}
	def := stats[tint.Default]
	if def.Accesses != 1 || def.Misses != 1 {
		t.Errorf("default tint stats=%+v want 1/1", def)
	}
	ids := sortedTints(stats)
	if len(ids) != 2 || ids[0] != tint.Default {
		t.Errorf("sorted ids=%v", ids)
	}
	var zero TintStats
	if zero.MissRate() != 0 {
		t.Error("zero stats miss rate")
	}
}

func TestPerTintStatsSkipScratchpadAndUncached(t *testing.T) {
	cfg := smallConfig()
	cfg.ScratchpadBytes = 512
	s := MustNew(cfg)
	s.EnablePerTintStats()
	s.Scratchpad().Place(memory.Region{Name: "pad", Base: 1 << 16, Size: 256})
	s.PageTable().SetUncachedRange(1<<17, 256, true)
	s.Access(memtrace.Access{Addr: 1 << 16, Op: memtrace.Read})
	s.Access(memtrace.Access{Addr: 1 << 17, Op: memtrace.Read})
	if got := s.TintStats(); len(got) != 0 {
		t.Errorf("non-cache accesses attributed to tints: %v", got)
	}
}

func TestResetTintStats(t *testing.T) {
	s := MustNew(smallConfig())
	s.EnablePerTintStats()
	r := memory.Region{Name: "r", Base: 0, Size: 256}
	id, err := s.MapRegion(r, replacement.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}) // miss
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}) // hit

	snap := s.ResetTintStats()
	if got := snap[id]; got.Accesses != 2 || got.Misses != 1 {
		t.Errorf("snapshot=%+v want 2/1", got)
	}
	// Counters are cleared but attribution stays on: the next interval
	// starts from zero.
	if after := s.TintStats()[id]; after.Accesses != 0 || after.Misses != 0 {
		t.Errorf("counters not cleared: %+v", after)
	}
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}) // hit
	snap = s.ResetTintStats()
	if got := snap[id]; got.Accesses != 1 || got.Misses != 0 {
		t.Errorf("second interval=%+v want 1/0", got)
	}
}

func TestResetTintStatsDisabled(t *testing.T) {
	s := MustNew(smallConfig())
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if got := s.ResetTintStats(); len(got) != 0 {
		t.Errorf("snapshot while disabled: %v", got)
	}
}

func TestDescribe(t *testing.T) {
	cfg := smallConfig()
	cfg.ScratchpadBytes = 1024
	s := MustNew(cfg)
	s.EnablePerTintStats()
	r := memory.Region{Name: "stream", Base: 0, Size: 256}
	if _, err := s.MapRegion(r, replacement.Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	s.Scratchpad().Place(memory.Region{Name: "pad", Base: 1 << 16, Size: 512})
	if err := s.EnableL2(l2Config(), 10, false); err != nil {
		t.Fatal(err)
	}
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})

	d := s.Describe()
	for _, want := range []string{"cache:", "tints:", "stream", "scratchpad: 512/1024", "L2:", "resident lines: 1/"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}
