package memsys

import (
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/vm"
)

func smallConfig() Config {
	return Config{
		Geometry: memory.MustGeometry(32, 256),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   DefaultTiming,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := smallConfig()
	cfg.Cache.LineBytes = 64
	if _, err := New(cfg); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	cfg = smallConfig()
	cfg.TLB = vm.TLBConfig{Entries: 3, Ways: 1}
	if _, err := New(cfg); err == nil {
		t.Error("bad TLB config accepted")
	}
}

func TestAccessTimingHitMiss(t *testing.T) {
	s := MustNew(smallConfig())
	// Cold miss: 1 (hit latency) + 20 (miss penalty) = 21 cycles.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 21 {
		t.Errorf("miss cycles=%d want 21", c)
	}
	// Hit: 1 cycle.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 1 {
		t.Errorf("hit cycles=%d want 1", c)
	}
	// Think time adds NonMemInstr cycles each.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read, Think: 5}); c != 6 {
		t.Errorf("think+hit cycles=%d want 6", c)
	}
	st := s.Stats()
	if st.Instructions != 8 { // 3 accesses + 5 think
		t.Errorf("instructions=%d want 8", st.Instructions)
	}
	if st.Cycles != 28 {
		t.Errorf("cycles=%d want 28", st.Cycles)
	}
	wantCPI := 28.0 / 8.0
	if st.CPI() != wantCPI {
		t.Errorf("CPI=%v want %v", st.CPI(), wantCPI)
	}
}

func TestWritebackTiming(t *testing.T) {
	s := MustNew(smallConfig())
	setStride := uint64(32 * 16)
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Write}) // dirty line in set 0
	for i := uint64(1); i < 4; i++ {
		s.Access(memtrace.Access{Addr: i * setStride, Op: memtrace.Read})
	}
	// 5th distinct line evicts the dirty line: 1+20+5 = 26 cycles.
	if c := s.Access(memtrace.Access{Addr: 4 * setStride, Op: memtrace.Read}); c != 26 {
		t.Errorf("dirty-eviction cycles=%d want 26", c)
	}
}

func TestScratchpadBypass(t *testing.T) {
	cfg := smallConfig()
	cfg.ScratchpadBytes = 512
	s := MustNew(cfg)
	r := memory.Region{Name: "hot", Base: 0x8000, Size: 256}
	if err := s.Scratchpad().Place(r); err != nil {
		t.Fatal(err)
	}
	// Every access, including the first, is a single cycle: no cold misses.
	for i := 0; i < 4; i++ {
		if c := s.Access(memtrace.Access{Addr: 0x8000 + uint64(i*64), Op: memtrace.Read}); c != 1 {
			t.Errorf("scratchpad access %d cost %d cycles", i, c)
		}
	}
	st := s.Stats()
	if st.ScratchpadAccesses != 4 || st.Cache.Accesses != 0 {
		t.Errorf("stats=%+v", st)
	}
}

func TestUncachedAccess(t *testing.T) {
	s := MustNew(smallConfig())
	s.PageTable().SetUncachedRange(0, 256, true)
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 20 {
		t.Errorf("uncached cycles=%d want 20", c)
	}
	if s.Stats().Cache.Accesses != 0 {
		t.Error("uncached access reached the cache")
	}
	if s.Stats().UncachedAccesses != 1 {
		t.Error("uncached access not counted")
	}
}

func TestTLBMissPenalty(t *testing.T) {
	cfg := smallConfig()
	cfg.Timing.TLBMiss = 30
	s := MustNew(cfg)
	// Cold: TLB miss (30) + cache miss (21) = 51.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 51 {
		t.Errorf("cold cycles=%d want 51", c)
	}
	// Warm TLB, warm cache: 1.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 1 {
		t.Errorf("warm cycles=%d want 1", c)
	}
}

func TestMapRegionIsolation(t *testing.T) {
	s := MustNew(smallConfig())
	// Region A: 2 pages mapped exclusively to column 0.
	a := memory.Region{Name: "A", Base: 0, Size: 512}
	if _, err := s.MapRegion(a, replacement.Of(0)); err != nil {
		t.Fatal(err)
	}
	// Default tint shrinks to the other columns.
	if err := s.Tints().SetMask(0, replacement.Of(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// Warm region A (512B = 16 lines = exactly column 0).
	for off := uint64(0); off < 512; off += 32 {
		s.Access(memtrace.Access{Addr: off, Op: memtrace.Read})
	}
	// Thrash with 1000 other lines.
	for i := uint64(0); i < 1000; i++ {
		s.Access(memtrace.Access{Addr: 0x100000 + i*32, Op: memtrace.Read})
	}
	// Region A must be fully resident: re-touch costs 16 hits.
	s.ResetStats()
	for off := uint64(0); off < 512; off += 32 {
		s.Access(memtrace.Access{Addr: off, Op: memtrace.Read})
	}
	if st := s.Stats(); st.Cache.Misses != 0 {
		t.Errorf("isolated region suffered %d misses", st.Cache.Misses)
	}
}

func TestMapRegionErrors(t *testing.T) {
	s := MustNew(smallConfig())
	r := memory.Region{Name: "r", Base: 0, Size: 32}
	if _, err := s.MapRegion(r, replacement.Of(9)); err == nil {
		t.Error("mask beyond columns accepted")
	}
}

func TestRemapTintTakesEffectWithoutFlush(t *testing.T) {
	s := MustNew(smallConfig())
	r := memory.Region{Name: "r", Base: 0, Size: 256}
	id, err := s.MapRegion(r, replacement.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if w := s.Cache().WayOf(0); w != 0 {
		t.Fatalf("filled way %d want 0", w)
	}
	// Cheap repartitioning: one table write, no TLB flush needed.
	if err := s.RemapTint(id, replacement.Of(3)); err != nil {
		t.Fatal(err)
	}
	s.Cache().Invalidate(0)
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if w := s.Cache().WayOf(0); w != 3 {
		t.Errorf("after remap filled way %d want 3", w)
	}
}

func TestPreload(t *testing.T) {
	s := MustNew(smallConfig())
	r := memory.Region{Name: "r", Base: 0x100, Size: 100} // spans 4 lines
	s.Preload(r)
	for _, ln := range s.Geometry().LinesCovering(r.Base, r.Size) {
		if _, hit := s.Cache().Probe(ln * 32); !hit {
			t.Errorf("line %d not resident after preload", ln)
		}
	}
}

func TestRunAndReset(t *testing.T) {
	s := MustNew(smallConfig())
	tr := memtrace.Trace{
		{Addr: 0, Op: memtrace.Read},
		{Addr: 0, Op: memtrace.Read},
	}
	cycles := s.Run(tr)
	if cycles != 22 {
		t.Errorf("Run cycles=%d want 22", cycles)
	}
	s.ResetStats()
	if st := s.Stats(); st.Cycles != 0 || st.Instructions != 0 {
		t.Errorf("reset incomplete: %+v", st)
	}
	// Contents survive ResetStats.
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read}); c != 1 {
		t.Errorf("contents lost: %d cycles", c)
	}
}

func TestAddCycles(t *testing.T) {
	s := MustNew(smallConfig())
	s.AddCycles(100)
	if s.Stats().Cycles != 100 {
		t.Errorf("cycles=%d", s.Stats().Cycles)
	}
}

func TestStatsString(t *testing.T) {
	s := MustNew(smallConfig())
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if s.Stats().String() == "" {
		t.Error("empty stats string")
	}
}

func TestWriteThroughStoreTiming(t *testing.T) {
	cfg := smallConfig()
	cfg.Cache.Write = cache.WriteThroughNoAllocate
	cfg.Timing.WriteThroughStore = 10
	s := MustNew(cfg)
	// Load to allocate, then a store hit: 1 (hit) + 10 (bus trip) = 11.
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if c := s.Access(memtrace.Access{Addr: 0, Op: memtrace.Write}); c != 11 {
		t.Errorf("WT store hit cost %d want 11", c)
	}
	// Store miss (no allocate): 1 + 20 (miss) + 10 = 31.
	if c := s.Access(memtrace.Access{Addr: 1 << 16, Op: memtrace.Write}); c != 31 {
		t.Errorf("WT store miss cost %d want 31", c)
	}
	// Write-back machines never pay it.
	cfg2 := smallConfig()
	cfg2.Timing.WriteThroughStore = 10
	s2 := MustNew(cfg2)
	s2.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if c := s2.Access(memtrace.Access{Addr: 0, Op: memtrace.Write}); c != 1 {
		t.Errorf("WB store hit cost %d want 1", c)
	}
}
