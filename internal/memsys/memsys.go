// Package memsys composes the simulated machine: CPU port → TLB → column
// cache and/or scratchpad → main memory, with cycle accounting. It is the
// trace-driven substrate all experiments run on.
//
// The timing model is deliberately simple — a fixed hit latency and a fixed
// miss penalty — because every effect the paper measures (Figures 4 and 5)
// is a hit-rate effect produced by the replacement mechanism. Penalties are
// configurable so the crossover ablations can sweep them.
package memsys

import (
	"context"
	"fmt"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/scratchpad"
	"colcache/internal/tint"
	"colcache/internal/vm"
)

// Timing fixes the cycle costs of the machine. Zero-valued fields are legal
// (a cost of zero cycles); use DefaultTiming for a realistic starting point.
type Timing struct {
	NonMemInstr   int // cycles per non-memory instruction
	CacheHit      int // cycles for an L1 hit (and the L1 probe on a miss)
	MissPenalty   int // additional cycles to fetch a line from main memory
	Writeback     int // additional cycles when a miss evicts a dirty line
	ScratchpadHit int // cycles for a dedicated-scratchpad access
	Uncached      int // cycles for an uncached access
	TLBMiss       int // additional cycles for a page-table walk on TLB miss
	ContextSwitch int // cycles charged by the scheduler per switch
	// WriteThroughStore is the additional cost of every store under a
	// write-through cache (the memory/bus trip a write buffer cannot fully
	// hide under sustained stores). Zero models a perfect write buffer.
	WriteThroughStore int
}

// DefaultTiming models a small embedded core: single-cycle execute and L1
// hit, a 20-cycle main-memory access, single-cycle scratchpad.
var DefaultTiming = Timing{
	NonMemInstr:   1,
	CacheHit:      1,
	MissPenalty:   20,
	Writeback:     5,
	ScratchpadHit: 1,
	Uncached:      20,
	TLBMiss:       0,
	ContextSwitch: 0,
}

// Config assembles a System.
type Config struct {
	Geometry memory.Geometry
	Cache    cache.Config
	TLB      vm.TLBConfig
	Timing   Timing
	// ScratchpadBytes sizes the dedicated scratchpad SRAM; 0 means none.
	ScratchpadBytes uint64
}

// Stats aggregates machine-level counters.
type Stats struct {
	Instructions       int64
	Cycles             int64
	MemAccesses        int64
	ScratchpadAccesses int64
	UncachedAccesses   int64
	Cache              cache.Stats
	TLB                vm.TLBStats
	// L2 holds the second-level counters and HasL2 whether one is attached;
	// the zero value means a machine with no L2.
	L2    cache.Stats
	HasL2 bool
}

// CPI returns cycles per instruction, the paper's Figure 5 metric.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

func (s Stats) String() string {
	out := fmt.Sprintf("instrs=%d cycles=%d CPI=%.3f mem=%d scratch=%d cache{%s}",
		s.Instructions, s.Cycles, s.CPI(), s.MemAccesses, s.ScratchpadAccesses, s.Cache)
	if s.HasL2 {
		out += fmt.Sprintf(" l2{%s}", s.L2)
	}
	return out + fmt.Sprintf(" tlb{hit=%.2f%%}", 100*s.TLB.HitRate())
}

// AccessObserver receives every access that reaches the cache, after it
// resolved, attributed to the tint that governed its replacement mask.
// Scratchpad and uncached accesses bypass the cache and are not reported.
// Observers may remap tints from inside the callback (the adaptive
// controller does); the new masks apply from the next access on.
type AccessObserver interface {
	ObserveAccess(id tint.Tint, addr memory.Addr, miss bool)
}

// System is the simulated machine. It is not safe for concurrent use.
type System struct {
	g         memory.Geometry
	cache     *cache.Cache
	tints     *tint.Table
	pt        *vm.PageTable
	tlb       *vm.TLB
	scratch   *scratchpad.Scratchpad
	timing    Timing
	l2        *l2
	tintStats map[tint.Tint]*tintEntry
	observer  AccessObserver
	energy    Energy
	energyPJ  int64

	instructions int64
	cycles       int64
	memAccesses  int64
	scratchAcc   int64
	uncachedAcc  int64
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if cfg.Geometry.LineBytes == 0 {
		return nil, fmt.Errorf("memsys: geometry not initialized")
	}
	if cfg.Geometry.LineBytes != cfg.Cache.LineBytes {
		return nil, fmt.Errorf("memsys: geometry line size %d != cache line size %d",
			cfg.Geometry.LineBytes, cfg.Cache.LineBytes)
	}
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	pt := vm.NewPageTable(cfg.Geometry)
	tlbCfg := cfg.TLB
	if tlbCfg.Entries == 0 {
		tlbCfg = vm.DefaultTLBConfig
	}
	tlb, err := vm.NewTLB(tlbCfg, pt)
	if err != nil {
		return nil, err
	}
	return &System{
		g:       cfg.Geometry,
		cache:   c,
		tints:   tint.NewTable(cfg.Cache.NumWays),
		pt:      pt,
		tlb:     tlb,
		scratch: scratchpad.New(cfg.ScratchpadBytes),
		timing:  cfg.Timing,
		energy:  DefaultEnergy,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Geometry returns the machine geometry.
func (s *System) Geometry() memory.Geometry { return s.g }

// Cache returns the column cache.
func (s *System) Cache() *cache.Cache { return s.cache }

// Tints returns the tint table.
func (s *System) Tints() *tint.Table { return s.tints }

// PageTable returns the page table.
func (s *System) PageTable() *vm.PageTable { return s.pt }

// TLB returns the TLB.
func (s *System) TLB() *vm.TLB { return s.tlb }

// Scratchpad returns the dedicated scratchpad model.
func (s *System) Scratchpad() *scratchpad.Scratchpad { return s.scratch }

// Timing returns the machine's cycle costs.
func (s *System) Timing() Timing { return s.timing }

// SetAccessObserver registers o to receive every cached access; nil
// detaches. This is the hook the adaptive column-allocation controller
// (internal/controller) rides: the machine pushes tint-attributed accesses
// out, so the controller never needs to import the machine.
func (s *System) SetAccessObserver(o AccessObserver) { s.observer = o }

// Stats snapshots all counters. The snapshot is a detached copy — value
// types all the way down, no pointers into the live machine — so it can be
// published to another goroutine (a metrics scraper, a job-status handler)
// while the simulation keeps running.
func (s *System) Stats() Stats {
	st := Stats{
		Instructions:       s.instructions,
		Cycles:             s.cycles,
		MemAccesses:        s.memAccesses,
		ScratchpadAccesses: s.scratchAcc,
		UncachedAccesses:   s.uncachedAcc,
		Cache:              s.cache.Stats(),
		TLB:                s.tlb.Stats(),
	}
	if s.l2 != nil {
		st.L2 = s.l2.cache.Stats()
		st.HasL2 = true
	}
	return st
}

// ResetStats zeroes counters without touching cache/TLB contents, so
// measurement can exclude warmup.
func (s *System) ResetStats() {
	s.instructions, s.cycles, s.memAccesses, s.scratchAcc, s.uncachedAcc = 0, 0, 0, 0, 0
	s.cache.ResetStats()
	s.tlb.ResetStats()
}

// AddCycles charges overhead cycles (e.g. context-switch cost) without
// executing instructions.
func (s *System) AddCycles(n int64) { s.cycles += n }

// Access executes one trace access (plus its think instructions) and returns
// the cycles it consumed.
func (s *System) Access(a memtrace.Access) int64 { return s.access(a, 0) }

// AccessMasked is Access with the tint-derived column mask replaced by the
// given one. This models process-granularity partitioning — the Sun patent
// scheme the paper contrasts with (§5.1): the running process's bit mask
// applies to every one of its accesses, regardless of address. A zero mask
// falls back to the tint mechanism.
func (s *System) AccessMasked(a memtrace.Access, override replacement.Mask) int64 {
	return s.access(a, override)
}

func (s *System) access(a memtrace.Access, override replacement.Mask) int64 {
	start := s.cycles
	s.instructions += int64(a.Think) + 1
	s.cycles += int64(a.Think) * int64(s.timing.NonMemInstr)
	s.memAccesses++

	// Dedicated scratchpad regions bypass the whole cache hierarchy.
	if s.scratch.Contains(a.Addr) {
		s.scratch.Note()
		s.scratchAcc++
		s.cycles += int64(s.timing.ScratchpadHit)
		s.noteEnergy(true, false, false, false, false, false)
		return s.cycles - start
	}

	pte, tlbHit := s.tlb.Lookup(a.Addr)
	if !tlbHit {
		s.cycles += int64(s.timing.TLBMiss)
	}
	if pte.Uncached {
		s.uncachedAcc++
		s.cycles += int64(s.timing.Uncached)
		s.noteEnergy(false, true, !tlbHit, false, false, false)
		return s.cycles - start
	}

	mask := s.tints.Mask(pte.Tint)
	if override != 0 {
		mask = override
	}
	var res cache.Result
	if a.Op == memtrace.Write {
		res = s.cache.Write(a.Addr, mask)
		if s.cache.Config().Write == cache.WriteThroughNoAllocate {
			s.cycles += int64(s.timing.WriteThroughStore)
		}
	} else {
		res = s.cache.Read(a.Addr, mask)
	}
	s.noteTintAccess(pte.Tint, !res.Hit)
	if s.observer != nil {
		s.observer.ObserveAccess(pte.Tint, a.Addr, !res.Hit)
	}
	s.cycles += int64(s.timing.CacheHit)
	l2Miss := false
	if !res.Hit {
		if s.l2 != nil {
			var evicted memory.Addr
			if res.Writeback {
				evicted = s.evictedAddrOf(a, res)
			}
			var cyc int64
			cyc, l2Miss = s.l2Access(a, mask, res.Writeback, evicted)
			s.cycles += cyc
		} else {
			s.cycles += int64(s.timing.MissPenalty)
			if res.Writeback {
				s.cycles += int64(s.timing.Writeback)
			}
		}
	}
	s.noteEnergy(false, false, !tlbHit, !res.Hit, s.l2 != nil, l2Miss)
	return s.cycles - start
}

// Run executes an entire trace and returns the cycles consumed.
func (s *System) Run(t memtrace.Trace) int64 {
	var total int64
	for _, a := range t {
		total += s.Access(a)
	}
	return total
}

// RunOptions parameterize RunContext.
type RunOptions struct {
	// CheckEvery is the cooperative-cancellation stride: the context is
	// polled and OnCheckpoint fired every CheckEvery accesses. Zero or
	// negative means DefaultCheckEvery. Small strides bound cancellation
	// latency; large ones keep the hot loop branch-free longer.
	CheckEvery int
	// OnCheckpoint, when non-nil, receives the number of accesses executed
	// so far and a detached Stats snapshot at every checkpoint and once
	// more after the final access. It runs on the simulation goroutine;
	// publish the snapshot under your own lock if another goroutine reads
	// it.
	OnCheckpoint func(done int, st Stats)
	// InspectEvery, with OnInspect non-nil, fires the inspection callback
	// at exact trace positions — every InspectEvery accesses, independent
	// of the CheckEvery stride, plus once after the final access when the
	// trace length is not a stride multiple. Exact positions (rather than
	// checkpoint-aligned ones) make the captured frame sequence a pure
	// function of (config, trace, InspectEvery), which is what lets the
	// inspect conformance check demand bit-identical frames from every
	// execution strategy. Zero disables inspection.
	InspectEvery int
	// OnInspect runs on the simulation goroutine while the machine is
	// quiescent, so it may read cache contents, tint table and page table
	// directly (the inspect reducer does).
	OnInspect func(done int, st Stats)
}

// DefaultCheckEvery is the RunContext cancellation stride when
// RunOptions.CheckEvery is zero.
const DefaultCheckEvery = 4096

// RunContext executes the trace like Run but cooperatively: every
// opts.CheckEvery accesses it polls ctx and reports progress, so a serving
// layer can cancel a simulation mid-trace (request timeout, client gone,
// shutdown) and scrape live statistics without touching the simulation's
// own state. Returns the cycles consumed so far and ctx.Err() if canceled.
func (s *System) RunContext(ctx context.Context, t memtrace.Trace, opts RunOptions) (int64, error) {
	every := opts.CheckEvery
	if every <= 0 {
		every = DefaultCheckEvery
	}
	inspect := 0
	if opts.OnInspect != nil && opts.InspectEvery > 0 {
		inspect = opts.InspectEvery
	}
	nextInspect := inspect
	var total int64
	for i, a := range t {
		total += s.Access(a)
		if i+1 == nextInspect {
			opts.OnInspect(i+1, s.Stats())
			nextInspect += inspect
		}
		if (i+1)%every == 0 {
			if err := ctx.Err(); err != nil {
				if opts.OnCheckpoint != nil {
					opts.OnCheckpoint(i+1, s.Stats())
				}
				return total, err
			}
			if opts.OnCheckpoint != nil {
				opts.OnCheckpoint(i+1, s.Stats())
			}
		}
	}
	if inspect > 0 && nextInspect != len(t)+inspect {
		opts.OnInspect(len(t), s.Stats())
	}
	if opts.OnCheckpoint != nil {
		opts.OnCheckpoint(len(t), s.Stats())
	}
	return total, ctx.Err()
}

// MapRegion allocates a tint named after the region, re-tints the region's
// pages to it, and maps the tint to mask. It returns the tint for later
// remapping. This is the software-visible column-caching API.
func (s *System) MapRegion(r memory.Region, mask replacement.Mask) (tint.Tint, error) {
	id := s.tints.NewTint(r.Name)
	if err := s.tints.SetMask(id, mask); err != nil {
		return 0, err
	}
	vm.Retint(s.pt, s.tlb, r.Base, r.Size, id)
	return id, nil
}

// RemapTint changes the columns a tint maps to — the paper's cheap dynamic
// repartitioning operation.
func (s *System) RemapTint(id tint.Tint, mask replacement.Mask) error {
	return s.tints.SetMask(id, mask)
}

// Preload touches every line of region r so it is resident, charging the
// fills to the machine's cycle count. Paper §2.3: software performs a load
// on all cache-lines when dedicating a column region as scratchpad.
func (s *System) Preload(r memory.Region) int64 {
	var total int64
	for _, ln := range s.g.LinesCovering(r.Base, r.Size) {
		total += s.Access(memtrace.Access{Addr: ln * uint64(s.g.LineBytes), Op: memtrace.Read})
	}
	return total
}

// FlushCache writes back and invalidates the entire cache.
func (s *System) FlushCache() { s.cache.FlushAll() }

// InstallLine fills addr's line into the cache under mask without advancing
// simulated time — the fill path of a prefetcher whose memory traffic
// overlaps execution. Demand-access statistics are not affected; fills,
// evictions and writebacks are counted.
func (s *System) InstallLine(addr memory.Addr, mask replacement.Mask) cache.Result {
	return s.cache.Fill(addr, mask)
}
