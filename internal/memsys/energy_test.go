package memsys

import (
	"testing"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

func TestEnergyAccounting(t *testing.T) {
	s := MustNew(smallConfig())
	e := DefaultEnergy
	// Cold miss: TLB + cache + memory.
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	want := e.TLBAccess + e.PageWalk + e.CacheAccess + e.MemoryAccess
	if got := s.EnergyPJ(); got != want {
		t.Errorf("cold miss energy=%d want %d", got, want)
	}
	// Warm hit: TLB + cache only.
	before := s.EnergyPJ()
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if got := s.EnergyPJ() - before; got != e.TLBAccess+e.CacheAccess {
		t.Errorf("hit energy=%d want %d", got, e.TLBAccess+e.CacheAccess)
	}
}

func TestEnergyScratchpadCheaper(t *testing.T) {
	cfg := smallConfig()
	cfg.ScratchpadBytes = 512
	s := MustNew(cfg)
	s.Scratchpad().Place(memory.Region{Name: "pad", Base: 1 << 16, Size: 256})
	before := s.EnergyPJ()
	s.Access(memtrace.Access{Addr: 1 << 16, Op: memtrace.Read})
	scratchE := s.EnergyPJ() - before
	if scratchE != DefaultEnergy.ScratchpadAccess {
		t.Errorf("scratch energy=%d", scratchE)
	}
	// A cache hit costs more (tag array + TLB).
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	before = s.EnergyPJ()
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if hitE := s.EnergyPJ() - before; hitE <= scratchE {
		t.Errorf("cache hit (%d pJ) not costlier than scratchpad (%d pJ)", hitE, scratchE)
	}
}

func TestEnergyUncachedAndL2(t *testing.T) {
	s := MustNew(smallConfig())
	s.PageTable().SetUncachedRange(0, 256, true)
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	e := DefaultEnergy
	if got := s.EnergyPJ(); got != e.TLBAccess+e.PageWalk+e.MemoryAccess {
		t.Errorf("uncached energy=%d", got)
	}

	s2 := MustNew(smallConfig())
	if err := s2.EnableL2(l2Config(), 10, false); err != nil {
		t.Fatal(err)
	}
	// Cold: TLB walk + L1 + L2 + memory.
	s2.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	want := e.TLBAccess + e.PageWalk + e.CacheAccess + e.L2Access + e.MemoryAccess
	if got := s2.EnergyPJ(); got != want {
		t.Errorf("L2 cold energy=%d want %d", got, want)
	}
}

func TestSetEnergyModel(t *testing.T) {
	s := MustNew(smallConfig())
	s.SetEnergyModel(Energy{CacheAccess: 1, TLBAccess: 0, MemoryAccess: 0, PageWalk: 0})
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	if s.EnergyPJ() != 1 {
		t.Errorf("custom model energy=%d want 1", s.EnergyPJ())
	}
}

func TestEnergyOfTrace(t *testing.T) {
	s := MustNew(smallConfig())
	tr := memtrace.Trace{{Addr: 0}, {Addr: 0}}
	if got := s.EnergyOfTrace(tr); got != s.EnergyPJ() {
		t.Errorf("delta=%d total=%d", got, s.EnergyPJ())
	}
}
