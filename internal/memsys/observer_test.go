package memsys

import (
	"testing"

	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/tint"
)

// recordingObserver captures every ObserveAccess call.
type recordingObserver struct {
	ids    []tint.Tint
	addrs  []memory.Addr
	misses []bool
}

func (r *recordingObserver) ObserveAccess(id tint.Tint, addr memory.Addr, miss bool) {
	r.ids = append(r.ids, id)
	r.addrs = append(r.addrs, addr)
	r.misses = append(r.misses, miss)
}

func TestAccessObserverSeesCachedAccesses(t *testing.T) {
	s := MustNew(smallConfig())
	r := memory.Region{Name: "r", Base: 0, Size: 256}
	id, err := s.MapRegion(r, replacement.Of(0))
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	s.SetAccessObserver(obs)

	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})       // miss, mapped tint
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})       // hit, mapped tint
	s.Access(memtrace.Access{Addr: 1 << 20, Op: memtrace.Read}) // miss, default tint

	if len(obs.ids) != 3 {
		t.Fatalf("observed %d accesses, want 3", len(obs.ids))
	}
	if obs.ids[0] != id || obs.ids[1] != id || obs.ids[2] != tint.Default {
		t.Errorf("tint attribution = %v, want [%d %d %d]", obs.ids, id, id, tint.Default)
	}
	if obs.addrs[2] != 1<<20 {
		t.Errorf("addr[2] = %#x, want %#x", obs.addrs[2], 1<<20)
	}
	want := []bool{true, false, true}
	for i := range want {
		if obs.misses[i] != want[i] {
			t.Errorf("miss[%d] = %v, want %v", i, obs.misses[i], want[i])
		}
	}
}

func TestAccessObserverSkipsScratchpadAndUncached(t *testing.T) {
	cfg := smallConfig()
	cfg.ScratchpadBytes = 512
	s := MustNew(cfg)
	s.Scratchpad().Place(memory.Region{Name: "pad", Base: 1 << 16, Size: 256})
	s.PageTable().SetUncachedRange(1<<17, 256, true)
	obs := &recordingObserver{}
	s.SetAccessObserver(obs)

	s.Access(memtrace.Access{Addr: 1 << 16, Op: memtrace.Read}) // scratchpad
	s.Access(memtrace.Access{Addr: 1 << 17, Op: memtrace.Read}) // uncached
	if len(obs.ids) != 0 {
		t.Errorf("observer saw %d non-cache accesses", len(obs.ids))
	}
}

func TestAccessObserverDetach(t *testing.T) {
	s := MustNew(smallConfig())
	obs := &recordingObserver{}
	s.SetAccessObserver(obs)
	s.Access(memtrace.Access{Addr: 0, Op: memtrace.Read})
	s.SetAccessObserver(nil)
	s.Access(memtrace.Access{Addr: 64, Op: memtrace.Read})
	if len(obs.ids) != 1 {
		t.Errorf("observed %d accesses after detach, want 1", len(obs.ids))
	}
}
