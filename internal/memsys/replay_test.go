package memsys

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
)

func replaySystem(t testing.TB) *System {
	t.Helper()
	s, err := New(Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   DefaultTiming,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func replayTrace(n int) memtrace.Trace {
	tr := make(memtrace.Trace, n)
	for i := range tr {
		op := memtrace.Read
		if i%5 == 0 {
			op = memtrace.Write
		}
		tr[i] = memtrace.Access{Addr: uint64(i%300) * 32, Op: op, Think: uint32(i % 2)}
	}
	return tr
}

func encode(t testing.TB, tr memtrace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := memtrace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Replay must be bit-identical to materializing the trace and calling Run:
// same cycles, same stats.
func TestReplayMatchesRun(t *testing.T) {
	tr := replayTrace(10000)
	data := encode(t, tr)

	ref := replaySystem(t)
	wantCycles := ref.Run(tr)
	want := ref.Stats()

	sys := replaySystem(t)
	done, cycles, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(data)),
		ReplayOptions{BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if done != int64(len(tr)) {
		t.Fatalf("replayed %d accesses, want %d", done, len(tr))
	}
	if cycles != wantCycles {
		t.Fatalf("replay cycles %d, run cycles %d", cycles, wantCycles)
	}
	if got := sys.Stats(); got != want {
		t.Fatalf("replay stats %+v\nrun stats    %+v", got, want)
	}
}

// A short final chunk (trace length not a multiple of the batch size) must
// not drop or duplicate records.
func TestReplayShortFinalChunk(t *testing.T) {
	tr := replayTrace(1000)
	sys := replaySystem(t)
	done, _, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(encode(t, tr))),
		ReplayOptions{BatchSize: 333})
	if err != nil {
		t.Fatal(err)
	}
	if done != 1000 {
		t.Fatalf("replayed %d accesses, want 1000", done)
	}
}

func TestReplayMaxAccesses(t *testing.T) {
	tr := replayTrace(1000)
	data := encode(t, tr)

	// Exactly at the limit: fine.
	sys := replaySystem(t)
	if _, _, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(data)),
		ReplayOptions{MaxAccesses: 1000}); err != nil {
		t.Fatalf("limit == length: %v", err)
	}
	// One under: the stream must be rejected.
	sys = replaySystem(t)
	_, _, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(data)),
		ReplayOptions{MaxAccesses: 999, BatchSize: 100})
	if !errors.Is(err, memtrace.ErrTraceTooLarge) {
		t.Fatalf("limit exceeded: got %v, want ErrTraceTooLarge", err)
	}
}

func TestReplayCancellation(t *testing.T) {
	tr := replayTrace(10000)
	ctx, cancel := context.WithCancel(context.Background())
	sys := replaySystem(t)
	var checkpoints int
	done, _, err := sys.Replay(ctx, memtrace.NewDecoder(bytes.NewReader(encode(t, tr))),
		ReplayOptions{BatchSize: 100, OnCheckpoint: func(int64, Stats) {
			checkpoints++
			if checkpoints == 3 {
				cancel()
			}
		}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if done != 300 {
		t.Fatalf("replayed %d accesses before cancel, want 300", done)
	}
}

func TestReplayDecodeError(t *testing.T) {
	data := encode(t, replayTrace(100))
	data = data[:len(data)-5] // truncate the final record
	sys := replaySystem(t)
	done, _, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(data)),
		ReplayOptions{BatchSize: 32})
	if err == nil {
		t.Fatal("truncated stream replayed without error")
	}
	if done != 96 { // 3 full 32-record chunks; the 4th hits the truncation
		t.Fatalf("replayed %d accesses before the error, want 96", done)
	}
}

// BenchmarkReplay measures the streaming replay loop end to end; the
// allocs/op figure is the satellite target — the chunk buffer is allocated
// once per Replay call, never per access.
func BenchmarkReplay(b *testing.B) {
	data := encode(b, replayTrace(65536))
	sys := replaySystem(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for b.Loop() {
		if _, _, err := sys.Replay(context.Background(), memtrace.NewDecoder(bytes.NewReader(data)),
			ReplayOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
