package memsys

import (
	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
)

// L2 support. The paper motivates column caching partly by deepening
// hierarchies ("as the memory hierarchy deepens the variance in access
// times increases"); the tint indirection deliberately hides the number of
// levels from software (§2.2). This file adds an optional unified L2 below
// the column cache: L1 misses probe the L2, L1 writebacks land in the L2,
// and only L2 misses pay the main-memory penalty.
//
// Column masks apply at the L1 — the mechanism under study. The L2 is a
// conventional set-associative cache; MaskL2 optionally applies the same
// tint-derived mask there too, modeling a machine whose tint table carries
// a bit vector per level.

// l2 wires the second-level cache into a System.
type l2 struct {
	cache  *cache.Cache
	hit    int  // cycles for an L2 hit
	masked bool // apply the L1's column mask at the L2 as well
}

// EnableL2 attaches a second-level cache. hitCycles is charged on every L2
// probe that hits; an L2 miss pays the system's MissPenalty instead. The L2
// line size must match the machine geometry. If masked is true, the same
// tint-derived column mask restricts L2 replacement too.
func (s *System) EnableL2(cfg cache.Config, hitCycles int, masked bool) error {
	c, err := cache.New(cfg)
	if err != nil {
		return err
	}
	if cfg.LineBytes != s.g.LineBytes {
		return errLineMismatch(cfg.LineBytes, s.g.LineBytes)
	}
	s.l2 = &l2{cache: c, hit: hitCycles, masked: masked}
	return nil
}

func errLineMismatch(l2Line, sysLine int) error {
	return &lineMismatchError{l2Line: l2Line, sysLine: sysLine}
}

type lineMismatchError struct{ l2Line, sysLine int }

func (e *lineMismatchError) Error() string {
	return "memsys: L2 line size " + itoa(e.l2Line) + " != system line size " + itoa(e.sysLine)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// L2Stats returns the second-level cache's counters, or the zero value when
// no L2 is attached.
func (s *System) L2Stats() cache.Stats {
	if s.l2 == nil {
		return cache.Stats{}
	}
	return s.l2.cache.Stats()
}

// HasL2 reports whether a second level is attached.
func (s *System) HasL2() bool { return s.l2 != nil }

// L2Cache returns the attached second-level cache, or nil. The conformance
// harness inspects it line by line against the reference model's L2.
func (s *System) L2Cache() *cache.Cache {
	if s.l2 == nil {
		return nil
	}
	return s.l2.cache
}

// l2Access handles an L1 miss (and the L1's writeback victim, if any) at
// the second level, returning the cycles consumed below the L1 and whether
// the L2 also missed.
func (s *System) l2Access(a memtrace.Access, mask replacement.Mask, l1Writeback bool, evictedAddr memory.Addr) (int64, bool) {
	var cycles int64
	l2mask := replacement.All(s.l2.cache.Config().NumWays)
	if s.l2.masked {
		l2mask = mask
	}
	// The L1's dirty victim is installed in the L2 (write-back path).
	if l1Writeback {
		s.l2.cache.Write(evictedAddr, l2mask)
	}
	var res cache.Result
	if a.Op == memtrace.Write {
		res = s.l2.cache.Write(a.Addr, l2mask)
	} else {
		res = s.l2.cache.Read(a.Addr, l2mask)
	}
	cycles += int64(s.l2.hit)
	if !res.Hit {
		cycles += int64(s.timing.MissPenalty)
		if res.Writeback {
			cycles += int64(s.timing.Writeback)
		}
	}
	return cycles, !res.Hit
}

// evictedAddrOf reconstructs the byte address of an evicted L1 line from
// its set and tag, so the writeback can be presented to the L2.
func (s *System) evictedAddrOf(a memtrace.Access, res cache.Result) memory.Addr {
	cfg := s.cache.Config()
	set := (a.Addr >> memory.Log2(cfg.LineBytes)) & uint64(cfg.NumSets-1)
	line := res.EvictedTag<<memory.Log2(cfg.NumSets) | set
	return line << memory.Log2(cfg.LineBytes)
}
