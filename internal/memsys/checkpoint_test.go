package memsys

import (
	"context"
	"encoding/json"
	"testing"

	"colcache/internal/memtrace"
)

// mixedTrace exercises hits, misses, evictions and writebacks so a resume
// that failed to rebuild any piece of machine state would diverge.
func mixedTrace(n int) memtrace.Trace {
	tr := make(memtrace.Trace, n)
	for i := range tr {
		op := memtrace.Read
		if i%3 == 0 {
			op = memtrace.Write
		}
		// Two interleaved working sets, one larger than the cache, with
		// periodic revisits — a realistic mix of locality and conflict.
		addr := uint64(i%97) * 32
		if i%5 == 0 {
			addr = uint64(i%1031)*64 + 1<<20
		}
		tr[i] = memtrace.Access{Addr: addr, Op: op, Think: uint32(i % 3)}
	}
	return tr
}

// A run resumed from any checkpoint must produce exactly the cycles and
// stats of an uninterrupted run — the guarantee crash recovery rides on.
func TestRunContextFromMatchesUninterrupted(t *testing.T) {
	tr := mixedTrace(20000)
	ref := testSystem(t)
	wantCycles, err := ref.RunContext(context.Background(), tr, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantStats := ref.Stats()

	for _, cutoff := range []int64{1, 512, 4096, 9999, 19999, 20000} {
		// Simulate the interrupted run to harvest a genuine checkpoint.
		pre := testSystem(t)
		var cp Checkpoint
		for _, a := range tr[:cutoff] {
			cp.Cycles += pre.Access(a)
		}
		cp.Done = cutoff

		sys := testSystem(t)
		got, err := sys.RunContextFrom(context.Background(), tr, cp, RunOptions{CheckEvery: 1024})
		if err != nil {
			t.Fatalf("cutoff %d: %v", cutoff, err)
		}
		if got != wantCycles {
			t.Fatalf("cutoff %d: cycles = %d, uninterrupted = %d", cutoff, got, wantCycles)
		}
		if sys.Stats() != wantStats {
			t.Fatalf("cutoff %d: stats diverged:\n resumed %+v\n    want %+v", cutoff, sys.Stats(), wantStats)
		}
	}
}

// Progress callbacks after a resume must report absolute trace positions.
func TestRunContextFromAbsoluteProgress(t *testing.T) {
	tr := mixedTrace(10000)
	pre := testSystem(t)
	var cp Checkpoint
	for _, a := range tr[:6000] {
		cp.Cycles += pre.Access(a)
	}
	cp.Done = 6000

	sys := testSystem(t)
	var dones []int
	if _, err := sys.RunContextFrom(context.Background(), tr, cp, RunOptions{
		CheckEvery:   2048,
		OnCheckpoint: func(done int, _ Stats) { dones = append(dones, done) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(dones) == 0 {
		t.Fatal("no checkpoints fired after resume")
	}
	for _, d := range dones {
		if d <= 6000 && d != 6000 {
			t.Fatalf("checkpoint at %d inside the fast-forwarded prefix", d)
		}
	}
	if dones[len(dones)-1] != len(tr) {
		t.Fatalf("final checkpoint at %d, want %d", dones[len(dones)-1], len(tr))
	}
}

// A checkpoint that does not belong to this trace must fail the
// cross-check, not silently resume into a wrong result.
func TestRunContextFromRejectsForeignCheckpoint(t *testing.T) {
	tr := mixedTrace(5000)
	sys := testSystem(t)
	if _, err := sys.RunContextFrom(context.Background(), tr, Checkpoint{Done: 1000, Cycles: 123456789}, RunOptions{}); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
	sys2 := testSystem(t)
	if _, err := sys2.RunContextFrom(context.Background(), tr, Checkpoint{Done: 99999, Cycles: 1}, RunOptions{}); err == nil {
		t.Fatal("checkpoint past trace end accepted")
	}
}

// Checkpoints must round-trip through JSON unchanged (they live in WAL
// records).
func TestCheckpointSerialization(t *testing.T) {
	cp := Checkpoint{Done: 123456, Cycles: 9876543210}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != cp {
		t.Fatalf("round trip %+v -> %s -> %+v", cp, b, back)
	}
}
