// Package runner fans independent simulation jobs out across a bounded
// worker pool while keeping the results deterministic: Map returns its
// outputs in input order no matter how the scheduler interleaves the
// workers, so a sweep run on sixteen cores emits byte-identical tables to
// the same sweep run serially.
//
// Every experiment job in this repository builds its own memsys.System, so
// jobs share no mutable state; the runner only has to guarantee ordering,
// bounded concurrency, and containment — a panicking job becomes an error
// result rather than a crashed sweep.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// ErrorPolicy selects how Map reacts to a failing job.
type ErrorPolicy int

const (
	// FailFast cancels the remaining jobs as soon as any job errors and
	// returns that first error. With Workers == 1 this is exactly a serial
	// loop's behavior: the error of the earliest failing job.
	FailFast ErrorPolicy = iota
	// CollectAll runs every job to completion and returns all errors,
	// joined in job order, each wrapped in a *JobError carrying its index.
	CollectAll
)

// Options configure Map.
type Options struct {
	// Workers bounds how many jobs run concurrently. Zero or negative
	// means runtime.NumCPU(). One runs the jobs serially in the calling
	// goroutine, reproducing a plain loop exactly.
	Workers int
	// Policy is FailFast unless set to CollectAll.
	Policy ErrorPolicy
	// Progress, when non-nil, is called after each job finishes with the
	// count of completed jobs and the total. Calls are serialized, so the
	// callback needs no locking of its own; completion order is
	// scheduler-dependent when Workers > 1.
	Progress func(done, total int)
}

// DefaultWorkers is the pool width used when Options.Workers is zero:
// one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// PanicError is a recovered job panic. The job's index, the panic value,
// and the goroutine stack at the point of the panic are preserved so a
// failing sweep point is diagnosable after the sweep completes.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v", e.Index, e.Value)
}

// JobError ties an error to the index of the job that produced it; Map
// wraps every job failure in one so CollectAll callers can attribute
// errors to sweep points.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }
func (e *JobError) Unwrap() error { return e.Err }

// Map runs fn once per element of jobs on a pool of opts.Workers
// goroutines and returns the outputs in input order: out[i] is fn's result
// for jobs[i]. fn receives a context that is canceled when the sweep is
// abandoned (parent cancellation, or a FailFast error elsewhere), the job,
// and the job's index.
//
// A panic inside fn is recovered into a *PanicError for that job rather
// than crashing the program. Under FailFast the first error (in completion
// order; in job order when Workers == 1) is returned and the remaining
// jobs are skipped; under CollectAll every job runs and the joined errors
// are returned. Either way the returned slice always has len(jobs)
// entries — slots whose job failed or was skipped hold Out's zero value.
func Map[In, Out any](ctx context.Context, jobs []In, fn func(ctx context.Context, job In, index int) (Out, error), opts Options) ([]Out, error) {
	out := make([]Out, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 1 {
		// A plain loop, but on a fresh goroutine: deeply nested callers
		// (paperbench sections run sweeps inside sweeps) otherwise churn
		// the calling goroutine's stack through grow/shrink cycles, which
		// costs several percent on simulation-bound jobs.
		errc := make(chan error, 1)
		go func() { errc <- mapSerial(ctx, jobs, fn, opts, out) }()
		return out, <-errc
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex // guards done, firstErr, errs
		done      int
		firstErr  error
		errs      []error
		wg        sync.WaitGroup
		indexChan = make(chan int)
	)
	fail := func(index int, err error) {
		je := asJobError(index, err)
		mu.Lock()
		if firstErr == nil {
			firstErr = je
		}
		errs = append(errs, je)
		mu.Unlock()
		if opts.Policy == FailFast {
			cancel()
		}
	}

	// Feeder: hand out indices until they run out or the sweep is canceled.
	go func() {
		defer close(indexChan)
		for i := range jobs {
			select {
			case indexChan <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexChan {
				res, err := runOne(ctx, fn, jobs[i], i)
				if err != nil {
					fail(i, err)
				} else {
					out[i] = res
				}
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(jobs))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if opts.Policy == FailFast {
		if firstErr != nil {
			return out, firstErr
		}
		return out, ctx.Err()
	}
	// CollectAll: report in job order, not completion order, so the error
	// text is deterministic.
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return out, joinOrdered(errs)
}

// mapSerial is the Workers == 1 path: a plain loop in the calling
// goroutine, with the same panic containment and error policies.
func mapSerial[In, Out any](ctx context.Context, jobs []In, fn func(context.Context, In, int) (Out, error), opts Options, out []Out) error {
	var errs []error
	for i := range jobs {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		res, err := runOne(ctx, fn, jobs[i], i)
		if err != nil {
			je := asJobError(i, err)
			if opts.Policy == FailFast {
				return je
			}
			errs = append(errs, je)
		} else {
			out[i] = res
		}
		if opts.Progress != nil {
			opts.Progress(i+1, len(jobs))
		}
	}
	return joinOrdered(errs)
}

// runOne invokes fn for one job, converting a panic into a *PanicError.
func runOne[In, Out any](ctx context.Context, fn func(context.Context, In, int) (Out, error), job In, index int) (out Out, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, job, index)
}

// asJobError wraps err with its job index; *PanicError already carries
// one and is passed through.
func asJobError(index int, err error) error {
	var pe *PanicError
	if errors.As(err, &pe) {
		return err
	}
	return &JobError{Index: index, Err: err}
}

// joinOrdered joins errors sorted by job index (context errors, which have
// no index, sort last).
func joinOrdered(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	ordered := make([]error, len(errs))
	copy(ordered, errs)
	index := func(err error) int {
		var je *JobError
		if errors.As(err, &je) {
			return je.Index
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return pe.Index
		}
		return int(^uint(0) >> 1)
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && index(ordered[j]) < index(ordered[j-1]); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	return errors.Join(ordered...)
}
