package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdering checks that results come back in input order no matter
// how the workers interleave: jobs finish in scrambled order (later jobs
// sleep less) but out[i] must still correspond to jobs[i].
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			jobs := make([]int, 50)
			for i := range jobs {
				jobs[i] = i
			}
			out, err := Map(context.Background(), jobs, func(_ context.Context, job, i int) (int, error) {
				// Early jobs sleep longer, so completion order is roughly
				// the reverse of input order when workers > 1.
				time.Sleep(time.Duration(len(jobs)-i) * 10 * time.Microsecond)
				return job * job, nil
			}, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(jobs) {
				t.Fatalf("got %d results, want %d", len(out), len(jobs))
			}
			for i, v := range out {
				if v != i*i {
					t.Errorf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

// TestMapSerialEquivalence checks that Workers == 1 reproduces a plain
// loop exactly: same results, same error, and progress callbacks in strict
// input order.
func TestMapSerialEquivalence(t *testing.T) {
	jobs := []string{"a", "bb", "ccc", "dddd"}
	var loopOut []int
	for _, j := range jobs {
		loopOut = append(loopOut, len(j))
	}

	var order []int
	out, err := Map(context.Background(), jobs, func(_ context.Context, job string, i int) (int, error) {
		return len(job), nil
	}, Options{Workers: 1, Progress: func(done, total int) {
		if total != len(jobs) {
			t.Errorf("progress total = %d, want %d", total, len(jobs))
		}
		order = append(order, done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if out[i] != loopOut[i] {
			t.Errorf("out[%d] = %d, plain loop got %d", i, out[i], loopOut[i])
		}
		if order[i] != i+1 {
			t.Errorf("progress call %d reported done=%d, want %d", i, order[i], i+1)
		}
	}
}

// TestMapWorkerBound checks that no more than Workers jobs are in flight
// at once.
func TestMapWorkerBound(t *testing.T) {
	const workers = 3
	var inFlight, maxSeen atomic.Int64
	jobs := make([]struct{}, 40)
	_, err := Map(context.Background(), jobs, func(context.Context, struct{}, int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	}, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxSeen.Load(); got > workers {
		t.Errorf("saw %d jobs in flight, worker bound is %d", got, workers)
	}
}

// TestMapPanicBecomesError checks that a panicking job is contained as a
// *PanicError for that job, with the other jobs unaffected.
func TestMapPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			jobs := []int{0, 1, 2, 3}
			out, err := Map(context.Background(), jobs, func(_ context.Context, job, i int) (int, error) {
				if job == 2 {
					panic("sweep point exploded")
				}
				return job + 10, nil
			}, Options{Workers: workers, Policy: CollectAll})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v does not unwrap to *PanicError", err)
			}
			if pe.Index != 2 || pe.Value != "sweep point exploded" {
				t.Errorf("panic error = {index %d, value %v}", pe.Index, pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic stack not captured")
			}
			for _, i := range []int{0, 1, 3} {
				if out[i] != i+10 {
					t.Errorf("out[%d] = %d, want %d (other jobs must survive a panic)", i, out[i], i+10)
				}
			}
		})
	}
}

// TestMapFailFast checks that the first error cancels the rest of the
// sweep: the remaining jobs observe a canceled context or never run.
func TestMapFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	start := make(chan struct{})
	_, err := Map(context.Background(), jobs, func(ctx context.Context, job, i int) (int, error) {
		ran.Add(1)
		if job == 0 {
			close(start)
			return 0, boom
		}
		<-start
		// After job 0 fails, every surviving job should see cancellation
		// promptly.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(2 * time.Second):
			t.Error("job context not canceled after failure")
			return 0, nil
		}
	}, Options{Workers: 4})
	if !errors.Is(err, boom) && !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want the job error or cancellation", err)
	}
	var je *JobError
	if errors.Is(err, boom) && (!errors.As(err, &je) || je.Index != 0) {
		t.Errorf("boom not attributed to job 0: %v", err)
	}
	if n := ran.Load(); n == int64(len(jobs)) {
		t.Error("fail-fast ran every job")
	}
}

// TestMapCancellation cancels the parent context mid-sweep and checks that
// Map returns promptly with the context error.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	jobs := make([]int, 1000)
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, jobs, func(ctx context.Context, _, i int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		}, Options{Workers: 2})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("result slice has %d slots, want %d even when canceled", len(out), len(jobs))
	}
	if n := ran.Load(); n == int64(len(jobs)) {
		t.Error("cancellation did not stop the sweep")
	}
}

// TestMapCollectAll checks that CollectAll runs everything and joins the
// errors in job order regardless of completion order.
func TestMapCollectAll(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5}
	var ran atomic.Int64
	out, err := Map(context.Background(), jobs, func(_ context.Context, job, i int) (int, error) {
		ran.Add(1)
		if job%2 == 1 {
			// Odd jobs fail, later ones faster than earlier ones.
			time.Sleep(time.Duration(len(jobs)-job) * time.Millisecond)
			return 0, fmt.Errorf("odd job %d", job)
		}
		return job * 10, nil
	}, Options{Workers: 3, Policy: CollectAll})
	if n := ran.Load(); n != int64(len(jobs)) {
		t.Fatalf("CollectAll ran %d of %d jobs", n, len(jobs))
	}
	for _, i := range []int{0, 2, 4} {
		if out[i] != i*10 {
			t.Errorf("out[%d] = %d, want %d", i, out[i], i*10)
		}
	}
	if err == nil {
		t.Fatal("want joined errors")
	}
	// Job order in the message: 1 before 3 before 5.
	text := err.Error()
	i1, i3, i5 := strings.Index(text, "job 1"), strings.Index(text, "job 3"), strings.Index(text, "job 5")
	if i1 < 0 || i3 < 0 || i5 < 0 || !(i1 < i3 && i3 < i5) {
		t.Errorf("errors not joined in job order: %q", text)
	}
}

// TestMapProgress checks that the progress callback is serialized and
// counts every job exactly once.
func TestMapProgress(t *testing.T) {
	jobs := make([]struct{}, 64)
	var mu sync.Mutex
	var calls []int
	_, err := Map(context.Background(), jobs, func(context.Context, struct{}, int) (struct{}, error) {
		return struct{}{}, nil
	}, Options{Workers: 8, Progress: func(done, total int) {
		mu.Lock()
		calls = append(calls, done)
		mu.Unlock()
		if total != len(jobs) {
			t.Errorf("total = %d, want %d", total, len(jobs))
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(jobs) {
		t.Fatalf("%d progress calls for %d jobs", len(calls), len(jobs))
	}
	// The callback is serialized under the runner's lock, so the done
	// counts must be exactly 1..n in order.
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

// TestMapEmptyAndZero covers the degenerate inputs.
func TestMapEmptyAndZero(t *testing.T) {
	out, err := Map(context.Background(), nil, func(context.Context, int, int) (int, error) {
		t.Error("fn called for empty jobs")
		return 0, nil
	}, Options{})
	if err != nil || len(out) != 0 {
		t.Errorf("empty map: out=%v err=%v", out, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map[int, int](ctx, nil, nil, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("empty map on canceled context: err=%v, want Canceled", err)
	}
}
