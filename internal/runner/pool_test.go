package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryAcceptedJob(t *testing.T) {
	var done atomic.Int64
	var wg sync.WaitGroup
	p := NewPool(4, 64, func(_ context.Context, job int) {
		done.Add(int64(job))
		wg.Done()
	})
	want := int64(0)
	for i := 1; i <= 50; i++ {
		wg.Add(1)
		for {
			err := p.TrySubmit(i)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrSaturated) {
				t.Fatalf("submit %d: %v", i, err)
			}
			time.Sleep(time.Millisecond)
		}
		want += int64(i)
	}
	wg.Wait()
	if got := done.Load(); got != want {
		t.Fatalf("job sum = %d, want %d", got, want)
	}
	if _, err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestPoolSaturationAndClose(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	p := NewPool(1, 2, func(_ context.Context, _ int) {
		started <- struct{}{}
		<-block
	})
	if err := p.TrySubmit(0); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // worker now busy; queue is empty
	if err := p.TrySubmit(1); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if err := p.TrySubmit(2); err != nil {
		t.Fatalf("third submit: %v", err)
	}
	if err := p.TrySubmit(3); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit beyond depth: err = %v, want ErrSaturated", err)
	}
	if got := p.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	if got := p.Running(); got != 1 {
		t.Fatalf("Running = %d, want 1", got)
	}

	// Drain with the worker still blocked: pending jobs come back, and the
	// deadline fires because the running job never finishes.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	discarded, err := p.Drain(ctx)
	if len(discarded) != 2 || discarded[0] != 1 || discarded[1] != 2 {
		t.Fatalf("discarded = %v, want [1 2]", discarded)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	if err := p.TrySubmit(9); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after drain: err = %v, want ErrPoolClosed", err)
	}
	close(block)
	if _, err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestPoolDrainWaitsForInFlight(t *testing.T) {
	var finished atomic.Bool
	release := make(chan struct{})
	started := make(chan struct{})
	p := NewPool(1, 4, func(_ context.Context, _ int) {
		close(started)
		<-release
		finished.Store(true)
	})
	if err := p.TrySubmit(1); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	if _, err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !finished.Load() {
		t.Fatal("drain returned before the in-flight job completed")
	}
}

func TestPoolKillCancelsJobContext(t *testing.T) {
	canceled := make(chan struct{})
	started := make(chan struct{})
	p := NewPool(1, 1, func(ctx context.Context, _ int) {
		close(started)
		<-ctx.Done()
		close(canceled)
	})
	if err := p.TrySubmit(1); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	p.Kill()
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("job context not canceled by Kill")
	}
	if _, err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
