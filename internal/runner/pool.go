package runner

import (
	"context"
	"errors"
	"sync"
)

// Pool is the persistent sibling of Map: where Map fans a known batch out
// and returns, a Pool serves an open-ended stream of jobs arriving one at a
// time — the execution engine of a long-running service. It bounds both the
// number of jobs running concurrently and the number waiting, so a caller
// that outruns the pool gets an immediate ErrSaturated to convert into
// backpressure (HTTP 429) instead of an unbounded in-memory queue.
//
// A Pool drains in two steps: Drain stops intake, hands back the jobs that
// never started (so the caller can fail them with a retriable status), and
// waits for the running ones to complete; Kill cancels the context the
// running jobs were given, for when the drain deadline expires.
type Pool[T any] struct {
	run    func(ctx context.Context, job T)
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []T
	depth    int
	running  int
	draining bool
}

var (
	// ErrSaturated is returned by TrySubmit when the pending queue is at
	// its depth limit; the caller should shed load.
	ErrSaturated = errors.New("runner: pool saturated")
	// ErrPoolClosed is returned by TrySubmit after Drain began.
	ErrPoolClosed = errors.New("runner: pool closed")
)

// NewPool starts workers goroutines executing submitted jobs via run, with
// at most depth jobs waiting. workers <= 0 means DefaultWorkers();
// depth <= 0 means 1. run receives a context that is canceled only by
// Kill — a drain deliberately lets running jobs finish.
func NewPool[T any](workers, depth int, run func(ctx context.Context, job T)) *Pool[T] {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if depth <= 0 {
		depth = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool[T]{run: run, ctx: ctx, cancel: cancel, depth: depth}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool[T]) worker() {
	for {
		p.mu.Lock()
		for len(p.pending) == 0 && !p.draining {
			p.cond.Wait()
		}
		if p.draining {
			// Leave whatever is still pending for Drain to hand back.
			p.mu.Unlock()
			return
		}
		job := p.pending[0]
		p.pending = p.pending[1:]
		p.running++
		p.mu.Unlock()

		p.run(p.ctx, job)

		p.mu.Lock()
		p.running--
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// TrySubmit enqueues job, or reports why it cannot: ErrSaturated when the
// pending queue is full, ErrPoolClosed after Drain. It never blocks.
func (p *Pool[T]) TrySubmit(job T) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrPoolClosed
	}
	if len(p.pending) >= p.depth {
		return ErrSaturated
	}
	p.pending = append(p.pending, job)
	p.cond.Signal()
	return nil
}

// Pending reports how many jobs are waiting to start.
func (p *Pool[T]) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Running reports how many jobs are executing right now.
func (p *Pool[T]) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Drain stops intake, returns every job that had not started (in submit
// order), and waits until the running jobs complete or ctx expires —
// whichever comes first. On ctx expiry the still-running jobs keep their
// uncanceled context; call Kill to cancel them. Drain is idempotent; later
// calls return no discarded jobs.
func (p *Pool[T]) Drain(ctx context.Context) ([]T, error) {
	p.mu.Lock()
	p.draining = true
	discarded := p.pending
	p.pending = nil
	p.cond.Broadcast()
	p.mu.Unlock()

	// Wake the cond waiter below when ctx expires.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()

	p.mu.Lock()
	for p.running > 0 && ctx.Err() == nil {
		p.cond.Wait()
	}
	still := p.running
	p.mu.Unlock()
	if still > 0 {
		return discarded, ctx.Err()
	}
	return discarded, nil
}

// Kill cancels the context every running job was given. It does not wait;
// follow with Drain (already-drained pools return immediately once the
// canceled jobs exit).
func (p *Pool[T]) Kill() { p.cancel() }
