// Package memory provides address arithmetic shared by the cache, TLB and
// memory-system models: cache-line and page decomposition of addresses for a
// power-of-two geometry.
//
// All simulated addresses are 64-bit byte addresses. A Geometry fixes the
// cache-line size and the virtual-memory page size; every other component
// derives its indexing from it so the whole machine agrees on where lines
// and pages fall.
package memory

import "fmt"

// Addr is a simulated byte address.
type Addr = uint64

// Geometry describes the fixed power-of-two sizes of the memory system.
type Geometry struct {
	LineBytes int // cache-line size in bytes
	PageBytes int // virtual-memory page size in bytes

	lineShift uint
	pageShift uint
}

// NewGeometry validates sizes and precomputes shifts. LineBytes and PageBytes
// must be powers of two and a page must hold at least one line.
func NewGeometry(lineBytes, pageBytes int) (Geometry, error) {
	if !IsPow2(lineBytes) || lineBytes <= 0 {
		return Geometry{}, fmt.Errorf("memory: line size %d is not a positive power of two", lineBytes)
	}
	if !IsPow2(pageBytes) || pageBytes <= 0 {
		return Geometry{}, fmt.Errorf("memory: page size %d is not a positive power of two", pageBytes)
	}
	if pageBytes < lineBytes {
		return Geometry{}, fmt.Errorf("memory: page size %d smaller than line size %d", pageBytes, lineBytes)
	}
	return Geometry{
		LineBytes: lineBytes,
		PageBytes: pageBytes,
		lineShift: Log2(lineBytes),
		pageShift: Log2(pageBytes),
	}, nil
}

// MustGeometry is NewGeometry that panics on invalid sizes; for tests and
// package-level defaults where the sizes are compile-time constants.
func MustGeometry(lineBytes, pageBytes int) Geometry {
	g, err := NewGeometry(lineBytes, pageBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// LineNumber returns the cache-line number containing addr.
func (g Geometry) LineNumber(addr Addr) uint64 { return addr >> g.lineShift }

// LineBase returns the first byte address of the line containing addr.
func (g Geometry) LineBase(addr Addr) Addr { return addr &^ (uint64(g.LineBytes) - 1) }

// LineOffset returns the byte offset of addr within its line.
func (g Geometry) LineOffset(addr Addr) int { return int(addr & (uint64(g.LineBytes) - 1)) }

// PageNumber returns the page number containing addr.
func (g Geometry) PageNumber(addr Addr) uint64 { return addr >> g.pageShift }

// PageBase returns the first byte address of the page containing addr.
func (g Geometry) PageBase(addr Addr) Addr { return addr &^ (uint64(g.PageBytes) - 1) }

// PageOffset returns the byte offset of addr within its page.
func (g Geometry) PageOffset(addr Addr) int { return int(addr & (uint64(g.PageBytes) - 1)) }

// LinesPerPage reports how many cache lines a page holds.
func (g Geometry) LinesPerPage() int { return g.PageBytes / g.LineBytes }

// PagesCovering returns the page numbers of every page overlapped by the
// byte range [base, base+size).
func (g Geometry) PagesCovering(base Addr, size uint64) []uint64 {
	if size == 0 {
		return nil
	}
	first := g.PageNumber(base)
	last := g.PageNumber(base + size - 1)
	pages := make([]uint64, 0, last-first+1)
	for p := first; p <= last; p++ {
		pages = append(pages, p)
	}
	return pages
}

// LinesCovering returns the line numbers of every line overlapped by the
// byte range [base, base+size).
func (g Geometry) LinesCovering(base Addr, size uint64) []uint64 {
	if size == 0 {
		return nil
	}
	first := g.LineNumber(base)
	last := g.LineNumber(base + size - 1)
	lines := make([]uint64, 0, last-first+1)
	for l := first; l <= last; l++ {
		lines = append(lines, l)
	}
	return lines
}

// IsPow2 reports whether v is a power of two. Zero and negatives are not.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v int) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}
