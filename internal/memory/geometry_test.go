package memory

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		line, page int
		ok         bool
	}{
		{32, 4096, true},
		{16, 256, true},
		{1, 1, true},
		{0, 4096, false},
		{-32, 4096, false},
		{33, 4096, false},
		{32, 0, false},
		{32, 100, false},
		{64, 32, false}, // page smaller than line
	}
	for _, c := range cases {
		_, err := NewGeometry(c.line, c.page)
		if (err == nil) != c.ok {
			t.Errorf("NewGeometry(%d,%d): err=%v, want ok=%v", c.line, c.page, err, c.ok)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(3,4) did not panic")
		}
	}()
	MustGeometry(3, 4)
}

func TestLineMath(t *testing.T) {
	g := MustGeometry(32, 4096)
	cases := []struct {
		addr       Addr
		lineNum    uint64
		lineBase   Addr
		lineOffset int
	}{
		{0, 0, 0, 0},
		{31, 0, 0, 31},
		{32, 1, 32, 0},
		{4095, 127, 4064, 31},
		{4096, 128, 4096, 0},
		{0xdeadbeef, 0xdeadbeef >> 5, 0xdeadbee0, 0x0f},
	}
	for _, c := range cases {
		if got := g.LineNumber(c.addr); got != c.lineNum {
			t.Errorf("LineNumber(%#x)=%d want %d", c.addr, got, c.lineNum)
		}
		if got := g.LineBase(c.addr); got != c.lineBase {
			t.Errorf("LineBase(%#x)=%#x want %#x", c.addr, got, c.lineBase)
		}
		if got := g.LineOffset(c.addr); got != c.lineOffset {
			t.Errorf("LineOffset(%#x)=%d want %d", c.addr, got, c.lineOffset)
		}
	}
}

func TestPageMath(t *testing.T) {
	g := MustGeometry(32, 4096)
	if got := g.PageNumber(4095); got != 0 {
		t.Errorf("PageNumber(4095)=%d want 0", got)
	}
	if got := g.PageNumber(4096); got != 1 {
		t.Errorf("PageNumber(4096)=%d want 1", got)
	}
	if got := g.PageBase(5000); got != 4096 {
		t.Errorf("PageBase(5000)=%d want 4096", got)
	}
	if got := g.PageOffset(5000); got != 904 {
		t.Errorf("PageOffset(5000)=%d want 904", got)
	}
	if got := g.LinesPerPage(); got != 128 {
		t.Errorf("LinesPerPage=%d want 128", got)
	}
}

func TestPagesCovering(t *testing.T) {
	g := MustGeometry(32, 256)
	if got := g.PagesCovering(0, 0); got != nil {
		t.Errorf("empty range gave %v", got)
	}
	if got := g.PagesCovering(0, 1); len(got) != 1 || got[0] != 0 {
		t.Errorf("1-byte range gave %v", got)
	}
	if got := g.PagesCovering(255, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("straddling range gave %v", got)
	}
	if got := g.PagesCovering(256, 256); len(got) != 1 || got[0] != 1 {
		t.Errorf("exact page gave %v", got)
	}
	if got := g.PagesCovering(100, 1000); len(got) != 5 {
		t.Errorf("wide range gave %d pages, want 5", len(got))
	}
}

func TestLinesCovering(t *testing.T) {
	g := MustGeometry(32, 256)
	if got := g.LinesCovering(16, 32); len(got) != 2 {
		t.Errorf("straddling line range gave %v", got)
	}
	if got := g.LinesCovering(32, 32); len(got) != 1 || got[0] != 1 {
		t.Errorf("exact line gave %v", got)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024, 1 << 30} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d)=false", v)
		}
	}
	for _, v := range []int{0, -1, -2, 3, 6, 1000} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d)=true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	for shift := uint(0); shift < 40; shift++ {
		if got := Log2(1 << shift); got != shift {
			t.Errorf("Log2(1<<%d)=%d", shift, got)
		}
	}
}

// Property: for any address and any power-of-two geometry,
// LineBase(a) <= a < LineBase(a)+LineBytes and offset is consistent.
func TestLineDecompositionProperty(t *testing.T) {
	f := func(addr uint64, lineShift uint8) bool {
		shift := uint(lineShift%12) + 1 // lines 2..4096 bytes
		g := MustGeometry(1<<shift, 1<<(shift+2))
		base := g.LineBase(addr)
		off := g.LineOffset(addr)
		return base+uint64(off) == addr && off < g.LineBytes && base%uint64(g.LineBytes) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: page decomposition is consistent and page contains its lines.
func TestPageDecompositionProperty(t *testing.T) {
	f := func(addr uint64) bool {
		g := MustGeometry(32, 4096)
		pb := g.PageBase(addr)
		return pb+uint64(g.PageOffset(addr)) == addr &&
			g.PageNumber(pb) == g.PageNumber(addr) &&
			g.LineNumber(addr)/uint64(g.LinesPerPage()) == g.PageNumber(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
