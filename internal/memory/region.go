package memory

import (
	"fmt"
	"sort"
)

// Region is a named contiguous byte range of the simulated address space,
// typically one program variable (array, table, buffer) placed by the
// allocator below.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr Addr) bool { return addr >= r.Base && addr < r.End() }

func (r Region) String() string {
	return fmt.Sprintf("%s[0x%x..0x%x)", r.Name, r.Base, r.End())
}

// Space is a bump allocator for the simulated address space. Workloads use
// it to lay out their variables; the resulting regions double as the
// address→variable map consumed by the profiler and the layout algorithm.
type Space struct {
	next    Addr
	regions []Region
}

// NewSpace returns a Space whose first allocation starts at base.
func NewSpace(base Addr) *Space { return &Space{next: base} }

// Alloc reserves size bytes aligned to align (a power of two; 0 or 1 means
// byte-aligned) and records the region under name. Names need not be unique,
// but lookups by name return the first match.
func (s *Space) Alloc(name string, size uint64, align uint64) Region {
	if align > 1 {
		if align&(align-1) != 0 {
			panic(fmt.Sprintf("memory: alignment %d is not a power of two", align))
		}
		s.next = (s.next + align - 1) &^ (align - 1)
	}
	r := Region{Name: name, Base: s.next, Size: size}
	s.next += size
	s.regions = append(s.regions, r)
	return r
}

// Regions returns all allocated regions in allocation order. The result is
// a copy, not the live slice: snapshot accessors across the simulator
// return detached data, so a caller holding the result across later Alloc
// calls can never alias (or be clobbered by) the space's internal state.
func (s *Space) Regions() []Region {
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// Find returns the region containing addr, if any.
func (s *Space) Find(addr Addr) (Region, bool) {
	// Regions are allocated in increasing address order, so binary search.
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > addr })
	if i < len(s.regions) && s.regions[i].Contains(addr) {
		return s.regions[i], true
	}
	return Region{}, false
}

// ByName returns the first region allocated under name.
func (s *Space) ByName(name string) (Region, bool) {
	for _, r := range s.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Footprint returns the total bytes allocated, ignoring alignment gaps.
func (s *Space) Footprint() uint64 {
	var total uint64
	for _, r := range s.regions {
		total += r.Size
	}
	return total
}
