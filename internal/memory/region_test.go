package memory

import "testing"

func TestSpaceAllocSequential(t *testing.T) {
	s := NewSpace(0x1000)
	a := s.Alloc("a", 100, 0)
	b := s.Alloc("b", 50, 0)
	if a.Base != 0x1000 || a.Size != 100 {
		t.Errorf("a=%v", a)
	}
	if b.Base != 0x1000+100 {
		t.Errorf("b.Base=%#x want %#x", b.Base, 0x1000+100)
	}
	if s.Footprint() != 150 {
		t.Errorf("Footprint=%d want 150", s.Footprint())
	}
}

func TestSpaceAlign(t *testing.T) {
	s := NewSpace(0)
	s.Alloc("a", 3, 0)
	b := s.Alloc("b", 8, 64)
	if b.Base != 64 {
		t.Errorf("aligned Base=%d want 64", b.Base)
	}
	c := s.Alloc("c", 1, 1)
	if c.Base != 72 {
		t.Errorf("byte-aligned Base=%d want 72", c.Base)
	}
}

func TestSpaceAlignPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc with align=3 did not panic")
		}
	}()
	NewSpace(0).Alloc("x", 1, 3)
}

func TestSpaceFind(t *testing.T) {
	s := NewSpace(0)
	a := s.Alloc("a", 100, 0)
	s.Alloc("gap", 0, 0) // zero-size region
	b := s.Alloc("b", 100, 256)

	if r, ok := s.Find(a.Base + 99); !ok || r.Name != "a" {
		t.Errorf("Find inside a gave %v,%v", r, ok)
	}
	if _, ok := s.Find(150); ok {
		t.Error("Find in alignment gap succeeded")
	}
	if r, ok := s.Find(b.Base); !ok || r.Name != "b" {
		t.Errorf("Find at b.Base gave %v,%v", r, ok)
	}
	if _, ok := s.Find(b.End()); ok {
		t.Error("Find at End() succeeded; ranges are half-open")
	}
}

func TestSpaceByName(t *testing.T) {
	s := NewSpace(0)
	s.Alloc("x", 10, 0)
	s.Alloc("y", 10, 0)
	if r, ok := s.ByName("y"); !ok || r.Base != 10 {
		t.Errorf("ByName(y)=%v,%v", r, ok)
	}
	if _, ok := s.ByName("z"); ok {
		t.Error("ByName(z) found a region")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "r", Base: 10, Size: 5}
	for a, want := range map[Addr]bool{9: false, 10: true, 14: true, 15: false} {
		if r.Contains(a) != want {
			t.Errorf("Contains(%d)=%v want %v", a, !want, want)
		}
	}
	if r.End() != 15 {
		t.Errorf("End=%d", r.End())
	}
}

func TestRegionsReturnsDetachedCopy(t *testing.T) {
	s := NewSpace(0)
	s.Alloc("a", 16, 0)
	s.Alloc("b", 16, 0)
	got := s.Regions()
	got[0].Name = "clobbered"
	got = append(got[:1], Region{Name: "junk", Base: 999, Size: 1})
	_ = got
	if r, ok := s.ByName("a"); !ok || r.Name != "a" {
		t.Fatalf("mutating the returned slice changed the space: %v %v", r, ok)
	}
	again := s.Regions()
	if len(again) != 2 || again[0].Name != "a" || again[1].Name != "b" {
		t.Fatalf("space regions corrupted: %v", again)
	}
	if _, ok := s.Find(5); !ok {
		t.Fatal("Find broken after caller mutation")
	}
}
