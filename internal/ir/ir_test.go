package ir

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []*Program{
		{Body: []Stmt{Access{Array: "x"}}},
		{Arrays: []ArrayDecl{{Name: "a"}, {Name: "a"}}},
		{Arrays: []ArrayDecl{{Name: "a"}}, Body: []Stmt{Compute{Instrs: -1}}},
		{Arrays: []ArrayDecl{{Name: "a"}}, Body: []Stmt{Loop{Count: -1}}},
		{Arrays: []ArrayDecl{{Name: "a"}}, Body: []Stmt{Branch{Prob: 1.5}}},
		{Arrays: []ArrayDecl{{Name: "a"}}, Body: []Stmt{Loop{Count: 1, Body: []Stmt{Access{Array: "z"}}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %d accepted", i)
		}
	}
}

func TestAnalyzeStraightLine(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}, {Name: "b", Bytes: 64}},
		Body: []Stmt{
			Access{Array: "a"},
			Compute{Instrs: 3},
			Access{Array: "b"},
			Access{Array: "a"},
		},
	}
	est, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if est.Duration != 6 {
		t.Errorf("duration=%v want 6", est.Duration)
	}
	a := est.Arrays["a"]
	if a.Accesses != 2 || a.First != 0 || a.Last != 5 {
		t.Errorf("a=%+v", a)
	}
	b := est.Arrays["b"]
	if b.Accesses != 1 || b.First != 4 || b.Last != 4 {
		t.Errorf("b=%+v", b)
	}
}

func TestAnalyzeLoopScalesCounts(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 10, Body: []Stmt{Access{Array: "a"}, Compute{Instrs: 1}}},
		},
	}
	est, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	a := est.Arrays["a"]
	if a.Accesses != 10 {
		t.Errorf("accesses=%v want 10", a.Accesses)
	}
	if a.First != 0 {
		t.Errorf("first=%v want 0", a.First)
	}
	// Last iteration starts at t=18, access at 18.
	if a.Last != 18 {
		t.Errorf("last=%v want 18", a.Last)
	}
	if est.Duration != 20 {
		t.Errorf("duration=%v want 20", est.Duration)
	}
}

func TestAnalyzeNestedLoops(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 4, Body: []Stmt{
				Loop{Count: 5, Body: []Stmt{Access{Array: "a"}}},
			}},
		},
	}
	est, _ := Analyze(p)
	if got := est.Arrays["a"].Accesses; got != 20 {
		t.Errorf("accesses=%v want 20", got)
	}
	if est.Duration != 20 {
		t.Errorf("duration=%v want 20", est.Duration)
	}
}

func TestAnalyzeLoopCountOneAndZero(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 1, Body: []Stmt{Access{Array: "a"}}},
			Loop{Count: 0, Body: []Stmt{Access{Array: "a"}}},
		},
	}
	est, _ := Analyze(p)
	if got := est.Arrays["a"].Accesses; got != 1 {
		t.Errorf("accesses=%v want 1", got)
	}
	if est.Duration != 1 {
		t.Errorf("duration=%v want 1", est.Duration)
	}
}

func TestAnalyzeBranchProbabilities(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}, {Name: "b", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 100, Body: []Stmt{
				Branch{
					Prob: 0.25,
					Then: []Stmt{Access{Array: "a"}},
					Else: []Stmt{Access{Array: "b"}},
				},
			}},
		},
	}
	est, _ := Analyze(p)
	if got := est.Arrays["a"].Accesses; math.Abs(got-25) > 1e-9 {
		t.Errorf("a accesses=%v want 25", got)
	}
	if got := est.Arrays["b"].Accesses; math.Abs(got-75) > 1e-9 {
		t.Errorf("b accesses=%v want 75", got)
	}
	if est.Duration != 100 {
		t.Errorf("duration=%v want 100", est.Duration)
	}
}

func TestAnalyzeBranchProbZeroOrOne(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}, {Name: "b", Bytes: 64}},
		Body: []Stmt{
			Branch{Prob: 1, Then: []Stmt{Access{Array: "a"}}, Else: []Stmt{Access{Array: "b"}}},
			Branch{Prob: 0, Then: []Stmt{Access{Array: "a"}}, Else: []Stmt{Access{Array: "b"}}},
		},
	}
	est, _ := Analyze(p)
	if est.Arrays["a"].Accesses != 1 || est.Arrays["b"].Accesses != 1 {
		t.Errorf("a=%v b=%v", est.Arrays["a"].Accesses, est.Arrays["b"].Accesses)
	}
}

func TestAnalyzeNeverAccessed(t *testing.T) {
	p := &Program{
		Arrays: []ArrayDecl{{Name: "dead", Bytes: 64}},
		Body:   []Stmt{Compute{Instrs: 10}},
	}
	est, _ := Analyze(p)
	d := est.Arrays["dead"]
	if d.Accesses != 0 || d.First != 0 || d.Last != 0 || d.Live(0) {
		t.Errorf("dead=%+v", d)
	}
}

func TestWeightDisjoint(t *testing.T) {
	// Sequential phases: a then b, no overlap.
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}, {Name: "b", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 50, Body: []Stmt{Access{Array: "a"}}},
			Loop{Count: 50, Body: []Stmt{Access{Array: "b"}}},
		},
	}
	est, _ := Analyze(p)
	if w := Weight(est.Arrays["a"], est.Arrays["b"]); w != 0 {
		t.Errorf("disjoint weight=%d", w)
	}
}

func TestWeightOverlapping(t *testing.T) {
	// Interleaved accesses: both live the whole time.
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}, {Name: "b", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 50, Body: []Stmt{Access{Array: "a"}, Access{Array: "b"}}},
		},
	}
	est, _ := Analyze(p)
	w := Weight(est.Arrays["a"], est.Arrays["b"])
	// Both have 50 accesses over nearly coincident lifetimes: weight ≈ 50.
	if w < 45 || w > 50 {
		t.Errorf("weight=%d want ≈50", w)
	}
}

func TestWeightPartialOverlapApportioned(t *testing.T) {
	// a live the whole program; b only in the second half.
	p := &Program{
		Arrays: []ArrayDecl{{Name: "a", Bytes: 64}, {Name: "b", Bytes: 64}},
		Body: []Stmt{
			Loop{Count: 100, Body: []Stmt{Access{Array: "a"}}},
			Loop{Count: 100, Body: []Stmt{Access{Array: "a"}, Access{Array: "b"}}},
		},
	}
	est, _ := Analyze(p)
	w := Weight(est.Arrays["a"], est.Arrays["b"])
	// a has 200 accesses over ~300 units, overlap is the last ~200 units →
	// roughly 2/3 of a's accesses ≈ 133; b has 100 → min ≈ 100.
	if w < 80 || w > 110 {
		t.Errorf("weight=%d want ≈100", w)
	}
}

func TestWeightDeadArray(t *testing.T) {
	a := &ArrayEstimate{Accesses: 10, First: 0, Last: 5}
	dead := &ArrayEstimate{}
	if Weight(a, dead) != 0 {
		t.Error("weight with dead array nonzero")
	}
}

func TestWeightPointLifetime(t *testing.T) {
	a := &ArrayEstimate{Accesses: 5, First: 3, Last: 3}
	b := &ArrayEstimate{Accesses: 8, First: 0, Last: 10}
	// a contributes all 5 accesses to the point overlap; b contributes
	// 8/11 ≈ 0.7, rounded to 1 — the minimum wins.
	if w := Weight(a, b); w != 1 {
		t.Errorf("point lifetime weight=%d want 1", w)
	}
}
