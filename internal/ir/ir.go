// Package ir is the compiler-side substrate for the paper's second weight
// method (paper §3.1.1): "the program analysis method operates on the
// intermediate form (IF) representation of the program... For each variable,
// we determine the number of accesses by estimating loop iteration counts
// and the probability of taking branches."
//
// A Program is a tree of loops, branches, array accesses and plain compute;
// Analyze walks it once, propagating an execution multiplier (loop counts ×
// branch probabilities) and a virtual clock, to produce per-array estimated
// access counts and approximate life-time intervals. Estimates feed the same
// conflict-weight formula the profiler uses, with access counts inside an
// interval apportioned by uniform density.
package ir

import (
	"fmt"
	"math"
)

// Stmt is a node of the intermediate form.
type Stmt interface{ isStmt() }

// Access is one dynamic reference to an array each time it executes.
type Access struct {
	Array string
	Write bool
}

// Compute is a run of non-memory instructions.
type Compute struct{ Instrs int }

// Loop executes Body Count times.
type Loop struct {
	Count int
	Body  []Stmt
}

// Branch executes Then with probability Prob, else Else.
type Branch struct {
	Prob float64 // probability of taking Then, in [0,1]
	Then []Stmt
	Else []Stmt
}

func (Access) isStmt()  {}
func (Compute) isStmt() {}
func (Loop) isStmt()    {}
func (Branch) isStmt()  {}

// ArrayDecl declares a program array to be laid out.
type ArrayDecl struct {
	Name  string
	Bytes uint64
}

// Program is the unit of analysis.
type Program struct {
	Arrays []ArrayDecl
	Body   []Stmt
}

// Validate checks that every accessed array is declared, counts are
// non-negative, and probabilities are in range.
func (p *Program) Validate() error {
	declared := make(map[string]bool, len(p.Arrays))
	for _, a := range p.Arrays {
		if declared[a.Name] {
			return fmt.Errorf("ir: array %q declared twice", a.Name)
		}
		declared[a.Name] = true
	}
	var walk func([]Stmt) error
	walk = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case Access:
				if !declared[s.Array] {
					return fmt.Errorf("ir: access to undeclared array %q", s.Array)
				}
			case Compute:
				if s.Instrs < 0 {
					return fmt.Errorf("ir: negative compute %d", s.Instrs)
				}
			case Loop:
				if s.Count < 0 {
					return fmt.Errorf("ir: negative loop count %d", s.Count)
				}
				if err := walk(s.Body); err != nil {
					return err
				}
			case Branch:
				if s.Prob < 0 || s.Prob > 1 {
					return fmt.Errorf("ir: branch probability %v outside [0,1]", s.Prob)
				}
				if err := walk(s.Then); err != nil {
					return err
				}
				if err := walk(s.Else); err != nil {
					return err
				}
			default:
				return fmt.Errorf("ir: unknown statement %T", s)
			}
		}
		return nil
	}
	return walk(p.Body)
}

// ArrayEstimate is the static estimate for one array.
type ArrayEstimate struct {
	Name     string
	Bytes    uint64
	Accesses float64 // expected dynamic access count
	First    float64 // estimated time of first access (virtual instructions)
	Last     float64 // estimated time of last access
}

// Live reports whether the estimated life-time covers t.
func (e *ArrayEstimate) Live(t float64) bool {
	return e.Accesses > 0 && t >= e.First && t <= e.Last
}

// Estimate is the result of Analyze.
type Estimate struct {
	Arrays   map[string]*ArrayEstimate
	Duration float64 // estimated dynamic instruction count of the program
}

// Analyze walks the program computing expected access counts and approximate
// life-times. Every statement advances the virtual clock by its expected
// dynamic length: 1 per access, Instrs per compute, Count×body for loops and
// the probability-weighted mean for branches; branch life-times span both
// arms conservatively.
func Analyze(p *Program) (*Estimate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	est := &Estimate{Arrays: make(map[string]*ArrayEstimate, len(p.Arrays))}
	for _, a := range p.Arrays {
		est.Arrays[a.Name] = &ArrayEstimate{
			Name: a.Name, Bytes: a.Bytes,
			First: math.Inf(1), Last: math.Inf(-1),
		}
	}
	est.Duration = analyzeBlock(p.Body, 1, 0, est)
	for _, a := range est.Arrays {
		if a.Accesses == 0 {
			a.First, a.Last = 0, 0
		}
	}
	return est, nil
}

// analyzeBlock processes stmts executed mult expected times starting at
// virtual time t0, and returns the block's expected duration.
func analyzeBlock(stmts []Stmt, mult, t0 float64, est *Estimate) float64 {
	t := t0
	for _, s := range stmts {
		switch s := s.(type) {
		case Access:
			a := est.Arrays[s.Array]
			a.Accesses += mult
			if t < a.First {
				a.First = t
			}
			if t > a.Last {
				a.Last = t
			}
			t++
		case Compute:
			t += float64(s.Instrs)
		case Loop:
			if s.Count == 0 {
				continue
			}
			// Two symbolic passes: the first iteration (carrying the weight
			// of iterations 1..Count-1) pins first-access times at t, the
			// last iteration pins last-access times at the loop's end;
			// together the counts scale by Count.
			perIter := measureBlock(s.Body)
			if s.Count == 1 {
				analyzeBlock(s.Body, mult, t, est)
			} else {
				analyzeBlock(s.Body, mult*float64(s.Count-1), t, est)
				analyzeBlock(s.Body, mult, t+float64(s.Count-1)*perIter, est)
			}
			t += float64(s.Count) * perIter
		case Branch:
			dThen := measureBlock(s.Then)
			dElse := measureBlock(s.Else)
			if s.Prob > 0 {
				analyzeBlock(s.Then, mult*s.Prob, t, est)
			}
			if s.Prob < 1 {
				analyzeBlock(s.Else, mult*(1-s.Prob), t, est)
			}
			t += s.Prob*dThen + (1-s.Prob)*dElse
		}
	}
	return t - t0
}

// measureBlock returns the expected duration of a block without touching
// array estimates.
func measureBlock(stmts []Stmt) float64 {
	var t float64
	for _, s := range stmts {
		switch s := s.(type) {
		case Access:
			t++
		case Compute:
			t += float64(s.Instrs)
		case Loop:
			t += float64(s.Count) * measureBlock(s.Body)
		case Branch:
			t += s.Prob*measureBlock(s.Then) + (1-s.Prob)*measureBlock(s.Else)
		}
	}
	return t
}

// Weight computes the approximate conflict weight between two arrays from
// their estimates: zero if their life-times are disjoint, otherwise the
// minimum of the two access counts apportioned (by uniform density) to the
// overlap interval — the static analogue of the profiler's
// w(vi,vj) = MIN(n_i^j, n_j^i).
func Weight(a, b *ArrayEstimate) int64 {
	if a.Accesses == 0 || b.Accesses == 0 {
		return 0
	}
	lo := math.Max(a.First, b.First)
	hi := math.Min(a.Last, b.Last)
	if lo > hi {
		return 0
	}
	na := apportion(a, lo, hi)
	nb := apportion(b, lo, hi)
	return int64(math.Round(math.Min(na, nb)))
}

func apportion(a *ArrayEstimate, lo, hi float64) float64 {
	// Closed-interval widths, so a point life-time inside the overlap still
	// contributes all its accesses.
	frac := (hi - lo + 1) / (a.Last - a.First + 1)
	if frac > 1 {
		frac = 1
	}
	return a.Accesses * frac
}
