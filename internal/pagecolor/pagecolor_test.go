package pagecolor

import (
	"testing"
	"testing/quick"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/replacement"
)

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(100, 2048); err == nil {
		t.Error("non-pow2 page accepted")
	}
	if _, err := NewMapper(512, 1000); err == nil {
		t.Error("non-pow2 cache accepted")
	}
	if _, err := NewMapper(4096, 2048); err == nil {
		t.Error("cache smaller than page accepted")
	}
	m, err := NewMapper(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if m.Colors() != 4 {
		t.Errorf("colors=%d want 4", m.Colors())
	}
}

func TestTranslatePreservesOffsets(t *testing.T) {
	m, _ := NewMapper(512, 2048)
	va := memory.Addr(5*512 + 123)
	pa := m.Translate(va)
	if pa%512 != 123 {
		t.Errorf("page offset lost: pa=%#x", pa)
	}
	// Same page translates consistently.
	if pa2 := m.Translate(va + 1); pa2 != pa+1 {
		t.Errorf("same-page translation inconsistent: %#x vs %#x", pa2, pa+1)
	}
}

func TestMapRegionSingleColor(t *testing.T) {
	m, _ := NewMapper(512, 2048)
	r := memory.Region{Name: "r", Base: 0, Size: 2048} // 4 pages
	if err := m.MapRegion(r, 2); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < r.Size; off += 512 {
		if c := m.ColorOf(m.Translate(r.Base + off)); c != 2 {
			t.Errorf("page at %#x has color %d want 2", off, c)
		}
	}
	if err := m.MapRegion(r, 4); err == nil {
		t.Error("out-of-range color accepted")
	}
	if err := m.MapRegion(r, -1); err == nil {
		t.Error("negative color accepted")
	}
}

func TestMapRegionStriped(t *testing.T) {
	m, _ := NewMapper(512, 2048)
	r := memory.Region{Name: "r", Base: 0, Size: 4 * 512}
	if err := m.MapRegionStriped(r, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 1, 3}
	for i, off := 0, uint64(0); off < r.Size; i, off = i+1, off+512 {
		if c := m.ColorOf(m.Translate(r.Base + off)); c != want[i] {
			t.Errorf("page %d color %d want %d", i, c, want[i])
		}
	}
	if err := m.MapRegionStriped(r, nil); err == nil {
		t.Error("empty color list accepted")
	}
	if err := m.MapRegionStriped(r, []int{9}); err == nil {
		t.Error("bad color accepted")
	}
}

func TestFramesNeverCollide(t *testing.T) {
	// Distinct virtual pages must get distinct physical frames, whatever
	// the mapping calls — otherwise two pages would alias in "DRAM".
	f := func(ops []uint8) bool {
		m, _ := NewMapper(256, 2048)
		for _, op := range ops {
			r := memory.Region{Base: uint64(op%16) * 256, Size: 256}
			switch (op / 16) % 3 {
			case 0:
				m.MapRegion(r, int(op)%m.Colors())
			case 1:
				m.MapRegionStriped(r, []int{0, int(op) % m.Colors()})
			case 2:
				m.Translate(r.Base)
			}
		}
		seen := make(map[uint64]uint64)
		for vp, pf := range m.table {
			if prev, dup := seen[pf]; dup && prev != vp {
				return false
			}
			seen[pf] = vp
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecolorCountsCopies(t *testing.T) {
	m, _ := NewMapper(512, 2048)
	r := memory.Region{Name: "r", Base: 0, Size: 1024}
	n, err := m.Recolor(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1024 || m.CopiedBytes() != 1024 {
		t.Errorf("copied %d / total %d want 1024", n, m.CopiedBytes())
	}
	if c := m.ColorOf(m.Translate(0)); c != 1 {
		t.Errorf("recolored page has color %d", c)
	}
	if _, err := m.Recolor(r, 99); err == nil {
		t.Error("bad recolor accepted")
	}
}

// TestColoringIsolatesInDirectMappedCache shows the baseline doing its job:
// a hot table colored apart from a stream keeps its residency in a
// direct-mapped cache.
func TestColoringIsolatesInDirectMappedCache(t *testing.T) {
	run := func(isolate bool) int64 {
		m, _ := NewMapper(512, 2048)
		c := cache.MustNew(cache.Config{LineBytes: 32, NumSets: 64, NumWays: 1}) // 2KB direct-mapped
		table := memory.Region{Name: "table", Base: 0, Size: 512}
		stream := memory.Region{Name: "stream", Base: 1 << 20, Size: 1 << 16}
		if isolate {
			m.MapRegion(table, 0)
			m.MapRegionStriped(stream, []int{1, 2, 3})
		}
		all := replacement.All(1)
		// Warm the table.
		for off := uint64(0); off < table.Size; off += 32 {
			c.Read(m.Translate(table.Base+off), all)
		}
		st0 := c.Stats()
		pos := uint64(0)
		for round := 0; round < 32; round++ {
			for j := 0; j < 64; j++ {
				c.Read(m.Translate(stream.Base+pos), all)
				pos += 32
			}
			for off := uint64(0); off < table.Size; off += 32 {
				c.Read(m.Translate(table.Base+off), all)
			}
		}
		return c.Stats().Misses - st0.Misses
	}
	shared := run(false)
	isolated := run(true)
	// Stream cold misses are 32×64 in both runs; isolation removes the
	// table's misses entirely.
	if isolated != 32*64 {
		t.Errorf("isolated misses=%d want %d (stream cold only)", isolated, 32*64)
	}
	if shared <= isolated {
		t.Errorf("no interference without coloring: %d vs %d", shared, isolated)
	}
}

// TestRemapCostAsymmetry is the paper's §5.1 comparison in numbers: moving
// a region to a different cache slice costs a full copy under page coloring
// and one table write under column caching.
func TestRemapCostAsymmetry(t *testing.T) {
	m, _ := NewMapper(512, 2048)
	r := memory.Region{Name: "r", Base: 0, Size: 2048}
	m.MapRegion(r, 0)
	copied, _ := m.Recolor(r, 1)
	if copied != 2048 {
		t.Fatalf("copied=%d", copied)
	}
	// Column caching's equivalent: one tint-table write (tested in
	// internal/tint); here we just pin the asymmetry ratio.
	const tintTableWrites = 1
	if copied/32 <= tintTableWrites {
		t.Error("copy cost not larger than a table write?!")
	}
}
