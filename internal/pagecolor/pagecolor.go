// Package pagecolor implements page coloring, the software-only baseline
// the paper compares against (§5.1): the OS chooses physical page frames so
// that a virtual region maps onto a chosen slice ("color") of a physically
// indexed cache. Coloring provides a subset of column caching's abilities:
//
//   - it can isolate regions in a direct-mapped (or set-indexed) cache
//     without any hardware support, but
//   - remapping a region to a different part of the cache requires copying
//     the memory to differently-colored frames (column caching remaps with
//     one table write), and
//   - it partitions sets, not ways, so it wastes associativity in
//     set-associative caches.
//
// The Mapper models the OS's frame allocator and page table; traces are run
// through Translate before hitting a physically indexed cache model.
package pagecolor

import (
	"fmt"

	"colcache/internal/memory"
)

// Mapper assigns physical frames to virtual pages by color. A color is the
// slice of the cache a frame lands in: frame f has color f mod Colors.
type Mapper struct {
	pageBytes uint64
	colors    int
	nextFrame []uint64          // per color: how many frames of it are handed out
	table     map[uint64]uint64 // virtual page -> physical frame
	copied    uint64            // bytes copied by Recolor calls
}

// NewMapper builds a mapper for a physically indexed cache of cacheBytes
// with the given page size. The number of colors is cacheBytes/pageBytes;
// both must be powers of two with at least one color.
func NewMapper(pageBytes, cacheBytes int) (*Mapper, error) {
	if !memory.IsPow2(pageBytes) || !memory.IsPow2(cacheBytes) {
		return nil, fmt.Errorf("pagecolor: sizes must be powers of two (page %d, cache %d)", pageBytes, cacheBytes)
	}
	if cacheBytes < pageBytes {
		return nil, fmt.Errorf("pagecolor: cache %d smaller than a page %d", cacheBytes, pageBytes)
	}
	colors := cacheBytes / pageBytes
	return &Mapper{
		pageBytes: uint64(pageBytes),
		colors:    colors,
		nextFrame: make([]uint64, colors),
		table:     make(map[uint64]uint64),
	}, nil
}

// Colors returns the number of page colors.
func (m *Mapper) Colors() int { return m.colors }

// CopiedBytes returns the total bytes Recolor has copied — the cost the
// paper holds against page coloring.
func (m *Mapper) CopiedBytes() uint64 { return m.copied }

// frameOf allocates the next free frame of the given color.
func (m *Mapper) frameOf(color int) uint64 {
	f := m.nextFrame[color]*uint64(m.colors) + uint64(color)
	m.nextFrame[color]++
	return f
}

// MapRegion assigns every page of r a frame of the single given color, so
// the whole region lands in one cache slice. Pages already mapped are
// remapped (without a copy — use Recolor for the honest accounting).
func (m *Mapper) MapRegion(r memory.Region, color int) error {
	if color < 0 || color >= m.colors {
		return fmt.Errorf("pagecolor: color %d outside [0,%d)", color, m.colors)
	}
	for _, vp := range m.pages(r) {
		m.table[vp] = m.frameOf(color)
	}
	return nil
}

// MapRegionStriped assigns r's pages round-robin across the given colors —
// the usual OS policy ("bin hopping") that spreads a large region over a
// slice of the cache.
func (m *Mapper) MapRegionStriped(r memory.Region, colors []int) error {
	if len(colors) == 0 {
		return fmt.Errorf("pagecolor: no colors given")
	}
	for _, c := range colors {
		if c < 0 || c >= m.colors {
			return fmt.Errorf("pagecolor: color %d outside [0,%d)", c, m.colors)
		}
	}
	for i, vp := range m.pages(r) {
		m.table[vp] = m.frameOf(colors[i%len(colors)])
	}
	return nil
}

func (m *Mapper) pages(r memory.Region) []uint64 {
	if r.Size == 0 {
		return nil
	}
	first := r.Base / m.pageBytes
	last := (r.Base + r.Size - 1) / m.pageBytes
	out := make([]uint64, 0, last-first+1)
	for p := first; p <= last; p++ {
		out = append(out, p)
	}
	return out
}

// Translate converts a virtual address to the physical address the cache
// indexes. Unmapped pages are mapped on first touch, striped across all
// colors (the default allocator).
func (m *Mapper) Translate(va memory.Addr) memory.Addr {
	vp := va / m.pageBytes
	pf, ok := m.table[vp]
	if !ok {
		pf = m.frameOf(int(vp) % m.colors)
		m.table[vp] = pf
	}
	return pf*m.pageBytes + va%m.pageBytes
}

// ColorOf returns the color of the physical address pa.
func (m *Mapper) ColorOf(pa memory.Addr) int {
	return int(pa / m.pageBytes % uint64(m.colors))
}

// Recolor moves region r to frames of the new color, copying every byte —
// this is the operation column caching performs with a single tint-table
// write, and the copy is the cost the paper's §5.1 comparison highlights.
// It returns the number of bytes copied.
func (m *Mapper) Recolor(r memory.Region, color int) (uint64, error) {
	if err := m.MapRegion(r, color); err != nil {
		return 0, err
	}
	m.copied += r.Size
	return r.Size, nil
}
