package scratchpad

import (
	"testing"

	"colcache/internal/memory"
)

func TestPlacementCapacity(t *testing.T) {
	s := New(1024)
	if s.Capacity() != 1024 || s.Used() != 0 || s.Free() != 1024 {
		t.Fatalf("fresh pad: cap=%d used=%d free=%d", s.Capacity(), s.Used(), s.Free())
	}
	a := memory.Region{Name: "a", Base: 0, Size: 600}
	b := memory.Region{Name: "b", Base: 1000, Size: 600}
	if err := s.Place(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(b); err == nil {
		t.Error("overcommit accepted")
	}
	if s.Free() != 424 {
		t.Errorf("free=%d want 424", s.Free())
	}
}

func TestContains(t *testing.T) {
	s := New(1 << 20)
	s.Place(memory.Region{Name: "a", Base: 100, Size: 50})
	s.Place(memory.Region{Name: "b", Base: 300, Size: 50})
	for addr, want := range map[uint64]bool{
		99: false, 100: true, 149: true, 150: false,
		299: false, 300: true, 349: true, 350: false,
	} {
		if got := s.Contains(addr); got != want {
			t.Errorf("Contains(%d)=%v want %v", addr, got, want)
		}
	}
}

func TestRemoveAndClear(t *testing.T) {
	s := New(1000)
	s.Place(memory.Region{Name: "a", Base: 0, Size: 100})
	s.Place(memory.Region{Name: "b", Base: 200, Size: 100})
	if !s.Remove("a") {
		t.Error("Remove(a) failed")
	}
	if s.Remove("a") {
		t.Error("double Remove succeeded")
	}
	if s.Used() != 100 || s.Contains(50) {
		t.Errorf("used=%d contains(50)=%v", s.Used(), s.Contains(50))
	}
	s.Clear()
	if s.Used() != 0 || len(s.Regions()) != 0 {
		t.Error("Clear incomplete")
	}
}

func TestAccessCounting(t *testing.T) {
	s := New(10)
	s.Note()
	s.Note()
	if s.Accesses() != 2 {
		t.Errorf("accesses=%d", s.Accesses())
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if err := s.Place(memory.Region{Name: "a", Size: 1}); err == nil {
		t.Error("placement into zero-capacity pad succeeded")
	}
	if s.Contains(0) {
		t.Error("empty pad contains an address")
	}
	// Zero-size region fits anywhere, including a full pad.
	if err := s.Place(memory.Region{Name: "z", Size: 0}); err != nil {
		t.Errorf("zero-size region rejected: %v", err)
	}
}

func TestCopyCost(t *testing.T) {
	if got := CopyCost(0, 32, 20); got != 0 {
		t.Errorf("CopyCost(0)=%d", got)
	}
	if got := CopyCost(1, 32, 20); got != 20 {
		t.Errorf("CopyCost(1)=%d want 20 (one line)", got)
	}
	if got := CopyCost(64, 32, 20); got != 40 {
		t.Errorf("CopyCost(64)=%d want 40", got)
	}
	if got := CopyCost(65, 32, 20); got != 60 {
		t.Errorf("CopyCost(65)=%d want 60 (rounds up)", got)
	}
}
