// Package scratchpad models dedicated on-chip SRAM in a separate address
// region — the conventional embedded-systems alternative to a cache that the
// paper's Figure 4 experiment partitions against (after Panda, Dutt and
// Nicolau). Data resident in the scratchpad is accessed in a fixed single
// latency with no misses, which is exactly why real-time designers use it:
// performance is completely predictable once data is placed there.
package scratchpad

import (
	"fmt"
	"sort"

	"colcache/internal/memory"
)

// Scratchpad is a set of address regions served by dedicated SRAM. Placement
// is a compile-time decision in this model: data assigned to the scratchpad
// is there from the start (no cold misses), matching the paper's observation
// that scratchpad assignment "avoids cold misses".
type Scratchpad struct {
	capacity uint64
	used     uint64
	regions  []memory.Region
	accesses int64
}

// New returns a scratchpad with the given byte capacity. Capacity 0 is a
// valid scratchpad that holds nothing.
func New(capacity uint64) *Scratchpad {
	return &Scratchpad{capacity: capacity}
}

// Capacity returns the configured size in bytes.
func (s *Scratchpad) Capacity() uint64 { return s.capacity }

// Used returns the bytes consumed by placed regions.
func (s *Scratchpad) Used() uint64 { return s.used }

// Free returns the remaining bytes.
func (s *Scratchpad) Free() uint64 { return s.capacity - s.used }

// Place assigns region r to the scratchpad. It fails if the region does not
// fit in the remaining capacity — a region that does not fit must stay in
// cacheable memory or be subdivided by the caller (paper §1.1).
func (s *Scratchpad) Place(r memory.Region) error {
	if r.Size > s.Free() {
		return fmt.Errorf("scratchpad: %s (%d bytes) does not fit in %d free bytes", r.Name, r.Size, s.Free())
	}
	s.used += r.Size
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	return nil
}

// Remove evicts the region named name from the scratchpad, reporting whether
// it was present. Used when re-running placement for a new partition.
func (s *Scratchpad) Remove(name string) bool {
	for i, r := range s.regions {
		if r.Name == name {
			s.used -= r.Size
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			return true
		}
	}
	return false
}

// Clear evicts every region.
func (s *Scratchpad) Clear() {
	s.regions = nil
	s.used = 0
}

// Contains reports whether addr is served by the scratchpad.
func (s *Scratchpad) Contains(addr memory.Addr) bool {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > addr })
	return i < len(s.regions) && s.regions[i].Contains(addr)
}

// Note records one access for statistics.
func (s *Scratchpad) Note() { s.accesses++ }

// Accesses returns the number of accesses served.
func (s *Scratchpad) Accesses() int64 { return s.accesses }

// Regions returns a copy of the placed regions sorted by base address. A
// copy, not the live slice: snapshot accessors across the simulator return
// detached data so a metrics scrape or job inspection taken mid-simulation
// can never alias state the simulation goroutine is still mutating.
func (s *Scratchpad) Regions() []memory.Region {
	out := make([]memory.Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// CopyCost returns the cycle cost of DMA-copying a region of size bytes in
// or out of the scratchpad, given the per-line transfer cost; software must
// pay this when it swaps data through a dedicated scratchpad explicitly
// (paper §1.1: "moving data between scratchpad memory and standard memory
// requires explicit copies").
func CopyCost(size uint64, lineBytes, perLineCycles int) int64 {
	lines := (size + uint64(lineBytes) - 1) / uint64(lineBytes)
	return int64(lines) * int64(perLineCycles)
}
