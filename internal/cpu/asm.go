package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a small symbolic assembly dialect into a Program based at
// base. One instruction or label per line; comments start with ';' or '#'.
//
//	        li   r1, 0
//	        li   r2, 100
//	loop:   ld   r3, [r4+0]
//	        add  r1, r1, r3
//	        addi r4, r4, 8
//	        addi r2, r2, -1
//	        bne  r2, r0, loop
//	        halt
//
// Register r0 is an ordinary register by convention initialized to 0 by the
// core at reset. Branch targets are labels; ld/st use the [rN+off] form.
func Assemble(src string, base uint64) (*Program, error) {
	type pending struct {
		instrIndex int
		label      string
		line       int
	}
	var instrs []Instr
	labels := make(map[string]int)
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Optional leading label.
		if i := strings.Index(line, ":"); i >= 0 {
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("cpu: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("cpu: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(instrs)
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				continue
			}
		}

		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		args := splitArgs(rest)
		ins, needsLabel, err := parseInstr(mnemonic, args)
		if err != nil {
			return nil, fmt.Errorf("cpu: line %d: %v", lineNo+1, err)
		}
		if needsLabel != "" {
			fixups = append(fixups, pending{instrIndex: len(instrs), label: needsLabel, line: lineNo + 1})
		}
		instrs = append(instrs, ins)
	}

	p := &Program{Base: base, Instrs: instrs}
	for _, f := range fixups {
		idx, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("cpu: line %d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instrIndex].Imm = int64(p.AddrOf(idx))
	}
	return p, nil
}

// MustAssemble is Assemble that panics, for tests and fixed kernels.
func MustAssemble(src string, base uint64) *Program {
	p, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return p
}

func splitArgs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses the [rN+off] / [rN-off] / [rN] operand.
func parseMem(s string) (uint8, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := parseImm(inner[sep:])
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

func parseInstr(mnemonic string, args []string) (ins Instr, label string, err error) {
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	switch mnemonic {
	case "nop":
		return Instr{Op: Nop}, "", want(0)
	case "halt":
		return Instr{Op: Halt}, "", want(0)
	case "li":
		if err := want(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return ins, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: Li, Rd: rd, Imm: imm}, "", nil
	case "addi":
		if err := want(3); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return ins, "", err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return ins, "", err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: Addi, Rd: rd, Rs1: rs1, Imm: imm}, "", nil
	case "add", "sub", "mul", "and", "or", "shl", "shr":
		if err := want(3); err != nil {
			return ins, "", err
		}
		ops := map[string]Op{"add": Add, "sub": Sub, "mul": Mul, "and": And, "or": Or, "shl": Shl, "shr": Shr}
		rd, err := parseReg(args[0])
		if err != nil {
			return ins, "", err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return ins, "", err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: ops[mnemonic], Rd: rd, Rs1: rs1, Rs2: rs2}, "", nil
	case "ld":
		if err := want(2); err != nil {
			return ins, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return ins, "", err
		}
		rs1, off, err := parseMem(args[1])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: Ld, Rd: rd, Rs1: rs1, Imm: off}, "", nil
	case "st":
		if err := want(2); err != nil {
			return ins, "", err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return ins, "", err
		}
		rs1, off, err := parseMem(args[1])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: St, Rs1: rs1, Rs2: rs2, Imm: off}, "", nil
	case "beq", "bne", "blt":
		if err := want(3); err != nil {
			return ins, "", err
		}
		ops := map[string]Op{"beq": Beq, "bne": Bne, "blt": Blt}
		rs1, err := parseReg(args[0])
		if err != nil {
			return ins, "", err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return ins, "", err
		}
		return Instr{Op: ops[mnemonic], Rs1: rs1, Rs2: rs2}, args[2], nil
	case "jmp":
		if err := want(1); err != nil {
			return ins, "", err
		}
		return Instr{Op: Jmp}, args[0], nil
	default:
		return ins, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
}
