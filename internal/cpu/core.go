package cpu

import (
	"fmt"

	"colcache/internal/memsys"
	"colcache/internal/memtrace"
)

// Core is a single-issue in-order processor. Every instruction fetch and
// every load/store goes through the memory system, so code and data compete
// for the same unified column cache — or are isolated in their own columns
// when the software maps the code and data pages apart.
type Core struct {
	sys  *memsys.System
	prog *Program
	pc   uint64
	regs [NumRegs]int64
	mem  map[uint64]int64 // 8-byte words, keyed by 8-aligned address

	halted  bool
	retired int64
	cycles  int64
}

// NewCore builds a core running prog on sys. Registers start at zero and pc
// at the program base.
func NewCore(sys *memsys.System, prog *Program) *Core {
	return &Core{sys: sys, prog: prog, pc: prog.Base, mem: make(map[uint64]int64)}
}

// Reg returns register r's value.
func (c *Core) Reg(r int) int64 { return c.regs[r] }

// SetReg sets register r.
func (c *Core) SetReg(r int, v int64) { c.regs[r] = v }

// PokeWord writes v to data memory at addr (8-aligned) without touching the
// cache — initialization, like a loader.
func (c *Core) PokeWord(addr uint64, v int64) { c.mem[addr&^7] = v }

// PeekWord reads data memory at addr without touching the cache.
func (c *Core) PeekWord(addr uint64) int64 { return c.mem[addr&^7] }

// Halted reports whether the core has executed Halt.
func (c *Core) Halted() bool { return c.halted }

// Retired returns the number of instructions retired.
func (c *Core) Retired() int64 { return c.retired }

// Cycles returns the cycles consumed by the core's memory activity.
func (c *Core) Cycles() int64 { return c.cycles }

// CPI returns cycles per retired instruction.
func (c *Core) CPI() float64 {
	if c.retired == 0 {
		return 0
	}
	return float64(c.cycles) / float64(c.retired)
}

// Step executes one instruction. It returns an error on a fetch outside the
// program or a register/memory fault.
func (c *Core) Step() error {
	if c.halted {
		return nil
	}
	if c.pc < c.prog.Base || c.pc >= c.prog.End() || (c.pc-c.prog.Base)%InstrBytes != 0 {
		return fmt.Errorf("cpu: pc %#x outside program [%#x,%#x)", c.pc, c.prog.Base, c.prog.End())
	}
	ins := c.prog.Instrs[(c.pc-c.prog.Base)/InstrBytes]

	// Instruction fetch through the memory hierarchy.
	c.cycles += c.sys.Access(memtrace.Access{Addr: c.pc, Op: memtrace.Read})
	next := c.pc + InstrBytes

	switch ins.Op {
	case Nop:
	case Halt:
		c.halted = true
	case Li:
		c.regs[ins.Rd] = ins.Imm
	case Addi:
		c.regs[ins.Rd] = c.regs[ins.Rs1] + ins.Imm
	case Add:
		c.regs[ins.Rd] = c.regs[ins.Rs1] + c.regs[ins.Rs2]
	case Sub:
		c.regs[ins.Rd] = c.regs[ins.Rs1] - c.regs[ins.Rs2]
	case Mul:
		c.regs[ins.Rd] = c.regs[ins.Rs1] * c.regs[ins.Rs2]
	case And:
		c.regs[ins.Rd] = c.regs[ins.Rs1] & c.regs[ins.Rs2]
	case Or:
		c.regs[ins.Rd] = c.regs[ins.Rs1] | c.regs[ins.Rs2]
	case Shl:
		c.regs[ins.Rd] = c.regs[ins.Rs1] << (uint64(c.regs[ins.Rs2]) & 63)
	case Shr:
		c.regs[ins.Rd] = c.regs[ins.Rs1] >> (uint64(c.regs[ins.Rs2]) & 63)
	case Ld:
		addr := uint64(c.regs[ins.Rs1] + ins.Imm)
		c.cycles += c.sys.Access(memtrace.Access{Addr: addr, Op: memtrace.Read})
		c.regs[ins.Rd] = c.mem[addr&^7]
	case St:
		addr := uint64(c.regs[ins.Rs1] + ins.Imm)
		c.cycles += c.sys.Access(memtrace.Access{Addr: addr, Op: memtrace.Write})
		c.mem[addr&^7] = c.regs[ins.Rs2]
	case Beq:
		if c.regs[ins.Rs1] == c.regs[ins.Rs2] {
			next = uint64(ins.Imm)
		}
	case Bne:
		if c.regs[ins.Rs1] != c.regs[ins.Rs2] {
			next = uint64(ins.Imm)
		}
	case Blt:
		if c.regs[ins.Rs1] < c.regs[ins.Rs2] {
			next = uint64(ins.Imm)
		}
	case Jmp:
		next = uint64(ins.Imm)
	default:
		return fmt.Errorf("cpu: illegal opcode %d at %#x", ins.Op, c.pc)
	}
	c.pc = next
	c.retired++
	return nil
}

// Run executes until Halt or maxInstr instructions, returning whether the
// program halted.
func (c *Core) Run(maxInstr int64) (bool, error) {
	for i := int64(0); i < maxInstr && !c.halted; i++ {
		if err := c.Step(); err != nil {
			return false, err
		}
	}
	return c.halted, nil
}
