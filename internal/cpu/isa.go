// Package cpu implements a small in-order processor whose instruction
// fetches and data accesses both go through the simulated memory system.
// The paper's mechanism treats instructions as just another kind of data
// ("we will use the term data to mean either instructions or data", §2
// footnote), and one of the structures column caching can synthesize inside
// a unified cache is the classic split instruction/data cache: map the code
// pages to one set of columns and the data pages to another.
//
// The ISA is a tiny load/store RISC: 16 registers of 64 bits, 4-byte
// instructions, and enough operations (ALU, load/store, branches) to write
// real kernels whose results the tests verify.
package cpu

import "fmt"

// Op is an instruction opcode.
type Op uint8

const (
	Nop Op = iota
	Halt
	Li   // rd ← imm
	Addi // rd ← rs1 + imm
	Add  // rd ← rs1 + rs2
	Sub  // rd ← rs1 - rs2
	Mul  // rd ← rs1 * rs2
	And  // rd ← rs1 & rs2
	Or   // rd ← rs1 | rs2
	Shl  // rd ← rs1 << (rs2 & 63)
	Shr  // rd ← rs1 >> (rs2 & 63) (arithmetic)
	Ld   // rd ← mem[rs1 + imm]
	St   // mem[rs1 + imm] ← rs2
	Beq  // if rs1 == rs2: pc ← imm
	Bne  // if rs1 != rs2: pc ← imm
	Blt  // if rs1 < rs2: pc ← imm
	Jmp  // pc ← imm
)

var opNames = map[Op]string{
	Nop: "nop", Halt: "halt", Li: "li", Addi: "addi", Add: "add", Sub: "sub",
	Mul: "mul", And: "and", Or: "or", Shl: "shl", Shr: "shr",
	Ld: "ld", St: "st", Beq: "beq", Bne: "bne", Blt: "blt", Jmp: "jmp",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// InstrBytes is the encoded size of one instruction.
const InstrBytes = 4

// NumRegs is the architectural register count.
const NumRegs = 16

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64 // immediate, load/store offset, or branch/jump target address
}

func (i Instr) String() string {
	switch i.Op {
	case Nop, Halt:
		return i.Op.String()
	case Li:
		return fmt.Sprintf("li r%d, %d", i.Rd, i.Imm)
	case Addi:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Rd, i.Rs1, i.Imm)
	case Add, Sub, Mul, And, Or, Shl, Shr:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case Ld:
		return fmt.Sprintf("ld r%d, [r%d+%d]", i.Rd, i.Rs1, i.Imm)
	case St:
		return fmt.Sprintf("st r%d, [r%d+%d]", i.Rs2, i.Rs1, i.Imm)
	case Beq, Bne, Blt:
		return fmt.Sprintf("%s r%d, r%d, %#x", i.Op, i.Rs1, i.Rs2, i.Imm)
	case Jmp:
		return fmt.Sprintf("jmp %#x", i.Imm)
	default:
		return i.Op.String()
	}
}

// Program is a sequence of instructions laid out at a base address.
type Program struct {
	Base   uint64
	Instrs []Instr
}

// AddrOf returns the address of instruction index i.
func (p *Program) AddrOf(i int) uint64 { return p.Base + uint64(i)*InstrBytes }

// End returns the first address past the program.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Instrs))*InstrBytes }

// CodeBytes returns the program's footprint.
func (p *Program) CodeBytes() uint64 { return uint64(len(p.Instrs)) * InstrBytes }
