package cpu

import (
	"fmt"
	"strings"
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/replacement"
)

func newSys() *memsys.System {
	return memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 64),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
}

func TestAssembleBasics(t *testing.T) {
	p := MustAssemble(`
		; sum r1 = 1+2
		li r1, 1
		li r2, 2
		add r1, r1, r2   # trailing comment
		halt
	`, 0x1000)
	if len(p.Instrs) != 4 {
		t.Fatalf("instrs=%d", len(p.Instrs))
	}
	if p.Instrs[0].Op != Li || p.Instrs[0].Imm != 1 {
		t.Errorf("instr 0 = %v", p.Instrs[0])
	}
	if p.AddrOf(2) != 0x1008 || p.End() != 0x1010 || p.CodeBytes() != 16 {
		t.Errorf("layout: %#x %#x %d", p.AddrOf(2), p.End(), p.CodeBytes())
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := MustAssemble(`
		li r1, 0
		li r2, 5
	loop:
		addi r1, r1, 1
		bne r1, r2, loop
		halt
	`, 0)
	// bne target must be the address of "loop" (instruction 2).
	bne := p.Instrs[3]
	if bne.Op != Bne || bne.Imm != int64(p.AddrOf(2)) {
		t.Errorf("bne=%v want target %#x", bne, p.AddrOf(2))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"li r99, 5",
		"li r1",
		"add r1, r2",
		"ld r1, r2",      // missing brackets
		"ld r1, [x+4]",   // bad base register
		"li r1, zz",      // bad immediate
		"jmp nowhere",    // undefined label
		"a: nop\na: nop", // duplicate label
		": nop",          // empty label
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestCoreArithmetic(t *testing.T) {
	p := MustAssemble(`
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		sub r4, r3, r1
		li r5, 2
		shl r6, r3, r5
		shr r7, r6, r5
		and r8, r3, r1
		or  r9, r1, r2
		halt
	`, 0)
	c := NewCore(newSys(), p)
	halted, err := c.Run(100)
	if err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	want := map[int]int64{3: 42, 4: 36, 6: 168, 7: 42, 8: 6 & 42, 9: 6 | 7}
	for r, v := range want {
		if c.Reg(r) != v {
			t.Errorf("r%d=%d want %d", r, c.Reg(r), v)
		}
	}
	if c.Retired() != 10 {
		t.Errorf("retired=%d", c.Retired())
	}
}

func TestCoreSumLoop(t *testing.T) {
	// Sum data[0..99] through the cache.
	p := MustAssemble(`
		li r1, 0        ; sum
		li r2, 0x10000  ; ptr
		li r3, 100      ; count
		li r5, 0
	loop:
		ld r4, [r2+0]
		add r1, r1, r4
		addi r2, r2, 8
		addi r3, r3, -1
		bne r3, r5, loop
		halt
	`, 0)
	sys := newSys()
	c := NewCore(sys, p)
	var want int64
	for i := 0; i < 100; i++ {
		c.PokeWord(0x10000+uint64(i*8), int64(i*3))
		want += int64(i * 3)
	}
	halted, err := c.Run(10000)
	if err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if c.Reg(1) != want {
		t.Errorf("sum=%d want %d", c.Reg(1), want)
	}
	// 4 setup + 100×5 loop + 1 halt.
	if c.Retired() != 4+500+1 {
		t.Errorf("retired=%d", c.Retired())
	}
	if c.CPI() <= 0 {
		t.Errorf("CPI=%v", c.CPI())
	}
}

func TestCoreStoreLoad(t *testing.T) {
	p := MustAssemble(`
		li r1, 1234
		li r2, 0x8000
		st r1, [r2+16]
		ld r3, [r2+16]
		halt
	`, 0)
	c := NewCore(newSys(), p)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Reg(3) != 1234 {
		t.Errorf("r3=%d", c.Reg(3))
	}
	if c.PeekWord(0x8010) != 1234 {
		t.Errorf("mem=%d", c.PeekWord(0x8010))
	}
}

func TestCoreBranches(t *testing.T) {
	p := MustAssemble(`
		li r1, 5
		li r2, 5
		beq r1, r2, taken
		li r3, 111
		halt
	taken:
		li r3, 222
		blt r1, r2, bad
		jmp done
	bad:
		li r3, 333
	done:
		halt
	`, 0x400)
	c := NewCore(newSys(), p)
	halted, err := c.Run(100)
	if err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if c.Reg(3) != 222 {
		t.Errorf("r3=%d want 222", c.Reg(3))
	}
}

func TestCorePCOutOfRange(t *testing.T) {
	p := MustAssemble("nop", 0) // falls off the end
	c := NewCore(newSys(), p)
	c.Step()
	if err := c.Step(); err == nil {
		t.Error("fetch past end succeeded")
	}
}

func TestCoreHaltIsSticky(t *testing.T) {
	p := MustAssemble("halt", 0)
	c := NewCore(newSys(), p)
	c.Step()
	if err := c.Step(); err != nil || c.Retired() != 1 {
		t.Errorf("halted core stepped: err=%v retired=%d", err, c.Retired())
	}
}

// splitIDSource generates a kernel whose 1KB loop body (2 code lines per
// set of the 2KB cache) also loads 48 fresh data lines per iteration (3 per
// set). Unified per-set pressure is then 5 lines into 4 ways, so LRU churns
// the code every iteration; splitting code and data into column partitions
// keeps the code resident.
func splitIDSource() string {
	var b strings.Builder
	b.WriteString("\tli r2, 0x100000\n\tli r3, 100\n\tli r5, 0\n\tli r6, 0\nloop:\n")
	n := 0
	for k := 0; k < 48; k++ { // 48 loads of fresh lines
		fmt.Fprintf(&b, "\tld r4, [r2+%d]\n", k*32)
		n++
	}
	for n < 248 { // pad so the whole program is 256 instructions (1KB)
		b.WriteString("\taddi r6, r6, 1\n")
		n++
	}
	b.WriteString("\taddi r2, r2, 1536\n\taddi r3, r3, -1\n\tbne r3, r5, loop\n\thalt\n")
	return b.String()
}

// TestInstructionColumnProtectsCode is the split-I/D-cache emulation the
// paper lists among the structures a column cache can synthesize (§2).
func TestInstructionColumnProtectsCode(t *testing.T) {
	src := splitIDSource()
	run := func(partition bool) (float64, int64) {
		sys := newSys()
		p := MustAssemble(src, 0)
		if partition {
			code := memory.Region{Name: "code", Base: p.Base, Size: p.CodeBytes()}
			data := memory.Region{Name: "data", Base: 0x100000, Size: 100 * 1536}
			if _, err := sys.MapRegion(code, replacement.Of(0, 1)); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.MapRegion(data, replacement.Of(2, 3)); err != nil {
				t.Fatal(err)
			}
		}
		c := NewCore(sys, p)
		halted, err := c.Run(1000000)
		if err != nil || !halted {
			t.Fatalf("halted=%v err=%v", halted, err)
		}
		return c.CPI(), sys.Stats().Cache.Misses
	}
	unifiedCPI, unifiedMisses := run(false)
	splitCPI, splitMisses := run(true)
	if splitCPI >= unifiedCPI {
		t.Errorf("I-column did not help: split CPI %.3f vs unified %.3f", splitCPI, unifiedCPI)
	}
	// With code protected, misses ≈ the data stream's compulsory ones
	// (48 lines × 100 iterations) plus the code's 32 cold fills.
	if splitMisses > 4800+32+100 {
		t.Errorf("split config missed %d times, want ≈4832", splitMisses)
	}
	if unifiedMisses*10 < 14*splitMisses {
		t.Errorf("unified cache not churning code: %d vs %d misses", unifiedMisses, splitMisses)
	}
}

func TestCoreAccessors(t *testing.T) {
	p := MustAssemble("li r1, 7\nhalt", 0)
	sys := newSys()
	c := NewCore(sys, p)
	c.SetReg(5, 42)
	if c.Reg(5) != 42 {
		t.Error("SetReg lost")
	}
	if c.Halted() {
		t.Error("fresh core halted")
	}
	if c.CPI() != 0 {
		t.Error("CPI before any instruction")
	}
	c.Run(10)
	if !c.Halted() || c.Cycles() <= 0 {
		t.Errorf("halted=%v cycles=%d", c.Halted(), c.Cycles())
	}
}

func TestInstrStrings(t *testing.T) {
	cases := map[string]Instr{
		"nop":              {Op: Nop},
		"halt":             {Op: Halt},
		"li r1, 5":         {Op: Li, Rd: 1, Imm: 5},
		"addi r2, r3, -1":  {Op: Addi, Rd: 2, Rs1: 3, Imm: -1},
		"add r1, r2, r3":   {Op: Add, Rd: 1, Rs1: 2, Rs2: 3},
		"ld r1, [r2+8]":    {Op: Ld, Rd: 1, Rs1: 2, Imm: 8},
		"st r3, [r2+4]":    {Op: St, Rs1: 2, Rs2: 3, Imm: 4},
		"beq r1, r2, 0x10": {Op: Beq, Rs1: 1, Rs2: 2, Imm: 0x10},
		"jmp 0x20":         {Op: Jmp, Imm: 0x20},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String()=%q want %q", got, want)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op string: %s", Op(99))
	}
	if (Instr{Op: Op(99)}).String() != "op(99)" {
		t.Error("unknown instr string")
	}
}

// TestAsmFibonacci: an iterative Fibonacci in assembly, verified against Go.
func TestAsmFibonacci(t *testing.T) {
	p := MustAssemble(`
		li r1, 0       ; fib(0)
		li r2, 1       ; fib(1)
		li r3, 20      ; n
		li r5, 0
	loop:
		add r4, r1, r2
		add r1, r2, r0 ; r0 stays 0: move r2 -> r1
		add r2, r4, r0 ; move r4 -> r2
		addi r3, r3, -1
		bne r3, r5, loop
		halt
	`, 0)
	c := NewCore(newSys(), p)
	if _, err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	fib := []int64{0, 1}
	for i := 2; i <= 21; i++ {
		fib = append(fib, fib[i-1]+fib[i-2])
	}
	if c.Reg(1) != fib[20] {
		t.Errorf("fib(20)=%d want %d", c.Reg(1), fib[20])
	}
}

// TestAsmMemcpy: word-wise memcpy through the cache, verified byte for byte.
func TestAsmMemcpy(t *testing.T) {
	p := MustAssemble(`
		li r1, 0x1000  ; src
		li r2, 0x2000  ; dst
		li r3, 32      ; words
		li r5, 0
	loop:
		ld r4, [r1+0]
		st r4, [r2+0]
		addi r1, r1, 8
		addi r2, r2, 8
		addi r3, r3, -1
		bne r3, r5, loop
		halt
	`, 0)
	sys := newSys()
	c := NewCore(sys, p)
	for i := 0; i < 32; i++ {
		c.PokeWord(0x1000+uint64(i*8), int64(i*i+7))
	}
	if _, err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if got := c.PeekWord(0x2000 + uint64(i*8)); got != int64(i*i+7) {
			t.Fatalf("dst[%d]=%d want %d", i, got, i*i+7)
		}
	}
	// Each copied word costs a load and a store through the cache.
	if sys.Stats().Cache.Accesses < 64 {
		t.Errorf("cache accesses=%d, data path bypassed?", sys.Stats().Cache.Accesses)
	}
}

// TestAsmDotProduct: Σ a[i]·b[i] with mul, verified against Go.
func TestAsmDotProduct(t *testing.T) {
	p := MustAssemble(`
		li r1, 0x1000
		li r2, 0x2000
		li r3, 16
		li r5, 0
		li r6, 0       ; acc
	loop:
		ld r7, [r1+0]
		ld r8, [r2+0]
		mul r9, r7, r8
		add r6, r6, r9
		addi r1, r1, 8
		addi r2, r2, 8
		addi r3, r3, -1
		bne r3, r5, loop
		halt
	`, 0)
	c := NewCore(newSys(), p)
	var want int64
	for i := 0; i < 16; i++ {
		a, b := int64(i+1), int64(2*i-5)
		c.PokeWord(0x1000+uint64(i*8), a)
		c.PokeWord(0x2000+uint64(i*8), b)
		want += a * b
	}
	if _, err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if c.Reg(6) != want {
		t.Errorf("dot=%d want %d", c.Reg(6), want)
	}
}
