package cpu

import (
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
)

// FuzzAssemble: arbitrary source must never panic the assembler, and any
// program it accepts must execute (bounded) on the core without panicking.
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 5\nhalt")
	f.Add("loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt")
	f.Add("ld r1, [r2+8]\nst r1, [r2-8]")
	f.Add(": bad")
	f.Add("jmp nowhere")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src, 0x1000)
		if err != nil {
			return
		}
		sys := memsys.MustNew(memsys.Config{
			Geometry: memory.MustGeometry(32, 64),
			Cache:    cache.Config{LineBytes: 32, NumSets: 4, NumWays: 2},
			Timing:   memsys.DefaultTiming,
		})
		c := NewCore(sys, p)
		// Bounded run; runtime errors (pc escape) are fine, panics are not.
		if _, err := c.Run(10000); err != nil {
			return
		}
	})
}
