package tint

import (
	"sync"
	"testing"

	"colcache/internal/replacement"
)

// TestTableConcurrentRemapAndRead is the -race regression for the serving
// layer: the adaptive controller rewrites masks (SetMask) from the
// simulation goroutine while a live job inspection reads the table
// (Mask/Tints/Name/Snapshot/String) from an HTTP handler. The table must
// stay consistent — a reader sees only fully applied remaps and never a
// zero mask.
func TestTableConcurrentRemapAndRead(t *testing.T) {
	const columns = 8
	tb := NewTable(columns)
	ids := []Tint{Default, tb.NewTint("a"), tb.NewTint("b"), tb.NewTint("c")}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: constant remapping, plus occasional tint allocation.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			masks := []replacement.Mask{
				replacement.Of(0, 1), replacement.Of(2, 3),
				replacement.Of(4, 5, 6), replacement.All(columns),
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[i%len(ids)]
				if err := tb.SetMask(id, masks[(i+w)%len(masks)]); err != nil {
					t.Errorf("SetMask(%d): %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tb.NewTint("dyn")
		}
	}()

	// Readers: the live /v1/jobs/{id} inspection surface.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					if m := tb.Mask(id); m == 0 {
						t.Error("reader observed a zero mask")
						return
					}
				}
				snap := tb.Snapshot()
				for id, m := range snap {
					if m == 0 {
						t.Errorf("snapshot has zero mask for tint %d", id)
						return
					}
				}
				_ = tb.Tints()
				_ = tb.String()
				_ = tb.Name(ids[i%len(ids)])
				_ = tb.Remaps()
			}
		}()
	}

	// Let them collide until the writers have demonstrably run; spinning on
	// a fixed iteration count can outrun goroutine scheduling.
	for tb.Remaps() < 1000 {
		_ = tb.Mask(Default)
	}
	close(stop)
	wg.Wait()

	if tb.Remaps() == 0 {
		t.Fatal("no remaps recorded; the writers never ran")
	}
}
