package tint

import (
	"strings"
	"testing"

	"colcache/internal/replacement"
)

func TestDefaultTintMapsAllColumns(t *testing.T) {
	tab := NewTable(4)
	if got := tab.Mask(Default); got != replacement.All(4) {
		t.Errorf("default mask=%b want %b", got, replacement.All(4))
	}
	if tab.NumColumns() != 4 {
		t.Errorf("NumColumns=%d", tab.NumColumns())
	}
}

func TestNewTintAllocation(t *testing.T) {
	tab := NewTable(4)
	a := tab.NewTint("stream")
	b := tab.NewTint("table")
	if a == b || a == Default || b == Default {
		t.Errorf("tint ids collide: %d %d", a, b)
	}
	if tab.Name(a) != "stream" || tab.Name(b) != "table" {
		t.Errorf("names: %q %q", tab.Name(a), tab.Name(b))
	}
	// Fresh tints start permissive.
	if tab.Mask(a) != replacement.All(4) {
		t.Errorf("fresh tint mask=%b", tab.Mask(a))
	}
}

func TestSetMask(t *testing.T) {
	tab := NewTable(4)
	a := tab.NewTint("a")
	if err := tab.SetMask(a, replacement.Of(1)); err != nil {
		t.Fatal(err)
	}
	if tab.Mask(a) != replacement.Of(1) {
		t.Errorf("mask=%b", tab.Mask(a))
	}
	if tab.Remaps() != 1 {
		t.Errorf("remaps=%d", tab.Remaps())
	}
}

func TestSetMaskErrors(t *testing.T) {
	tab := NewTable(4)
	a := tab.NewTint("a")
	if err := tab.SetMask(Tint(99), replacement.Of(0)); err == nil {
		t.Error("unknown tint accepted")
	}
	if err := tab.SetMask(a, replacement.Of(4)); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := tab.SetMask(a, 0); err == nil {
		t.Error("empty mask accepted")
	}
}

// TestSetMaskRejectsEmptyMask is the regression test for the all-zero
// column mask: a tint mapped to no columns would leave the replacement unit
// with no permissible victim. The write must fail atomically — the previous
// mask stays in force and the remap counter does not advance.
func TestSetMaskRejectsEmptyMask(t *testing.T) {
	tab := NewTable(4)
	a := tab.NewTint("a")
	if err := tab.SetMask(a, replacement.Of(2)); err != nil {
		t.Fatal(err)
	}
	before := tab.Remaps()
	if err := tab.SetMask(a, 0); err == nil {
		t.Fatal("all-zero mask accepted")
	}
	if got := tab.Mask(a); got != replacement.Of(2) {
		t.Errorf("mask after rejected write = %b, want %b unchanged", got, replacement.Of(2))
	}
	if tab.Remaps() != before {
		t.Errorf("remaps advanced on a rejected write: %d → %d", before, tab.Remaps())
	}
	// The default tint is equally protected.
	if err := tab.SetMask(Default, 0); err == nil {
		t.Error("all-zero mask accepted for the default tint")
	}
}

func TestUnknownTintResolvesToDefault(t *testing.T) {
	tab := NewTable(4)
	if err := tab.SetMask(Default, replacement.Of(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := tab.Mask(Tint(12345)); got != replacement.Of(0, 1) {
		t.Errorf("stale tint mask=%b want default's", got)
	}
	if !strings.HasPrefix(tab.Name(Tint(12345)), "tint") {
		t.Errorf("unknown tint name=%q", tab.Name(Tint(12345)))
	}
}

func TestTintsSortedAndString(t *testing.T) {
	tab := NewTable(2)
	tab.NewTint("b")
	tab.NewTint("c")
	ids := tab.Tints()
	if len(ids) != 3 {
		t.Fatalf("len=%d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("unsorted: %v", ids)
		}
	}
	s := tab.String()
	if !strings.Contains(s, "default") || !strings.Contains(s, "b") {
		t.Errorf("String()=%q", s)
	}
}

// TestFig3TintEconomy reproduces the paper's Figure 3 argument: giving one
// page its own column via tints costs two small-table writes (new tint's
// mask + shrinking the default's mask) plus one page-table entry, whereas
// raw bit vectors in PTEs would require rewriting every page's entry.
func TestFig3TintEconomy(t *testing.T) {
	const pages = 20
	const columns = 20

	// Tint scheme: all 20 pages start red (default). To give page 0 its own
	// column: allocate tint blue for page 0 (1 PTE write), set blue's mask
	// (1 table write), and shrink red's mask (1 table write).
	tab := NewTable(columns)
	blue := tab.NewTint("blue")
	if err := tab.SetMask(blue, replacement.Of(1)); err != nil {
		t.Fatal(err)
	}
	if err := tab.SetMask(Default, replacement.All(columns)&^replacement.Of(1)); err != nil {
		t.Fatal(err)
	}
	tintTableWrites := tab.Remaps()
	tintPTEWrites := int64(1) // only page 0's entry changes

	// Raw-bit-vector scheme: every page's PTE holds the vector, so removing
	// column 1 from the other 19 pages plus dedicating page 0 rewrites all
	// 20 entries.
	rawPTEWrites := int64(pages)

	if tintTableWrites != 2 {
		t.Errorf("tint table writes=%d want 2", tintTableWrites)
	}
	if tintPTEWrites+tintTableWrites >= rawPTEWrites {
		t.Errorf("tint scheme (%d writes) not cheaper than raw vectors (%d writes)",
			tintPTEWrites+tintTableWrites, rawPTEWrites)
	}
}
