// Package tint implements the paper's tint indirection (paper §2.2, Fig. 3).
//
// Pages are not mapped to column bit vectors directly; they are mapped to a
// tint — a virtual grouping of address regions — and tints are independently
// mapped to column bit vectors in a small table. Remapping a tint to a new
// set of columns is a single table write and takes effect on the very next
// replacement decision; re-tinting a page is the expensive operation because
// it must touch page-table entries and flush TLB entries.
package tint

import (
	"fmt"
	"sort"

	"colcache/internal/replacement"
)

// Tint identifies a virtual grouping of address regions. Tint 0 is the
// default tint ("red" in the paper's example): unless remapped it permits
// every column, which makes the cache behave as a plain set-associative
// cache.
type Tint uint16

// Default is the tint every page starts with.
const Default Tint = 0

// Table maps tints to permissible-column bit vectors. The zero value is not
// usable; construct with NewTable.
type Table struct {
	numColumns int
	masks      map[Tint]replacement.Mask
	names      map[Tint]string
	nextID     Tint
	remaps     int64 // tint→mask table writes, the cheap operation
}

// NewTable returns a tint table for a cache with numColumns columns. The
// default tint starts mapped to all columns.
func NewTable(numColumns int) *Table {
	t := &Table{
		numColumns: numColumns,
		masks:      make(map[Tint]replacement.Mask),
		names:      make(map[Tint]string),
		nextID:     1,
	}
	t.masks[Default] = replacement.All(numColumns)
	t.names[Default] = "default"
	return t
}

// NumColumns returns the column count the table was built for.
func (t *Table) NumColumns() int { return t.numColumns }

// NewTint allocates a fresh tint with the given debug name, initially mapped
// to all columns.
func (t *Table) NewTint(name string) Tint {
	id := t.nextID
	t.nextID++
	t.masks[id] = replacement.All(t.numColumns)
	t.names[id] = name
	return id
}

// SetMask remaps a tint to a new column bit vector. This is the paper's fast
// repartitioning operation: one table write, effective immediately, with no
// page-table or TLB activity. An error is returned for unknown tints or
// masks that reference columns beyond the table's width.
func (t *Table) SetMask(id Tint, mask replacement.Mask) error {
	if _, ok := t.masks[id]; !ok {
		return fmt.Errorf("tint: unknown tint %d", id)
	}
	if mask&^replacement.All(t.numColumns) != 0 {
		return fmt.Errorf("tint: mask %b references columns beyond the %d available", mask, t.numColumns)
	}
	if mask == 0 {
		return fmt.Errorf("tint: empty column mask for tint %d", id)
	}
	t.masks[id] = mask
	t.remaps++
	return nil
}

// Mask returns the column bit vector a tint currently maps to. Unknown tints
// resolve to the default tint's mask so a stale tint can never wedge the
// replacement unit.
func (t *Table) Mask(id Tint) replacement.Mask {
	if m, ok := t.masks[id]; ok {
		return m
	}
	return t.masks[Default]
}

// Name returns the debug name of a tint.
func (t *Table) Name(id Tint) string {
	if n, ok := t.names[id]; ok {
		return n
	}
	return fmt.Sprintf("tint%d", id)
}

// Remaps returns how many tint→mask writes have occurred; experiments use
// this to count repartitioning cost (paper Fig. 3 economy argument).
func (t *Table) Remaps() int64 { return t.remaps }

// Tints returns all allocated tints in ascending order.
func (t *Table) Tints() []Tint {
	out := make([]Tint, 0, len(t.masks))
	for id := range t.masks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the table for debugging.
func (t *Table) String() string {
	s := ""
	for _, id := range t.Tints() {
		s += fmt.Sprintf("%-12s -> %0*b\n", t.Name(id), t.numColumns, uint64(t.masks[id]))
	}
	return s
}
