// Package tint implements the paper's tint indirection (paper §2.2, Fig. 3).
//
// Pages are not mapped to column bit vectors directly; they are mapped to a
// tint — a virtual grouping of address regions — and tints are independently
// mapped to column bit vectors in a small table. Remapping a tint to a new
// set of columns is a single table write and takes effect on the very next
// replacement decision; re-tinting a page is the expensive operation because
// it must touch page-table entries and flush TLB entries.
//
// The table is safe for concurrent use: the adaptive controller rewrites
// masks from the simulation goroutine while a service handler inspects the
// table for a live job view. Reads are lock-free (one atomic load — the
// replacement hot path consults Mask on every access); writers serialize on
// a mutex and publish a fresh immutable snapshot, so a reader never observes
// a half-applied remap.
package tint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"colcache/internal/replacement"
)

// Tint identifies a virtual grouping of address regions. Tint 0 is the
// default tint ("red" in the paper's example): unless remapped it permits
// every column, which makes the cache behave as a plain set-associative
// cache.
type Tint uint16

// Default is the tint every page starts with.
const Default Tint = 0

// tableState is one immutable published version of the table. Writers copy,
// mutate the copy, and swap the pointer; readers work on whichever version
// they loaded.
type tableState struct {
	masks  map[Tint]replacement.Mask
	names  map[Tint]string
	nextID Tint
	// dense mirrors masks for the replacement hot path: tints are allocated
	// sequentially from 0 and never deleted, so dense[id] is the mask of
	// every known tint and a single bounds-checked index replaces the map
	// lookup on the per-access path. Rebuilt on every published version.
	dense []replacement.Mask
}

func (st *tableState) clone() *tableState {
	next := &tableState{
		masks:  make(map[Tint]replacement.Mask, len(st.masks)+1),
		names:  make(map[Tint]string, len(st.names)+1),
		nextID: st.nextID,
	}
	for id, m := range st.masks {
		next.masks[id] = m
	}
	for id, n := range st.names {
		next.names[id] = n
	}
	return next
}

// refreshDense rebuilds the dense mask mirror from the map. Must be called
// on a still-private state before it is published.
func (st *tableState) refreshDense() {
	st.dense = make([]replacement.Mask, st.nextID)
	for id, m := range st.masks {
		st.dense[id] = m
	}
}

// Table maps tints to permissible-column bit vectors. The zero value is not
// usable; construct with NewTable.
type Table struct {
	numColumns int
	state      atomic.Pointer[tableState]
	mu         sync.Mutex   // serializes writers (NewTint, SetMask)
	remaps     atomic.Int64 // tint→mask table writes, the cheap operation
}

// NewTable returns a tint table for a cache with numColumns columns. The
// default tint starts mapped to all columns.
func NewTable(numColumns int) *Table {
	t := &Table{numColumns: numColumns}
	st := &tableState{
		masks:  map[Tint]replacement.Mask{Default: replacement.All(numColumns)},
		names:  map[Tint]string{Default: "default"},
		nextID: 1,
	}
	st.refreshDense()
	t.state.Store(st)
	return t
}

// NumColumns returns the column count the table was built for.
func (t *Table) NumColumns() int { return t.numColumns }

// Count returns how many tints are allocated. Tints are numbered
// sequentially from 0 and never deleted, so ids 0..Count()-1 enumerate the
// table in a fixed order without allocating — the inspect reducer's
// per-frame walk rides this instead of Tints().
func (t *Table) Count() int { return int(t.state.Load().nextID) }

// NewTint allocates a fresh tint with the given debug name, initially mapped
// to all columns.
func (t *Table) NewTint(name string) Tint {
	t.mu.Lock()
	defer t.mu.Unlock()
	next := t.state.Load().clone()
	id := next.nextID
	next.nextID++
	next.masks[id] = replacement.All(t.numColumns)
	next.names[id] = name
	next.refreshDense()
	t.state.Store(next)
	return id
}

// SetMask remaps a tint to a new column bit vector. This is the paper's fast
// repartitioning operation: one table write, effective immediately, with no
// page-table or TLB activity. An error is returned for unknown tints or
// masks that reference columns beyond the table's width.
func (t *Table) SetMask(id Tint, mask replacement.Mask) error {
	if mask&^replacement.All(t.numColumns) != 0 {
		return fmt.Errorf("tint: mask %b references columns beyond the %d available", mask, t.numColumns)
	}
	if mask == 0 {
		return fmt.Errorf("tint: empty column mask for tint %d", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.state.Load()
	if _, ok := cur.masks[id]; !ok {
		return fmt.Errorf("tint: unknown tint %d", id)
	}
	next := cur.clone()
	next.masks[id] = mask
	next.refreshDense()
	t.state.Store(next)
	t.remaps.Add(1)
	return nil
}

// Mask returns the column bit vector a tint currently maps to. Unknown tints
// resolve to the default tint's mask so a stale tint can never wedge the
// replacement unit.
func (t *Table) Mask(id Tint) replacement.Mask {
	st := t.state.Load()
	if int(id) < len(st.dense) {
		return st.dense[id]
	}
	// Unknown tints resolve to the default tint's mask so a stale tint can
	// never wedge the replacement unit.
	return st.dense[Default]
}

// Name returns the debug name of a tint.
func (t *Table) Name(id Tint) string {
	if n, ok := t.state.Load().names[id]; ok {
		return n
	}
	return fmt.Sprintf("tint%d", id)
}

// Remaps returns how many tint→mask writes have occurred; experiments use
// this to count repartitioning cost (paper Fig. 3 economy argument).
func (t *Table) Remaps() int64 { return t.remaps.Load() }

// Tints returns all allocated tints in ascending order.
func (t *Table) Tints() []Tint {
	st := t.state.Load()
	out := make([]Tint, 0, len(st.masks))
	for id := range st.masks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns a consistent copy of the tint→mask table: every entry is
// from the same published version, unlike a loop over Tints and Mask, which
// could interleave with a concurrent remap.
func (t *Table) Snapshot() map[Tint]replacement.Mask {
	st := t.state.Load()
	out := make(map[Tint]replacement.Mask, len(st.masks))
	for id, m := range st.masks {
		out[id] = m
	}
	return out
}

// String renders the table for debugging.
func (t *Table) String() string {
	st := t.state.Load()
	ids := make([]Tint, 0, len(st.masks))
	for id := range st.masks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := ""
	for _, id := range ids {
		name, ok := st.names[id]
		if !ok {
			name = fmt.Sprintf("tint%d", id)
		}
		s += fmt.Sprintf("%-12s -> %0*b\n", name, t.numColumns, uint64(st.masks[id]))
	}
	return s
}
