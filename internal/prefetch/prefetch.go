// Package prefetch implements a sequential stream prefetcher whose fills
// can be confined to a set of cache columns — one of the structures the
// paper says column caching can synthesize "within the general cache": a
// separate prefetch buffer (paper §2). Confining speculative fills to their
// own columns means wrong or early prefetches can never pollute the rest of
// the cache; a demand hit on a prefetched line still works because lookup
// searches every column.
package prefetch

import (
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
)

// Config tunes the prefetcher.
type Config struct {
	// Streams is how many concurrent sequential streams are tracked.
	Streams int
	// Degree is how many lines ahead each confirmed stream fetches.
	Degree int
	// Mask confines prefetch fills to these columns; use replacement.All
	// for an unpartitioned prefetcher (the pollution baseline).
	Mask replacement.Mask
}

// DefaultConfig tracks 4 streams, 2 lines ahead.
func DefaultConfig(mask replacement.Mask) Config {
	return Config{Streams: 4, Degree: 2, Mask: mask}
}

type stream struct {
	next  uint64 // expected next line number
	score int    // confidence; prefetch when >= 2
	age   uint64
	valid bool
}

// Engine watches demand accesses and issues prefetch fills.
type Engine struct {
	cfg     Config
	sys     *memsys.System
	g       memory.Geometry
	streams []stream
	clock   uint64

	issued     int64
	useful     int64
	lastIssued map[uint64]bool
}

// New builds an engine over sys.
func New(sys *memsys.System, cfg Config) *Engine {
	if cfg.Streams <= 0 {
		cfg.Streams = 4
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 2
	}
	return &Engine{
		cfg:        cfg,
		sys:        sys,
		g:          sys.Geometry(),
		streams:    make([]stream, cfg.Streams),
		lastIssued: make(map[uint64]bool),
	}
}

// Issued returns the number of prefetch fills issued.
func (e *Engine) Issued() int64 { return e.issued }

// Useful returns how many demand accesses hit a line the engine prefetched.
func (e *Engine) Useful() int64 { return e.useful }

// Accuracy returns useful/issued, or 0.
func (e *Engine) Accuracy() float64 {
	if e.issued == 0 {
		return 0
	}
	return float64(e.useful) / float64(e.issued)
}

// Access runs one demand access through the machine and trains/triggers the
// prefetcher. It returns the cycles the demand access consumed.
func (e *Engine) Access(a memtrace.Access) int64 {
	ln := e.g.LineNumber(a.Addr)
	if e.lastIssued[ln] {
		e.useful++
		delete(e.lastIssued, ln)
	}
	cycles := e.sys.Access(a)
	e.observe(ln)
	return cycles
}

// Run replays a whole trace through Access.
func (e *Engine) Run(t memtrace.Trace) int64 {
	var total int64
	for _, a := range t {
		total += e.Access(a)
	}
	return total
}

// observe trains the stream table on the demand line and issues fills.
func (e *Engine) observe(ln uint64) {
	e.clock++
	// A hit in the stream table?
	for i := range e.streams {
		st := &e.streams[i]
		if !st.valid || ln != st.next {
			continue
		}
		st.score++
		st.next = ln + 1
		st.age = e.clock
		if st.score >= 2 {
			for d := 1; d <= e.cfg.Degree; d++ {
				e.fill(ln + uint64(d))
			}
		}
		return
	}
	// Miss: allocate the LRU slot expecting the following line.
	victim := 0
	for i := range e.streams {
		if !e.streams[i].valid {
			victim = i
			break
		}
		if e.streams[i].age < e.streams[victim].age {
			victim = i
		}
	}
	e.streams[victim] = stream{next: ln + 1, score: 1, age: e.clock, valid: true}
}

func (e *Engine) fill(ln uint64) {
	addr := ln * uint64(e.g.LineBytes)
	res := e.sys.InstallLine(addr, e.cfg.Mask)
	if res.Filled {
		e.issued++
		e.lastIssued[ln] = true
	}
}
