package prefetch

import (
	"testing"

	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/workloads/synth"
)

func newSys() *memsys.System {
	return memsys.MustNew(memsys.Config{
		Geometry: memory.MustGeometry(32, 4096),
		Cache:    cache.Config{LineBytes: 32, NumSets: 16, NumWays: 4},
		Timing:   memsys.DefaultTiming,
	})
}

func TestSequentialStreamPrefetched(t *testing.T) {
	tr := synth.Stream(0, 64*1024, 32, 1).Trace // one pass, line-sized reads

	// Without prefetching every line is a cold miss.
	plain := newSys()
	plainCycles := plain.Run(tr)

	sys := newSys()
	e := New(sys, DefaultConfig(replacement.Of(3)))
	cycles := e.Run(tr)

	if e.Issued() == 0 {
		t.Fatal("no prefetches issued for a pure stream")
	}
	if e.Accuracy() < 0.9 {
		t.Errorf("accuracy %.2f too low for a pure stream", e.Accuracy())
	}
	if cycles >= plainCycles {
		t.Errorf("prefetching did not help: %d vs %d cycles", cycles, plainCycles)
	}
	// Most demand misses must be gone.
	if mr := sys.Stats().Cache.MissRate(); mr > 0.15 {
		t.Errorf("demand miss rate %.2f still high with prefetching", mr)
	}
}

func TestRandomAccessIssuesFewPrefetches(t *testing.T) {
	tr := synth.Random(0, 1<<20, 4000, 7).Trace
	sys := newSys()
	e := New(sys, DefaultConfig(replacement.All(4)))
	e.Run(tr)
	// Random lines almost never form confirmed streams.
	if e.Issued() > int64(len(tr)/10) {
		t.Errorf("%d prefetches issued on random traffic", e.Issued())
	}
}

// TestPrefetchColumnPreventsPollution is the paper's point: speculative
// fills confined to a dedicated column cannot evict the hot working set,
// while an unpartitioned prefetcher pollutes it.
func TestPrefetchColumnPreventsPollution(t *testing.T) {
	table := memory.Region{Name: "table", Base: 1 << 30, Size: 1536} // 48 lines, 3 columns' worth
	buildTrace := func() memtrace.Trace {
		var rec memtrace.Recorder
		pos := uint64(0)
		for round := 0; round < 64; round++ {
			for j := 0; j < 32; j++ { // streaming burst
				rec.Load(pos)
				pos += 32
			}
			for off := uint64(0); off < table.Size; off += 32 { // hot sweep
				rec.Load(table.Base + off)
			}
		}
		return rec.Trace()
	}

	run := func(mask replacement.Mask) (tableMisses int64) {
		sys := newSys()
		// The table may use columns 0-2; stream demand fills confined to
		// column 3 as well, so only prefetch placement differs between runs.
		if _, err := sys.MapRegion(table, replacement.Of(0, 1, 2)); err != nil {
			t.Fatal(err)
		}
		streamRegion := memory.Region{Name: "stream", Base: 0, Size: 1 << 20}
		if _, err := sys.MapRegion(streamRegion, replacement.Of(3)); err != nil {
			t.Fatal(err)
		}
		e := New(sys, Config{Streams: 4, Degree: 4, Mask: mask})
		tr := buildTrace()
		// Warm the table.
		for off := uint64(0); off < table.Size; off += 32 {
			sys.Access(memtrace.Access{Addr: table.Base + off})
		}
		// Count table misses directly: a hit costs exactly 1 cycle.
		for _, a := range tr {
			cycles := e.Access(a)
			if table.Contains(a.Addr) && cycles > 1 {
				tableMisses++
			}
		}
		return tableMisses
	}

	polluting := run(replacement.All(4)) // prefetcher may fill anywhere
	confined := run(replacement.Of(3))   // prefetcher confined to column 3

	if confined != 0 {
		t.Errorf("confined prefetcher still caused %d table misses", confined)
	}
	if polluting <= confined {
		t.Errorf("no pollution without confinement: %d vs %d", polluting, confined)
	}
}

func TestEngineDefaults(t *testing.T) {
	sys := newSys()
	e := New(sys, Config{Mask: replacement.All(4)})
	if len(e.streams) != 4 || e.cfg.Degree != 2 {
		t.Errorf("defaults not applied: %+v", e.cfg)
	}
	if e.Accuracy() != 0 {
		t.Error("accuracy on idle engine")
	}
}

func TestFillDoesNotCountDemandStats(t *testing.T) {
	sys := newSys()
	before := sys.Stats().Cache
	sys.InstallLine(0x1000, replacement.All(4))
	after := sys.Stats().Cache
	if after.Accesses != before.Accesses || after.Misses != before.Misses {
		t.Error("prefetch fill counted as demand access")
	}
	if after.Fills != before.Fills+1 {
		t.Error("fill not counted")
	}
	// Idempotent on resident lines.
	res := sys.InstallLine(0x1000, replacement.All(4))
	if !res.Hit || sys.Stats().Cache.Fills != after.Fills {
		t.Error("repeat fill refilled")
	}
}
