// Package service implements colserved: simulation-as-a-service on top of
// the colcache substrates. It turns the one-shot CLI pipeline (build a
// machine, run a trace, print stats) into a long-running daemon with a
// bounded job queue, explicit backpressure, cooperative cancellation
// plumbed into the simulation loop, graceful drain, and a hand-rolled
// Prometheus-text metrics endpoint.
package service

import (
	"fmt"
	"strings"

	colcache "colcache"
	"colcache/internal/cache"
	"colcache/internal/controller"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/replacement"
	"colcache/internal/workloads"
	"colcache/internal/workloads/gzipsim"
	"colcache/internal/workloads/kernels"
	"colcache/internal/workloads/mpeg"
	"colcache/internal/workloads/synth"
)

// Limits bound what a single spec may ask for; they are the service's
// defense against a request that is expensive rather than malformed.
type Limits struct {
	MaxTraceAccesses int // records per trace, uploaded or generated
	MaxSets          int
	MaxWays          int
}

// DefaultLimits is what Config.withDefaults installs.
var DefaultLimits = Limits{
	MaxTraceAccesses: 4 << 20,
	MaxSets:          1 << 16,
	MaxWays:          64,
}

func (l Limits) withDefaults() Limits {
	if l.MaxTraceAccesses == 0 {
		l.MaxTraceAccesses = DefaultLimits.MaxTraceAccesses
	}
	if l.MaxSets == 0 {
		l.MaxSets = DefaultLimits.MaxSets
	}
	if l.MaxWays == 0 {
		l.MaxWays = DefaultLimits.MaxWays
	}
	return l
}

func machineWithDefaults(m colcache.MachineSpec) colcache.MachineSpec {
	if m.LineBytes == 0 {
		m.LineBytes = 32
	}
	if m.Sets == 0 {
		m.Sets = 16
	}
	if m.Ways == 0 {
		m.Ways = 4
	}
	if m.PageBytes == 0 {
		m.PageBytes = 4096
	}
	if m.Policy == "" {
		m.Policy = string(replacement.LRU)
	}
	if m.MissPenalty == 0 {
		m.MissPenalty = 20
	}
	return m
}

// ValidateMachine checks a machine spec against the limits without
// building anything; submission-time rejection keeps garbage out of the
// queue.
func ValidateMachine(m colcache.MachineSpec, lim Limits) error {
	m = machineWithDefaults(m)
	lim = lim.withDefaults()
	if !memory.IsPow2(m.LineBytes) || m.LineBytes < 8 || m.LineBytes > 4096 {
		return fmt.Errorf("line_bytes %d: want a power of two in [8,4096]", m.LineBytes)
	}
	if !memory.IsPow2(m.Sets) || m.Sets < 1 || m.Sets > lim.MaxSets {
		return fmt.Errorf("sets %d: want a power of two in [1,%d]", m.Sets, lim.MaxSets)
	}
	if m.Ways < 1 || m.Ways > lim.MaxWays {
		return fmt.Errorf("ways %d: want [1,%d]", m.Ways, lim.MaxWays)
	}
	if !memory.IsPow2(m.PageBytes) || m.PageBytes < m.LineBytes {
		return fmt.Errorf("page_bytes %d: want a power of two >= line_bytes", m.PageBytes)
	}
	switch replacement.Kind(m.Policy) {
	case replacement.LRU, replacement.TreePLRU, replacement.FIFO, replacement.Random:
	default:
		return fmt.Errorf("unknown policy %q", m.Policy)
	}
	if m.MissPenalty < 0 || m.MissPenalty > 1<<20 {
		return fmt.Errorf("miss_penalty %d out of range", m.MissPenalty)
	}
	return nil
}

// ValidateSim checks a full simulate spec. hasUpload reports whether a
// binary trace body accompanies the spec (the octet-stream path).
func ValidateSim(spec colcache.SimSpec, hasUpload bool, lim Limits) error {
	if err := ValidateMachine(spec.Machine, lim); err != nil {
		return err
	}
	sources := 0
	if spec.Workload != nil {
		sources++
	}
	if spec.TraceText != "" {
		sources++
	}
	if hasUpload {
		sources++
	}
	if spec.Multicore != nil {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("want exactly one trace source (workload, trace_text, multicore, or binary upload), got %d", sources)
	}
	if spec.Workload != nil {
		if err := validateWorkload(*spec.Workload, lim); err != nil {
			return err
		}
	}
	if spec.Multicore != nil {
		return ValidateMulticore(spec, lim)
	}
	m := machineWithDefaults(spec.Machine)
	for i, mp := range spec.Maps {
		if mp.Size == 0 {
			return fmt.Errorf("maps[%d]: zero size", i)
		}
		if len(mp.Columns) == 0 {
			return fmt.Errorf("maps[%d]: no columns", i)
		}
		for _, c := range mp.Columns {
			if c < 0 || c >= m.Ways {
				return fmt.Errorf("maps[%d]: column %d outside [0,%d)", i, c, m.Ways)
			}
		}
	}
	if spec.Adaptive != nil {
		if len(spec.Maps)+1 > m.Ways {
			return fmt.Errorf("adaptive: %d tints but only %d columns", len(spec.Maps)+1, m.Ways)
		}
	}
	return nil
}

// workloadCaps bounds generator parameters so a single spec cannot demand
// an absurd trace; the trace-length limit is enforced again after
// generation.
func validateWorkload(w colcache.WorkloadSpec, lim Limits) error {
	lim = lim.withDefaults()
	switch w.Name {
	case "stream", "strided", "random", "chase", "phaseshift", "writesweep",
		"matmul", "fir", "histogram", "mpeg-dequant", "mpeg-plus", "mpeg-idct", "gzip":
	default:
		return fmt.Errorf("unknown workload %q (want one of stream, strided, random, chase, phaseshift, writesweep, matmul, fir, histogram, mpeg-dequant, mpeg-plus, mpeg-idct, gzip)", w.Name)
	}
	if w.N < 0 || w.N > lim.MaxTraceAccesses {
		return fmt.Errorf("workload n %d out of [0,%d]", w.N, lim.MaxTraceAccesses)
	}
	if w.SizeBytes > 1<<28 {
		return fmt.Errorf("workload size_bytes %d exceeds %d", w.SizeBytes, 1<<28)
	}
	if w.Passes < 0 || w.Passes > 1024 {
		return fmt.Errorf("workload passes %d out of [0,1024]", w.Passes)
	}
	if w.Phases < 0 || w.Phases > 1024 {
		return fmt.Errorf("workload phases %d out of [0,1024]", w.Phases)
	}
	if w.Taps < 0 || w.Taps > 1<<16 {
		return fmt.Errorf("workload taps %d out of [0,%d]", w.Taps, 1<<16)
	}
	if w.Bins < 0 || w.Bins > 1<<20 {
		return fmt.Errorf("workload bins %d out of [0,%d]", w.Bins, 1<<20)
	}
	if w.Name == "matmul" && w.N > 512 {
		return fmt.Errorf("matmul n %d exceeds 512", w.N)
	}
	if w.Name == "fir" {
		// The kernel needs at least one full filter window of samples.
		samples, taps := w.N, w.Taps
		if samples <= 0 {
			samples = 1024
		}
		if taps <= 0 {
			taps = 32
		}
		if samples < taps {
			return fmt.Errorf("fir: n %d shorter than taps %d", samples, taps)
		}
	}
	return nil
}

// BuildWorkload synthesizes the named workload's trace. Deterministic in
// the spec.
func BuildWorkload(w colcache.WorkloadSpec, lineBytes int) (*workloads.Program, error) {
	n := w.N
	size := w.SizeBytes
	passes := w.Passes
	seed := w.Seed
	if seed == 0 {
		seed = 1
	}
	orDefault := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	orDefaultU := func(v *uint64, d uint64) {
		if *v == 0 {
			*v = d
		}
	}
	switch w.Name {
	case "stream":
		orDefaultU(&size, 1<<16)
		orDefault(&passes, 2)
		return synth.Stream(0, size, 4, passes), nil
	case "strided":
		orDefaultU(&size, 1<<16)
		orDefault(&passes, 2)
		stride := w.Stride
		orDefaultU(&stride, 128)
		return synth.Strided(0, size, stride, passes), nil
	case "random":
		orDefaultU(&size, 1<<20)
		orDefault(&n, 20000)
		return synth.Random(0, size, n, seed), nil
	case "chase":
		orDefault(&n, 20000)
		return synth.PointerChase(0, 1024, 64, n, seed), nil
	case "phaseshift":
		orDefaultU(&size, 4096)
		phases := w.Phases
		orDefault(&phases, 4)
		orDefault(&passes, 2)
		return synth.PhaseShift(0, size, phases, passes, 64, lineBytes, seed), nil
	case "writesweep":
		orDefaultU(&size, 1<<16)
		orDefault(&passes, 2)
		return synth.WriteSweep(0, size, 4, passes), nil
	case "matmul":
		return kernels.MatMul(kernels.MatMulConfig{N: n, Seed: seed}), nil
	case "fir":
		return kernels.FIR(kernels.FIRConfig{Samples: n, Taps: w.Taps, Seed: seed}), nil
	case "histogram":
		return kernels.Histogram(kernels.HistogramConfig{Samples: n, Bins: w.Bins, Seed: seed}), nil
	case "mpeg-dequant":
		return mpeg.Dequant(mpeg.Config{DequantBlocks: n, Seed: seed}), nil
	case "mpeg-plus":
		return mpeg.Plus(mpeg.Config{PlusBlocks: n, Seed: seed}), nil
	case "mpeg-idct":
		return mpeg.Idct(mpeg.Config{IdctBlocks: n, Seed: seed}), nil
	case "gzip":
		cfg := gzipsim.Config{Seed: seed}
		if size != 0 {
			cfg.WindowBytes = int(size)
		}
		return gzipsim.Job(cfg, 0), nil
	}
	return nil, fmt.Errorf("unknown workload %q", w.Name)
}

// Built is a ready-to-run simulation: the machine, its trace, and the
// attached adaptive controller (nil unless requested).
type Built struct {
	Sys      *memsys.System
	Trace    memtrace.Trace
	Ctl      *controller.Controller
	Workload string
}

// BuildSim constructs the machine and trace a validated spec describes.
// upload, when non-nil, is the pre-decoded binary trace of an octet-stream
// submission.
func BuildSim(spec colcache.SimSpec, upload memtrace.Trace, lim Limits) (*Built, error) {
	lim = lim.withDefaults()
	m := machineWithDefaults(spec.Machine)
	g, err := memory.NewGeometry(m.LineBytes, m.PageBytes)
	if err != nil {
		return nil, err
	}
	timing := memsys.DefaultTiming
	timing.MissPenalty = m.MissPenalty
	sys, err := memsys.New(memsys.Config{
		Geometry: g,
		Cache: cache.Config{
			LineBytes: m.LineBytes,
			NumSets:   m.Sets,
			NumWays:   m.Ways,
			Policy:    replacement.Kind(m.Policy),
		},
		Timing: timing,
	})
	if err != nil {
		return nil, err
	}

	b := &Built{Sys: sys}
	switch {
	case upload != nil:
		b.Trace = upload
		b.Workload = "upload"
	case spec.TraceText != "":
		tr, err := memtrace.ReadText(strings.NewReader(spec.TraceText))
		if err != nil {
			return nil, err
		}
		b.Trace = tr
		b.Workload = "inline"
	case spec.Workload != nil:
		prog, err := BuildWorkload(*spec.Workload, m.LineBytes)
		if err != nil {
			return nil, err
		}
		b.Trace = prog.Trace
		b.Workload = spec.Workload.Name
	default:
		return nil, fmt.Errorf("no trace source")
	}
	if len(b.Trace) > lim.MaxTraceAccesses {
		return nil, fmt.Errorf("%w (limit %d)", memtrace.ErrTraceTooLarge, lim.MaxTraceAccesses)
	}

	for i, mp := range spec.Maps {
		name := mp.Name
		if name == "" {
			name = fmt.Sprintf("map%d@%x", i, mp.Base)
		}
		r := memory.Region{Name: name, Base: mp.Base, Size: mp.Size}
		if _, err := sys.MapRegion(r, replacement.Of(mp.Columns...)); err != nil {
			return nil, err
		}
	}

	if spec.Adaptive != nil {
		a := *spec.Adaptive
		if a.EpochAccesses <= 0 {
			a.EpochAccesses = 4096
		}
		if a.MinGainHits <= 0 {
			a.MinGainHits = 16
		}
		tints := sys.Tints().Tints()
		specs := make([]controller.Spec, len(tints))
		for i, id := range tints {
			specs[i] = controller.Spec{ID: id, Min: 1, Max: m.Ways}
		}
		ctl, err := controller.New(sys.Tints(), m.Sets, m.LineBytes, specs, controller.Config{
			EpochAccesses: a.EpochAccesses,
			MinGainHits:   a.MinGainHits,
			SampleEvery:   a.SampleEvery,
		})
		if err != nil {
			return nil, err
		}
		sys.SetAccessObserver(ctl)
		b.Ctl = ctl
	}
	return b, nil
}

// TintViews renders the machine's current tint table through the
// thread-safe snapshot — callable while the simulation runs.
func TintViews(sys *memsys.System, ways int) []colcache.TintView {
	table := sys.Tints()
	snap := table.Snapshot()
	ids := table.Tints()
	out := make([]colcache.TintView, 0, len(ids))
	for _, id := range ids {
		mask, ok := snap[id]
		if !ok {
			continue
		}
		var cols []int
		for c := 0; c < ways; c++ {
			if mask&(1<<uint(c)) != 0 {
				cols = append(cols, c)
			}
		}
		out = append(out, colcache.TintView{Name: table.Name(id), Mask: uint64(mask), Columns: cols})
	}
	return out
}

// Result composes the final SimResult from a finished run.
func Result(label string, b *Built, cycles int64, m colcache.MachineSpec) colcache.SimResult {
	st := b.Sys.Stats()
	mm := machineWithDefaults(m)
	res := colcache.SimResult{
		Label:         label,
		Workload:      b.Workload,
		TraceAccesses: int64(len(b.Trace)),
		Instructions:  st.Instructions,
		Cycles:        cycles,
		CPI:           st.CPI(),
		Cache: colcache.CacheCounters{
			Accesses:   st.Cache.Accesses,
			Hits:       st.Cache.Hits,
			Misses:     st.Cache.Misses,
			Evictions:  st.Cache.Evictions,
			Writebacks: st.Cache.Writebacks,
			Fills:      st.Cache.Fills,
			MissRate:   st.Cache.MissRate(),
		},
		TLBHitRate: st.TLB.HitRate(),
		Remaps:     b.Sys.Tints().Remaps(),
		Tints:      TintViews(b.Sys, mm.Ways),
	}
	if b.Ctl != nil {
		b.Ctl.FinishEpoch()
		decisions := b.Ctl.Decisions()
		ar := &colcache.AdaptiveResult{Epochs: len(decisions), Remaps: b.Ctl.Remaps()}
		for _, d := range decisions {
			ar.Decisions = append(ar.Decisions, d.String())
		}
		res.Adaptive = ar
	}
	return res
}
