package service

import (
	"fmt"

	colcache "colcache"
	"colcache/internal/cache"
	"colcache/internal/memory"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/multicore"
	"colcache/internal/replacement"
)

// MaxCores bounds a multicore spec's core count: cores multiply a job's
// simulated work linearly (the epoch-parallel stepper spreads the wall
// clock across goroutines, but the work is still per-core).
const MaxCores = 16

// MaxEpochCycles bounds a parallel spec's lookahead window: an epoch
// snapshot is taken per window, so absurdly large values buy nothing, and
// negative ones are meaningless.
const MaxEpochCycles = 1 << 24

func multicoreWithDefaults(mc colcache.MulticoreSpec) colcache.MulticoreSpec {
	if mc.L2Sets == 0 {
		mc.L2Sets = 64
	}
	if mc.L2Ways == 0 {
		mc.L2Ways = 8
	}
	if mc.L2HitCycles == 0 {
		mc.L2HitCycles = 6
	}
	return mc
}

// ValidateMulticore checks the multicore half of a simulate spec. The
// machine spec (the per-core L1) is validated by ValidateSim as usual.
func ValidateMulticore(spec colcache.SimSpec, lim Limits) error {
	lim = lim.withDefaults()
	mc := multicoreWithDefaults(*spec.Multicore)
	if len(spec.Maps) != 0 {
		return fmt.Errorf("multicore: maps are not supported (use per-core columns for the shared L2)")
	}
	if spec.Adaptive != nil {
		return fmt.Errorf("multicore: the adaptive controller is not supported over the service yet")
	}
	if len(mc.Cores) < 1 || len(mc.Cores) > MaxCores {
		return fmt.Errorf("multicore: %d cores, want [1,%d]", len(mc.Cores), MaxCores)
	}
	if !memory.IsPow2(mc.L2Sets) || mc.L2Sets < 1 || mc.L2Sets > lim.MaxSets {
		return fmt.Errorf("multicore: l2_sets %d: want a power of two in [1,%d]", mc.L2Sets, lim.MaxSets)
	}
	if mc.L2Ways < 1 || mc.L2Ways > lim.MaxWays {
		return fmt.Errorf("multicore: l2_ways %d: want [1,%d]", mc.L2Ways, lim.MaxWays)
	}
	if mc.L2HitCycles < 0 || mc.L2HitCycles > 1<<20 {
		return fmt.Errorf("multicore: l2_hit_cycles %d out of range", mc.L2HitCycles)
	}
	if mc.Epoch < 0 || mc.Epoch > MaxEpochCycles {
		return fmt.Errorf("multicore: epoch %d: want [0,%d]", mc.Epoch, MaxEpochCycles)
	}
	if mc.Epoch > 0 && !mc.Parallel {
		return fmt.Errorf("multicore: epoch is only meaningful with parallel: true")
	}
	for i, cs := range mc.Cores {
		if err := validateWorkload(cs.Workload, lim); err != nil {
			return fmt.Errorf("multicore: cores[%d]: %w", i, err)
		}
		for _, c := range cs.Columns {
			if c < 0 || c >= mc.L2Ways {
				return fmt.Errorf("multicore: cores[%d]: column %d outside [0,%d)", i, c, mc.L2Ways)
			}
		}
	}
	return nil
}

// BuiltMulticore is a ready-to-run multicore co-run.
type BuiltMulticore struct {
	M             *multicore.Machine
	TraceAccesses int64
	Workloads     []string
	Parallel      bool  // run the epoch-parallel stepper
	Epoch         int64 // lookahead cycles per epoch when Parallel
	// SharedAddresses records whether the cores' traces share one address
	// space; when false each core's trace was shifted into the i<<32
	// window and shared-L2 line ownership is derivable from the address.
	SharedAddresses bool
}

// BuildMulticore constructs the machine and per-core traces a validated
// multicore spec describes. Deterministic in the spec.
func BuildMulticore(spec colcache.SimSpec, lim Limits) (*BuiltMulticore, error) {
	lim = lim.withDefaults()
	m := machineWithDefaults(spec.Machine)
	mc := multicoreWithDefaults(*spec.Multicore)
	g, err := memory.NewGeometry(m.LineBytes, m.PageBytes)
	if err != nil {
		return nil, err
	}
	b := &BuiltMulticore{SharedAddresses: mc.SharedAddresses}
	traces := make([]memtrace.Trace, len(mc.Cores))
	for i, cs := range mc.Cores {
		prog, err := BuildWorkload(cs.Workload, m.LineBytes)
		if err != nil {
			return nil, fmt.Errorf("cores[%d]: %w", i, err)
		}
		tr := prog.Trace
		if len(tr) > lim.MaxTraceAccesses {
			return nil, fmt.Errorf("cores[%d]: %w (limit %d)", i, memtrace.ErrTraceTooLarge, lim.MaxTraceAccesses)
		}
		if !mc.SharedAddresses {
			shifted := make(memtrace.Trace, len(tr))
			shift := uint64(i) << 32 // disjoint per-core address windows
			for k, a := range tr {
				a.Addr += shift
				shifted[k] = a
			}
			tr = shifted
		}
		traces[i] = tr
		b.TraceAccesses += int64(len(tr))
		b.Workloads = append(b.Workloads, cs.Workload.Name)
	}
	timing := memsys.DefaultTiming
	timing.MissPenalty = m.MissPenalty
	mach, err := multicore.New(multicore.Config{
		Geometry: g,
		L1: cache.Config{
			LineBytes: m.LineBytes,
			NumSets:   m.Sets,
			NumWays:   m.Ways,
			Policy:    replacement.Kind(m.Policy),
		},
		L2: cache.Config{
			LineBytes: m.LineBytes,
			NumSets:   mc.L2Sets,
			NumWays:   mc.L2Ways,
			Policy:    replacement.Kind(m.Policy),
		},
		Timing:      timing,
		L2HitCycles: mc.L2HitCycles,
		Traces:      traces,
	})
	if err != nil {
		return nil, err
	}
	for i, cs := range mc.Cores {
		if len(cs.Columns) > 0 {
			if err := mach.SetL2Mask(i, replacement.Of(cs.Columns...)); err != nil {
				return nil, fmt.Errorf("cores[%d]: %w", i, err)
			}
		}
	}
	b.M = mach
	b.Parallel = mc.Parallel
	if b.Parallel {
		b.Epoch = mc.Epoch
		if b.Epoch == 0 {
			b.Epoch = multicore.DefaultEpochCycles
		}
	}
	return b, nil
}

func cacheCounters(st cache.Stats) colcache.CacheCounters {
	return colcache.CacheCounters{
		Accesses:   st.Accesses,
		Hits:       st.Hits,
		Misses:     st.Misses,
		Evictions:  st.Evictions,
		Writebacks: st.Writebacks,
		Fills:      st.Fills,
		MissRate:   st.MissRate(),
	}
}

// MulticoreResult composes the wire result of a finished co-run. The
// SimResult aggregates hold the makespan, summed instructions, and summed
// L1 counters; the Multicore block carries the per-core and bus detail.
func MulticoreResult(label string, b *BuiltMulticore) colcache.SimResult {
	st := b.M.Stats()
	res := colcache.SimResult{
		Label:         label,
		Workload:      "multicore",
		TraceAccesses: b.TraceAccesses,
		Instructions:  st.Instructions,
		Cycles:        st.Cycles,
		CPI:           st.CPI(),
		Multicore: &colcache.MulticoreResult{
			Bus: colcache.BusCounters{
				Reads:          st.Bus.Reads,
				ReadXs:         st.Bus.ReadXs,
				Upgrades:       st.Bus.Upgrades,
				Invalidations:  st.Bus.Invalidations,
				Interventions:  st.Bus.Interventions,
				WritebackRaces: st.Bus.WritebackRaces,
			},
			L2: cacheCounters(st.L2),
		},
	}
	var l1 cache.Stats
	for i, cs := range st.Cores {
		l1.Accesses += cs.L1.Accesses
		l1.Hits += cs.L1.Hits
		l1.Misses += cs.L1.Misses
		l1.Evictions += cs.L1.Evictions
		l1.Writebacks += cs.L1.Writebacks
		l1.Fills += cs.L1.Fills
		mask := b.M.L2Mask(i)
		var cols []int
		for w := 0; w < 64; w++ {
			if mask.Has(w) {
				cols = append(cols, w)
			}
		}
		cr := colcache.CoreResult{
			Workload:          b.Workloads[i],
			Instructions:      cs.Instructions,
			Cycles:            cs.Cycles,
			CPI:               cs.CPI(),
			L1:                cacheCounters(cs.L1),
			L2Accesses:        cs.L2Accesses,
			L2Misses:          cs.L2Misses,
			InvalidationsRecv: cs.InvalidationsRecv,
			Interventions:     cs.Interventions,
			Upgrades:          cs.Upgrades,
			Columns:           cols,
		}
		res.Multicore.Cores = append(res.Multicore.Cores, cr)
	}
	res.Cache = cacheCounters(l1)
	return res
}
