package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	colcache "colcache"
	"colcache/internal/inspect"
	"colcache/internal/memory"
	"colcache/internal/memsys"
)

// Live inspection: when Config.InspectEvery is set, every simulate and
// multicore job captures a compact occupancy frame each InspectEvery
// accesses (internal/inspect reduces the machine in place — allocation-
// free at steady state) and the server exposes two read paths:
//
//	GET /v1/jobs/{id}/inspect          — SSE stream of frames as they land
//	GET /v1/jobs/{id}/inspect/frames   — time-travel over retained frames
//
// The stream never back-pressures the simulation: a slow client's frames
// are dropped (and counted); the terminal "end" event carries the job's
// outcome so a client knows the stream closed cleanly rather than broke.

// inspectHub owns the per-job frame feeds and the retained-frame store.
type inspectHub struct {
	every     int
	heartbeat time.Duration
	frames    *inspect.Store

	mu    sync.Mutex
	feeds map[string]*inspect.Broadcaster

	captured atomic.Int64 // frames captured across all jobs
	dropped  atomic.Int64 // frames lost to slow SSE clients (summed on detach)
	streams  atomic.Int64 // currently attached SSE clients
}

func newInspectHub(every int, frameBytes int64, heartbeat time.Duration) *inspectHub {
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	return &inspectHub{
		every:     every,
		heartbeat: heartbeat,
		frames:    inspect.NewStore(frameBytes),
		feeds:     make(map[string]*inspect.Broadcaster),
	}
}

// feed returns jobID's broadcaster, creating it on first use — the SSE
// handler and the simulation worker race to be first, and either order
// works.
func (h *inspectHub) feed(jobID string) *inspect.Broadcaster {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.feeds[jobID]
	if b == nil {
		b = inspect.NewBroadcaster()
		h.feeds[jobID] = b
	}
	return b
}

// finish closes jobID's feed with the job's terminal state; subscribers
// (present and future) observe a clean end-of-stream with that reason.
func (h *inspectHub) finish(jobID, reason string) {
	h.feed(jobID).Finish(reason)
}

// drop forgets a job entirely: its feed and its retained frames (the job
// was evicted from the job store, so its inspect surface goes with it).
func (h *inspectHub) drop(jobID string) {
	h.mu.Lock()
	b := h.feeds[jobID]
	delete(h.feeds, jobID)
	h.mu.Unlock()
	if b != nil {
		b.Finish("evicted")
	}
	h.frames.DropJob(jobID)
}

func (h *inspectHub) gauges() InspectGauges {
	jobs, frames, bytes := h.frames.Stats()
	return InspectGauges{
		Streams:        h.streams.Load(),
		FramesCaptured: h.captured.Load(),
		FramesDropped:  h.dropped.Load(),
		RetainedJobs:   jobs,
		RetainedFrames: frames,
		RetainedBytes:  bytes,
	}
}

// frameSink is one running job's capture pipeline: reduce into a ring
// slot, marshal once, retain and broadcast the same bytes.
type frameSink struct {
	hub   *inspectHub
	jobID string
	feed  *inspect.Broadcaster
	ring  *inspect.Ring
}

// newFrameSink returns the capture pipeline for job j, or nil when live
// inspection is disabled.
func (s *Server) newFrameSink(j *Job) *frameSink {
	if s.inspect == nil {
		return nil
	}
	return &frameSink{
		hub:   s.inspect,
		jobID: j.ID,
		feed:  s.inspect.feed(j.ID),
		ring:  inspect.NewRing(8),
	}
}

// emit captures one frame via fill and fans the serialized bytes out.
func (k *frameSink) emit(fill func(*inspect.Frame)) {
	f := k.ring.Capture(fill)
	data, err := json.Marshal(f)
	if err != nil {
		return
	}
	k.hub.captured.Add(1)
	k.hub.frames.Append(k.jobID, f.Seq, data)
	k.feed.Publish(data)
}

// wireSimInspection attaches frame capture to a single-core run's options.
func (s *Server) wireSimInspection(j *Job, b *Built, opts *memsys.RunOptions) {
	sink := s.newFrameSink(j)
	if sink == nil {
		return
	}
	// Per-tint attribution feeds the frames' miss deltas; idempotent if the
	// adaptive controller already turned it on.
	b.Sys.EnablePerTintStats()
	red := inspect.NewSystemReducer(b.Sys)
	total := len(b.Trace)
	opts.InspectEvery = s.inspect.every
	opts.OnInspect = func(done int, st memsys.Stats) {
		sink.emit(func(f *inspect.Frame) { red.Reduce(f, int64(done), done == total) })
	}
}

// wireMulticoreInspection attaches frame capture to a multicore machine.
// Note the stepper contract: an attached inspector forces the serial
// stepper even when the spec asked for the epoch-parallel one, so the
// frame sequence is bit-identical to a serial run by construction.
func (s *Server) wireMulticoreInspection(j *Job, b *BuiltMulticore) {
	sink := s.newFrameSink(j)
	if sink == nil {
		return
	}
	var owner func(memory.Addr) int
	if !b.SharedAddresses {
		// BuildMulticore shifts core i's trace into the i<<32 window, so
		// shared-L2 line ownership is exact.
		owner = inspect.WindowOwner(b.M.NumCores(), 32)
	}
	red := inspect.NewMachineReducer(b.M, owner)
	total := b.TraceAccesses
	b.M.SetInspector(int64(s.inspect.every), func(done int64) {
		sink.emit(func(f *inspect.Frame) { red.Reduce(f, done, done == total) })
	})
}

func isTerminalState(st string) bool {
	switch st {
	case colcache.StateDone, colcache.StateFailed, colcache.StateCanceled:
		return true
	}
	return false
}

// handleInspect streams a job's occupancy frames as server-sent events:
// one "frame" event per captured frame, ":hb" comments at the heartbeat
// cadence, "dropped" events when a slow client loses frames, and a final
// "end" event carrying the job's terminal state.
func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	if s.inspect == nil {
		writeError(w, http.StatusNotFound, "live inspection disabled; start the server with -inspect-every")
		return
	}
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if j.Kind == "sweep" {
		writeError(w, http.StatusBadRequest, "sweep jobs have no inspection stream")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}

	feed := s.inspect.feed(id)
	sub := feed.Subscribe(32)
	// A job that already finished (possibly before its feed existed) must
	// close the stream immediately instead of heartbeating forever.
	if st := j.State(); isTerminalState(st) {
		s.inspect.finish(id, st)
	}
	s.inspect.streams.Add(1)
	defer s.inspect.streams.Add(-1)
	defer func() { s.inspect.dropped.Add(sub.Dropped()) }()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": inspect stream for job %s, every %d accesses\n\n", id, s.inspect.every)
	fl.Flush()

	hb := time.NewTicker(s.inspect.heartbeat)
	defer hb.Stop()
	var lastDropped int64
	for {
		select {
		case <-r.Context().Done():
			feed.Unsubscribe(sub)
			// Drain anything published between the context firing and the
			// unsubscribe so the channel's buffer is released.
			for range sub.C {
			}
			return
		case <-hb.C:
			fmt.Fprint(w, ":hb\n\n")
			fl.Flush()
		case data, open := <-sub.C:
			if !open {
				fmt.Fprintf(w, "event: end\ndata: {\"reason\":%q,\"dropped\":%d}\n\n",
					sub.Reason(), sub.Dropped())
				fl.Flush()
				return
			}
			if d := sub.Dropped(); d > lastDropped {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				lastDropped = d
			}
			fmt.Fprintf(w, "event: frame\ndata: %s\n\n", data)
			fl.Flush()
		}
	}
}

// handleInspectFrames serves the time-travel window: retained frames of a
// job (running or finished) with from <= seq <= to, oldest first.
func (s *Server) handleInspectFrames(w http.ResponseWriter, r *http.Request) {
	if s.inspect == nil {
		writeError(w, http.StatusNotFound, "live inspection disabled; start the server with -inspect-every")
		return
	}
	id := r.PathValue("id")
	if _, ok := s.store.get(id); !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	q := r.URL.Query()
	from, to := int64(0), int64(-1)
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseInt(v, 10, 64); err != nil || from < 0 {
			writeError(w, http.StatusBadRequest, "bad from %q", v)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = strconv.ParseInt(v, 10, 64); err != nil || to < 0 {
			writeError(w, http.StatusBadRequest, "bad to %q", v)
			return
		}
	}
	frames, first, ok := s.inspect.frames.Frames(id, from, to)
	if !ok {
		writeError(w, http.StatusBadRequest, "from %d > to %d", from, to)
		return
	}
	doc := colcache.InspectFrames{
		Job:    id,
		First:  first,
		Count:  len(frames),
		Frames: make([]json.RawMessage, len(frames)),
	}
	for i, b := range frames {
		doc.Frames[i] = b
	}
	writeJSON(w, http.StatusOK, doc)
}
