package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	colcache "colcache"
)

func jobID(t *testing.T, body []byte) string {
	t.Helper()
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil || info.ID == "" {
		t.Fatalf("no job ID in %s (%v)", body, err)
	}
	return info.ID
}

// TestResultETagAndConditionalGet pins the HTTP cache contract of
// GET /v1/results/{digest}: the stored envelope is immutable (the digest
// IS the content), so the response must carry the digest as a strong ETag
// plus an immutable Cache-Control — and a conditional re-read must be
// answered 304 without a body. The fabric coordinator forwards these
// reads between nodes; the validators are what make that forwarding (and
// any intermediate HTTP cache) free.
func TestResultETagAndConditionalGet(t *testing.T) {
	srv := newDurable(t, t.TempDir(), Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/simulate", tinySpec("etag"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	info := waitTerminal(t, ts, jobID(t, body))
	if info.State != colcache.StateDone || info.Digest == "" {
		t.Fatalf("job ended %s, digest %q", info.State, info.Digest)
	}

	rr, err := ts.Client().Get(ts.URL + "/v1/results/" + info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results: HTTP %d", rr.StatusCode)
	}
	wantETag := `"` + info.Digest + `"`
	if et := rr.Header.Get("ETag"); et != wantETag {
		t.Fatalf("ETag = %q, want %q", et, wantETag)
	}
	cc := rr.Header.Get("Cache-Control")
	if !strings.Contains(cc, "immutable") || !strings.Contains(cc, "max-age") {
		t.Fatalf("Cache-Control = %q, want immutable with a max-age", cc)
	}

	// Conditional re-reads: exact match, list form, and wildcard all 304.
	for _, inm := range []string{wantETag, `"deadbeef", ` + wantETag, "*"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/results/"+info.Digest, nil)
		req.Header.Set("If-None-Match", inm)
		cond, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		cond.Body.Close()
		if cond.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: HTTP %d, want 304", inm, cond.StatusCode)
		}
		if et := cond.Header.Get("ETag"); et != wantETag {
			t.Fatalf("304 must repeat the ETag, got %q", et)
		}
	}

	// A stale validator still gets the full document.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/results/"+info.Digest, nil)
	req.Header.Set("If-None-Match", `"0000"`)
	full, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	full.Body.Close()
	if full.StatusCode != http.StatusOK {
		t.Fatalf("mismatched If-None-Match: HTTP %d, want 200", full.StatusCode)
	}
}
