package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/memtrace"
)

func tinySpec(label string) colcache.SimSpec {
	return colcache.SimSpec{
		Label:    label,
		Machine:  colcache.MachineSpec{Sets: 16, Ways: 4},
		Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: 2048, Passes: 1},
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) colcache.JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info colcache.JobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch info.State {
		case colcache.StateDone, colcache.StateFailed, colcache.StateCanceled:
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return colcache.JobInfo{}
}

func TestSimulateRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/simulate", tinySpec("rt"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.State != colcache.StateQueued {
		t.Fatalf("bad accept document: %+v", info)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+info.ID {
		t.Fatalf("Location = %q", loc)
	}

	final := waitTerminal(t, ts, info.ID)
	if final.State != colcache.StateDone || final.Result == nil {
		t.Fatalf("job did not finish: %+v", final)
	}
	if final.Result.Cycles <= 0 || final.Result.Cache.Accesses <= 0 {
		t.Fatalf("degenerate result: %+v", final.Result)
	}
	if final.Result.TraceAccesses != final.Result.Cache.Accesses {
		t.Fatalf("trace %d != cache accesses %d", final.Result.TraceAccesses, final.Result.Cache.Accesses)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", final)
	}
}

func TestSimulateDeterministicAcrossQueue(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 32})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := colcache.SimSpec{
		Machine:  colcache.MachineSpec{Sets: 32, Ways: 4},
		Workload: &colcache.WorkloadSpec{Name: "random", N: 2000, Seed: 3},
		Adaptive: &colcache.AdaptiveSpec{EpochAccesses: 256},
	}
	var cycles []int64
	for i := 0; i < 4; i++ {
		_, body := postJSON(t, ts, "/v1/simulate", spec)
		var info colcache.JobInfo
		json.Unmarshal(body, &info)
		final := waitTerminal(t, ts, info.ID)
		if final.State != colcache.StateDone {
			t.Fatalf("run %d: %+v", i, final)
		}
		cycles = append(cycles, final.Result.Cycles)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] != cycles[0] {
			t.Fatalf("same spec, different cycles: %v", cycles)
		}
	}
}

func TestTraceUpload(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr := make(memtrace.Trace, 256)
	for i := range tr {
		tr[i] = memtrace.Access{Addr: uint64(i * 32), Op: memtrace.Read}
	}
	var buf bytes.Buffer
	if err := memtrace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/simulate?sets=16&ways=2&label=upload", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info colcache.JobInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: HTTP %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, info.ID)
	if final.State != colcache.StateDone || final.Result.TraceAccesses != 256 {
		t.Fatalf("upload job: %+v", final)
	}
	if final.Result.Workload != "upload" {
		t.Fatalf("workload = %q", final.Result.Workload)
	}

	// Malformed upload: rejected at submission, not enqueued.
	resp, err = ts.Client().Post(ts.URL+"/v1/simulate", "application/octet-stream", strings.NewReader("NOTATRACE"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: HTTP %d, want 400", resp.StatusCode)
	}

	// Oversized upload: distinct 413.
	big := make(memtrace.Trace, 64)
	buf.Reset()
	memtrace.WriteBinary(&buf, big)
	srv2 := New(Config{Workers: 1, QueueDepth: 4, Limits: Limits{MaxTraceAccesses: 16}})
	defer srv2.Drain(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Post(ts2.URL+"/v1/simulate", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: HTTP %d, want 413", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		body string
		want int
	}{
		{"/v1/simulate", "{not json", http.StatusBadRequest},
		{"/v1/simulate", `{"machine":{"policy":"mru"},"workload":{"name":"stream"}}`, http.StatusBadRequest},
		{"/v1/simulate", `{"machine":{}}`, http.StatusBadRequest}, // no trace source
		{"/v1/simulate", `{"workload":{"name":"nope"}}`, http.StatusBadRequest},
		{"/v1/sweep", `{"base":{"workload":{"name":"stream"}},"ways":[1,2,3,0]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var apiErr colcache.APIError
		json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %q: HTTP %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
		}
		if apiErr.Error == "" {
			t.Errorf("%s %q: empty error body", tc.path, tc.body)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestSweepRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, SweepWorkers: 2})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sw := colcache.SweepSpec{
		Label: "ways-sweep",
		Base:  tinySpec(""),
		Ways:  []int{1, 2, 4},
	}
	resp, body := postJSON(t, ts, "/v1/sweep", sw)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	json.Unmarshal(body, &info)
	final := waitTerminal(t, ts, info.ID)
	if final.State != colcache.StateDone || final.Sweep == nil {
		t.Fatalf("sweep: %+v", final)
	}
	if len(final.Sweep.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(final.Sweep.Points))
	}
	// More ways can't hurt a streaming workload: weakly monotone cycles.
	for i, p := range final.Sweep.Points {
		if p.Result.Cycles <= 0 {
			t.Fatalf("point %d degenerate: %+v", i, p)
		}
	}
	if final.Progress == nil || final.Progress.PointsDone != 3 {
		t.Fatalf("sweep progress: %+v", final.Progress)
	}
}

// TestBackpressure saturates a one-worker, depth-2 queue and checks the
// 429 contract: Retry-After set, JSON body, and every *accepted* job still
// runs to completion.
func TestBackpressure(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	gate := make(chan struct{})
	var gateOnce sync.Once
	srv.testHook = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pin the first job in the worker so exactly QueueDepth slots remain.
	resp0, body0 := postJSON(t, ts, "/v1/simulate", tinySpec("bp-pin"))
	if resp0.StatusCode != http.StatusAccepted {
		t.Fatalf("pin job: HTTP %d: %s", resp0.StatusCode, body0)
	}
	var pinned colcache.JobInfo
	json.Unmarshal(body0, &pinned)
	for deadline := time.Now().Add(5 * time.Second); srv.pool.Running() != 1; {
		if time.Now().After(deadline) {
			t.Fatal("pinned job never started")
		}
		time.Sleep(time.Millisecond)
	}

	accepted := []string{pinned.ID}
	rejected := 0
	for i := 0; i < 9; i++ {
		resp, body := postJSON(t, ts, "/v1/simulate", tinySpec(fmt.Sprintf("bp%d", i)))
		switch resp.StatusCode {
		case http.StatusAccepted:
			var info colcache.JobInfo
			json.Unmarshal(body, &info)
			accepted = append(accepted, info.ID)
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			var apiErr colcache.APIError
			if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Error == "" {
				t.Fatalf("429 body not an APIError: %s", body)
			}
			if apiErr.RetryAfterSeconds <= 0 {
				t.Fatalf("429 without retry_after_seconds: %s", body)
			}
		default:
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
	}
	// 1 pinned + 2 queued can be in flight; the rest must shed.
	if len(accepted) != 3 || rejected != 7 {
		t.Fatalf("accepted %d rejected %d, want 3/7", len(accepted), rejected)
	}
	gateOnce.Do(func() { close(gate) })

	for _, id := range accepted {
		if final := waitTerminal(t, ts, id); final.State != colcache.StateDone {
			t.Fatalf("accepted job %s: %+v", id, final)
		}
	}
	m := srv.MetricsRegistry()
	if got := m.Jobs.Get("simulate", "accepted"); got != 3 {
		t.Fatalf("accepted counter = %d", got)
	}
	if got := m.Jobs.Get("simulate", "rejected"); got != 7 {
		t.Fatalf("rejected counter = %d", got)
	}
	if got := m.Jobs.Get("simulate", "done"); got != 3 {
		t.Fatalf("done counter = %d", got)
	}
	srv.Drain(context.Background())
}

// TestConcurrentLoad is the in-process acceptance check: 200 concurrent
// submitters against a bounded queue; every accepted job completes (zero
// dropped), overload surfaces only as 429, and the metrics ledger matches
// what the clients observed.
func TestConcurrentLoad(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 64})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ts.Client().Timeout = 30 * time.Second

	const clients = 200
	var accepted, rejected, completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			spec := tinySpec(fmt.Sprintf("load%d", c))
			for {
				b, _ := json.Marshal(spec)
				resp, err := ts.Client().Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var info colcache.JobInfo
				json.NewDecoder(resp.Body).Decode(&info)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					rejected.Add(1)
					time.Sleep(time.Duration(c%7+1) * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("client %d: HTTP %d", c, resp.StatusCode)
					return
				}
				accepted.Add(1)
				deadline := time.Now().Add(30 * time.Second)
				for time.Now().Before(deadline) {
					r2, err := ts.Client().Get(ts.URL + "/v1/jobs/" + info.ID)
					if err != nil {
						t.Errorf("client %d poll: %v", c, err)
						return
					}
					var cur colcache.JobInfo
					json.NewDecoder(r2.Body).Decode(&cur)
					r2.Body.Close()
					if r2.StatusCode == http.StatusNotFound {
						t.Errorf("client %d: accepted job %s vanished", c, info.ID)
						return
					}
					if cur.State == colcache.StateDone {
						completed.Add(1)
						return
					}
					if cur.State == colcache.StateFailed || cur.State == colcache.StateCanceled {
						t.Errorf("client %d: job %s %s: %s", c, info.ID, cur.State, cur.Error)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				t.Errorf("client %d: job %s never finished", c, info.ID)
				return
			}
		}(c)
	}
	wg.Wait()

	if completed.Load() != clients || accepted.Load() != clients {
		t.Fatalf("accepted %d completed %d, want %d each", accepted.Load(), completed.Load(), clients)
	}
	m := srv.MetricsRegistry()
	if got := m.Jobs.Get("simulate", "accepted"); got != accepted.Load() {
		t.Fatalf("metrics accepted %d != client-observed %d", got, accepted.Load())
	}
	if got := m.Jobs.Get("simulate", "done"); got != completed.Load() {
		t.Fatalf("metrics done %d != client-observed %d", got, completed.Load())
	}
	if got := m.Jobs.Get("simulate", "rejected"); got != rejected.Load() {
		t.Fatalf("metrics rejected %d != client-observed %d", got, rejected.Load())
	}
	// Ledger closes: accepted = done + failed + canceled at idle.
	sum := m.Jobs.Get("simulate", "done") + m.Jobs.Get("simulate", "failed") + m.Jobs.Get("simulate", "canceled")
	if got := m.Jobs.Get("simulate", "accepted"); got != sum {
		t.Fatalf("ledger open: accepted %d != terminal %d", got, sum)
	}
	if m.SimAccesses.Load() <= 0 || m.SimCycles.Load() <= 0 {
		t.Fatal("sim work counters empty")
	}

	// Scrape parses and carries the totals.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf(`colserved_jobs_total{kind="simulate",outcome="done"} %d`, clients)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("scrape missing %q", want)
	}
}

func TestJobsListing(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		_, body := postJSON(t, ts, "/v1/simulate", tinySpec(fmt.Sprintf("ls%d", i)))
		var info colcache.JobInfo
		json.Unmarshal(body, &info)
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list colcache.JobList
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Jobs) != 3 {
		t.Fatalf("listing has %d jobs, want 3", len(list.Jobs))
	}
	// Newest first.
	if list.Jobs[0].ID != ids[2] {
		t.Fatalf("listing order: %s first, want %s", list.Jobs[0].ID, ids[2])
	}
}

func TestStoreEvictionKeepsLiveJobs(t *testing.T) {
	st := newStore(3)
	mk := func(state string) *Job {
		j := &Job{Kind: "simulate", state: state}
		st.add(j)
		return j
	}
	done1 := mk(colcache.StateDone)
	running := mk(colcache.StateRunning)
	queued := mk(colcache.StateQueued)
	done2 := mk(colcache.StateDone)

	if _, ok := st.get(done1.ID); ok {
		t.Fatal("oldest terminal job not evicted")
	}
	for _, j := range []*Job{running, queued} {
		if _, ok := st.get(j.ID); !ok {
			t.Fatalf("live job %s evicted", j.ID)
		}
	}
	if _, ok := st.get(done2.ID); !ok {
		t.Fatal("newest job evicted")
	}
}
