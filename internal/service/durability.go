package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	colcache "colcache"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/resultcache"
	"colcache/internal/wal"
)

// Durability is colserved's persistence layer: the job-queue write-ahead
// log and the content-addressed result cache, both rooted in one data
// directory. A Server built without one (the default) behaves exactly as
// before — accept, run, forget.
type Durability struct {
	Log     *wal.Log
	Results *resultcache.Cache

	// pending is what the WAL replayed at open; New consumes it.
	pending []wal.Record
}

// OpenDurability opens (or creates) the persistence layer under dataDir.
// walPath overrides the log location (default dataDir/wal.log);
// cacheBytes bounds the result cache (0 means the 256 MiB default).
func OpenDurability(dataDir, walPath string, cacheBytes int64) (*Durability, error) {
	if walPath == "" {
		walPath = filepath.Join(dataDir, "wal.log")
	}
	log, pending, err := wal.Open(walPath)
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	results, err := resultcache.Open(filepath.Join(dataDir, "results"), cacheBytes)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("open result cache: %w", err)
	}
	return &Durability{Log: log, Results: results, pending: pending}, nil
}

// Close syncs and closes the WAL.
func (d *Durability) Close() error { return d.Log.Close() }

// --- WAL record vocabulary ---------------------------------------------------

// Record types. A job's life in the log: accepted (committed before the
// 202 leaves), started, zero or more checkpoints (uncommitted — they only
// save recovery work), then exactly one terminal record (committed).
// Retriable cancellations during drain write no terminal record at all:
// the accepted record IS the promise that a restart re-enqueues the job.
const (
	recAccepted   byte = 1
	recStarted    byte = 2
	recCheckpoint byte = 3
	recDone       byte = 4
	recFailed     byte = 5
	recCanceled   byte = 6
)

// recMeta is the JSON metadata of every record type; which fields are set
// depends on the type. The accepted record of a binary-upload job carries
// the CCTRACE1 trace bytes in the record's blob, outside the JSON.
type recMeta struct {
	ID         string              `json:"id"`
	Kind       string              `json:"kind,omitempty"`
	Digest     string              `json:"digest,omitempty"`
	Spec       *colcache.SimSpec   `json:"spec,omitempty"`
	Sweep      *colcache.SweepSpec `json:"sweep,omitempty"`
	Checkpoint *memsys.Checkpoint  `json:"checkpoint,omitempty"`
	Msg        string              `json:"msg,omitempty"`
}

func (s *Server) appendRecord(typ byte, meta recMeta, blob []byte, commit bool) {
	if s.dur == nil {
		return
	}
	b, err := json.Marshal(meta)
	if err != nil {
		return
	}
	// An append error (disk full, dying device) must not fail the job
	// that triggered it — the job still runs; only durability degrades.
	// The next scrape shows the WAL bytes gauge frozen, which is the
	// operational signal.
	_ = s.dur.Log.Append(wal.Record{Type: typ, Meta: b, Blob: blob}, commit)
}

// --- spec canonicalization and digests ---------------------------------------

// canonicalSimSpec normalizes a spec so that every submission that would
// produce the same result hashes the same: machine defaults applied,
// generator seeds defaulted, and the label dropped (it is presentation,
// not physics — a cached result is re-labeled per request).
func canonicalSimSpec(spec colcache.SimSpec) colcache.SimSpec {
	spec.Label = ""
	spec.Machine = machineWithDefaults(spec.Machine)
	if spec.Workload != nil {
		w := *spec.Workload
		if w.Seed == 0 {
			w.Seed = 1
		}
		spec.Workload = &w
	}
	if spec.Multicore != nil {
		mc := *spec.Multicore
		mc.Cores = append([]colcache.CoreSpec(nil), mc.Cores...)
		for i := range mc.Cores {
			if mc.Cores[i].Workload.Seed == 0 {
				mc.Cores[i].Workload.Seed = 1
			}
		}
		spec.Multicore = &mc
	}
	return spec
}

// SimDigest is the content address of one simulation: the hex SHA-256 of
// the canonicalized spec JSON plus the raw trace bytes of an upload (nil
// for generated and inline traces — those are part of the spec).
func SimDigest(spec colcache.SimSpec, traceBytes []byte) string {
	b, _ := json.Marshal(canonicalSimSpec(spec))
	return resultcache.Digest([]byte("sim\x00"), b, []byte{0}, traceBytes)
}

// SweepDigest is the content address of a sweep. Workers is excluded —
// the point set is deterministic at any parallelism (CI proves it).
func SweepDigest(sw colcache.SweepSpec) string {
	sw.Label = ""
	sw.Workers = 0
	sw.Base = canonicalSimSpec(sw.Base)
	b, _ := json.Marshal(sw)
	return resultcache.Digest([]byte("sweep\x00"), b)
}

// encodeTrace renders an uploaded trace to its canonical CCTRACE1 bytes,
// which are both the digest input and the WAL blob.
func encodeTrace(t memtrace.Trace) []byte {
	if t == nil {
		return nil
	}
	var buf bytes.Buffer
	memtrace.WriteBinary(&buf, t)
	return buf.Bytes()
}

// --- stored results ----------------------------------------------------------

// storedResult is the JSON envelope a finished job leaves in the result
// cache; GET /v1/results/{digest} serves it verbatim.
func storeResult(j *Job, res *colcache.SimResult, sweep *colcache.SweepResult) []byte {
	b, err := json.Marshal(colcache.StoredResult{
		Kind:   j.Kind,
		Digest: j.Digest,
		Result: res,
		Sweep:  sweep,
	})
	if err != nil {
		return nil
	}
	return b
}

// --- boot recovery -----------------------------------------------------------

type recoveredJob struct {
	meta     recMeta
	blob     []byte
	accepted wal.Record // original record, re-emitted at compaction
	cp       *memsys.Checkpoint
	cpRec    *wal.Record
	terminal bool
}

// RecoveryStats summarizes what boot replay did, for the daemon's log line.
type RecoveryStats struct {
	Requeued int // accepted-but-unfinished jobs back in the queue
	Resumed  int // of those, simulate jobs resuming from a checkpoint
	Finished int // jobs whose terminal record made replay a no-op
	Dropped  int // undecodable or unqueueable jobs, canceled as retriable
}

// recoverJobs folds the replayed WAL into per-job state, compacts the log
// down to the live jobs, and re-enqueues them: queued jobs restart from
// the beginning, in-flight simulate jobs resume from their last
// checkpoint. Runs inside New, before any HTTP traffic and before any
// worker holds a job, so compaction cannot race an append.
func (s *Server) recoverJobs(records []wal.Record) RecoveryStats {
	var st RecoveryStats
	jobs := make(map[string]*recoveredJob)
	var order []string
	for _, r := range records {
		var m recMeta
		if err := json.Unmarshal(r.Meta, &m); err != nil || m.ID == "" {
			continue
		}
		switch r.Type {
		case recAccepted:
			if _, ok := jobs[m.ID]; !ok {
				jobs[m.ID] = &recoveredJob{meta: m, blob: r.Blob, accepted: r}
				order = append(order, m.ID)
			}
		case recCheckpoint:
			if j, ok := jobs[m.ID]; ok && m.Checkpoint != nil {
				j.cp = m.Checkpoint
				rec := r
				j.cpRec = &rec
			}
		case recDone, recFailed, recCanceled:
			if j, ok := jobs[m.ID]; ok {
				j.terminal = true
			}
		}
	}

	// Compact first: the log shrinks to the accepted (+ last checkpoint)
	// records of live jobs, and only then do those jobs start appending
	// started/checkpoint records to the fresh tail.
	var keep []wal.Record
	var live []*recoveredJob
	var maxSeq int64
	for _, id := range order {
		j := jobs[id]
		if n := jobSeq(id); n > maxSeq {
			maxSeq = n
		}
		if j.terminal {
			st.Finished++
			continue
		}
		live = append(live, j)
		keep = append(keep, j.accepted)
		if j.cpRec != nil {
			keep = append(keep, *j.cpRec)
		}
	}
	s.store.bumpSeq(maxSeq)
	_ = s.dur.Log.Compact(keep)

	for _, rj := range live {
		j, err := rebuildJob(rj)
		if err != nil {
			st.Dropped++
			continue
		}
		j.state = colcache.StateQueued
		j.Submitted = time.Now()
		if s.inspect != nil && j.Kind != "sweep" {
			jid := j.ID
			j.onFinish = func(state string) { s.inspect.finish(jid, state) }
		}
		s.store.restore(j)
		if err := s.pool.TrySubmit(j); err != nil {
			// More journaled jobs than queue depth: hand the overflow back
			// as retriable — the accepted record stays for the next boot.
			j.finish(colcache.StateCanceled, true,
				"recovered job did not fit the queue; restart or resubmit (digest "+j.Digest+")", nil, nil)
			st.Dropped++
			continue
		}
		s.metrics.Jobs.Add(1, j.Kind, "recovered")
		st.Requeued++
		if j.Resume != nil {
			st.Resumed++
		}
	}
	return st
}

func rebuildJob(rj *recoveredJob) (*Job, error) {
	m := rj.meta
	if m.Spec == nil {
		return nil, fmt.Errorf("accepted record without a spec")
	}
	j := &Job{ID: m.ID, Kind: m.Kind, Spec: *m.Spec, SweepSpec: m.Sweep, Digest: m.Digest}
	if j.Kind == "" {
		j.Kind = "simulate"
	}
	if len(rj.blob) > 0 {
		tr, err := memtrace.ReadBinary(bytes.NewReader(rj.blob))
		if err != nil {
			return nil, fmt.Errorf("replay trace blob: %w", err)
		}
		j.Upload = tr
	}
	// Only single-core simulations have deterministic access-granular
	// resume; sweeps and multicore co-runs restart from the top.
	if j.Kind == "simulate" && rj.cp != nil {
		cp := *rj.cp
		j.Resume = &cp
	}
	return j, nil
}

// jobSeq parses the numeric tail of a job ID ("j00000042" → 42).
func jobSeq(id string) int64 {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
