package service

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterVec(t *testing.T) {
	c := newCounterVec("test_total", "help", "kind", "outcome")
	c.Add(3, "simulate", "done")
	c.Add(1, "simulate", "failed")
	c.Add(2, "sweep", "done")
	if got := c.Get("simulate", "done"); got != 3 {
		t.Fatalf("Get = %d, want 3", got)
	}
	if got := c.Get("never", "touched"); got != 0 {
		t.Fatalf("untouched child = %d, want 0", got)
	}
	var b strings.Builder
	c.write(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		`test_total{kind="simulate",outcome="done"} 3`,
		`test_total{kind="simulate",outcome="failed"} 1`,
		`test_total{kind="sweep",outcome="done"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram("lat_seconds", "help", []float64{0.01, 0.1, 1}, "path")
	h.Observe(0.005, "/a") // bucket le=0.01
	h.Observe(0.05, "/a")  // le=0.1
	h.Observe(0.05, "/a")
	h.Observe(5, "/a") // +Inf only
	if got := h.Count("/a"); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	var b strings.Builder
	h.write(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{path="/a",le="0.01"} 1`,
		`lat_seconds_bucket{path="/a",le="0.1"} 3`,
		`lat_seconds_bucket{path="/a",le="1"} 3`,
		`lat_seconds_bucket{path="/a",le="+Inf"} 4`,
		`lat_seconds_count{path="/a"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Sum: 0.005 + 0.05 + 0.05 + 5 = 5.105
	if !strings.Contains(out, `lat_seconds_sum{path="/a"} 5.105`) {
		t.Errorf("bad sum in:\n%s", out)
	}
}

// TestHistogramConcurrentSum drives the CAS float64 sum from many
// goroutines; the total must be exact for values that add without rounding.
func TestHistogramConcurrentSum(t *testing.T) {
	h := newHistogram("x", "h", defLatencyBounds)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	c := h.child()
	if got := c.count.Load(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	sum := math.Float64frombits(c.sumBits.Load())
	if sum != workers*per*0.5 {
		t.Fatalf("sum = %v, want %v", sum, workers*per*0.5)
	}
}

func TestMetricsWrite(t *testing.T) {
	m := NewMetrics()
	m.Jobs.Add(5, "simulate", "accepted")
	m.Jobs.Add(5, "simulate", "done")
	m.SimCycles.Add(1234)
	m.SimAccesses.Add(100)
	m.RequestSeconds.Observe(0.002, "/v1/simulate")

	var b strings.Builder
	m.Write(&b, Gauges{QueueDepth: 3, Running: 2, Draining: true})
	out := b.String()
	for _, want := range []string{
		`colserved_jobs_total{kind="simulate",outcome="accepted"} 5`,
		"colserved_queue_depth 3",
		"colserved_jobs_running 2",
		"colserved_draining 1",
		"colserved_sim_cycles_total 1234",
		"colserved_sim_accesses_total 100",
		"colserved_sim_cycles_per_second",
		"colserved_uptime_seconds",
		"# TYPE colserved_request_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}
