package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	colcache "colcache"
	"colcache/internal/experiments"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/runner"
)

// Config parameterizes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers bounds concurrently executing jobs (default: NumCPU).
	Workers int
	// QueueDepth bounds jobs waiting to start; a submission past the limit
	// is shed with 429 + Retry-After (default 256).
	QueueDepth int
	// SweepWorkers caps one sweep job's inner fan-out (default 4). A sweep
	// occupies a single queue worker; its points parallelize inside it.
	SweepWorkers int
	// MaxBodyBytes bounds any request body (default 32 MiB).
	MaxBodyBytes int64
	// Limits bound what one spec may ask for.
	Limits Limits
	// MaxSweepPoints bounds the expanded point count of one sweep
	// (default 512).
	MaxSweepPoints int
	// JobTimeout bounds one job's execution (default 120s).
	JobTimeout time.Duration
	// RetainJobs bounds how many jobs the store keeps; oldest terminal
	// jobs are evicted first, queued/running never (default 16384).
	RetainJobs int
	// CheckEvery is the simulation cancellation/checkpoint stride
	// (default memsys.DefaultCheckEvery).
	CheckEvery int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	c.Limits = c.Limits.withDefaults()
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 512
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 16384
	}
	return c
}

// Server is the colserved HTTP service: a bounded job queue in front of
// the simulation substrates, with live metrics.
type Server struct {
	cfg       Config
	store     *store
	pool      *runner.Pool[*Job]
	metrics   *Metrics
	mux       *http.ServeMux
	draining  chan struct{} // closed when Drain begins
	drainOnce sync.Once

	// testHook, when set, runs at the head of every job; tests use it to
	// pin a job in the running state deterministically.
	testHook func(ctx context.Context, j *Job)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		store:    newStore(cfg.RetainJobs),
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
	}
	s.pool = runner.NewPool(cfg.Workers, cfg.QueueDepth, s.runJob)

	s.mux.Handle("POST /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJob))
	s.mux.Handle("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobs))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (tests and embedding servers read it).
func (s *Server) MetricsRegistry() *Metrics { return s.metrics }

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain gracefully shuts the queue down: new submissions are shed with
// 503, jobs that never started are canceled with a retriable status, and
// in-flight jobs get until ctx expires to complete — after which their
// contexts are canceled and the cooperative simulation loop stops them at
// the next checkpoint. Returns nil when everything settled inside the
// deadline.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.draining) })
	discarded, err := s.pool.Drain(ctx)
	for _, j := range discarded {
		j.finish(colcache.StateCanceled, true, "server draining before the job started; resubmit", nil, nil)
		s.metrics.Jobs.Add(1, j.Kind, "canceled")
		s.observeJobLatency(j)
	}
	if err != nil {
		// Deadline passed with jobs still running: cancel their contexts
		// and give the cooperative loops a moment to unwind.
		s.pool.Kill()
		grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err2 := s.pool.Drain(grace); err2 != nil {
			return fmt.Errorf("drain: %d jobs still running after cancellation: %w", s.pool.Running(), err2)
		}
		return err
	}
	return nil
}

// --- job execution -----------------------------------------------------------

func (s *Server) runJob(poolCtx context.Context, j *Job) {
	ctx, cancel := context.WithTimeout(poolCtx, s.cfg.JobTimeout)
	defer cancel()
	if s.testHook != nil {
		s.testHook(ctx, j)
	}

	var err error
	switch j.Kind {
	case "sweep":
		err = s.runSweep(ctx, j)
	case "multicore":
		err = s.runMulticore(ctx, j)
	default:
		err = s.runSimulate(ctx, j)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			j.finish(colcache.StateCanceled, true, "canceled during server drain", nil, nil)
			s.metrics.Jobs.Add(1, j.Kind, "canceled")
		case errors.Is(err, context.DeadlineExceeded):
			j.finish(colcache.StateFailed, false, fmt.Sprintf("job exceeded timeout %s", s.cfg.JobTimeout), nil, nil)
			s.metrics.Jobs.Add(1, j.Kind, "failed")
		default:
			j.finish(colcache.StateFailed, false, err.Error(), nil, nil)
			s.metrics.Jobs.Add(1, j.Kind, "failed")
		}
	} else {
		s.metrics.Jobs.Add(1, j.Kind, "done")
	}
	s.observeJobLatency(j)
}

func (s *Server) observeJobLatency(j *Job) {
	if d, ok := j.latency(); ok {
		s.metrics.JobSeconds.Observe(d.Seconds(), j.Kind)
	}
}

func (s *Server) runSimulate(ctx context.Context, j *Job) error {
	b, err := BuildSim(j.Spec, j.Upload, s.cfg.Limits)
	if err != nil {
		return err
	}
	j.setRunning(b.Sys)
	total := int64(len(b.Trace))
	var lastCycles, lastAccesses int64
	cycles, err := b.Sys.RunContext(ctx, b.Trace, memsys.RunOptions{
		CheckEvery: s.cfg.CheckEvery,
		OnCheckpoint: func(done int, st memsys.Stats) {
			s.metrics.SimCycles.Add(st.Cycles - lastCycles)
			s.metrics.SimAccesses.Add(st.MemAccesses - lastAccesses)
			lastCycles, lastAccesses = st.Cycles, st.MemAccesses
			p := colcache.JobProgress{
				AccessesDone:  int64(done),
				AccessesTotal: total,
				Cycles:        st.Cycles,
				CacheMissRate: st.Cache.MissRate(),
			}
			if b.Ctl != nil {
				p.Decisions = len(b.Ctl.Decisions())
			}
			j.publishProgress(p)
		},
	})
	if err != nil {
		return err
	}
	res := Result(j.Spec.Label, b, cycles, j.Spec.Machine)
	j.finish(colcache.StateDone, false, "", &res, nil)
	return nil
}

// runMulticore executes a multicore co-run job: the deterministic serial
// stepper with cooperative cancellation at the same checkpoint stride the
// single-core path uses.
func (s *Server) runMulticore(ctx context.Context, j *Job) error {
	b, err := BuildMulticore(j.Spec, s.cfg.Limits)
	if err != nil {
		return err
	}
	j.setRunning(nil)
	var lastCycles, lastAccesses int64
	err = b.M.RunContext(ctx, s.cfg.CheckEvery, func(done int64) {
		st := b.M.Stats()
		var acc, miss, mem int64
		for _, c := range st.Cores {
			acc += c.L1.Accesses
			miss += c.L1.Misses
			mem += c.MemAccesses
		}
		s.metrics.SimCycles.Add(st.Cycles - lastCycles)
		s.metrics.SimAccesses.Add(mem - lastAccesses)
		lastCycles, lastAccesses = st.Cycles, mem
		p := colcache.JobProgress{
			AccessesDone:  done,
			AccessesTotal: b.TraceAccesses,
			Cycles:        st.Cycles,
		}
		if acc > 0 {
			p.CacheMissRate = float64(miss) / float64(acc)
		}
		j.publishProgress(p)
	})
	if err != nil {
		return err
	}
	res := MulticoreResult(j.Spec.Label, b)
	j.finish(colcache.StateDone, false, "", &res, nil)
	return nil
}

// expandSweep crosses the base spec with the non-empty axes.
func expandSweep(sw colcache.SweepSpec, maxPoints int) ([]colcache.SimSpec, error) {
	// Axis entries must be explicit: a zero would silently decay to the
	// machine default and mislabel the point.
	for _, v := range sw.Sets {
		if v <= 0 {
			return nil, fmt.Errorf("sets axis value %d: want > 0", v)
		}
	}
	for _, v := range sw.Ways {
		if v <= 0 {
			return nil, fmt.Errorf("ways axis value %d: want > 0", v)
		}
	}
	for _, v := range sw.MissPenalties {
		if v <= 0 {
			return nil, fmt.Errorf("miss_penalties axis value %d: want > 0", v)
		}
	}
	for _, v := range sw.Policies {
		if v == "" {
			return nil, fmt.Errorf("policies axis has an empty entry")
		}
	}
	sets := sw.Sets
	if len(sets) == 0 {
		sets = []int{sw.Base.Machine.Sets}
	}
	ways := sw.Ways
	if len(ways) == 0 {
		ways = []int{sw.Base.Machine.Ways}
	}
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{sw.Base.Machine.Policy}
	}
	penalties := sw.MissPenalties
	if len(penalties) == 0 {
		penalties = []int{sw.Base.Machine.MissPenalty}
	}
	var workloads []*colcache.WorkloadSpec
	if len(sw.Workloads) == 0 {
		workloads = []*colcache.WorkloadSpec{sw.Base.Workload}
	} else {
		for i := range sw.Workloads {
			workloads = append(workloads, &sw.Workloads[i])
		}
	}

	n := len(sets) * len(ways) * len(policies) * len(penalties) * len(workloads)
	if n == 0 {
		return nil, fmt.Errorf("sweep expands to zero points")
	}
	if n > maxPoints {
		return nil, fmt.Errorf("sweep expands to %d points, limit %d", n, maxPoints)
	}
	var out []colcache.SimSpec
	for _, wl := range workloads {
		for _, st := range sets {
			for _, wy := range ways {
				for _, pol := range policies {
					for _, pen := range penalties {
						spec := sw.Base
						spec.Machine.Sets = st
						spec.Machine.Ways = wy
						spec.Machine.Policy = pol
						spec.Machine.MissPenalty = pen
						if wl != nil {
							w := *wl
							spec.Workload = &w
						}
						m := machineWithDefaults(spec.Machine)
						label := fmt.Sprintf("sets=%d ways=%d policy=%s penalty=%d", m.Sets, m.Ways, m.Policy, m.MissPenalty)
						if wl != nil {
							label = "wl=" + wl.Name + " " + label
						}
						spec.Label = label
						out = append(out, spec)
					}
				}
			}
		}
	}
	return out, nil
}

func (s *Server) runSweep(ctx context.Context, j *Job) error {
	points, err := expandSweep(*j.SweepSpec, s.cfg.MaxSweepPoints)
	if err != nil {
		return err
	}
	for i := range points {
		if err := ValidateSim(points[i], false, s.cfg.Limits); err != nil {
			return fmt.Errorf("point %q: %w", points[i].Label, err)
		}
	}
	j.setRunning(nil)
	j.publishProgress(colcache.JobProgress{PointsTotal: len(points)})

	workers := j.SweepSpec.Workers
	if workers <= 0 || workers > s.cfg.SweepWorkers {
		workers = s.cfg.SweepWorkers
	}
	jobs := make([]experiments.SpecJob, len(points))
	for i := range points {
		spec := points[i]
		jobs[i] = experiments.SpecJob{
			Label: spec.Label,
			Build: func() (*memsys.System, memtrace.Trace, error) {
				b, err := BuildSim(spec, nil, s.cfg.Limits)
				if err != nil {
					return nil, nil, err
				}
				return b.Sys, b.Trace, nil
			},
			After: func(sys *memsys.System, res *experiments.SpecResult) error {
				s.metrics.SimCycles.Add(res.Stats.Cycles)
				s.metrics.SimAccesses.Add(res.Stats.MemAccesses)
				// Rebuild the wire result from the finished machine.
				b := &Built{Sys: sys}
				if spec.Workload != nil {
					b.Workload = spec.Workload.Name
				}
				r := Result(spec.Label, b, res.Cycles, spec.Machine)
				r.TraceAccesses = res.Stats.MemAccesses
				res.Extra = colcache.SweepPoint{Label: spec.Label, Machine: spec.Machine, Result: r}
				return nil
			},
		}
	}
	results, err := experiments.RunSpecs(ctx, jobs, workers, s.cfg.CheckEvery, func(done, total int) {
		j.publishProgress(colcache.JobProgress{PointsDone: done, PointsTotal: total})
	})
	if err != nil {
		// Unwrap the runner's job attribution so context errors keep their
		// identity for the canceled/timeout classification above.
		return err
	}
	sweep := &colcache.SweepResult{Points: make([]colcache.SweepPoint, len(results))}
	for i, r := range results {
		sweep.Points[i] = r.Extra.(colcache.SweepPoint)
	}
	j.finish(colcache.StateDone, false, "", nil, sweep)
	return nil
}

// --- HTTP handlers -----------------------------------------------------------

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-path request counting and latency
// observation, using the route pattern (not the raw URL) as the label so
// cardinality stays bounded.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.RequestSeconds.Observe(time.Since(start).Seconds(), pattern)
		s.metrics.HTTPRequests.Add(1, pattern, strconv.Itoa(rec.code))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, colcache.APIError{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers a shed submission (full queue or draining) with the
// explicit backpressure contract: status + Retry-After.
func writeShed(w http.ResponseWriter, code int, retryAfter int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, colcache.APIError{Error: msg, RetryAfterSeconds: retryAfter})
}

// submit queues a prepared job, converting pool saturation into 429 and
// drain into 503.
func (s *Server) submit(w http.ResponseWriter, j *Job) {
	if s.isDraining() {
		s.metrics.Jobs.Add(1, j.Kind, "rejected")
		writeShed(w, http.StatusServiceUnavailable, 1, "server draining")
		return
	}
	j.state = colcache.StateQueued
	j.Submitted = time.Now()
	s.store.add(j)
	if err := s.pool.TrySubmit(j); err != nil {
		s.store.remove(j.ID)
		s.metrics.Jobs.Add(1, j.Kind, "rejected")
		if errors.Is(err, runner.ErrPoolClosed) {
			writeShed(w, http.StatusServiceUnavailable, 1, "server draining")
		} else {
			writeShed(w, http.StatusTooManyRequests, 1,
				fmt.Sprintf("queue full (%d waiting)", s.pool.Pending()))
		}
		return
	}
	s.metrics.Jobs.Add(1, j.Kind, "accepted")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Info())
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	j := &Job{Kind: "simulate"}

	if r.Header.Get("Content-Type") == "application/octet-stream" {
		// Binary trace upload: machine via query parameters, body streamed
		// through the size-limited decoder — an oversized or malformed
		// trace is rejected without ever being fully buffered.
		spec, err := machineFromQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad query: %v", err)
			return
		}
		j.Spec = spec
		if err := ValidateSim(spec, true, s.cfg.Limits); err != nil {
			writeError(w, http.StatusBadRequest, "bad spec: %v", err)
			return
		}
		tr, err := memtrace.ReadBinaryLimit(r.Body, s.cfg.Limits.MaxTraceAccesses)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, memtrace.ErrTraceTooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, "bad trace: %v", err)
			return
		}
		if len(tr) == 0 {
			writeError(w, http.StatusBadRequest, "empty trace")
			return
		}
		j.Upload = tr
		s.submit(w, j)
		return
	}

	var spec colcache.SimSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if err := ValidateSim(spec, false, s.cfg.Limits); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if spec.Multicore != nil {
		j.Kind = "multicore"
	}
	j.Spec = spec
	s.submit(w, j)
}

// machineFromQuery parses the octet-stream submission's machine selection.
func machineFromQuery(r *http.Request) (colcache.SimSpec, error) {
	q := r.URL.Query()
	var spec colcache.SimSpec
	geti := func(key string) (int, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.Atoi(v)
	}
	var err error
	if spec.Machine.LineBytes, err = geti("line"); err != nil {
		return spec, fmt.Errorf("line: %v", err)
	}
	if spec.Machine.Sets, err = geti("sets"); err != nil {
		return spec, fmt.Errorf("sets: %v", err)
	}
	if spec.Machine.Ways, err = geti("ways"); err != nil {
		return spec, fmt.Errorf("ways: %v", err)
	}
	if spec.Machine.PageBytes, err = geti("page"); err != nil {
		return spec, fmt.Errorf("page: %v", err)
	}
	if spec.Machine.MissPenalty, err = geti("penalty"); err != nil {
		return spec, fmt.Errorf("penalty: %v", err)
	}
	spec.Machine.Policy = q.Get("policy")
	spec.Label = q.Get("label")
	return spec, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var spec colcache.SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	points, err := expandSweep(spec, s.cfg.MaxSweepPoints)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep: %v", err)
		return
	}
	for i := range points {
		if err := ValidateSim(points[i], false, s.cfg.Limits); err != nil {
			writeError(w, http.StatusBadRequest, "bad sweep point %q: %v", points[i].Label, err)
			return
		}
	}
	s.submit(w, &Job{Kind: "sweep", SweepSpec: &spec, Spec: spec.Base})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	recent := s.store.recent(100)
	list := colcache.JobList{
		Queued:  s.pool.Pending(),
		Running: s.pool.Running(),
		Jobs:    make([]colcache.JobInfo, len(recent)),
	}
	for i, j := range recent {
		list.Jobs[i] = j.Info()
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Write(w, Gauges{
		QueueDepth: s.pool.Pending(),
		Running:    s.pool.Running(),
		Draining:   s.isDraining(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeShed(w, http.StatusServiceUnavailable, 1, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
