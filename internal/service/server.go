package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	colcache "colcache"
	"colcache/internal/experiments"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
	"colcache/internal/runner"
)

// Config parameterizes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers bounds concurrently executing jobs (default: NumCPU).
	Workers int
	// QueueDepth bounds jobs waiting to start; a submission past the limit
	// is shed with 429 + Retry-After (default 256).
	QueueDepth int
	// SweepWorkers caps one sweep job's inner fan-out (default 4). A sweep
	// occupies a single queue worker; its points parallelize inside it.
	SweepWorkers int
	// MaxBodyBytes bounds any request body (default 32 MiB).
	MaxBodyBytes int64
	// Limits bound what one spec may ask for.
	Limits Limits
	// MaxSweepPoints bounds the expanded point count of one sweep
	// (default 512).
	MaxSweepPoints int
	// JobTimeout bounds one job's execution (default 120s).
	JobTimeout time.Duration
	// RetainJobs bounds how many jobs the store keeps; oldest terminal
	// jobs are evicted first, queued/running never (default 16384).
	RetainJobs int
	// CheckEvery is the simulation cancellation/checkpoint stride
	// (default memsys.DefaultCheckEvery).
	CheckEvery int
	// Durability, when non-nil, turns on the write-ahead log and the
	// content-addressed result cache (see OpenDurability). Nil keeps the
	// server fully in-memory.
	Durability *Durability
	// InspectEvery, when positive, captures an occupancy frame every that
	// many accesses on simulate and multicore jobs, serves them live on
	// GET /v1/jobs/{id}/inspect (SSE) and retains them for time travel on
	// GET /v1/jobs/{id}/inspect/frames. Zero disables inspection (both
	// endpoints 404).
	InspectEvery int
	// InspectFrameBytes budgets the retained-frame store; frames are
	// evicted oldest-first globally past it (default 16 MiB when
	// inspection is on; <0 disables retention, keeping only the live
	// stream).
	InspectFrameBytes int64
	// InspectHeartbeat is the SSE keep-alive comment cadence (default
	// 15s; tests shorten it).
	InspectHeartbeat time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	c.Limits = c.Limits.withDefaults()
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 512
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 16384
	}
	if c.InspectEvery > 0 && c.InspectFrameBytes == 0 {
		c.InspectFrameBytes = 16 << 20
	}
	return c
}

// Server is the colserved HTTP service: a bounded job queue in front of
// the simulation substrates, with live metrics.
type Server struct {
	cfg       Config
	store     *store
	pool      *runner.Pool[*Job]
	metrics   *Metrics
	mux       *http.ServeMux
	dur       *Durability // nil on an in-memory server
	recovery  RecoveryStats
	draining  chan struct{} // closed when Drain begins
	drainOnce sync.Once
	inspect   *inspectHub // nil unless Config.InspectEvery > 0

	// fabricGauges, when set (before serving traffic), is scraped into
	// /metrics — the worker role's heartbeat agent supplies it.
	fabricGauges func() FabricGauges

	// testHook, when set, runs at the head of every job; tests use it to
	// pin a job in the running state deterministically.
	testHook func(ctx context.Context, j *Job)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		store:    newStore(cfg.RetainJobs),
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		dur:      cfg.Durability,
		draining: make(chan struct{}),
	}
	if cfg.InspectEvery > 0 {
		s.inspect = newInspectHub(cfg.InspectEvery, cfg.InspectFrameBytes, cfg.InspectHeartbeat)
		// An evicted job takes its inspect surface (feed + retained
		// frames) with it.
		s.store.onEvict = s.inspect.drop
	}
	s.pool = runner.NewPool(cfg.Workers, cfg.QueueDepth, s.runJob)

	// Boot recovery: replay the WAL before any HTTP traffic — accepted-
	// but-unrun jobs re-enqueue, in-flight simulate jobs resume from
	// their last checkpoint, and the log compacts to the survivors.
	if s.dur != nil {
		s.recovery = s.recoverJobs(s.dur.pending)
		s.dur.pending = nil
	}

	s.mux.Handle("POST /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	s.mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJob))
	s.mux.Handle("GET /v1/jobs/{id}/inspect", s.instrument("/v1/jobs/{id}/inspect", s.handleInspect))
	s.mux.Handle("GET /v1/jobs/{id}/inspect/frames", s.instrument("/v1/jobs/{id}/inspect/frames", s.handleInspectFrames))
	s.mux.Handle("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobs))
	s.mux.Handle("GET /v1/results/{digest}", s.instrument("/v1/results/{digest}", s.handleResult))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	return s
}

// Recovery reports what boot replay did (zero value on an in-memory
// server or a clean boot).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (tests and embedding servers read it).
func (s *Server) MetricsRegistry() *Metrics { return s.metrics }

// SetFabricGauges installs the fabric-agent gauge source rendered on
// /metrics. Call before the server takes traffic.
func (s *Server) SetFabricGauges(fn func() FabricGauges) { s.fabricGauges = fn }

// FabricStatus is the heartbeat payload a fabric worker reports: the job
// ledger summed by outcome plus the live queue gauges.
func (s *Server) FabricStatus() (ledger map[string]int64, queued, running int) {
	return s.metrics.OutcomeTotals(), s.pool.Pending(), s.pool.Running()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain gracefully shuts the queue down: new submissions are shed with
// 503, jobs that never started are canceled with a retriable status, and
// in-flight jobs get until ctx expires to complete — after which their
// contexts are canceled and the cooperative simulation loop stops them at
// the next checkpoint. Returns nil when everything settled inside the
// deadline.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.draining) })
	// On a durable server the WAL gets a final sync no matter how the
	// drain ends: every record appended so far — accepted records of the
	// jobs we are about to hand back, checkpoints of the ones we cancel —
	// must be on stable storage before the process exits, because those
	// records are exactly what the next boot replays.
	defer func() {
		if s.dur != nil {
			_ = s.dur.Log.Sync()
		}
	}()
	discarded, err := s.pool.Drain(ctx)
	for _, j := range discarded {
		msg := "server draining before the job started; resubmit"
		if j.Digest != "" {
			// The accepted record stays in the WAL: a restart re-enqueues
			// this job, so the client can poll the result by digest
			// instead of re-uploading spec and trace bytes.
			msg = "server draining before the job started; job is journaled — poll /v1/results/" +
				j.Digest + " after restart, or resubmit"
		}
		j.finish(colcache.StateCanceled, true, msg, nil, nil)
		s.metrics.Jobs.Add(1, j.Kind, "canceled")
		s.observeJobLatency(j)
	}
	if err != nil {
		// Deadline passed with jobs still running: cancel their contexts
		// and give the cooperative loops a moment to unwind.
		s.pool.Kill()
		grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err2 := s.pool.Drain(grace); err2 != nil {
			return fmt.Errorf("drain: %d jobs still running after cancellation: %w", s.pool.Running(), err2)
		}
		return err
	}
	return nil
}

// --- job execution -----------------------------------------------------------

func (s *Server) runJob(poolCtx context.Context, j *Job) {
	ctx, cancel := context.WithTimeout(poolCtx, s.cfg.JobTimeout)
	defer cancel()
	if s.testHook != nil {
		s.testHook(ctx, j)
	}
	s.appendRecord(recStarted, recMeta{ID: j.ID}, nil, false)

	var err error
	switch j.Kind {
	case "sweep":
		err = s.runSweep(ctx, j)
	case "multicore":
		err = s.runMulticore(ctx, j)
	default:
		err = s.runSimulate(ctx, j)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			// No terminal WAL record: the accepted record (and the
			// checkpoints journaled so far) keep the job recoverable — a
			// restart against the same data dir resumes it.
			j.finish(colcache.StateCanceled, true, "canceled during server drain", nil, nil)
			s.metrics.Jobs.Add(1, j.Kind, "canceled")
		case errors.Is(err, context.DeadlineExceeded):
			msg := fmt.Sprintf("job exceeded timeout %s", s.cfg.JobTimeout)
			j.finish(colcache.StateFailed, false, msg, nil, nil)
			s.appendRecord(recFailed, recMeta{ID: j.ID, Msg: msg}, nil, true)
			s.metrics.Jobs.Add(1, j.Kind, "failed")
		default:
			j.finish(colcache.StateFailed, false, err.Error(), nil, nil)
			s.appendRecord(recFailed, recMeta{ID: j.ID, Msg: err.Error()}, nil, true)
			s.metrics.Jobs.Add(1, j.Kind, "failed")
		}
	} else {
		s.metrics.Jobs.Add(1, j.Kind, "done")
	}
	s.observeJobLatency(j)
}

// commitResult finishes a successful job: the result is published to
// pollers, memoized in the content-addressed cache, and the done record
// committed — after which the job is gone from the WAL's live set.
func (s *Server) commitResult(j *Job, res *colcache.SimResult, sweep *colcache.SweepResult) {
	// Durable state first, publication last: a poller that observes the
	// terminal state and immediately resubmits the same spec must find
	// the memoized result already in place.
	if s.dur != nil && j.Digest != "" {
		if blob := storeResult(j, res, sweep); blob != nil {
			_ = s.dur.Results.Put(j.Digest, blob, false)
		}
		s.appendRecord(recDone, recMeta{ID: j.ID, Digest: j.Digest}, nil, true)
	}
	j.finish(colcache.StateDone, false, "", res, sweep)
}

func (s *Server) observeJobLatency(j *Job) {
	if d, ok := j.latency(); ok {
		s.metrics.JobSeconds.Observe(d.Seconds(), j.Kind)
	}
}

func (s *Server) runSimulate(ctx context.Context, j *Job) error {
	b, err := BuildSim(j.Spec, j.Upload, s.cfg.Limits)
	if err != nil {
		return err
	}
	j.setRunning(b.Sys)
	total := int64(len(b.Trace))
	var resume memsys.Checkpoint
	if j.Resume != nil {
		resume = *j.Resume
	}
	var lastCycles, lastAccesses int64
	opts := memsys.RunOptions{
		CheckEvery: s.cfg.CheckEvery,
		OnCheckpoint: func(done int, st memsys.Stats) {
			s.metrics.SimCycles.Add(st.Cycles - lastCycles)
			s.metrics.SimAccesses.Add(st.MemAccesses - lastAccesses)
			lastCycles, lastAccesses = st.Cycles, st.MemAccesses
			p := colcache.JobProgress{
				AccessesDone:  int64(done),
				AccessesTotal: total,
				Cycles:        st.Cycles,
				CacheMissRate: st.Cache.MissRate(),
			}
			if b.Ctl != nil {
				p.Decisions = len(b.Ctl.Decisions())
			}
			j.publishProgress(p)
			// Journal progress without a sync — a lost checkpoint only
			// costs recovery time, never correctness. The final position
			// is skipped: the done record supersedes it.
			if int64(done) < total {
				cp := memsys.Checkpoint{Done: int64(done), Cycles: st.Cycles}
				s.appendRecord(recCheckpoint, recMeta{ID: j.ID, Checkpoint: &cp}, nil, false)
			}
		},
	}
	s.wireSimInspection(j, b, &opts)
	cycles, err := b.Sys.RunContextFrom(ctx, b.Trace, resume, opts)
	if err != nil {
		return err
	}
	res := Result(j.Spec.Label, b, cycles, j.Spec.Machine)
	s.commitResult(j, &res, nil)
	return nil
}

// runMulticore executes a multicore co-run job — the deterministic serial
// stepper, or the bit-identical epoch-parallel stepper when the spec asks
// for it — with cooperative cancellation at the same checkpoint stride the
// single-core path uses.
func (s *Server) runMulticore(ctx context.Context, j *Job) error {
	b, err := BuildMulticore(j.Spec, s.cfg.Limits)
	if err != nil {
		return err
	}
	j.setRunning(nil)
	s.wireMulticoreInspection(j, b)
	run := b.M.RunContext
	if b.Parallel {
		run = func(ctx context.Context, checkEvery int, onCheckpoint func(int64)) error {
			return b.M.RunParallelContext(ctx, b.Epoch, checkEvery, onCheckpoint)
		}
	}
	var lastCycles, lastAccesses int64
	err = run(ctx, s.cfg.CheckEvery, func(done int64) {
		st := b.M.Stats()
		var acc, miss, mem int64
		for _, c := range st.Cores {
			acc += c.L1.Accesses
			miss += c.L1.Misses
			mem += c.MemAccesses
		}
		s.metrics.SimCycles.Add(st.Cycles - lastCycles)
		s.metrics.SimAccesses.Add(mem - lastAccesses)
		lastCycles, lastAccesses = st.Cycles, mem
		p := colcache.JobProgress{
			AccessesDone:  done,
			AccessesTotal: b.TraceAccesses,
			Cycles:        st.Cycles,
		}
		if acc > 0 {
			p.CacheMissRate = float64(miss) / float64(acc)
		}
		j.publishProgress(p)
	})
	if err != nil {
		return err
	}
	res := MulticoreResult(j.Spec.Label, b)
	s.commitResult(j, &res, nil)
	return nil
}

// expandSweep crosses the base spec with the non-empty axes.
func expandSweep(sw colcache.SweepSpec, maxPoints int) ([]colcache.SimSpec, error) {
	// Axis entries must be explicit: a zero would silently decay to the
	// machine default and mislabel the point.
	for _, v := range sw.Sets {
		if v <= 0 {
			return nil, fmt.Errorf("sets axis value %d: want > 0", v)
		}
	}
	for _, v := range sw.Ways {
		if v <= 0 {
			return nil, fmt.Errorf("ways axis value %d: want > 0", v)
		}
	}
	for _, v := range sw.MissPenalties {
		if v <= 0 {
			return nil, fmt.Errorf("miss_penalties axis value %d: want > 0", v)
		}
	}
	for _, v := range sw.Policies {
		if v == "" {
			return nil, fmt.Errorf("policies axis has an empty entry")
		}
	}
	sets := sw.Sets
	if len(sets) == 0 {
		sets = []int{sw.Base.Machine.Sets}
	}
	ways := sw.Ways
	if len(ways) == 0 {
		ways = []int{sw.Base.Machine.Ways}
	}
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{sw.Base.Machine.Policy}
	}
	penalties := sw.MissPenalties
	if len(penalties) == 0 {
		penalties = []int{sw.Base.Machine.MissPenalty}
	}
	var workloads []*colcache.WorkloadSpec
	if len(sw.Workloads) == 0 {
		workloads = []*colcache.WorkloadSpec{sw.Base.Workload}
	} else {
		for i := range sw.Workloads {
			workloads = append(workloads, &sw.Workloads[i])
		}
	}

	n := len(sets) * len(ways) * len(policies) * len(penalties) * len(workloads)
	if n == 0 {
		return nil, fmt.Errorf("sweep expands to zero points")
	}
	if n > maxPoints {
		return nil, fmt.Errorf("sweep expands to %d points, limit %d", n, maxPoints)
	}
	var out []colcache.SimSpec
	for _, wl := range workloads {
		for _, st := range sets {
			for _, wy := range ways {
				for _, pol := range policies {
					for _, pen := range penalties {
						spec := sw.Base
						spec.Machine.Sets = st
						spec.Machine.Ways = wy
						spec.Machine.Policy = pol
						spec.Machine.MissPenalty = pen
						if wl != nil {
							w := *wl
							spec.Workload = &w
						}
						m := machineWithDefaults(spec.Machine)
						label := fmt.Sprintf("sets=%d ways=%d policy=%s penalty=%d", m.Sets, m.Ways, m.Policy, m.MissPenalty)
						if wl != nil {
							label = "wl=" + wl.Name + " " + label
						}
						spec.Label = label
						out = append(out, spec)
					}
				}
			}
		}
	}
	return out, nil
}

func (s *Server) runSweep(ctx context.Context, j *Job) error {
	points, err := expandSweep(*j.SweepSpec, s.cfg.MaxSweepPoints)
	if err != nil {
		return err
	}
	for i := range points {
		if err := ValidateSim(points[i], false, s.cfg.Limits); err != nil {
			return fmt.Errorf("point %q: %w", points[i].Label, err)
		}
	}
	j.setRunning(nil)
	j.publishProgress(colcache.JobProgress{PointsTotal: len(points)})

	workers := j.SweepSpec.Workers
	if workers <= 0 || workers > s.cfg.SweepWorkers {
		workers = s.cfg.SweepWorkers
	}
	jobs := make([]experiments.SpecJob, len(points))
	for i := range points {
		spec := points[i]
		jobs[i] = experiments.SpecJob{
			Label: spec.Label,
			Build: func() (*memsys.System, memtrace.Trace, error) {
				b, err := BuildSim(spec, nil, s.cfg.Limits)
				if err != nil {
					return nil, nil, err
				}
				return b.Sys, b.Trace, nil
			},
			After: func(sys *memsys.System, res *experiments.SpecResult) error {
				s.metrics.SimCycles.Add(res.Stats.Cycles)
				s.metrics.SimAccesses.Add(res.Stats.MemAccesses)
				// Rebuild the wire result from the finished machine.
				b := &Built{Sys: sys}
				if spec.Workload != nil {
					b.Workload = spec.Workload.Name
				}
				r := Result(spec.Label, b, res.Cycles, spec.Machine)
				r.TraceAccesses = res.Stats.MemAccesses
				res.Extra = colcache.SweepPoint{Label: spec.Label, Machine: spec.Machine, Result: r}
				return nil
			},
		}
	}
	results, err := experiments.RunSpecs(ctx, jobs, workers, s.cfg.CheckEvery, func(done, total int) {
		j.publishProgress(colcache.JobProgress{PointsDone: done, PointsTotal: total})
	})
	if err != nil {
		// Unwrap the runner's job attribution so context errors keep their
		// identity for the canceled/timeout classification above.
		return err
	}
	sweep := &colcache.SweepResult{Points: make([]colcache.SweepPoint, len(results))}
	for i, r := range results {
		sweep.Points[i] = r.Extra.(colcache.SweepPoint)
	}
	s.commitResult(j, nil, sweep)
	return nil
}

// --- HTTP handlers -----------------------------------------------------------

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush passes through to the wrapped writer so SSE handlers behind the
// instrumentation wrapper can still stream per-event.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with per-path request counting and latency
// observation, using the route pattern (not the raw URL) as the label so
// cardinality stays bounded.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.RequestSeconds.Observe(time.Since(start).Seconds(), pattern)
		s.metrics.HTTPRequests.Add(1, pattern, strconv.Itoa(rec.code))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, colcache.APIError{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers a shed submission (full queue or draining) with the
// explicit backpressure contract: status + Retry-After.
func writeShed(w http.ResponseWriter, code int, retryAfter int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, colcache.APIError{Error: msg, RetryAfterSeconds: retryAfter})
}

// submit queues a prepared job, converting pool saturation into 429 and
// drain into 503.
func (s *Server) submit(w http.ResponseWriter, j *Job) {
	if s.isDraining() {
		s.metrics.Jobs.Add(1, j.Kind, "rejected")
		writeShed(w, http.StatusServiceUnavailable, 1, "server draining")
		return
	}
	j.state = colcache.StateQueued
	j.Submitted = time.Now()
	s.store.add(j)
	if s.inspect != nil && j.Kind != "sweep" {
		// Whatever path finishes the job — commit, failure, timeout, drain
		// — closes its frame stream with the terminal state as the reason.
		j.onFinish = func(state string) { s.inspect.finish(j.ID, state) }
	}
	// The accepted record is committed BEFORE the job can start (and
	// before the 202 leaves): a started or checkpoint record can then
	// never precede its accepted record in the log, and an acknowledged
	// submission survives any crash after this point.
	if s.dur != nil {
		s.appendRecord(recAccepted,
			recMeta{ID: j.ID, Kind: j.Kind, Digest: j.Digest, Spec: &j.Spec, Sweep: j.SweepSpec},
			encodeTrace(j.Upload), true)
	}
	if err := s.pool.TrySubmit(j); err != nil {
		s.store.remove(j.ID)
		// Neutralize the accepted record — a shed job must not be
		// resurrected at the next boot.
		s.appendRecord(recCanceled, recMeta{ID: j.ID, Msg: "queue full"}, nil, true)
		s.metrics.Jobs.Add(1, j.Kind, "rejected")
		if errors.Is(err, runner.ErrPoolClosed) {
			writeShed(w, http.StatusServiceUnavailable, 1, "server draining")
		} else {
			writeShed(w, http.StatusTooManyRequests, 1,
				fmt.Sprintf("queue full (%d waiting)", s.pool.Pending()))
		}
		return
	}
	s.metrics.Jobs.Add(1, j.Kind, "accepted")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Info())
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	j := &Job{Kind: "simulate"}

	if r.Header.Get("Content-Type") == "application/octet-stream" {
		// Binary trace upload: machine via query parameters, body streamed
		// through the size-limited decoder — an oversized or malformed
		// trace is rejected without ever being fully buffered.
		spec, err := MachineFromQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad query: %v", err)
			return
		}
		j.Spec = spec
		if err := ValidateSim(spec, true, s.cfg.Limits); err != nil {
			writeError(w, http.StatusBadRequest, "bad spec: %v", err)
			return
		}
		tr, err := memtrace.ReadBinaryLimit(r.Body, s.cfg.Limits.MaxTraceAccesses)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, memtrace.ErrTraceTooLarge) {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, "bad trace: %v", err)
			return
		}
		if len(tr) == 0 {
			writeError(w, http.StatusBadRequest, "empty trace")
			return
		}
		j.Upload = tr
		if s.dur != nil {
			j.Digest = SimDigest(spec, encodeTrace(tr))
			if s.serveCached(w, j.Kind, j.Digest, spec.Label) {
				return
			}
		}
		s.submit(w, j)
		return
	}

	var spec colcache.SimSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if err := ValidateSim(spec, false, s.cfg.Limits); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if spec.Multicore != nil {
		j.Kind = "multicore"
	}
	j.Spec = spec
	if s.dur != nil {
		j.Digest = SimDigest(spec, nil)
		if s.serveCached(w, j.Kind, j.Digest, spec.Label) {
			return
		}
	}
	s.submit(w, j)
}

// MachineFromQuery parses the octet-stream submission's machine
// selection. Exported for the fabric coordinator, which must compute the
// same content address the worker will without buffering the trace twice.
func MachineFromQuery(r *http.Request) (colcache.SimSpec, error) {
	q := r.URL.Query()
	var spec colcache.SimSpec
	geti := func(key string) (int, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.Atoi(v)
	}
	var err error
	if spec.Machine.LineBytes, err = geti("line"); err != nil {
		return spec, fmt.Errorf("line: %v", err)
	}
	if spec.Machine.Sets, err = geti("sets"); err != nil {
		return spec, fmt.Errorf("sets: %v", err)
	}
	if spec.Machine.Ways, err = geti("ways"); err != nil {
		return spec, fmt.Errorf("ways: %v", err)
	}
	if spec.Machine.PageBytes, err = geti("page"); err != nil {
		return spec, fmt.Errorf("page: %v", err)
	}
	if spec.Machine.MissPenalty, err = geti("penalty"); err != nil {
		return spec, fmt.Errorf("penalty: %v", err)
	}
	spec.Machine.Policy = q.Get("policy")
	spec.Label = q.Get("label")
	return spec, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var spec colcache.SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	points, err := expandSweep(spec, s.cfg.MaxSweepPoints)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep: %v", err)
		return
	}
	for i := range points {
		if err := ValidateSim(points[i], false, s.cfg.Limits); err != nil {
			writeError(w, http.StatusBadRequest, "bad sweep point %q: %v", points[i].Label, err)
			return
		}
	}
	j := &Job{Kind: "sweep", SweepSpec: &spec, Spec: spec.Base}
	if s.dur != nil {
		j.Digest = SweepDigest(spec)
		if s.serveCached(w, j.Kind, j.Digest, spec.Label) {
			return
		}
	}
	s.submit(w, j)
}

// serveCached answers a submission straight from the result cache,
// reporting whether it did. The cached document comes back as a terminal
// JobInfo with Cached set and no ID — nothing was enqueued, there is
// nothing to poll. The label is re-applied per request: it is
// presentation, deliberately outside the digest.
func (s *Server) serveCached(w http.ResponseWriter, kind, digest, label string) bool {
	if s.dur == nil {
		return false
	}
	blob, ok := s.dur.Results.Get(digest)
	if !ok {
		return false
	}
	var sr colcache.StoredResult
	if err := json.Unmarshal(blob, &sr); err != nil {
		return false
	}
	now := time.Now()
	info := colcache.JobInfo{
		Kind:        kind,
		Label:       label,
		State:       colcache.StateDone,
		Cached:      true,
		Digest:      digest,
		SubmittedAt: now,
		FinishedAt:  &now,
	}
	if sr.Result != nil {
		res := *sr.Result
		res.Label = label
		info.Result = &res
	}
	if sr.Sweep != nil {
		sw := *sr.Sweep
		info.Sweep = &sw
	}
	s.metrics.Jobs.Add(1, kind, "cached")
	writeJSON(w, http.StatusOK, info)
	return true
}

// handleResult serves a finished result out of the content-addressed
// cache by digest — the poll target for clients whose job was shed
// during a drain (the retriable JobInfo names the digest). The document
// is immutable by construction (the digest addresses the inputs that
// produced it), so it carries the strongest cacheability a proxy can
// honor: Cache-Control immutable plus the digest itself as the ETag —
// fabric-forwarded reads revalidate with 304s instead of re-downloading.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if s.dur == nil {
		writeError(w, http.StatusNotFound, "this server has no result cache")
		return
	}
	blob, ok := s.dur.Results.Get(digest)
	if !ok {
		writeError(w, http.StatusNotFound, "no result for digest %q", digest)
		return
	}
	etag := `"` + digest + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if inm := r.Header.Get("If-None-Match"); inm != "" &&
		(inm == "*" || strings.Contains(inm, etag)) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.Info())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	recent := s.store.recent(100)
	list := colcache.JobList{
		Queued:  s.pool.Pending(),
		Running: s.pool.Running(),
		Jobs:    make([]colcache.JobInfo, len(recent)),
	}
	for i, j := range recent {
		list.Jobs[i] = j.Info()
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g := Gauges{
		QueueDepth: s.pool.Pending(),
		Running:    s.pool.Running(),
		Draining:   s.isDraining(),
	}
	if s.dur != nil {
		rc := s.dur.Results.Stats()
		g.Result = &rc
		ws := s.dur.Log.Stats()
		g.WAL = &ws
	}
	if s.fabricGauges != nil {
		fg := s.fabricGauges()
		g.Fabric = &fg
	}
	if s.inspect != nil {
		ig := s.inspect.gauges()
		g.Inspect = &ig
	}
	s.metrics.Write(w, g)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeShed(w, http.StatusServiceUnavailable, 1, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
