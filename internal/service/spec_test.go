package service

import (
	"strings"
	"testing"

	colcache "colcache"
)

func TestValidateMachine(t *testing.T) {
	lim := DefaultLimits
	cases := []struct {
		name string
		m    colcache.MachineSpec
		want string // substring of the error, "" = valid
	}{
		{"defaults", colcache.MachineSpec{}, ""},
		{"explicit", colcache.MachineSpec{LineBytes: 64, Sets: 128, Ways: 8, PageBytes: 4096, Policy: "plru", MissPenalty: 40}, ""},
		{"bad line", colcache.MachineSpec{LineBytes: 48}, "line_bytes"},
		{"sets not pow2", colcache.MachineSpec{Sets: 3}, "sets"},
		{"sets too big", colcache.MachineSpec{Sets: 1 << 20}, "sets"},
		{"too many ways", colcache.MachineSpec{Ways: 65}, "ways"},
		{"page under line", colcache.MachineSpec{LineBytes: 64, PageBytes: 32}, "page_bytes"},
		{"bad policy", colcache.MachineSpec{Policy: "mru"}, "policy"},
		{"negative penalty", colcache.MachineSpec{MissPenalty: -1}, "miss_penalty"},
	}
	for _, tc := range cases {
		err := ValidateMachine(tc.m, lim)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateSimTraceSources(t *testing.T) {
	lim := DefaultLimits
	wl := &colcache.WorkloadSpec{Name: "stream"}

	if err := ValidateSim(colcache.SimSpec{Workload: wl}, false, lim); err != nil {
		t.Fatalf("workload source: %v", err)
	}
	if err := ValidateSim(colcache.SimSpec{TraceText: "R 0\n"}, false, lim); err != nil {
		t.Fatalf("trace_text source: %v", err)
	}
	if err := ValidateSim(colcache.SimSpec{}, true, lim); err != nil {
		t.Fatalf("upload source: %v", err)
	}
	if err := ValidateSim(colcache.SimSpec{}, false, lim); err == nil {
		t.Fatal("no source accepted")
	}
	if err := ValidateSim(colcache.SimSpec{Workload: wl, TraceText: "R 0\n"}, false, lim); err == nil {
		t.Fatal("two sources accepted")
	}
	if err := ValidateSim(colcache.SimSpec{Workload: wl}, true, lim); err == nil {
		t.Fatal("workload plus upload accepted")
	}
}

func TestValidateSimMapsAndAdaptive(t *testing.T) {
	lim := DefaultLimits
	wl := &colcache.WorkloadSpec{Name: "stream"}
	base := colcache.SimSpec{Workload: wl, Machine: colcache.MachineSpec{Ways: 4}}

	ok := base
	ok.Maps = []colcache.MapSpec{{Base: 0, Size: 4096, Columns: []int{0, 1}}}
	if err := ValidateSim(ok, false, lim); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}

	bad := base
	bad.Maps = []colcache.MapSpec{{Base: 0, Size: 4096, Columns: []int{4}}}
	if err := ValidateSim(bad, false, lim); err == nil {
		t.Fatal("column beyond ways accepted")
	}
	bad.Maps = []colcache.MapSpec{{Base: 0, Size: 0, Columns: []int{0}}}
	if err := ValidateSim(bad, false, lim); err == nil {
		t.Fatal("zero-size map accepted")
	}

	// Adaptive needs at least tints <= ways: 3 maps + default tint = 4 tints
	// fits 4 ways, 4 maps does not.
	ad := base
	ad.Adaptive = &colcache.AdaptiveSpec{}
	for i := 0; i < 3; i++ {
		ad.Maps = append(ad.Maps, colcache.MapSpec{Base: uint64(i) << 16, Size: 4096, Columns: []int{i}})
	}
	if err := ValidateSim(ad, false, lim); err != nil {
		t.Fatalf("3 maps + adaptive on 4 ways rejected: %v", err)
	}
	ad.Maps = append(ad.Maps, colcache.MapSpec{Base: 1 << 20, Size: 4096, Columns: []int{3}})
	if err := ValidateSim(ad, false, lim); err == nil {
		t.Fatal("adaptive with more tints than columns accepted")
	}
}

// TestBuildWorkloadRegistry exercises every name the validator admits.
func TestBuildWorkloadRegistry(t *testing.T) {
	names := []string{
		"stream", "strided", "random", "chase", "phaseshift", "writesweep",
		"matmul", "fir", "histogram", "mpeg-dequant", "mpeg-plus", "mpeg-idct", "gzip",
	}
	for _, name := range names {
		w := colcache.WorkloadSpec{Name: name, N: 16}
		if name == "fir" {
			w.N = 64 // must cover the default 32-tap window
		}
		if err := validateWorkload(w, DefaultLimits); err != nil {
			t.Errorf("%s: validate: %v", name, err)
			continue
		}
		prog, err := BuildWorkload(w, 32)
		if err != nil {
			t.Errorf("%s: build: %v", name, err)
			continue
		}
		if len(prog.Trace) == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
	if _, err := BuildWorkload(colcache.WorkloadSpec{Name: "nope"}, 32); err == nil {
		t.Fatal("unknown workload built")
	}
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	w := colcache.WorkloadSpec{Name: "random", N: 500, Seed: 7}
	a, err := BuildWorkload(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkload(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestBuildSimEndToEnd(t *testing.T) {
	spec := colcache.SimSpec{
		Label:   "e2e",
		Machine: colcache.MachineSpec{Sets: 32, Ways: 4},
		Workload: &colcache.WorkloadSpec{
			Name: "strided", SizeBytes: 1 << 12, Stride: 64, Passes: 2,
		},
		Maps:     []colcache.MapSpec{{Name: "buf", Base: 0, Size: 1 << 12, Columns: []int{0, 1}}},
		Adaptive: &colcache.AdaptiveSpec{EpochAccesses: 64},
	}
	if err := ValidateSim(spec, false, DefaultLimits); err != nil {
		t.Fatal(err)
	}
	b, err := BuildSim(spec, nil, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ctl == nil {
		t.Fatal("adaptive controller not attached")
	}
	cycles := b.Sys.Run(b.Trace)
	res := Result(spec.Label, b, cycles, spec.Machine)
	if res.Cycles != cycles || res.TraceAccesses != int64(len(b.Trace)) {
		t.Fatalf("result mismatch: %+v", res)
	}
	if res.Cache.Accesses == 0 || res.Adaptive == nil {
		t.Fatalf("missing counters: %+v", res)
	}
	if len(res.Tints) < 2 {
		t.Fatalf("want default + mapped tint views, got %v", res.Tints)
	}
}

func TestBuildSimTraceLimit(t *testing.T) {
	lim := Limits{MaxTraceAccesses: 10}
	spec := colcache.SimSpec{Workload: &colcache.WorkloadSpec{Name: "random", N: 100}}
	if _, err := BuildSim(spec, nil, lim); err == nil {
		t.Fatal("over-limit generated trace accepted")
	}
}

func TestExpandSweep(t *testing.T) {
	sw := colcache.SweepSpec{
		Base:     colcache.SimSpec{Workload: &colcache.WorkloadSpec{Name: "stream"}},
		Sets:     []int{16, 32},
		Ways:     []int{2, 4, 8},
		Policies: []string{"lru", "fifo"},
	}
	points, err := expandSweep(sw, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("want 2*3*2 = 12 points, got %d", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Label] {
			t.Fatalf("duplicate label %q", p.Label)
		}
		seen[p.Label] = true
		if err := ValidateSim(p, false, DefaultLimits); err != nil {
			t.Fatalf("point %q invalid: %v", p.Label, err)
		}
	}
	if _, err := expandSweep(sw, 11); err == nil {
		t.Fatal("points over cap accepted")
	}
}
