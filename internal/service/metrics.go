package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"colcache/internal/resultcache"
	"colcache/internal/wal"
)

// Hand-rolled Prometheus text exposition (no client library — the repo is
// stdlib-only). Three primitives cover colserved's needs: labeled
// counters, gauges computed at scrape time, and fixed-bucket histograms.
// Everything is atomic or mutex-guarded so the simulation workers and the
// scrape handler never race.

// counterVec is a counter family with one label set per child.
type counterVec struct {
	name, help string
	labels     []string // label names, fixed order
	mu         sync.Mutex
	children   map[string]*atomic.Int64 // key = joined label values
}

func newCounterVec(name, help string, labels ...string) *counterVec {
	return &counterVec{name: name, help: help, labels: labels, children: make(map[string]*atomic.Int64)}
}

func (c *counterVec) with(values ...string) *atomic.Int64 {
	if len(values) != len(c.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d labels, got %d", c.name, len(c.labels), len(values)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	child, ok := c.children[key]
	if !ok {
		child = &atomic.Int64{}
		c.children[key] = child
	}
	return child
}

// Add increments the child for the given label values.
func (c *counterVec) Add(delta int64, values ...string) { c.with(values...).Add(delta) }

// Get reads a child's value (0 if never touched).
func (c *counterVec) Get(values ...string) int64 { return c.with(values...).Load() }

// sumBy folds every child into totals keyed by one label's value.
func (c *counterVec) sumBy(labelIdx int) map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64)
	for k, child := range c.children {
		values := splitKey(k, len(c.labels))
		out[values[labelIdx]] += child.Load()
	}
	return out
}

func (c *counterVec) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	c.mu.Lock()
	keys := make([]string, 0, len(c.children))
	for k := range c.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := c.children[k].Load()
		fmt.Fprintf(w, "%s%s %d\n", c.name, renderLabels(c.labels, splitKey(k, len(c.labels))), v)
	}
	c.mu.Unlock()
}

func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '\x00' {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	s := "{"
	for i := range names {
		if i > 0 {
			s += ","
		}
		s += names[i] + `="` + values[i] + `"`
	}
	return s + "}"
}

// histogram is a fixed-bucket cumulative histogram of float64 samples.
type histogram struct {
	name, help string
	labels     []string
	bounds     []float64 // upper bounds, ascending; +Inf implicit

	mu       sync.Mutex
	children map[string]*histChild
}

type histChild struct {
	counts  []atomic.Int64 // one per bound, plus +Inf at the end
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// defLatencyBounds suit request/job latencies from tens of microseconds to
// tens of seconds.
var defLatencyBounds = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func newHistogram(name, help string, bounds []float64, labels ...string) *histogram {
	return &histogram{name: name, help: help, labels: labels, bounds: bounds, children: make(map[string]*histChild)}
}

func (h *histogram) child(values ...string) *histChild {
	if len(values) != len(h.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d labels, got %d", h.name, len(h.labels), len(values)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x00"
		}
		key += v
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c, ok := h.children[key]
	if !ok {
		c = &histChild{counts: make([]atomic.Int64, len(h.bounds)+1)}
		h.children[key] = c
	}
	return c
}

// Observe records one sample for the given label values.
func (h *histogram) Observe(v float64, values ...string) {
	c := h.child(values...)
	idx := sort.SearchFloat64s(h.bounds, v)
	c.counts[idx].Add(1)
	c.count.Add(1)
	for {
		old := c.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads a child's total sample count.
func (h *histogram) Count(values ...string) int64 { return h.child(values...).count.Load() }

func (h *histogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	h.mu.Lock()
	keys := make([]string, 0, len(h.children))
	for k := range h.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := h.children[k]
		values := splitKey(k, len(h.labels))
		cum := int64(0)
		for i, b := range h.bounds {
			cum += c.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
				renderLabels(append(append([]string{}, h.labels...), "le"),
					append(append([]string{}, values...), formatBound(b))), cum)
		}
		cum += c.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
			renderLabels(append(append([]string{}, h.labels...), "le"),
				append(append([]string{}, values...), "+Inf")), cum)
		sum := math.Float64frombits(c.sumBits.Load())
		fmt.Fprintf(w, "%s_sum%s %g\n", h.name, renderLabels(h.labels, values), sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, renderLabels(h.labels, values), c.count.Load())
	}
	h.mu.Unlock()
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// Metrics is colserved's registry.
type Metrics struct {
	// jobs_total{kind,outcome}: accepted, rejected (shed with 429/503),
	// done, failed, canceled. accepted = done + failed + canceled once the
	// server is idle — the invariant colload cross-checks.
	Jobs *counterVec
	// http_requests_total{path,code}
	HTTPRequests *counterVec
	// request latency histogram per path.
	RequestSeconds *histogram
	// end-to-end job latency (submit to terminal state) per kind.
	JobSeconds *histogram
	// simulation work counters, for cycles/sec rates.
	SimCycles   atomic.Int64
	SimAccesses atomic.Int64

	start time.Time

	// scrape-to-scrape rate state for the cycles/sec gauge.
	scrapeMu   sync.Mutex
	lastScrape time.Time
	lastCycles int64
	lastRate   float64
}

// NewMetrics builds the registry.
func NewMetrics() *Metrics {
	now := time.Now()
	return &Metrics{
		Jobs:           newCounterVec("colserved_jobs_total", "Jobs by kind and outcome (accepted, rejected, done, failed, canceled).", "kind", "outcome"),
		HTTPRequests:   newCounterVec("colserved_http_requests_total", "HTTP requests by path and status code.", "path", "code"),
		RequestSeconds: newHistogram("colserved_request_seconds", "HTTP request latency by path.", defLatencyBounds, "path"),
		JobSeconds:     newHistogram("colserved_job_seconds", "Job latency from submission to terminal state, by kind.", defLatencyBounds, "kind"),
		start:          now,
		lastScrape:     now,
	}
}

// OutcomeTotals sums the jobs ledger over kinds, keyed by outcome
// (accepted, done, failed, canceled, cached, recovered, rejected) — the
// payload a fabric worker reports in its heartbeats so the coordinator
// can reconcile books per node.
func (m *Metrics) OutcomeTotals() map[string]int64 { return m.Jobs.sumBy(1) }

// FabricGauges is a fabric worker's agent state, rendered on /metrics
// when the server runs with -role worker.
type FabricGauges struct {
	Attached           bool    // at least one heartbeat has been acknowledged
	Heartbeats         int64   // acknowledged heartbeats
	Failures           int64   // heartbeats that failed or were rejected
	LastBeatAgeSeconds float64 // age of the last acknowledged heartbeat
}

// Gauges are the live values rendered at scrape time; the server supplies
// them so the registry needs no back-pointer.
type Gauges struct {
	QueueDepth int
	Running    int
	Draining   bool
	// Result and WAL are nil on an in-memory server; a durable server
	// passes snapshots of the result cache and write-ahead log counters.
	Result *resultcache.Counters
	WAL    *wal.Stats
	// Fabric is nil unless the server is a fabric worker.
	Fabric *FabricGauges
	// Inspect is nil unless live inspection is enabled.
	Inspect *InspectGauges
}

// InspectGauges snapshots the live-inspection subsystem for /metrics.
type InspectGauges struct {
	Streams        int64 // attached SSE clients
	FramesCaptured int64 // frames captured across all jobs
	FramesDropped  int64 // frames lost to slow SSE clients
	RetainedJobs   int   // jobs with retained time-travel frames
	RetainedFrames int   // retained frames
	RetainedBytes  int64 // serialized bytes retained
}

// Write renders the whole registry in Prometheus text exposition format.
func (m *Metrics) Write(w io.Writer, g Gauges) {
	m.Jobs.write(w)
	m.HTTPRequests.write(w)
	m.RequestSeconds.write(w)
	m.JobSeconds.write(w)

	fmt.Fprintf(w, "# HELP colserved_queue_depth Jobs waiting to start.\n# TYPE colserved_queue_depth gauge\ncolserved_queue_depth %d\n", g.QueueDepth)
	fmt.Fprintf(w, "# HELP colserved_jobs_running Jobs executing right now.\n# TYPE colserved_jobs_running gauge\ncolserved_jobs_running %d\n", g.Running)
	draining := 0
	if g.Draining {
		draining = 1
	}
	fmt.Fprintf(w, "# HELP colserved_draining Whether the server is draining.\n# TYPE colserved_draining gauge\ncolserved_draining %d\n", draining)

	cycles := m.SimCycles.Load()
	accesses := m.SimAccesses.Load()
	fmt.Fprintf(w, "# HELP colserved_sim_cycles_total Simulated cycles executed.\n# TYPE colserved_sim_cycles_total counter\ncolserved_sim_cycles_total %d\n", cycles)
	fmt.Fprintf(w, "# HELP colserved_sim_accesses_total Simulated memory accesses executed.\n# TYPE colserved_sim_accesses_total counter\ncolserved_sim_accesses_total %d\n", accesses)

	// cycles/sec over the interval since the previous scrape (whole-process
	// average on the first scrape).
	m.scrapeMu.Lock()
	now := time.Now()
	dt := now.Sub(m.lastScrape).Seconds()
	if dt > 0.01 {
		m.lastRate = float64(cycles-m.lastCycles) / dt
		m.lastScrape = now
		m.lastCycles = cycles
	}
	rate := m.lastRate
	m.scrapeMu.Unlock()
	fmt.Fprintf(w, "# HELP colserved_sim_cycles_per_second Simulated cycles per wall-clock second, over the last scrape interval.\n# TYPE colserved_sim_cycles_per_second gauge\ncolserved_sim_cycles_per_second %g\n", rate)

	if g.Result != nil {
		rc := g.Result
		fmt.Fprintf(w, "# HELP colserved_result_cache_hits_total Result cache lookups that returned a stored blob.\n# TYPE colserved_result_cache_hits_total counter\ncolserved_result_cache_hits_total %d\n", rc.Hits)
		fmt.Fprintf(w, "# HELP colserved_result_cache_misses_total Result cache lookups that found nothing.\n# TYPE colserved_result_cache_misses_total counter\ncolserved_result_cache_misses_total %d\n", rc.Misses)
		fmt.Fprintf(w, "# HELP colserved_result_cache_puts_total Results stored in the cache.\n# TYPE colserved_result_cache_puts_total counter\ncolserved_result_cache_puts_total %d\n", rc.Puts)
		fmt.Fprintf(w, "# HELP colserved_result_cache_evictions_total Results evicted to stay under the byte budget.\n# TYPE colserved_result_cache_evictions_total counter\ncolserved_result_cache_evictions_total %d\n", rc.Evictions)
		fmt.Fprintf(w, "# HELP colserved_result_cache_quarantined_total Stored blobs that failed checksum verification and were quarantined.\n# TYPE colserved_result_cache_quarantined_total counter\ncolserved_result_cache_quarantined_total %d\n", rc.Quarantined)
		fmt.Fprintf(w, "# HELP colserved_result_cache_bytes Bytes currently stored in the result cache.\n# TYPE colserved_result_cache_bytes gauge\ncolserved_result_cache_bytes %d\n", rc.Bytes)
		fmt.Fprintf(w, "# HELP colserved_result_cache_entries Results currently indexed.\n# TYPE colserved_result_cache_entries gauge\ncolserved_result_cache_entries %d\n", rc.Entries)
	}
	if g.WAL != nil {
		ws := g.WAL
		fmt.Fprintf(w, "# HELP colserved_wal_records_total Records appended to the write-ahead log since open.\n# TYPE colserved_wal_records_total counter\ncolserved_wal_records_total %d\n", ws.Records)
		fmt.Fprintf(w, "# HELP colserved_wal_syncs_total fsync commits of the write-ahead log.\n# TYPE colserved_wal_syncs_total counter\ncolserved_wal_syncs_total %d\n", ws.Syncs)
		fmt.Fprintf(w, "# HELP colserved_wal_bytes Size of the write-ahead log file.\n# TYPE colserved_wal_bytes gauge\ncolserved_wal_bytes %d\n", ws.Bytes)
		fmt.Fprintf(w, "# HELP colserved_wal_recovered_records Records replayed from the log at the last open.\n# TYPE colserved_wal_recovered_records gauge\ncolserved_wal_recovered_records %d\n", ws.Recovered)
		fmt.Fprintf(w, "# HELP colserved_wal_dropped_bytes Bytes of torn or corrupt tail truncated at the last open.\n# TYPE colserved_wal_dropped_bytes gauge\ncolserved_wal_dropped_bytes %d\n", ws.Dropped)
	}

	if g.Fabric != nil {
		fg := g.Fabric
		attached := 0
		if fg.Attached {
			attached = 1
		}
		fmt.Fprintf(w, "# HELP colserved_fabric_attached Whether this worker has joined a coordinator.\n# TYPE colserved_fabric_attached gauge\ncolserved_fabric_attached %d\n", attached)
		fmt.Fprintf(w, "# HELP colserved_fabric_heartbeats_total Heartbeats acknowledged by the coordinator.\n# TYPE colserved_fabric_heartbeats_total counter\ncolserved_fabric_heartbeats_total %d\n", fg.Heartbeats)
		fmt.Fprintf(w, "# HELP colserved_fabric_heartbeat_failures_total Heartbeats that failed or were rejected.\n# TYPE colserved_fabric_heartbeat_failures_total counter\ncolserved_fabric_heartbeat_failures_total %d\n", fg.Failures)
		fmt.Fprintf(w, "# HELP colserved_fabric_last_heartbeat_age_seconds Age of the last acknowledged heartbeat.\n# TYPE colserved_fabric_last_heartbeat_age_seconds gauge\ncolserved_fabric_last_heartbeat_age_seconds %g\n", fg.LastBeatAgeSeconds)
	}

	if g.Inspect != nil {
		ig := g.Inspect
		fmt.Fprintf(w, "# HELP colserved_inspect_streams Attached live-inspection SSE clients.\n# TYPE colserved_inspect_streams gauge\ncolserved_inspect_streams %d\n", ig.Streams)
		fmt.Fprintf(w, "# HELP colserved_inspect_frames_total Occupancy frames captured across all jobs.\n# TYPE colserved_inspect_frames_total counter\ncolserved_inspect_frames_total %d\n", ig.FramesCaptured)
		fmt.Fprintf(w, "# HELP colserved_inspect_dropped_total Frames dropped to slow SSE clients.\n# TYPE colserved_inspect_dropped_total counter\ncolserved_inspect_dropped_total %d\n", ig.FramesDropped)
		fmt.Fprintf(w, "# HELP colserved_inspect_retained_jobs Jobs with retained time-travel frames.\n# TYPE colserved_inspect_retained_jobs gauge\ncolserved_inspect_retained_jobs %d\n", ig.RetainedJobs)
		fmt.Fprintf(w, "# HELP colserved_inspect_retained_frames Retained time-travel frames.\n# TYPE colserved_inspect_retained_frames gauge\ncolserved_inspect_retained_frames %d\n", ig.RetainedFrames)
		fmt.Fprintf(w, "# HELP colserved_inspect_retained_bytes Serialized bytes of retained frames.\n# TYPE colserved_inspect_retained_bytes gauge\ncolserved_inspect_retained_bytes %d\n", ig.RetainedBytes)
	}

	fmt.Fprintf(w, "# HELP colserved_uptime_seconds Seconds since the server started.\n# TYPE colserved_uptime_seconds gauge\ncolserved_uptime_seconds %g\n", time.Since(m.start).Seconds())
}
