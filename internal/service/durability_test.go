package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/memsys"
	"colcache/internal/wal"
)

// newDurable opens a fresh durability layer in dir and builds a server on
// it. Callers own the drain.
func newDurable(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	dur, err := OpenDurability(dir, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Durability = dur
	return New(cfg)
}

func TestMemoizationRoundTrip(t *testing.T) {
	srv := newDurable(t, t.TempDir(), Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First submission computes.
	resp, body := postJSON(t, ts, "/v1/simulate", tinySpec("first"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Digest == "" {
		t.Fatal("durable submission has no digest")
	}
	first := waitTerminal(t, ts, info.ID)
	if first.State != colcache.StateDone {
		t.Fatalf("first job: %s: %s", first.State, first.Error)
	}

	// Identical physics under a different label is served from the cache:
	// terminal document, no job ID, relabeled result.
	resp2, body2 := postJSON(t, ts, "/v1/simulate", tinySpec("second"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit: HTTP %d: %s", resp2.StatusCode, body2)
	}
	var cached colcache.JobInfo
	if err := json.Unmarshal(body2, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.State != colcache.StateDone {
		t.Fatalf("want cached terminal document, got cached=%v state=%s", cached.Cached, cached.State)
	}
	if cached.ID != "" {
		t.Fatalf("cached document must not carry a job ID, got %q", cached.ID)
	}
	if cached.Digest != info.Digest {
		t.Fatalf("digest changed: %s vs %s", cached.Digest, info.Digest)
	}
	if cached.Result == nil || cached.Result.Label != "second" {
		t.Fatalf("cached result not relabeled: %+v", cached.Result)
	}
	if cached.Result.Cycles != first.Result.Cycles {
		t.Fatalf("cached cycles %d != computed %d", cached.Result.Cycles, first.Result.Cycles)
	}

	// The stored envelope is fetchable by digest.
	rr, err := ts.Client().Get(ts.URL + "/v1/results/" + info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results: HTTP %d", rr.StatusCode)
	}
	var sr colcache.StoredResult
	if err := json.NewDecoder(rr.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Kind != "simulate" || sr.Digest != info.Digest || sr.Result == nil {
		t.Fatalf("bad stored envelope: %+v", sr)
	}

	// Metrics account the hit and the cached outcome.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"colserved_result_cache_hits_total",
		"colserved_result_cache_puts_total 1",
		"colserved_result_cache_bytes",
		"colserved_wal_records_total",
		"colserved_wal_syncs_total",
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb)
		}
	}
	if got := srv.MetricsRegistry().Jobs.Get("simulate", "cached"); got != 1 {
		t.Fatalf("cached outcome counter = %d, want 1", got)
	}
	st := srv.dur.Results.Stats()
	if st.Hits < 1 || st.Puts < 1 {
		t.Fatalf("result cache counters: %+v", st)
	}
}

func TestSweepMemoization(t *testing.T) {
	srv := newDurable(t, t.TempDir(), Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sweep := colcache.SweepSpec{
		Label: "sw",
		Base:  tinySpec(""),
		Ways:  []int{2, 4},
	}
	resp, body := postJSON(t, ts, "/v1/sweep", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, ts, info.ID)
	if first.State != colcache.StateDone || first.Sweep == nil {
		t.Fatalf("sweep job: %s: %s", first.State, first.Error)
	}

	// Different label and worker count, same point set → cached.
	sweep.Label = "sw2"
	sweep.Workers = 3
	resp2, body2 := postJSON(t, ts, "/v1/sweep", sweep)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached sweep: HTTP %d: %s", resp2.StatusCode, body2)
	}
	var cached colcache.JobInfo
	if err := json.Unmarshal(body2, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.Sweep == nil || len(cached.Sweep.Points) != len(first.Sweep.Points) {
		t.Fatalf("bad cached sweep: cached=%v %+v", cached.Cached, cached.Sweep)
	}
}

// TestRecoveryRequeuesJournaledJobs simulates a crash with one in-flight
// and two queued jobs: all three were acknowledged with committed WAL
// records, so a fresh server over the same data dir must finish all three
// under their original IDs.
func TestRecoveryRequeuesJournaledJobs(t *testing.T) {
	dir := t.TempDir()
	srv1 := newDurable(t, dir, Config{Workers: 1, QueueDepth: 8})
	// Pin the single worker inside its first job until its context dies,
	// so the other submissions stay queued.
	srv1.testHook = func(ctx context.Context, j *Job) { <-ctx.Done() }
	ts1 := httptest.NewServer(srv1.Handler())

	var ids []string
	var digests []string
	for i, size := range []int{2048, 4096, 8192} {
		spec := tinySpec(fmt.Sprintf("crash-%d", i))
		spec.Workload.SizeBytes = uint64(size)
		resp, body := postJSON(t, ts1, "/v1/simulate", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		var info colcache.JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		digests = append(digests, info.Digest)
	}
	// One running (pinned), two queued.
	deadline := time.Now().Add(5 * time.Second)
	for srv1.pool.Running() != 1 || srv1.pool.Pending() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never settled: running=%d pending=%d", srv1.pool.Running(), srv1.pool.Pending())
		}
		time.Sleep(time.Millisecond)
	}

	// "Crash": drain with an expired deadline — queued jobs are handed
	// back retriable, the pinned job is killed mid-flight, and no terminal
	// records reach the WAL.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv1.Drain(expired); err == nil {
		t.Fatal("drain with expired context should report the killed job")
	}
	for _, id := range ids[1:] {
		j, ok := srv1.store.get(id)
		if !ok {
			t.Fatalf("discarded job %s missing from store", id)
		}
		info := j.Info()
		if info.State != colcache.StateCanceled || !info.Retriable {
			t.Fatalf("discarded job %s: state=%s retriable=%v", id, info.State, info.Retriable)
		}
		if !strings.Contains(info.Error, "/v1/results/"+info.Digest) {
			t.Fatalf("drain message does not name the digest poll URL: %q", info.Error)
		}
	}
	ts1.Close()
	if err := srv1.dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot over the same data dir: all three jobs replay.
	srv2 := newDurable(t, dir, Config{Workers: 2, QueueDepth: 8})
	defer srv2.Drain(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if rec := srv2.Recovery(); rec.Requeued != 3 {
		t.Fatalf("recovery: %+v, want 3 requeued", rec)
	}
	for i, id := range ids {
		info := waitTerminal(t, ts2, id)
		if info.State != colcache.StateDone || info.Result == nil {
			t.Fatalf("recovered job %s: %s: %s", id, info.State, info.Error)
		}
		if info.Digest != digests[i] {
			t.Fatalf("job %s digest drifted: %s vs %s", id, info.Digest, digests[i])
		}
		if !srv2.dur.Results.Contains(digests[i]) {
			t.Fatalf("result %s not memoized after recovery", digests[i])
		}
	}
	// Fresh submissions never collide with recovered IDs.
	resp, body := postJSON(t, ts2, "/v1/simulate", tinySpec("after"))
	if resp.StatusCode == http.StatusAccepted {
		var info colcache.JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if info.ID == id {
				t.Fatalf("fresh job reused recovered ID %s", id)
			}
		}
		waitTerminal(t, ts2, info.ID)
	}
}

// TestResumeFromCheckpoint hand-writes a WAL describing a job that
// crashed halfway (accepted + started + checkpoint, no terminal record)
// and proves the rebooted server resumes it to the exact cycle count of
// an uninterrupted run.
func TestResumeFromCheckpoint(t *testing.T) {
	spec := tinySpec("resume")
	spec.Workload.SizeBytes = 1 << 15
	spec.Workload.Passes = 2
	limits := Limits{}.withDefaults()

	// Ground truth: uninterrupted run, plus the cycle count at the cut.
	b, err := BuildSim(spec, nil, limits)
	if err != nil {
		t.Fatal(err)
	}
	fullCycles, err := b.Sys.RunContext(context.Background(), b.Trace, memsys.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(b.Trace) / 2
	b2, err := BuildSim(spec, nil, limits)
	if err != nil {
		t.Fatal(err)
	}
	prefixCycles, err := b2.Sys.RunContext(context.Background(), b2.Trace[:cut], memsys.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Forge the crashed server's log.
	dir := t.TempDir()
	log, _, err := wal.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	const id = "j00000005"
	digest := SimDigest(spec, nil)
	append1 := func(typ byte, m recMeta) {
		t.Helper()
		mb, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(wal.Record{Type: typ, Meta: mb}, true); err != nil {
			t.Fatal(err)
		}
	}
	append1(recAccepted, recMeta{ID: id, Kind: "simulate", Digest: digest, Spec: &spec})
	append1(recStarted, recMeta{ID: id})
	cp := memsys.Checkpoint{Done: int64(cut), Cycles: prefixCycles}
	append1(recCheckpoint, recMeta{ID: id, Checkpoint: &cp})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	srv := newDurable(t, dir, Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rec := srv.Recovery()
	if rec.Requeued != 1 || rec.Resumed != 1 {
		t.Fatalf("recovery: %+v, want 1 requeued 1 resumed", rec)
	}
	info := waitTerminal(t, ts, id)
	if info.State != colcache.StateDone || info.Result == nil {
		t.Fatalf("resumed job: %s: %s", info.State, info.Error)
	}
	if info.Result.Cycles != fullCycles {
		t.Fatalf("resumed run diverged: %d cycles, uninterrupted %d", info.Result.Cycles, fullCycles)
	}
	if !srv.dur.Results.Contains(digest) {
		t.Fatal("resumed result not memoized")
	}
}

// TestFinishedJobsAreNotReplayed: a job with a committed terminal record
// must not come back.
func TestFinishedJobsAreNotReplayed(t *testing.T) {
	dir := t.TempDir()
	srv1 := newDurable(t, dir, Config{Workers: 2, QueueDepth: 8})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := postJSON(t, ts1, "/v1/simulate", tinySpec("fin"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts1, info.ID)
	ts1.Close()
	if err := srv1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv1.dur.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := newDurable(t, dir, Config{Workers: 2, QueueDepth: 8})
	defer srv2.Drain(context.Background())
	if rec := srv2.Recovery(); rec.Requeued != 0 {
		t.Fatalf("finished job replayed: %+v", rec)
	}
	// The memoized result survived the reboot.
	if !srv2.dur.Results.Contains(info.Digest) {
		t.Fatal("result cache lost the finished result across reboot")
	}
}

// TestBootSurvivesCorruption: a torn WAL tail and a flipped bit in a
// stored result blob — the two disk faults a crash can leave behind —
// must not take the server down. The torn tail is truncated, the bad
// blob is quarantined and recomputed on demand.
func TestBootSurvivesCorruption(t *testing.T) {
	dir := t.TempDir()
	srv1 := newDurable(t, dir, Config{Workers: 2, QueueDepth: 8})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, body := postJSON(t, ts1, "/v1/simulate", tinySpec("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts1, info.ID)
	ts1.Close()
	if err := srv1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv1.dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Fault 1: a torn tail — half a record's worth of garbage after the
	// last commit.
	walFile := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0xff, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Fault 2: flip a payload byte in the stored result blob.
	blobPath := filepath.Join(dir, "results", info.Digest[:2], info.Digest)
	blob, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x40
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := newDurable(t, dir, Config{Workers: 2, QueueDepth: 8})
	defer srv2.Drain(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if ws := srv2.dur.Log.Stats(); ws.Dropped == 0 {
		t.Fatalf("torn tail not truncated: %+v", ws)
	}

	// The corrupt blob is detected at first touch, quarantined, and the
	// resubmission recomputes instead of serving garbage.
	rr, err := ts2.Client().Get(ts2.URL + "/v1/results/" + info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt blob served: HTTP %d", rr.StatusCode)
	}
	if st := srv2.dur.Results.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantine counter: %+v", st)
	}
	if _, err := os.Stat(blobPath + ".corrupt"); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	resp2, body2 := postJSON(t, ts2, "/v1/simulate", tinySpec("victim"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after quarantine: HTTP %d: %s", resp2.StatusCode, body2)
	}
	var info2 colcache.JobInfo
	if err := json.Unmarshal(body2, &info2); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, ts2, info2.ID)
	if final.State != colcache.StateDone {
		t.Fatalf("recompute: %s: %s", final.State, final.Error)
	}
	if !srv2.dur.Results.Contains(info.Digest) {
		t.Fatal("recomputed result not re-memoized")
	}
}

// TestInMemoryServerHasNoResults: without a durability layer the results
// endpoint answers 404 and submissions carry no digest.
func TestInMemoryServerHasNoResults(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/results/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("results on in-memory server: HTTP %d, want 404", resp.StatusCode)
	}
	resp2, body := postJSON(t, ts, "/v1/simulate", tinySpec("mem"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp2.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Digest != "" {
		t.Fatalf("in-memory submission grew a digest: %q", info.Digest)
	}
	waitTerminal(t, ts, info.ID)
}
