package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	colcache "colcache"
)

// drainFixture builds a one-worker server with the first job pinned in the
// running state and n more queued behind it. Returns the pinned job's ID,
// the queued IDs, and the release gate.
func drainFixture(t *testing.T, n int) (*Server, *httptest.Server, string, []string, chan struct{}) {
	t.Helper()
	srv := New(Config{Workers: 1, QueueDepth: n + 1})
	gate := make(chan struct{})
	srv.testHook = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(srv.Handler())

	submit := func(label string) string {
		resp, body := postJSON(t, ts, "/v1/simulate", tinySpec(label))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: HTTP %d: %s", label, resp.StatusCode, body)
		}
		var info colcache.JobInfo
		json.Unmarshal(body, &info)
		return info.ID
	}
	pinned := submit("pinned")
	for deadline := time.Now().Add(5 * time.Second); srv.pool.Running() != 1; {
		if time.Now().After(deadline) {
			t.Fatal("pinned job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var queued []string
	for i := 0; i < n; i++ {
		queued = append(queued, submit(fmt.Sprintf("queued%d", i)))
	}
	return srv, ts, pinned, queued, gate
}

// TestGracefulDrain: the in-flight job completes, queued jobs come back
// canceled+retriable, and new submissions are shed with 503 while the
// drain runs and after it.
func TestGracefulDrain(t *testing.T) {
	srv, ts, pinned, queued, gate := drainFixture(t, 3)
	defer ts.Close()

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	// Wait until the drain has begun, then release the pinned job.
	for deadline := time.Now().Add(5 * time.Second); !srv.isDraining(); {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}

	// A submission against a draining server sheds with 503 + Retry-After.
	b, _ := json.Marshal(tinySpec("late"))
	resp, err := ts.Client().Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	close(gate)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// In-flight job finished its work.
	if final := waitTerminal(t, ts, pinned); final.State != colcache.StateDone {
		t.Fatalf("pinned job: %+v", final)
	}
	// Queued jobs were handed back, retriable.
	for _, id := range queued {
		final := waitTerminal(t, ts, id)
		if final.State != colcache.StateCanceled || !final.Retriable {
			t.Fatalf("queued job %s: state=%s retriable=%v", id, final.State, final.Retriable)
		}
		if final.Error == "" {
			t.Fatalf("queued job %s: no explanation", id)
		}
	}

	// healthz reports draining; metrics still serve and the ledger closes.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: HTTP %d, want 503", resp.StatusCode)
	}
	m := srv.MetricsRegistry()
	acc := m.Jobs.Get("simulate", "accepted")
	term := m.Jobs.Get("simulate", "done") + m.Jobs.Get("simulate", "failed") + m.Jobs.Get("simulate", "canceled")
	if acc != term || acc != int64(1+len(queued)) {
		t.Fatalf("ledger: accepted %d terminal %d", acc, term)
	}
}

// TestDrainDeadlineKillsStuckJob: a job that ignores the gate until its
// context is canceled forces the drain past its deadline; Drain must kill
// the pool and still return with the job terminal.
func TestDrainDeadlineKillsStuckJob(t *testing.T) {
	srv, ts, pinned, _, _ := drainFixture(t, 0)
	defer ts.Close()
	// The fixture hook already blocks until ctx.Done() if the gate never
	// closes — exactly a stuck job that only honors cancellation.

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := srv.Drain(ctx)
	if err == nil {
		t.Fatal("drain of a stuck job reported success")
	}

	final := waitTerminal(t, ts, pinned)
	if final.State != colcache.StateCanceled {
		t.Fatalf("stuck job after kill: %+v", final)
	}
	if srv.pool.Running() != 0 {
		t.Fatalf("%d jobs still running after kill", srv.pool.Running())
	}
}

// TestDrainIdempotent: draining twice is safe and the second call returns
// promptly.
func TestDrainIdempotent(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Drain(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		cancel()
	}
}
