package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/inspect"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes events from an open SSE body until an "end" event, the
// maximum count, or EOF.
func readSSE(t *testing.T, body *bufio.Scanner, max int) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				if cur.name == "end" || len(events) >= max {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return events
}

func inspectServer(t *testing.T, every int) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 2, QueueDepth: 8, InspectEvery: every, InspectHeartbeat: 25 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(context.Background())
	})
	return srv, ts
}

func submitJob(t *testing.T, ts *httptest.Server, spec colcache.SimSpec) string {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/simulate", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var info colcache.JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

// Live SSE: attach while the job is pinned queued-in-worker, release it,
// and watch well-formed frames arrive followed by a clean "done" end event.
func TestInspectSSELiveStream(t *testing.T) {
	srv, ts := inspectServer(t, 64)
	gate := make(chan struct{})
	var once sync.Once
	srv.testHook = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	defer once.Do(func() { close(gate) })

	id := submitJob(t, ts, tinySpec("sse-live"))
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/inspect")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	once.Do(func() { close(gate) })

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	events := readSSE(t, sc, 10000)
	if len(events) < 2 {
		t.Fatalf("got %d events, want frames plus end", len(events))
	}
	last := events[len(events)-1]
	if last.name != "end" {
		t.Fatalf("stream did not terminate with an end event: %+v", last)
	}
	var end struct {
		Reason  string `json:"reason"`
		Dropped int64  `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(last.data), &end); err != nil {
		t.Fatalf("end payload: %v", err)
	}
	if end.Reason != colcache.StateDone {
		t.Fatalf("end reason = %q, want done", end.Reason)
	}
	var frames int
	var prevSeq int64 = -1
	for _, ev := range events[:len(events)-1] {
		if ev.name != "frame" {
			continue
		}
		frames++
		var f inspect.Frame
		if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
			t.Fatalf("malformed frame: %v\n%s", err, ev.data)
		}
		if f.Seq != prevSeq+1 {
			t.Fatalf("frame seq %d after %d", f.Seq, prevSeq)
		}
		prevSeq = f.Seq
		if len(f.Caches) == 0 || f.Caches[0].Name != "l1" ||
			len(f.Caches[0].Occ) != f.Caches[0].Sets*f.Caches[0].Ways {
			t.Fatalf("malformed cache frame: %+v", f.Caches)
		}
		if len(f.Masks) == 0 {
			t.Fatal("frame without mask table")
		}
	}
	if frames < 1 {
		t.Fatalf("saw %d frames, want >= 1", frames)
	}
	lastFrameEv := events[len(events)-2]
	var lastFrame inspect.Frame
	if err := json.Unmarshal([]byte(lastFrameEv.data), &lastFrame); err != nil {
		t.Fatal(err)
	}
	if !lastFrame.Final {
		t.Fatal("last streamed frame not marked final")
	}

	// The metrics surface reflects the capture.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc2 := bufio.NewScanner(mresp.Body)
	for sc2.Scan() {
		sb.WriteString(sc2.Text() + "\n")
	}
	mresp.Body.Close()
	if !strings.Contains(sb.String(), "colserved_inspect_frames_total") {
		t.Fatal("metrics missing colserved_inspect_frames_total")
	}
}

// A subscriber attaching after the job finished gets an immediate clean
// end event instead of a hang.
func TestInspectSSELateSubscriber(t *testing.T) {
	_, ts := inspectServer(t, 64)
	id := submitJob(t, ts, tinySpec("sse-late"))
	waitTerminal(t, ts, id)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/inspect", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	events := readSSE(t, sc, 10)
	if len(events) != 1 || events[0].name != "end" {
		t.Fatalf("late subscriber events = %+v, want a single end", events)
	}
	if !strings.Contains(events[0].data, colcache.StateDone) {
		t.Fatalf("end payload %q missing done reason", events[0].data)
	}
}

// A slow client (tiny buffer, never reading while the job runs) loses
// frames without blocking the simulation; the loss is counted.
func TestInspectSlowClientDrops(t *testing.T) {
	srv, ts := inspectServer(t, 16)
	gate := make(chan struct{})
	srv.testHook = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	id := submitJob(t, ts, tinySpec("sse-slow"))
	// Subscribe at the hub level with a depth-1 buffer and never drain it
	// while the job runs — the publisher must never block on it.
	sub := srv.inspect.feed(id).Subscribe(1)
	close(gate)
	waitTerminal(t, ts, id)
	var delivered int
	for range sub.C {
		delivered++
	}
	if delivered > 1 {
		t.Fatalf("undrained depth-1 subscriber got %d frames", delivered)
	}
	if sub.Dropped() == 0 {
		t.Fatal("no frames counted as dropped for the slow subscriber")
	}
	if sub.Reason() != colcache.StateDone {
		t.Fatalf("slow subscriber reason = %q, want done", sub.Reason())
	}
	if srv.inspect.feed(id).Dropped() != sub.Dropped() {
		t.Fatal("feed total does not reflect the subscriber's drops")
	}
}

// Graceful drain terminates streams of jobs that never ran with a
// "canceled" end event.
func TestInspectStreamEndsOnDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, InspectEvery: 64, InspectHeartbeat: 25 * time.Millisecond})
	gate := make(chan struct{})
	srv.testHook = func(ctx context.Context, j *Job) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate)

	pin := submitJob(t, ts, tinySpec("drain-pin"))
	_ = pin
	queued := submitJob(t, ts, tinySpec("drain-queued"))

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + queued + "/inspect")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan []sseEvent, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		done <- readSSE(t, sc, 100)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_ = srv.Drain(ctx)

	select {
	case events := <-done:
		if len(events) == 0 || events[len(events)-1].name != "end" {
			t.Fatalf("drained stream events = %+v, want terminal end", events)
		}
		if !strings.Contains(events[len(events)-1].data, colcache.StateCanceled) {
			t.Fatalf("end payload %q, want canceled", events[len(events)-1].data)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("stream never terminated after drain")
	}
}

// Time travel: retained frames of a finished job are scrubbable by range,
// inverted ranges 400, and both endpoints 404 when inspection is off.
func TestInspectTimeTravel(t *testing.T) {
	_, ts := inspectServer(t, 64)
	id := submitJob(t, ts, tinySpec("tt"))
	waitTerminal(t, ts, id)

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			sb.WriteString(sc.Text())
		}
		return resp, []byte(sb.String())
	}

	resp, body := get("/v1/jobs/" + id + "/inspect/frames")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frames: HTTP %d: %s", resp.StatusCode, body)
	}
	var doc colcache.InspectFrames
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count < 2 || doc.First != 0 {
		t.Fatalf("frames count=%d first=%d, want several from 0", doc.Count, doc.First)
	}
	for i, raw := range doc.Frames {
		var f inspect.Frame
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatalf("frame %d malformed: %v", i, err)
		}
		if f.Seq != int64(i) {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
	}

	// Range slice.
	resp, body = get("/v1/jobs/" + id + "/inspect/frames?from=1&to=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range: HTTP %d", resp.StatusCode)
	}
	var slice colcache.InspectFrames
	if err := json.Unmarshal(body, &slice); err != nil {
		t.Fatal(err)
	}
	if slice.Count != 2 || slice.First != 1 {
		t.Fatalf("slice count=%d first=%d, want 2 from 1", slice.Count, slice.First)
	}

	// Inverted range.
	resp, _ = get("/v1/jobs/" + id + "/inspect/frames?from=5&to=2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range: HTTP %d, want 400", resp.StatusCode)
	}
	// Unknown job.
	resp, _ = get("/v1/jobs/zzz/inspect/frames")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}

	// Disabled server: both endpoints 404 even for real jobs.
	srv2 := New(Config{Workers: 1, QueueDepth: 4})
	defer srv2.Drain(context.Background())
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	id2 := submitJob(t, ts2, tinySpec("tt-off"))
	waitTerminal(t, ts2, id2)
	for _, p := range []string{"/v1/jobs/" + id2 + "/inspect", "/v1/jobs/" + id2 + "/inspect/frames"} {
		resp, err := ts2.Client().Get(ts2.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on disabled server: HTTP %d, want 404", p, resp.StatusCode)
		}
	}
}

// Multicore jobs emit per-core L1 frames plus the shared L2, and the
// parallel stepper (forced serial by the attached inspector) produces a
// byte-identical frame sequence.
func TestInspectMulticoreFrames(t *testing.T) {
	_, ts := inspectServer(t, 256)

	run := func(parallel bool, label string) []json.RawMessage {
		spec := multicoreSpec(label)
		if parallel {
			spec.Multicore.Parallel = true
		}
		id := submitJob(t, ts, spec)
		info := waitTerminal(t, ts, id)
		if info.State != colcache.StateDone {
			t.Fatalf("%s: state %s: %s", label, info.State, info.Error)
		}
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/inspect/frames")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc colcache.InspectFrames
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.Count == 0 {
			t.Fatalf("%s: no frames retained", label)
		}
		return doc.Frames
	}

	serial := run(false, "mc-serial")
	parallel := run(true, "mc-parallel")

	var last inspect.Frame
	if err := json.Unmarshal(serial[len(serial)-1], &last); err != nil {
		t.Fatal(err)
	}
	if len(last.Caches) != 3 || last.Caches[0].Name != "core0" || last.Caches[2].Name != "l2" {
		t.Fatalf("multicore cache frames = %+v", last.Caches)
	}
	if len(last.Masks) != 2 || last.Masks[0].Kind != "core" {
		t.Fatalf("multicore masks = %+v", last.Masks)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("frame counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if string(serial[i]) != string(parallel[i]) {
			t.Fatalf("frame %d differs between serial and parallel entry points:\n%s\n%s",
				i, serial[i], parallel[i])
		}
	}
}
