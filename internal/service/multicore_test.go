package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	colcache "colcache"
)

func multicoreSpec(label string) colcache.SimSpec {
	return colcache.SimSpec{
		Label:   label,
		Machine: colcache.MachineSpec{Sets: 16, Ways: 2},
		Multicore: &colcache.MulticoreSpec{
			Cores: []colcache.CoreSpec{
				{Workload: colcache.WorkloadSpec{Name: "mpeg-idct", N: 4}, Columns: []int{0, 1, 2}},
				{Workload: colcache.WorkloadSpec{Name: "gzip", SizeBytes: 8192}, Columns: []int{3, 4, 5, 6, 7}},
			},
		},
	}
}

func TestMulticoreRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	run := func(label string) colcache.SimResult {
		resp, body := postJSON(t, ts, "/v1/simulate", multicoreSpec(label))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
		}
		var info colcache.JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Kind != "multicore" {
			t.Fatalf("job kind %q, want multicore", info.Kind)
		}
		done := waitTerminal(t, ts, info.ID)
		if done.State != colcache.StateDone {
			t.Fatalf("job ended %s: %s", done.State, done.Error)
		}
		if done.Result == nil {
			t.Fatal("terminal job has no result")
		}
		return *done.Result
	}

	res := run("mc")
	mc := res.Multicore
	if mc == nil {
		t.Fatal("result has no multicore block")
	}
	if len(mc.Cores) != 2 {
		t.Fatalf("%d core results, want 2", len(mc.Cores))
	}
	if res.Cycles <= 0 || res.Instructions <= 0 || res.TraceAccesses <= 0 {
		t.Fatalf("degenerate aggregates: %+v", res)
	}
	if mc.L2.Accesses == 0 {
		t.Error("shared L2 saw no traffic")
	}
	if got := mc.Cores[0].Columns; len(got) != 3 {
		t.Errorf("core 0 columns %v, want the 3 requested", got)
	}
	// Disjoint address windows: pure capacity sharing, no coherence traffic.
	if mc.Bus.Invalidations != 0 || mc.Bus.Interventions != 0 || mc.Bus.WritebackRaces != 0 {
		t.Errorf("disjoint co-run produced coherence traffic: %+v", mc.Bus)
	}
	if mc.Bus.Reads == 0 {
		t.Error("no BusRd traffic at all")
	}

	// The serial stepper is deterministic: an identical spec replays to the
	// identical makespan and counters.
	res2 := run("mc-again")
	if res2.Cycles != res.Cycles || res2.Cache != res.Cache || res2.Multicore.Bus != res.Multicore.Bus {
		t.Fatalf("same spec, different outcome: %d vs %d cycles", res2.Cycles, res.Cycles)
	}
}

// A parallel: true job must come back bit-identical to the serial run of
// the same spec — the epoch-parallel stepper's equivalence claim holds
// through the full service path, at more than one epoch length.
func TestMulticoreParallelMatchesSerial(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	run := func(label string, spec colcache.SimSpec) colcache.SimResult {
		resp, body := postJSON(t, ts, "/v1/simulate", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit: HTTP %d: %s", label, resp.StatusCode, body)
		}
		var info colcache.JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		done := waitTerminal(t, ts, info.ID)
		if done.State != colcache.StateDone {
			t.Fatalf("%s: job ended %s: %s", label, done.State, done.Error)
		}
		return *done.Result
	}

	serial := run("serial", multicoreSpec("serial"))
	for _, epoch := range []int64{0, 1, 256} {
		spec := multicoreSpec("parallel")
		spec.Multicore.Parallel = true
		spec.Multicore.Epoch = epoch
		par := run("parallel", spec)
		if par.Cycles != serial.Cycles || par.Cache != serial.Cache ||
			par.Multicore.Bus != serial.Multicore.Bus || par.Multicore.L2 != serial.Multicore.L2 {
			t.Fatalf("epoch=%d: parallel result diverges from serial: %d vs %d cycles",
				epoch, par.Cycles, serial.Cycles)
		}
		for i := range serial.Multicore.Cores {
			s, p := serial.Multicore.Cores[i], par.Multicore.Cores[i]
			if s.Cycles != p.Cycles || s.L1 != p.L1 || s.L2Accesses != p.L2Accesses {
				t.Fatalf("epoch=%d: core %d diverges:\nserial:   %+v\nparallel: %+v", epoch, i, s, p)
			}
		}
	}
}

func TestMulticoreSpecValidation(t *testing.T) {
	lim := DefaultLimits
	bad := multicoreSpec("bad")
	bad.Multicore.Cores[0].Columns = []int{9} // outside the default 8-way L2
	if err := ValidateSim(bad, false, lim); err == nil {
		t.Error("out-of-range L2 column accepted")
	}

	twoSources := multicoreSpec("two")
	twoSources.Workload = &colcache.WorkloadSpec{Name: "stream"}
	if err := ValidateSim(twoSources, false, lim); err == nil {
		t.Error("multicore plus workload accepted as a single source")
	}

	withMaps := multicoreSpec("maps")
	withMaps.Maps = []colcache.MapSpec{{Base: 0, Size: 4096, Columns: []int{0}}}
	if err := ValidateSim(withMaps, false, lim); err == nil {
		t.Error("maps accepted alongside multicore")
	}

	epochOnly := multicoreSpec("epoch-only")
	epochOnly.Multicore.Epoch = 64
	if err := ValidateSim(epochOnly, false, lim); err == nil {
		t.Error("epoch without parallel accepted")
	}

	hugeEpoch := multicoreSpec("huge-epoch")
	hugeEpoch.Multicore.Parallel = true
	hugeEpoch.Multicore.Epoch = MaxEpochCycles + 1
	if err := ValidateSim(hugeEpoch, false, lim); err == nil {
		t.Error("oversized epoch accepted")
	}

	okParallel := multicoreSpec("ok-parallel")
	okParallel.Multicore.Parallel = true
	if err := ValidateSim(okParallel, false, lim); err != nil {
		t.Errorf("valid parallel multicore spec rejected: %v", err)
	}

	none := multicoreSpec("ok")
	if err := ValidateSim(none, false, lim); err != nil {
		t.Errorf("valid multicore spec rejected: %v", err)
	}
}
