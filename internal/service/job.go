package service

import (
	"fmt"
	"sync"
	"time"

	colcache "colcache"
	"colcache/internal/memsys"
	"colcache/internal/memtrace"
)

// Job is one queued unit of work. All mutable fields are guarded by mu:
// the simulation worker publishes state transitions and checkpoint
// progress, the HTTP handlers read them, and neither may see a torn
// update.
type Job struct {
	ID   string
	Kind string // "simulate", "multicore" or "sweep"

	// Immutable after submission.
	Spec      colcache.SimSpec
	SweepSpec *colcache.SweepSpec
	Upload    memtrace.Trace // pre-decoded binary upload, simulate only
	Submitted time.Time
	// Digest is the submission's content address (spec + trace), the
	// result-cache key; empty on a server without durability.
	Digest string
	// Resume, set only on a recovered in-flight simulate job, is the WAL
	// checkpoint execution fast-forwards to before continuing.
	Resume *memsys.Checkpoint

	mu        sync.Mutex
	state     string
	retriable bool
	errMsg    string
	started   time.Time
	finished  time.Time
	progress  *colcache.JobProgress
	result    *colcache.SimResult
	sweepRes  *colcache.SweepResult
	// sys is the live machine while the job runs; its tint table is
	// thread-safe, so the status handler may render it mid-simulation.
	sys *memsys.System

	// onFinish, when set (before the job is shared), runs after every
	// terminal transition with the final state — the inspect hub closes
	// the job's frame stream through it.
	onFinish func(state string)
}

func (j *Job) label() string {
	if j.SweepSpec != nil {
		return j.SweepSpec.Label
	}
	return j.Spec.Label
}

// setRunning transitions queued → running and publishes the live machine.
func (j *Job) setRunning(sys *memsys.System) {
	j.mu.Lock()
	j.state = colcache.StateRunning
	j.started = time.Now()
	j.sys = sys
	j.mu.Unlock()
}

// publishProgress stores a detached progress snapshot (called from the
// simulation goroutine at checkpoints).
func (j *Job) publishProgress(p colcache.JobProgress) {
	j.mu.Lock()
	j.progress = &p
	j.mu.Unlock()
}

// finish transitions to a terminal state. Exactly one of the result
// pointers may be non-nil.
func (j *Job) finish(state string, retriable bool, errMsg string, res *colcache.SimResult, sweep *colcache.SweepResult) {
	j.mu.Lock()
	j.state = state
	j.retriable = retriable
	j.errMsg = errMsg
	j.finished = time.Now()
	j.result = res
	j.sweepRes = sweep
	j.sys = nil
	fn := j.onFinish
	j.mu.Unlock()
	if fn != nil {
		fn(state)
	}
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// latency returns submit→finish for terminal jobs.
func (j *Job) latency() (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished.IsZero() {
		return 0, false
	}
	return j.finished.Sub(j.Submitted), true
}

// Info renders the job document. ways sizes the tint views of a live
// machine (the machine spec's effective way count).
func (j *Job) Info() colcache.JobInfo {
	j.mu.Lock()
	info := colcache.JobInfo{
		ID:          j.ID,
		Kind:        j.Kind,
		Label:       j.label(),
		State:       j.state,
		Digest:      j.Digest,
		Retriable:   j.retriable,
		Error:       j.errMsg,
		SubmittedAt: j.Submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		info.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.FinishedAt = &t
	}
	if j.progress != nil {
		p := *j.progress
		p.Tints = append([]colcache.TintView(nil), j.progress.Tints...)
		info.Progress = &p
	}
	if j.result != nil {
		r := *j.result
		info.Result = &r
	}
	if j.sweepRes != nil {
		s := *j.sweepRes
		info.Sweep = &s
	}
	sys := j.sys
	j.mu.Unlock()

	// Live tint inspection outside the job lock: the tint table has its
	// own synchronization, and the adaptive controller may be remapping it
	// at this very moment.
	if sys != nil && info.Progress != nil {
		ways := machineWithDefaults(j.Spec.Machine).Ways
		info.Progress.Tints = TintViews(sys, ways)
	}
	return info
}

// store is the in-memory job registry: lookup by ID plus FIFO eviction of
// terminal jobs beyond the retention cap.
type store struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for eviction scans
	seq    int64
	retain int
	// onEvict, when set (before traffic), runs for every job leaving the
	// store — eviction or rollback — so dependent per-job state (retained
	// inspect frames, feeds) is released with it.
	onEvict func(id string)
}

func newStore(retain int) *store {
	return &store{jobs: make(map[string]*Job), retain: retain}
}

// add registers a job under a fresh ID.
func (s *store) add(j *Job) {
	s.mu.Lock()
	s.seq++
	j.ID = fmt.Sprintf("j%08d", s.seq)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()
	s.mu.Unlock()
}

// restore registers a WAL-recovered job under its original ID, so a
// client that accepted it before the crash can keep polling the same URL.
func (s *store) restore(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.ID]; ok {
		return
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

// bumpSeq advances the ID sequence past recovered jobs so fresh
// submissions never collide with journaled IDs.
func (s *store) bumpSeq(n int64) {
	s.mu.Lock()
	if n > s.seq {
		s.seq = n
	}
	s.mu.Unlock()
}

// evictLocked removes the oldest terminal jobs beyond the retention cap.
// Queued and running jobs are never evicted, so an accepted job cannot
// vanish before it completes.
func (s *store) evictLocked() {
	if s.retain <= 0 || len(s.jobs) <= s.retain {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.retain
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if excess > 0 {
			switch j.State() {
			case colcache.StateDone, colcache.StateFailed, colcache.StateCanceled:
				delete(s.jobs, id)
				if s.onEvict != nil {
					s.onEvict(id)
				}
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// remove deletes a job outright (used to roll back a shed submission, so
// a 429'd job never lingers in the listing).
func (s *store) remove(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if s.onEvict != nil {
		s.onEvict(id)
	}
}

// get looks a job up.
func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// recent returns up to n most recent jobs, newest first.
func (s *store) recent(n int) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, n)
	for i := len(s.order) - 1; i >= 0 && len(out) < n; i-- {
		if j, ok := s.jobs[s.order[i]]; ok {
			out = append(out, j)
		}
	}
	return out
}
