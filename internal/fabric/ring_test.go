package fabric

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the digests the coordinator routes: hex content
		// addresses are themselves uniform, but the ring must not depend
		// on that — hash64 repositions every key.
		keys[i] = fmt.Sprintf("digest-%06d", i)
	}
	return keys
}

func TestRingUniformSpread(t *testing.T) {
	const (
		nodes  = 8
		vnodes = 128
		nkeys  = 20000
	)
	r := NewRing(vnodes)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	load := map[string]int{}
	for _, k := range ringKeys(nkeys) {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q): empty ring", k)
		}
		load[owner]++
	}
	if len(load) != nodes {
		t.Fatalf("keys landed on %d of %d nodes", len(load), nodes)
	}
	// With 128 vnodes the per-node share should sit well within
	// [0.6, 1.5] x K/N — loose enough to be seed-independent (the hash is
	// deterministic), tight enough to catch a broken point placement.
	fair := float64(nkeys) / nodes
	for node, n := range load {
		if f := float64(n); f < 0.6*fair || f > 1.5*fair {
			t.Errorf("node %s owns %d keys, want within [%.0f, %.0f]", node, n, 0.6*fair, 1.5*fair)
		}
	}
}

func TestRingRemapOnJoin(t *testing.T) {
	const (
		nodes  = 8
		vnodes = 128
		nkeys  = 20000
	)
	r := NewRing(vnodes)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	keys := ringKeys(nkeys)
	before := make(map[string]string, nkeys)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("joiner")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		// Consistent hashing's defining property: a join moves keys ONLY
		// onto the joining node. Any other movement invalidates every
		// warm cache on the rest of the fleet.
		if after != "joiner" {
			t.Fatalf("key %q moved %s -> %s on join (not to the joiner)", k, before[k], after)
		}
	}
	// Expected share is K/(N+1); allow a 2x constant for vnode variance.
	expect := float64(nkeys) / (nodes + 1)
	if f := float64(moved); f == 0 || f > 2*expect {
		t.Fatalf("join moved %d keys, want (0, %.0f]", moved, 2*expect)
	}
}

func TestRingRemapOnLeave(t *testing.T) {
	const (
		nodes  = 8
		vnodes = 128
		nkeys  = 20000
	)
	r := NewRing(vnodes)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	keys := ringKeys(nkeys)
	before := make(map[string]string, nkeys)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	const victim = "w3"
	r.Remove(victim)
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] == victim {
			if after == victim {
				t.Fatalf("key %q still owned by removed node", k)
			}
			moved++
			continue
		}
		// Keys not owned by the departing node must not move at all.
		if after != before[k] {
			t.Fatalf("key %q moved %s -> %s on unrelated leave", k, before[k], after)
		}
	}
	expect := float64(nkeys) / nodes
	if f := float64(moved); f == 0 || f > 2*expect {
		t.Fatalf("leave moved %d keys, want (0, %.0f]", moved, 2*expect)
	}
}

func TestRingSuccessorsDistinctAndStable(t *testing.T) {
	r := NewRing(32)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	succ := r.Successors("some-digest", 3)
	if len(succ) != 3 {
		t.Fatalf("Successors returned %d nodes, want 3", len(succ))
	}
	seen := map[string]bool{}
	for _, s := range succ {
		if seen[s] {
			t.Fatalf("duplicate successor %q in %v", s, succ)
		}
		seen[s] = true
	}
	owner, _ := r.Owner("some-digest")
	if succ[0] != owner {
		t.Fatalf("Successors[0] = %q, want the owner %q", succ[0], owner)
	}
	// Asking for more successors than members truncates to the member set.
	if all := r.Successors("some-digest", 99); len(all) != 5 {
		t.Fatalf("Successors(n>members) returned %d, want 5", len(all))
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add not idempotent-aware")
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("Remove not idempotent-aware")
	}
	if r.Len() != 0 {
		t.Fatalf("Len() = %d after add+remove, want 0", r.Len())
	}
}
