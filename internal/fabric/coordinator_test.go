package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	colcache "colcache"
	"colcache/internal/service"
)

// testWorker is one in-process worker: a real service.Server behind an
// httptest listener, kept registered by a real heartbeat agent.
type testWorker struct {
	name  string
	srv   *service.Server
	http  *httptest.Server
	agent *Agent
}

func (w *testWorker) stop() {
	if w.agent != nil {
		w.agent.Stop()
	}
	w.http.Close()
}

// kill simulates a crash: the heartbeats stop and the listener drops
// connections, with no drain.
func (w *testWorker) kill() {
	w.agent.Stop()
	w.agent = nil
	w.http.CloseClientConnections()
	w.http.Close()
}

func startTestWorker(t *testing.T, coordURL, name string, cfg service.Config) *testWorker {
	t.Helper()
	srv := service.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	w := &testWorker{name: name, srv: srv, http: hs}
	w.agent = StartAgent(AgentConfig{
		Coordinator: coordURL,
		Name:        name,
		BaseURL:     hs.URL,
		Interval:    50 * time.Millisecond,
		Status:      srv.FabricStatus,
	})
	t.Cleanup(w.stop)
	return w
}

func startTestCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, string) {
	t.Helper()
	if cfg.PeerTTL == 0 {
		cfg.PeerTTL = 300 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	coord := NewCoordinator(cfg)
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		hs.Close()
		coord.Close()
	})
	return coord, hs.URL
}

func waitAlive(t *testing.T, coordURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cv := clusterViewOf(t, coordURL)
		alive := 0
		for _, w := range cv.Workers {
			if w.Alive {
				alive++
			}
		}
		if alive == n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d alive workers", n)
}

func clusterViewOf(t *testing.T, coordURL string) ClusterView {
	t.Helper()
	resp, err := http.Get(coordURL + "/fabric/v1/nodes")
	if err != nil {
		t.Fatalf("nodes: %v", err)
	}
	defer resp.Body.Close()
	var cv ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		t.Fatalf("nodes decode: %v", err)
	}
	return cv
}

func streamSpec(size uint64) colcache.SimSpec {
	return colcache.SimSpec{
		Machine:  colcache.MachineSpec{Sets: 16, Ways: 4},
		Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: size, Passes: 1},
	}
}

func submitVia(t *testing.T, coordURL string, spec colcache.SimSpec) colcache.JobInfo {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(coordURL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var info colcache.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	if info.Digest == "" || info.Node == "" {
		t.Fatalf("submission missing fabric fields: %+v", info)
	}
	return info
}

func TestCoordinatorRoutesByDigest(t *testing.T) {
	_, coordURL := startTestCoordinator(t, CoordinatorConfig{})
	startTestWorker(t, coordURL, "w1", service.Config{})
	startTestWorker(t, coordURL, "w2", service.Config{})
	waitAlive(t, coordURL, 2)

	// The same spec routes to the same worker every time: that is the
	// warm-cache affinity the ring exists for.
	first := submitVia(t, coordURL, streamSpec(4096))
	for i := 0; i < 3; i++ {
		again := submitVia(t, coordURL, streamSpec(4096))
		if again.Node != first.Node {
			t.Fatalf("resubmission routed to %s, first went to %s", again.Node, first.Node)
		}
		if again.Digest != first.Digest {
			t.Fatalf("digest changed across identical submissions")
		}
	}

	// Distinct specs spread over both workers (12 digests on 2 nodes: the
	// chance of a one-sided split is ~2^-11 per hash choice, i.e. never —
	// the hash is deterministic, so this either always passes or the
	// placement is broken).
	nodes := map[string]bool{}
	client := colcache.NewClient(coordURL, nil)
	var ids []string
	for i := 0; i < 12; i++ {
		info := submitVia(t, coordURL, streamSpec(uint64(4096+64*i)))
		nodes[info.Node] = true
		if info.ID != "" {
			ids = append(ids, info.ID)
		}
	}
	if len(nodes) != 2 {
		t.Fatalf("12 distinct digests landed on %d nodes, want 2", len(nodes))
	}

	// Every accepted job polls to done through the coordinator, under its
	// fabric ID.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		final, err := client.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if final.State != colcache.StateDone {
			t.Fatalf("job %s ended %s: %s", id, final.State, final.Error)
		}
		if final.ID != id {
			t.Fatalf("poll answered ID %s for fabric ID %s", final.ID, id)
		}
	}

	cv := clusterViewOf(t, coordURL)
	if cv.JobsRouted < 13 {
		t.Fatalf("JobsRouted = %d, want >= 13", cv.JobsRouted)
	}
	if cv.StealFailures != 0 || cv.JobsStolen != 0 {
		t.Fatalf("unexpected stealing on a healthy cluster: %+v", cv)
	}
}

func TestCoordinatorStealsFromDeadWorker(t *testing.T) {
	_, coordURL := startTestCoordinator(t, CoordinatorConfig{PeerTTL: 250 * time.Millisecond})
	w1 := startTestWorker(t, coordURL, "w1", service.Config{})
	w2 := startTestWorker(t, coordURL, "w2", service.Config{})
	waitAlive(t, coordURL, 2)

	// Submit a batch without polling: the coordinator cannot know which
	// are terminal, so every victim-owned job must be stolen on death.
	var ids []string
	victims := 0
	for i := 0; i < 10; i++ {
		info := submitVia(t, coordURL, streamSpec(uint64(2048+64*i)))
		ids = append(ids, info.ID)
		if info.Node == "w2" {
			victims++
		}
	}
	if victims == 0 {
		t.Fatalf("no jobs routed to the victim worker; placement is broken")
	}
	w2.kill()

	client := colcache.NewClient(coordURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range ids {
		final, err := client.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if final.State != colcache.StateDone {
			t.Fatalf("job %s ended %s after steal: %s", id, final.State, final.Error)
		}
		if final.Node == "w2" {
			t.Fatalf("job %s reported done on the dead worker", id)
		}
	}

	cv := clusterViewOf(t, coordURL)
	if cv.JobsStolen == 0 {
		t.Fatalf("no jobs stolen although %d were routed to the dead worker", victims)
	}
	if cv.StealFailures != 0 {
		t.Fatalf("%d steal failures; every job had a live successor", cv.StealFailures)
	}
	_ = w1
}

func TestCoordinatorCachedRelay(t *testing.T) {
	_, coordURL := startTestCoordinator(t, CoordinatorConfig{})
	dur, err := service.OpenDurability(t.TempDir(), "", 0)
	if err != nil {
		t.Fatalf("durability: %v", err)
	}
	t.Cleanup(func() { dur.Close() })
	startTestWorker(t, coordURL, "w1", service.Config{Durability: dur})
	waitAlive(t, coordURL, 1)

	info := submitVia(t, coordURL, streamSpec(4096))
	client := colcache.NewClient(coordURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.Wait(ctx, info.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}

	// Resubmission is answered from the worker's result cache and relayed
	// as a terminal 200 by the coordinator.
	body, _ := json.Marshal(streamSpec(4096))
	resp, err := http.Post(coordURL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200 cached", resp.StatusCode)
	}
	var cached colcache.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&cached); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !cached.Cached || cached.Result == nil || cached.Node != "w1" {
		t.Fatalf("cached relay missing fields: %+v", cached)
	}

	// The digest read path is proxied with its HTTP cache validators.
	resp2, err := http.Get(coordURL + "/v1/results/" + info.Digest)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp2.StatusCode)
	}
	if et := resp2.Header.Get("ETag"); et != `"`+info.Digest+`"` {
		t.Fatalf("result ETag = %q, want the digest", et)
	}
	if cc := resp2.Header.Get("Cache-Control"); cc == "" {
		t.Fatal("result missing Cache-Control")
	}

	req, _ := http.NewRequest(http.MethodGet, coordURL+"/v1/results/"+info.Digest, nil)
	req.Header.Set("If-None-Match", `"`+info.Digest+`"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("conditional result: %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional result: HTTP %d, want 304", resp3.StatusCode)
	}
}

func TestCoordinatorRelaysInspectStream(t *testing.T) {
	_, coordURL := startTestCoordinator(t, CoordinatorConfig{})
	startTestWorker(t, coordURL, "w1", service.Config{InspectEvery: 4096})
	waitAlive(t, coordURL, 1)

	// A job long enough that the SSE attach lands while it is running.
	spec := colcache.SimSpec{
		Machine:  colcache.MachineSpec{Sets: 16, Ways: 4},
		Workload: &colcache.WorkloadSpec{Name: "stream", SizeBytes: 1 << 20, Passes: 8},
	}
	info := submitVia(t, coordURL, spec)

	resp, err := http.Get(coordURL + "/v1/jobs/" + info.ID + "/inspect")
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("inspect Content-Type = %q", ct)
	}
	// Walk the relayed event stream to its terminal event.
	var frames int
	var lastEvent, lastData string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event == "frame" {
				frames++
			}
			if event != "" {
				lastEvent, lastData = event, data
			}
			event, data = "", ""
		case len(line) > 0 && line[0] == ':':
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = line[6:]
		}
		if lastEvent == "end" {
			break
		}
	}
	if lastEvent != "end" {
		t.Fatalf("relayed stream did not end cleanly (last event %q)", lastEvent)
	}
	var end struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(lastData), &end); err != nil || end.Reason != colcache.StateDone {
		t.Fatalf("relayed end payload %q, want reason done", lastData)
	}
	if frames == 0 {
		t.Fatal("no frames relayed from the worker's live stream")
	}

	// The time-travel relay answers under the fabric ID.
	fresp, err := http.Get(coordURL + "/v1/jobs/" + info.ID + "/inspect/frames?from=0&to=1")
	if err != nil {
		t.Fatalf("frames: %v", err)
	}
	defer fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("frames: HTTP %d", fresp.StatusCode)
	}
	var doc colcache.InspectFrames
	if err := json.NewDecoder(fresp.Body).Decode(&doc); err != nil {
		t.Fatalf("frames decode: %v", err)
	}
	if doc.Job != info.ID || doc.Count != 2 || doc.First != 0 {
		t.Fatalf("frames doc = job %s count %d first %d, want fabric ID and [0,1]", doc.Job, doc.Count, doc.First)
	}

	// Inverted ranges and unknown jobs relay their errors.
	bresp, err := http.Get(coordURL + "/v1/jobs/" + info.ID + "/inspect/frames?from=3&to=1")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range relay: HTTP %d, want 400", bresp.StatusCode)
	}
	nresp, err := http.Get(coordURL + "/v1/jobs/f99999999/inspect")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job relay: HTTP %d, want 404", nresp.StatusCode)
	}
}

func TestRegistryLeaseExpiry(t *testing.T) {
	reg := NewRegistry(100 * time.Millisecond)
	now := time.Now()
	if !reg.Upsert(Heartbeat{Name: "a", BaseURL: "http://a"}, now) {
		t.Fatal("first heartbeat not newly alive")
	}
	if reg.Upsert(Heartbeat{Name: "a", BaseURL: "http://a"}, now.Add(50*time.Millisecond)) {
		t.Fatal("renewal reported newly alive")
	}
	if dead := reg.Sweep(now.Add(80 * time.Millisecond)); len(dead) != 0 {
		t.Fatalf("lease expired early: %v", dead)
	}
	dead := reg.Sweep(now.Add(200 * time.Millisecond))
	if len(dead) != 1 || dead[0] != "a" {
		t.Fatalf("Sweep = %v, want [a]", dead)
	}
	if reg.Alive() != 0 {
		t.Fatalf("Alive() = %d after expiry", reg.Alive())
	}
	// A comeback heartbeat is newly alive again.
	if !reg.Upsert(Heartbeat{Name: "a", BaseURL: "http://a"}, now.Add(300*time.Millisecond)) {
		t.Fatal("comeback heartbeat not newly alive")
	}
	if !reg.MarkDead("a") || reg.MarkDead("a") {
		t.Fatal("MarkDead not edge-triggered")
	}
}

func TestCoordinatorShedsWithNoWorkers(t *testing.T) {
	_, coordURL := startTestCoordinator(t, CoordinatorConfig{PeerTTL: 100 * time.Millisecond})
	body, _ := json.Marshal(streamSpec(4096))
	resp, err := http.Post(coordURL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty cluster submit: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed missing Retry-After")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if hash64("a", "b") != hash64("a", "b") {
		t.Fatal("hash64 not deterministic")
	}
	if hash64("a", "b") == hash64("ab") {
		t.Fatal("hash64 joins parts without separation")
	}
	if hash64(fmt.Sprintf("k%d", 1)) == hash64(fmt.Sprintf("k%d", 2)) {
		t.Fatal("distinct keys collided (astronomically unlikely)")
	}
}
