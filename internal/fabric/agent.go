package fabric

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"colcache/internal/service"
)

// AgentConfig parameterizes a worker's fabric agent.
type AgentConfig struct {
	// Coordinator is the control plane's base URL.
	Coordinator string
	// Name is this worker's stable ring identity.
	Name string
	// BaseURL is where the coordinator reaches this worker's /v1 API.
	BaseURL string
	// Interval between heartbeats (default 500ms). The coordinator's
	// PeerTTL should be a few multiples of this.
	Interval time.Duration
	// Status supplies the heartbeat payload: the job ledger by outcome
	// plus live queue gauges. Nil sends an empty ledger.
	Status func() (ledger map[string]int64, queued, running int)
	// Client overrides the HTTP client (default: 5s timeout).
	Client *http.Client
	// Logf receives join/failure events (default: silent).
	Logf func(format string, args ...any)
}

// Agent keeps one worker registered with the coordinator: the first
// heartbeat joins the ring, the rest renew the lease and carry the
// worker's ledger. Registration and renewal are the same request, so a
// coordinator restart heals itself — the next heartbeat re-registers.
type Agent struct {
	cfg      AgentConfig
	stopc    chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	beats    atomic.Int64
	failures atomic.Int64
	lastBeat atomic.Int64 // unix nanos of the last successful heartbeat
}

// StartAgent launches the heartbeat loop (first beat immediate).
func StartAgent(cfg AgentConfig) *Agent {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Agent{cfg: cfg, stopc: make(chan struct{}), done: make(chan struct{})}
	go a.loop()
	return a
}

// Stop ends the heartbeat loop. The coordinator will expire the lease
// and steal any unfinished jobs — an orderly worker drains first, so
// there is normally nothing to steal.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stopc) })
	<-a.done
}

// Gauges renders the agent's state for the worker's /metrics.
func (a *Agent) Gauges() service.FabricGauges {
	g := service.FabricGauges{
		Attached:   a.beats.Load() > 0,
		Heartbeats: a.beats.Load(),
		Failures:   a.failures.Load(),
	}
	if last := a.lastBeat.Load(); last > 0 {
		g.LastBeatAgeSeconds = time.Since(time.Unix(0, last)).Seconds()
	}
	return g
}

func (a *Agent) loop() {
	defer close(a.done)
	a.beat()
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-a.stopc:
			return
		case <-tick.C:
			a.beat()
		}
	}
}

func (a *Agent) beat() {
	hb := Heartbeat{Name: a.cfg.Name, BaseURL: a.cfg.BaseURL}
	if a.cfg.Status != nil {
		hb.Ledger, hb.Queued, hb.Running = a.cfg.Status()
	}
	body, err := json.Marshal(hb)
	if err != nil {
		a.failures.Add(1)
		return
	}
	resp, err := a.cfg.Client.Post(a.cfg.Coordinator+"/fabric/v1/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		if a.failures.Add(1) == 1 {
			a.cfg.Logf("fabric: heartbeat to %s failed: %v (will keep trying)", a.cfg.Coordinator, err)
		}
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		a.failures.Add(1)
		return
	}
	if a.beats.Add(1) == 1 {
		a.cfg.Logf("fabric: joined coordinator %s as %s", a.cfg.Coordinator, a.cfg.Name)
	}
	a.lastBeat.Store(time.Now().UnixNano())
}
