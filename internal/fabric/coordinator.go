package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	colcache "colcache"
	"colcache/internal/service"
)

// CoordinatorConfig parameterizes a Coordinator. Zero fields take the
// documented defaults.
type CoordinatorConfig struct {
	// VNodes is the virtual-node count per worker (default DefaultVNodes).
	VNodes int
	// PeerTTL expires a worker that stops heartbeating (default 2s).
	PeerTTL time.Duration
	// SweepEvery is the failure-detector period (default PeerTTL/4).
	SweepEvery time.Duration
	// MaxBodyBytes bounds a forwarded submission body (default 32 MiB).
	MaxBodyBytes int64
	// RetainJobs bounds the routing table; oldest terminal routes are
	// evicted first (default 16384).
	RetainJobs int
	// ForwardTimeout bounds one proxied request (default 30s).
	ForwardTimeout time.Duration
	// Logf receives membership and stealing events (default: silent).
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.PeerTTL <= 0 {
		c.PeerTTL = 2 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.PeerTTL / 4
	}
	if c.SweepEvery < 25*time.Millisecond {
		c.SweepEvery = 25 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 16384
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// routedJob is the coordinator's record of one forwarded submission. The
// original body is retained until the job is terminal, because it is the
// steal currency: if the owning worker dies, the coordinator resubmits
// the body to the digest's new ring owner.
type routedJob struct {
	fabricID    string
	digest      string
	kind        string
	path        string // "/v1/simulate" or "/v1/sweep"
	rawQuery    string // octet-stream machine selection rides in the query
	contentType string

	mu       sync.Mutex
	body     []byte
	node     string // current assignment
	workerID string // job ID on that node
	stolen   bool
	stealing bool
	terminal bool
	failMsg  string            // set when stealing exhausted every option
	cached   *colcache.JobInfo // a steal answered from a successor's result cache
	accepted time.Time
}

// Coordinator is the fabric control plane: it owns the ring and the
// registry, serves the same /v1 data-plane API as a worker (proxying by
// digest), and re-routes the unfinished jobs of dead workers.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	reg    *Registry
	mux    *http.ServeMux
	client *http.Client
	// stream has no timeout: it carries open-ended SSE relays, which the
	// subscriber's request context bounds instead of the forward budget.
	stream *http.Client
	start  time.Time

	mu      sync.Mutex
	seq     int64
	jobs    map[string]*routedJob
	order   []string // insertion order, for retention eviction
	byNode  map[string]int64
	stopc   chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	routed        atomic.Int64
	forwardErrors atomic.Int64
	steals        atomic.Int64
	stealFailures atomic.Int64
	cachedRelays  atomic.Int64
}

// ClusterView is the document of GET /fabric/v1/nodes: the membership
// table plus the coordinator's own books — what colload -fabric
// reconciles against the per-node ledgers.
type ClusterView struct {
	VNodes        int        `json:"vnodes"`
	Workers       []NodeView `json:"workers"`
	PendingJobs   int        `json:"pending_jobs"`
	JobsRouted    int64      `json:"jobs_routed"`
	JobsStolen    int64      `json:"jobs_stolen"`
	StealFailures int64      `json:"steal_failures"`
	ForwardErrors int64      `json:"forward_errors"`
	CachedRelays  int64      `json:"cached_relays"`
}

// RouteView is the document of GET /fabric/v1/route/{digest}: where a
// content address routes right now. The chaos test measures join/leave
// remapping through this endpoint.
type RouteView struct {
	Digest     string   `json:"digest"`
	Node       string   `json:"node"`
	Successors []string `json:"successors,omitempty"`
}

// NewCoordinator builds a coordinator and starts its failure detector.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		reg:    NewRegistry(cfg.PeerTTL),
		mux:    http.NewServeMux(),
		client: &http.Client{Timeout: cfg.ForwardTimeout},
		stream: &http.Client{},
		start:  time.Now(),
		jobs:   make(map[string]*routedJob),
		byNode: make(map[string]int64),
		stopc:  make(chan struct{}),
	}
	c.mux.HandleFunc("POST /fabric/v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("GET /fabric/v1/nodes", c.handleNodes)
	c.mux.HandleFunc("GET /fabric/v1/route/{digest}", c.handleRoute)
	c.mux.HandleFunc("POST /v1/simulate", c.handleSubmit)
	c.mux.HandleFunc("POST /v1/sweep", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handlePoll)
	c.mux.HandleFunc("GET /v1/jobs/{id}/inspect", c.handleInspectStream)
	c.mux.HandleFunc("GET /v1/jobs/{id}/inspect/frames", c.handleInspectFrames)
	c.mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	c.mux.HandleFunc("GET /v1/results/{digest}", c.handleResult)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)

	c.wg.Add(1)
	go c.sweeper()
	return c
}

// Handler returns the coordinator's root HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Ring exposes the live ring (tests and the route endpoint read it).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Registry exposes the membership table.
func (c *Coordinator) Registry() *Registry { return c.reg }

// Close stops the failure detector and any in-flight steal loops.
func (c *Coordinator) Close() {
	c.stopped.Do(func() { close(c.stopc) })
	c.wg.Wait()
}

// sweeper is the lease-based failure detector: workers that miss
// heartbeats past the TTL are declared dead, removed from the ring, and
// their unfinished jobs stolen onto ring successors.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case now := <-tick.C:
			for _, name := range c.reg.Sweep(now) {
				c.nodeLost(name, "missed heartbeats")
			}
			c.reconcile(32)
		}
	}
}

// reconcile retires routed jobs whose terminal state no client ever
// polled for (the submitter hung up): without it those routes would hold
// their steal bodies until eviction and count as pending forever. Each
// tick refreshes up to limit non-terminal assignments from their workers.
func (c *Coordinator) reconcile(limit int) {
	c.mu.Lock()
	var stale []*routedJob
	for _, id := range c.order {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		take := !j.terminal && !j.stealing
		j.mu.Unlock()
		if take {
			stale = append(stale, j)
			if len(stale) >= limit {
				break
			}
		}
	}
	c.mu.Unlock()
	for _, j := range stale {
		c.refreshJob(j)
	}
}

// refreshJob asks a job's worker for its current state and retires the
// route if it is terminal. Dead workers are left to the steal path.
func (c *Coordinator) refreshJob(j *routedJob) {
	j.mu.Lock()
	node, workerID, stolen, digest := j.node, j.workerID, j.stolen, j.digest
	j.mu.Unlock()
	view, known := c.reg.Get(node)
	if !known || !view.Alive {
		return
	}
	resp, err := c.forward(http.MethodGet, view.BaseURL, "/v1/jobs/"+workerID, "", "", nil)
	if err != nil {
		c.forwardErrors.Add(1)
		c.workerDown(node, "reconcile: "+err.Error())
		return
	}
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	resp.Body.Close()
	var info colcache.JobInfo
	if resp.StatusCode != http.StatusOK || json.Unmarshal(payload, &info) != nil {
		return
	}
	switch info.State {
	case colcache.StateDone, colcache.StateFailed, colcache.StateCanceled:
		info.ID = j.fabricID
		info.Node = node
		info.Recovered = stolen
		if info.Digest == "" {
			info.Digest = digest
		}
		j.mu.Lock()
		if j.node == node && j.workerID == workerID && !j.terminal {
			j.terminal = true
			j.body = nil
			doc := info
			j.cached = &doc
		}
		j.mu.Unlock()
	}
}

// workerDown expires a worker immediately (connection-refused beats the
// lease timer) and triggers stealing exactly once per death.
func (c *Coordinator) workerDown(name, reason string) {
	if c.reg.MarkDead(name) {
		c.nodeLost(name, reason)
	}
}

// nodeLost handles an already-expired worker: off the ring, jobs stolen.
func (c *Coordinator) nodeLost(name, reason string) {
	c.ring.Remove(name)
	c.cfg.Logf("fabric: worker %s down (%s); re-routing its unfinished jobs", name, reason)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.stealFrom(name)
	}()
}

// stealFrom re-routes every unfinished job assigned to a dead worker.
// The WAL on the dead node still holds those jobs — if it ever comes
// back it will finish them into its result cache, harmlessly — but the
// fabric does not wait: the coordinator retained each accepted body, so
// the ring successor can take over now.
func (c *Coordinator) stealFrom(dead string) {
	c.mu.Lock()
	var victims []*routedJob
	for _, j := range c.jobs {
		j.mu.Lock()
		take := !j.terminal && !j.stealing && j.node == dead
		if take {
			j.stealing = true
		}
		j.mu.Unlock()
		if take {
			victims = append(victims, j)
		}
	}
	c.mu.Unlock()
	sort.Slice(victims, func(i, k int) bool { return victims[i].fabricID < victims[k].fabricID })
	for _, j := range victims {
		c.stealJob(j)
	}
}

// stealJob resubmits one orphaned job to the current ring owner of its
// digest, walking further successors if they die too. Exhausting every
// option marks the job failed — and bumps the steal-failure counter that
// colload -fabric treats as lost work.
func (c *Coordinator) stealJob(j *routedJob) {
	defer func() {
		j.mu.Lock()
		j.stealing = false
		j.mu.Unlock()
	}()
	j.mu.Lock()
	body, path, rawQuery, contentType := j.body, j.path, j.rawQuery, j.contentType
	terminal := j.terminal
	j.mu.Unlock()
	if terminal || body == nil {
		return
	}
	for attempt := 0; attempt < 16; attempt++ {
		select {
		case <-c.stopc:
			return
		default:
		}
		owner, view, ok := c.pickOwner(j.digest)
		if !ok {
			// No live workers right now. An empty ring is often transient —
			// a GC-stalled worker's next heartbeat re-registers it — so wait
			// out part of the grace window instead of orphaning the job.
			select {
			case <-c.stopc:
				return
			case <-time.After(c.cfg.PeerTTL / 2):
			}
			continue
		}
		resp, err := c.forward(http.MethodPost, view.BaseURL, path, rawQuery, contentType, body)
		if err != nil {
			c.forwardErrors.Add(1)
			c.workerDown(owner, "steal forward: "+err.Error())
			continue
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var info colcache.JobInfo
			if err := json.Unmarshal(payload, &info); err != nil || info.ID == "" {
				c.stealFailures.Add(1)
				c.failJob(j, "steal resubmission returned an undecodable 202")
				return
			}
			j.mu.Lock()
			j.node, j.workerID, j.stolen = owner, info.ID, true
			j.mu.Unlock()
			c.steals.Add(1)
			c.countRouted(owner)
			c.cfg.Logf("fabric: job %s stolen to %s as %s", j.fabricID, owner, info.ID)
			return
		case http.StatusOK:
			// The successor's result cache already held the digest: the
			// steal is instantly terminal.
			var info colcache.JobInfo
			if err := json.Unmarshal(payload, &info); err == nil && info.Cached {
				info.ID = j.fabricID
				info.Node = owner
				info.Recovered = true
				j.mu.Lock()
				j.cached = &info
				j.stolen, j.terminal = true, true
				j.body = nil
				j.mu.Unlock()
				c.steals.Add(1)
				c.cachedRelays.Add(1)
				return
			}
			c.stealFailures.Add(1)
			c.failJob(j, "steal resubmission returned an undecodable 200")
			return
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Successor overloaded or draining: honor Retry-After, bounded.
			delay := 100 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				if d := time.Duration(ra) * time.Second; d < time.Second {
					delay = d
				} else {
					delay = time.Second
				}
			}
			select {
			case <-c.stopc:
				return
			case <-time.After(delay):
			}
		default:
			c.stealFailures.Add(1)
			c.failJob(j, fmt.Sprintf("steal resubmission rejected: HTTP %d: %s", resp.StatusCode, payload))
			return
		}
	}
	c.stealFailures.Add(1)
	c.failJob(j, "no live worker could take the stolen job")
}

func (c *Coordinator) failJob(j *routedJob, msg string) {
	j.mu.Lock()
	j.terminal = true
	j.failMsg = msg
	j.body = nil
	j.mu.Unlock()
	c.cfg.Logf("fabric: job %s lost: %s", j.fabricID, msg)
}

// pickOwner resolves the digest's ring owner to a live worker, pruning
// members the registry no longer believes in.
func (c *Coordinator) pickOwner(digest string) (string, NodeView, bool) {
	for i := 0; i < 8; i++ {
		owner, ok := c.ring.Owner(digest)
		if !ok {
			return "", NodeView{}, false
		}
		view, known := c.reg.Get(owner)
		if known && view.Alive {
			return owner, view, true
		}
		c.ring.Remove(owner)
	}
	return "", NodeView{}, false
}

// forward issues one proxied request.
func (c *Coordinator) forward(method, baseURL, path, rawQuery, contentType string, body []byte) (*http.Response, error) {
	url := baseURL + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set("X-Colcache-Fabric", "coordinator")
	return c.client.Do(req)
}

func (c *Coordinator) countRouted(node string) {
	c.routed.Add(1)
	c.mu.Lock()
	c.byNode[node]++
	c.mu.Unlock()
}

// --- control-plane handlers --------------------------------------------------

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&hb); err != nil {
		writeJSON(w, http.StatusBadRequest, colcache.APIError{Error: "bad heartbeat: " + err.Error()})
		return
	}
	if hb.Name == "" || hb.BaseURL == "" {
		writeJSON(w, http.StatusBadRequest, colcache.APIError{Error: "heartbeat needs name and base_url"})
		return
	}
	if c.reg.Upsert(hb, time.Now()) {
		c.ring.Add(hb.Name)
		c.cfg.Logf("fabric: worker %s joined at %s (%d alive)", hb.Name, hb.BaseURL, c.reg.Alive())
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "workers": c.reg.Alive()})
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.clusterView())
}

func (c *Coordinator) clusterView() ClusterView {
	pending := 0
	c.mu.Lock()
	for _, j := range c.jobs {
		j.mu.Lock()
		if !j.terminal {
			pending++
		}
		j.mu.Unlock()
	}
	c.mu.Unlock()
	return ClusterView{
		VNodes:        c.ring.VNodes(),
		Workers:       c.reg.Snapshot(time.Now()),
		PendingJobs:   pending,
		JobsRouted:    c.routed.Load(),
		JobsStolen:    c.steals.Load(),
		StealFailures: c.stealFailures.Load(),
		ForwardErrors: c.forwardErrors.Load(),
		CachedRelays:  c.cachedRelays.Load(),
	}
}

func (c *Coordinator) handleRoute(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	succ := c.ring.Successors(digest, 3)
	if len(succ) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, colcache.APIError{Error: "no workers joined"})
		return
	}
	writeJSON(w, http.StatusOK, RouteView{Digest: digest, Node: succ[0], Successors: succ[1:]})
}

// --- data-plane proxy --------------------------------------------------------

// digestOf computes the same content address the worker's durability
// layer would, from the submission as the coordinator sees it — routing
// and memoization must agree on the key or warm caches are useless.
func digestOf(path string, r *http.Request, body []byte) (digest, kind string, err error) {
	if path == "/v1/sweep" {
		var spec colcache.SweepSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return "", "", fmt.Errorf("bad JSON: %v", err)
		}
		return service.SweepDigest(spec), "sweep", nil
	}
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		spec, err := service.MachineFromQuery(r)
		if err != nil {
			return "", "", fmt.Errorf("bad query: %v", err)
		}
		return service.SimDigest(spec, body), "simulate", nil
	}
	var spec colcache.SimSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return "", "", fmt.Errorf("bad JSON: %v", err)
	}
	kind = "simulate"
	if spec.Multicore != nil {
		kind = "multicore"
	}
	return service.SimDigest(spec, nil), kind, nil
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, colcache.APIError{Error: "body too large or unreadable"})
		return
	}
	path := "/v1/simulate"
	if r.URL.Path == "/v1/sweep" {
		path = "/v1/sweep"
	}
	digest, kind, err := digestOf(path, r, body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, colcache.APIError{Error: err.Error()})
		return
	}

	// Route to the digest's owner; a connection error expires the owner
	// on the spot and retries the next one — the submission itself is the
	// failure detector's fastest path.
	for attempt := 0; attempt < 8; attempt++ {
		owner, view, ok := c.pickOwner(digest)
		if !ok {
			writeShed(w, http.StatusServiceUnavailable, 1, "no live workers in the fabric")
			return
		}
		resp, err := c.forward(http.MethodPost, view.BaseURL, path, r.URL.RawQuery, r.Header.Get("Content-Type"), body)
		if err != nil {
			c.forwardErrors.Add(1)
			c.workerDown(owner, "submit forward: "+err.Error())
			continue
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var info colcache.JobInfo
			if err := json.Unmarshal(payload, &info); err != nil || info.ID == "" {
				writeJSON(w, http.StatusBadGateway, colcache.APIError{Error: "worker returned an undecodable 202"})
				return
			}
			j := c.registerJob(digest, kind, path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, owner, info.ID)
			c.countRouted(owner)
			info.ID = j.fabricID
			info.Node = owner
			if info.Digest == "" {
				info.Digest = digest
			}
			w.Header().Set("Location", "/v1/jobs/"+j.fabricID)
			writeJSON(w, http.StatusAccepted, info)
			return
		case http.StatusOK:
			// Warm result cache on the owner: relay the terminal document.
			var info colcache.JobInfo
			if err := json.Unmarshal(payload, &info); err == nil && info.Cached {
				c.cachedRelays.Add(1)
				info.Node = owner
				if info.Digest == "" {
					info.Digest = digest
				}
				writeJSON(w, http.StatusOK, info)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(payload)
			return
		default:
			// Backpressure and validation answers relay verbatim — the
			// client's retry contract is the same as against one daemon.
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			ct := resp.Header.Get("Content-Type")
			if ct == "" {
				ct = "application/json"
			}
			w.Header().Set("Content-Type", ct)
			w.WriteHeader(resp.StatusCode)
			w.Write(payload)
			return
		}
	}
	writeShed(w, http.StatusServiceUnavailable, 1, "no worker accepted the submission")
}

// registerJob records a forwarded submission under a fresh fabric ID.
func (c *Coordinator) registerJob(digest, kind, path, rawQuery, contentType string, body []byte, node, workerID string) *routedJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	j := &routedJob{
		fabricID:    fmt.Sprintf("f%08d", c.seq),
		digest:      digest,
		kind:        kind,
		path:        path,
		rawQuery:    rawQuery,
		contentType: contentType,
		body:        body,
		node:        node,
		workerID:    workerID,
		accepted:    time.Now(),
	}
	c.jobs[j.fabricID] = j
	c.order = append(c.order, j.fabricID)
	c.evictLocked()
	return j
}

// evictLocked drops the oldest terminal routes beyond the retention cap.
func (c *Coordinator) evictLocked() {
	if len(c.jobs) <= c.cfg.RetainJobs {
		return
	}
	excess := len(c.jobs) - c.cfg.RetainJobs
	kept := c.order[:0]
	for _, id := range c.order {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		if excess > 0 {
			j.mu.Lock()
			terminal := j.terminal
			j.mu.Unlock()
			if terminal {
				delete(c.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	c.order = kept
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, colcache.APIError{Error: fmt.Sprintf("no such job %q", id)})
		return
	}
	j.mu.Lock()
	node, workerID, stolen, digest, kind := j.node, j.workerID, j.stolen, j.digest, j.kind
	cached, failMsg := j.cached, j.failMsg
	j.mu.Unlock()

	if cached != nil {
		writeJSON(w, http.StatusOK, *cached)
		return
	}
	if failMsg != "" {
		writeJSON(w, http.StatusOK, colcache.JobInfo{
			ID: id, Kind: kind, State: colcache.StateFailed, Digest: digest,
			Node: node, Recovered: stolen, Error: failMsg, SubmittedAt: j.accepted,
		})
		return
	}

	view, known := c.reg.Get(node)
	var info colcache.JobInfo
	relayed := false
	if known {
		resp, err := c.forward(http.MethodGet, view.BaseURL, "/v1/jobs/"+workerID, "", "", nil)
		if err != nil {
			c.forwardErrors.Add(1)
			c.workerDown(node, "poll forward: "+err.Error())
		} else {
			payload, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && json.Unmarshal(payload, &info) == nil {
				relayed = true
			} else if resp.StatusCode == http.StatusNotFound {
				// The worker no longer knows the job (restarted over fresh
				// state, or evicted it): the assignment is lost even though
				// the node is alive — re-place the job from the retained
				// body, exactly like a steal.
				j.mu.Lock()
				replace := !j.terminal && !j.stealing && j.workerID == workerID
				if replace {
					j.stealing = true
				}
				j.mu.Unlock()
				if replace {
					c.wg.Add(1)
					go func() {
						defer c.wg.Done()
						c.stealJob(j)
					}()
				}
			}
		}
	}
	if !relayed {
		// The assignment is unreachable (worker just died, or its store
		// evicted the job). The route survives: answer queued so the
		// client keeps polling while the steal loop re-places the job.
		writeJSON(w, http.StatusOK, colcache.JobInfo{
			ID: id, Kind: kind, State: colcache.StateQueued, Digest: digest,
			Node: node, Recovered: stolen, SubmittedAt: j.accepted,
		})
		return
	}
	info.ID = id
	info.Node = node
	info.Recovered = stolen
	if info.Digest == "" {
		info.Digest = digest
	}
	switch info.State {
	case colcache.StateDone, colcache.StateFailed, colcache.StateCanceled:
		j.mu.Lock()
		// A steal may have re-placed the job between the snapshot above
		// and now; only the current assignment's terminal answer counts.
		// The terminal document is retained so later polls are answered
		// locally — the worker may be gone by then.
		if j.node == node && j.workerID == workerID && !j.terminal {
			j.terminal = true
			j.body = nil
			doc := info
			j.cached = &doc
		}
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, info)
}

// assignment resolves a fabric job ID to its current worker placement.
func (c *Coordinator) assignment(id string) (node, workerID string, view NodeView, ok bool) {
	c.mu.Lock()
	j, known := c.jobs[id]
	c.mu.Unlock()
	if !known {
		return "", "", NodeView{}, false
	}
	j.mu.Lock()
	node, workerID = j.node, j.workerID
	j.mu.Unlock()
	view, alive := c.reg.Get(node)
	if !alive {
		return "", "", NodeView{}, false
	}
	return node, workerID, view, true
}

// handleInspectStream relays a live SSE inspection stream from the job's
// owning worker, flushing per read so frame latency survives the hop. The
// relay follows the assignment at attach time: if the worker dies
// mid-stream the relay ends with it, and the client reattaches after the
// steal loop re-places the job.
func (c *Coordinator) handleInspectStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, workerID, view, ok := c.assignment(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, colcache.APIError{Error: fmt.Sprintf("no live assignment for job %q", id)})
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, colcache.APIError{Error: "relay writer cannot stream"})
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, view.BaseURL+"/v1/jobs/"+workerID+"/inspect", nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, colcache.APIError{Error: err.Error()})
		return
	}
	req.Header.Set("X-Colcache-Fabric", "coordinator")
	resp, err := c.stream.Do(req)
	if err != nil {
		c.forwardErrors.Add(1)
		c.workerDown(node, "inspect forward: "+err.Error())
		writeJSON(w, http.StatusBadGateway, colcache.APIError{Error: "worker unreachable: " + err.Error()})
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		ct := resp.Header.Get("Content-Type")
		if ct == "" {
			ct = "application/json"
		}
		w.Header().Set("Content-Type", ct)
		w.WriteHeader(resp.StatusCode)
		w.Write(payload)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			fl.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleInspectFrames relays the time-travel frame range from the job's
// owning worker, rewriting the document's job field to the fabric ID.
func (c *Coordinator) handleInspectFrames(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, workerID, view, ok := c.assignment(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, colcache.APIError{Error: fmt.Sprintf("no live assignment for job %q", id)})
		return
	}
	resp, err := c.forward(http.MethodGet, view.BaseURL, "/v1/jobs/"+workerID+"/inspect/frames", r.URL.RawQuery, "", nil)
	if err != nil {
		c.forwardErrors.Add(1)
		c.workerDown(node, "inspect frames forward: "+err.Error())
		writeJSON(w, http.StatusBadGateway, colcache.APIError{Error: "worker unreachable: " + err.Error()})
		return
	}
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var doc colcache.InspectFrames
		if json.Unmarshal(payload, &doc) == nil {
			doc.Job = id
			writeJSON(w, http.StatusOK, doc)
			return
		}
	}
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(resp.StatusCode)
	w.Write(payload)
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	queued, running := 0, 0
	for _, v := range c.reg.Snapshot(time.Now()) {
		if v.Alive {
			queued += v.Queued
			running += v.Running
		}
	}
	writeJSON(w, http.StatusOK, colcache.JobList{Queued: queued, Running: running})
}

// handleResult routes a digest read to its ring owner, falling back to
// successors: after membership churn the blob may still live on a prior
// owner. Workers answer with Cache-Control: immutable + an ETag, and the
// relay preserves both, so fabric reads are HTTP-cacheable end to end.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	tried := map[string]bool{}
	for attempt := 0; attempt < 3; attempt++ {
		var target string
		for _, n := range c.ring.Successors(digest, 3) {
			if !tried[n] {
				target = n
				break
			}
		}
		if target == "" {
			break
		}
		tried[target] = true
		view, known := c.reg.Get(target)
		if !known || !view.Alive {
			continue
		}
		req, err := http.NewRequest(http.MethodGet, view.BaseURL+"/v1/results/"+digest, nil)
		if err != nil {
			continue
		}
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			c.forwardErrors.Add(1)
			c.workerDown(target, "result forward: "+err.Error())
			continue
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotModified {
			for _, h := range []string{"Content-Type", "Cache-Control", "ETag"} {
				if v := resp.Header.Get(h); v != "" {
					w.Header().Set(h, v)
				}
			}
			w.WriteHeader(resp.StatusCode)
			w.Write(payload)
			return
		}
	}
	writeJSON(w, http.StatusNotFound, colcache.APIError{Error: fmt.Sprintf("no result for digest %q on any live worker", digest)})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "coordinator", "workers": c.reg.Alive()})
}

// handleMetrics renders the fabric gauges in Prometheus text exposition,
// including the per-node job ledgers carried by heartbeats — one scrape
// of the coordinator reconciles the whole fleet's books.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	view := c.clusterView()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	alive := 0
	for _, n := range view.Workers {
		if n.Alive {
			alive++
		}
	}
	fmt.Fprintf(w, "# HELP colserved_fabric_workers_alive Live workers on the ring.\n# TYPE colserved_fabric_workers_alive gauge\ncolserved_fabric_workers_alive %d\n", alive)
	fmt.Fprintf(w, "# HELP colserved_fabric_workers_known Workers ever registered (alive and dead).\n# TYPE colserved_fabric_workers_known gauge\ncolserved_fabric_workers_known %d\n", len(view.Workers))
	fmt.Fprintf(w, "# HELP colserved_fabric_ring_vnodes Virtual nodes per worker.\n# TYPE colserved_fabric_ring_vnodes gauge\ncolserved_fabric_ring_vnodes %d\n", view.VNodes)
	fmt.Fprintf(w, "# HELP colserved_fabric_pending_jobs Routed jobs not yet terminal.\n# TYPE colserved_fabric_pending_jobs gauge\ncolserved_fabric_pending_jobs %d\n", view.PendingJobs)
	fmt.Fprintf(w, "# HELP colserved_fabric_jobs_routed_total Submissions forwarded to workers.\n# TYPE colserved_fabric_jobs_routed_total counter\ncolserved_fabric_jobs_routed_total %d\n", view.JobsRouted)
	fmt.Fprintf(w, "# HELP colserved_fabric_jobs_stolen_total Jobs re-routed off dead workers.\n# TYPE colserved_fabric_jobs_stolen_total counter\ncolserved_fabric_jobs_stolen_total %d\n", view.JobsStolen)
	fmt.Fprintf(w, "# HELP colserved_fabric_steal_failures_total Orphaned jobs no live worker could take.\n# TYPE colserved_fabric_steal_failures_total counter\ncolserved_fabric_steal_failures_total %d\n", view.StealFailures)
	fmt.Fprintf(w, "# HELP colserved_fabric_forward_errors_total Proxied requests that hit a dead worker.\n# TYPE colserved_fabric_forward_errors_total counter\ncolserved_fabric_forward_errors_total %d\n", view.ForwardErrors)
	fmt.Fprintf(w, "# HELP colserved_fabric_cached_relays_total Submissions answered from a worker's warm result cache.\n# TYPE colserved_fabric_cached_relays_total counter\ncolserved_fabric_cached_relays_total %d\n", view.CachedRelays)

	c.mu.Lock()
	nodes := make([]string, 0, len(c.byNode))
	for n := range c.byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Fprintf(w, "# HELP colserved_fabric_node_routed_total Submissions routed per worker.\n# TYPE colserved_fabric_node_routed_total counter\n")
	for _, n := range nodes {
		fmt.Fprintf(w, "colserved_fabric_node_routed_total{node=%q} %d\n", n, c.byNode[n])
	}
	c.mu.Unlock()

	fmt.Fprintf(w, "# HELP colserved_fabric_node_jobs Per-node job ledger from the last heartbeat.\n# TYPE colserved_fabric_node_jobs gauge\n")
	for _, n := range view.Workers {
		outcomes := make([]string, 0, len(n.Ledger))
		for o := range n.Ledger {
			outcomes = append(outcomes, o)
		}
		sort.Strings(outcomes)
		for _, o := range outcomes {
			fmt.Fprintf(w, "colserved_fabric_node_jobs{node=%q,outcome=%q} %d\n", n.Name, o, n.Ledger[o])
		}
	}
	fmt.Fprintf(w, "# HELP colserved_fabric_uptime_seconds Seconds since the coordinator started.\n# TYPE colserved_fabric_uptime_seconds gauge\ncolserved_fabric_uptime_seconds %g\n", time.Since(c.start).Seconds())
}

// --- small shared helpers ----------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeShed(w http.ResponseWriter, code, retryAfter int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeJSON(w, code, colcache.APIError{Error: msg, RetryAfterSeconds: retryAfter})
}
