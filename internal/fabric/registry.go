package fabric

import (
	"sort"
	"sync"
	"time"
)

// Heartbeat is the worker → coordinator report: POST /fabric/v1/heartbeat.
// The first heartbeat from a name IS the registration; later ones renew
// the lease and refresh the worker's self-reported load and job ledger.
type Heartbeat struct {
	// Name identifies the worker on the ring; it must stay stable across
	// that worker's restarts so its keyspace share survives.
	Name string `json:"name"`
	// BaseURL is where the coordinator reaches the worker's /v1 API.
	BaseURL string `json:"base_url"`
	// Ledger is the worker's job outcomes by outcome label (accepted,
	// done, failed, canceled, cached, recovered, rejected), summed over
	// job kinds — the coordinator reconciles these books per node.
	Ledger map[string]int64 `json:"ledger,omitempty"`
	// Queued and Running are the worker's live queue gauges.
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// NodeView is one worker as the coordinator sees it, served by
// GET /fabric/v1/nodes.
type NodeView struct {
	Name       string           `json:"name"`
	BaseURL    string           `json:"base_url"`
	Alive      bool             `json:"alive"`
	LastBeatMs int64            `json:"last_beat_ms"` // age of the last heartbeat
	Beats      int64            `json:"beats"`
	Queued     int              `json:"queued"`
	Running    int              `json:"running"`
	Ledger     map[string]int64 `json:"ledger,omitempty"`
}

// worker is the registry's mutable record for one member.
type worker struct {
	Heartbeat
	lastBeat time.Time
	beats    int64
	alive    bool
}

// Registry is the membership table: heartbeats renew leases, Sweep
// expires them. It is deliberately separate from the Ring so the failure
// detector can be tested without HTTP, and so the coordinator decides
// what a membership change means (ring update + job stealing).
type Registry struct {
	ttl time.Duration

	mu      sync.Mutex
	workers map[string]*worker
}

// NewRegistry builds a registry whose leases expire ttl after the last
// heartbeat (<= 0 means 2s).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	return &Registry{ttl: ttl, workers: make(map[string]*worker)}
}

// TTL is the lease duration.
func (g *Registry) TTL() time.Duration { return g.ttl }

// Upsert applies a heartbeat and reports whether the worker is newly
// alive (first contact, or a comeback after the failure detector expired
// it) — the coordinator adds it to the ring exactly then.
func (g *Registry) Upsert(hb Heartbeat, now time.Time) (newlyAlive bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[hb.Name]
	if !ok {
		w = &worker{}
		g.workers[hb.Name] = w
	}
	newlyAlive = !ok || !w.alive
	w.Heartbeat = hb
	w.lastBeat = now
	w.beats++
	w.alive = true
	return newlyAlive
}

// MarkDead expires a worker immediately (the coordinator calls this when
// a forward hits a connection error — faster than waiting out the lease).
// Reports whether the worker was alive.
func (g *Registry) MarkDead(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[name]
	if !ok || !w.alive {
		return false
	}
	w.alive = false
	return true
}

// Sweep expires every lease older than TTL and returns the names that
// just died, sorted for determinism.
func (g *Registry) Sweep(now time.Time) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var dead []string
	for name, w := range g.workers {
		if w.alive && now.Sub(w.lastBeat) > g.ttl {
			w.alive = false
			dead = append(dead, name)
		}
	}
	sort.Strings(dead)
	return dead
}

// Get returns a live view of one worker.
func (g *Registry) Get(name string) (NodeView, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[name]
	if !ok {
		return NodeView{}, false
	}
	return g.viewLocked(name, w, time.Now()), true
}

// Alive counts live workers.
func (g *Registry) Alive() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, w := range g.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// Snapshot returns every known worker (alive and dead), sorted by name.
func (g *Registry) Snapshot(now time.Time) []NodeView {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]NodeView, 0, len(g.workers))
	for name, w := range g.workers {
		out = append(out, g.viewLocked(name, w, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (g *Registry) viewLocked(name string, w *worker, now time.Time) NodeView {
	ledger := make(map[string]int64, len(w.Ledger))
	for k, v := range w.Ledger {
		ledger[k] = v
	}
	return NodeView{
		Name:       name,
		BaseURL:    w.BaseURL,
		Alive:      w.alive,
		LastBeatMs: now.Sub(w.lastBeat).Milliseconds(),
		Beats:      w.beats,
		Queued:     w.Queued,
		Running:    w.Running,
		Ledger:     ledger,
	}
}
