// Package fabric promotes colserved from a single daemon into a
// coordinator + N worker job fabric. The routing primitive is a
// consistent-hash ring over the content address that the durability layer
// already computes for every submission (the SHA-256 digest of the
// canonicalized spec plus trace bytes): identical submissions land on the
// worker whose result cache and decoded-trace cache are warm for that
// key, and — as in Chang et al.'s consistent-hashing mechanism for
// resizable caches — a node joining or leaving remaps only ~1/N of the
// keyspace, so warm caches survive membership churn without global
// invalidation.
//
// The pieces:
//
//   - Ring: the consistent-hash ring (virtual nodes, binary-search owner
//     lookup, successor walks for failover).
//   - Registry: the worker membership table, fed by HTTP heartbeats and
//     swept by a lease-based failure detector.
//   - Coordinator: the control plane. It serves the same /v1 data-plane
//     API as a worker, forwarding each submission to the ring owner of
//     its digest, and steals the unfinished jobs of a dead worker onto
//     ring successors so no accepted job is ever lost.
//   - Agent: the worker-side loop that registers with the coordinator
//     and keeps the lease alive, carrying the worker's job ledger so the
//     coordinator can reconcile books across the fleet.
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per worker. 64 points per node
// keeps the per-node keyspace share within a few percent of 1/N while the
// ring stays small enough that membership changes rebuild it instantly.
const DefaultVNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Keys and node names
// are arbitrary strings; both are positioned by SHA-256, so the routed
// digests (themselves hex SHA-256) spread uniformly. Safe for concurrent
// use: lookups take a read lock, membership changes a write lock.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []point // sorted by (hash, node)
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// hash64 positions a byte string on the ring.
func hash64(parts ...string) uint64 {
	h := sha256.New()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Add inserts a node (with its virtual points); reports whether it was
// new.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return false
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64("vnode", node, strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return true
}

// Remove deletes a node and its points; reports whether it was present.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Nodes returns the members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len is the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// VNodes is the configured virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// ownerIdx returns the index of the first point at or clockwise of the
// key's position (the ring wraps). Callers hold at least a read lock.
func (r *Ring) ownerIdx(key string) int {
	h := hash64("key", key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node responsible for key, or ok=false on an empty
// ring.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.ownerIdx(key)].node, true
}

// Successors walks the ring clockwise from the key's owner and returns up
// to n distinct nodes in encounter order (the owner first). This is the
// failover order: a key's blob or job moves to Successors[1] when
// Successors[0] dies.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i, start := 0, r.ownerIdx(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
